"""Ablation: the PAPER codegen preset vs the IDEAL lower bound.

Separates the algorithmic cost of the kernels (one instruction per
intrinsic, minimal bookkeeping) from the measured LLVM codegen
overhead the paper's numbers include — i.e. how much headroom a better
compiler would have on the same kernels.
"""

from repro.bench.harness import ExperimentResult
from repro.tune import measure_kernel
from repro.utils.formatting import fmt_count, fmt_ratio

from conftest import record

N = 10**5


def test_ablation_codegen(benchmark):
    rows = []
    for kernel in ("p_add", "plus_scan", "seg_plus_scan"):
        paper = measure_kernel(kernel, N, 1024, codegen="paper").instructions
        ideal = measure_kernel(kernel, N, 1024, codegen="ideal").instructions
        rows.append([kernel, fmt_count(ideal), fmt_count(paper),
                     fmt_ratio(paper / ideal)])
        assert ideal < paper
    res = ExperimentResult(
        "Ablation B", f"codegen presets at N={N}, VLEN=1024: IDEAL vs PAPER",
        ["kernel", "ideal", "paper-calibrated", "codegen overhead x"], rows,
        notes=["the scan kernels carry ~2-3x codegen overhead in the paper's"
               " build (register moves for undisturbed destinations, masked-"
               "op copies, loop bookkeeping) — headroom for better codegen."],
    )
    record(res)
    benchmark(measure_kernel, "seg_plus_scan", N, 1024, codegen="ideal")

"""Ablation: viota-based enumerate (Listing 8) vs a generic
exclusive plus-scan of the flag vector.

The paper argues the 0/1 restriction on enumerate's input "gives
chances for optimization" (§4.4): viota performs the whole in-register
exclusive count in one instruction where the general scan needs
lg(vl) slideup-and-add steps. This bench quantifies that choice.
"""

import numpy as np

from repro import SVM
from repro.bench.harness import ExperimentResult
from repro.utils.formatting import fmt_count, fmt_ratio

from conftest import record


def _enumerate_via_viota(svm: SVM, flags) -> int:
    svm.reset()
    dst, _count = svm.enumerate(flags, set_bit=True)
    svm.free(dst)  # the timing loop re-runs this; don't leak the heap
    return svm.instructions


def _enumerate_via_scan(svm: SVM, flags) -> int:
    """The generic alternative: copy the flags and exclusive-plus-scan
    them (counts each flag before every position — identical result)."""
    svm.reset()
    ranks = svm.copy(flags)
    svm.scan(ranks, "plus", inclusive=False)
    svm.free(ranks)
    return svm.instructions


def test_ablation_enumerate(benchmark):
    rows = []
    for n in (10**3, 10**4, 10**5, 10**6):
        svm = SVM(vlen=1024, codegen="paper", mode="fast")
        flags = svm.array((np.random.default_rng(0).random(n) < 0.5).astype(np.uint32))
        viota = _enumerate_via_viota(svm, flags)
        scan = _enumerate_via_scan(svm, flags)
        rows.append([fmt_count(n), fmt_count(viota), fmt_count(scan),
                     fmt_ratio(scan / viota)])
        assert viota < scan, "viota enumerate must beat the generic scan"
    res = ExperimentResult(
        "Ablation A", "enumerate: viota+vcpop vs generic exclusive plus-scan",
        ["N", "viota", "generic scan", "advantage"], rows,
        notes=["the generic path pays lg(vl)=5 slideup-add steps per strip"
               " where viota pays 1 instruction — the paper's §4.4 claim."],
    )
    record(res)
    svm = SVM(vlen=1024, codegen="paper", mode="fast")
    flags = svm.array(np.ones(10**5, dtype=np.uint32))
    benchmark(_enumerate_via_viota, svm, flags)

"""Ablation: the LMUL advisor (§6.3's guidance made quantitative) vs
an exhaustive sweep — the advisor must pick the measured argmin at
every N, and its predictions must equal measurement exactly.
"""

from repro.bench.harness import ExperimentResult
from repro.tune import choose_lmul, measure_kernel
from repro.rvv.types import LMUL
from repro.utils.formatting import fmt_count

from conftest import record


def test_ablation_lmul_advisor(benchmark):
    rows = []
    for n in (10**2, 10**3, 10**4, 10**5, 10**6):
        counts = {
            lm: measure_kernel("seg_plus_scan", n, 1024, LMUL(lm)).instructions
            for lm in (1, 2, 4, 8)
        }
        best_lm = min(counts, key=counts.get)
        choice = choose_lmul("seg_plus_scan", n, 1024)
        assert int(choice.lmul) == best_lm, (n, counts, choice)
        assert choice.count == counts[best_lm]
        rows.append([fmt_count(n), f"m{best_lm}", fmt_count(counts[best_lm]),
                     f"m{int(choice.lmul)}", fmt_count(choice.count)])
    res = ExperimentResult(
        "Ablation C", "LMUL advisor vs exhaustive sweep (seg_plus_scan)",
        ["N", "sweep best", "count", "advisor pick", "predicted"], rows,
        notes=["the advisor's closed form equals measurement instruction-"
               "for-instruction, so the pick is provably the sweep argmin."],
    )
    record(res)
    benchmark(choose_lmul, "seg_plus_scan", 10**5, 1024)

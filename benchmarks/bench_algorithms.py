"""Extension bench: dynamic-count profile of the added scan-vector-
model applications (flat quicksort, RLE round-trip, CSR SpMV) —
beyond the paper's Table 1, these show the primitive set carrying
Blelloch's wider workload catalogue.
"""

import numpy as np

from repro import SVM
from repro.algorithms import (
    CSRMatrix, flat_quicksort, rle_decode, rle_encode, spmv,
)
from repro.bench.harness import ExperimentResult
from repro.utils.formatting import fmt_count, fmt_ratio

from conftest import record


def _quicksort_count(n: int) -> tuple[int, int]:
    svm = SVM(vlen=1024, codegen="paper", mode="fast")
    data = np.random.default_rng(1).integers(0, 1 << 31, n, dtype=np.uint32)
    arr = svm.array(data)
    svm.reset()
    rounds = flat_quicksort(svm, arr)
    assert np.array_equal(arr.to_numpy(), np.sort(data))
    return svm.instructions, rounds


def _rle_count(n: int) -> int:
    svm = SVM(vlen=1024, codegen="paper", mode="fast")
    rng = np.random.default_rng(2)
    data = np.repeat(rng.integers(0, 8, n // 4 + 1, dtype=np.uint32),
                     rng.integers(1, 8, n // 4 + 1))[:n]
    arr = svm.array(data)
    svm.reset()
    v, l, k = rle_encode(svm, arr)
    out = rle_decode(svm, v, l, k)
    assert np.array_equal(out.to_numpy(), data)
    return svm.instructions


def _spmv_count(rows: int) -> int:
    svm = SVM(vlen=1024, codegen="paper", mode="fast")
    rng = np.random.default_rng(3)
    mat = CSRMatrix.random(rows, rows, 0.05, rng)
    x = svm.array(rng.integers(0, 8, rows, dtype=np.uint32))
    svm.reset()
    y = spmv(svm, mat, x)
    expect = (mat.to_dense().astype(np.uint64) @ x.to_numpy()).astype(np.uint32)
    assert np.array_equal(y.to_numpy(), expect)
    return svm.instructions


def test_algorithm_profiles(benchmark):
    rows = []
    for n in (10**3, 10**4):
        qc, rounds = _quicksort_count(n)
        rows.append([f"flat_quicksort n={n}", fmt_count(qc),
                     fmt_ratio(qc / n, 1), f"{rounds} rounds"])
    for n in (10**3, 10**4):
        rc = _rle_count(n)
        rows.append([f"rle round-trip n={n}", fmt_count(rc), fmt_ratio(rc / n, 1), ""])
    for r in (100, 300):
        sc = _spmv_count(r)
        rows.append([f"spmv {r}x{r} d=0.05", fmt_count(sc), "-", ""])
    res = ExperimentResult(
        "Extension", "dynamic-count profile of added applications",
        ["workload", "instructions", "instr/elem", "detail"], rows,
        notes=["all three run purely on scan-vector-model primitives;"
               " results verified against NumPy oracles inside the bench."],
    )
    record(res)
    benchmark(_rle_count, 10**4)

"""Batched plan execution vs looped single-plan calls.

Two claims, two kinds of evidence:

* **Identity** (deterministic, CI-gated): a batch run's outputs and
  per-category instruction counters equal the looped single-input
  path exactly — across VLEN, LMUL, ragged length buckets, and the
  data-dependent pack pipeline, which now batches as one masked 2D
  evaluation on the ``"ragged"`` path (zero loop-fallback buckets)
  with per-row lengths and an exact per-row charge. These land in
  ``BENCH_batch.json``, which the perf job regenerates and diffs at
  tolerance 0; only deterministic values (counts, booleans, bucket
  structure, dispatch ratios) are written, never wall-clock.

* **Throughput** (asserted here, reported in the summary table): one
  2D evaluation amortizes capture, cache lookup, dispatch, and
  charging over the whole batch. The win is largest where per-call
  overhead dominates (small/medium n): at n=256×64 rows the batch
  path must be ≥ 10× faster than the loop. At the large-n cell
  (n=10k×64 rows) the serial per-row scan dominates both paths and
  the amortization win shrinks — the floor there is 1.5× and the
  measured ratio is reported. See docs/batching.md for the regime
  discussion.

Grid cells run through :func:`repro.parallel.batch_cell`, so
``REPRO_BENCH_JOBS=N`` / ``repro bench --jobs N`` fans them over
worker processes; output is byte-identical at any job count.
"""

from __future__ import annotations

import json
import timeit
from pathlib import Path

import numpy as np

from repro import SVM
from repro.bench.harness import ExperimentResult
from repro.engine.cache import PlanCache
from repro.parallel import CHAIN, batch_cell, default_jobs, run_grid
from repro.utils.formatting import fmt_count, fmt_ratio

from conftest import record, rng

SEED = 0
DEPTH = 3


def _pipe(lz, data):
    for op, x in CHAIN[:DEPTH]:
        getattr(lz, op)(data, x)
    lz.plus_scan(data)
    return data


def _pack_pipe(lz, data):
    flags = lz.p_lt(data, 2**15)
    out, _ = lz.pack(data, flags)
    lz.free(flags)
    return out


def _pack_loop(svm, rows):
    outs = []
    for row in rows:
        data = svm.array(row)
        with svm.lazy() as lz:
            out = _pack_pipe(lz, data)
        outs.append(out.to_numpy())
        svm.free(data)
        svm.free(out)
    return outs


def _loop(svm, rows):
    outs = []
    for row in rows:
        data = svm.array(row)
        with svm.lazy() as lz:
            _pipe(lz, data)
        outs.append(data.to_numpy())
        svm.free(data)
    return outs


def test_batch_identity_grid(benchmark):
    params = [
        {"n": n, "vlen": vlen, "lmul": lmul, "rows": batch_rows,
         "depth": DEPTH, "seed": SEED}
        for vlen in (128, 512)
        for lmul in (1, 8)
        for n, batch_rows in ((3000, 16), (10_000, 8))
    ]
    cells = run_grid(batch_cell, params, jobs=default_jobs())
    rows = []
    for cell in cells:
        assert cell["identical_results"], cell
        assert cell["identical_counters"], cell
        assert cell["batch_instr"] == cell["loop_instr"], cell
        assert cell["path"] == "2d", cell
        rows.append([str(cell["vlen"]), str(cell["lmul"]), str(cell["n"]),
                     str(cell["rows"]), fmt_count(cell["loop_instr"]),
                     fmt_count(cell["batch_instr"]), cell["path"]])
    record(ExperimentResult(
        "Batch identity grid",
        f"depth-{DEPTH} chain + plus_scan: batch vs looped single calls",
        ["VLEN", "LMUL", "n", "rows", "loop instr", "batch instr", "path"],
        rows,
        notes=["instruction counts are identical by construction: row 0 runs"
               " the ordinary engine and its closed-form delta is scaled by"
               " the remaining rows."],
    ))

    # ragged batch: bucketing by length, auto strict/fast routing
    lengths = [7, 3000, 7, 5000, 3000, 1, 3000]
    g = rng(SEED)
    ragged_rows = [g.integers(0, 2**16, n, dtype=np.uint32) for n in lengths]
    loop_svm = SVM(vlen=512, codegen="paper")  # auto mode
    loop_outs = _loop(loop_svm, ragged_rows)
    batch_svm = SVM(vlen=512, codegen="paper")
    res = batch_svm.batch(_pipe, ragged_rows)
    ragged = {
        "lengths": lengths,
        "buckets": [{"n": b.n, "rows": b.rows, "path": b.path}
                    for b in res.buckets],
        "identical_results": bool(all(
            np.array_equal(a, b) for a, b in zip(loop_outs, res)
        )),
        "identical_counters": bool(
            loop_svm.counters.snapshot().by_category
            == batch_svm.counters.snapshot().by_category
        ),
    }
    assert ragged["identical_results"] and ragged["identical_counters"]

    # pack's data-dependent charge batches as one masked 2D evaluation
    # on the ragged path: zero loop-fallback buckets, per-row lengths,
    # survivor prefixes and counters exactly loop-identical, and the
    # deterministic dispatch fact — one engine dispatch per bucket
    # where the loop pays one per row (plan-cache lookups count them)
    pack_rows = [g.integers(0, 2**16, 3000, dtype=np.uint32)
                 for _ in range(8)]
    kept = [int((r < 2**15).sum()) for r in pack_rows]
    loop_cache = PlanCache()
    loop_svm = SVM(vlen=512, codegen="paper", mode="fast",
                   plan_cache=loop_cache)
    loop_outs = _pack_loop(loop_svm, pack_rows)
    batch_cache = PlanCache()
    batch_svm = SVM(vlen=512, codegen="paper", mode="fast",
                    plan_cache=batch_cache)
    res = batch_svm.batch(_pack_pipe, pack_rows)

    def lookups(cache):
        s = cache.stats_dict()
        return s["hits"] + s["disk_hits"] + s["compiles"]

    pack_cell = {
        "rows": len(pack_rows),
        "n": 3000,
        "path": res.buckets[0].path,
        "loop_fallback_buckets": sum(
            b.path == "loop" for b in res.buckets),
        "lengths": list(res.lengths),
        "lengths_match_predicate": res.lengths == kept,
        "prefix_identical": bool(all(
            np.array_equal(a[:k], b[:k])
            for a, b, k in zip(loop_outs, res, kept)
        )),
        "identical_counters": bool(
            loop_svm.counters.snapshot().by_category
            == batch_svm.counters.snapshot().by_category
        ),
        "loop_plan_dispatches": lookups(loop_cache),
        "ragged_plan_dispatches": lookups(batch_cache),
    }
    pack_cell["dispatch_speedup"] = (
        pack_cell["loop_plan_dispatches"]
        / pack_cell["ragged_plan_dispatches"])
    assert pack_cell["path"] == "ragged"
    assert pack_cell["loop_fallback_buckets"] == 0
    assert pack_cell["lengths_match_predicate"]
    assert pack_cell["prefix_identical"]
    assert pack_cell["identical_counters"]
    assert pack_cell["dispatch_speedup"] >= 2.0, pack_cell

    out = Path(__file__).resolve().parent.parent / "BENCH_batch.json"
    out.write_text(json.dumps({
        "pipeline": f"elementwise chain (depth {DEPTH}) + plus_scan, uint32",
        "codegen": "paper",
        "mode": "fast",
        "grid": cells,
        "ragged": ragged,
        "pack_ragged": pack_cell,
    }, indent=2) + "\n")

    benchmark(batch_cell,
              {"n": 3000, "vlen": 512, "lmul": 1, "rows": 16,
               "depth": DEPTH, "seed": SEED})


def test_batch_wallclock_speedup():
    table = []
    # (n, rows, floor): the dispatch-bound cell carries the >=10x
    # acceptance; at n=10k the serial per-row accumulate dominates
    # both paths, so the honest floor there is lower (see module doc)
    for n, batch_rows, floor in ((256, 64, 10.0), (10_000, 64, 1.5)):
        g = rng(SEED)
        data_rows = [g.integers(0, 2**16, n, dtype=np.uint32)
                     for _ in range(batch_rows)]
        svm = SVM(vlen=512, codegen="paper", mode="fast")
        loop_outs = _loop(svm, data_rows)  # also warms the plan cache
        res = svm.batch(_pipe, data_rows)
        assert all(np.array_equal(a, b) for a, b in zip(loop_outs, res))

        t_loop = min(timeit.repeat(
            lambda: _loop(svm, data_rows), number=1, repeat=9))
        t_batch = min(timeit.repeat(
            lambda: svm.batch(_pipe, data_rows), number=1, repeat=9))
        speedup = t_loop / t_batch
        table.append([str(n), str(batch_rows), f"{t_loop * 1e3:.2f} ms",
                      f"{t_batch * 1e3:.2f} ms", fmt_ratio(speedup),
                      f">= {floor:g}x"])
        assert speedup >= floor, (
            f"n={n} rows={batch_rows}: batch {t_batch * 1e3:.2f} ms vs "
            f"loop {t_loop * 1e3:.2f} ms = {speedup:.1f}x < floor {floor:g}x"
        )
    # pack pipeline: the ragged path must beat its old loop fallback
    # by >= 2x where per-row dispatch overhead dominates
    g = rng(SEED)
    pack_rows = [g.integers(0, 2**16, 256, dtype=np.uint32)
                 for _ in range(64)]
    svm = SVM(vlen=512, codegen="paper", mode="fast")
    loop_outs = _pack_loop(svm, pack_rows)  # also warms the plan cache
    res = svm.batch(_pack_pipe, pack_rows)
    assert {b.path for b in res.buckets} == {"ragged"}
    assert all(np.array_equal(a[:k], b[:k])
               for a, b, k in zip(loop_outs, res, res.lengths))
    t_loop = min(timeit.repeat(
        lambda: _pack_loop(svm, pack_rows), number=1, repeat=9))
    t_batch = min(timeit.repeat(
        lambda: svm.batch(_pack_pipe, pack_rows), number=1, repeat=9))
    speedup = t_loop / t_batch
    table.append(["256 (pack)", "64", f"{t_loop * 1e3:.2f} ms",
                  f"{t_batch * 1e3:.2f} ms", fmt_ratio(speedup), ">= 2x"])
    assert speedup >= 2.0, (
        f"pack ragged path {t_batch * 1e3:.2f} ms vs loop "
        f"{t_loop * 1e3:.2f} ms = {speedup:.1f}x < floor 2x"
    )
    record(ExperimentResult(
        "Batch wall-clock",
        f"depth-{DEPTH} chain + plus_scan (and the pack filter on the "
        "ragged path) at VLEN=512, batch vs loop (best of 9)",
        ["n", "rows", "loop", "batch", "speedup x", "floor"], table,
        notes=["wall-clock is machine-dependent and intentionally kept out"
               " of BENCH_batch.json; the CI gate locks only the"
               " deterministic identity data."],
    ))

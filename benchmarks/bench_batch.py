"""Batched plan execution vs looped single-plan calls.

Two claims, two kinds of evidence:

* **Identity** (deterministic, CI-gated): a batch run's outputs and
  per-category instruction counters equal the looped single-input
  path exactly — across VLEN, LMUL, ragged length buckets, and the
  data-dependent (pack) loop fallback. These land in ``BENCH_batch.json``,
  which the perf job regenerates and diffs at tolerance 0; only
  deterministic values (counts, booleans, bucket structure) are
  written, never wall-clock.

* **Throughput** (asserted here, reported in the summary table): one
  2D evaluation amortizes capture, cache lookup, dispatch, and
  charging over the whole batch. The win is largest where per-call
  overhead dominates (small/medium n): at n=256×64 rows the batch
  path must be ≥ 10× faster than the loop. At the large-n cell
  (n=10k×64 rows) the serial per-row scan dominates both paths and
  the amortization win shrinks — the floor there is 1.5× and the
  measured ratio is reported. See docs/batching.md for the regime
  discussion.

Grid cells run through :func:`repro.parallel.batch_cell`, so
``REPRO_BENCH_JOBS=N`` / ``repro bench --jobs N`` fans them over
worker processes; output is byte-identical at any job count.
"""

from __future__ import annotations

import json
import timeit
from pathlib import Path

import numpy as np

from repro import SVM
from repro.bench.harness import ExperimentResult
from repro.parallel import CHAIN, batch_cell, default_jobs, run_grid
from repro.utils.formatting import fmt_count, fmt_ratio

from conftest import record, rng

SEED = 0
DEPTH = 3


def _pipe(lz, data):
    for op, x in CHAIN[:DEPTH]:
        getattr(lz, op)(data, x)
    lz.plus_scan(data)
    return data


def _loop(svm, rows):
    outs = []
    for row in rows:
        data = svm.array(row)
        with svm.lazy() as lz:
            _pipe(lz, data)
        outs.append(data.to_numpy())
        svm.free(data)
    return outs


def test_batch_identity_grid(benchmark):
    params = [
        {"n": n, "vlen": vlen, "lmul": lmul, "rows": batch_rows,
         "depth": DEPTH, "seed": SEED}
        for vlen in (128, 512)
        for lmul in (1, 8)
        for n, batch_rows in ((3000, 16), (10_000, 8))
    ]
    cells = run_grid(batch_cell, params, jobs=default_jobs())
    rows = []
    for cell in cells:
        assert cell["identical_results"], cell
        assert cell["identical_counters"], cell
        assert cell["batch_instr"] == cell["loop_instr"], cell
        assert cell["path"] == "2d", cell
        rows.append([str(cell["vlen"]), str(cell["lmul"]), str(cell["n"]),
                     str(cell["rows"]), fmt_count(cell["loop_instr"]),
                     fmt_count(cell["batch_instr"]), cell["path"]])
    record(ExperimentResult(
        "Batch identity grid",
        f"depth-{DEPTH} chain + plus_scan: batch vs looped single calls",
        ["VLEN", "LMUL", "n", "rows", "loop instr", "batch instr", "path"],
        rows,
        notes=["instruction counts are identical by construction: row 0 runs"
               " the ordinary engine and its closed-form delta is scaled by"
               " the remaining rows."],
    ))

    # ragged batch: bucketing by length, auto strict/fast routing
    lengths = [7, 3000, 7, 5000, 3000, 1, 3000]
    g = rng(SEED)
    ragged_rows = [g.integers(0, 2**16, n, dtype=np.uint32) for n in lengths]
    loop_svm = SVM(vlen=512, codegen="paper")  # auto mode
    loop_outs = _loop(loop_svm, ragged_rows)
    batch_svm = SVM(vlen=512, codegen="paper")
    res = batch_svm.batch(_pipe, ragged_rows)
    ragged = {
        "lengths": lengths,
        "buckets": [{"n": b.n, "rows": b.rows, "path": b.path}
                    for b in res.buckets],
        "identical_results": bool(all(
            np.array_equal(a, b) for a, b in zip(loop_outs, res)
        )),
        "identical_counters": bool(
            loop_svm.counters.snapshot().by_category
            == batch_svm.counters.snapshot().by_category
        ),
    }
    assert ragged["identical_results"] and ragged["identical_counters"]

    # pack's data-dependent charge must take the loop fallback
    def pack_pipe(lz, data):
        flags = lz.p_lt(data, 2**15)
        out, _ = lz.pack(data, flags)
        lz.free(flags)
        return out
    pack_rows = [g.integers(0, 2**16, 3000, dtype=np.uint32)
                 for _ in range(4)]
    loop_svm = SVM(vlen=512, codegen="paper", mode="fast")
    loop_outs = []
    for row in pack_rows:
        data = loop_svm.array(row)
        with loop_svm.lazy() as lz:
            out = pack_pipe(lz, data)
        loop_outs.append(out.to_numpy())
        loop_svm.free(data)
        loop_svm.free(out)
    batch_svm = SVM(vlen=512, codegen="paper", mode="fast")
    res = batch_svm.batch(pack_pipe, pack_rows)
    pack_cell = {
        "path": res.buckets[0].path,
        "identical_results": bool(all(
            np.array_equal(a, b) for a, b in zip(loop_outs, res)
        )),
        "identical_counters": bool(
            loop_svm.counters.snapshot().by_category
            == batch_svm.counters.snapshot().by_category
        ),
    }
    assert pack_cell["path"] == "loop"
    assert pack_cell["identical_results"] and pack_cell["identical_counters"]

    out = Path(__file__).resolve().parent.parent / "BENCH_batch.json"
    out.write_text(json.dumps({
        "pipeline": f"elementwise chain (depth {DEPTH}) + plus_scan, uint32",
        "codegen": "paper",
        "mode": "fast",
        "grid": cells,
        "ragged": ragged,
        "pack_fallback": pack_cell,
    }, indent=2) + "\n")

    benchmark(batch_cell,
              {"n": 3000, "vlen": 512, "lmul": 1, "rows": 16,
               "depth": DEPTH, "seed": SEED})


def test_batch_wallclock_speedup():
    table = []
    # (n, rows, floor): the dispatch-bound cell carries the >=10x
    # acceptance; at n=10k the serial per-row accumulate dominates
    # both paths, so the honest floor there is lower (see module doc)
    for n, batch_rows, floor in ((256, 64, 10.0), (10_000, 64, 1.5)):
        g = rng(SEED)
        data_rows = [g.integers(0, 2**16, n, dtype=np.uint32)
                     for _ in range(batch_rows)]
        svm = SVM(vlen=512, codegen="paper", mode="fast")
        loop_outs = _loop(svm, data_rows)  # also warms the plan cache
        res = svm.batch(_pipe, data_rows)
        assert all(np.array_equal(a, b) for a, b in zip(loop_outs, res))

        t_loop = min(timeit.repeat(
            lambda: _loop(svm, data_rows), number=1, repeat=9))
        t_batch = min(timeit.repeat(
            lambda: svm.batch(_pipe, data_rows), number=1, repeat=9))
        speedup = t_loop / t_batch
        table.append([str(n), str(batch_rows), f"{t_loop * 1e3:.2f} ms",
                      f"{t_batch * 1e3:.2f} ms", fmt_ratio(speedup),
                      f">= {floor:g}x"])
        assert speedup >= floor, (
            f"n={n} rows={batch_rows}: batch {t_batch * 1e3:.2f} ms vs "
            f"loop {t_loop * 1e3:.2f} ms = {speedup:.1f}x < floor {floor:g}x"
        )
    record(ExperimentResult(
        "Batch wall-clock",
        f"depth-{DEPTH} chain + plus_scan at VLEN=512, batch vs loop "
        "(best of 9)",
        ["n", "rows", "loop", "batch", "speedup x", "floor"], table,
        notes=["wall-clock is machine-dependent and intentionally kept out"
               " of BENCH_batch.json; the CI gate locks only the"
               " deterministic identity data."],
    ))

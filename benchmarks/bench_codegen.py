"""Generated NumPy kernels (codegen backend) vs the interpreted
specialized executor.

Two claims, two kinds of evidence (the ``bench_batch.py`` pattern):

* **Identity** (deterministic, CI-gated): the codegen backend's
  outputs and per-category instruction counters equal the interpreted
  executor exactly — across the full VLEN ∈ {128, 256, 512, 1024} ×
  LMUL ∈ {1, 2, 4, 8} grid, for single-call and batched (2D)
  execution. These land in ``BENCH_codegen.json``, which the perf job
  regenerates and diffs at tolerance 0; only deterministic values
  (counts, booleans) are written, never wall-clock.

* **Throughput** (asserted here, reported in the summary table): a
  generated kernel replaces the per-step interpreter loop (attribute
  loads, kind dispatch, scalar wrapping, the charge loop) with one
  flat code object, so replays of a warm plan get cheaper where
  dispatch dominates. In the dispatch-bound regime (n ≤ 256) the
  generated kernel must be ≥ 2x faster than the interpreted fast
  path; in the compute-bound regime (n = 100k) the NumPy work
  dominates both backends and the floor is parity (no regression).

Both backends replay the *same* warm plan through
:func:`repro.engine.executor.execute`, so the comparison isolates the
execution tier — capture and fusion costs are identical and excluded.

Grid cells run through :func:`repro.parallel.codegen_cell`, so
``REPRO_BENCH_JOBS=N`` / ``repro bench --jobs N`` fans them over
worker processes; output is byte-identical at any job count.
"""

from __future__ import annotations

import json
import timeit
from pathlib import Path

import numpy as np

from repro import SVM
from repro.bench.harness import ExperimentResult
from repro.engine.executor import execute
from repro.parallel import CHAIN, codegen_cell, default_jobs, run_grid
from repro.utils.formatting import fmt_count, fmt_ratio

from conftest import record, rng

SEED = 0
DEPTH = 5

VLENS = (128, 256, 512, 1024)
LMULS = (1, 2, 4, 8)


def _pipe(lz, data):
    for op, x in CHAIN[:DEPTH]:
        getattr(lz, op)(data, x)
    lz.plus_scan(data)
    return data


def _split_pipe(lz, data):
    flags = lz.get_flags(data, 0)
    out, _ = lz.split(data, flags)
    return out


def _radix_pipe(lz, data):
    a = data
    for bit in range(3):
        flags = lz.get_flags(a, bit)
        a, _ = lz.split(a, flags)
    lz.copy(a, out=data)
    return data


PIPELINES = (("split", _split_pipe), ("radix3", _radix_pipe))


def test_codegen_identity_grid(benchmark):
    params = [
        {"n": n, "vlen": vlen, "lmul": lmul, "depth": DEPTH, "seed": SEED}
        for vlen in VLENS
        for lmul in LMULS
        for n in (256, 3000)
    ]
    cells = run_grid(codegen_cell, params, jobs=default_jobs())
    rows = []
    for cell in cells:
        assert cell["identical_results"], cell
        assert cell["identical_counters"], cell
        assert cell["codegen_instr"] == cell["interp_instr"], cell
        rows.append([str(cell["vlen"]), str(cell["lmul"]), str(cell["n"]),
                     fmt_count(cell["interp_instr"]),
                     fmt_count(cell["codegen_instr"])])
    record(ExperimentResult(
        "Codegen identity grid",
        f"depth-{DEPTH} chain + plus_scan: generated kernels vs "
        "interpreted executor",
        ["VLEN", "LMUL", "n", "interp instr", "codegen instr"],
        rows,
        notes=["generated kernels charge the same closed-form counter"
               " profile and compute the same NumPy expressions, so both"
               " columns are equal by construction — the grid locks that"
               " invariant."],
    ))

    # batched (2D) execution: the generated fn2d kernels must match the
    # interpreted _group_2d path bit-for-bit and counter-for-counter
    batch = []
    g = rng(SEED)
    data_rows = [g.integers(0, 2**16, 512, dtype=np.uint32)
                 for _ in range(16)]
    for vlen in (128, 1024):
        outs = {}
        snaps = {}
        for backend in ("interp", "codegen"):
            svm = SVM(vlen=vlen, codegen="paper", mode="fast",
                      backend=backend)
            res = svm.batch(_pipe, data_rows)
            outs[backend] = [np.asarray(r) for r in res]
            snaps[backend] = svm.counters.snapshot()
        batch.append({
            "vlen": vlen,
            "n": 512,
            "rows": len(data_rows),
            "instr": snaps["codegen"].total,
            "identical_results": bool(all(
                np.array_equal(a, b)
                for a, b in zip(outs["interp"], outs["codegen"])
            )),
            "identical_counters": bool(
                snaps["interp"].by_category == snaps["codegen"].by_category
            ),
        })
    for cell in batch:
        assert cell["identical_results"], cell
        assert cell["identical_counters"], cell

    # data-dependent pipelines through the OpSpec registry: split and a
    # 3-round radix pass must capture with zero OPAQUE nodes and batch
    # on the 2D path (no loop fallback), bit- and counter-identical to
    # looping the captured single-row runs
    from repro.engine.ir import Kind

    pipelines = []
    pipe_rows = []
    for name, pipe in PIPELINES:
        g = rng(SEED)
        raw = [g.integers(0, 2**16, 256, dtype=np.uint32)
               for _ in range(8)]
        svm = SVM(vlen=512, codegen="paper", mode="fast",
                  backend="codegen")
        res = svm.batch(pipe, raw)
        batched = [np.asarray(r) for r in res]
        batch_snap = svm.counters.snapshot()
        paths = [b.path for b in res.buckets]

        # svm.batch drives buckets directly, so probe the captured plan
        # shape with one single-row run on a fresh context
        probe = SVM(vlen=512, codegen="paper", mode="fast",
                    backend="codegen")
        with probe.lazy() as lz:
            pipe(lz, probe.array(raw[0]))
        plan, fused = probe.engine.last_plan, probe.engine.last_fused
        opaque = sum(1 for nd in plan.nodes if nd.kind is Kind.OPAQUE)
        compiled = fused.compiled

        ref_svm = SVM(vlen=512, codegen="paper", mode="fast",
                      backend="codegen")
        looped = []
        for row in raw:
            data = ref_svm.array(row)
            with ref_svm.lazy() as lz:
                out_arr = pipe(lz, data)
            looped.append(out_arr.to_numpy())
        loop_snap = ref_svm.counters.snapshot()

        cell = {
            "pipeline": name,
            "n": 256,
            "rows": len(raw),
            "nodes": len(plan.nodes),
            "opaque_nodes": opaque,
            "whole_plan_kernel": bool(
                compiled is not None and compiled.plan_fn is not None),
            "batch_paths": paths,
            "loop_fallback_buckets": paths.count("loop"),
            "instr": batch_snap.total,
            "identical_results": bool(all(
                np.array_equal(a, b) for a, b in zip(batched, looped))),
            "identical_counters": bool(
                batch_snap.by_category == loop_snap.by_category),
        }
        assert cell["opaque_nodes"] == 0, cell
        assert cell["loop_fallback_buckets"] == 0, cell
        assert cell["identical_results"], cell
        assert cell["identical_counters"], cell
        pipelines.append(cell)
        pipe_rows.append([name, str(cell["nodes"]),
                          str(cell["opaque_nodes"]),
                          str(cell["loop_fallback_buckets"]),
                          fmt_count(cell["instr"])])
    record(ExperimentResult(
        "Registry pipelines",
        "split / radix pipelines: structured capture, no opaque nodes, "
        "2D batch path (VLEN=512, 8 rows of n=256)",
        ["pipeline", "nodes", "opaque", "loop buckets", "instr"],
        pipe_rows,
        notes=["permute/enumerate/pack/seg_scan capture as structured"
               " kinds via the OpSpec registry, so these data-dependent"
               " pipelines fuse, batch, and stay counter-identical to"
               " the per-row loop."],
    ))

    out = Path(__file__).resolve().parent.parent / "BENCH_codegen.json"
    out.write_text(json.dumps({
        "pipeline": f"elementwise chain (depth {DEPTH}) + plus_scan, uint32",
        "codegen": "paper",
        "mode": "fast",
        "grid": cells,
        "batch": batch,
        "pipelines": pipelines,
    }, indent=2) + "\n")

    benchmark(codegen_cell,
              {"n": 3000, "vlen": 512, "lmul": 1, "depth": DEPTH,
               "seed": SEED})


def test_codegen_wallclock_speedup():
    table = []
    # (n, reps, floor): the dispatch-bound cells carry the >=2x
    # acceptance; at n=100k the NumPy array work dominates both
    # backends, so the honest floor there is parity (see module doc)
    for n, reps, floor in ((64, 2000, 2.0), (256, 2000, 2.0),
                           (100_000, 50, 1.0)):
        times = {}
        for backend in ("interp", "codegen"):
            svm = SVM(vlen=512, codegen="paper", mode="fast",
                      backend=backend)
            data = svm.array(rng(SEED).integers(0, 2**16, n,
                                                dtype=np.uint32))
            with svm.lazy() as lz:  # capture once; replays are measured
                _pipe(lz, data)
            plan, fused = svm.engine.last_plan, svm.engine.last_fused
            times[backend] = min(timeit.repeat(
                lambda: execute(svm, plan, fused, backend=backend),
                number=reps, repeat=9)) / reps
        speedup = times["interp"] / times["codegen"]
        table.append([str(n), f"{times['interp'] * 1e6:.2f} us",
                      f"{times['codegen'] * 1e6:.2f} us",
                      fmt_ratio(speedup), f">= {floor:g}x"])
        assert speedup >= floor, (
            f"n={n}: codegen {times['codegen'] * 1e6:.2f} us vs interp "
            f"{times['interp'] * 1e6:.2f} us = {speedup:.2f}x < floor "
            f"{floor:g}x"
        )
    record(ExperimentResult(
        "Codegen wall-clock",
        f"depth-{DEPTH} chain + plus_scan at VLEN=512, warm-plan replay "
        "(best of 9)",
        ["n", "interp", "codegen", "speedup x", "floor"], table,
        notes=["wall-clock is machine-dependent and intentionally kept out"
               " of BENCH_codegen.json; the CI gate locks only the"
               " deterministic identity data."],
    ))

"""Extension ablation: digit width in radix sort — why the paper
splits one bit at a time.

Classical radix sorts widen the digit to cut pass counts; in the scan
vector model each extra bucket costs a full enumerate+select sweep
(no scatter-with-accumulate exists to histogram in one pass), so the
per-pass cost grows as Θ(2^w) while passes shrink only by w. Measured:
the paper's binary split — whose two buckets share a single pair of
enumerates inside `split` — beats every wider digit.
"""

import numpy as np

from repro import SVM
from repro.algorithms import split_radix_sort, split_radix_sort_wide
from repro.bench.harness import ExperimentResult
from repro.utils.formatting import fmt_count, fmt_ratio

from conftest import record

N = 10**4


def _cost(w: int | None) -> int:
    svm = SVM(vlen=1024, codegen="paper", mode="fast")
    data = np.random.default_rng(0).integers(0, 2**32, N, dtype=np.uint32)
    arr = svm.array(data)
    svm.reset()
    if w is None:
        split_radix_sort(svm, arr)
    else:
        split_radix_sort_wide(svm, arr, digit_bits=w)
    assert np.array_equal(arr.to_numpy(), np.sort(data))
    return svm.instructions


def test_digit_width_ablation(benchmark):
    base = _cost(None)
    rows = [["split (1 bit, shared enumerates)", fmt_count(base), "1.00"]]
    for w in (1, 2, 4, 8):
        c = _cost(w)
        rows.append([f"wide radix, w={w} ({32 // w} passes)",
                     fmt_count(c), fmt_ratio(c / base)])
        assert c > base, "binary split must win at every digit width"
    res = ExperimentResult(
        "Extension F", f"radix digit width (N={N}, VLEN=1024)",
        ["variant", "instructions", "vs split"], rows,
        notes=["the 2^w per-pass bucket sweeps outgrow the w-fold pass"
               " reduction; Listing 9's one-bit split is optimal for"
               " this primitive set, not a simplification."],
    )
    record(res)
    benchmark(_cost, 2)

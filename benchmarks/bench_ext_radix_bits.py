"""Extension bench: split radix sort cost vs key width.

Listing 9 always runs 32 passes; when keys are known to fit in fewer
bits, passes (and cost) drop linearly — the standard radix-sort
optimization, quantified on the simulator. Also contrasts radix sort
with flat quicksort, whose cost scales with lg(n) rounds of ~20
primitive passes instead of the key width.
"""

import numpy as np

from repro import SVM
from repro.algorithms import flat_quicksort, split_radix_sort
from repro.bench.harness import ExperimentResult
from repro.utils.formatting import fmt_count, fmt_ratio

from conftest import record

N = 10**4


def _radix_cost(bits: int) -> int:
    svm = SVM(vlen=1024, codegen="paper", mode="fast")
    data = np.random.default_rng(0).integers(0, 1 << bits, N, dtype=np.uint32)
    arr = svm.array(data)
    svm.reset()
    split_radix_sort(svm, arr, bits=bits)
    assert np.array_equal(arr.to_numpy(), np.sort(data))
    return svm.instructions


def test_radix_bits_ablation(benchmark):
    rows = []
    full = _radix_cost(32)
    for bits in (4, 8, 16, 24, 32):
        c = _radix_cost(bits)
        rows.append([bits, fmt_count(c), fmt_ratio(full / c)])
    # quicksort comparison on the same data shape
    svm = SVM(vlen=1024, codegen="paper", mode="fast")
    data = np.random.default_rng(0).integers(0, 1 << 16, N, dtype=np.uint32)
    arr = svm.array(data)
    svm.reset()
    rounds = flat_quicksort(svm, arr, shuffle=True,
                            rng=np.random.default_rng(1))
    rows.append([f"qs({rounds}r)", fmt_count(svm.instructions),
                 fmt_ratio(full / svm.instructions)])
    res = ExperimentResult(
        "Extension E", f"sort cost vs key width (N={N}, VLEN=1024)",
        ["key bits", "instructions", "speedup vs 32-bit radix"], rows,
        notes=["radix cost is linear in the key width (one split pass per"
               " bit); flat quicksort instead pays ~20 primitive passes per"
               " lg(n) round, which loses at this N."],
    )
    record(res)
    benchmark(_radix_cost, 8)

"""Extension bench: the combined VLEN x LMUL design space.

The paper studies VLEN (Table 7) and LMUL (Table 5) separately, both
for segmented scan. This bench crosses them: for each microarchitecture
width, which register grouping wins at N=10^5 — and does the spill
crossover move? (It does: narrower machines have smaller vlmax, so the
strip savings of big groups amortize the same spill cost later.)
"""

from repro.bench.harness import ExperimentResult
from repro.tune import choose_lmul, measure_kernel
from repro.rvv.types import LMUL
from repro.utils.formatting import fmt_count

from conftest import record

N = 10**5


def test_vlen_lmul_matrix(benchmark):
    rows = []
    for vlen in (128, 256, 512, 1024):
        counts = {
            int(lm): measure_kernel("seg_plus_scan", N, vlen, lm).instructions
            for lm in LMUL
        }
        best = min(counts, key=counts.get)
        advisor = choose_lmul("seg_plus_scan", N, vlen)
        assert int(advisor.lmul) == best  # the advisor generalizes across VLEN
        rows.append([vlen] + [fmt_count(counts[k]) for k in (1, 2, 4, 8)]
                    + [f"m{best}"])
    res = ExperimentResult(
        "Extension D", f"seg_plus_scan across VLEN x LMUL (N={N})",
        ["vlen", "LMUL=1", "LMUL=2", "LMUL=4", "LMUL=8", "best"], rows,
        notes=["the advisor's closed form picks the argmin at every VLEN,"
               " not just the paper's 1024-bit configuration."],
    )
    record(res)
    benchmark(measure_kernel, "seg_plus_scan", N, 512, LMUL.M4)

"""Figure 5: speedup vs VLEN=128 — p_add scales on the ideal
vlen/128 line while segmented scan saturates (its in-register phase
costs lg(vl) steps, growing with the register)."""

from repro.bench import experiments
from repro.tune import sweep_vlen

from conftest import record


def test_figure5(benchmark):
    res = experiments.figure5()
    record(res)
    benchmark(sweep_vlen, "seg_plus_scan", 10**4)
    res.check_within(0.01)
    # the qualitative claims of the figure
    padd = {int(r[0]): float(r[1]) for r in res.rows}
    seg = {int(r[0]): float(r[3]) for r in res.rows}
    assert padd[1024] > 7.5, "p_add should be near the ideal 8x"
    assert seg[1024] < 5.5, "seg scan must scale sublinearly"
    assert seg[128] == 1.0 and padd[128] == 1.0

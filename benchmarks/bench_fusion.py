"""Strip fusion vs eager execution across the VLEN/LMUL grid.

The lazy engine's pitch is that a chain of elementwise passes feeding
a scan costs one load + one store per strip instead of one round trip
per pass (§5's strip-mining discipline applied across *operations*,
not just within one). This bench quantifies that on a depth-3 chain +
plus-scan pipeline with the paper-calibrated codegen preset, sweeps
the fused-vs-eager ratio over VLEN ∈ {128, 256, 512, 1024} × LMUL ∈
{1, 2, 4, 8} and over chain depth, and emits ``BENCH_fusion.json``.

The headline acceptance check lives here: at VLEN=1024 the fused
depth-3+scan pipeline must save at least 25% of total dynamic
instructions over the eager spelling.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro import SVM
from repro.bench.harness import ExperimentResult
from repro.rvv.types import LMUL
from repro.utils.formatting import fmt_count, fmt_ratio

from conftest import record

N = 100_000
CHAIN = (("p_add", 10), ("p_mul", 3), ("p_xor", 5), ("p_or", 1), ("p_add", 7))


def _pipeline(api, data, lmul, depth):
    for op, x in CHAIN[:depth]:
        getattr(api, op)(data, x, lmul=lmul)
    api.plus_scan(data, lmul=lmul)
    return data


def _measure(n, vlen, lmul, depth, fused):
    svm = SVM(vlen=vlen, codegen="paper", mode="fast")
    data = svm.array(np.random.default_rng(0).integers(0, 2**16, n, dtype=np.uint32))
    svm.reset()
    if fused:
        with svm.lazy() as lz:
            _pipeline(lz, data, lmul, depth)
    else:
        _pipeline(svm, data, lmul, depth)
    return svm.instructions, data.to_numpy()


def test_fusion_grid(benchmark):
    grid = []
    rows = []
    for vlen in (128, 256, 512, 1024):
        for lmul in (1, 2, 4, 8):
            eager, ref = _measure(N, vlen, LMUL(lmul), 3, fused=False)
            fused, got = _measure(N, vlen, LMUL(lmul), 3, fused=True)
            assert np.array_equal(ref, got)
            assert fused <= eager
            saving = 100.0 * (eager - fused) / eager
            grid.append({"vlen": vlen, "lmul": lmul, "eager": eager,
                         "fused": fused, "saving_pct": round(saving, 2)})
            rows.append([str(vlen), str(lmul), fmt_count(eager),
                         fmt_count(fused), fmt_ratio(eager / fused),
                         f"{saving:.1f}%"])

    # acceptance: depth-3 chains at VLEN=1024 save >= 25% at every LMUL
    for cell in grid:
        if cell["vlen"] == 1024:
            assert cell["saving_pct"] >= 25.0, cell

    depth_sweep = []
    depth_rows = []
    for depth in (1, 2, 3, 4, 5):
        eager, ref = _measure(N, 1024, LMUL.M1, depth, fused=False)
        fused, got = _measure(N, 1024, LMUL.M1, depth, fused=True)
        assert np.array_equal(ref, got)
        saving = 100.0 * (eager - fused) / eager
        depth_sweep.append({"depth": depth, "eager": eager, "fused": fused,
                            "saving_pct": round(saving, 2)})
        depth_rows.append([str(depth), fmt_count(eager), fmt_count(fused),
                           fmt_ratio(eager / fused), f"{saving:.1f}%"])

    record(ExperimentResult(
        "Fusion grid",
        f"depth-3 chain + plus_scan, N={N:,}, paper codegen: fused vs eager",
        ["VLEN", "LMUL", "eager", "fused", "speedup x", "saved"], rows,
        notes=["every cell is bit-identical to the eager run; the saving is"
               " the eliminated per-strip load/store round trips and their"
               " vsetvl/loop bookkeeping."],
    ))
    record(ExperimentResult(
        "Fusion depth sweep",
        f"chain depth + plus_scan at VLEN=1024 LMUL=1, N={N:,}",
        ["depth", "eager", "fused", "speedup x", "saved"], depth_rows,
    ))

    out = Path(__file__).resolve().parent.parent / "BENCH_fusion.json"
    out.write_text(json.dumps({
        "pipeline": "elementwise chain (depth d) + plus_scan, uint32",
        "n": N,
        "codegen": "paper",
        "mode": "fast",
        "grid": grid,
        "depth_sweep": depth_sweep,
    }, indent=2) + "\n")

    benchmark(_measure, 10_000, 1024, LMUL.M1, 3, True)

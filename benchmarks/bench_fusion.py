"""Strip fusion vs eager execution across the VLEN/LMUL grid.

The lazy engine's pitch is that a chain of elementwise passes feeding
a scan costs one load + one store per strip instead of one round trip
per pass (§5's strip-mining discipline applied across *operations*,
not just within one). This bench quantifies that on a depth-3 chain +
plus-scan pipeline with the paper-calibrated codegen preset, sweeps
the fused-vs-eager ratio over VLEN ∈ {128, 256, 512, 1024} × LMUL ∈
{1, 2, 4, 8} and over chain depth, and emits ``BENCH_fusion.json``.

Grid cells run through :func:`repro.parallel.fusion_cell` /
:func:`repro.parallel.run_grid`, so setting ``REPRO_BENCH_JOBS=N`` (or
running ``repro bench --jobs N``) fans the sweep over N worker
processes with per-worker machines; results and JSON output are
byte-identical at any job count.

The headline acceptance check lives here: at VLEN=1024 the fused
depth-3+scan pipeline must save at least 25% of total dynamic
instructions over the eager spelling.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.harness import ExperimentResult
from repro.parallel import default_jobs, fusion_cell, run_grid
from repro.rvv.types import LMUL
from repro.utils.formatting import fmt_count, fmt_ratio

from conftest import record

N = 100_000
SEED = 0


def test_fusion_grid(benchmark):
    params = [
        {"n": N, "vlen": vlen, "lmul": lmul, "depth": 3, "seed": SEED}
        for vlen in (128, 256, 512, 1024)
        for lmul in (1, 2, 4, 8)
    ]
    cells = run_grid(fusion_cell, params, jobs=default_jobs())

    grid = []
    rows = []
    for cell in cells:
        assert cell.pop("identical"), cell
        assert cell["fused"] <= cell["eager"]
        grid.append(cell)
        rows.append([str(cell["vlen"]), str(cell["lmul"]),
                     fmt_count(cell["eager"]), fmt_count(cell["fused"]),
                     fmt_ratio(cell["eager"] / cell["fused"]),
                     f"{cell['saving_pct']:.1f}%"])

    # acceptance: depth-3 chains at VLEN=1024 save >= 25% at every LMUL
    for cell in grid:
        if cell["vlen"] == 1024:
            assert cell["saving_pct"] >= 25.0, cell

    depth_params = [
        {"n": N, "vlen": 1024, "lmul": 1, "depth": depth, "seed": SEED}
        for depth in (1, 2, 3, 4, 5)
    ]
    depth_cells = run_grid(fusion_cell, depth_params, jobs=default_jobs())
    depth_sweep = []
    depth_rows = []
    for depth_param, cell in zip(depth_params, depth_cells):
        assert cell.pop("identical"), cell
        depth_sweep.append({"depth": depth_param["depth"],
                            "eager": cell["eager"], "fused": cell["fused"],
                            "saving_pct": cell["saving_pct"]})
        depth_rows.append([str(depth_param["depth"]), fmt_count(cell["eager"]),
                           fmt_count(cell["fused"]),
                           fmt_ratio(cell["eager"] / cell["fused"]),
                           f"{cell['saving_pct']:.1f}%"])

    record(ExperimentResult(
        "Fusion grid",
        f"depth-3 chain + plus_scan, N={N:,}, paper codegen: fused vs eager",
        ["VLEN", "LMUL", "eager", "fused", "speedup x", "saved"], rows,
        notes=["every cell is bit-identical to the eager run; the saving is"
               " the eliminated per-strip load/store round trips and their"
               " vsetvl/loop bookkeeping."],
    ))
    record(ExperimentResult(
        "Fusion depth sweep",
        f"chain depth + plus_scan at VLEN=1024 LMUL=1, N={N:,}",
        ["depth", "eager", "fused", "speedup x", "saved"], depth_rows,
    ))

    out = Path(__file__).resolve().parent.parent / "BENCH_fusion.json"
    out.write_text(json.dumps({
        "pipeline": "elementwise chain (depth d) + plus_scan, uint32",
        "n": N,
        "codegen": "paper",
        "mode": "fast",
        "grid": grid,
        "depth_sweep": depth_sweep,
    }, indent=2) + "\n")

    benchmark(fusion_cell,
              {"n": 10_000, "vlen": 1024, "lmul": int(LMUL.M1), "depth": 3,
               "seed": SEED})

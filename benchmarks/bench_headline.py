"""The abstract's headline speedups at N=10^6: 2.85x/4.29x at LMUL=1
(scan / segmented scan) improving to 21.93x/15.09x with LMUL tuning.

The segmented pair reproduces (4.29x and 15.09x -> 15.10x); the scan
pair inherits the paper's internal inconsistencies (see
EXPERIMENTS.md), so only the segmented claims are asserted.
"""

from repro.bench import experiments
from repro.tune import measure_kernel
from repro.rvv.types import LMUL

from conftest import record


def test_headline(benchmark):
    res = experiments.headline()
    record(res)
    benchmark(measure_kernel, "seg_plus_scan", 10**6, 1024, LMUL.M8)
    res.check_within(0.01)

"""Compiled whole-plan C kernels (native backend) vs codegen/interp.

Two claims, two kinds of evidence (the ``bench_codegen.py`` pattern):

* **Identity** (deterministic, CI-gated): the native backend's warm
  replays — the compiled C kernel plus the recorded counter-charge
  profile — produce outputs and per-category instruction counters
  equal to the interpreted executor exactly, across a
  VLEN × LMUL × n grid and the batched (2D) path, and ``native-speed``
  keeps outputs identical with counters compiled out. These land in
  ``BENCH_native.json`` which the perf job regenerates and diffs at
  tolerance 0; only deterministic values (counts, booleans) are
  written, never wall-clock. The identity cells hold with or without
  a C toolchain — no compiler just means the tier degrades to codegen,
  which is the contract under test too.

* **Throughput** (asserted here, reported in the summary table): one
  compiled C call replaces the whole per-unit Python replay — ufunc
  dispatch, scalar resolution, charge bookkeeping — so dispatch-bound
  replays of small-``n`` fused pipelines get dramatically cheaper. In
  speed mode the compiled kernel must be ≥ 5x faster than the codegen
  backend at n ≤ 256; counters mode (which still replays the charge
  profile) carries a conservative ≥ 2x floor. At n = 100k the array
  work dominates every tier and the honest floor is parity.

Both backends replay the *same* warm plan through
:func:`repro.engine.executor.execute`, so the comparison isolates the
execution tier — capture, fusion, lowering, and compilation costs are
excluded (they are one-time costs amortized across replays).
"""

from __future__ import annotations

import json
import timeit
from pathlib import Path

import numpy as np
import pytest

from repro import SVM
from repro.bench.harness import ExperimentResult
from repro.engine.executor import execute
from repro.engine.native import NativePlan, native_available
from repro.rvv.types import LMUL
from repro.utils.formatting import fmt_count, fmt_ratio

from conftest import record, rng

SEED = 0

#: Interleaved rounds: three lane ops + a scan tail per round, so the
#: plan fuses into ROUNDS distinct groups — the codegen tier pays one
#: Python-level unit replay per group, the native tier one C call for
#: the whole plan. This is the dispatch-bound shape the tier exists for.
ROUNDS = 6

VLENS = (128, 512)
LMULS = (1, 4)
SIZES = (64, 256, 3000)


def _pipe(lz, data):
    for _ in range(ROUNDS):
        lz.p_add(data, 10)
        lz.p_xor(data, 5)
        lz.p_mul(data, 3)
        lz.plus_scan(data)
    return data


def _observe(svm, n, lmul, runs):
    """``runs`` captured executions on identical fresh inputs; returns
    the LAST run's (result, nonzero counters, fused plan) — for the
    native tier run 2 is the first compiled replay."""
    out = counts = fused = None
    for _ in range(runs):
        data = svm.array(rng(SEED).integers(0, 2**16, n, dtype=np.uint32))
        svm.machine.counters.reset()
        with svm.lazy() as lz:
            arr = _pipe(lz, data)
        out = arr.to_numpy()
        counts = {cat.value: k for cat, k in
                  svm.machine.counters.snapshot().by_category.items() if k}
        fused = lz.fused
        svm.free(data)
    return out, counts, fused


def test_native_identity_grid(benchmark):
    cells = []
    table_rows = []
    for vlen in VLENS:
        for lmul in LMULS:
            for n in SIZES:
                ref_svm = SVM(vlen=vlen, mode="fast", codegen="paper",
                              lmul=LMUL(lmul), backend="interp")
                ref, ref_counts, _ = _observe(ref_svm, n, lmul, runs=1)

                nat_svm = SVM(vlen=vlen, mode="fast", codegen="paper",
                              lmul=LMUL(lmul), backend="native")
                got, counts, fused = _observe(nat_svm, n, lmul, runs=2)

                spd_svm = SVM(vlen=vlen, mode="fast", codegen="paper",
                              lmul=LMUL(lmul), backend="native-speed")
                spd, spd_counts, _ = _observe(spd_svm, n, lmul, runs=2)

                cell = {
                    "vlen": vlen,
                    "lmul": lmul,
                    "n": n,
                    "interp_instr": sum(ref_counts.values()),
                    "native_instr": sum(counts.values()),
                    "lowered": isinstance(fused.native, NativePlan),
                    "identical_results": bool(np.array_equal(ref, got)),
                    "identical_counters": bool(counts == ref_counts),
                    "speed_identical_results": bool(
                        np.array_equal(ref, spd)),
                }
                assert cell["lowered"], cell
                assert cell["identical_results"], cell
                assert cell["identical_counters"], cell
                assert cell["speed_identical_results"], cell
                if native_available():
                    # with a toolchain the second run really was the
                    # compiled replay (charge profile recorded) and
                    # speed mode really bypassed the counters
                    assert fused.native.charge_items is not None, cell
                    assert spd_counts == {}, cell
                cells.append(cell)
                table_rows.append([
                    str(vlen), str(lmul), str(n),
                    fmt_count(cell["interp_instr"]),
                    fmt_count(cell["native_instr"]),
                ])

    # batched (2D) execution: whole buckets through the compiled
    # plan_run2d entry point, identical to the interpreted batch path
    batch = []
    for vlen in VLENS:
        raw = [rng(SEED + i).integers(0, 2**16, 256, dtype=np.uint32)
               for i in range(8)]
        outs = {}
        snaps = {}
        for backend in ("interp", "native"):
            svm = SVM(vlen=vlen, mode="fast", codegen="paper",
                      backend=backend)
            res = svm.batch(_pipe, raw)
            outs[backend] = [np.asarray(r) for r in res]
            snaps[backend] = svm.counters.snapshot()
        batch.append({
            "vlen": vlen,
            "n": 256,
            "rows": len(raw),
            "instr": snaps["native"].total,
            "identical_results": bool(all(
                np.array_equal(a, b)
                for a, b in zip(outs["interp"], outs["native"]))),
            "identical_counters": bool(
                snaps["interp"].by_category == snaps["native"].by_category),
        })
    for cell in batch:
        assert cell["identical_results"], cell
        assert cell["identical_counters"], cell

    record(ExperimentResult(
        "Native identity grid",
        f"{ROUNDS}-round interleaved chain+scan: compiled C kernels vs "
        "interpreted executor (warm replay)",
        ["VLEN", "LMUL", "n", "interp instr", "native instr"],
        table_rows,
        notes=["the native tier replays the counter-charge profile its"
               " codegen warm-up recorded, so both columns are equal by"
               " construction — the grid locks that invariant, with or"
               " without a host C toolchain."],
    ))

    out = Path(__file__).resolve().parent.parent / "BENCH_native.json"
    out.write_text(json.dumps({
        "pipeline": f"{ROUNDS} rounds of (add, xor, mul, plus_scan), uint32",
        "codegen": "paper",
        "mode": "fast",
        "grid": cells,
        "batch": batch,
    }, indent=2) + "\n")

    benchmark(lambda: _observe(
        SVM(vlen=512, mode="fast", codegen="paper", backend="native"),
        256, 1, runs=2))


@pytest.mark.skipif(not native_available(),
                    reason="no C toolchain on this host")
def test_native_wallclock_speedup():
    table = []
    # (n, reps, speed_floor, counters_floor): dispatch-bound cells
    # carry the >=5x speed-mode acceptance; at n=100k the array work
    # dominates every backend and the honest floor is parity
    for n, reps, spd_floor, cnt_floor in ((64, 2000, 5.0, 2.0),
                                          (256, 2000, 5.0, 2.0),
                                          (100_000, 50, 1.0, 1.0)):
        times = {}
        for backend in ("codegen", "native", "native-speed"):
            svm = SVM(vlen=512, codegen="paper", mode="fast",
                      backend=backend)
            data = svm.array(rng(SEED).integers(0, 2**16, n,
                                                dtype=np.uint32))
            with svm.lazy() as lz:  # capture once; replays are measured
                _pipe(lz, data)
            plan, fused = svm.engine.last_plan, svm.engine.last_fused
            for _ in range(2):  # warm: lower, compile, record charges
                execute(svm, plan, fused, backend=backend)
            times[backend] = min(timeit.repeat(
                lambda: execute(svm, plan, fused, backend=backend),
                number=reps, repeat=9)) / reps
        speed_x = times["codegen"] / times["native-speed"]
        cnt_x = times["codegen"] / times["native"]
        table.append([str(n), f"{times['codegen'] * 1e6:.2f} us",
                      f"{times['native'] * 1e6:.2f} us",
                      f"{times['native-speed'] * 1e6:.2f} us",
                      fmt_ratio(cnt_x), fmt_ratio(speed_x),
                      f">= {spd_floor:g}x"])
        assert speed_x >= spd_floor, (
            f"n={n}: native-speed {times['native-speed'] * 1e6:.2f} us vs "
            f"codegen {times['codegen'] * 1e6:.2f} us = {speed_x:.2f}x < "
            f"floor {spd_floor:g}x")
        assert cnt_x >= cnt_floor, (
            f"n={n}: native {times['native'] * 1e6:.2f} us vs codegen "
            f"{times['codegen'] * 1e6:.2f} us = {cnt_x:.2f}x < floor "
            f"{cnt_floor:g}x")
    record(ExperimentResult(
        "Native wall-clock",
        f"{ROUNDS}-round chain+scan at VLEN=512, warm-plan replay "
        "(best of 9)",
        ["n", "codegen", "native", "native-speed", "native x",
         "speed x", "floor (speed)"], table,
        notes=["wall-clock is machine-dependent and intentionally kept"
               " out of BENCH_native.json; the CI gate locks only the"
               " deterministic identity data."],
    ))

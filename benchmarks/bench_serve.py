"""The serving daemon: coalescing ratio, identity, and throughput
under concurrency.

Two kinds of evidence, same split as ``bench_batch.py``:

* **Deterministic (CI-gated)**: per-concurrency coalescing structure —
  flush counts, rows, ratio, dispatch path — plus result/counter
  identity against the sequential oracle and total dynamic
  instruction counts. These land in ``BENCH_serve.json`` and must
  reproduce bit-for-bit (the perf job diffs at tolerance 0). Flushes
  are triggered by ``max_rows`` fill, never the timer, so the
  coalescing ratio equals the client count exactly on every run.

* **Wall-clock (asserted here, reported in the summary table, never
  written to JSON)**: requests/s served vs the sequential loop, and
  the p50/p99 request latency from the daemon's own Summary metric.
  At 32 concurrent clients one coalesced 2D flush amortizes capture,
  cache lookup, dispatch, and charging across the whole window, so
  the daemon must beat the sequential loop's throughput.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import SVM
from repro.bench.harness import ExperimentResult
from repro.serve import ServeConfig, ServerThread
from repro.serve.protocol import PIPELINES
from repro.utils.formatting import fmt_count

from conftest import record, rng

SEED = 31
N = 3000
CONCURRENCY = (1, 8, 32)
MIXED = ("chain_scan", "scan", "reverse", "filter")
MIXED_ROWS = 4


def _sequential(requests, cfg):
    """The oracle: every request as one direct SVM capture-and-run on
    a fresh context (the definitional tier)."""
    svm = SVM(vlen=cfg.vlen, codegen=cfg.codegen, mode=cfg.mode)
    outputs = []
    for r in requests:
        arr = np.asarray(r["data"], dtype=np.uint32)
        data = svm.array(arr)
        with svm.lazy() as lz:
            out = PIPELINES[r["pipeline"]](lz, data)
        outputs.append(out.to_numpy())
        svm.free(out)
        if out is not data:
            svm.free(data)
    counters = {c.value: int(n) for c, n
                in svm.machine.counters.snapshot().by_category.items()}
    return outputs, counters


def _serve_round(requests, *, max_rows, workers=1):
    cfg = ServeConfig(max_rows=max_rows, flush_ms=10_000.0, workers=workers)
    with ServerThread(cfg) as st:
        t0 = time.perf_counter()
        served = st.submit_many(requests)
        wall = time.perf_counter() - t0
        stats = st.stats()
    failures = [r for r in served if isinstance(r, BaseException)]
    assert not failures, failures
    return served, stats, wall, cfg


def test_serve_coalescing_and_identity(benchmark):
    g = rng(SEED)
    cells = []
    table_rows = []
    for clients in CONCURRENCY:
        requests = [
            {"pipeline": "chain_scan",
             "data": g.integers(0, 2**16, N, dtype=np.uint32)}
            for _ in range(clients)
        ]
        served, stats, serve_wall, cfg = _serve_round(
            requests, max_rows=clients)

        t0 = time.perf_counter()
        seq_outputs, seq_counters = _sequential(requests, cfg)
        seq_wall = time.perf_counter() - t0

        co = stats["coalescing"]
        cell = {
            "clients": clients,
            "flushes": co["flushes"],
            "rows": co["rows"],
            "ratio": co["ratio"],
            "paths": co["paths"],
            "identical_results": bool(all(
                np.array_equal(r.output, w)
                for r, w in zip(served, seq_outputs))),
            "identical_counters":
                stats["counters"] == dict(sorted(seq_counters.items())),
            "instructions": stats["instructions"],
        }
        assert cell["identical_results"], clients
        assert cell["identical_counters"], clients
        assert cell["flushes"] == 1 and cell["ratio"] == float(clients)
        cells.append(cell)

        p99 = stats["latency_ms"]["p99"]
        table_rows.append([
            str(clients), str(cell["flushes"]), f"{cell['ratio']:.0f}",
            "2d" if co["paths"]["2d"] else "loop",
            fmt_count(cell["instructions"]),
            f"{clients / serve_wall:,.0f}", f"{clients / seq_wall:,.0f}",
            f"{p99:.2f}",
        ])

    # the acceptance bar: real coalescing at 8+ concurrent clients
    assert all(c["ratio"] > 1.0 for c in cells if c["clients"] >= 8)

    # throughput: the coalesced 2D flush must beat the sequential loop
    # once the window is wide (generous floor — CI machines are noisy)
    g2 = rng(SEED + 1)
    wide = [{"pipeline": "chain_scan",
             "data": g2.integers(0, 2**16, N, dtype=np.uint32)}
            for _ in range(32)]
    _, _, serve_wall, cfg = _serve_round(wide, max_rows=32)
    t0 = time.perf_counter()
    _sequential(wide, cfg)
    seq_wall = time.perf_counter() - t0
    assert serve_wall < seq_wall, (
        f"32-way coalesced serving ({serve_wall:.3f}s) should beat the "
        f"sequential loop ({seq_wall:.3f}s)")

    # mixed pipelines: every dispatch regime in one window, still
    # deterministic (each bucket fill-flushes at MIXED_ROWS)
    requests = [
        {"pipeline": pipe,
         "data": g.integers(0, 2**16, N, dtype=np.uint32)}
        for pipe in MIXED for _ in range(MIXED_ROWS)
    ]
    served, stats, _, cfg = _serve_round(requests, max_rows=MIXED_ROWS)
    seq_outputs, seq_counters = _sequential(requests, cfg)
    mixed = {
        "pipelines": list(MIXED),
        "rows_per_pipeline": MIXED_ROWS,
        "flushes": stats["coalescing"]["flushes"],
        "ratio": stats["coalescing"]["ratio"],
        "paths": stats["coalescing"]["paths"],
        "identical_results": bool(all(
            np.array_equal(r.output, w)
            for r, w in zip(served, seq_outputs))),
        "identical_counters":
            stats["counters"] == dict(sorted(seq_counters.items())),
        "instructions": stats["instructions"],
    }
    assert mixed["identical_results"] and mixed["identical_counters"]
    assert mixed["flushes"] == len(MIXED)
    assert mixed["paths"]["loop"] >= 1  # filter's pack fallback

    record(ExperimentResult(
        "Serving coalescing grid",
        f"chain_scan n={N}: coalesced daemon vs sequential loop",
        ["clients", "flushes", "ratio", "path", "instr",
         "serve req/s", "seq req/s", "p99 ms"],
        table_rows,
        notes=["ratio = rows/flushes; flushes trigger on max_rows fill, so"
               " the ratio equals the client count deterministically.",
               "req/s and p99 are wall-clock — reported here, asserted"
               " against the sequential loop, never written to the gated"
               " JSON."],
    ))

    out = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    out.write_text(json.dumps({
        "pipeline": "chain_scan (add/mul/xor chain + plus_scan), uint32",
        "n": N,
        "codegen": "paper",
        "mode": "auto",
        "concurrency": cells,
        "mixed_workload": mixed,
    }, indent=2) + "\n")

    benchmark(_serve_round,
              [{"pipeline": "chain_scan",
                "data": rng(SEED).integers(0, 2**16, N, dtype=np.uint32)}
               for _ in range(8)], max_rows=8)

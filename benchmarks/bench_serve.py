"""The serving daemon: coalescing ratio, identity, and throughput
under concurrency.

Two kinds of evidence, same split as ``bench_batch.py``:

* **Deterministic (CI-gated)**: per-concurrency coalescing structure —
  flush counts, rows, ratio, dispatch path — plus result/counter
  identity against the sequential oracle and total dynamic
  instruction counts. These land in ``BENCH_serve.json`` and must
  reproduce bit-for-bit (the perf job diffs at tolerance 0). Flushes
  are triggered by ``max_rows`` fill, never the timer, so the
  coalescing ratio equals the client count exactly on every run.

* **Wall-clock (asserted here, reported in the summary table, never
  written to JSON)**: requests/s served vs the sequential loop, and
  the p50/p99 request latency from the daemon's own Summary metric.
  At 32 concurrent clients one coalesced 2D flush amortizes capture,
  cache lookup, dispatch, and charging across the whole window, so
  the daemon must beat the sequential loop's throughput.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import SVM
from repro.bench.harness import ExperimentResult
from repro.serve import ServeConfig, ServerThread
from repro.serve.protocol import PIPELINES
from repro.utils.formatting import fmt_count

from conftest import record, rng

SEED = 31
N = 3000
CONCURRENCY = (1, 8, 32)
MIXED = ("chain_scan", "scan", "reverse", "filter", "radix_pack")
MIXED_ROWS = 4


def _sequential(requests, cfg):
    """The oracle: every request as one direct SVM capture-and-run on
    a fresh context (the definitional tier)."""
    svm = SVM(vlen=cfg.vlen, codegen=cfg.codegen, mode=cfg.mode)
    outputs = []
    for r in requests:
        arr = np.asarray(r["data"], dtype=np.uint32)
        data = svm.array(arr)
        with svm.lazy() as lz:
            out = PIPELINES[r["pipeline"]](lz, data)
        outputs.append(out.to_numpy())
        svm.free(out)
        if out is not data:
            svm.free(data)
    counters = {c.value: int(n) for c, n
                in svm.machine.counters.snapshot().by_category.items()}
    return outputs, counters


def _serve_round(requests, *, max_rows, workers=1):
    cfg = ServeConfig(max_rows=max_rows, flush_ms=10_000.0, workers=workers)
    with ServerThread(cfg) as st:
        t0 = time.perf_counter()
        served = st.submit_many(requests)
        wall = time.perf_counter() - t0
        stats = st.stats()
    failures = [r for r in served if isinstance(r, BaseException)]
    assert not failures, failures
    return served, stats, wall, cfg


def test_serve_coalescing_and_identity(benchmark):
    g = rng(SEED)
    cells = []
    table_rows = []
    for clients in CONCURRENCY:
        requests = [
            {"pipeline": "chain_scan",
             "data": g.integers(0, 2**16, N, dtype=np.uint32)}
            for _ in range(clients)
        ]
        served, stats, serve_wall, cfg = _serve_round(
            requests, max_rows=clients)

        t0 = time.perf_counter()
        seq_outputs, seq_counters = _sequential(requests, cfg)
        seq_wall = time.perf_counter() - t0

        co = stats["coalescing"]
        cell = {
            "clients": clients,
            "flushes": co["flushes"],
            "rows": co["rows"],
            "ratio": co["ratio"],
            "paths": co["paths"],
            "identical_results": bool(all(
                np.array_equal(r.output, w)
                for r, w in zip(served, seq_outputs))),
            "identical_counters":
                stats["counters"] == dict(sorted(seq_counters.items())),
            "instructions": stats["instructions"],
        }
        assert cell["identical_results"], clients
        assert cell["identical_counters"], clients
        assert cell["flushes"] == 1 and cell["ratio"] == float(clients)
        cells.append(cell)

        p99 = stats["latency_ms"]["p99"]
        table_rows.append([
            str(clients), str(cell["flushes"]), f"{cell['ratio']:.0f}",
            "2d" if co["paths"]["2d"] else "loop",
            fmt_count(cell["instructions"]),
            f"{clients / serve_wall:,.0f}", f"{clients / seq_wall:,.0f}",
            f"{p99:.2f}",
        ])

    # the acceptance bar: real coalescing at 8+ concurrent clients
    assert all(c["ratio"] > 1.0 for c in cells if c["clients"] >= 8)

    # throughput: the coalesced 2D flush must beat the sequential loop
    # once the window is wide — best of 3 each, single-shot walls at
    # this scale are a few ms and scheduler noise can flip them
    g2 = rng(SEED + 1)
    wide = [{"pipeline": "chain_scan",
             "data": g2.integers(0, 2**16, N, dtype=np.uint32)}
            for _ in range(32)]
    serve_wall = seq_wall = float("inf")
    for _ in range(3):
        _, _, wall, cfg = _serve_round(wide, max_rows=32)
        serve_wall = min(serve_wall, wall)
        t0 = time.perf_counter()
        _sequential(wide, cfg)
        seq_wall = min(seq_wall, time.perf_counter() - t0)
    assert serve_wall < seq_wall, (
        f"32-way coalesced serving ({serve_wall:.3f}s) should beat the "
        f"sequential loop ({seq_wall:.3f}s)")

    # mixed pipelines: every dispatch regime in one window, still
    # deterministic (each bucket fill-flushes at MIXED_ROWS)
    requests = [
        {"pipeline": pipe,
         "data": g.integers(0, 2**16, N, dtype=np.uint32)}
        for pipe in MIXED for _ in range(MIXED_ROWS)
    ]
    served, stats, _, cfg = _serve_round(requests, max_rows=MIXED_ROWS)
    seq_outputs, seq_counters = _sequential(requests, cfg)
    mixed = {
        "pipelines": list(MIXED),
        "rows_per_pipeline": MIXED_ROWS,
        "flushes": stats["coalescing"]["flushes"],
        "ratio": stats["coalescing"]["ratio"],
        "paths": stats["coalescing"]["paths"],
        # pack pipelines serve only the defined survivor prefix (the
        # response's ``valid`` lanes); the sequential oracle's tails
        # past the kept count are undefined malloc residue
        "identical_results": bool(all(
            np.array_equal(r.output,
                           w if r.valid is None else w[:r.valid])
            for r, w in zip(served, seq_outputs))),
        "identical_counters":
            stats["counters"] == dict(sorted(seq_counters.items())),
        "instructions": stats["instructions"],
    }
    assert mixed["identical_results"] and mixed["identical_counters"]
    assert mixed["flushes"] == len(MIXED)
    # both pack pipelines flush as masked 2D on the ragged path —
    # nothing in this window needs the per-row loop fallback
    assert mixed["paths"]["ragged"] >= 2
    assert mixed["paths"]["loop"] == 0

    record(ExperimentResult(
        "Serving coalescing grid",
        f"chain_scan n={N}: coalesced daemon vs sequential loop",
        ["clients", "flushes", "ratio", "path", "instr",
         "serve req/s", "seq req/s", "p99 ms"],
        table_rows,
        notes=["ratio = rows/flushes; flushes trigger on max_rows fill, so"
               " the ratio equals the client count deterministically.",
               "req/s and p99 are wall-clock — reported here, asserted"
               " against the sequential loop, never written to the gated"
               " JSON."],
    ))

    out = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    out.write_text(json.dumps({
        "pipeline": "chain_scan (add/mul/xor chain + plus_scan), uint32",
        "n": N,
        "codegen": "paper",
        "mode": "auto",
        "concurrency": cells,
        "mixed_workload": mixed,
    }, indent=2) + "\n")

    benchmark(_serve_round,
              [{"pipeline": "chain_scan",
                "data": rng(SEED).integers(0, 2**16, N, dtype=np.uint32)}
               for _ in range(8)], max_rows=8)


# ---------------------------------------------------------------------------
# telemetry overhead gate
# ---------------------------------------------------------------------------

TEL_CLIENTS = 32
# the overhead phase runs a production-shaped workload: long rows so
# per-request serving work dominates (the telemetry budget is per
# *request*, and a 5% gate on a toy workload measures scheduler noise)
TEL_N = 100_000
TEL_TOTAL = 96
TEL_ROWS = 32
TEL_REPEATS = 7


def _telemetry_round(requests, *, telemetry: bool):
    cfg = ServeConfig(max_rows=len(requests), flush_ms=10_000.0,
                      telemetry=telemetry)
    with ServerThread(cfg) as st:
        t0 = time.perf_counter()
        served = st.submit_many(requests)
        wall = time.perf_counter() - t0
        stats = st.stats()
        dump = st.flight_dump()
    failures = [r for r in served if isinstance(r, BaseException)]
    assert not failures, failures
    return served, stats, dump, wall


def test_serve_telemetry_overhead():
    """Always-on telemetry must be free where it counts.

    Two phases:

    * **Determinism (CI-gated in ``BENCH_serve.json``)**: fresh
      servers, telemetry on vs off — results and per-category counters
      identical, complete admit→coalesce→flush→complete trace chains
      for every request, and the exact flight-recorder event count the
      workload implies (3 events per request + 2 per flush).

    * **Overhead (asserted, never written to the gated JSON beyond a
      boolean)**: one live server, ``telemetry.enabled`` toggled
      between strictly alternating rounds of a production-shaped
      workload (``TEL_TOTAL`` requests of n=``TEL_N``, coalesced
      ``TEL_ROWS`` per flush). Pairing on/off rounds on the same warm
      server cancels startup, plan-compile, and CPU-frequency noise
      that dwarfs the effect when comparing separate processes.
      Telemetry-on must land within 5% of telemetry-off,
      best-of-``TEL_REPEATS``.
    """
    # -- phase 1: determinism on fresh servers -------------------------
    g = rng(SEED + 7)
    requests = [
        {"pipeline": "chain_scan",
         "data": g.integers(0, 2**16, N, dtype=np.uint32)}
        for _ in range(TEL_CLIENTS)
    ]
    on_served, on_stats, on_dump, _ = _telemetry_round(
        requests, telemetry=True)
    off_served, off_stats, off_dump, _ = _telemetry_round(
        requests, telemetry=False)

    # identity: telemetry must not perturb results or counters
    identical_results = bool(all(
        np.array_equal(a.output, b.output)
        for a, b in zip(on_served, off_served)))
    identical_counters = on_stats["counters"] == off_stats["counters"]
    assert identical_results and identical_counters

    # trace chains: every request's ID spans admit -> complete, and the
    # single max_rows-triggered flush lists all of them
    chains_complete = True
    for res in on_served:
        chain = [e["kind"] for e in on_dump["events"]
                 if e.get("trace") == res.trace_id
                 or res.trace_id in (e.get("traces") or ())]
        chains_complete &= chain == ["admit", "coalesce", "flush",
                                     "complete"]
    assert chains_complete
    # 3 events per request (admit/coalesce/complete) + flush + cache
    events_expected = 3 * TEL_CLIENTS + 2
    assert on_dump["recorded"] == events_expected, on_dump["recorded"]
    assert off_dump["recorded"] == 0

    # -- phase 2: paired-round overhead on one live server -------------
    g2 = rng(SEED + 8)
    wide = [
        {"pipeline": "chain_scan",
         "data": g2.integers(0, 2**16, TEL_N, dtype=np.uint32)}
        for _ in range(TEL_TOTAL)
    ]
    cfg = ServeConfig(max_rows=TEL_ROWS, flush_ms=10_000.0, telemetry=True)
    walls: dict[bool, list] = {True: [], False: []}
    with ServerThread(cfg) as st:

        def one_round(enabled: bool) -> float:
            st.server.telemetry.enabled = enabled
            t0 = time.perf_counter()
            served = st.submit_many(wide)
            wall = time.perf_counter() - t0
            assert not any(isinstance(r, BaseException) for r in served)
            return wall

        one_round(True)   # warm: plan compiled, pools spun up
        one_round(False)
        for _ in range(TEL_REPEATS):
            walls[True].append(one_round(True))
            walls[False].append(one_round(False))

    on_wall, off_wall = min(walls[True]), min(walls[False])
    overhead = on_wall / off_wall - 1.0
    assert overhead <= 0.05, (
        f"telemetry overhead {overhead:.2%} exceeds the 5% budget "
        f"(on {on_wall:.4f}s vs off {off_wall:.4f}s)")

    record(ExperimentResult(
        "Serving telemetry overhead",
        f"chain_scan n={TEL_N}, {TEL_TOTAL} requests coalesced "
        f"{TEL_ROWS}/flush, paired rounds, best of {TEL_REPEATS}",
        ["telemetry", "wall s", "req/s"],
        [["on", f"{on_wall:.4f}", f"{TEL_TOTAL / on_wall:,.0f}"],
         ["off", f"{off_wall:.4f}", f"{TEL_TOTAL / off_wall:,.0f}"]],
        notes=[f"measured overhead {overhead:+.2%} (budget 5%); the gated"
               " JSON records only the deterministic facts."],
    ))

    out = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    doc = json.loads(out.read_text())
    doc["telemetry"] = {
        "clients": TEL_CLIENTS,
        "flushes": 1,
        "events_recorded": events_expected,
        "events_with_telemetry_off": 0,
        "identical_results": identical_results,
        "identical_counters": identical_counters,
        "trace_chains_complete": chains_complete,
        "overhead_within_5pct": bool(overhead <= 0.05),
    }
    out.write_text(json.dumps(doc, indent=2) + "\n")

"""Table 1: split radix sort (Listing 9) vs libc qsort.

Regenerates the paper's dynamic-count comparison at every N, asserts
the reproduction lands within tolerance of the published rows, and
times the full sort at N=10^4 for wall-clock tracking.
"""

import numpy as np

from repro import SVM
from repro.algorithms import split_radix_sort
from repro.bench import experiments
from repro.scalar import GlibcMallocModel

from conftest import record


def _sort_once(n: int = 10**4) -> int:
    svm = SVM(vlen=1024, codegen="paper", mode="fast",
              malloc_model=GlibcMallocModel())
    data = np.random.default_rng(0).integers(0, 1 << 32, n, dtype=np.uint32)
    arr = svm.array(data)
    split_radix_sort(svm, arr)
    return svm.instructions


def test_table1(benchmark):
    res = experiments.table1()
    record(res)
    benchmark(_sort_once)
    # qsort's instrumented count is data-dependent; 7% covers the fit
    # residual plus seed-to-seed variation
    res.check_within(0.07)

"""Table 2: the elementwise p_add primitive (Listing 4) vs the
sequential baseline — exact reproduction for every N >= 10^3."""

from repro.bench import experiments
from repro.tune import measure_kernel

from conftest import record


def test_table2(benchmark):
    res = experiments.table2()
    record(res)
    benchmark(measure_kernel, "p_add", 10**5, 1024)
    res.check_within(0.001)  # exact away from the paper's N=100 anomaly

"""Table 3: the unsegmented plus-scan (Listing 6) vs the sequential
scan — exact at N >= 10^5, within 7% below (the paper's remainder-strip
constants drift at small N; see EXPERIMENTS.md)."""

from repro.bench import experiments
from repro.tune import measure_kernel

from conftest import record


def test_table3(benchmark):
    res = experiments.table3()
    record(res)
    benchmark(measure_kernel, "plus_scan", 10**5, 1024)
    res.check_within(0.07)

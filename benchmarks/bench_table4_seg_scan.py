"""Table 4: the segmented plus-scan (Listing 10) vs the sequential
segmented scan — exact reproduction at every N."""

from repro.bench import experiments
from repro.tune import measure_kernel

from conftest import record


def test_table4(benchmark):
    res = experiments.table4()
    record(res)
    benchmark(measure_kernel, "seg_plus_scan", 10**5, 1024)
    res.check_within(0.001)

"""Table 5: segmented plus-scan across LMUL in {1,2,4,8} — the
register-grouping study, including the LMUL=8 spill anomaly at small N
(driven by the repro.rvv.allocation register-pressure model)."""

from repro.bench import experiments
from repro.tune import measure_kernel
from repro.rvv.types import LMUL

from conftest import record


def test_table5(benchmark):
    res = experiments.table5()
    record(res)
    benchmark(measure_kernel, "seg_plus_scan", 10**5, 1024, LMUL.M8)
    # LMUL in {1,4} columns are exact; LMUL=8's fitted spill model sits
    # within ~3.2% at small N (LMUL=2's printed column is corrupt and
    # excluded; see the table note)
    res.check_within(0.035)

"""Table 6: (speedup over LMUL=1)/LMUL — the declining-returns ratio
of wider register groups for segmented scan."""

from repro.bench import experiments
from repro.tune import measure_kernel
from repro.rvv.types import LMUL

from conftest import record


def test_table6(benchmark):
    res = experiments.table6()
    record(res)
    benchmark(measure_kernel, "seg_plus_scan", 10**5, 1024, LMUL.M4)
    res.check_within(0.035)

"""Table 7: dynamic counts of segmented plus-scan and p_add across
VLEN in {128, 256, 512, 1024} at N=10^4 — VLA scalability."""

from repro.bench import experiments
from repro.tune import measure_kernel

from conftest import record


def test_table7(benchmark):
    res = experiments.table7()
    record(res)
    benchmark(measure_kernel, "seg_plus_scan", 10**4, 128)
    res.check_within(0.01)

"""Tuned dispatch (``SVM(tune="auto")``) vs the untuned default.

Two claims, two kinds of evidence (the bench_batch.py split):

* **Identity + speedup** (deterministic, CI-gated): after a cold
  ``repro tune sweep`` over the serving pipelines, a shape-mixed
  workload dispatched through the tuned policy must be (a) bit- and
  counter-identical to an SVM explicitly pinned to whatever LMUL the
  policy picked per shape, and (b) ≥ 1.2× cheaper in dynamic
  instructions than the untuned default *in aggregate* over the mix.
  Instruction counts are data-oblivious for every pipeline here, so
  everything written to ``BENCH_tune.json`` is deterministic and the
  perf job regenerates + diffs it at tolerance 0.

* **Zero per-request cost** (asserted here, never committed): the
  paired toggle — the same warm workload with ``tune="auto"`` against
  an *empty* DB vs ``tune=None`` — must not measurably slow dispatch;
  the warm tuned path is one fingerprint hash + one memo probe.

The per-shape wins mirror the paper's Tables 5-6: at small n the
policy keeps LMUL=1 (spills would dominate), at large n it jumps to
LMUL=8 (fewer strips); the aggregate gate only clears because the
policy picks *differently per shape* — pinning any single LMUL for
the whole mix does worse on one end.
"""

from __future__ import annotations

import json
import timeit
from pathlib import Path

import numpy as np

from repro import SVM
from repro.bench.harness import ExperimentResult
from repro.rvv.types import LMUL
from repro.tune import TuningDB, run_tune_sweep
from repro.utils.formatting import fmt_count, fmt_ratio

from conftest import record, rng

SEED = 0
VLEN = 1024
CODEGEN = "paper"
#: Cold-sweep grid: both sides of the spill/strip crossover at VLEN.
SWEEP_SIZES = (256, 3000, 100_000)
#: The shape-mixed serving workload the gate runs: swept shapes plus
#: an unswept size (50k) that must resolve via the nearest bucket.
WORKLOAD = [
    ("chain_scan", 256),
    ("chain_scan", 3000),
    ("chain_scan", 100_000),
    ("scan", 50_000),
    ("seg_scan", 100_000),
]
SPEEDUP_FLOOR = 1.2


def _run(svm, pipeline: str, n: int):
    from repro.tune.sweep import PIPELINES, _materialize

    arrays = _materialize(svm, pipeline, n, SEED)
    svm.reset()
    with svm.lazy() as lz:
        PIPELINES[pipeline](lz, *arrays)
    out = arrays[0].to_numpy().copy()
    for arr in arrays:
        svm.free(arr)
    return out


def test_tune_identity_and_speedup(tmp_path):
    # cold sweep — what `repro tune sweep` persists
    db = TuningDB(tmp_path)
    points, fitted = run_tune_sweep(sizes=SWEEP_SIZES, vlens=(VLEN,),
                                    codegen=CODEGEN, jobs=1, db=db)

    tuned = SVM(vlen=VLEN, codegen=CODEGEN, mode="fast",
                tune="auto", cache_dir=str(tmp_path))
    table, cells = [], []
    total_default = total_tuned = 0
    for pipeline, n in WORKLOAD:
        default = SVM(vlen=VLEN, codegen=CODEGEN, mode="fast")
        out_default = _run(default, pipeline, n)

        out_tuned = _run(tuned, pipeline, n)
        applied = tuned.engine.last_plan.nodes[0].lmul
        tuned_counters = tuned.counters.snapshot().by_category

        # identity gate: pinned to the policy's choice == tuned, exactly
        pinned = SVM(vlen=VLEN, codegen=CODEGEN, mode="fast", lmul=applied)
        out_pinned = _run(pinned, pipeline, n)
        identical = bool(
            np.array_equal(out_tuned, out_pinned)
            and tuned.instructions == pinned.instructions
            and tuned_counters == pinned.counters.snapshot().by_category
        )
        assert identical, (pipeline, n, applied)
        assert np.array_equal(out_tuned, out_default), (pipeline, n)

        speedup = default.instructions / tuned.instructions
        total_default += default.instructions
        total_tuned += tuned.instructions
        cells.append({
            "pipeline": pipeline, "n": n, "vlen": VLEN,
            "lmul_chosen": int(applied),
            "default_instr": default.instructions,
            "tuned_instr": tuned.instructions,
            "speedup": round(speedup, 4),
            "identical_to_pinned": identical,
        })
        table.append([pipeline, str(n), f"M{int(applied)}",
                      fmt_count(default.instructions),
                      fmt_count(tuned.instructions), fmt_ratio(speedup)])

    aggregate = total_default / total_tuned
    # the policy must actually disagree with itself across shapes —
    # a single global LMUL is not what is being measured
    assert len({c["lmul_chosen"] for c in cells}) > 1, cells
    assert aggregate >= SPEEDUP_FLOOR, (
        f"tuned {fmt_count(total_tuned)} vs default "
        f"{fmt_count(total_default)} = {aggregate:.2f}x < {SPEEDUP_FLOOR}x"
    )

    out = Path(__file__).resolve().parent.parent / "BENCH_tune.json"
    out.write_text(json.dumps({
        "codegen": CODEGEN,
        "vlen": VLEN,
        "sweep": {"sizes": list(SWEEP_SIZES),
                  "cells": len(points),
                  "fingerprints": len(fitted)},
        "workload": cells,
        "aggregate_speedup": round(aggregate, 4),
        "speedup_floor": SPEEDUP_FLOOR,
    }, indent=2) + "\n")

    record(ExperimentResult(
        "Tuned dispatch vs default",
        f"shape-mixed workload at VLEN={VLEN}, policy from a "
        f"{len(points)}-cell sweep; aggregate {fmt_ratio(aggregate)} "
        f"(floor {SPEEDUP_FLOOR:g}x)",
        ["pipeline", "n", "chosen", "default instr", "tuned instr",
         "speedup x"],
        table,
        notes=["counts are data-oblivious: every value in BENCH_tune.json"
               " is deterministic and diffed at tolerance 0.",
               "identity: each tuned cell is bit- and counter-identical to"
               " an SVM pinned to the chosen LMUL."],
    ))


def test_tune_dispatch_overhead_wallclock(tmp_path):
    """Paired toggle: tune="auto" with nothing swept must cost nothing
    measurable per request (machine-dependent; intentionally never
    written to BENCH_tune.json)."""
    n = 256
    g = rng(SEED)
    raw = g.integers(0, 2**16, n, dtype=np.uint32)

    def drive(svm):
        data = svm.array(raw)
        with svm.lazy() as lz:
            lz.p_add(data, 10)
            lz.plus_scan(data)
        svm.free(data)

    # both sides get a cache_dir so the toggle isolates the tune axis
    plain = SVM(vlen=VLEN, codegen=CODEGEN, mode="fast",
                cache_dir=str(tmp_path / "store"))
    toggled = SVM(vlen=VLEN, codegen=CODEGEN, mode="fast", tune="auto",
                  cache_dir=str(tmp_path / "store"))
    drive(plain)       # warm plan caches on both sides
    drive(toggled)

    t_plain = min(timeit.repeat(lambda: drive(plain), number=200, repeat=9))
    t_toggled = min(timeit.repeat(lambda: drive(toggled), number=200,
                                  repeat=9))
    overhead = t_toggled / t_plain
    record(ExperimentResult(
        "Tune dispatch overhead",
        f"warm lazy chain at n={n}, 200 calls best-of-9",
        ["variant", "time", "ratio"],
        [["tune=None", f"{t_plain * 1e3:.2f} ms", "1.00x"],
         ["tune='auto' (empty DB)", f"{t_toggled * 1e3:.2f} ms",
          fmt_ratio(overhead)]],
        notes=["wall-clock is machine-dependent and kept out of"
               " BENCH_tune.json; the CI gate locks only deterministic"
               " instruction counts."],
    ))
    assert overhead <= 1.15, (
        f"tune toggle costs {overhead:.2f}x on the warm path "
        f"({t_toggled * 1e3:.2f} ms vs {t_plain * 1e3:.2f} ms)"
    )


def test_tuned_lmul_matches_paper_crossover(tmp_path):
    """The learned policy recovers the paper's Table 5/6 structure:
    small n keeps M1, large n jumps to a larger group."""
    db = TuningDB(tmp_path)
    _, fitted = run_tune_sweep(pipelines=("scan",), sizes=(256, 100_000),
                               vlens=(VLEN,), codegen=CODEGEN, jobs=1, db=db)
    (table,) = fitted.values()
    by_bucket = {int(k.rsplit(":", 1)[1]): v["lmul"] for k, v in table.items()}
    small, large = min(by_bucket), max(by_bucket)
    assert by_bucket[small] <= by_bucket[large]
    assert by_bucket[large] > int(LMUL.M1)

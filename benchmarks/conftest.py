"""Shared bench plumbing: collect every regenerated table/figure and
print them in the terminal summary (pytest captures stdout during the
tests themselves, so the rendered tables are re-emitted at the end
where they stay visible in `--benchmark-only` runs and tee'd logs).

Also home of :func:`rng`, the one seeded-generator helper every bench
file draws input data through — the BENCH_*.json files are regenerated
under a tolerance-0 CI gate, so input generation must be reproducible
down to the bit."""

from __future__ import annotations

import numpy as np
import pytest

_RENDERED: list[str] = []


def rng(seed: int) -> np.random.Generator:
    """The shared deterministic generator for benchmark inputs. Always
    pass an explicit seed; never use an unseeded/global generator in a
    bench file."""
    return np.random.default_rng(seed)


def record(result) -> None:
    """Register an ExperimentResult for the end-of-run summary."""
    _RENDERED.append(result.render())


@pytest.hookimpl(trylast=True)
def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _RENDERED:
        terminalreporter.ensure_newline()
        terminalreporter.section("regenerated paper tables and figures")
        for text in _RENDERED:
            terminalreporter.write_line(text)
            terminalreporter.write_line("")

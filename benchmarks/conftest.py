"""Shared bench plumbing: collect every regenerated table/figure and
print them in the terminal summary (pytest captures stdout during the
tests themselves, so the rendered tables are re-emitted at the end
where they stay visible in `--benchmark-only` runs and tee'd logs)."""

from __future__ import annotations

import pytest

_RENDERED: list[str] = []


def record(result) -> None:
    """Register an ExperimentResult for the end-of-run summary."""
    _RENDERED.append(result.render())


@pytest.hookimpl(trylast=True)
def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _RENDERED:
        terminalreporter.ensure_newline()
        terminalreporter.section("regenerated paper tables and figures")
        for text in _RENDERED:
            terminalreporter.write_line(text)
            terminalreporter.write_line("")

#!/usr/bin/env python3
"""A mini analytics pipeline on scan-model primitives.

The cloud/database workloads the paper's introduction motivates decompose
into exactly the primitives this library provides. This example runs a
small end-to-end pipeline over a synthetic orders table:

1. ORDER BY key — key-value radix sort (payloads follow the keys
   through the same stable permutation);
2. GROUP BY + COUNT — histogram (sort + run-length encode: the scan
   model has no atomic scatter-add, so grouping *is* sorting);
3. GROUP BY + SUM — segmented sum over the sorted groups;
4. a denormalizing JOIN-style expand — replicate each group's
   aggregate back onto its rows (Blelloch's allocate idiom).

Run:  python examples/database_analytics.py
"""

import numpy as np

from repro import SVM
from repro.algorithms import expand, histogram, split_radix_sort_pairs
from repro.svm.derived import seg_total
from repro.svm.segment_descriptor import lengths_to_head_flags

rng = np.random.default_rng(20220829)
svm = SVM(vlen=1024, codegen="paper")

N_ORDERS = 20_000
N_CUSTOMERS = 64  # power of two so the histogram's radix passes are minimal

customer = rng.integers(0, N_CUSTOMERS, N_ORDERS, dtype=np.uint32)
amount = rng.integers(1, 500, N_ORDERS, dtype=np.uint32)

print(f"orders table: {N_ORDERS:,} rows, {N_CUSTOMERS} customers")

# --- 1. ORDER BY customer (carrying amounts along) -------------------------
keys = svm.array(customer)
payload = svm.array(amount)
svm.reset()
split_radix_sort_pairs(svm, keys, payload, bits=6)  # 64 customers = 6 bits
sort_cost = svm.instructions
order = np.argsort(customer, kind="stable")
assert np.array_equal(keys.to_numpy(), customer[order])
assert np.array_equal(payload.to_numpy(), amount[order])
print(f"1. ORDER BY customer: {sort_cost:,} instructions "
      f"({sort_cost / N_ORDERS:.1f}/row)")

# --- 2. GROUP BY customer, COUNT(*) ------------------------------------------
svm.reset()
counts = histogram(svm, keys, N_CUSTOMERS)
assert np.array_equal(counts.to_numpy(),
                      np.bincount(customer, minlength=N_CUSTOMERS).astype(np.uint32))
print(f"2. GROUP BY/COUNT:    {svm.instructions:,} instructions "
      f"(top customer has {int(counts.to_numpy().max()):,} orders)")

# --- 3. GROUP BY customer, SUM(amount) -----------------------------------------
# the sorted table's groups are segments: heads from the group sizes
heads = svm.array(lengths_to_head_flags(counts.to_numpy(), n=N_ORDERS))
svm.reset()
group_sums_per_row = seg_total(svm, payload, heads)
expected_sums = np.zeros(N_CUSTOMERS, dtype=np.uint64)
np.add.at(expected_sums, customer, amount)
# every row of a group carries the group total; check one row per group
sums = group_sums_per_row.to_numpy()
starts = np.concatenate(([0], np.cumsum(counts.to_numpy())[:-1])).astype(np.int64)
assert np.array_equal(sums[starts], expected_sums.astype(np.uint32))
print(f"3. GROUP BY/SUM:      {svm.instructions:,} instructions "
      f"(largest group total: {int(sums.max()):,})")

# --- 4. denormalize: replicate each group's count onto its rows -----------------
svm.reset()
per_row_counts, total = expand(svm, counts, counts)
assert total == N_ORDERS
assert np.array_equal(per_row_counts.to_numpy()[:total],
                      np.repeat(counts.to_numpy(), counts.to_numpy()))
print(f"4. expand aggregates: {svm.instructions:,} instructions "
      f"(each row now knows its group's size)")

print("\neverything above ran on elementwise/permute/scan primitives only —")
print("no step needed a scatter-add, a hash table, or per-row control flow.")

#!/usr/bin/env python3
"""LMUL tuning: reproduce the paper's §6.3 study and use the advisor.

Grouping vector registers (LMUL > 1) shrinks the strip count but
raises register pressure; at LMUL=8 the segmented-scan kernel spills
and small workloads get *slower* (Tables 5-6). This example sweeps the
grid live and shows the advisor picking the measured optimum from its
closed-form cost model.

Run:  python examples/lmul_tuning.py
"""

import numpy as np

from repro import LMUL
from repro.tune import choose_lmul, measure_kernel, predict_scan_count
from repro.rvv.allocation import SEG_SCAN_PROFILE, plan_allocation
from repro.utils.formatting import render_table

SIZES = [100, 1_000, 10_000, 100_000, 1_000_000]
LMULS = [LMUL.M1, LMUL.M2, LMUL.M4, LMUL.M8]

# --------------------------------------------------------------------------
print("=== why LMUL=8 can lose: the register file arithmetic ===")
for lmul in LMULS:
    plan = plan_allocation(SEG_SCAN_PROFILE, lmul)
    status = (f"spills {len(plan.spilled)} of {SEG_SCAN_PROFILE.n_values} live values"
              f" ({', '.join(plan.spilled)})" if plan.has_spills
              else f"all {SEG_SCAN_PROFILE.n_values} live values fit")
    print(f"LMUL={int(lmul)}: {plan.usable_groups:>2} usable register groups -> {status}")

# --------------------------------------------------------------------------
print("\n=== the Table 5 sweep, regenerated ===")
rows = []
for n in SIZES:
    counts = {int(lm): measure_kernel("seg_plus_scan", n, 1024, lm).instructions
              for lm in LMULS}
    best = min(counts, key=counts.get)
    rows.append([f"{n:,}"] + [f"{counts[int(lm)]:,}" for lm in LMULS] + [f"m{best}"])
print(render_table(
    ["N", "LMUL=1", "LMUL=2", "LMUL=4", "LMUL=8", "best"], rows,
    title="seg_plus_scan dynamic instruction count (VLEN=1024)",
))
print("LMUL=8's one-time spill frame (~2k instructions) sinks it below\n"
      "N=1e5; beyond that the halved strip count wins — the paper's anomaly.")

# --------------------------------------------------------------------------
print("\n=== the advisor: pick LMUL without sweeping ===")
rows = []
for n in SIZES:
    choice = choose_lmul("seg_plus_scan", n, vlen=1024)
    measured = measure_kernel("seg_plus_scan", n, 1024, choice.lmul).instructions
    rows.append([f"{n:,}", f"m{int(choice.lmul)}", f"{choice.count:,}",
                 f"{measured:,}", "yes" if choice.count == measured else "NO"])
print(render_table(
    ["N", "advisor pick", "predicted", "measured", "prediction exact?"], rows,
))

# The prediction is the same closed form the machine charges, so it is
# exact by construction — §6.3's guidance, made mechanical:
pred = predict_scan_count("seg_plus_scan", 500, 1024, LMUL.M8)
print(f"\ne.g. N=500 at LMUL=8 would spill {pred.spilled_values} "
      f"and cost {pred.count:,} instructions — the advisor avoids it.")

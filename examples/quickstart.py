#!/usr/bin/env python3
"""Quickstart: the scan vector model on a simulated RVV machine.

Walks through the paper's three primitive classes — elementwise,
permutation, and scan (unsegmented and segmented) — and shows the
dynamic instruction counting that drives every result in the paper.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import LMUL, SVM

# A 1024-bit machine, the paper's main configuration (§6.2): 32 u32
# lanes per vector register. codegen="paper" reproduces the published
# instruction counts; codegen="ideal" gives the one-instruction-per-
# intrinsic lower bound.
svm = SVM(vlen=1024, codegen="paper")

print("=== elementwise instructions (§4.1) ===")
a = svm.array([3, 1, 7, 0, 4, 1, 6, 3])
svm.p_add(a, 10)  # Listing 4: a[i] += 10
print("p_add(+10)      :", a.to_numpy())

b = svm.array([1, 1, 2, 2, 3, 3, 4, 4])
svm.p_max(a, b)  # elementwise maximum with another vector
print("p_max(a, b)     :", a.to_numpy())

print("\n=== scan instructions (§4.3) ===")
x = svm.array([3, 1, 7, 0, 4, 1, 6, 3])
svm.plus_scan(x)  # Listing 6: inclusive all-prefix-sums
print("plus_scan       :", x.to_numpy())

y = svm.array([3, 1, 7, 0, 4, 1, 6, 3])
svm.scan_exclusive(y)  # Blelloch's exclusive form: [I, a0, a0+a1, ...]
print("exclusive scan  :", y.to_numpy())

z = svm.array([2, 8, 3, 5, 7, 1, 9, 4])
svm.scan(z, "max")  # any associative operator works
print("max_scan        :", z.to_numpy())

print("\n=== segmented scan (§5) ===")
data = svm.array([1, 2, 3, 4, 5, 6, 7, 8])
heads = svm.array([1, 0, 0, 1, 0, 1, 0, 0])  # three segments
svm.seg_plus_scan(data, heads)  # Listing 10
print("seg_plus_scan   :", data.to_numpy(), " (segments restart at heads)")

print("\n=== permutation instructions (§4.2) ===")
src = svm.array([10, 20, 30, 40])
index = svm.array([2, 0, 3, 1])
dst = svm.permute(src, index)  # Listing 5: dst[index[i]] = src[i]
print("permute         :", dst.to_numpy())

print("\n=== derived operations (§4.4) ===")
flags = svm.array([0, 1, 0, 1, 1, 0, 0, 1])
ranks, count = svm.enumerate(flags)  # Listing 8: viota + vcpop
print("enumerate       :", ranks.to_numpy(), f" ({count} set flags)")

values = svm.array([1, 2, 3, 4, 5, 6, 7, 8])
split_out, zeros = svm.split(values, flags)  # Listing 7 / Figure 3
print("split           :", split_out.to_numpy(), f" (boundary at {zeros})")

print("\n=== the paper's metric: dynamic instruction count ===")
print(f"everything above executed {svm.instructions:,} dynamic instructions")
print("by category     :", {k: v for k, v in svm.counters.as_dict().items() if v})

# Vector-length agnosticism (§3.1): the same code runs unchanged on a
# machine with any VLEN — only the counts change.
for vlen in (128, 256, 512, 1024):
    m = SVM(vlen=vlen, codegen="paper")
    arr = m.array(np.arange(10_000, dtype=np.uint32))
    m.reset()
    m.plus_scan(arr)
    print(f"plus_scan of 10k elements at VLEN={vlen:>4}: {m.instructions:>7,} instructions")

# The LMUL knob (§3.3/§6.3): group registers for fewer, longer strips.
m = SVM(vlen=1024, codegen="paper")
arr = m.array(np.arange(10_000, dtype=np.uint32))
flags = m.zeros(10_000)
for lmul in (LMUL.M1, LMUL.M2, LMUL.M4, LMUL.M8):
    m.reset()
    m.seg_plus_scan(arr, flags, lmul=lmul)
    print(f"seg_plus_scan of 10k elements at LMUL={int(lmul)}: {m.instructions:>7,} instructions")

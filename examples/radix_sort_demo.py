#!/usr/bin/env python3
"""Split radix sort vs qsort — the paper's Table 1 experiment, live.

Sorts uniform random uint32 keys with the scan-vector-model radix sort
(Listing 9) and compares its dynamic instruction count against the
instrumented libc qsort cost model, reproducing the paper's headline
crossover: qsort wins at N=100, radix sort wins 2.6-4.3x beyond.

Run:  python examples/radix_sort_demo.py [N ...]
"""

import sys

import numpy as np

from repro import SVM
from repro.algorithms import split_radix_sort
from repro.scalar import GlibcMallocModel, ScalarMachine, qsort_baseline
from repro.utils.formatting import render_table

sizes = [int(arg) for arg in sys.argv[1:]] or [100, 1_000, 10_000, 100_000]

rows = []
for n in sizes:
    rng = np.random.default_rng(2022)
    keys = rng.integers(0, 2**32, n, dtype=np.uint32)

    # --- the vectorized sort, with the allocation cost model engaged
    # (Listing 7 mallocs scratch per split pass; beyond the mmap
    # threshold those allocations dominate — Table 1's 1e5 jump)
    svm = SVM(vlen=1024, codegen="paper", malloc_model=GlibcMallocModel())
    arr = svm.array(keys)
    svm.reset()
    split_radix_sort(svm, arr)
    assert np.array_equal(arr.to_numpy(), np.sort(keys)), "sort is wrong!"
    radix_count = svm.instructions

    # --- the sequential baseline
    sm = ScalarMachine()
    qsort_baseline(sm, keys)
    qsort_count = sm.total

    rows.append([
        f"{n:,}", f"{radix_count:,}", f"{qsort_count:,}",
        f"{qsort_count / radix_count:.2f}x",
        "radix" if radix_count < qsort_count else "qsort",
    ])

print(render_table(
    ["N", "split_radix_sort", "qsort baseline", "speedup", "winner"],
    rows,
    title="Dynamic instruction counts (VLEN=1024, LMUL=1) — cf. paper Table 1",
))

print("""
Why qsort wins at N=100: the radix sort always runs 32 bit-passes of
6 primitive sweeps each, so its fixed overhead (~24k instructions)
exceeds qsort's N*lgN cost on tiny inputs — exactly the paper's 0.72x.
Why the speedup dips at N>=1e5: each split pass mallocs two N-word
scratch buffers; past glibc's 128 KiB threshold those become mmap
calls whose page faults execute counted code (see DESIGN.md).
""")

#!/usr/bin/env python3
"""Segmented-scan workloads: flat quicksort and CSR SpMV.

The paper motivates segmented scan with exactly these shapes (§5):
algorithms that split an array into independent pieces and process all
pieces in parallel. This example runs two of Blelloch's classics built
purely on the library's primitives:

* flat quicksort — every partition round splits *all* active segments
  simultaneously with segmented scans;
* sparse matrix-vector product — each CSR row is a segment; one
  segmented sum computes every row's dot product at once.

Run:  python examples/segmented_workloads.py
"""

import numpy as np

from repro import SVM
from repro.algorithms import CSRMatrix, flat_quicksort, spmv
from repro.rvv.counters import Cat

rng = np.random.default_rng(7)

# --------------------------------------------------------------------------
print("=== flat quicksort (segmented scans, no recursion) ===")
svm = SVM(vlen=1024, codegen="paper")
keys = rng.integers(0, 10_000, 5_000, dtype=np.uint32)
arr = svm.array(keys)
svm.reset()
rounds = flat_quicksort(svm, arr, shuffle=True, rng=rng)
assert np.array_equal(arr.to_numpy(), np.sort(keys))

print(f"sorted {len(keys):,} keys in {rounds} partition rounds "
      f"(expected ~lg n = {int(np.ceil(np.log2(len(keys))))})")
print(f"dynamic instructions: {svm.instructions:,} "
      f"({svm.instructions / len(keys):.0f} per key)")
print("note: every round partitions ALL segments at once — the work"
      " per round is O(n) regardless of how many segments exist.")

# --------------------------------------------------------------------------
print("\n=== CSR sparse matrix-vector product ===")
svm = SVM(vlen=1024, codegen="paper")
matrix = CSRMatrix.random(500, 500, density=0.02, rng=rng)
x_host = rng.integers(0, 100, 500, dtype=np.uint32)
x = svm.array(x_host)

svm.reset()
y = spmv(svm, matrix, x)

expected = (matrix.to_dense().astype(np.uint64) @ x_host).astype(np.uint32)
assert np.array_equal(y.to_numpy(), expected)

c = svm.counters
print(f"A: 500x500, {matrix.nnz:,} nonzeros; y = A @ x verified against dense oracle")
print(f"dynamic instructions: {c.total:,} ({c.total / matrix.nnz:.1f} per nonzero)")
print(f"  gathers/scatters (vluxei/vsuxei): {c[Cat.VMEM_INDEXED]:,}")
print(f"  vector arithmetic:                {c[Cat.VARITH]:,}")
print(f"  mask ops (head-flag machinery):   {c[Cat.VMASK]:,}")

# --------------------------------------------------------------------------
print("\n=== the same SpMV across microarchitectures (VLA, §3.1) ===")
for vlen in (128, 256, 512, 1024):
    m = SVM(vlen=vlen, codegen="paper")
    xv = m.array(x_host)
    m.reset()
    yv = spmv(m, matrix, xv)
    assert np.array_equal(yv.to_numpy(), expected)
    print(f"VLEN={vlen:>4}: {m.instructions:>9,} instructions")
print("one source, four machines — the code never mentions the register width.")

#!/usr/bin/env python3
"""Stream compaction, RLE, and line-of-sight — scan-model one-liners.

Three small workloads from Blelloch's application catalogue, each a
couple of primitive calls:

* database-style filtering (compare + pack),
* run-length compression of sensor data (shift + compare + enumerate
  + pack, decoded back with a segmented distribute),
* terrain visibility (exclusive max-scan + compare).

Run:  python examples/stream_compaction.py
"""

import numpy as np

from repro import SVM
from repro.algorithms import (
    filter_in_range,
    line_of_sight,
    rle_decode,
    rle_encode,
)

rng = np.random.default_rng(42)
svm = SVM(vlen=512, codegen="paper")

# --------------------------------------------------------------------------
print("=== filter: SELECT * WHERE 40 <= temperature < 60 ===")
temps = rng.integers(0, 100, 10_000, dtype=np.uint32)
svm.reset()
kept_arr, kept = filter_in_range(svm, svm.array(temps), 40, 60)
expect = temps[(temps >= 40) & (temps < 60)]
assert np.array_equal(kept_arr.to_numpy()[:kept], expect)
print(f"kept {kept:,} of {temps.size:,} readings, order preserved,"
      f" in {svm.instructions:,} instructions"
      f" ({svm.instructions / temps.size:.1f}/element)")

# --------------------------------------------------------------------------
print("\n=== run-length encoding of a slowly-changing signal ===")
signal = np.repeat(rng.integers(0, 16, 400, dtype=np.uint32),
                   rng.integers(1, 40, 400))
svm.reset()
values, lengths, n_runs = rle_encode(svm, svm.array(signal))
encode_cost = svm.instructions
decoded = rle_decode(svm, values, lengths, n_runs)
assert np.array_equal(decoded.to_numpy(), signal)
print(f"{signal.size:,} samples -> {n_runs:,} runs "
      f"({signal.size / n_runs:.1f}:1), encoded in {encode_cost:,} instructions;"
      " decode verified bit-exact")

# --------------------------------------------------------------------------
print("\n=== line of sight from a ridge ===")
# a terrain profile: descend into a valley, then climb a far ridge —
# the valley floor hides behind the near rim; the ridge re-emerges
x = np.arange(200)
altitude = np.concatenate([100 - x[:60], 40 + ((x[60:] - 60) ** 2) // 40]).astype(np.int64)
svm.reset()
visible = line_of_sight(svm, altitude)
vis = visible.to_numpy()
print(f"observer at x=0 sees {int(vis.sum())} of {vis.size} points"
      f" ({svm.instructions:,} instructions)")
first_hidden = int(np.argmin(vis))
reemerge = first_hidden + int(np.argmax(vis[first_hidden:]))
print(f"the valley disappears at x={first_hidden} (alt {altitude[first_hidden]})"
      f" and the far ridge re-emerges at x={reemerge} (alt {altitude[reemerge]})")

"""repro — reproduction of "Efficient Support of the Scan Vector Model
for RISC-V Vector Extension" (Lai & Lee, ICPP Workshops '22).

Layering (see DESIGN.md):

* :mod:`repro.rvv` — the RVV substrate (functional simulator standing
  in for RVV hardware + LLVM + the Spike instruction counter);
* :mod:`repro.scalar` — the sequential baselines every speedup is
  measured against;
* :mod:`repro.svm` — the scan vector model primitives (the paper's
  contribution): elementwise, permutation, scan, segmented scan,
  enumerate, split;
* :mod:`repro.engine` — lazy plan capture and strip fusion over the
  primitives (plan cache included);
* :mod:`repro.obs` — observability: hierarchical profiling spans,
  metrics, and tree/JSON/Chrome-trace exporters;
* :mod:`repro.config` — the unified :class:`~repro.config.ExecConfig`
  layer every execution axis resolves through (defaults ← REPRO_* env
  ← ``SVM(...)`` kwargs ← per-call overrides);
* :mod:`repro.tune` — shape-aware tuning: the LMUL study (advisor +
  measurement grids, formerly ``repro.lmul``) plus the persistent
  shape→config auto-tuner consulted by ``SVM(tune="auto")``;
* :mod:`repro.algorithms` — applications built purely on primitives
  (split radix sort, flat quicksort, RLE, SpMV, ...);
* :mod:`repro.bench` — the harness regenerating every table and figure.

Quick start::

    from repro import SVM
    svm = SVM(vlen=1024)
    a = svm.array([3, 1, 7, 0, 4, 1, 6, 3])
    svm.plus_scan(a)
    print(a.to_numpy(), svm.instructions)
"""

from .rvv import LMUL, SEW, RVVMachine
from .svm import SVM, SVMArray

__version__ = "1.0.0"

__all__ = ["SVM", "SVMArray", "RVVMachine", "LMUL", "SEW", "__version__"]

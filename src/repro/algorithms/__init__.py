"""Applications built purely on scan-vector-model primitives.

The paper's thesis is that the primitive set suffices for real
parallel workloads (§4.4 demonstrates split radix sort). This package
carries that demonstration further with Blelloch's canonical
applications:

* :func:`~repro.algorithms.radix_sort.split_radix_sort` — Listing 9,
  measured in Table 1;
* :func:`~repro.algorithms.quicksort.flat_quicksort` — the segmented
  quicksort the paper's §5 motivates;
* :func:`~repro.algorithms.rle.rle_encode` / ``rle_decode``;
* :func:`~repro.algorithms.spmv.spmv` — CSR SpMV via segmented sums;
* :func:`~repro.algorithms.line_of_sight.line_of_sight`;
* :mod:`~repro.algorithms.pack_filter` — stream compaction/partition.
"""

from .expand import expand, expand_indices
from .histogram import histogram
from .line_of_sight import angle_measures, line_of_sight
from .pack_filter import filter_equal, filter_in_range, filter_less_than, partition_by_flag
from .quicksort import flat_quicksort, seg_total
from .radix_sort import split_radix_sort, split_radix_sort_pairs
from .radix_wide import split_radix_sort_wide
from .rle import rle_decode, rle_encode
from .spmv import CSRMatrix, spmv

__all__ = [
    "split_radix_sort",
    "split_radix_sort_pairs",
    "split_radix_sort_wide",
    "flat_quicksort",
    "seg_total",
    "rle_encode",
    "rle_decode",
    "CSRMatrix",
    "spmv",
    "expand",
    "expand_indices",
    "histogram",
    "line_of_sight",
    "angle_measures",
    "filter_less_than",
    "filter_equal",
    "filter_in_range",
    "partition_by_flag",
]

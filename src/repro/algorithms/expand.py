"""Expand / processor allocation — Blelloch's ``allocate`` idiom.

Given per-element counts, *expand* replicates element i ``counts[i]``
times, contiguously and in order — the scan-model answer to "allocate
k_i workers to task i" (Blelloch uses it for line drawing: allocate one
lane per pixel of each line). The composition:

1. exclusive plus-scan of the counts → each element's start offset;
2. scatter the element values (and a 1-marker) at the offsets;
3. segmented copy-scan distributes each value across its block.

``expand_indices`` returns, instead of values, the *source index* each
output lane came from — the general form applications use to gather
arbitrary per-element payloads afterwards.
"""

from __future__ import annotations

import numpy as np

from ..rvv.types import LMUL
from ..svm.context import SVM, SVMArray
from ..svm.gather_scatter import scatter_any

__all__ = ["expand", "expand_indices"]


def _starts_and_total(svm: SVM, counts: SVMArray, lmul) -> tuple[SVMArray, int]:
    starts = svm.copy(counts, lmul=lmul)
    svm.scan(starts, "plus", inclusive=False, lmul=lmul)
    total = svm.reduce(counts, "plus", lmul=lmul)
    return starts, total


def expand(svm: SVM, values: SVMArray, counts: SVMArray,
           lmul: LMUL | None = None) -> tuple[SVMArray, int]:
    """Replicate ``values[i]`` exactly ``counts[i]`` times (counts of
    zero drop the element). Returns (expanded array, total length).

    >>> import numpy as np
    >>> from repro import SVM
    >>> s = SVM(vlen=128)
    >>> out, n = expand(s, s.array([7, 9, 4]), s.array([2, 0, 3]))
    >>> out.to_numpy()[:n].tolist()
    [7, 7, 4, 4, 4]
    """
    if values.n != counts.n:
        from ..errors import VectorLengthError

        raise VectorLengthError("values and counts must have equal length")
    starts, total = _starts_and_total(svm, counts, lmul)
    out = svm.zeros(max(total, 1))
    out = SVMArray(out.ptr, total)
    if total == 0:
        svm.free(starts)
        return out, 0

    # keep only elements with nonzero counts: zero-count elements would
    # scatter onto the next element's start and corrupt it
    nz = svm.p_gt(counts, 0, lmul=lmul)
    kept_vals, k = svm.pack(values, nz, lmul=lmul)
    kept_starts, k2 = svm.pack(starts, nz, lmul=lmul)
    assert k == k2

    flags = svm.zeros(total)
    ones = svm.copy(SVMArray(kept_vals.ptr, k), lmul=lmul)
    svm.p_mul(ones, 0, lmul=lmul)
    svm.p_add(ones, 1, lmul=lmul)
    scatter_any(svm, SVMArray(kept_vals.ptr, k), SVMArray(kept_starts.ptr, k),
                out, lmul=lmul)
    scatter_any(svm, SVMArray(ones.ptr, k), SVMArray(kept_starts.ptr, k),
                flags, lmul=lmul)
    svm.seg_plus_scan(out, flags, lmul=lmul)

    for tmp in (starts, nz, kept_vals, kept_starts, flags, ones):
        svm.free(tmp)
    return out, total


def expand_indices(svm: SVM, counts: SVMArray,
                   lmul: LMUL | None = None) -> tuple[SVMArray, int]:
    """The index form: output lane j holds the source index i whose
    block contains j.

    >>> import numpy as np
    >>> from repro import SVM
    >>> s = SVM(vlen=128)
    >>> out, n = expand_indices(s, s.array([2, 0, 3]))
    >>> out.to_numpy()[:n].tolist()
    [0, 0, 2, 2, 2]
    """
    idx = svm.index_array(counts.n, lmul=lmul)
    out, total = expand(svm, idx, counts, lmul=lmul)
    svm.free(idx)
    return out, total

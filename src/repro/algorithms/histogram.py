"""Histogram via sort + run-length encode — the scan-model idiom.

Scatter-with-accumulate (the shared-memory histogram) has no
data-parallel equivalent in the scan vector model: colliding scatter
lanes would race. Blelloch's formulation instead *sorts* the keys
(split radix sort over just the bucket bits) and run-length encodes
the result — each run is one bucket's population. Both building blocks
come straight from this library, so the histogram is a two-call
composition plus one scatter of the (bucket, count) pairs into the
dense output.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..obs.spans import span as _span
from ..rvv.types import LMUL
from ..svm.context import SVM, SVMArray
from ..svm.gather_scatter import scatter_any
from .radix_sort import split_radix_sort
from .rle import rle_encode

__all__ = ["histogram"]


def histogram(svm: SVM, data: SVMArray, n_buckets: int,
              lmul: LMUL | None = None) -> SVMArray:
    """Count occurrences of each value in ``[0, n_buckets)``.

    ``n_buckets`` must be a power of two (the sort runs over exactly
    ``lg n_buckets`` split passes); values outside the range raise.
    Returns a dense ``n_buckets``-element count vector.
    """
    if n_buckets <= 0 or n_buckets & (n_buckets - 1):
        raise ConfigurationError(
            f"n_buckets must be a positive power of two, got {n_buckets}"
        )
    counts = svm.zeros(n_buckets)
    if data.n == 0:
        return counts
    if int(data.view().max()) >= n_buckets:
        raise ConfigurationError("data contains values >= n_buckets")

    bits = int(n_buckets).bit_length() - 1
    with _span(svm.machine, "histogram", n=data.n, buckets=n_buckets):
        keys = svm.copy(data, lmul=lmul)
        if bits:
            split_radix_sort(svm, keys, bits=bits, lmul=lmul)
        values, lengths, n_runs = rle_encode(svm, keys, lmul=lmul)

        # each run is one occupied bucket: counts[value] = length
        scatter_any(svm, SVMArray(lengths.ptr, n_runs),
                    SVMArray(values.ptr, n_runs), counts, lmul=lmul)

        for tmp in (keys, values, lengths):
            svm.free(tmp)
    return counts

"""Line-of-sight — Blelloch's original motivating example for scan.

An observer stands at point 0 of a terrain profile; point i is visible
iff no earlier point subtends a larger vertical angle. The scan-model
solution: compute each point's angle measure, take the *exclusive*
max-scan (the best angle before each point), and compare.

The library's element domain is unsigned integers, so the angle is a
fixed-point measure ``((alt - observer) << SHIFT) / distance`` biased
to stay non-negative. The division happens during *workload setup*
(angles are an input to the scan-model computation, as in Blelloch's
formulation); the parallel work — the max-scan and compare — runs
entirely on primitives.
"""

from __future__ import annotations

import numpy as np

from ..errors import VectorLengthError
from ..rvv.types import LMUL
from ..svm.context import SVM, SVMArray

__all__ = ["line_of_sight", "angle_measures"]

#: Fixed-point fraction bits for the angle measure.
ANGLE_SHIFT = 16
#: Bias keeping downhill angles non-negative in the unsigned domain.
ANGLE_BIAS = 1 << 30


def angle_measures(altitudes: np.ndarray) -> np.ndarray:
    """Fixed-point angle of every point as seen from point 0.

    ``measure[i] = BIAS + ((alt[i] - alt[0]) << SHIFT) // i`` for
    ``i >= 1``; point 0 gets the minimum measure (it is trivially
    visible and never occludes itself).
    """
    altitudes = np.asarray(altitudes, dtype=np.int64)
    if altitudes.ndim != 1 or altitudes.size == 0:
        raise VectorLengthError("altitudes must be a non-empty 1-D array")
    n = altitudes.size
    out = np.zeros(n, dtype=np.uint32)
    if n > 1:
        i = np.arange(1, n, dtype=np.int64)
        rel = (altitudes[1:] - altitudes[0]) << ANGLE_SHIFT
        out[1:] = (ANGLE_BIAS + rel // i).astype(np.uint32)
    return out


def line_of_sight(svm: SVM, altitudes: np.ndarray,
                  lmul: LMUL | None = None) -> SVMArray:
    """Visibility flags (1 = visible from point 0) for a terrain
    profile, computed with an exclusive max-scan plus a compare."""
    measures = angle_measures(altitudes)
    angles = svm.array(measures)
    best_before = svm.copy(angles, lmul=lmul)
    svm.scan(best_before, "max", inclusive=False, lmul=lmul)
    visible = svm.p_gt(angles, best_before, lmul=lmul)
    # point 0 is the observer: always visible (max's identity is 0 and
    # its measure is 0, so the strict > test would mark it hidden)
    visible.ptr[0] = 1
    svm.machine.scalar(2)
    svm.free(angles)
    svm.free(best_before)
    return visible

"""Filter / stream compaction utilities — the pack side of the
permutation class, composed with flag-producing compares.

``filter_less_than`` and friends express the classic "select the
records matching a predicate" database/streaming kernel on scan-model
primitives: one compare pass to build flags, one pack to compact.
``partition_by_flag`` exposes the paper's split as a standalone stable
partition with both halves' sizes.
"""

from __future__ import annotations

from ..rvv.types import LMUL
from ..svm.context import SVM, SVMArray

__all__ = ["filter_less_than", "filter_equal", "filter_in_range", "partition_by_flag"]


def filter_less_than(svm: SVM, data: SVMArray, threshold: int,
                     lmul: LMUL | None = None) -> tuple[SVMArray, int]:
    """Keep elements strictly below ``threshold`` (stable). Returns
    (packed array, count)."""
    flags = svm.p_lt(data, threshold, lmul=lmul)
    out, kept = svm.pack(data, flags, lmul=lmul)
    svm.free(flags)
    return out, kept


def filter_equal(svm: SVM, data: SVMArray, value: int,
                 lmul: LMUL | None = None) -> tuple[SVMArray, int]:
    """Keep elements equal to ``value`` (stable)."""
    flags = svm.p_eq(data, value, lmul=lmul)
    out, kept = svm.pack(data, flags, lmul=lmul)
    svm.free(flags)
    return out, kept


def filter_in_range(svm: SVM, data: SVMArray, lo: int, hi: int,
                    lmul: LMUL | None = None) -> tuple[SVMArray, int]:
    """Keep elements in ``[lo, hi)`` (stable): two compares and a
    flag product."""
    ge_lo = svm.p_ge(data, lo, lmul=lmul)
    lt_hi = svm.p_lt(data, hi, lmul=lmul)
    svm.p_mul(ge_lo, lt_hi, lmul=lmul)
    out, kept = svm.pack(data, ge_lo, lmul=lmul)
    svm.free(ge_lo)
    svm.free(lt_hi)
    return out, kept


def partition_by_flag(svm: SVM, data: SVMArray, flags: SVMArray,
                      lmul: LMUL | None = None) -> tuple[SVMArray, int, int]:
    """Stable partition by a 0/1 flag vector via the paper's split
    (Listing 7): 0-flag elements first. Returns (partitioned array,
    #zeros, #ones)."""
    out, zeros = svm.split(data, flags, lmul=lmul)
    return out, zeros, data.n - zeros

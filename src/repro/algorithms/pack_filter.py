"""Filter / stream compaction utilities — the pack side of the
permutation class, composed with flag-producing compares.

``filter_less_than`` and friends express the classic "select the
records matching a predicate" database/streaming kernel on scan-model
primitives: one compare pass to build flags, one pack to compact.
``partition_by_flag`` exposes the paper's split as a standalone stable
partition with both halves' sizes.

These pipelines run through the lazy execution engine
(:mod:`repro.engine`): the calls inside each ``svm.lazy()`` block are
captured as a plan and fused where legal before executing. For
``filter_in_range`` the ``p_ge → p_mul`` chain collapses into a single
strip loop (one load, compare + merge + multiply in registers, one
store), cutting the intermediate VMEM/VCONFIG traffic; pack — whose
count is data-dependent — replays verbatim. Results and counters are
never worse than the eager spelling (asserted in
``tests/engine/test_consumers.py``).
"""

from __future__ import annotations

from ..obs.spans import span as _span
from ..rvv.types import LMUL
from ..svm.context import SVM, SVMArray

__all__ = ["filter_less_than", "filter_equal", "filter_in_range", "partition_by_flag"]


def filter_less_than(svm: SVM, data: SVMArray, threshold: int,
                     lmul: LMUL | None = None) -> tuple[SVMArray, int]:
    """Keep elements strictly below ``threshold`` (stable). Returns
    (packed array, count)."""
    with _span(svm.machine, "filter_less_than", n=data.n):
        with svm.lazy() as lz:
            flags = lz.p_lt(data, threshold, lmul=lmul)
            out, kept = lz.pack(data, flags, lmul=lmul)
            lz.free(flags)
    return out, kept.value


def filter_equal(svm: SVM, data: SVMArray, value: int,
                 lmul: LMUL | None = None) -> tuple[SVMArray, int]:
    """Keep elements equal to ``value`` (stable)."""
    with _span(svm.machine, "filter_equal", n=data.n):
        with svm.lazy() as lz:
            flags = lz.p_eq(data, value, lmul=lmul)
            out, kept = lz.pack(data, flags, lmul=lmul)
            lz.free(flags)
    return out, kept.value


def filter_in_range(svm: SVM, data: SVMArray, lo: int, hi: int,
                    lmul: LMUL | None = None) -> tuple[SVMArray, int]:
    """Keep elements in ``[lo, hi)`` (stable): two compares and a flag
    product. Recorded with the ``lt`` pass first so that ``p_ge`` and
    the ``p_mul`` combining the two flag vectors are adjacent — the
    fuser merges them into one strip loop."""
    with _span(svm.machine, "filter_in_range", n=data.n):
        with svm.lazy() as lz:
            lt_hi = lz.p_lt(data, hi, lmul=lmul)
            ge_lo = lz.p_ge(data, lo, lmul=lmul)
            lz.p_mul(ge_lo, lt_hi, lmul=lmul)
            out, kept = lz.pack(data, ge_lo, lmul=lmul)
            lz.free(ge_lo)
            lz.free(lt_hi)
    return out, kept.value


def partition_by_flag(svm: SVM, data: SVMArray, flags: SVMArray,
                      lmul: LMUL | None = None) -> tuple[SVMArray, int, int]:
    """Stable partition by a 0/1 flag vector via the paper's split
    (Listing 7): 0-flag elements first. Returns (partitioned array,
    #zeros, #ones)."""
    with _span(svm.machine, "partition_by_flag", n=data.n):
        out, zeros = svm.split(data, flags, lmul=lmul)
    return out, zeros, data.n - zeros

"""Flat (data-parallel) quicksort on segmented scans — Blelloch's
classic construction, and the paper's motivating example for segmented
scan support ("an algorithm like quick sort needs to split the whole
array into different segments and then sort each segment recursively",
§5).

Instead of recursing, *all* segments are partitioned simultaneously
each round:

1. distribute each segment's pivot (its first element) to every lane —
   a segmented inclusive plus-scan of ``keys * head_flags`` (only the
   head is nonzero, so the scan broadcasts it);
2. classify lanes into <, =, > with flag-producing compares;
3. compute each lane's destination: segment start + rank within its
   class (+ class offsets). Ranks are segmented *exclusive* scans of
   the class flags; per-segment class totals come from
   :func:`seg_total` (forward scan + reversed-segment backward scan —
   composed entirely from the model's primitives, since RVV has no
   backward scan);
4. scatter keys and the new segment-head markers with ``permute``.

Segments whose elements are all equal are *done*; their lanes keep
their positions. The loop ends when every lane is done — expected
O(lg n) rounds for random pivots, with a configurable safety cap for
adversarial inputs (first-element pivots degrade like any quicksort;
``shuffle=True`` randomizes once up front through a permute).
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..obs.spans import span as _span
from ..rvv.types import LMUL
from ..svm.context import SVM, SVMArray
from ..svm.derived import seg_copy, seg_total

__all__ = ["flat_quicksort", "seg_total"]


def _class_marker(svm: SVM, cls: SVMArray, rank: SVMArray, lmul) -> SVMArray:
    """1 where a lane is the first of its class within its segment
    (class flag set and rank zero) — these lanes head new segments."""
    marker = svm.p_eq(rank, 0, lmul=lmul)
    svm.p_mul(marker, cls, lmul=lmul)
    return marker


def flat_quicksort(svm: SVM, keys: SVMArray, *, shuffle: bool = False,
                   max_rounds: int | None = None, lmul: LMUL | None = None,
                   rng: np.random.Generator | None = None) -> int:
    """Sort ``keys`` ascending in place; returns the number of
    partition rounds executed.

    Parameters
    ----------
    shuffle:
        Randomly permute the input once before sorting (through the
        permute primitive), guarding against adversarial orderings —
        first-element pivots are quadratic on sorted input otherwise.
    max_rounds:
        Safety cap; defaults to ``2 * ceil(lg n) + 32``. Exceeding it
        raises :class:`~repro.errors.ReproError`.
    """
    n = keys.n
    if n <= 1:
        return 0
    if max_rounds is None:
        max_rounds = 2 * int(np.ceil(np.log2(n))) + 32

    with _span(svm.machine, "quicksort", n=n):
        return _flat_quicksort_body(svm, keys, n, shuffle, max_rounds, lmul, rng)


def _flat_quicksort_body(svm, keys, n, shuffle, max_rounds, lmul, rng) -> int:
    if shuffle:
        rng = np.random.default_rng() if rng is None else rng
        perm = svm.array(rng.permutation(n).astype(np.uint32))
        shuffled = svm.permute(keys, perm, lmul=lmul)
        svm.copy(shuffled, out=keys)
        svm.free(perm)
        svm.free(shuffled)

    heads_init = np.zeros(n, dtype=np.uint32)
    heads_init[0] = 1
    heads = svm.array(heads_init)
    idx = svm.index_array(n, lmul=lmul)

    rounds = 0
    for rounds in range(1, max_rounds + 1):
        with _span(svm.machine, "round", i=rounds):
            # 1. broadcast each segment's pivot (head element)
            pivots = seg_copy(svm, keys, heads, lmul=lmul)

            # 2. classify
            lt = svm.p_lt(keys, pivots, lmul=lmul)
            eq = svm.p_eq(keys, pivots, lmul=lmul)
            gt = svm.p_gt(keys, pivots, lmul=lmul)

            # 3. ranks within class and per-segment class totals
            rank_lt = svm.copy(lt)
            svm.seg_scan(rank_lt, heads, "plus", inclusive=False, lmul=lmul)
            rank_eq = svm.copy(eq)
            svm.seg_scan(rank_eq, heads, "plus", inclusive=False, lmul=lmul)
            rank_gt = svm.copy(gt)
            svm.seg_scan(rank_gt, heads, "plus", inclusive=False, lmul=lmul)
            tot_lt = seg_total(svm, lt, heads, lmul=lmul)
            tot_eq = seg_total(svm, eq, heads, lmul=lmul)
            tot_gt = seg_total(svm, gt, heads, lmul=lmul)

            # done segments: nothing strictly below or above the pivot
            z_lt = svm.p_eq(tot_lt, 0, lmul=lmul)
            z_gt = svm.p_eq(tot_gt, 0, lmul=lmul)
            done = z_lt
            svm.p_mul(done, z_gt, lmul=lmul)

            # segment start index, distributed to every lane
            seg_start = seg_copy(svm, idx, heads, lmul=lmul)

            # destination = start + class offset + rank within class
            dest_lt = svm.copy(seg_start)
            svm.p_add(dest_lt, rank_lt, lmul=lmul)
            dest_eq = svm.copy(seg_start)
            svm.p_add(dest_eq, tot_lt, lmul=lmul)
            svm.p_add(dest_eq, rank_eq, lmul=lmul)
            dest_gt = svm.copy(seg_start)
            svm.p_add(dest_gt, tot_lt, lmul=lmul)
            svm.p_add(dest_gt, tot_eq, lmul=lmul)
            svm.p_add(dest_gt, rank_gt, lmul=lmul)
            dest = dest_gt
            svm.p_select(eq, dest_eq, dest, lmul=lmul)
            svm.p_select(lt, dest_lt, dest, lmul=lmul)
            svm.p_select(done, idx, dest, lmul=lmul)  # done lanes stay put

            # 4. new segment heads: first lane of each nonempty class
            m_lt = _class_marker(svm, lt, rank_lt, lmul)
            m_eq = _class_marker(svm, eq, rank_eq, lmul)
            m_gt = _class_marker(svm, gt, rank_gt, lmul)
            marker = m_lt
            svm.p_or(marker, m_eq, lmul=lmul)
            svm.p_or(marker, m_gt, lmul=lmul)
            svm.p_select(done, heads, marker, lmul=lmul)  # done: keep heads

            new_keys = svm.permute(keys, dest, lmul=lmul)
            new_heads = svm.permute(marker, dest, lmul=lmul)
            svm.copy(new_keys, out=keys)
            svm.copy(new_heads, out=heads)

            finished = svm.reduce(done, "plus", lmul=lmul) == n

            for tmp in (pivots, lt, eq, gt, rank_lt, rank_eq, rank_gt,
                        tot_lt, tot_eq, tot_gt, z_lt, z_gt, seg_start,
                        dest_lt, dest_eq, dest_gt, m_lt, m_eq,
                        new_keys, new_heads):
                svm.free(tmp)
            # done aliased z_lt, marker aliased m_lt, dest aliased dest_gt

        if finished:
            break
    else:
        raise ReproError(
            f"flat_quicksort did not converge in {max_rounds} rounds"
            f" (adversarial input? try shuffle=True)"
        )

    svm.free(heads)
    svm.free(idx)
    return rounds

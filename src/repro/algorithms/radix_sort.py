"""Split radix sort (§4.4, Listing 9) — the paper's running example.

Sorts unsigned integers with one stable :func:`~repro.svm.split_op.
split` pass per bit, from least to most significant (Figure 2): after
pass i, the array is stably ordered by its low i+1 bits, so after all
passes it is sorted. The algorithm is built *purely from scan vector
model primitives* — the paper's demonstration that the primitive set is
sufficient for real workloads.

As in Listing 9, the implementation ping-pongs between the input array
and a scratch buffer, swapping pointers after each pass. For a 32-bit
key the pass count is even, so the final data lands back in the input's
storage; for odd pass counts a copy pass restores it (charged as a
vector memcpy).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..obs.spans import span as _span
from ..rvv.types import LMUL
from ..svm.context import SVM, SVMArray
from ..svm.split_op import split, split_pairs

__all__ = ["split_radix_sort", "split_radix_sort_pairs"]


def split_radix_sort(svm: SVM, src: SVMArray, bits: int | None = None,
                     lmul: LMUL | None = None, signed: bool = False) -> None:
    """Sort ``src`` ascending, in place (Listing 9, measured in
    Table 1).

    Parameters
    ----------
    bits:
        Number of low-order key bits to sort by (default: the full
        element width, 32 for ``uint32``). Sorting by fewer bits is
        correct when the keys are known to fit — a standard radix-sort
        optimization the LMUL/ablation benches exploit.
    signed:
        Treat the keys as two's-complement and sort in *signed* order.
        One ``p_xor`` of the sign bit before and after the sort maps
        signed order onto unsigned order (the classic bias trick); the
        sort itself is unchanged. Requires the full-width ``bits``.
    """
    lmul = svm._lmul(lmul)
    if signed:
        width_bits = src.dtype.itemsize * 8
        if bits is not None and bits != width_bits:
            raise ConfigurationError(
                "signed sort needs the full key width (the sign bit is the MSB)"
            )
        sign_bit = 1 << (width_bits - 1)
        svm.p_xor(src, sign_bit, lmul=lmul)
        try:
            split_radix_sort(svm, src, bits=None, lmul=lmul)
        finally:
            svm.p_xor(src, sign_bit, lmul=lmul)
        return
    n = src.n
    m = svm.machine
    width = src.dtype.itemsize * 8
    if bits is None:
        bits = width
    if not 0 <= bits <= width:
        raise ConfigurationError(f"bits must be in [0, {width}], got {bits}")

    with _span(m, "radix_sort", n=n, bits=bits):
        # Listing 9 lines 2-5: scratch buffer and flag storage
        buffer = SVMArray(m.alloc_array(max(n, 1), src.dtype), n)
        flags = SVMArray(m.alloc_array(max(n, 1), src.dtype), n)
        cur, alt = src, buffer
        try:
            for bit in range(bits):
                with _span(m, "pass", bit=bit):
                    svm.get_flags(cur, bit, out=flags, lmul=lmul)
                    split(svm, cur, alt, flags, lmul=lmul)
                    cur, alt = alt, cur  # Listing 9's pointer swap
                    m.scalar(3)
            if cur is not src:
                # odd pass count: move the result back into src's storage
                svm.copy(cur, out=src, lmul=lmul)
        finally:
            m.free(buffer.ptr.addr)
            m.free(flags.ptr.addr)


def split_radix_sort_pairs(svm: SVM, keys: SVMArray, payload: SVMArray,
                           bits: int | None = None,
                           lmul: LMUL | None = None) -> None:
    """Key-value split radix sort: sort ``keys`` ascending, carrying
    ``payload`` through the same stable permutation — the form database
    and graph workloads need (sort row ids by key, etc.).

    Stability means equal keys keep their payloads' original relative
    order, which the property tests verify against ``np.argsort``
    with a stable kind.
    """
    lmul = svm._lmul(lmul)
    n = keys.n
    if payload.n != n:
        raise ConfigurationError("keys and payload must have equal length")
    m = svm.machine
    width = keys.dtype.itemsize * 8
    if bits is None:
        bits = width
    if not 0 <= bits <= width:
        raise ConfigurationError(f"bits must be in [0, {width}], got {bits}")

    with _span(m, "radix_sort_pairs", n=n, bits=bits):
        key_buf = SVMArray(m.alloc_array(max(n, 1), keys.dtype), n)
        pay_buf = SVMArray(m.alloc_array(max(n, 1), payload.dtype), n)
        flags = SVMArray(m.alloc_array(max(n, 1), keys.dtype), n)
        cur_k, alt_k = keys, key_buf
        cur_p, alt_p = payload, pay_buf
        try:
            for bit in range(bits):
                with _span(m, "pass", bit=bit):
                    svm.get_flags(cur_k, bit, out=flags, lmul=lmul)
                    split_pairs(svm, cur_k, alt_k, cur_p, alt_p, flags, lmul=lmul)
                    cur_k, alt_k = alt_k, cur_k
                    cur_p, alt_p = alt_p, cur_p
                    m.scalar(3)
            if cur_k is not keys:
                svm.copy(cur_k, out=keys, lmul=lmul)
                svm.copy(cur_p, out=payload, lmul=lmul)
        finally:
            m.free(key_buf.ptr.addr)
            m.free(pay_buf.ptr.addr)
            m.free(flags.ptr.addr)

"""Wide-digit split radix sort — and why the paper's binary split wins.

A natural question about Listing 9: why one bit per pass? Classical
radix sorts use multi-bit digits (radix 2^w), paying per-bucket
*histogram* work once to cut the pass count by w. This module
implements that variant on scan-model primitives so the trade-off can
be measured (``benchmarks/bench_ext_digit_width.py``):

Per digit pass over w bits, each of the 2^w buckets needs its own
enumerate (rank within bucket) plus a select merging the ranks — there
is no scatter-with-accumulate in the model to build a histogram in one
sweep. The per-pass cost is therefore Θ(2^w) primitive sweeps, while
the pass count only drops by w:

    total sweeps ≈ (width / w) · (3·2^w + 3)

which is *minimized at w = 1* (binary split shares its two enumerates
between the buckets). The measured counts confirm it — the paper's
one-bit split is the right design for this primitive set, not a
simplification.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..rvv.types import LMUL
from ..svm.context import SVM, SVMArray

__all__ = ["split_radix_sort_wide"]


def _digit_pass(svm: SVM, src: SVMArray, dst: SVMArray, shift: int,
                digit_bits: int, lmul) -> None:
    """One stable counting pass over a ``digit_bits``-wide digit."""
    n = src.n
    digits = _get_digit(svm, src, shift, digit_bits, lmul)
    dest = svm.zeros(n)
    offset = 0
    for bucket in range(1 << digit_bits):
        flags = svm.p_eq(digits, bucket, lmul=lmul)
        ranks, count = svm.enumerate(flags, set_bit=True, lmul=lmul)
        svm.p_add(ranks, offset, lmul=lmul)
        svm.p_select(flags, ranks, dest, lmul=lmul)
        offset += count
        svm.machine.scalar(1)
        svm.free(flags)
        svm.free(ranks)
    svm.permute(src, dest, out=dst, lmul=lmul)
    svm.free(digits)
    svm.free(dest)


def _get_digit(svm: SVM, src: SVMArray, shift: int, digit_bits: int,
               lmul) -> SVMArray:
    """(src >> shift) & mask via the elementwise primitives."""
    out = svm.copy(src, lmul=lmul)
    if shift:
        svm.p_srl(out, shift, lmul=lmul)
    svm.p_and(out, (1 << digit_bits) - 1, lmul=lmul)
    return out


def split_radix_sort_wide(svm: SVM, src: SVMArray,
                          digit_bits: int | None = None,
                          bits: int | None = None,
                          lmul: LMUL | None = None) -> None:
    """Sort ``src`` ascending using ``digit_bits``-wide digits per pass.

    ``digit_bits=None`` resolves through the context's
    :class:`~repro.config.ExecConfig` (default 2). ``digit_bits=1``
    degenerates to (an unshared-enumerate version of) the paper's
    binary split; larger digits trade fewer passes for Θ(2^w) per-pass
    bucket sweeps. See the module docstring for why w=1 wins in this
    model.
    """
    lmul = svm._lmul(lmul)
    if digit_bits is None:
        digit_bits = svm.config.digit_bits
    width = src.dtype.itemsize * 8
    if bits is None:
        bits = width
    if not 1 <= digit_bits <= 8:
        raise ConfigurationError(f"digit_bits must be in [1, 8], got {digit_bits}")
    if not 0 <= bits <= width:
        raise ConfigurationError(f"bits must be in [0, {width}], got {bits}")

    n = src.n
    m = svm.machine
    buffer = SVMArray(m.alloc_array(max(n, 1), src.dtype), n)
    cur, alt = src, buffer
    try:
        shift = 0
        while shift < bits:
            w = min(digit_bits, bits - shift)
            _digit_pass(svm, cur, alt, shift, w, lmul)
            cur, alt = alt, cur
            shift += w
            m.scalar(3)
        if cur is not src:
            svm.copy(cur, out=src, lmul=lmul)
    finally:
        m.free(buffer.ptr.addr)

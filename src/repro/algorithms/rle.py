"""Run-length encoding/decoding on scan-vector-model primitives — one
of Blelloch's canonical applications of scans.

Encode: a run boundary is a lane that differs from its predecessor
(``p_ne`` against a ``shift1up`` of the data). Enumerating the
boundaries assigns run ids; packing extracts each run's value and start
index; adjacent-start differences give the lengths.

Decode: scatter run values at their start positions, rebuild head
flags, and distribute each value across its run with a segmented
inclusive plus-scan of the scattered array (only heads are nonzero, so
the scan broadcasts) — the same distribute idiom flat quicksort uses
for pivots.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..obs.spans import span as _span
from ..rvv.types import LMUL
from ..svm.context import SVM, SVMArray
from ..svm.gather_scatter import scatter_any

__all__ = ["rle_encode", "rle_decode"]


def rle_encode(svm: SVM, data: SVMArray, lmul: LMUL | None = None
               ) -> tuple[SVMArray, SVMArray, int]:
    """Encode ``data`` into (values, lengths, n_runs).

    ``values[k]`` and ``lengths[k]`` describe the k-th maximal run of
    equal adjacent elements. The returned arrays are sized ``n`` with
    the first ``n_runs`` entries meaningful (the scan model computes
    into dense vectors; callers slice by the returned count).
    """
    n = data.n
    if n == 0:
        return svm.empty(0), svm.empty(0), 0
    with _span(svm.machine, "rle_encode", n=n):
        return _rle_encode_body(svm, data, n, lmul)


def _rle_encode_body(svm, data, n, lmul):
    # run boundaries: lane 0 always starts a run; shift in data[0]^1 so
    # p_ne flags it without a special case
    first = int(data.ptr[0])
    shifted = svm.shift1up(data, first ^ 1, lmul=lmul)
    heads = svm.p_ne(data, shifted, lmul=lmul)
    svm.free(shifted)

    # start index of each run, packed to the front
    idx = svm.index_array(n, lmul=lmul)
    starts, n_runs = svm.pack(idx, heads, lmul=lmul)
    values, n_runs2 = svm.pack(data, heads, lmul=lmul)
    if n_runs != n_runs2:  # pragma: no cover - internal invariant
        raise ReproError("inconsistent run counts")

    # lengths: next start minus my start; the last run ends at n.
    # shift starts left by one = shift1up on the reversed prefix is
    # overkill here — compute ends = starts shifted down one with n
    # filled in, via shift1up on the *packed* region's reverse; simpler
    # and still primitive-only: ends[k] = starts[k+1] (k < runs-1), n.
    ends = svm.copy(starts, lmul=lmul)
    if n_runs > 1:
        # drop the first start and append n: reverse, shift in n, reverse
        packed_starts = SVMArray(starts.ptr, n_runs)
        rev = svm.reverse(packed_starts, lmul=lmul)
        shifted_rev = svm.shift1up(rev, n, lmul=lmul)
        back = svm.reverse(shifted_rev, lmul=lmul)
        svm.copy(back, out=SVMArray(ends.ptr, n_runs), lmul=lmul)
        svm.free(rev)
        svm.free(shifted_rev)
        svm.free(back)
    else:
        ends.ptr[0] = n
        svm.machine.scalar(2)  # scalar store of the single run end
    lengths = ends
    packed_lengths = SVMArray(lengths.ptr, n_runs)
    packed_starts = SVMArray(starts.ptr, n_runs)
    svm.p_sub(packed_lengths, packed_starts, lmul=lmul)

    svm.free(idx)
    svm.free(heads)
    svm.free(starts)
    return values, lengths, n_runs


def rle_decode(svm: SVM, values: SVMArray, lengths: SVMArray, n_runs: int,
               lmul: LMUL | None = None) -> SVMArray:
    """Decode (values, lengths) back into the flat array.

    Start positions are the exclusive plus-scan of the lengths; the
    total decoded size is the inclusive total. Values scatter to their
    starts, head flags are rebuilt by scattering ones, and a segmented
    inclusive plus-scan distributes each value over its run.
    """
    if n_runs == 0:
        return svm.empty(0)
    with _span(svm.machine, "rle_decode", n_runs=n_runs):
        return _rle_decode_body(svm, values, lengths, n_runs, lmul)


def _rle_decode_body(svm, values, lengths, n_runs, lmul):
    runs_v = SVMArray(values.ptr, n_runs)
    runs_l = SVMArray(lengths.ptr, n_runs)

    starts = svm.copy(runs_l, lmul=lmul)
    svm.scan(starts, "plus", inclusive=False, lmul=lmul)
    total = svm.reduce(runs_l, "plus", lmul=lmul)

    out = svm.zeros(total)
    flags = svm.zeros(total)
    ones = svm.copy(runs_l, lmul=lmul)
    svm.p_mul(ones, 0, lmul=lmul)
    svm.p_add(ones, 1, lmul=lmul)

    # scatter values and head markers at run starts.  permute() requires
    # equal src/dst lengths; scatter into the larger array through the
    # raw pointers of n_runs-sized views of out/flags is not expressible
    # with out-of-place permute, so use the indexed-store primitive via
    # a dst pointer reinterpretation: both arrays are dense, so target
    # views of length n_runs do not cover all destinations — instead we
    # scatter with permute on padded index semantics: vsuxei writes
    # arbitrary offsets, which svm.permute exposes when dst is longer.
    scatter_any(svm, runs_v, starts, out, lmul=lmul)
    scatter_any(svm, ones, starts, flags, lmul=lmul)

    svm.seg_plus_scan(out, flags, lmul=lmul)
    for tmp in (starts, flags, ones):
        svm.free(tmp)
    return out

"""Sparse matrix-vector product via segmented sums — Blelloch's
flagship segmented-scan application and a workload class the paper's
introduction motivates (scientific computing / ML kernels on RVV).

A CSR matrix is exactly a segment structure: each row's nonzeros form
one segment of the flat ``values``/``col_idx`` arrays. The product is

1. gather ``x[col_idx]`` (permutation class, ``vluxei``),
2. multiply elementwise with ``values``,
3. segmented inclusive plus-scan under the row head-flags,
4. gather each row's last lane — the row's total — into ``y``.

Integer arithmetic (the library's element domain) makes this an exact
SpMV over uint32 with modular wrap, which is also how the tests oracle
it against ``scipy.sparse``-free NumPy math.
"""

from __future__ import annotations

import numpy as np

from ..errors import SegmentError
from ..obs.spans import span as _span
from ..rvv.types import LMUL
from ..svm.context import SVM, SVMArray
from ..svm.gather_scatter import gather_any, scatter_any
from ..svm.segment_descriptor import head_pointers_to_head_flags

__all__ = ["CSRMatrix", "spmv"]


class CSRMatrix:
    """A validated CSR matrix of uint32 values living in host memory;
    :func:`spmv` stages it into machine memory per call.

    Empty rows are allowed: the row-pointer descriptor expresses them
    even though head-flags cannot (zero-length segments) — the gather
    of row totals simply reads nothing for them and ``y`` keeps 0.
    """

    def __init__(self, n_rows: int, n_cols: int, row_ptr, col_idx, values) -> None:
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.row_ptr = np.asarray(row_ptr, dtype=np.int64)
        self.col_idx = np.asarray(col_idx, dtype=np.uint32)
        self.values = np.asarray(values, dtype=np.uint32)
        if self.row_ptr.shape != (self.n_rows + 1,):
            raise SegmentError(
                f"row_ptr must have {self.n_rows + 1} entries, got {self.row_ptr.shape}"
            )
        if self.row_ptr[0] != 0 or (np.diff(self.row_ptr) < 0).any():
            raise SegmentError("row_ptr must start at 0 and be non-decreasing")
        nnz = int(self.row_ptr[-1])
        if self.col_idx.shape != (nnz,) or self.values.shape != (nnz,):
            raise SegmentError(f"col_idx/values must have {nnz} entries")
        if nnz and int(self.col_idx.max()) >= self.n_cols:
            raise SegmentError("column index out of range")

    @property
    def nnz(self) -> int:
        return int(self.row_ptr[-1])

    @classmethod
    def random(cls, n_rows: int, n_cols: int, density: float,
               rng: np.random.Generator) -> "CSRMatrix":
        """A random matrix with ~``density`` fraction of nonzeros and
        small values (keeps uint32 sums away from wrap in examples)."""
        mask = rng.random((n_rows, n_cols)) < density
        dense = np.where(mask, rng.integers(1, 10, (n_rows, n_cols)), 0)
        row_ptr = np.zeros(n_rows + 1, dtype=np.int64)
        cols, vals = [], []
        for r in range(n_rows):
            nz = np.flatnonzero(dense[r])
            row_ptr[r + 1] = row_ptr[r] + nz.size
            cols.append(nz)
            vals.append(dense[r, nz])
        col_idx = np.concatenate(cols) if cols else np.empty(0)
        values = np.concatenate(vals) if vals else np.empty(0)
        return cls(n_rows, n_cols, row_ptr, col_idx, values)

    def to_dense(self) -> np.ndarray:
        """Dense uint32 copy (oracle for tests)."""
        dense = np.zeros((self.n_rows, self.n_cols), dtype=np.uint32)
        for r in range(self.n_rows):
            lo, hi = self.row_ptr[r], self.row_ptr[r + 1]
            dense[r, self.col_idx[lo:hi]] = self.values[lo:hi]
        return dense


def spmv(svm: SVM, matrix: CSRMatrix, x: SVMArray,
         lmul: LMUL | None = None) -> SVMArray:
    """Compute ``y = A @ x`` (uint32, modular) using only scan-vector-
    model primitives over the staged CSR arrays."""
    if x.n != matrix.n_cols:
        raise SegmentError(f"x has {x.n} entries, matrix has {matrix.n_cols} columns")
    nnz = matrix.nnz
    y = svm.zeros(matrix.n_rows)
    if nnz == 0:
        return y
    with _span(svm.machine, "spmv", n=nnz, rows=matrix.n_rows):
        _spmv_body(svm, matrix, x, y, nnz, lmul)
    return y


def _spmv_body(svm, matrix, x, y, nnz, lmul) -> None:
    vals = svm.array(matrix.values)
    cols = svm.array(matrix.col_idx)
    # head flags from the row-pointer descriptor, skipping empty rows
    # (their pointers repeat; unique start offsets head the segments)
    nonempty = np.flatnonzero(np.diff(matrix.row_ptr) > 0)
    starts = matrix.row_ptr[nonempty]
    flags = svm.array(head_pointers_to_head_flags(np.unique(starts), nnz))

    # 1-2. gather x through the column indices and scale by the values
    xg = gather_any(svm, x, cols, lmul=lmul)
    svm.p_mul(vals, xg, lmul=lmul)

    # 3. per-row running sums
    svm.seg_plus_scan(vals, flags, lmul=lmul)

    # 4. each nonempty row's total sits at its last lane
    ends = svm.array((matrix.row_ptr[nonempty + 1] - 1).astype(np.uint32))
    totals = gather_any(svm, SVMArray(vals.ptr, nnz), ends, lmul=lmul)
    rows = svm.array(nonempty.astype(np.uint32))
    scatter_any(svm, totals, rows, y, lmul=lmul)

    for tmp in (vals, cols, flags, xg, ends, totals, rows):
        svm.free(tmp)

"""Batched execution of one fused plan over many inputs.

``svm.batch(pipe, inputs)`` (or :func:`run_batch`) amortizes plan
capture, cache lookup, dispatch, and counter charging across a whole
batch: same-length inputs share one cached
:class:`~repro.engine.fuse.FusedPlan`, data moves as a single 2D NumPy
evaluation per execution unit, and counters are charged once from
row 0's delta scaled by the batch size — bit- and counter-identical to
looping the single-input path. Pipelines ending in ``pack`` run the
same way on the ``"ragged"`` path: one masked 2D evaluation plus a
per-row-lengths column (:class:`~repro.batch.ragged.RaggedBatch`) and
an exact per-row charge correction. See ``docs/batching.md``.
"""

from .ragged import RaggedBatch, pack2d
from .runner import BatchBucket, BatchResult, run_batch, run_bucket

__all__ = ["BatchBucket", "BatchResult", "RaggedBatch", "pack2d",
           "run_batch", "run_bucket"]

"""Ragged-batch representation: 2D values decoupled from per-row
result lengths.

``pack`` is the one primitive whose *output length* (and with it the
data-dependent part of its charge) varies per row, so a batch of pack
pipelines cannot be described by a plain ``[B, n]`` matrix alone. The
fix mirrors how the paper's strip loop decouples logical vector length
from VLEN: keep the physical batch shape rectangular and carry the
logical per-row lengths as a first-class column.

* :class:`RaggedBatch` is that pairing — one ``[B, n]`` value buffer
  plus a ``[B]`` lengths vector, with a derived validity mask. Lanes
  at or beyond a row's length are *undefined* (malloc residue under
  the single-row semantics), never compared, never charged.
* :func:`pack2d` is the masked ``axis=1`` kernel the batch runner uses
  on the ``"ragged"`` path: one vectorized compaction over the whole
  batch, writing each row's survivor prefix and returning the per-row
  kept counts (the vectorized form of the ``pack.kept``
  :class:`~repro.engine.ir.ScalarFuture`).

The per-row *charge* correction lives next to the closed-form charge
tuples in :func:`repro.engine.specialize.pack_variable_items`; the
survivor-strip arithmetic it needs is
:func:`repro.svm.fastpath.pack_strip_survivors`, shared with the eager
fast path. See ``docs/batching.md`` (ragged representation) for the
masking rule and the identity contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RaggedBatch", "pack2d"]


@dataclass(frozen=True)
class RaggedBatch:
    """A 2D value buffer with a per-row-lengths column.

    ``values[i, :lengths[i]]`` is row *i*'s defined prefix; lanes past
    the length are undefined residue and excluded from every identity
    comparison. ``lengths[i] == values.shape[1]`` marks a fully-defined
    row, so non-ragged results embed losslessly.
    """

    values: np.ndarray   #: ``[B, n]`` row-major value buffer
    lengths: np.ndarray  #: ``[B]`` int64 defined-prefix lengths

    def __post_init__(self):
        values = np.asarray(self.values)
        lengths = np.asarray(self.lengths, dtype=np.int64)
        if values.ndim != 2:
            raise ValueError(f"values must be [B, n], got {values.shape}")
        if lengths.shape != (values.shape[0],):
            raise ValueError(
                f"lengths must be [{values.shape[0]}], got {lengths.shape}"
            )
        if lengths.size and (lengths.min() < 0
                             or lengths.max() > values.shape[1]):
            raise ValueError(
                f"lengths must lie in [0, {values.shape[1]}]"
            )
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "lengths", lengths)

    @property
    def mask(self) -> np.ndarray:
        """``[B, n]`` boolean validity mask (True on defined lanes)."""
        n = self.values.shape[1]
        return np.arange(n)[None, :] < self.lengths[:, None]

    def row(self, i: int) -> np.ndarray:
        """Row *i*'s defined prefix (a view)."""
        return self.values[i, : self.lengths[i]]

    def __len__(self) -> int:
        return self.values.shape[0]

    def __iter__(self):
        return (self.row(i) for i in range(len(self)))

    def to_list(self) -> list[np.ndarray]:
        """The defined prefixes as a plain list of 1-D arrays."""
        return list(self)


def pack2d(src: np.ndarray, flags: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Masked ``axis=1`` stream compaction: the batch-of-``pack``
    kernel.

    For every row, the flagged lanes of ``src`` are written in order
    to the front of ``dst``; lanes past the row's survivor count keep
    whatever ``dst`` held (the undefined-tail contract of the
    single-row kernel). Returns the per-row kept counts as int64 —
    exactly the vector the ``pack.kept`` future resolves to row by
    row. In-place compaction (``dst is src``) is safe: the gather of
    survivors completes before the scatter writes, and every
    destination index is ≤ its source index.
    """
    keep = flags != 0
    kept = keep.sum(axis=1, dtype=np.int64)
    if kept.any():
        pos = np.cumsum(keep, axis=1)
        r, c = np.nonzero(keep)
        dst[r, pos[r, c] - 1] = src[r, c]
    return kept

"""Batched plan execution: one fused plan, many independent inputs.

The paper's primitives are data-oblivious in their instruction counts
(§3, Tables 2-4): the vl strip sequence — and therefore every closed-
form charge — depends only on (n, VLEN, SEW, LMUL), never on element
values. That is what makes batching sound: a cached
:class:`~repro.engine.fuse.FusedPlan` evaluated over B same-length
inputs performs B identical instruction streams, so the batch can

* execute the *data* as one 2D NumPy evaluation per execution unit
  (batch axis × element axis), and
* charge the *counters* by running row 0 through the ordinary
  single-input engine and scaling its counter delta by the remaining
  B-1 rows — exact, because integer scaling of an identical per-row
  profile is exact.

The result is bit- and counter-identical to looping the single-input
path, which stays the definitional semantics:

* variable-length batches are split into length buckets first (the vl
  sequence depends only on n, so only same-(n, dtype) rows may share a
  plan);
* every structured node kind batches — permute, enumerate, segmented
  scans, select, reduce and friends all have ``axis=1`` evaluations,
  and :class:`~repro.engine.ir.ScalarFuture` values produced inside
  the plan (enumerate counts, reductions, pack's kept count) thread
  through as per-row vectors;
* plans containing ``pack`` — the one op whose charge and output
  length are data-dependent — take the ``"ragged"`` path: still one
  2D evaluation, with a masked compaction kernel
  (:func:`repro.batch.ragged.pack2d`), a per-row-lengths column on the
  result (:class:`~repro.batch.ragged.RaggedBatch`), and an exact
  per-row counter charge via ``Counters.add_many`` that swaps row 0's
  data-dependent pack items for each row's own
  (:func:`repro.engine.specialize.pack_variable_items`);
* only out-of-registry opaque calls, strict mode, and plans where a
  packed buffer escapes into a non-prefix-local consumer fall back to
  literally looping the single-input path;
* the 2D fast path replays the pre-compiled
  :class:`~repro.engine.specialize.SpecializedGroup` lane chains with
  ``axis=1`` scan tails.

See ``docs/batching.md`` for the API, the bucketing rule, and the
ragged representation.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from ..engine.capture import PlanBuilder
from ..obs.telemetry import note_batch_path
from ..engine.executor import execute
from ..engine.fuse import GroupSpec, materialize
from ..engine.ir import EngineError, Kind, Plan, ScalarFuture, resolve_scalar
from ..engine.native import NATIVE_BACKENDS, native_state
from ..engine.specialize import pack_variable_items
from ..rvv.types import sew_for_dtype
from ..scalar.kernels import segmented_cumsum, segmented_reduce_numpy
from ..svm.fastpath import _NP_CMP, _UFUNC_VX, _wrap, pack_strip_survivors
from ..svm.opspec import get_spec
from ..svm.operators import get_operator
from .ragged import RaggedBatch, pack2d

__all__ = ["BatchBucket", "BatchResult", "run_batch", "run_bucket"]


@dataclass(frozen=True)
class BatchBucket:
    """One length bucket of a batch and how it was dispatched."""

    n: int
    dtype: str
    rows: int
    #: ``"2d"`` (matrix fast path), ``"ragged"`` (matrix fast path
    #: with pack's masked kernel + per-row lengths), or ``"loop"``
    #: (per-row fallback).
    path: str
    #: Positions of this bucket's rows in the original input order.
    indices: tuple[int, ...]
    #: Per-row defined-prefix lengths of the outputs (bucket row
    #: order) when the pipeline's output is ragged (its last writer is
    #: a pack); None when every output lane is defined.
    lengths: tuple[int, ...] | None = None


@dataclass
class BatchResult:
    """Outputs in input order plus per-bucket dispatch reports.

    ``lengths`` parallels ``outputs``: row *i*'s defined prefix is
    ``outputs[i][:lengths[i]]`` when ``lengths[i]`` is an int (a
    pack-tailed pipeline — lanes past the kept count are undefined
    malloc residue), and the whole row when it is None.
    """

    outputs: list[np.ndarray] = field(default_factory=list)
    buckets: list[BatchBucket] = field(default_factory=list)
    lengths: list = field(default_factory=list)

    @property
    def rows(self) -> int:
        return len(self.outputs)

    def __len__(self) -> int:
        return len(self.outputs)

    def __getitem__(self, i):
        return self.outputs[i]

    def __iter__(self):
        return iter(self.outputs)

    def to_ragged(self) -> RaggedBatch:
        """The result as one :class:`~repro.batch.ragged.RaggedBatch`.

        Requires all outputs to share one length (one bucket — the
        :func:`run_bucket` shape). Rows without a lengths entry are
        fully defined."""
        if not self.outputs:
            return RaggedBatch(np.empty((0, 0)), np.empty(0, dtype=np.int64))
        n = self.outputs[0].size
        if any(o.size != n for o in self.outputs):
            raise EngineError(
                "to_ragged needs same-length outputs (a single bucket)"
            )
        lengths = [n if k is None else int(k)
                   for k in (self.lengths or [None] * len(self.outputs))]
        return RaggedBatch(np.stack(self.outputs, axis=0),
                           np.asarray(lengths, dtype=np.int64))


def _freed_bids(plan: Plan) -> set[int]:
    return {node.dst for node in plan.nodes if node.kind is Kind.FREE}


def _release(svm, plan: Plan, input_addr: int, executed: bool = True) -> None:
    """Free the buffers one single-input run would not leave behind:
    plan temporaries and the input we allocated, minus anything the
    plan already freed. External (non-temp) arrays are left alone.
    A never-executed probe capture (``executed=False``) still holds
    everything, including buffers its FREE nodes would have freed."""
    freed = _freed_bids(plan) if executed else set()
    for bid, buf in plan.buffers.items():
        if bid in freed:
            continue
        if buf.temp or buf.array.ptr.addr == input_addr:
            svm.free(buf.array)


def _capture(svm, pipe, row: np.ndarray):
    """Capture ``pipe`` over a fresh input array; returns
    (plan, input SVMArray, output SVMArray)."""
    data = svm.array(row, dtype=row.dtype)
    lz = PlanBuilder(svm)
    out = pipe(lz, data)
    if out is None:
        raise EngineError(
            "batch pipelines must return their output SVMArray"
        )
    return lz.build(), data, out


def _batchable(plan: Plan, fused) -> bool:
    """Whether a plan batches as one 2D evaluation (the shared
    precondition of the ``"2d"`` and ``"ragged"`` paths).

    Rejected outright: out-of-registry OPAQUE calls (nothing
    structured to vectorize). PACK is *not* rejected here — plans
    containing it are additionally screened by :func:`_ragged_tags`
    and dispatch to the ``"ragged"`` path.

    ScalarFuture operands (enumerate counts, reductions, pack's kept
    count feeding later nodes) are fine when the future is produced by
    an earlier node of the same plan — it becomes a per-row vector —
    and the consumer is an eager EW_VX / CMP_VX node whose ufunc
    broadcasts a column of per-row scalars. Consumers inside fused
    groups (whose kernels resolve the scalar once) and the shift ops
    (whose wrappers coerce the scalar to a plain int) fall back to the
    loop."""
    group_nodes: set[int] = set()
    for u in fused.units:
        if isinstance(u, GroupSpec):
            group_nodes.update(u.node_indices)
    produced: set[ScalarFuture] = set()
    for i, node in enumerate(plan.nodes):
        kind = node.kind
        if kind is Kind.OPAQUE:
            return False
        if isinstance(node.scalar, ScalarFuture):
            if node.scalar not in produced or i in group_nodes:
                return False
            if kind not in (Kind.EW_VX, Kind.CMP_VX):
                return False
            if kind is Kind.EW_VX and node.op in ("p_srl", "p_sll"):
                return False
        if node.future is not None:
            produced.add(node.future)
    return True


#: Kinds that may read a ragged buffer without corrupting its defined
#: prefix: lane-local elementwise work plus the prefix-local scans
#: (lane i of the result depends only on lanes <= i of the inputs), so
#: the first ``kept`` lanes come out identical to the loop path no
#: matter what the undefined tail holds.
_PREFIX_LOCAL = frozenset((
    Kind.EW_VX, Kind.EW_VV, Kind.CMP_VX, Kind.CMP_VV, Kind.GET_FLAGS,
    Kind.SCAN, Kind.SEG_SCAN, Kind.SELECT, Kind.COPY,
))

#: Kinds that overwrite every lane of ``dst`` (from non-ragged inputs
#: they produce a fully-defined buffer, clearing any stale tag).
_FULL_WRITERS = frozenset((
    Kind.CMP_VX, Kind.CMP_VV, Kind.GET_FLAGS, Kind.BACK_PERMUTE,
    Kind.COPY, Kind.INDEX, Kind.ENUMERATE, Kind.SHIFT1UP,
))


def _node_reads(node) -> tuple:
    """Buffer ids whose *contents* influence the node's result —
    including ``dst`` for in-place and partial-write kinds (their
    unwritten or read-modify-written lanes persist)."""
    kind = node.kind
    if kind is Kind.EW_VX or kind is Kind.SCAN:
        return (node.dst,)
    if kind is Kind.EW_VV or kind is Kind.SEG_SCAN:
        return (node.dst, node.operand)
    if kind is Kind.CMP_VX or kind is Kind.GET_FLAGS:
        return (node.src,)
    if kind is Kind.CMP_VV or kind is Kind.PACK:
        return (node.src, node.operand)
    if kind is Kind.SELECT:
        return (node.dst, node.src, node.operand)
    if kind is Kind.PERMUTE:
        return (node.dst, node.src, node.operand)  # scatter: partial dst
    if kind is Kind.BACK_PERMUTE:
        return (node.src, node.operand)
    if kind in (Kind.ENUMERATE, Kind.REDUCE, Kind.SHIFT1UP, Kind.COPY):
        return (node.src,)
    return ()


def _ragged_tags(plan: Plan) -> tuple[bool, dict]:
    """Propagate per-row-length tags through a plan.

    A buffer written by PACK is tagged with the ``pack.kept`` future
    that bounds its defined prefix; prefix-local consumers
    (:data:`_PREFIX_LOCAL`) propagate the tag to their destination.
    Returns ``(ok, tags)`` — ``ok`` is False when a tagged buffer
    reaches a consumer that is not prefix-local (a permute could read
    undefined tail lanes into the defined region; an enumerate or
    reduce would fold undefined lanes into a scalar) or when two
    different length columns meet, in which case only the per-row loop
    is sound and ``tags`` is unreliable."""
    tags: dict[int, ScalarFuture] = {}
    for node in plan.nodes:
        kind = node.kind
        if kind is Kind.FREE:
            tags.pop(node.dst, None)
            continue
        read_tags = {tags[b] for b in _node_reads(node) if b in tags}
        if read_tags:
            if kind not in _PREFIX_LOCAL or len(read_tags) > 1:
                return False, {}
            tags[node.dst] = next(iter(read_tags))
        elif kind is Kind.PACK:
            tags[node.dst] = node.future
        elif kind in _FULL_WRITERS:
            tags.pop(node.dst, None)
    return True, tags


def _bid_of(plan: Plan, array) -> int:
    """The plan buffer id backed by ``array``'s heap address."""
    return next(
        bid for bid, buf in plan.buffers.items()
        if buf.array.ptr.addr == array.ptr.addr
    )


def _out_lengths_future(plan: Plan, out_bid: int):
    """The ``pack.kept`` future bounding the output's defined prefix,
    or None when the output is fully defined (or the plan's ragged
    flow is untrackable)."""
    ok, tags = _ragged_tags(plan)
    return tags.get(out_bid) if ok else None


# ---------------------------------------------------------------------------
# 2D evaluation of one plan over the trailing B-1 rows
# ---------------------------------------------------------------------------

def _mat_getter(plan: Plan, init: dict[int, np.ndarray], b1: int):
    """Lazy [b1, n] matrices per buffer id: the input matrix is
    pre-seeded by the caller; temporaries materialize from their
    pre-execution contents on first touch."""
    mats: dict[int, np.ndarray] = {}

    def get(bid: int) -> np.ndarray:
        mat = mats.get(bid)
        if mat is None:
            mat = np.broadcast_to(init[bid], (b1, init[bid].size)).copy()
            mats[bid] = mat
        return mat

    return mats, get


def _group_2d(plan: Plan, sg, mats, get) -> None:
    """Replay a specialized group's lane chain on a [b1, n] matrix —
    the 2D mirror of ``run_specialized_fast``."""
    nodes = plan.nodes
    head_node = nodes[sg.spec.node_indices[0]]
    dst = head_node.dst
    head = head_node.src if head_node.src is not None else dst
    dtype = sg.dtype
    acc = get(head)
    # run_group_fast always copies the head so lane operands aliasing
    # dst still read pre-group values; in 2D the copy is only needed
    # when head != dst (head must survive) or such an alias exists
    owned = head == dst and not any(
        st.kind in ("vv", "cmp_vv") and nodes[st.node_index].operand == dst
        for st in sg.steps
    )
    for st in sg.steps:
        kind = st.kind
        if kind == "vx" or kind == "vv":
            if kind == "vx":
                x = st.const if st.const is not None \
                    else resolve_scalar(nodes[st.node_index].scalar)
                operand = _wrap(x, dtype)
            else:
                operand = get(nodes[st.node_index].operand)
            if not owned:
                acc = acc.copy()
                owned = True
            st.fn(acc, operand, out=acc)
        elif kind == "cmp_vx":
            x = resolve_scalar(nodes[st.node_index].scalar)
            acc = st.fn(acc, _wrap(x, dtype)).astype(dtype)
            owned = True
        else:  # cmp_vv
            acc = st.fn(acc, get(nodes[st.node_index].operand)).astype(dtype)
            owned = True
    if sg.scan_ufunc is not None:
        if not owned:
            acc = acc.copy()
        sg.scan_ufunc.accumulate(acc, axis=1, out=acc)
    mats[dst] = acc


def _scalar_2d(node, dtype, fvals):
    """A node's scalar operand for the 2D evaluation: a plain wrapped
    scalar, or — when it is a future produced earlier in the plan — a
    ``[b1, 1]`` column of per-row values that broadcasts per row."""
    if isinstance(node.scalar, ScalarFuture):
        return fvals[node.scalar].astype(dtype)[:, None]
    return _wrap(resolve_scalar(node.scalar), dtype)


def _node_2d(plan: Plan, node, mats, get, fvals, m=None, pack_sws=None) -> None:
    """One eager (non-fused, non-opaque) node on a [b, n] matrix.

    ``fvals`` maps each :class:`ScalarFuture` produced by the plan
    (enumerate counts, reductions, pack kept counts) to its per-row
    int64 vector. ``m`` (the machine) and ``pack_sws`` (a list
    collecting each pack node's per-row strips-with-survivors vector
    for the charge correction) are only needed on the ragged path."""
    kind = node.kind
    if kind is Kind.EW_VX:
        view = get(node.dst)
        _UFUNC_VX[node.op](view, _scalar_2d(node, view.dtype, fvals), out=view)
    elif kind is Kind.EW_VV:
        view = get(node.dst)
        _UFUNC_VX[node.op](view, get(node.operand), out=view)
    elif kind is Kind.CMP_VX:
        src = get(node.src)
        out_dtype = plan.buffers[node.dst].dtype
        mats[node.dst] = _NP_CMP[node.op](
            src, _scalar_2d(node, src.dtype, fvals)
        ).astype(out_dtype)
    elif kind is Kind.CMP_VV:
        out_dtype = plan.buffers[node.dst].dtype
        mats[node.dst] = _NP_CMP[node.op](
            get(node.src), get(node.operand)
        ).astype(out_dtype)
    elif kind is Kind.GET_FLAGS:
        src = get(node.src)
        bit = src.dtype.type(resolve_scalar(node.scalar))
        out_dtype = plan.buffers[node.dst].dtype
        mats[node.dst] = ((src >> bit) & src.dtype.type(1)).astype(out_dtype)
    elif kind is Kind.SCAN:
        view = get(node.dst)
        op = get_operator(node.op)
        if node.inclusive:
            op.ufunc.accumulate(view, axis=1, out=view)
        else:
            incl = op.ufunc.accumulate(view, axis=1)
            view[:, 1:] = incl[:, :-1]
            view[:, 0] = _wrap(op.identity(view.dtype), view.dtype)
    elif kind is Kind.SELECT:
        view = get(node.dst)
        np.copyto(view, get(node.src), where=get(node.operand).astype(bool))
    elif kind is Kind.SEG_SCAN:
        # flatten trick: forcing a segment head at every row start makes
        # one 1D segmented pass over the flattened matrix exact — no
        # carry crosses a row boundary (mirror of fast_seg_scan[_exclusive])
        view = get(node.dst)
        op = get_operator(node.op)
        flags = get(node.operand).copy()
        flags[:, 0] = 1
        flat = view.reshape(-1)
        flags_flat = flags.reshape(-1)
        if op.name == "plus":
            incl = segmented_cumsum(flat, flags_flat)
        else:
            incl = segmented_reduce_numpy(flat, flags_flat, op.ufunc)
        if node.inclusive:
            flat[:] = incl
        else:
            heads = flags_flat.astype(bool)
            flat[1:] = incl[:-1]
            flat[heads] = _wrap(op.identity(view.dtype), view.dtype)
    elif kind is Kind.ENUMERATE:
        flags = get(node.src)
        match = flags == flags.dtype.type(1 if node.scalar else 0)
        excl = np.zeros(match.shape, dtype=np.int64)
        if match.shape[1] > 1:
            np.cumsum(match[:, :-1], axis=1, out=excl[:, 1:])
        mats[node.dst] = excl.astype(plan.buffers[node.dst].dtype)
        fvals[node.future] = match.sum(axis=1, dtype=np.int64)
    elif kind is Kind.REDUCE:
        view = get(node.src)
        op = get_operator(node.op)
        init = _wrap(op.identity(view.dtype), view.dtype)
        fvals[node.future] = op.ufunc.reduce(
            view, axis=1, initial=init, dtype=view.dtype
        ).astype(np.int64)
    elif kind is Kind.PERMUTE:
        np.put_along_axis(get(node.dst), get(node.operand).astype(np.int64),
                          get(node.src), axis=1)
    elif kind is Kind.BACK_PERMUTE:
        view = get(node.dst)
        view[:] = np.take_along_axis(
            get(node.src), get(node.operand).astype(np.int64), axis=1
        )
    elif kind is Kind.SHIFT1UP:
        src = get(node.src)
        view = get(node.dst)
        tail = src[:, :-1].copy()  # src and dst may share a matrix
        view[:, 1:] = tail
        view[:, 0] = _wrap(resolve_scalar(node.scalar), view.dtype)
    elif kind is Kind.COPY:
        view = get(node.dst)
        view[:] = get(node.src)
    elif kind is Kind.INDEX:
        view = get(node.dst)
        view[:] = np.arange(view.shape[1], dtype=np.uint64).astype(view.dtype)
    elif kind is Kind.PACK:
        src = get(node.src)
        keep = get(node.operand) != 0
        fvals[node.future] = pack2d(src, keep, get(node.dst))
        vlmax = m.vlmax(sew=sew_for_dtype(src.dtype), lmul=node.lmul)
        pack_sws.append(pack_strip_survivors(keep, vlmax))
    elif kind is Kind.FREE:
        mats.pop(node.dst, None)
    else:  # pragma: no cover - _batchable() excludes OPAQUE
        raise EngineError(f"cannot batch node kind {kind}")


def _run_bucket_2d(svm, plan: Plan, fused, data, out, rows,
                   ragged: bool = False, out_tag=None):
    """Fast path for one bucket: single-input semantics for row 0 (the
    counter oracle), one 2D NumPy evaluation for the rest.

    Closed-form plans (``ragged=False``) evaluate rows 1+ only and
    charge counters as row 0's delta scaled by the remaining rows. A
    ragged plan (contains pack) evaluates the matrix over *all* rows —
    the masked pack kernel then yields every row's kept count and
    strips-with-survivors in the same pass — and charges rows 1+ as
    the closed-form part of the delta scaled, plus each row's own
    data-dependent pack items, in one ``Counters.add_many`` call.
    Returns ``(outputs, lengths)`` with lengths None for fully-defined
    outputs."""
    m = svm.machine
    b = len(rows)
    b1 = b - 1

    input_bid = _bid_of(plan, data)
    out_bid = _bid_of(plan, out)
    # pre-execution contents of every buffer: temporaries replay from
    # these in rows 1+, exactly as fresh allocations would per loop
    # iteration (captured before row 0 mutates anything)
    init = {
        bid: buf.array.to_numpy()
        for bid, buf in plan.buffers.items()
        if bid != input_bid
    }

    # row 0: the ordinary engine — its counter delta is the per-row
    # closed-form profile of this plan (plus, for ragged plans, row
    # 0's own data-dependent pack items, subtracted again below)
    backend = svm.engine.backend
    before = m.counters.snapshot()
    execute(svm, plan, fused, backend=backend)
    delta = m.counters.snapshot() - before
    outputs = [out.to_numpy()]
    lengths = None

    if b1:
        # native backends fall back to the codegen 2D kernels per unit
        # when the whole plan does not lower (ragged plans never do:
        # pack is excluded from the native kind set)
        native = (native_state(svm, plan, fused)
                  if backend in NATIVE_BACKENDS and not ragged else None)
        compiled = (fused.compiled
                    if backend == "codegen" or backend in NATIVE_BACKENDS
                    else None)
        b_mat = b if ragged else b1
        mats, get = _mat_getter(plan, init, b_mat)
        mats[input_bid] = np.stack(rows if ragged else rows[1:], axis=0)
        fvals: dict = {}  # ScalarFuture -> per-row int64 values
        pack_sws: list[np.ndarray] = []  # per pack node: [b] survivor strips
        if native is not None:
            # whole-bucket compiled call: the C kernel loops rows over
            # the same [b, n] matrices the per-unit path would build
            native.run2d(plan, mats, get, fvals, b_mat)
        else:
            for unit in fused.units:
                if isinstance(unit, GroupSpec):
                    cg = compiled.groups.get(unit) if compiled is not None else None
                    if cg is not None:
                        cg.fn2d(plan.nodes, plan.buffers, mats, get)
                        continue
                    sg = fused.specialized.get(unit) if fused.specialized else None
                    if sg is not None:
                        _group_2d(plan, sg, mats, get)
                    else:  # fused but unspecialized: derive steps via group
                        from ..engine.specialize import specialize_group
                        _group_2d(plan, specialize_group(plan, unit, m), mats, get)
                else:
                    _node_2d(plan, plan.nodes[unit], mats, get, fvals,
                             m=m, pack_sws=pack_sws)
        out_mat = get(out_bid)
        # ragged matrices carry all b rows (row 0 feeds the charge
        # correction); closed-form matrices carry only rows 1+
        outputs.extend(out_mat[i] for i in
                       (range(1, b) if ragged else range(b1)))
        if not ragged:
            for cat, count in delta.by_category.items():
                if count:
                    m.count(cat, count * b1)
        else:
            # exact per-row charge: rows 1+ each owe row 0's delta
            # minus row 0's data-dependent pack items plus their own
            row0_var: dict = {}
            rest_var: dict = {}
            for sws in pack_sws:
                for cat, count in pack_variable_items(sws[0]):
                    row0_var[cat] = row0_var.get(cat, 0) + count
                for cat, count in pack_variable_items(np.sum(sws[1:])):
                    rest_var[cat] = rest_var.get(cat, 0) + count
            items = []
            for cat, count in delta.by_category.items():
                base = count - row0_var.get(cat, 0)
                if base:
                    items.append((cat, base * b1))
            for cat, count in rest_var.items():
                if count:
                    items.append((cat, count))
            m.counters.add_many(items)
            if out_tag is not None:
                kept = fvals[out_tag]
                lengths = [int(out_tag.value)] + [int(v) for v in kept[1:]]
    elif ragged and out_tag is not None:  # pragma: no cover - rows > 1
        lengths = [int(out_tag.value)]

    _release(svm, plan, data.ptr.addr)
    return outputs, lengths


def _run_bucket_loop(svm, pipe, rows, want_lengths: bool = False):
    """Fallback: literally the loop of single-input calls (the
    definitional semantics) — used for opaque plans, strict mode, and
    ragged flows no 2D evaluation can track. When ``want_lengths``,
    each row's defined-prefix length is read off its plan's resolved
    ``pack.kept`` future."""
    outputs = []
    lengths: list | None = [] if want_lengths else None
    for row in rows:
        plan, data, out = _capture(svm, pipe, row)
        svm.engine.run(plan)
        outputs.append(out.to_numpy())
        if want_lengths:
            tag = _out_lengths_future(plan, _bid_of(plan, out))
            lengths.append(int(tag.value) if tag is not None else None)
        _release(svm, plan, data.ptr.addr)
    if want_lengths and all(k is None for k in lengths):
        lengths = None
    return outputs, lengths


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def _dispatch_bucket(svm, pipe, rows):
    """Run one pre-grouped bucket (all rows share (length, dtype));
    returns (outputs in row order, per-row lengths or None, dispatch
    path). The shared body of :func:`run_batch` and
    :func:`run_bucket`.

    Path choice: plans without pack take ``"2d"``; plans with pack
    take ``"ragged"`` when the registry declares the recipe
    (``get_spec("pack").ragged2d``) and every packed buffer stays in
    prefix-local flow; everything else — strict mode, single rows,
    sub-threshold lengths, opaque nodes, untrackable ragged flow —
    takes ``"loop"``."""
    n = rows[0].size
    plan, data, out = _capture(svm, pipe, rows[0])
    fused = svm.engine.fused_for(plan)
    out_bid = _bid_of(plan, out)
    has_pack = any(node.kind is Kind.PACK for node in plan.nodes)
    ragged_ok = False
    out_tag = None
    if has_pack:
        ok, tags = _ragged_tags(plan)
        ragged_ok = ok and get_spec("pack").ragged2d
        out_tag = tags.get(out_bid) if ok else None
    use_mat = (len(rows) > 1 and svm._fast(n) and _batchable(plan, fused)
               and (not has_pack or ragged_ok))
    path = ("ragged" if has_pack else "2d") if use_mat else "loop"
    note_batch_path(path)  # serve telemetry: flush-scoped trace context
    col = getattr(svm.machine, "collector", None)
    ctx = col.span("batch_bucket", rows=len(rows), n=int(n), path=path) \
        if col is not None else nullcontext()
    with ctx:
        if col is not None:
            col.batch_event(len(rows), int(n), path)
        if use_mat:
            outputs, lengths = _run_bucket_2d(
                svm, plan, fused, data, out, rows,
                ragged=has_pack, out_tag=out_tag,
            )
        else:
            # release the probe capture's buffers and replay the
            # definitional loop from scratch for every row
            _release(svm, plan, data.ptr.addr, executed=False)
            outputs, lengths = _run_bucket_loop(
                svm, pipe, rows, want_lengths=has_pack)
    return outputs, lengths, path


def run_bucket(svm, pipe, rows, *, dtype=np.uint32) -> BatchResult:
    """Run ``pipe`` over rows that are *already grouped*: every row
    must share one (length, dtype) pair, so no bucketing pass runs.

    This is the serving daemon's entry point: its coalescer groups
    concurrent requests by (pipeline, n, dtype) up front, so each
    flush maps to exactly one bucket dispatch. Semantics are those of
    :func:`run_batch` restricted to a single bucket — results and
    per-category counters identical to looping single calls.
    """
    arrays = [
        x if isinstance(x, np.ndarray) else np.asarray(x, dtype=dtype)
        for x in rows
    ]
    result = BatchResult()
    if not arrays:
        return result
    n, dt = arrays[0].size, arrays[0].dtype
    for arr in arrays:
        if arr.ndim != 1:
            raise EngineError(f"batch inputs are 1-D, got shape {arr.shape}")
        if arr.size != n or arr.dtype != dt:
            raise EngineError(
                "run_bucket rows must share one (length, dtype): "
                f"expected ({n}, {dt}), got ({arr.size}, {arr.dtype})"
            )
    outputs, lengths, path = _dispatch_bucket(svm, pipe, arrays)
    result.outputs = outputs
    result.lengths = list(lengths) if lengths is not None \
        else [None] * len(outputs)
    result.buckets.append(
        BatchBucket(int(n), np.dtype(dt).name, len(arrays), path,
                    tuple(range(len(arrays))),
                    tuple(lengths) if lengths is not None else None)
    )
    return result


def run_batch(svm, pipe, inputs, *, dtype=np.uint32) -> BatchResult:
    """Run ``pipe`` over every input through one cached plan per
    length bucket.

    ``pipe(lz, data)`` receives a capture proxy and the input
    :class:`~repro.svm.context.SVMArray` and must return its output
    array (returning ``data`` for in-place pipelines is fine). Inputs
    are bucketed by ``(length, dtype)`` — the vl strip sequence, and
    with it the whole instruction profile, depends only on those — and
    each bucket runs the 2D fast path when the captured plan is fully
    closed-form and the fast path applies at its length, else the
    per-row loop. Results and per-category counters are identical to
    looping single calls either way.
    """
    arrays = [
        x if isinstance(x, np.ndarray) else np.asarray(x, dtype=dtype)
        for x in inputs
    ]
    result = BatchResult(outputs=[None] * len(arrays),
                         lengths=[None] * len(arrays))
    if not arrays:
        return result

    buckets: dict[tuple[int, object], list[int]] = {}
    for i, arr in enumerate(arrays):
        if arr.ndim != 1:
            raise EngineError(f"batch inputs are 1-D, got shape {arr.shape}")
        buckets.setdefault((arr.size, arr.dtype), []).append(i)

    for (n, dt), indices in buckets.items():
        rows = [arrays[i] for i in indices]
        outputs, lengths, path = _dispatch_bucket(svm, pipe, rows)
        for j, (i, arr_out) in enumerate(zip(indices, outputs)):
            result.outputs[i] = arr_out
            if lengths is not None:
                result.lengths[i] = lengths[j]
        result.buckets.append(
            BatchBucket(int(n), np.dtype(dt).name, len(rows), path,
                        tuple(indices),
                        tuple(lengths) if lengths is not None else None)
        )
    return result

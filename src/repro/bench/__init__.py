"""Benchmark harness: regenerates every table and figure of the paper.

* :mod:`~repro.bench.paper_data` — the published reference numbers;
* :mod:`~repro.bench.experiments` — one regeneration function per
  table/figure;
* :mod:`~repro.bench.harness` — result structure and comparisons;
* :mod:`~repro.bench.report` — the EXPERIMENTS.md generator
  (``python -m repro.bench.report``).

The pytest-benchmark entry points live in the repository's
``benchmarks/`` directory and call into this package.
"""

from . import paper_data
from .experiments import figure5, headline, table1, table2, table3, table4, table5, table6, table7
from .harness import ExperimentResult, rel_err, speedup

__all__ = [
    "paper_data",
    "table1", "table2", "table3", "table4", "table5", "table6", "table7",
    "figure5", "headline",
    "ExperimentResult", "rel_err", "speedup",
]

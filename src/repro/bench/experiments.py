"""One regeneration function per table and figure in the paper's §6.

Every function builds the workload, runs the measured kernel and its
baseline under the ``paper`` codegen preset at the paper's
configuration (VLEN=1024, LMUL=1 unless the experiment varies them),
and returns an :class:`~repro.bench.harness.ExperimentResult` with the
paper's reference numbers alongside.

Workload data is uniform random ``uint32`` with a fixed seed; every
vector kernel's dynamic count is data-independent (the strict/fast
parity tests prove it), so the seed only matters for the instrumented
qsort baseline, whose count is genuinely data-dependent — as it was on
the authors' testbed.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.radix_sort import split_radix_sort
from ..tune.measure import measure_kernel
from ..rvv.types import LMUL
from ..scalar.kernels import (
    p_add_baseline,
    plus_scan_baseline,
    seg_plus_scan_baseline,
)
from ..scalar.machine import ScalarMachine
from ..scalar.malloc_model import GlibcMallocModel
from ..scalar.qsort import qsort_baseline
from ..svm.context import SVM
from ..utils.formatting import fmt_count, fmt_ratio, render_ascii_chart
from . import paper_data as P
from .harness import ExperimentResult, rel_err, speedup

__all__ = [
    "table1", "table2", "table3", "table4", "table5", "table6", "table7",
    "figure5", "headline", "DEFAULT_SIZES",
]

DEFAULT_SIZES = P.SIZES
_SEED = 20220829  # the workshop's opening day
_FLAG_DENSITY = 0.1


def _pct(e: float | None) -> str:
    return "-" if e is None else f"{e:+.1%}"


# ---------------------------------------------------------------------------
# Table 1 — split radix sort vs qsort
# ---------------------------------------------------------------------------

def table1(sizes=DEFAULT_SIZES) -> ExperimentResult:
    """Spike-style dynamic counts: split radix sort (RVV, Listing 9)
    vs the libc qsort cost model, VLEN=1024 / LMUL=1."""
    rows, checks = [], []
    for n in sizes:
        rng = np.random.default_rng(_SEED)
        data = rng.integers(0, 1 << 32, n, dtype=np.uint32)
        svm = SVM(vlen=1024, codegen="paper", mode="fast",
                  malloc_model=GlibcMallocModel())
        arr = svm.array(data)
        svm.reset()
        split_radix_sort(svm, arr)
        assert np.array_equal(arr.to_numpy(), np.sort(data))
        radix = svm.instructions

        sm = ScalarMachine()
        qsort_baseline(sm, data)
        qsort = sm.total

        ref_r, ref_q = P.TABLE1_RADIX.get(n), P.TABLE1_QSORT.get(n)
        rows.append([
            fmt_count(n), fmt_count(radix), fmt_count(ref_r), _pct(rel_err(radix, ref_r)),
            fmt_count(qsort), fmt_count(ref_q), _pct(rel_err(qsort, ref_q)),
            fmt_ratio(speedup(qsort, radix)),
            fmt_ratio(ref_q / ref_r if ref_r else None),
        ])
        if ref_r:
            checks.append((f"radix n={n}", radix, ref_r))
        if ref_q:
            checks.append((f"qsort n={n}", qsort, ref_q))
    return ExperimentResult(
        "Table 1", "split_radix_sort() vs qsort(), dynamic instruction count",
        ["N", "radix", "radix(paper)", "err", "qsort", "qsort(paper)", "err",
         "speedup", "speedup(paper)"],
        rows,
        notes=[
            "qsort cost model fitted to the paper's baseline column"
            " (tools/fit_qsort.py); per-row residuals < 7%.",
            "the per-element jump at N>=1e5 is the malloc mmap threshold"
            " (GlibcMallocModel), reproducing the paper's anomaly.",
        ],
        checks=checks,
    )


# ---------------------------------------------------------------------------
# Tables 2-4 — primitives vs sequential baselines
# ---------------------------------------------------------------------------

def _primitive_table(exp_id: str, title: str, kernel: str, baseline_fn,
                     ref_vec: dict, ref_base: dict, sizes) -> ExperimentResult:
    rows, checks = [], []
    for n in sizes:
        point = measure_kernel(kernel, n, vlen=1024, lmul=LMUL.M1,
                               codegen="paper", seed=_SEED)
        vec = point.instructions

        rng = np.random.default_rng(_SEED)
        data = rng.integers(0, 1 << 16, n, dtype=np.uint32)
        sm = ScalarMachine()
        if kernel == "seg_plus_scan":
            flags = (rng.random(n) < _FLAG_DENSITY).astype(np.uint32)
            baseline_fn(sm, data, flags)
        elif kernel == "p_add":
            baseline_fn(sm, data, 12345)
        else:
            baseline_fn(sm, data)
        base = sm.total

        rv, rb = ref_vec.get(n), ref_base.get(n)
        rows.append([
            fmt_count(n), fmt_count(vec), fmt_count(rv), _pct(rel_err(vec, rv)),
            fmt_count(base), fmt_count(rb), _pct(rel_err(base, rb)),
            fmt_ratio(speedup(base, vec)),
            fmt_ratio(rb / rv if rv and rb else None),
        ])
        if rv:
            checks.append((f"{kernel} n={n}", vec, rv))
        if rb:
            checks.append((f"{kernel}-baseline n={n}", base, rb))
    return ExperimentResult(
        exp_id, title,
        ["N", "vector", "vector(paper)", "err", "baseline", "baseline(paper)",
         "err", "speedup", "speedup(paper)"],
        rows, checks=checks,
    )


def table2(sizes=DEFAULT_SIZES) -> ExperimentResult:
    """p_add (Listing 4) vs the sequential elementwise-add baseline."""
    res = _primitive_table(
        "Table 2", "p_add() vs sequential baseline", "p_add",
        p_add_baseline, P.TABLE2_PADD, P.TABLE2_PADD_BASE, sizes,
    )
    res.notes.append(
        "paper's N=1e2 rows (66 vector / 632 baseline) sit ~30 above the"
        " models that fit every other row exactly; recorded as a source-"
        "data anomaly in EXPERIMENTS.md."
    )
    # exclude the anomalous N=100 rows from the tolerance assertions
    res.checks = [c for c in res.checks if "n=100" not in c[0]]
    return res


def table3(sizes=DEFAULT_SIZES) -> ExperimentResult:
    """Unsegmented plus-scan (Listing 6) vs the sequential scan."""
    return _primitive_table(
        "Table 3", "plus_scan() vs sequential baseline", "plus_scan",
        plus_scan_baseline, P.TABLE3_SCAN, P.TABLE3_SCAN_BASE, sizes,
    )


def table4(sizes=DEFAULT_SIZES) -> ExperimentResult:
    """Segmented plus-scan (Listing 10) vs the sequential segmented scan."""
    return _primitive_table(
        "Table 4", "seg_plus_scan() vs sequential baseline", "seg_plus_scan",
        seg_plus_scan_baseline, P.TABLE4_SEG, P.TABLE4_SEG_BASE, sizes,
    )


# ---------------------------------------------------------------------------
# Tables 5-6 — LMUL study
# ---------------------------------------------------------------------------

def table5(sizes=DEFAULT_SIZES) -> ExperimentResult:
    """Segmented plus-scan dynamic count across LMUL in {1, 2, 4, 8}."""
    rows, checks = [], []
    measured: dict[int, dict[int, int]] = {}
    for n in sizes:
        row = [fmt_count(n)]
        for lm in (1, 2, 4, 8):
            c = measure_kernel("seg_plus_scan", n, 1024, LMUL(lm),
                               codegen="paper", seed=_SEED).instructions
            measured.setdefault(lm, {})[n] = c
            ref = P.TABLE5_SEG_LMUL[lm].get(n)
            row.extend([fmt_count(c), fmt_count(ref)])
            if ref and lm != 2:  # LMUL=2 reference column is corrupt (see note)
                checks.append((f"lmul={lm} n={n}", c, ref))
        rows.append(row)
    res = ExperimentResult(
        "Table 5", "seg_plus_scan() dynamic count across LMUL",
        ["N",
         "LMUL1", "paper", "LMUL2", "paper", "LMUL4", "paper", "LMUL8", "paper"],
        rows,
        notes=[
            "the paper's LMUL=2 column duplicates Table 4's baseline column"
            " and contradicts Table 6's ratios; our LMUL=2 values match the"
            " Table 6-implied counts (22 + 12*lg(64) = 94 per strip).",
            "LMUL=8 spills 4 of the kernel's 7 live values (3 usable groups)"
            " — the modeled cause of the small-N slowdown.",
        ],
        checks=checks,
    )
    res.measured = measured  # stashed for table6
    return res


def table6(sizes=DEFAULT_SIZES) -> ExperimentResult:
    """(speedup over LMUL=1) / LMUL — the declining-returns ratio."""
    t5 = table5(sizes)
    measured = t5.measured
    rows, checks = [], []
    for n in sizes:
        row = [fmt_count(n)]
        for lm in (2, 4, 8):
            ratio = (measured[1][n] / measured[lm][n]) / lm
            ref = P.TABLE6_RATIO[lm].get(n)
            row.extend([fmt_ratio(ratio, 4), fmt_ratio(ref, 4)])
            if ref:
                checks.append((f"ratio lmul={lm} n={n}", ratio, ref))
        rows.append(row)
    return ExperimentResult(
        "Table 6", "(speedup to LMUL=1) / LMUL for seg_plus_scan()",
        ["N", "LMUL2", "paper", "LMUL4", "paper", "LMUL8", "paper"],
        rows,
        notes=["ratios < 1 shrink as LMUL grows: register pressure eats the"
               " wider groups' strip savings (§6.3)."],
        checks=checks,
    )


# ---------------------------------------------------------------------------
# Table 7 + Figure 5 — VLEN scalability
# ---------------------------------------------------------------------------

def table7(n: int = 10**4) -> ExperimentResult:
    """Dynamic counts of seg_plus_scan and p_add across VLEN."""
    rows, checks = [], []
    for vlen in P.TABLE7_VLENS:
        seg = measure_kernel("seg_plus_scan", n, vlen, codegen="paper",
                             seed=_SEED).instructions
        padd = measure_kernel("p_add", n, vlen, codegen="paper",
                              seed=_SEED).instructions
        ref_s, ref_p = P.TABLE7_SEG.get(vlen), P.TABLE7_PADD.get(vlen)
        rows.append([vlen, fmt_count(seg), fmt_count(ref_s), _pct(rel_err(seg, ref_s)),
                     fmt_count(padd), fmt_count(ref_p), _pct(rel_err(padd, ref_p))])
        if ref_s:
            checks.append((f"seg vlen={vlen}", seg, ref_s))
        if ref_p:
            checks.append((f"p_add vlen={vlen}", padd, ref_p))
    return ExperimentResult(
        "Table 7", f"instruction count over VLEN (N={n})",
        ["vlen", "seg scan", "paper", "err", "p_add", "paper", "err"],
        rows,
        notes=["the paper's Table 7 p_add column sits a constant +25 above"
               " its own Table 2 at the shared configuration; our counts"
               " match Table 2 and run ~-0.9% of Table 7."],
        checks=checks,
    )


def figure5(n: int = 10**4) -> ExperimentResult:
    """Speedup relative to VLEN=128: ideal-linear for p_add, sublinear
    for segmented scan (the scan's lg(vl) in-register steps grow with
    the register)."""
    seg, padd = {}, {}
    for vlen in P.TABLE7_VLENS:
        seg[vlen] = measure_kernel("seg_plus_scan", n, vlen, codegen="paper",
                                   seed=_SEED).instructions
        padd[vlen] = measure_kernel("p_add", n, vlen, codegen="paper",
                                    seed=_SEED).instructions
    rows, checks = [], []
    series = {"p_add": [], "seg scan": [], "ideal": []}
    for vlen in P.TABLE7_VLENS:
        s_seg = seg[128] / seg[vlen]
        s_padd = padd[128] / padd[vlen]
        ref_seg = P.FIGURE5_SEG_SPEEDUP[vlen]
        ref_padd = P.FIGURE5_PADD_SPEEDUP[vlen]
        rows.append([vlen, fmt_ratio(s_padd), fmt_ratio(ref_padd),
                     fmt_ratio(s_seg), fmt_ratio(ref_seg),
                     fmt_ratio(vlen / 128)])
        checks.append((f"seg speedup vlen={vlen}", s_seg, ref_seg))
        checks.append((f"p_add speedup vlen={vlen}", s_padd, ref_padd))
        series["p_add"].append((vlen, s_padd))
        series["seg scan"].append((vlen, s_seg))
        series["ideal"].append((vlen, vlen / 128))
    chart = render_ascii_chart(series, title="Figure 5: speedup vs vlen=128",
                               x_label="VLEN (bits)", y_label="speedup")
    return ExperimentResult(
        "Figure 5", "speedup compared to vlen=128 over different vlen",
        ["vlen", "p_add", "paper", "seg scan", "paper", "ideal"],
        rows,
        notes=["p_add tracks the ideal vlen/128 line; segmented scan"
               " saturates near 4.5x at VLEN=1024 (the paper quotes 4.65x"
               " in prose; its own Table 7 gives 4.48x)."],
        chart=chart,
        checks=checks,
    )


# ---------------------------------------------------------------------------
# Headline — the abstract's four speedups
# ---------------------------------------------------------------------------

def headline(n: int = 10**6) -> ExperimentResult:
    """The abstract's speedups at N=10^6: scan and segmented scan at
    LMUL=1, and with the best LMUL (8 at this N)."""
    scan1 = measure_kernel("plus_scan", n, 1024, LMUL.M1, "paper", _SEED).instructions
    seg1 = measure_kernel("seg_plus_scan", n, 1024, LMUL.M1, "paper", _SEED).instructions
    scan8 = measure_kernel("plus_scan", n, 1024, LMUL.M8, "paper", _SEED).instructions
    seg8 = measure_kernel("seg_plus_scan", n, 1024, LMUL.M8, "paper", _SEED).instructions
    scan_base = 6 * n + 26
    seg_base = 11 * n + 24
    rows = [
        ["scan, LMUL=1", fmt_ratio(scan_base / scan1), P.HEADLINE["scan_lmul1"],
         "abstract says 2.85; the paper's own Table 3 gives 2.29"],
        ["seg scan, LMUL=1", fmt_ratio(seg_base / seg1), P.HEADLINE["seg_scan_lmul1"], ""],
        ["scan, best LMUL", fmt_ratio(scan_base / scan8), P.HEADLINE["scan_lmul_tuned"],
         "no per-N table backs 21.93x; see EXPERIMENTS.md discussion"],
        ["seg scan, best LMUL", fmt_ratio(seg_base / seg8),
         P.HEADLINE["seg_scan_lmul_tuned"], ""],
    ]
    return ExperimentResult(
        "Headline", f"abstract speedups at N={n}",
        ["configuration", "speedup (ours)", "paper", "remark"],
        rows,
        checks=[
            ("seg scan lmul1", seg_base / seg1, P.HEADLINE["seg_scan_lmul1"]),
            ("seg scan tuned", seg_base / seg8, P.HEADLINE["seg_scan_lmul_tuned"]),
        ],
    )

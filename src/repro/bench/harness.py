"""Experiment result structure and comparison helpers.

Every experiment function in :mod:`repro.bench.experiments` returns an
:class:`ExperimentResult`: the regenerated rows, the paper's reference
values, relative errors, and free-form notes (including the documented
inconsistencies of the source tables). ``render()`` produces the
monospace table printed by the benches and embedded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..utils.formatting import render_table

__all__ = ["ExperimentResult", "rel_err", "speedup"]


def rel_err(measured, reference) -> float | None:
    """Relative error of measured vs the paper's reference (None if no
    reference exists)."""
    if reference is None or measured is None:
        return None
    if reference == 0:
        return None
    return (measured - reference) / reference


def speedup(baseline, ours) -> float | None:
    """Dynamic-count speedup (baseline / ours) — the paper's metric."""
    if not ours:
        return None
    return baseline / ours


@dataclass
class ExperimentResult:
    """One regenerated table or figure."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: list[str] = field(default_factory=list)
    #: Optional pre-rendered chart (Figure 5) appended after the table.
    chart: str | None = None
    #: (label, measured, reference) triples used by assertions.
    checks: list[tuple[str, float, float]] = field(default_factory=list)

    def render(self) -> str:
        parts = [render_table(self.headers, self.rows, title=f"{self.exp_id}: {self.title}")]
        if self.chart:
            parts.append(self.chart)
        for note in self.notes:
            parts.append(f"  note: {note}")
        return "\n".join(parts)

    def max_abs_rel_err(self) -> float:
        """Largest |relative error| across the registered checks."""
        worst = 0.0
        for _, measured, reference in self.checks:
            e = rel_err(measured, reference)
            if e is not None:
                worst = max(worst, abs(e))
        return worst

    def check_within(self, tolerance: float) -> None:
        """Assert every registered check lands within ``tolerance``
        relative error of the paper's value."""
        failures = [
            (label, measured, reference, rel_err(measured, reference))
            for label, measured, reference in self.checks
            if (e := rel_err(measured, reference)) is not None and abs(e) > tolerance
        ]
        if failures:
            detail = "; ".join(
                f"{label}: measured={measured} paper={reference} err={err:+.1%}"
                for label, measured, reference, err in failures
            )
            raise AssertionError(f"{self.exp_id} outside {tolerance:.0%}: {detail}")

"""Every number the paper reports, transcribed for side-by-side
comparison in the bench harness and EXPERIMENTS.md.

Source: Lai & Lee, ICPP Workshops '22, §6 (Tables 1-7, Figure 5, and
the abstract's headline speedups). Values flagged in DESIGN.md as
internally inconsistent are kept verbatim here and annotated where
consumed.
"""

from __future__ import annotations

__all__ = [
    "SIZES",
    "TABLE1_RADIX", "TABLE1_QSORT",
    "TABLE2_PADD", "TABLE2_PADD_BASE",
    "TABLE3_SCAN", "TABLE3_SCAN_BASE",
    "TABLE4_SEG", "TABLE4_SEG_BASE",
    "TABLE5_SEG_LMUL", "TABLE6_RATIO",
    "TABLE7_VLENS", "TABLE7_SEG", "TABLE7_PADD",
    "FIGURE5_SEG_SPEEDUP", "FIGURE5_PADD_SPEEDUP",
    "HEADLINE",
]

#: The N axis shared by Tables 1-6.
SIZES = (10**2, 10**3, 10**4, 10**5, 10**6)

# --- Table 1: split radix sort vs qsort (dynamic instruction counts) -----
TABLE1_RADIX = {100: 23988, 10**3: 94842, 10**4: 803690,
                10**5: 19603490, 10**6: 195102988}
TABLE1_QSORT = {100: 17158, 10**3: 277480, 10**4: 3470344,
                10**5: 43004753, 10**6: 511107188}

# --- Table 2: p_add vs sequential baseline ---------------------------------
TABLE2_PADD = {100: 66, 10**3: 297, 10**4: 2826, 10**5: 28134, 10**6: 281259}
TABLE2_PADD_BASE = {100: 632, 10**3: 6002, 10**4: 60001,
                    10**5: 600001, 10**6: 6000001}

# --- Table 3: unsegmented plus-scan vs baseline ------------------------------
TABLE3_SCAN = {100: 311, 10**3: 2670, 10**4: 26281, 10**5: 262531, 10**6: 2625031}
TABLE3_SCAN_BASE = {100: 626, 10**3: 6026, 10**4: 60026,
                    10**5: 600026, 10**6: 6000026}

# --- Table 4: segmented plus-scan vs baseline ---------------------------------
TABLE4_SEG = {100: 331, 10**3: 2639, 10**4: 25693, 10**5: 256289, 10**6: 2562539}
TABLE4_SEG_BASE = {100: 1124, 10**3: 11024, 10**4: 110024,
                   10**5: 1100024, 10**6: 11000024}

# --- Table 5: segmented plus-scan across LMUL --------------------------------
#: NOTE: the printed LMUL=2 column duplicates Table 4's *baseline*
#: column and contradicts Table 6's ratios (see DESIGN.md §4); it is
#: kept verbatim and flagged wherever rendered.
TABLE5_SEG_LMUL = {
    1: TABLE4_SEG,
    2: {100: 1124, 10**3: 11024, 10**4: 110024, 10**5: 1100024, 10**6: 11000024},
    4: {100: 145, 10**3: 887, 10**4: 8377, 10**5: 82907, 10**6: 828205},
    8: {100: 2090, 10**3: 2668, 10**4: 9284, 10**5: 74650, 10**6: 728586},
}

# --- Table 6: (speedup over LMUL=1) / LMUL -----------------------------------
TABLE6_RATIO = {
    2: {100: 0.7290748899, 10**3: 0.8551523007, 10**4: 0.8695931767,
        10**5: 0.8720338349, 10**6: 0.872330539},
    4: {100: 0.5706896552, 10**3: 0.7437993236, 10**4: 0.7667721141,
        10**5: 0.772820751, 10**6: 0.7735219541},
    8: {100: 0.01979665072, 10**3: 0.1236413043, 10**4: 0.3459311719,
        10**5: 0.4291510382, 10**6: 0.4396425062},
}

# --- Table 7: counts over VLEN at N = 10^4 --------------------------------------
TABLE7_VLENS = (128, 256, 512, 1024)
TABLE7_SEG = {128: 115039, 256: 72539, 512: 43789, 1024: 25693}
TABLE7_PADD = {128: 22534, 256: 11284, 512: 5659, 1024: 2851}

# --- Figure 5: speedup vs VLEN=128 (derived from Table 7) ------------------------
FIGURE5_SEG_SPEEDUP = {v: TABLE7_SEG[128] / TABLE7_SEG[v] for v in TABLE7_VLENS}
FIGURE5_PADD_SPEEDUP = {v: TABLE7_PADD[128] / TABLE7_PADD[v] for v in TABLE7_VLENS}

# --- Abstract headline speedups ------------------------------------------------------
HEADLINE = {
    # (claimed, where-it-comes-from)
    "scan_lmul1": 2.85,        # Table 3's N=10^6 actually gives 2.29
    "seg_scan_lmul1": 4.29,    # consistent with Table 4 at N=10^6
    "scan_lmul_tuned": 21.93,  # no per-N table exists for this claim
    "seg_scan_lmul_tuned": 15.09,  # consistent with Table 5 LMUL=8 at 10^6
}

"""EXPERIMENTS.md generator: runs every experiment and renders the
paper-vs-measured record.

Usage::

    python -m repro.bench.report            # writes EXPERIMENTS.md
    python -m repro.bench.report --stdout   # prints instead
"""

from __future__ import annotations

import sys
import time

from . import experiments as E

__all__ = ["generate_report"]

_PREAMBLE = """\
# EXPERIMENTS — paper vs. measured

Reproduction record for every table and figure in *Efficient Support of
the Scan Vector Model for RISC-V Vector Extension* (Lai & Lee, ICPP
Workshops '22). All measurements below were produced by this
repository's bench harness (`python -m repro.bench.report`), running
the strict-validated fast path under the `paper` codegen preset at the
paper's configuration (Spike-style dynamic instruction counts,
VLEN=1024 / LMUL=1 / SEW=32 unless the experiment varies them).

How to read the tables: each experiment prints our measured count, the
paper's published value, and the relative error. The calibration that
makes the counts comparable is derived in
`src/repro/rvv/calibration.py`; the substitutions (RVV simulator for
hardware, cost models for LLVM/Spike/glibc) are argued in DESIGN.md §2.

## Summary of reproduction quality

| Experiment | Worst relative error | Status |
|---|---|---|
{summary_rows}

## Known inconsistencies in the source tables

1. **Table 2 / Table 7 (p_add)**: the two tables disagree by a constant
   +25 at the shared configuration (N=10^4, VLEN=1024), and Table 2's
   N=10^2 row (66) sits ~30 above the 9-per-strip model that fits every
   other row exactly. We match Table 2's N>=10^3 rows exactly.
2. **Table 3 vs the abstract**: the abstract claims 2.85x for
   unsegmented scan; Table 3's own data gives 2.29x at N=10^6. We
   reproduce Table 3.
3. **Table 5, LMUL=2 column**: duplicates Table 4's *baseline* column
   (1124/11024/...) and contradicts Table 6, whose LMUL=2 ratios imply
   ~94 instructions per strip. We reproduce the Table 6-consistent
   values and compare our LMUL=2 column against those.
4. **Abstract's 21.93x scan-with-LMUL claim**: no per-N table backs it;
   it implies a per-strip cost at LMUL=8 *below* the LMUL=1 cost of the
   same kernel, which no uniform codegen model can produce alongside
   Table 3. Our register-pressure model yields {scan_tuned:.1f}x for the
   LMUL-tuned unsegmented scan — a large gain over 2.29x, but short of
   21.93x; the segmented counterpart (15.09x) reproduces to {seg_tuned:.2f}x.
5. **Figure 2's caption** ("elements with bit value 1 move left")
   contradicts Listings 7-8 and Figure 3; the listings' 0-first order
   (the correct ascending radix sort) is implemented.

---

"""


def generate_report(sizes=E.DEFAULT_SIZES) -> str:
    """Run all experiments and return the EXPERIMENTS.md body."""
    t0 = time.time()
    results = [
        E.table1(sizes),
        E.table2(sizes),
        E.table3(sizes),
        E.table4(sizes),
        E.table5(sizes),
        E.table6(sizes),
        E.table7(),
        E.figure5(),
        E.headline(),
    ]
    summary_rows = "\n".join(
        f"| {r.exp_id} | {r.max_abs_rel_err():.2%} | "
        f"{'exact/near-exact' if r.max_abs_rel_err() < 0.005 else 'shape + magnitude' if r.max_abs_rel_err() < 0.10 else 'shape'} |"
        for r in results
    )
    headline_res = results[-1]
    scan_tuned = float(headline_res.rows[2][1])
    seg_tuned = float(headline_res.rows[3][1])
    body = [_PREAMBLE.format(summary_rows=summary_rows, scan_tuned=scan_tuned,
                             seg_tuned=seg_tuned)]
    for r in results:
        body.append("```")
        body.append(r.render())
        body.append("```")
        body.append("")
    body.append(f"_Generated in {time.time() - t0:.1f}s by `python -m repro.bench.report`._")
    return "\n".join(body)


def main(argv: list[str]) -> int:
    text = generate_report()
    if "--stdout" in argv:
        print(text)
    else:
        with open("EXPERIMENTS.md", "w") as fh:
            fh.write(text + "\n")
        print(f"wrote EXPERIMENTS.md ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main(sys.argv[1:]))

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``report``
    Regenerate every table/figure and write (or print) EXPERIMENTS.md.
``table <1-7|fig5|headline>``
    Regenerate one experiment and print it.
``sweep --kernel K [--vlen V] [--lmul L ...] [--sizes N ...]``
    Measure a kernel over an LMUL/size grid.
``advise --kernel K --n N [--vlen V]``
    Run the LMUL advisor (§6.3) for a workload size.
``sort --n N [--algo radix|quicksort] [--vlen V]``
    Sort random keys on the simulated machine and report the dynamic
    instruction count (and the qsort baseline for comparison).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]


def _cmd_report(args: argparse.Namespace) -> int:
    from .bench import report

    return report.main(["--stdout"] if args.stdout else [])


def _cmd_table(args: argparse.Namespace) -> int:
    from .bench import experiments as E

    table_fns = {
        "1": E.table1, "2": E.table2, "3": E.table3, "4": E.table4,
        "5": E.table5, "6": E.table6, "7": lambda: E.table7(),
        "fig5": lambda: E.figure5(), "headline": lambda: E.headline(),
    }
    try:
        fn = table_fns[args.which]
    except KeyError:
        print(f"unknown experiment {args.which!r}; choose from {sorted(table_fns)}",
              file=sys.stderr)
        return 2
    print(fn().render())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .lmul import sweep_lmul
    from .rvv.types import LMUL
    from .utils.formatting import render_table

    lmuls = tuple(LMUL(x) for x in args.lmul)
    points = sweep_lmul(args.kernel, sizes=args.sizes, vlen=args.vlen, lmuls=lmuls)
    by_n: dict[int, dict[int, int]] = {}
    for p in points:
        by_n.setdefault(p.n, {})[int(p.lmul)] = p.instructions
    rows = [
        [f"{n:,}"] + [f"{by_n[n][int(lm)]:,}" for lm in lmuls]
        for n in args.sizes
    ]
    print(render_table(
        ["N"] + [f"LMUL={int(lm)}" for lm in lmuls], rows,
        title=f"{args.kernel} dynamic instruction count (VLEN={args.vlen})",
    ))
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from .lmul import choose_lmul, predict_scan_count
    from .rvv.types import LMUL

    for lm in (1, 2, 4, 8):
        pred = predict_scan_count(args.kernel, args.n, args.vlen, LMUL(lm))
        spill = f"  (spills: {', '.join(pred.spilled_values)})" if pred.has_spills else ""
        print(f"LMUL={lm}: {pred.count:>12,} instructions{spill}")
    best = choose_lmul(args.kernel, args.n, args.vlen)
    print(f"-> choose LMUL={int(best.lmul)} "
          f"({best.count:,} predicted dynamic instructions)")
    return 0


def _cmd_sort(args: argparse.Namespace) -> int:
    from .algorithms import flat_quicksort, split_radix_sort
    from .scalar import GlibcMallocModel, ScalarMachine, qsort_baseline
    from .svm.context import SVM

    rng = np.random.default_rng(args.seed)
    keys = rng.integers(0, 2**32, args.n, dtype=np.uint32)
    svm = SVM(vlen=args.vlen, codegen="paper",
              malloc_model=GlibcMallocModel())
    arr = svm.array(keys)
    svm.reset()
    if args.algo == "radix":
        split_radix_sort(svm, arr)
    else:
        flat_quicksort(svm, arr, shuffle=True, rng=rng)
    if not np.array_equal(arr.to_numpy(), np.sort(keys)):
        print("sort FAILED verification", file=sys.stderr)
        return 1
    sm = ScalarMachine()
    qsort_baseline(sm, keys)
    print(f"{args.algo:>9}: {svm.instructions:>12,} dynamic instructions")
    print(f"    qsort: {sm.total:>12,} dynamic instructions "
          f"(speedup {sm.total / svm.instructions:.2f}x)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scan vector model for RVV — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p.add_argument("--stdout", action="store_true", help="print instead of writing")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("table", help="regenerate one experiment")
    p.add_argument("which", help="1-7, fig5, or headline")
    p.set_defaults(fn=_cmd_table)

    p = sub.add_parser("sweep", help="measure a kernel over an LMUL/size grid")
    p.add_argument("--kernel", default="seg_plus_scan",
                   choices=["p_add", "plus_scan", "seg_plus_scan"])
    p.add_argument("--vlen", type=int, default=1024)
    p.add_argument("--lmul", type=int, nargs="+", default=[1, 2, 4, 8])
    p.add_argument("--sizes", type=int, nargs="+",
                   default=[100, 1000, 10000, 100000])
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser("advise", help="run the LMUL advisor (§6.3)")
    p.add_argument("--kernel", default="seg_plus_scan",
                   choices=["plus_scan", "seg_plus_scan"])
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--vlen", type=int, default=1024)
    p.set_defaults(fn=_cmd_advise)

    p = sub.add_parser("sort", help="sort random keys on the simulator")
    p.add_argument("--n", type=int, default=10000)
    p.add_argument("--algo", choices=["radix", "quicksort"], default="radix")
    p.add_argument("--vlen", type=int, default=1024)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_sort)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)

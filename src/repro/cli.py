"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``report``
    Regenerate every table/figure and write (or print) EXPERIMENTS.md.
``table <1-7|fig5|headline>``
    Regenerate one experiment and print it.
``sweep --kernel K [--vlen V] [--lmul L ...] [--sizes N ...]``
    Measure a kernel over an LMUL/size grid.
``advise --kernel K --n N [--vlen V]``
    Run the LMUL advisor (§6.3) for a workload size.
``sort --n N [--algo radix|quicksort] [--vlen V]``
    Sort random keys on the simulated machine and report the dynamic
    instruction count (and the qsort baseline for comparison).
``fuse [--pipeline P] [--n N] [--vlen V] [--lmul L] [--codegen C]
[--backend B]``
    Capture a pipeline with the lazy engine, dump the plan before and
    after fusion, and report the measured per-category counter savings
    of fused vs eager execution (plus plan-cache statistics).
``profile --algo sort|filter|scan [--format tree|json|chrome-trace]``
    Run a workload with profiling spans enabled and print (or write)
    the hierarchical profile: tree report with per-category breakdown,
    JSON, or a Chrome-trace file loadable in Perfetto / about:tracing.
``bench [--suite fusion|batch|codegen|all] [--jobs N] [--out F]``
    Run the deterministic benchmark grids (optionally over worker
    processes) and, with ``--out``, write the merged grid as JSON.
``ops [--json]``
    Print the unified OpSpec registry as a per-primitive tier-support
    matrix (strict / fast / fusion / codegen / batch-2D); ``--json``
    emits the machine-readable form for tooling.
``cache stats|clear|prune [--dir D]``
    Inspect, clear, or prune the persistent plan cache and tuning DB
    (``REPRO_CACHE_DIR``).
``tune sweep|show|clear [--dir D] ...``
    Drive the shape→config auto-tuner: ``sweep`` measures a
    pipeline × size × config grid and fits/persists the policy,
    ``show`` prints it, ``clear`` deletes it. Consult the fitted
    policy with ``SVM(tune="auto")`` or ``repro serve --tune auto``
    (see ``docs/tuning.md``).
``serve [--port P | --unix PATH] [--flush-ms F] [--max-rows M] ...``
    Run the plan-serving daemon: coalesce concurrent NDJSON requests
    into 2D batch evaluations on a deadline window (see
    ``docs/serving.md``). ``--stats-json PATH`` writes the final
    serving statistics on shutdown.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]


def _cmd_report(args: argparse.Namespace) -> int:
    from .bench import report

    return report.main(["--stdout"] if args.stdout else [])


def _cmd_table(args: argparse.Namespace) -> int:
    from .bench import experiments as E

    table_fns = {
        "1": E.table1, "2": E.table2, "3": E.table3, "4": E.table4,
        "5": E.table5, "6": E.table6, "7": lambda: E.table7(),
        "fig5": lambda: E.figure5(), "headline": lambda: E.headline(),
    }
    try:
        fn = table_fns[args.which]
    except KeyError:
        print(f"unknown experiment {args.which!r}; choose from {sorted(table_fns)}",
              file=sys.stderr)
        return 2
    print(fn().render())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .tune import sweep_lmul
    from .rvv.types import LMUL
    from .utils.formatting import render_table

    lmuls = tuple(LMUL(x) for x in args.lmul)
    points = sweep_lmul(args.kernel, sizes=args.sizes, vlen=args.vlen, lmuls=lmuls)
    by_n: dict[int, dict[int, int]] = {}
    for p in points:
        by_n.setdefault(p.n, {})[int(p.lmul)] = p.instructions
    rows = [
        [f"{n:,}"] + [f"{by_n[n][int(lm)]:,}" for lm in lmuls]
        for n in args.sizes
    ]
    print(render_table(
        ["N"] + [f"LMUL={int(lm)}" for lm in lmuls], rows,
        title=f"{args.kernel} dynamic instruction count (VLEN={args.vlen})",
    ))
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from .tune import choose_lmul, predict_scan_count
    from .rvv.types import LMUL

    for lm in (1, 2, 4, 8):
        pred = predict_scan_count(args.kernel, args.n, args.vlen, LMUL(lm))
        spill = f"  (spills: {', '.join(pred.spilled_values)})" if pred.has_spills else ""
        print(f"LMUL={lm}: {pred.count:>12,} instructions{spill}")
    best = choose_lmul(args.kernel, args.n, args.vlen)
    print(f"-> choose LMUL={int(best.lmul)} "
          f"({best.count:,} predicted dynamic instructions)")
    return 0


def _cmd_sort(args: argparse.Namespace) -> int:
    from .algorithms import flat_quicksort, split_radix_sort
    from .scalar import GlibcMallocModel, ScalarMachine, qsort_baseline
    from .svm.context import SVM

    rng = np.random.default_rng(args.seed)
    keys = rng.integers(0, 2**32, args.n, dtype=np.uint32)
    svm = SVM(vlen=args.vlen, codegen="paper",
              malloc_model=GlibcMallocModel())
    arr = svm.array(keys)
    svm.reset()
    if args.algo == "radix":
        split_radix_sort(svm, arr)
    else:
        flat_quicksort(svm, arr, shuffle=True, rng=rng)
    if not np.array_equal(arr.to_numpy(), np.sort(keys)):
        print("sort FAILED verification", file=sys.stderr)
        return 1
    sm = ScalarMachine()
    qsort_baseline(sm, keys)
    print(f"{args.algo:>9}: {svm.instructions:>12,} dynamic instructions")
    print(f"    qsort: {sm.total:>12,} dynamic instructions "
          f"(speedup {sm.total / svm.instructions:.2f}x)")
    return 0


def _pipe_chain_scan(lz, data, lmul):
    lz.p_add(data, 10, lmul=lmul)
    lz.p_mul(data, 3, lmul=lmul)
    lz.p_xor(data, 5, lmul=lmul)
    lz.plus_scan(data, lmul=lmul)
    return data


def _pipe_elementwise(lz, data, lmul):
    lz.p_add(data, 1, lmul=lmul)
    lz.p_sll(data, 1, lmul=lmul)
    lz.p_or(data, 1, lmul=lmul)
    return data


def _pipe_filter(lz, data, lmul):
    lt_hi = lz.p_lt(data, 3 * 2**14, lmul=lmul)
    ge_lo = lz.p_ge(data, 2**14, lmul=lmul)
    lz.p_mul(ge_lo, lt_hi, lmul=lmul)
    out, _kept = lz.pack(data, ge_lo, lmul=lmul)
    lz.free(ge_lo)
    lz.free(lt_hi)
    return out


_FUSE_PIPELINES = {
    "chain-scan": _pipe_chain_scan,
    "elementwise": _pipe_elementwise,
    "filter": _pipe_filter,
}


def _cmd_fuse(args: argparse.Namespace) -> int:
    from .rvv.counters import Cat
    from .rvv.types import LMUL
    from .svm.context import SVM
    from .utils.formatting import render_table

    pipeline = _FUSE_PIPELINES[args.pipeline]
    lmul = LMUL(args.lmul)

    def run(fuse: bool):
        svm = SVM(vlen=args.vlen, codegen=args.codegen, backend=args.backend)

        def once():
            rng = np.random.default_rng(args.seed)
            data = svm.array(rng.integers(0, 2**16, args.n, dtype=np.uint32))
            svm.reset()
            with svm.lazy(fuse=fuse) as lz:
                result = pipeline(lz, data, lmul)
            return svm.machine.counters.snapshot(), result.to_numpy(), lz

        if fuse:
            once()  # warm the plan cache; the measured run below hits it
        snap, out, lz = once()
        return snap, out, lz, svm.engine.cache

    eager, ref, _, _ = run(False)
    fused, got, lz, cache = run(True)

    print(lz.plan.describe())
    print()
    print(lz.fused.describe(lz.plan))
    print()

    rows = []
    for cat in Cat:
        e, f = eager.by_category.get(cat, 0), fused.by_category.get(cat, 0)
        if e or f:
            rows.append([cat.value, f"{e:,}", f"{f:,}", f"{e - f:+,}"])
    rows.append(["total", f"{eager.total:,}", f"{fused.total:,}",
                 f"{eager.total - fused.total:+,}"])
    print(render_table(
        ["category", "eager", "fused", "saved"], rows,
        title=(f"{args.pipeline}: dynamic instructions, n={args.n:,} "
               f"VLEN={args.vlen} LMUL={args.lmul} ({args.codegen})"),
    ))
    if not np.array_equal(ref, got):
        print("fused result differs from eager (BUG)", file=sys.stderr)
        return 1
    pct = 100.0 * (eager.total - fused.total) / eager.total if eager.total else 0.0
    print(f"results bit-identical; fused saves {pct:.1f}% of dynamic instructions")
    s = cache.stats_dict()
    print(f"plan cache: hits={s['hits']} misses={s['misses']} "
          f"evictions={s['evictions']} size={s['size']}/{s['capacity']} "
          f"hit_rate={s['hit_rate']:.2f}")
    return 0


def _profile_workload_sort(svm, args, rng) -> int:
    from .algorithms import split_radix_sort

    keys = rng.integers(0, 2 ** args.bits, args.n, dtype=np.uint32)
    arr = svm.array(keys)
    svm.reset()
    split_radix_sort(svm, arr, bits=args.bits)
    if not np.array_equal(arr.to_numpy(), np.sort(keys)):
        print("sort FAILED verification", file=sys.stderr)
        return 1
    return 0


def _profile_workload_filter(svm, args, rng) -> int:
    from .algorithms import filter_in_range

    if args.batch:
        # pack captures as a structured node, but its instruction charge
        # is data-dependent, so every bucket takes the loop fallback —
        # visible as batch_bucket[path=loop]
        def pipe(lz, data):
            lt = lz.p_lt(data, 3 * 2 ** 14)
            ge = lz.p_ge(data, 2 ** 14)
            lz.p_mul(ge, lt)
            out, _ = lz.pack(data, ge)
            lz.free(ge)
            lz.free(lt)
            return out

        rows = [rng.integers(0, 2 ** 16, args.n, dtype=np.uint32)
                for _ in range(args.batch)]
        svm.batch(pipe, rows)
        return 0
    # two α-equivalent runs: the second one's plan comes from the cache,
    # so the profile shows both a plan_cache.miss and a plan_cache.hit
    for _ in range(2):
        data = svm.array(rng.integers(0, 2 ** 16, args.n, dtype=np.uint32))
        filter_in_range(svm, data, 2 ** 14, 3 * 2 ** 14)
    return 0


def _profile_workload_scan(svm, args, rng) -> int:
    if args.batch:
        def pipe(lz, data):
            lz.p_add(data, 1)
            lz.plus_scan(data)
            return data

        rows = [rng.integers(0, 100, args.n, dtype=np.uint32)
                for _ in range(args.batch)]
        svm.batch(pipe, rows)
        return 0
    data = svm.array(rng.integers(0, 100, args.n, dtype=np.uint32))
    svm.reset()
    svm.plus_scan(data)
    seg = svm.array(rng.integers(0, 100, args.n, dtype=np.uint32))
    heads = np.zeros(args.n, dtype=np.uint32)
    if args.n:
        heads[::64] = 1
    flags = svm.array(heads)
    svm.seg_plus_scan(seg, flags)
    return 0


_PROFILE_WORKLOADS = {
    "sort": _profile_workload_sort,
    "filter": _profile_workload_filter,
    "scan": _profile_workload_scan,
}


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from .svm.context import SVM

    if args.batch and args.algo == "sort":
        print("--batch applies to the scan and filter workloads only",
              file=sys.stderr)
        return 2
    svm = SVM(vlen=args.vlen, codegen=args.codegen, mode=args.mode,
              profile="strips" if args.strips else True)
    rng = np.random.default_rng(args.seed)
    rc = _PROFILE_WORKLOADS[args.algo](svm, args, rng)
    if rc:
        return rc
    col = svm.profiler
    col.finish()
    if args.format == "tree":
        text = col.report(max_depth=args.max_depth)
    elif args.format == "json":
        text = json.dumps(col.to_json(), indent=2)
    else:  # chrome-trace
        text = json.dumps(col.to_chrome_trace(), indent=2)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
        print(f"wrote {args.format} profile to {args.out}")
    else:
        print(text)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    import time

    from .parallel import batch_cell, codegen_cell, fusion_cell, run_grid
    from .utils.formatting import fmt_count

    t0 = time.perf_counter()
    failures = 0
    grid: dict = {
        "meta": {"suite": args.suite, "n": args.n, "seed": args.seed,
                 "jobs": args.jobs},
    }

    if args.suite in ("fusion", "all"):
        params = [
            {"n": args.n, "vlen": vlen, "lmul": lmul, "depth": 3,
             "seed": args.seed}
            for vlen in (128, 1024) for lmul in (1, 8)
        ]
        cells = run_grid(fusion_cell, params, jobs=args.jobs)
        grid["fusion"] = cells
        print(f"fusion suite ({len(cells)} cells, n={args.n}):")
        print("  VLEN LMUL      eager      fused  saved  identical")
        for c in cells:
            failures += not c["identical"]
            print(f"  {c['vlen']:>4} {c['lmul']:>4} {fmt_count(c['eager']):>10}"
                  f" {fmt_count(c['fused']):>10} {c['saving_pct']:>5.1f}%"
                  f"  {c['identical']}")

    if args.suite in ("batch", "all"):
        params = [
            {"n": n, "vlen": vlen, "lmul": 1, "rows": rows, "depth": 3,
             "seed": args.seed}
            for vlen in (128, 512) for n, rows in ((256, 32), (2000, 16))
        ]
        cells = run_grid(batch_cell, params, jobs=args.jobs)
        grid["batch"] = cells
        print(f"batch suite ({len(cells)} cells):")
        print("  VLEN     n rows path       loop      batch  identical")
        for c in cells:
            ok = (c["identical_results"] and c["identical_counters"]
                  and c["batch_instr"] == c["loop_instr"])
            failures += not ok
            print(f"  {c['vlen']:>4} {c['n']:>5} {c['rows']:>4} {c['path']:<4}"
                  f" {fmt_count(c['loop_instr']):>10}"
                  f" {fmt_count(c['batch_instr']):>10}  {ok}")

    if args.suite in ("codegen", "all"):
        params = [
            {"n": n, "vlen": vlen, "lmul": lmul, "depth": 5,
             "seed": args.seed}
            for vlen in (128, 1024) for lmul in (1, 8) for n in (256, args.n)
        ]
        cells = run_grid(codegen_cell, params, jobs=args.jobs)
        grid["codegen"] = cells
        print(f"codegen suite ({len(cells)} cells):")
        print("  VLEN LMUL      n     interp    codegen  identical")
        for c in cells:
            ok = (c["identical_results"] and c["identical_counters"]
                  and c["codegen_instr"] == c["interp_instr"])
            failures += not ok
            print(f"  {c['vlen']:>4} {c['lmul']:>4} {c['n']:>6}"
                  f" {fmt_count(c['interp_instr']):>10}"
                  f" {fmt_count(c['codegen_instr']):>10}  {ok}")

    # merged grid (all requested suites in one document), written at
    # any --jobs count — the workers only compute cells, the parent
    # always owns the merge
    if args.out:
        with open(args.out, "w") as f:
            json.dump(grid, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote merged grid to {args.out}")

    elapsed = time.perf_counter() - t0
    print(f"done in {elapsed:.2f}s with jobs={args.jobs}")
    if failures:
        print(f"{failures} cell(s) failed identity checks", file=sys.stderr)
        return 1
    return 0


def _cmd_ops(args: argparse.Namespace) -> int:
    import json

    from .svm import opspec
    from .utils.formatting import render_table

    if args.json:
        print(json.dumps(opspec.support_matrix(), indent=2))
        return 0

    def yn(flag: bool) -> str:
        return "yes" if flag else "-"

    rows = []
    for spec in opspec.iter_specs():
        if spec.composite:
            # composites never execute themselves: eager bodies call
            # other primitives, capture lowers them into the plan
            rows.append([spec.name, spec.category, "-", "-", "lowered",
                         "-", "-", "-", "-", ", ".join(spec.aliases)])
            continue
        fuse = spec.fuse_role if spec.fuse_role else "-"
        rows.append([
            spec.name, spec.category, yn(bool(spec.strict)),
            yn(bool(spec.fast)), fuse, yn(spec.codegen), yn(spec.native),
            yn(spec.batch2d), yn(spec.ragged2d), ", ".join(spec.aliases),
        ])
    print(render_table(
        ["op", "category", "strict", "fast", "fuse", "codegen", "native",
         "batch-2D", "ragged-2D", "aliases"],
        rows,
        title=f"OpSpec registry: {len(rows)} primitives "
              "(one descriptor drives eager, capture, fusion, codegen, batch)",
    ))
    print("fuse: lane ops merge into strip loops, tail ops close a fused "
          "group, lowered composites expand at capture")
    print("batch-2D '-': the op's charge or scalar flow is data-dependent; "
          "ragged-2D 'yes' means it still batches as one masked 2D "
          "evaluation with a per-row charge, else buckets replay the "
          "per-row loop")
    print("native 'yes': the op lowers into the compiled whole-plan C "
          "kernel tier; '-' ops force the plan back to codegen")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .config import env_cache_dir
    from .engine.cache import PlanStore, default_cache_dir
    from .tune.db import TuningDB

    configured = bool(args.dir or env_cache_dir())
    root = args.dir or default_cache_dir()
    store = PlanStore(root)
    tdb = TuningDB(root)
    if args.action == "clear":
        removed = store.clear() + tdb.clear()
        print(f"removed {removed} cached file(s) from {store.root} "
              "(plan entries, native artifacts, and tuning entries)")
        return 0
    if args.action == "prune":
        pruned = store.prune()
        tpruned = tdb.prune()
        print(f"pruned {pruned['removed']} stale entr(ies) from "
              f"{store.root} ({pruned['kept']} current kept, "
              f"{pruned['temps']} temp file(s) removed)")
        print(f"pruned {tpruned['removed']} stale tuning entr(ies) from "
              f"{tdb.tune_dir} ({tpruned['kept']} current kept, "
              f"{tpruned['temps']} temp file(s) removed)")
        return 0
    s = store.stats_dict(scan=True)
    t = tdb.stats_dict(scan=True)
    print(f"persistent plan cache at {s['dir']}")
    print(f"  entries: {s['entries']}  bytes: {s['bytes']:,}  "
          f"stale: {s['stale']}")
    print(f"  native artifacts: {s['native_artifacts']}  "
          f"bytes: {s['native_bytes']:,}")
    print(f"  tuning entries: {t['entries']}  bytes: {t['bytes']:,}  "
          f"stale: {t['stale']}")
    print(f"  schema: v{s['schema']}  code: {s['code']}")
    if s["stale"] or t["stale"]:
        print(f"  note: run 'repro cache prune' to evict the "
              f"{s['stale'] + t['stale']} stale entr(ies) left by an "
              "older engine fingerprint")
    if not configured:
        print("  note: persistence is disabled — the engine writes this "
              "store only when REPRO_CACHE_DIR is set or "
              "SVM(cache_dir=...) is passed")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    import json

    from .config import default_cache_dir
    from .rvv.types import LMUL
    from .tune import TuningDB, run_tune_sweep
    from .tune.sweep import DEFAULT_SIZES
    from .utils.formatting import render_table

    root = args.dir or default_cache_dir()
    db = TuningDB(root)

    if args.action == "clear":
        removed = db.clear()
        print(f"removed {removed} tuning file(s) from {db.tune_dir}")
        return 0

    if args.action == "show":
        files = db.entries()
        if not files:
            print(f"no tuning entries under {db.tune_dir} — run "
                  "'repro tune sweep' first")
            return 0
        s = db.stats_dict(scan=True)
        print(f"tuning DB at {s['dir']}: {s['entries']} fingerprint(s), "
              f"{s['bytes']:,} bytes, stale: {s['stale']}, "
              f"schema v{s['schema']}, code {s['code']}")
        rows = []
        for path in files:
            try:
                doc = json.loads(path.read_text())
            except Exception:
                rows.append([path.stem[:12], "?", "(unreadable)", "-", "-"])
                continue
            fp = doc.get("fingerprint", path.stem)
            name = ((doc.get("meta") or {}).get("pipelines") or {}).get(fp, "?")
            for key, rec in sorted((doc.get("entries") or {}).items()):
                rows.append([fp[:12], name, key, str(rec.get("lmul", "?")),
                             f"{rec.get('instructions', 0):,}"])
        print(render_table(
            ["fingerprint", "pipeline", "vlen:codegen:bucket", "lmul",
             "instructions"],
            rows, title="fitted shape→config policy (argmin dynamic "
                        "instructions per bucket)",
        ))
        return 0

    # sweep: measure the grid, fit the policy, persist it
    try:
        points, fitted = run_tune_sweep(
            pipelines=args.pipelines,
            sizes=tuple(args.sizes) if args.sizes else DEFAULT_SIZES,
            vlens=tuple(args.vlen),
            lmuls=tuple(LMUL(x) for x in args.lmuls),
            codegen=tuple(args.codegen),
            jobs=args.jobs,
            db=db,
        )
    except KeyError as exc:
        print(f"repro tune: {exc}", file=sys.stderr)
        return 2
    n_entries = sum(len(t) for t in fitted.values())
    print(f"swept {len(points)} cells -> {n_entries} policy entr(ies) "
          f"across {len(fitted)} pipeline fingerprint(s)")
    print(f"tuning DB written under {db.tune_dir}")
    print("consult it with SVM(tune='auto'), repro serve --tune auto, "
          "or inspect with 'repro tune show'")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import json
    import signal
    import sys as _sys

    from .serve import ServeConfig, Server

    if args.port is None and args.unix is None:
        args.port = 8377  # default listener: TCP on localhost
    config = ServeConfig(
        host=args.host, port=args.port, unix_path=args.unix,
        flush_ms=args.flush_ms, max_rows=args.max_rows,
        queue_limit=args.queue_limit, workers=args.workers,
        vlen=args.vlen, codegen=args.codegen, mode=args.mode,
        backend=args.backend, cache_dir=args.cache_dir,
        tune=args.tune,
        profile=args.profile, max_requests=args.max_requests,
        telemetry=not args.no_telemetry,
        flight_capacity=args.flight_capacity,
        flight_exemplars=args.flight_exemplars,
        flight_dump=args.flight_dump,
    )

    async def _main() -> tuple[dict, str]:
        server = Server(config)
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(
                    sig, lambda: loop.create_task(server.shutdown()))

        def _flight_dump() -> None:
            # SIGUSR1: dump the flight recorder without disturbing the
            # daemon — to --flight-dump when set, else to stderr
            text = server.telemetry.recorder.dump_ndjson()
            if config.flight_dump:
                with contextlib.suppress(OSError):
                    with open(config.flight_dump, "w") as f:
                        f.write(text)
                print(f"REPRO_SERVE flight dump written to "
                      f"{config.flight_dump}", flush=True)
            else:
                _sys.stderr.write(text)
                _sys.stderr.flush()

        if hasattr(signal, "SIGUSR1"):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signal.SIGUSR1, _flight_dump)
        addr = server.address
        if addr is not None:
            # parseable announce line: tools/ci_serve_smoke.py reads it
            print(f"REPRO_SERVE listening addr={addr[0]}:{addr[1]} "
                  f"flush_ms={config.flush_ms} max_rows={config.max_rows} "
                  f"workers={config.workers}", flush=True)
        if config.unix_path:
            print(f"REPRO_SERVE listening unix={config.unix_path}",
                  flush=True)
        await server.wait_closed()
        return server.stats(), server.metrics_exposition()

    stats, exposition = asyncio.run(_main())
    if args.stats_json:
        with open(args.stats_json, "w") as f:
            json.dump(stats, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote serving stats to {args.stats_json}")
    if args.metrics_file:
        with open(args.metrics_file, "w") as f:
            f.write(exposition)
        print(f"wrote metrics exposition to {args.metrics_file}")
    req = stats["requests"]
    co = stats["coalescing"]
    print(f"served {req['ok']}/{req['total']} requests "
          f"(rejected {req['rejected']}, errors {req['errors']}) in "
          f"{co['flushes']} flushes, coalescing ratio {co['ratio']}")
    return 0


def _render_top(stats: dict, rate: float | None) -> str:
    """One ``repro top`` frame from a daemon's ``stats`` document."""
    req = stats["requests"]
    co = stats["coalescing"]
    pc = stats["plan_cache"]
    lat = stats.get("latency_ms") or {}
    tel = stats.get("telemetry") or {}
    flight = tel.get("flight") or {}
    cfg = stats["config"]
    lines = [
        f"repro top — uptime {stats.get('uptime_s', 0.0):.1f}s  "
        f"workers {cfg['workers']}  mode {cfg['mode']}  "
        f"window {cfg['flush_ms']}ms/{cfg['max_rows']} rows",
        f"requests    total {req['total']:,}  ok {req['ok']:,}  "
        f"rejected {req['rejected']:,}  errors {req['errors']:,}  "
        f"inflight {req['inflight']}",
        f"throughput  "
        + (f"{rate:.1f} req/s" if rate is not None else "(first poll)"),
        f"coalescing  ratio {co['ratio']}  flushes {co['flushes']:,}  "
        f"paths 2d={co['paths']['2d']:,} "
        f"ragged={co['paths'].get('ragged', 0):,} "
        f"loop={co['paths']['loop']:,}",
        f"latency_ms  p50 {lat.get('p50', '-')}  p90 {lat.get('p90', '-')}  "
        f"p99 {lat.get('p99', '-')}  max {lat.get('max', '-')}",
        f"plan cache  hit_rate {pc['hit_rate']:.3f}  "
        f"memory {pc['sources']['memory']:,}  "
        f"disk {pc['sources']['disk']:,}  "
        f"compile {pc['sources']['compile']:,}"
        if pc.get("sources") else
        f"plan cache  hit_rate {pc['hit_rate']:.3f}",
        f"flight      recorded {flight.get('recorded', 0):,}  "
        f"dropped {flight.get('dropped', 0):,}  "
        f"exemplars {flight.get('exemplars', 0)}",
    ]
    pipelines = stats.get("pipelines") or {}
    if pipelines:
        lines.append("pipelines:")
        width = max(len(p) for p in pipelines)
        for name in sorted(pipelines):
            doc = pipelines[name]
            plat = doc.get("latency_ms") or {}
            lines.append(
                f"  {name:<{width}}  requests {doc['requests']:,}"
                f"  p50 {plat.get('p50', '-')}ms"
                f"  p99 {plat.get('p99', '-')}ms")
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    from .serve import ServeClient

    if args.port is None and args.unix is None:
        args.port = 8377

    def _connect() -> "ServeClient":
        if args.unix is not None:
            return ServeClient(unix_path=args.unix)
        return ServeClient(host=args.host, port=args.port)

    prev: tuple[int, float] | None = None
    frames = 0
    try:
        with _connect() as client:
            while True:
                stats = client.stats()
                now = _time.monotonic()
                rate = None
                if prev is not None and now > prev[1]:
                    rate = max(0, stats["requests"]["total"] - prev[0]) \
                        / (now - prev[1])
                frame = _render_top(stats, rate)
                if not args.once:
                    # full-screen refresh: clear + home, like top(1)
                    print("\x1b[2J\x1b[H", end="")
                print(frame, flush=True)
                prev = (stats["requests"]["total"], now)
                frames += 1
                if args.once or (args.frames and frames >= args.frames):
                    return 0
                _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except ConnectionError as exc:
        print(f"repro top: connection lost: {exc}")
        return 1


def _add_config_flags(p: argparse.ArgumentParser, *, codegen: bool = False,
                      backend: bool = False, cache_dir: bool = False,
                      vlen_default: int = 1024) -> None:
    """Register the shared execution-config flags — the CLI face of
    :class:`repro.config.ExecConfig`, declared once so every
    subcommand spells the axes identically."""
    from .config import BACKENDS

    p.add_argument("--vlen", type=int, default=vlen_default,
                   help="vector register length in bits")
    if codegen:
        p.add_argument("--codegen", choices=["ideal", "paper"],
                       default="paper")
    if backend:
        p.add_argument("--backend", choices=list(BACKENDS), default=None,
                       help="fused-plan executor: generated NumPy kernels "
                            "(codegen, the default), the specialized "
                            "interpreter (interp), or compiled whole-plan "
                            "C kernels (native keeps counters identical, "
                            "native-speed compiles them out); default "
                            "from REPRO_BACKEND")
    if cache_dir:
        p.add_argument("--cache-dir", default=None,
                       help="persistent plan-store / tuning-DB directory "
                            "(default: REPRO_CACHE_DIR if set)")


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scan vector model for RVV — reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p.add_argument("--stdout", action="store_true", help="print instead of writing")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("table", help="regenerate one experiment")
    p.add_argument("which", help="1-7, fig5, or headline")
    p.set_defaults(fn=_cmd_table)

    p = sub.add_parser("sweep", help="measure a kernel over an LMUL/size grid")
    p.add_argument("--kernel", default="seg_plus_scan",
                   choices=["p_add", "plus_scan", "seg_plus_scan"])
    _add_config_flags(p)
    p.add_argument("--lmul", type=int, nargs="+", default=[1, 2, 4, 8])
    p.add_argument("--sizes", type=int, nargs="+",
                   default=[100, 1000, 10000, 100000])
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser("advise", help="run the LMUL advisor (§6.3)")
    p.add_argument("--kernel", default="seg_plus_scan",
                   choices=["plus_scan", "seg_plus_scan"])
    p.add_argument("--n", type=int, required=True)
    _add_config_flags(p)
    p.set_defaults(fn=_cmd_advise)

    p = sub.add_parser("sort", help="sort random keys on the simulator")
    p.add_argument("--n", type=int, default=10000)
    p.add_argument("--algo", choices=["radix", "quicksort"], default="radix")
    _add_config_flags(p)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_sort)

    p = sub.add_parser(
        "fuse", help="inspect the lazy engine's plan fusion on a pipeline"
    )
    p.add_argument("--pipeline", choices=sorted(_FUSE_PIPELINES),
                   default="chain-scan")
    p.add_argument("--n", type=int, default=10000)
    _add_config_flags(p, codegen=True, backend=True)
    p.add_argument("--lmul", type=int, choices=[1, 2, 4, 8], default=1)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_fuse)

    p = sub.add_parser(
        "profile", help="run a workload with profiling spans and export"
    )
    p.add_argument("--algo", choices=sorted(_PROFILE_WORKLOADS), default="sort")
    p.add_argument("--format", choices=["tree", "json", "chrome-trace"],
                   default="tree")
    p.add_argument("--n", type=int, default=4096)
    p.add_argument("--bits", type=int, default=8,
                   help="key bits for the sort workload")
    _add_config_flags(p, codegen=True)
    p.add_argument("--mode", choices=["strict", "fast", "auto"], default="auto")
    p.add_argument("--strips", action="store_true",
                   help="record a span per vsetvl strip (verbose)")
    p.add_argument("--max-depth", type=int, default=None,
                   help="clip the tree report below this depth")
    p.add_argument("--out", default=None, help="write to a file instead of stdout")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--batch", type=int, default=0, metavar="N",
                   help="run the workload as an N-row svm.batch() so the "
                        "batch path shows up in the profile (scan/filter)")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser(
        "bench", help="run benchmark grids, optionally over worker processes"
    )
    p.add_argument("--suite", choices=["fusion", "batch", "codegen", "all"],
                   default="all")
    p.add_argument("--jobs", type=int, default=1,
                   help="fan grid cells over this many processes "
                        "(per-worker machines; results merge in input order)")
    p.add_argument("--n", type=int, default=20000,
                   help="element count for the fusion suite")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the merged grid (every suite run, one "
                        "JSON document) to this file; works at any "
                        "--jobs count")
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "ops", help="print the OpSpec registry as a tier-support matrix"
    )
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable matrix "
                        "(the serve daemon's 'ops' request body)")
    p.set_defaults(fn=_cmd_ops)

    p = sub.add_parser(
        "serve", help="run the plan-serving daemon (request coalescing "
                      "into 2D batch evaluations)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="TCP port (0 = ephemeral; default 8377 when no "
                        "--unix is given)")
    p.add_argument("--unix", default=None, metavar="PATH",
                   help="serve on a unix socket instead of TCP")
    p.add_argument("--flush-ms", type=float, default=2.0,
                   help="coalescing window deadline in milliseconds")
    p.add_argument("--max-rows", type=int, default=64,
                   help="flush a bucket as soon as it holds this many rows")
    p.add_argument("--queue-limit", type=int, default=1024,
                   help="max in-flight requests before rejection "
                        "(backpressure)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker pool size (SVM contexts sharing one warm "
                        "plan cache)")
    _add_config_flags(p, codegen=True, backend=True, cache_dir=True)
    p.add_argument("--mode", choices=["auto", "strict", "fast"],
                   default="auto")
    p.add_argument("--tune", choices=["auto"], default=None,
                   help="consult the persistent shape→config tuning DB "
                        "(under --cache-dir) per request shape at "
                        "dispatch time; see 'repro tune'")
    p.add_argument("--profile", action="store_true",
                   help="install per-worker obs collectors (serve.flush "
                        "spans and metrics)")
    p.add_argument("--max-requests", type=int, default=None, metavar="N",
                   help="gracefully exit after N execute requests "
                        "(smoke tests)")
    p.add_argument("--stats-json", default=None, metavar="PATH",
                   help="write the final serving statistics JSON on "
                        "shutdown")
    p.add_argument("--metrics-file", default=None, metavar="PATH",
                   help="write the Prometheus text exposition of every "
                        "metric family on shutdown")
    p.add_argument("--no-telemetry", action="store_true",
                   help="disable the always-on telemetry layer (request "
                        "tracing, labeled metrics, flight recorder)")
    p.add_argument("--flight-capacity", type=int, default=512,
                   help="flight-recorder ring buffer size in events")
    p.add_argument("--flight-exemplars", type=int, default=8,
                   help="slowest-request span trees retained as exemplars")
    p.add_argument("--flight-dump", default=None, metavar="PATH",
                   help="write the flight recorder as NDJSON here on a "
                        "request error or SIGUSR1 (default on SIGUSR1: "
                        "stderr)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "top", help="live view of a running serve daemon (polls its "
                    "stats request)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="daemon TCP port (default 8377 when no --unix)")
    p.add_argument("--unix", default=None, metavar="PATH",
                   help="connect over a unix socket instead of TCP")
    p.add_argument("--interval", type=float, default=1.0,
                   help="seconds between polls")
    p.add_argument("--once", action="store_true",
                   help="print one frame and exit (no screen clearing)")
    p.add_argument("--frames", type=int, default=0, metavar="N",
                   help="exit after N frames (0 = until interrupted)")
    p.set_defaults(fn=_cmd_top)

    p = sub.add_parser(
        "cache", help="inspect or clear the persistent plan cache"
    )
    p.add_argument("action", choices=["stats", "clear", "prune"])
    p.add_argument("--dir", default=None,
                   help="cache directory (default: REPRO_CACHE_DIR, "
                        "else ~/.cache/repro)")
    p.set_defaults(fn=_cmd_cache)

    p = sub.add_parser(
        "tune", help="sweep, inspect, or clear the persistent "
                     "shape→config auto-tuner (see docs/tuning.md)"
    )
    p.add_argument("action", choices=["sweep", "show", "clear"])
    p.add_argument("--dir", default=None,
                   help="cache directory holding the tuning DB "
                        "(default: REPRO_CACHE_DIR, else ~/.cache/repro)")
    p.add_argument("--pipelines", nargs="+", default=None, metavar="P",
                   help="pipelines to sweep (default: all of "
                        "chain_scan, scan, seg_scan)")
    p.add_argument("--sizes", type=int, nargs="+", default=None,
                   help="problem sizes (default spans the spill/strip "
                        "crossover: 64 ... 100000)")
    p.add_argument("--vlen", type=int, nargs="+", default=[1024],
                   help="VLEN values to sweep")
    p.add_argument("--lmuls", type=int, nargs="+", default=[1, 2, 4, 8],
                   help="LMUL candidates")
    p.add_argument("--codegen", choices=["ideal", "paper"], nargs="+",
                   default=["ideal", "paper"],
                   help="codegen preset(s) to sweep (the policy lookup "
                        "is preset-exact; default sweeps both)")
    p.add_argument("--jobs", type=int, default=1,
                   help="fan sweep cells over this many processes")
    p.set_defaults(fn=_cmd_tune)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)

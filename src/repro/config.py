"""Unified execution configuration: one :class:`ExecConfig` per context.

Before this module existed the execution configuration was smeared
across the stack: ``SVM.__init__`` held vlen/lmul/backend keyword
arguments, ``REPRO_BACKEND`` / ``REPRO_CACHE_DIR`` /
``REPRO_NATIVE_*`` were read ad hoc by the executor, the native
lowering, the plan store, and the sweep runner, and each consumer
invented its own precedence. :class:`ExecConfig` is the one place all
of those axes live, with a single layering rule applied by
:meth:`ExecConfig.resolve`::

    built-in defaults  <-  REPRO_* environment  <-  explicit kwargs
                                                 <-  per-call overrides

Every consumer goes through it: :class:`~repro.svm.context.SVM` holds
the resolved config of its context, the engine derives its backend and
persistent store from it, :mod:`repro.parallel` sweeps are expressed
as config deltas (:meth:`ExecConfig.override`), the serving daemon
builds its whole worker pool from one config, and the ``repro tune``
policy stores chosen configs per workload shape.

**All ``os.environ`` access in ``repro`` lives in this module** — the
``tools/check_config.py`` AST gate enforces it in CI, the same way
``tools/check_opspec.py`` guards the kernel registry. The environment
is read at *resolve time* (never cached at import), so tests and
long-running daemons observe monkeypatched or updated variables.

Environment variables
---------------------
=====================  ===========================  ==================
variable               ExecConfig field             default
=====================  ===========================  ==================
``REPRO_VLEN``         ``vlen``                     1024
``REPRO_LMUL``         ``lmul``                     1 (``LMUL.M1``)
``REPRO_BACKEND``      ``backend``                  None (engine picks)
``REPRO_DIGIT_BITS``   ``digit_bits``               2
``REPRO_CACHE_DIR``    ``cache_dir``                None (no persistence)
``REPRO_NATIVE_CC``    ``native_cc``                None (discover)
``REPRO_NATIVE_DISABLE`` ``native_disable``         False
``REPRO_BENCH_JOBS``   ``bench_jobs``               1 (inline)
=====================  ===========================  ==================

Malformed environment values are ignored (the layer below wins):
the environment is a convenience layer, not an API, and a typo in a
shell profile must never change results — only explicit arguments may
raise :class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace
from pathlib import Path

from .errors import ConfigurationError
from .rvv.types import LMUL

__all__ = [
    "ExecConfig",
    "ENV_VARS",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "env_backend",
    "env_cache_dir",
    "env_bench_jobs",
    "native_toolchain_env",
    "default_cache_dir",
]

#: Fast-path backends the engine understands (the executor validates
#: against this; it lives here so config stays import-light).
BACKENDS = ("interp", "codegen", "native", "native-speed")

#: The engine's default fast-path backend.
DEFAULT_BACKEND = "codegen"

#: ExecConfig field -> environment variable supplying its env layer.
ENV_VARS = {
    "vlen": "REPRO_VLEN",
    "lmul": "REPRO_LMUL",
    "backend": "REPRO_BACKEND",
    "digit_bits": "REPRO_DIGIT_BITS",
    "cache_dir": "REPRO_CACHE_DIR",
    "native_cc": "REPRO_NATIVE_CC",
    "native_disable": "REPRO_NATIVE_DISABLE",
    "bench_jobs": "REPRO_BENCH_JOBS",
}


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def _env_str(name: str) -> str | None:
    raw = os.environ.get(name)
    return raw if raw else None


def _env_bool(name: str) -> bool | None:
    raw = os.environ.get(name)
    if raw is None:
        return None
    return raw not in ("", "0")


@dataclass(frozen=True)
class ExecConfig:
    """One frozen record of every execution-configuration axis.

    Instances are immutable and hashable: the tuning policy uses them
    as values, sweep grids express their axes as deltas over a base
    config (:meth:`override`), and process-pool workers receive them
    pickled inside parameter dicts.
    """

    #: Vector register length in bits (the machine's VLEN).
    vlen: int = 1024
    #: Default register-grouping factor for primitive calls.
    lmul: LMUL = LMUL.M1
    #: Fast-path engine backend; None defers to the engine default
    #: (:data:`DEFAULT_BACKEND`).
    backend: str | None = None
    #: Radix digit width for :func:`~repro.algorithms.radix_wide.
    #: split_radix_sort_wide` (the paper's digit-bits study axis).
    digit_bits: int = 2
    #: Persistent plan-store / tuning-DB root; None disables
    #: persistence.
    cache_dir: str | None = None
    #: Explicit C compiler for the native tier; None discovers one.
    native_cc: str | None = None
    #: Force the native tier's no-toolchain fallback path.
    native_disable: bool = False
    #: Default worker count for multiprocess sweep grids.
    bench_jobs: int = 1

    def __post_init__(self) -> None:
        try:
            object.__setattr__(self, "lmul", LMUL(self.lmul))
        except ValueError:
            raise ConfigurationError(
                f"lmul must be one of {[int(m) for m in LMUL]}, "
                f"got {self.lmul!r}"
            ) from None
        if self.vlen < 32:
            raise ConfigurationError(f"vlen must be >= 32, got {self.vlen}")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if not 1 <= self.digit_bits <= 8:
            raise ConfigurationError(
                f"digit_bits must be in [1, 8], got {self.digit_bits}"
            )
        if self.bench_jobs < 1:
            raise ConfigurationError(
                f"bench_jobs must be >= 1, got {self.bench_jobs}"
            )

    # ------------------------------------------------------------------
    # layering
    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls) -> "ExecConfig":
        """Defaults overlaid with the ``REPRO_*`` environment layer
        (read now, not at import). Malformed values are ignored."""
        layer: dict = {}
        for field, value in (
            ("vlen", _env_int(ENV_VARS["vlen"])),
            ("lmul", _env_int(ENV_VARS["lmul"])),
            ("backend", _env_str(ENV_VARS["backend"])),
            ("digit_bits", _env_int(ENV_VARS["digit_bits"])),
            ("cache_dir", _env_str(ENV_VARS["cache_dir"])),
            ("native_cc", _env_str(ENV_VARS["native_cc"])),
            ("native_disable", _env_bool(ENV_VARS["native_disable"])),
            ("bench_jobs", _env_int(ENV_VARS["bench_jobs"])),
        ):
            if value is not None:
                layer[field] = value
        # a malformed env value must fall back, never raise
        for attempt in range(len(layer) + 1):
            try:
                return cls(**layer)
            except ConfigurationError:
                layer.pop(_first_bad_field(layer), None)
        return cls()  # pragma: no cover - loop always returns

    @classmethod
    def resolve(cls, **overrides) -> "ExecConfig":
        """The full layering: defaults <- environment <- explicit
        ``overrides`` (None values mean "not given" and are skipped)."""
        return cls.from_env().override(**overrides)

    def override(self, **overrides) -> "ExecConfig":
        """A copy with the given axes replaced; None values (and
        unchanged values) are skipped, so call sites can pass their
        optional keyword arguments straight through. Unknown axes
        raise."""
        known = {f.name for f in fields(self)}
        delta = {}
        for key, value in overrides.items():
            if key not in known:
                raise ConfigurationError(f"unknown ExecConfig axis {key!r}")
            if value is not None:
                delta[key] = value
        return replace(self, **delta) if delta else self

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """Plain-JSON form (LMUL as its integer value) — what the
        tuning DB persists and ``repro tune show`` prints."""
        return {
            "vlen": int(self.vlen),
            "lmul": int(self.lmul),
            "backend": self.backend,
            "digit_bits": int(self.digit_bits),
            "cache_dir": self.cache_dir,
            "native_cc": self.native_cc,
            "native_disable": bool(self.native_disable),
            "bench_jobs": int(self.bench_jobs),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ExecConfig":
        """Inverse of :meth:`as_dict` (unknown keys rejected)."""
        return cls().override(**doc)

    def describe(self) -> str:
        """One-line human-readable form."""
        parts = [f"vlen={self.vlen}", f"lmul={int(self.lmul)}"]
        if self.backend is not None:
            parts.append(f"backend={self.backend}")
        parts.append(f"digit_bits={self.digit_bits}")
        if self.cache_dir:
            parts.append(f"cache_dir={self.cache_dir}")
        if self.native_disable:
            parts.append("native_disable")
        return " ".join(parts)


def _first_bad_field(layer: dict) -> str | None:
    """The first env-layer field whose value alone fails validation
    (helper for the forgiving :meth:`ExecConfig.from_env` loop)."""
    for key, value in layer.items():
        try:
            ExecConfig(**{key: value})
        except ConfigurationError:
            return key
    # combination-level failure: drop arbitrarily to make progress
    return next(iter(layer), None)


# ---------------------------------------------------------------------------
# low-level environment accessors (the single environ choke point)
# ---------------------------------------------------------------------------

def env_backend() -> str | None:
    """``REPRO_BACKEND`` or None — read at call time."""
    return _env_str(ENV_VARS["backend"])


def env_cache_dir() -> str | None:
    """``REPRO_CACHE_DIR`` or None — read at call time."""
    return _env_str(ENV_VARS["cache_dir"])


def env_bench_jobs() -> int:
    """``REPRO_BENCH_JOBS`` clamped to >= 1, else 1 (inline)."""
    value = _env_int(ENV_VARS["bench_jobs"])
    return max(1, value) if value is not None else 1


def native_toolchain_env() -> tuple[str | None, bool]:
    """The native tier's environment knobs as ``(cc_override,
    disabled)`` — consumed by :func:`repro.engine.native.find_compiler`."""
    return _env_str(ENV_VARS["native_cc"]), bool(_env_bool(ENV_VARS["native_disable"]))


def default_cache_dir() -> Path:
    """The conventional persistent-store location: ``REPRO_CACHE_DIR``
    if set, else ``$XDG_CACHE_HOME/repro`` (``~/.cache/repro``)."""
    env = env_cache_dir()
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"

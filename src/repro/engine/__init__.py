"""Lazy plan-capture + strip-fusion execution engine.

The paper's primitives are each a standalone strip-mined loop, so a
pipeline such as ``split`` (Listing 7) pays a full
vsetvl + load + store round trip per primitive per strip even when
consecutive elementwise operations consume each other's output. This
package adds the missing layer between user pipelines and the
primitive kernels:

* :mod:`repro.engine.ir` — a small operation-graph IR over SVM arrays;
* :mod:`repro.engine.capture` — a deferred, SVM-compatible recorder
  (``with svm.lazy() as lz:`` or an explicit :class:`PlanBuilder`);
* :mod:`repro.engine.fuse` — optimization passes: dead-temp
  elimination plus fusion of compatible elementwise chains (and
  elementwise→scan producers) into single strip loops that load once,
  apply every lane operation in registers, and store once;
* :mod:`repro.engine.executor` — runs fused groups either strictly on
  the :class:`~repro.rvv.machine.RVVMachine` intrinsics or via the
  NumPy fast path with identical closed-form counters (preserving the
  repo's strict-vs-fast bit-and-counter equality invariant);
* :mod:`repro.engine.cache` — a plan cache keyed on (op signature, n,
  VLEN, SEW, LMUL, codegen preset) so repeated pipelines skip
  re-planning;
* :mod:`repro.engine.specialize` — compiles each fused group once at
  cache-insert time (bound ufuncs, precomputed charge profile) so
  cache hits replay with no per-execution resolution.

See ``docs/engine.md`` for the IR, fusion legality rules, the cache
key, and a worked before/after counter example.
"""

from .cache import CacheStats, PlanCache
from .capture import PlanBuilder
from .executor import Engine, execute
from .fuse import FusedGroup, FusedPlan, fuse
from .ir import OpNode, Plan, ScalarFuture
from .specialize import SpecializedGroup, specialize_plan

__all__ = [
    "Engine",
    "PlanBuilder",
    "Plan",
    "OpNode",
    "ScalarFuture",
    "fuse",
    "FusedGroup",
    "FusedPlan",
    "PlanCache",
    "CacheStats",
    "execute",
    "SpecializedGroup",
    "specialize_plan",
]

"""Lazy plan-capture + strip-fusion execution engine.

The paper's primitives are each a standalone strip-mined loop, so a
pipeline such as ``split`` (Listing 7) pays a full
vsetvl + load + store round trip per primitive per strip even when
consecutive elementwise operations consume each other's output. This
package adds the missing layer between user pipelines and the
primitive kernels:

* :mod:`repro.engine.ir` — a small operation-graph IR over SVM arrays;
* :mod:`repro.engine.capture` — a deferred, SVM-compatible recorder
  (``with svm.lazy() as lz:`` or an explicit :class:`PlanBuilder`);
* :mod:`repro.engine.fuse` — optimization passes: dead-temp
  elimination plus fusion of compatible elementwise chains (and
  elementwise→scan producers) into single strip loops that load once,
  apply every lane operation in registers, and store once;
* :mod:`repro.engine.executor` — runs fused groups either strictly on
  the :class:`~repro.rvv.machine.RVVMachine` intrinsics or via the
  NumPy fast path with identical closed-form counters (preserving the
  repo's strict-vs-fast bit-and-counter equality invariant);
* :mod:`repro.engine.cache` — a plan cache keyed on (op signature, n,
  VLEN, SEW, LMUL, codegen preset) so repeated pipelines skip
  re-planning, plus an opt-in persistent on-disk store
  (``REPRO_CACHE_DIR`` / ``SVM(cache_dir=...)``) that is versioned and
  fingerprint-guarded so warm cold-starts skip compilation entirely;
* :mod:`repro.engine.specialize` — compiles each fused group once at
  cache-insert time (bound ufuncs, precomputed charge profile) so
  cache hits replay with no per-execution resolution;
* :mod:`repro.engine.codegen` — the generated-kernel backend: emits
  one flat Python function per fused group (and a whole-plan kernel
  when every unit fuses), selected with ``SVM(backend=...)`` and
  bit- and counter-identical to the interpreted executor;
* :mod:`repro.engine.native` — the compiled backend tier: lowers a
  whole fused plan to one C translation unit, builds it with the host
  toolchain, and replays it as a single ``ctypes`` call — either with
  the counter contract intact (``backend="native"``) or with counters
  compiled out (``backend="native-speed"``), falling back to codegen
  whenever the plan or the environment is ineligible.

See ``docs/engine.md`` for the IR, fusion legality rules, the cache
key, and a worked before/after counter example, ``docs/native.md`` for
the compiled tier's dual contracts, and ``docs/architecture.md`` for
how the five execution tiers dispatch.
"""

from .cache import CacheStats, PlanCache, PlanStore
from .capture import PlanBuilder
from .codegen import CompiledPlan, compile_fused
from .executor import BACKENDS, DEFAULT_BACKEND, Engine, execute, resolve_backend
from .fuse import FusedGroup, FusedPlan, fuse
from .ir import OpNode, Plan, ScalarFuture
from .native import NATIVE_BACKENDS, NativePlan, lower_plan, native_available
from .specialize import SpecializedGroup, specialize_plan

__all__ = [
    "Engine",
    "PlanBuilder",
    "Plan",
    "OpNode",
    "ScalarFuture",
    "fuse",
    "FusedGroup",
    "FusedPlan",
    "PlanCache",
    "CacheStats",
    "PlanStore",
    "execute",
    "SpecializedGroup",
    "specialize_plan",
    "CompiledPlan",
    "compile_fused",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "resolve_backend",
    "NATIVE_BACKENDS",
    "NativePlan",
    "lower_plan",
    "native_available",
]

"""Plan cache: skip re-running the fusion passes for repeated pipelines.

The key is :meth:`repro.engine.ir.Plan.signature` — the α-renamed node
structure plus everything planning depends on (per-buffer length and
element width, per-node LMUL, VLEN, codegen preset). The cached value
is a :class:`~repro.engine.fuse.FusedPlan`, which stores only node
indices, so one cached entry replays against every α-equivalent plan
(same pipeline over fresh buffers or different constants).

Eviction is LRU with a bounded size: a serving process cycling through
many distinct pipelines stays bounded in memory, and the hot pipelines
stay resident.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["PlanCache", "CacheStats", "DEFAULT_CAPACITY"]

DEFAULT_CAPACITY = 256


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """A bounded LRU map from plan signatures to fused plans."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self.stats = CacheStats()

    def get(self, key: tuple):
        """The cached fused plan for ``key``, or None (counted as a miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: tuple, fused) -> None:
        self._entries[key] = fused
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    @property
    def size(self) -> int:
        """Number of resident entries (≤ ``capacity``)."""
        return len(self._entries)

    def stats_dict(self) -> dict:
        """Cache statistics as a plain dict — the shape ``repro fuse``
        prints and the profiler exports."""
        return {
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "evictions": self.stats.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.stats.hit_rate,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

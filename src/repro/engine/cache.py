"""Plan cache: skip re-running the fusion passes for repeated pipelines.

The key is :meth:`repro.engine.ir.Plan.signature` — the α-renamed node
structure plus everything planning depends on (per-buffer length and
element width, per-node LMUL, VLEN, codegen preset). The cached value
is a :class:`~repro.engine.fuse.FusedPlan`, which stores only node
indices, so one cached entry replays against every α-equivalent plan
(same pipeline over fresh buffers or different constants).

Eviction is LRU with a bounded size: a serving process cycling through
many distinct pipelines stays bounded in memory, and the hot pipelines
stay resident.

Persistence
-----------
:class:`PlanStore` extends the in-memory cache across processes: fully
compiled entries (fused recipe + specialization + generated codegen
source) are pickled to one file per plan signature under a cache
directory, so ``repro.parallel`` workers and repeat CLI invocations
skip capture/fuse/specialize/codegen entirely. The store is **opt-in**:
it activates only when ``REPRO_CACHE_DIR`` is set (or an explicit
``cache_dir=`` is passed to :class:`~repro.svm.context.SVM`); the
conventional location is ``~/.cache/repro``.

Safety over speed: every envelope carries a schema version and a code
fingerprint (a hash over the engine's own source files), and the load
path re-verifies the full key. *Any* mismatch, truncation, or unpickle
failure is a silent miss that falls back to recompilation — a stale or
corrupted cache can never produce wrong results.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..config import default_cache_dir as _config_cache_dir
from ..config import env_cache_dir

__all__ = [
    "PlanCache",
    "CacheStats",
    "DEFAULT_CAPACITY",
    "PlanStore",
    "SCHEMA_VERSION",
    "code_fingerprint",
    "default_cache_dir",
    "store_from_env",
]

DEFAULT_CAPACITY = 256

#: Bumped whenever the pickled envelope layout changes.
SCHEMA_VERSION = 1

#: Engine modules whose source participates in the code fingerprint —
#: any change to planning, specialization, or code generation must
#: invalidate every persisted entry.
_FINGERPRINT_MODULES = ("ir", "fuse", "specialize", "codegen", "native",
                        "nodes", "executor", "cache")

_fingerprint_cache: str | None = None


def code_fingerprint() -> str:
    """SHA-256 over the engine's own source files plus the package
    version — the persisted-entry compatibility guard. Computed once
    per process."""
    global _fingerprint_cache
    if _fingerprint_cache is None:
        from .. import __version__

        h = hashlib.sha256(__version__.encode())
        here = Path(__file__).resolve().parent
        for mod in _FINGERPRINT_MODULES:
            h.update(mod.encode())
            h.update((here / f"{mod}.py").read_bytes())
        _fingerprint_cache = h.hexdigest()
    return _fingerprint_cache


def default_cache_dir() -> Path:
    """The conventional persistent-store location: ``REPRO_CACHE_DIR``
    if set, else ``$XDG_CACHE_HOME/repro`` (``~/.cache/repro``).
    Alias of :func:`repro.config.default_cache_dir` — the environment
    is read there, at call time."""
    return _config_cache_dir()


def store_from_env() -> "PlanStore | None":
    """A :class:`PlanStore` when ``REPRO_CACHE_DIR`` is set, else None.
    Persistence stays opt-in so library use never writes outside an
    explicitly designated directory."""
    root = env_cache_dir()
    return PlanStore(root) if root else None


class PlanStore:
    """Versioned one-file-per-plan on-disk store of compiled plans.

    File name: the SHA-256 of the full plan signature (``.plan``
    suffix). Envelope: ``{"schema", "code", "key", "fused"}`` —
    :meth:`load` verifies all three guards and the exact key before
    trusting the payload; every failure path returns None (a miss).
    Writes are atomic (temp file + rename) and best-effort: an
    unwritable directory degrades to no persistence, never to an error.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.write_errors = 0

    def _path(self, key: tuple) -> Path:
        digest = hashlib.sha256(repr(key).encode()).hexdigest()
        return self.root / f"{digest}.plan"

    def load(self, key: tuple):
        """The stored fused plan for ``key``, or None. Corrupted,
        truncated, version-mismatched or fingerprint-mismatched entries
        are silent misses — the caller recompiles."""
        try:
            envelope = pickle.loads(self._path(key).read_bytes())
            if (
                envelope["schema"] != SCHEMA_VERSION
                or envelope["code"] != code_fingerprint()
                or envelope["key"] != key
            ):
                raise ValueError("stale or mismatched cache entry")
            fused = envelope["fused"]
        except Exception:
            self.misses += 1
            return None
        self.hits += 1
        return fused

    def save(self, key: tuple, fused) -> None:
        """Persist one compiled entry (atomic, best-effort)."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            path = self._path(key)
            blob = pickle.dumps({
                "schema": SCHEMA_VERSION,
                "code": code_fingerprint(),
                "key": key,
                "fused": fused,
            })
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except Exception:
            self.write_errors += 1

    def entries(self) -> list[Path]:
        """The resident entry files (empty for a missing directory)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.plan"))

    @property
    def native_dir(self) -> Path:
        """Where the native backend persists compiled artifacts (the
        ``<digest>.c`` source and ``<digest>.so`` shared object pairs,
        keyed by plan-source digest rather than plan signature)."""
        return self.root / "native"

    def native_artifacts(self) -> list[Path]:
        """The resident native build artifacts (sources and objects)."""
        if not self.native_dir.is_dir():
            return []
        return sorted(
            p for p in self.native_dir.iterdir()
            if p.suffix in (".c", ".so")
        )

    def _is_stale(self, path: Path) -> bool:
        """True when an entry file cannot be trusted by :meth:`load`:
        unreadable, truncated, schema-mismatched, or written by a
        different engine code fingerprint."""
        try:
            envelope = pickle.loads(path.read_bytes())
            return (
                envelope["schema"] != SCHEMA_VERSION
                or envelope["code"] != code_fingerprint()
            )
        except Exception:
            return True

    def prune(self) -> dict:
        """Evict every stale entry (wrong schema or code fingerprint,
        or unreadable) plus abandoned temp files; returns counts.

        Native artifacts are left alone: their file names embed a
        digest of the generated C source (including the native schema
        version), so a source-level change simply keys new files and
        the old pairs are unreachable — :meth:`clear` removes them.
        """
        removed = kept = 0
        for path in self.entries():
            if self._is_stale(path):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            else:
                kept += 1
        temps = 0
        if self.root.is_dir():
            for tmp in self.root.glob("*.tmp.*"):
                try:
                    tmp.unlink()
                    temps += 1
                except OSError:
                    pass
        return {"removed": removed, "kept": kept, "temps": temps}

    def clear(self) -> int:
        """Delete every entry file and native artifact; returns how
        many files were removed."""
        removed = 0
        for path in self.entries() + self.native_artifacts():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats_dict(self, *, scan: bool = False) -> dict:
        """Store statistics; ``scan=True`` additionally unpickles every
        entry to count stale ones (CLI-grade — too slow for a serving
        stats endpoint polled per scrape)."""
        entries = self.entries()
        artifacts = self.native_artifacts()
        stale = (sum(1 for p in entries if self._is_stale(p))
                 if scan else None)
        return {
            "dir": str(self.root),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "stale": stale,
            "native_artifacts": len(artifacts),
            "native_bytes": sum(p.stat().st_size for p in artifacts),
            "hits": self.hits,
            "misses": self.misses,
            "write_errors": self.write_errors,
            "schema": SCHEMA_VERSION,
            "code": code_fingerprint()[:12],
        }


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`PlanCache`.

    ``hits`` counts in-memory hits only; ``disk_hits`` counts misses
    that the persistent :class:`PlanStore` then satisfied (the engine
    reports them via :meth:`PlanCache.note_disk_hit`), so
    ``misses - disk_hits`` is the true compile count. Serving stats
    surface all three tiers separately — a warm disk cache and a cold
    everything look identical under plain hit/miss counts.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def compiles(self) -> int:
        return self.misses - self.disk_hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """A bounded LRU map from plan signatures to fused plans.

    Thread-safe: the serving daemon shares one warm cache across its
    worker pool (each worker owns a machine, but compiled plans are
    immutable once inserted), so ``get``/``put`` take a lock around the
    LRU reordering — cheap next to a plan compile, and it keeps the
    hit/miss/eviction statistics exact under concurrency.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key: tuple):
        """The cached fused plan for ``key``, or None (counted as a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key: tuple, fused) -> None:
        with self._lock:
            self._entries[key] = fused
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def note_disk_hit(self) -> None:
        """Record that the miss just counted by :meth:`get` was
        satisfied from the persistent store rather than compiled."""
        with self._lock:
            self.stats.disk_hits += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def size(self) -> int:
        """Number of resident entries (≤ ``capacity``)."""
        return len(self._entries)

    def stats_dict(self) -> dict:
        """Cache statistics as a plain dict — the shape ``repro fuse``
        prints and the profiler exports."""
        return {
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "evictions": self.stats.evictions,
            "disk_hits": self.stats.disk_hits,
            "compiles": self.stats.compiles,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.stats.hit_rate,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

"""Deferred recording of SVM pipelines into a :class:`Plan`.

:class:`PlanBuilder` mirrors the :class:`~repro.svm.context.SVM`
surface. Methods the fuser understands (in-place elementwise, flag
compares, ``get_flags``, scans) record structured nodes; everything
else (``pack``, ``enumerate``, ``permute``, ``p_select``, ``reduce``,
...) records an opaque node that replays the SVM call verbatim at
execution — so *any* pipeline can run through the engine, and the
fuser simply works around the parts it cannot merge.

Allocation is eager (``empty``/``zeros``/``array`` hand back live
SVMArrays immediately, marked as plan temporaries); only *execution*
is deferred. Data-dependent scalar results (the counts of ``pack`` and
``enumerate``, the value of ``reduce``) come back as
:class:`~repro.engine.ir.ScalarFuture` placeholders, usable as scalar
operands of later recorded ops and resolved when the plan executes.

The usual entry point is ``with svm.lazy() as lz:`` (see
:meth:`repro.svm.context.SVM.lazy`), which builds and executes the
plan on block exit; an explicit PlanBuilder plus
:meth:`PlanBuilder.build` and :meth:`~repro.engine.executor.Engine.run`
gives manual control.
"""

from __future__ import annotations

import numpy as np

from ..rvv.types import LMUL
from ..svm.context import SVMArray
from ..svm.operators import PLUS, BinaryOp, get_operator
from .ir import Buf, Buffer, Kind, OpNode, Plan, ScalarFuture

__all__ = ["PlanBuilder"]


class PlanBuilder:
    """Records SVM calls into a :class:`Plan` instead of executing them."""

    def __init__(self, svm) -> None:
        self.svm = svm
        self._buffers: dict[int, Buffer] = {}
        self._by_addr: dict[int, int] = {}
        self._nodes: list[OpNode] = []
        #: Set by :meth:`build` / :meth:`SVM.lazy` on completion.
        self.plan: Plan | None = None
        self.fused = None

    # ------------------------------------------------------------------
    # buffer registry
    # ------------------------------------------------------------------
    def _bid(self, arr: SVMArray, temp: bool = False) -> int:
        addr = arr.ptr.addr
        bid = self._by_addr.get(addr)
        if bid is None:
            bid = len(self._buffers)
            self._buffers[bid] = Buffer(bid, arr.n, arr.dtype, arr, temp=temp)
            self._by_addr[addr] = bid
        return bid

    def _record(self, node: OpNode) -> None:
        self._nodes.append(node)

    def build(self) -> Plan:
        """Freeze the recording into an executable plan."""
        self.plan = Plan(dict(self._buffers), list(self._nodes))
        return self.plan

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # allocation (eager — capture defers execution, not memory)
    # ------------------------------------------------------------------
    def array(self, values, dtype=np.uint32) -> SVMArray:
        arr = self.svm.array(values, dtype)
        self._bid(arr, temp=True)
        return arr

    def zeros(self, n: int, dtype=np.uint32) -> SVMArray:
        arr = self.svm.zeros(n, dtype)
        self._bid(arr, temp=True)
        return arr

    def empty(self, n: int, dtype=np.uint32) -> SVMArray:
        arr = self.svm.empty(n, dtype)
        self._bid(arr, temp=True)
        return arr

    def free(self, arr: SVMArray) -> None:
        bid = self._bid(arr)
        self._record(OpNode(Kind.FREE, dst=bid))
        # the address may be recycled by a later allocation
        self._by_addr.pop(arr.ptr.addr, None)

    # ------------------------------------------------------------------
    # fusable elementwise records
    # ------------------------------------------------------------------
    def _ew(self, kernel: str, a: SVMArray, x, lmul) -> None:
        lmul = self.svm._lmul(lmul)
        if isinstance(x, SVMArray):
            self.svm._check_equal_len(a, x)
            self._record(OpNode(Kind.EW_VV, op=kernel, dst=self._bid(a),
                                operand=self._bid(x), lmul=lmul))
        else:
            self._record(OpNode(Kind.EW_VX, op=kernel, dst=self._bid(a),
                                scalar=x, lmul=lmul))

    def p_add(self, a, x, lmul=None):
        self._ew("p_add", a, x, lmul)

    def p_sub(self, a, x, lmul=None):
        self._ew("p_sub", a, x, lmul)

    def p_mul(self, a, x, lmul=None):
        self._ew("p_mul", a, x, lmul)

    def p_and(self, a, x, lmul=None):
        self._ew("p_and", a, x, lmul)

    def p_or(self, a, x, lmul=None):
        self._ew("p_or", a, x, lmul)

    def p_xor(self, a, x, lmul=None):
        self._ew("p_xor", a, x, lmul)

    def p_max(self, a, x, lmul=None):
        self._ew("p_max", a, x, lmul)

    def p_min(self, a, x, lmul=None):
        self._ew("p_min", a, x, lmul)

    def p_srl(self, a, x, lmul=None):
        lmul = self.svm._lmul(lmul)
        self._record(OpNode(Kind.EW_VX, op="p_srl", dst=self._bid(a),
                            scalar=x, lmul=lmul))

    def p_sll(self, a, x, lmul=None):
        lmul = self.svm._lmul(lmul)
        self._record(OpNode(Kind.EW_VX, op="p_sll", dst=self._bid(a),
                            scalar=x, lmul=lmul))

    def p_rsub(self, a, x, lmul=None):
        lmul = self.svm._lmul(lmul)
        self._record(OpNode(Kind.EW_VX, op="p_rsub", dst=self._bid(a),
                            scalar=x, lmul=lmul))

    # ------------------------------------------------------------------
    # flag compares and get_flags
    # ------------------------------------------------------------------
    def _cmp(self, which: str, a: SVMArray, b, out, lmul) -> SVMArray:
        dst = self.empty(a.n, np.uint32) if out is None else out
        lmul = self.svm._lmul(lmul)
        if isinstance(b, SVMArray):
            self.svm._check_equal_len(a, b, dst)
            self._record(OpNode(Kind.CMP_VV, op=which, dst=self._bid(dst),
                                src=self._bid(a), operand=self._bid(b), lmul=lmul))
        else:
            self.svm._check_equal_len(a, dst)
            self._record(OpNode(Kind.CMP_VX, op=which, dst=self._bid(dst),
                                src=self._bid(a), scalar=b, lmul=lmul))
        return dst

    def p_lt(self, a, b, out=None, lmul=None):
        return self._cmp("lt", a, b, out, lmul)

    def p_le(self, a, b, out=None, lmul=None):
        return self._cmp("le", a, b, out, lmul)

    def p_gt(self, a, b, out=None, lmul=None):
        return self._cmp("gt", a, b, out, lmul)

    def p_ge(self, a, b, out=None, lmul=None):
        return self._cmp("ge", a, b, out, lmul)

    def p_eq(self, a, b, out=None, lmul=None):
        return self._cmp("eq", a, b, out, lmul)

    def p_ne(self, a, b, out=None, lmul=None):
        return self._cmp("ne", a, b, out, lmul)

    def get_flags(self, src: SVMArray, bit: int, out=None, lmul=None) -> SVMArray:
        dst = self.empty(src.n, src.dtype) if out is None else out
        self.svm._check_equal_len(src, dst)
        lmul = self.svm._lmul(lmul)
        self._record(OpNode(Kind.GET_FLAGS, dst=self._bid(dst),
                            src=self._bid(src), scalar=bit, lmul=lmul))
        return dst

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def scan(self, a: SVMArray, op: str | BinaryOp = PLUS, *,
             inclusive: bool = True, lmul: LMUL | None = None) -> None:
        self._record(OpNode(
            Kind.SCAN, op=get_operator(op).name, dst=self._bid(a),
            inclusive=inclusive, lmul=self.svm._lmul(lmul),
        ))

    def plus_scan(self, a: SVMArray, lmul: LMUL | None = None) -> None:
        self.scan(a, PLUS, inclusive=True, lmul=lmul)

    def scan_exclusive(self, a: SVMArray, op: str | BinaryOp = PLUS,
                       lmul: LMUL | None = None) -> None:
        self.scan(a, op, inclusive=False, lmul=lmul)

    # ------------------------------------------------------------------
    # opaque records (verbatim SVM replay)
    # ------------------------------------------------------------------
    def _opaque(self, method: str, args: tuple, kwargs: dict,
                future: ScalarFuture | None = None,
                future_index: int | None = None) -> None:
        wrap = lambda v: Buf(self._bid(v)) if isinstance(v, SVMArray) else v
        self._record(OpNode(
            Kind.OPAQUE, method=method,
            args=tuple(wrap(a) for a in args),
            kwargs={k: wrap(v) for k, v in kwargs.items()},
            future=future, future_index=future_index,
            lmul=self.svm._lmul(kwargs.get("lmul")),
        ))

    def p_select(self, flags, a, b, lmul=None) -> None:
        self.svm._check_equal_len(flags, a, b)
        self._opaque("p_select", (flags, a, b), {"lmul": lmul})

    def permute(self, src, index, out=None, lmul=None) -> SVMArray:
        dst = self.empty(src.n, src.dtype) if out is None else out
        self.svm._check_equal_len(src, index, dst)
        self._opaque("permute", (src, index), {"out": dst, "lmul": lmul})
        return dst

    def back_permute(self, src, index, out=None, lmul=None) -> SVMArray:
        dst = self.empty(src.n, src.dtype) if out is None else out
        self.svm._check_equal_len(src, index, dst)
        self._opaque("back_permute", (src, index), {"out": dst, "lmul": lmul})
        return dst

    def pack(self, src, flags, out=None, lmul=None) -> tuple[SVMArray, ScalarFuture]:
        dst = self.empty(src.n, src.dtype) if out is None else out
        self.svm._check_equal_len(src, flags, dst)
        kept = ScalarFuture("pack.kept")
        self._opaque("pack", (src, flags), {"out": dst, "lmul": lmul},
                     future=kept, future_index=1)
        return dst, kept

    def enumerate(self, flags, set_bit: bool = True, out=None,
                  lmul=None) -> tuple[SVMArray, ScalarFuture]:
        dst = self.empty(flags.n, np.uint32) if out is None else out
        self.svm._check_equal_len(flags, dst)
        count = ScalarFuture("enumerate.count")
        self._opaque("enumerate", (flags, set_bit), {"out": dst, "lmul": lmul},
                     future=count, future_index=1)
        return dst, count

    def reduce(self, a, op: str | BinaryOp = PLUS, lmul=None) -> ScalarFuture:
        result = ScalarFuture("reduce")
        self._opaque("reduce", (a, get_operator(op).name), {"lmul": lmul},
                     future=result, future_index=None)
        return result

    def seg_scan(self, a, head_flags, op: str | BinaryOp = PLUS, *,
                 inclusive: bool = True, lmul=None) -> None:
        self.svm._check_equal_len(a, head_flags)
        self._opaque("seg_scan", (a, head_flags, get_operator(op).name),
                     {"inclusive": inclusive, "lmul": lmul})

    def seg_plus_scan(self, a, head_flags, lmul=None) -> None:
        self.seg_scan(a, head_flags, PLUS, inclusive=True, lmul=lmul)

    def shift1up(self, src, fill: int, out=None, lmul=None) -> SVMArray:
        dst = self.empty(src.n, src.dtype) if out is None else out
        self.svm._check_equal_len(src, dst)
        self._opaque("shift1up", (src, fill), {"out": dst, "lmul": lmul})
        return dst

    def copy(self, src, out=None, lmul=None) -> SVMArray:
        dst = self.empty(src.n, src.dtype) if out is None else out
        self.svm._check_equal_len(src, dst)
        self._opaque("copy", (src,), {"out": dst, "lmul": lmul})
        return dst

    def index_array(self, n: int, out=None, lmul=None) -> SVMArray:
        dst = self.empty(int(n), np.uint32) if out is None else out
        self._opaque("index_array", (int(n),), {"out": dst, "lmul": lmul})
        return dst

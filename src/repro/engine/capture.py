"""Deferred recording of SVM pipelines into a :class:`Plan`.

:class:`PlanBuilder` mirrors the :class:`~repro.svm.context.SVM`
surface. Every primitive in the :mod:`repro.svm.opspec` registry
records a *structured* node — the fusable kinds (in-place elementwise,
flag compares, ``get_flags``, scans) plus the typed replay kinds
(``permute``, ``pack``, ``enumerate``, ``seg_scan``, ``p_select``,
``reduce``, ``shift1up``, ``copy``, ``index_array``). Structured nodes
expose their operands as buffer slots, so whole-plan codegen and the
batch runner's 2D path see through them; only a call outside the
registry would fall back to an :data:`~repro.engine.ir.Kind.OPAQUE`
verbatim replay. The composites ``split`` and ``reverse`` lower to
their constituent primitives at capture time, so a captured radix-sort
round contains no opaque nodes at all.

Allocation is eager (``empty``/``zeros``/``array`` hand back live
SVMArrays immediately, marked as plan temporaries); only *execution*
is deferred. Data-dependent scalar results (the counts of ``pack`` and
``enumerate``, the value of ``reduce``) come back as
:class:`~repro.engine.ir.ScalarFuture` placeholders, usable as scalar
operands of later recorded ops and resolved when the plan executes.

The usual entry point is ``with svm.lazy() as lz:`` (see
:meth:`repro.svm.context.SVM.lazy`), which builds and executes the
plan on block exit; an explicit PlanBuilder plus
:meth:`PlanBuilder.build` and :meth:`~repro.engine.executor.Engine.run`
gives manual control.
"""

from __future__ import annotations

import numpy as np

from ..rvv.types import LMUL
from ..svm.context import SVMArray
from ..svm.operators import PLUS, BinaryOp, get_operator
from .ir import Buffer, Kind, OpNode, Plan, ScalarFuture

__all__ = ["PlanBuilder"]


class PlanBuilder:
    """Records SVM calls into a :class:`Plan` instead of executing them."""

    def __init__(self, svm) -> None:
        self.svm = svm
        self._buffers: dict[int, Buffer] = {}
        self._by_addr: dict[int, int] = {}
        self._nodes: list[OpNode] = []
        #: Set by :meth:`build` / :meth:`SVM.lazy` on completion.
        self.plan: Plan | None = None
        self.fused = None

    # ------------------------------------------------------------------
    # buffer registry
    # ------------------------------------------------------------------
    def _bid(self, arr: SVMArray, temp: bool = False) -> int:
        addr = arr.ptr.addr
        bid = self._by_addr.get(addr)
        if bid is None:
            bid = len(self._buffers)
            self._buffers[bid] = Buffer(bid, arr.n, arr.dtype, arr, temp=temp)
            self._by_addr[addr] = bid
        return bid

    def _record(self, node: OpNode) -> None:
        self._nodes.append(node)

    def build(self) -> Plan:
        """Freeze the recording into an executable plan."""
        self.plan = Plan(dict(self._buffers), list(self._nodes))
        return self.plan

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # allocation (eager — capture defers execution, not memory)
    # ------------------------------------------------------------------
    def array(self, values, dtype=np.uint32) -> SVMArray:
        arr = self.svm.array(values, dtype)
        self._bid(arr, temp=True)
        return arr

    def zeros(self, n: int, dtype=np.uint32) -> SVMArray:
        arr = self.svm.zeros(n, dtype)
        self._bid(arr, temp=True)
        return arr

    def empty(self, n: int, dtype=np.uint32) -> SVMArray:
        arr = self.svm.empty(n, dtype)
        self._bid(arr, temp=True)
        return arr

    def free(self, arr: SVMArray) -> None:
        bid = self._bid(arr)
        self._record(OpNode(Kind.FREE, dst=bid))
        # the address may be recycled by a later allocation
        self._by_addr.pop(arr.ptr.addr, None)

    # ------------------------------------------------------------------
    # fusable elementwise records
    # ------------------------------------------------------------------
    def _ew(self, kernel: str, a: SVMArray, x, lmul) -> None:
        lmul = self.svm._lmul(lmul)
        if isinstance(x, SVMArray):
            self.svm._check_equal_len(a, x)
            self._record(OpNode(Kind.EW_VV, op=kernel, dst=self._bid(a),
                                operand=self._bid(x), lmul=lmul))
        else:
            self._record(OpNode(Kind.EW_VX, op=kernel, dst=self._bid(a),
                                scalar=x, lmul=lmul))

    def p_add(self, a, x, lmul=None):
        self._ew("p_add", a, x, lmul)

    def p_sub(self, a, x, lmul=None):
        self._ew("p_sub", a, x, lmul)

    def p_mul(self, a, x, lmul=None):
        self._ew("p_mul", a, x, lmul)

    def p_and(self, a, x, lmul=None):
        self._ew("p_and", a, x, lmul)

    def p_or(self, a, x, lmul=None):
        self._ew("p_or", a, x, lmul)

    def p_xor(self, a, x, lmul=None):
        self._ew("p_xor", a, x, lmul)

    def p_max(self, a, x, lmul=None):
        self._ew("p_max", a, x, lmul)

    def p_min(self, a, x, lmul=None):
        self._ew("p_min", a, x, lmul)

    def p_srl(self, a, x, lmul=None):
        lmul = self.svm._lmul(lmul)
        self._record(OpNode(Kind.EW_VX, op="p_srl", dst=self._bid(a),
                            scalar=x, lmul=lmul))

    def p_sll(self, a, x, lmul=None):
        lmul = self.svm._lmul(lmul)
        self._record(OpNode(Kind.EW_VX, op="p_sll", dst=self._bid(a),
                            scalar=x, lmul=lmul))

    def p_rsub(self, a, x, lmul=None):
        lmul = self.svm._lmul(lmul)
        self._record(OpNode(Kind.EW_VX, op="p_rsub", dst=self._bid(a),
                            scalar=x, lmul=lmul))

    # ------------------------------------------------------------------
    # flag compares and get_flags
    # ------------------------------------------------------------------
    def _cmp(self, which: str, a: SVMArray, b, out, lmul) -> SVMArray:
        dst = self.empty(a.n, np.uint32) if out is None else out
        lmul = self.svm._lmul(lmul)
        if isinstance(b, SVMArray):
            self.svm._check_equal_len(a, b, dst)
            self._record(OpNode(Kind.CMP_VV, op=which, dst=self._bid(dst),
                                src=self._bid(a), operand=self._bid(b), lmul=lmul))
        else:
            self.svm._check_equal_len(a, dst)
            self._record(OpNode(Kind.CMP_VX, op=which, dst=self._bid(dst),
                                src=self._bid(a), scalar=b, lmul=lmul))
        return dst

    def p_lt(self, a, b, out=None, lmul=None):
        return self._cmp("lt", a, b, out, lmul)

    def p_le(self, a, b, out=None, lmul=None):
        return self._cmp("le", a, b, out, lmul)

    def p_gt(self, a, b, out=None, lmul=None):
        return self._cmp("gt", a, b, out, lmul)

    def p_ge(self, a, b, out=None, lmul=None):
        return self._cmp("ge", a, b, out, lmul)

    def p_eq(self, a, b, out=None, lmul=None):
        return self._cmp("eq", a, b, out, lmul)

    def p_ne(self, a, b, out=None, lmul=None):
        return self._cmp("ne", a, b, out, lmul)

    def get_flags(self, src: SVMArray, bit: int, out=None, lmul=None) -> SVMArray:
        dst = self.empty(src.n, src.dtype) if out is None else out
        self.svm._check_equal_len(src, dst)
        lmul = self.svm._lmul(lmul)
        self._record(OpNode(Kind.GET_FLAGS, dst=self._bid(dst),
                            src=self._bid(src), scalar=bit, lmul=lmul))
        return dst

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def scan(self, a: SVMArray, op: str | BinaryOp = PLUS, *,
             inclusive: bool = True, lmul: LMUL | None = None) -> None:
        self._record(OpNode(
            Kind.SCAN, op=get_operator(op).name, dst=self._bid(a),
            inclusive=inclusive, lmul=self.svm._lmul(lmul),
        ))

    def plus_scan(self, a: SVMArray, lmul: LMUL | None = None) -> None:
        self.scan(a, PLUS, inclusive=True, lmul=lmul)

    def scan_exclusive(self, a: SVMArray, op: str | BinaryOp = PLUS,
                       lmul: LMUL | None = None) -> None:
        self.scan(a, op, inclusive=False, lmul=lmul)

    # ------------------------------------------------------------------
    # structured replay records (typed operands, never strip-fused)
    # ------------------------------------------------------------------
    def p_select(self, flags, a, b, lmul=None) -> None:
        self.svm._check_equal_len(flags, a, b)
        self._record(OpNode(Kind.SELECT, dst=self._bid(b), src=self._bid(a),
                            operand=self._bid(flags),
                            lmul=self.svm._lmul(lmul)))

    def permute(self, src, index, out=None, lmul=None) -> SVMArray:
        dst = self.empty(src.n, src.dtype) if out is None else out
        self.svm._check_equal_len(src, index, dst)
        self._record(OpNode(Kind.PERMUTE, dst=self._bid(dst),
                            src=self._bid(src), operand=self._bid(index),
                            lmul=self.svm._lmul(lmul)))
        return dst

    def back_permute(self, src, index, out=None, lmul=None) -> SVMArray:
        dst = self.empty(src.n, src.dtype) if out is None else out
        self.svm._check_equal_len(src, index, dst)
        self._record(OpNode(Kind.BACK_PERMUTE, dst=self._bid(dst),
                            src=self._bid(src), operand=self._bid(index),
                            lmul=self.svm._lmul(lmul)))
        return dst

    def pack(self, src, flags, out=None, lmul=None) -> tuple[SVMArray, ScalarFuture]:
        dst = self.empty(src.n, src.dtype) if out is None else out
        self.svm._check_equal_len(src, flags, dst)
        kept = ScalarFuture("pack.kept")
        self._record(OpNode(Kind.PACK, dst=self._bid(dst), src=self._bid(src),
                            operand=self._bid(flags), future=kept,
                            future_index=1, lmul=self.svm._lmul(lmul)))
        return dst, kept

    def enumerate(self, flags, set_bit: bool = True, out=None,
                  lmul=None) -> tuple[SVMArray, ScalarFuture]:
        dst = self.empty(flags.n, np.uint32) if out is None else out
        self.svm._check_equal_len(flags, dst)
        count = ScalarFuture("enumerate.count")
        self._record(OpNode(Kind.ENUMERATE, dst=self._bid(dst),
                            src=self._bid(flags), scalar=bool(set_bit),
                            future=count, future_index=1,
                            lmul=self.svm._lmul(lmul)))
        return dst, count

    def reduce(self, a, op: str | BinaryOp = PLUS, lmul=None) -> ScalarFuture:
        result = ScalarFuture("reduce")
        self._record(OpNode(Kind.REDUCE, op=get_operator(op).name,
                            src=self._bid(a), future=result,
                            future_index=None, lmul=self.svm._lmul(lmul)))
        return result

    def seg_scan(self, a, head_flags, op: str | BinaryOp = PLUS, *,
                 inclusive: bool = True, lmul=None) -> None:
        self.svm._check_equal_len(a, head_flags)
        self._record(OpNode(Kind.SEG_SCAN, op=get_operator(op).name,
                            dst=self._bid(a), operand=self._bid(head_flags),
                            inclusive=inclusive, lmul=self.svm._lmul(lmul)))

    def seg_plus_scan(self, a, head_flags, lmul=None) -> None:
        self.seg_scan(a, head_flags, PLUS, inclusive=True, lmul=lmul)

    def shift1up(self, src, fill: int, out=None, lmul=None) -> SVMArray:
        dst = self.empty(src.n, src.dtype) if out is None else out
        self.svm._check_equal_len(src, dst)
        self._record(OpNode(Kind.SHIFT1UP, dst=self._bid(dst),
                            src=self._bid(src), scalar=fill,
                            lmul=self.svm._lmul(lmul)))
        return dst

    def copy(self, src, out=None, lmul=None) -> SVMArray:
        dst = self.empty(src.n, src.dtype) if out is None else out
        self.svm._check_equal_len(src, dst)
        self._record(OpNode(Kind.COPY, dst=self._bid(dst),
                            src=self._bid(src), lmul=self.svm._lmul(lmul)))
        return dst

    def index_array(self, n: int, out=None, lmul=None) -> SVMArray:
        dst = self.empty(int(n), np.uint32) if out is None else out
        self._record(OpNode(Kind.INDEX, dst=self._bid(dst),
                            lmul=self.svm._lmul(lmul)))
        return dst

    # ------------------------------------------------------------------
    # composites: lowered to registered primitives at capture time
    # ------------------------------------------------------------------
    def reverse(self, src, out=None, lmul=None) -> SVMArray:
        """Reverse via index_array + p_rsub + back_permute — same
        lowering as the eager :meth:`~repro.svm.context.SVM.reverse`."""
        idx = self.index_array(src.n, lmul=lmul)
        self.p_rsub(idx, src.n - 1, lmul=lmul)
        result = self.back_permute(src, idx, out=out, lmul=lmul)
        self.free(idx)
        return result

    def split(self, src, flags, out=None, lmul=None) -> tuple[SVMArray, ScalarFuture]:
        """Split (Listing 7) lowered to registered primitives, so the
        whole radix-sort inner loop captures without opaque nodes.

        The scratch index vectors are plan temporaries (uncharged, like
        every capture-time allocation) rather than the charged
        ``malloc``s of the eager kernel, so a captured split's counters
        match the batch runner's 2D replay exactly; the eager path is
        unchanged.
        """
        dst = self.empty(src.n, src.dtype) if out is None else out
        self.svm._check_equal_len(src, flags, dst)
        i_up = self.empty(src.n, np.uint32)
        i_down = self.empty(src.n, np.uint32)
        _, count = self.enumerate(flags, set_bit=False, out=i_up, lmul=lmul)
        self.enumerate(flags, set_bit=True, out=i_down, lmul=lmul)
        self.p_add(i_down, count, lmul=lmul)
        self.p_select(flags, i_down, i_up, lmul=lmul)
        self.permute(src, i_up, out=dst, lmul=lmul)
        self.free(i_up)
        self.free(i_down)
        return dst, count

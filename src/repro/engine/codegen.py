"""Lower specialized fused groups one more level: from data to code.

:mod:`repro.engine.specialize` turns a fused group into *data* — a
tuple of :class:`~repro.engine.specialize.LaneStep` records that
:func:`~repro.engine.specialize.run_specialized_fast` interprets per
execution. That interpreter loop (attribute loads, kind string
compares, dict lookups, ``_wrap`` calls, the charge loop) is pure
dispatch overhead, and at small ``n`` it dominates the NumPy work.

This module emits Python *source* for each specialized plan instead:
one flat kernel function per fused group with

* every lane op unrolled in order, its ufunc prebound in the module
  namespace (no per-step dispatch);
* scalar wrapping inlined for unsigned dtypes (the dtype is part of
  the plan signature, so the mask is a literal and the masked python
  int feeds the ufunc directly — NEP 50 weak-scalar promotion keeps
  the array dtype, so no np scalar is constructed per call);
* destination/head views sliced straight off the backing byte array
  (bounds and alignment were validated at buffer allocation);
* the closed-form counter charge prebound as one ``(category, count)``
  tuple and applied in a single ``counters.add_many`` call;
* axis-aware scan tails (``axis=1`` in the batch variant);
* copy elision where the *structure* proves it safe: aliasing between
  a group's head, destination, and operands is α-stable (buffer slot
  relations are part of :meth:`~repro.engine.ir.Plan.signature`), so
  an in-place chain whose operands never re-read the destination can
  run directly on the memory view — skipping the head copy and the
  final writeback the interpreter always pays.

Scalar *values* and raw buffer ids are **excluded** from the plan
signature, so generated code never bakes them: it resolves both
through node indices at call time (``nodes[i].scalar`` via
``resolve_scalar``, ``nodes[i].operand``), exactly like the
interpreter. The source is ``compile()``/``exec()``-ed once at
plan-cache insert; cache hits call straight into the code objects.

Results and per-category counters are bit-identical to the interpreted
executor by construction — asserted across the full VLEN×LMUL grid in
``tests/engine/test_codegen.py`` and locked in ``BENCH_codegen.json``.

A :class:`CompiledPlan` also pickles (for the persistent plan store of
:mod:`repro.engine.cache`): ``__reduce__`` ships the generated source
plus the prebound-constant table and re-``exec``-s on load, so a
process that loads a warm cache entry skips capture, fusion,
specialization *and* code generation.
"""

from __future__ import annotations

import numpy as np

from .fuse import FusedPlan, GroupSpec
from .ir import Kind, Plan, resolve_scalar
from .nodes import run_node_eager
from ..svm.fastpath import _wrap

__all__ = ["CompiledGroup", "CompiledPlan", "compile_fused"]

#: Bumped when the shape of the generated source changes; folded into
#: the persistent store's code fingerprint via this module's source.
CODEGEN_VERSION = 3


class CompiledGroup:
    """The two generated entry points of one fused group.

    ``fn(svm, nodes, buffers)`` is the single-call kernel (computes the
    group and applies its precomputed charge); ``fn2d(nodes, buffers,
    mats, get)`` is the batch kernel over ``[b1, n]`` matrices (no
    charging — the batch runner scales row 0's counter delta).
    """

    __slots__ = ("fn", "fn2d", "name")

    def __init__(self, fn, fn2d, name: str) -> None:
        self.fn = fn
        self.fn2d = fn2d
        self.name = name


class CompiledPlan:
    """Generated source + bound code objects for one fused plan.

    ``groups`` maps each :class:`GroupSpec` to its
    :class:`CompiledGroup`; ``plan_fn(svm, plan)``, when not None, runs
    the *entire* plan as one flat call (available when every execution
    unit is a fused group, a FREE node, or a structured replay node —
    anything but an out-of-registry OPAQUE call). ``min_n`` is the
    smallest group length — ``svm._fast(min_n)`` implies the fast path
    applies to every group, which gates the whole-plan kernel;
    structured replay units inside it dispatch per their own length
    through the SVM surface, exactly like the unit loop.

    Pickling re-emits nothing: the instance reduces to
    ``(source, consts, group_names, plan_name, min_n)`` and re-binds by
    ``exec``-ing the stored source on load.
    """

    def __init__(self, source: str, consts: dict, group_names: dict,
                 plan_name: str | None, min_n: int) -> None:
        self.source = source
        self.consts = consts
        self.group_names = group_names  # {GroupSpec: "_g0", ...}
        self.plan_name = plan_name
        self.min_n = int(min_n)
        self._bind()

    def _bind(self) -> None:
        ns = dict(self.consts)
        ns["_np"] = np
        ns["_wrap"] = _wrap
        ns["_rs"] = resolve_scalar
        exec(compile(self.source, "<repro.engine.codegen>", "exec"), ns)
        self.groups = {
            spec: CompiledGroup(ns[name], ns[name + "_2d"], name)
            for spec, name in self.group_names.items()
        }
        self.plan_fn = ns[self.plan_name] if self.plan_name else None

    def __reduce__(self):
        return (CompiledPlan, (self.source, self.consts, self.group_names,
                               self.plan_name, self.min_n))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CompiledPlan({len(self.group_names)} groups, "
                f"plan_fn={'yes' if self.plan_name else 'no'})")


# ---------------------------------------------------------------------------
# source emission
# ---------------------------------------------------------------------------

class _Emitter:
    """Accumulates source lines + the prebound-constant table."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.consts: dict[str, object] = {}

    def emit(self, line: str = "") -> None:
        self.lines.append(line)

    def bind(self, name: str, value) -> str:
        self.consts[name] = value
        return name

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _scalar_expr(e: _Emitter, g: str, si: int, step, dtype: np.dtype,
                 dt_name: str) -> str:
    """The wrapped scalar operand of a vx/cmp_vx step.

    Structural constants (get_flags' ``& 1``) are wrapped at codegen
    time and prebound; node scalars resolve at call time, with the
    ``_wrap`` masking inlined for unsigned dtypes (the mask is a
    signature-stable literal)."""
    if step.const is not None:
        return e.bind(f"_k{g}_{si}", _wrap(step.const, dtype))
    if dtype.kind == "u":
        # a masked python int is a NEP-50 weak scalar: the ufunc keeps
        # the array dtype, bit-identical to an np-scalar operand but
        # without constructing one per call; plain-int scalars (the
        # common case) skip the resolve_scalar call entirely
        mask = (1 << (dtype.itemsize * 8)) - 1
        e.emit(f"    _x = nodes[{step.node_index}].scalar")
        return f"((_x if _x.__class__ is int else int(_rs(_x))) & {mask})"
    return f"_wrap(_rs(nodes[{step.node_index}].scalar), {dt_name})"


def _operand_expr(step, view: str) -> str:
    """Runtime view of a vv/cmp_vv step's operand buffer."""
    return (f"buffers[nodes[{step.node_index}].operand]"
            f".array.ptr.view({view})")


def _emit_group(e: _Emitter, plan: Plan, spec: GroupSpec, sg, gi: int) -> str:
    """Emit ``_g{gi}`` (single-call) and ``_g{gi}_2d`` (batch) for one
    specialized group; returns the single-call function name."""
    g = str(gi)
    name = f"_g{gi}"
    n = sg.n
    dtype = sg.dtype
    head_index = spec.node_indices[0]
    head_node = plan.nodes[head_index]
    dst_bid = head_node.dst
    head_is_dst = head_node.src is None or head_node.src == dst_bid
    # α-stable: buffer-slot relations are part of the plan signature
    alias_dst = any(
        st.kind in ("vv", "cmp_vv")
        and plan.nodes[st.node_index].operand == dst_bid
        for st in sg.steps
    )
    dt = e.bind(f"_dt{g}", dtype)
    sc = e.bind(f"_sc{g}", sg.scan_ufunc) if sg.scan_ufunc is not None else None
    fns = [e.bind(f"_f{g}_{si}", st.fn) for si, st in enumerate(sg.steps)]

    def step_rhs(si: int, st, acc_src: str, view: str) -> str:
        if st.kind in ("vx", "cmp_vx"):
            x = _scalar_expr(e, g, si, st, dtype, dt)
        else:
            x = _operand_expr(st, view)
        return f"{fns[si]}({acc_src}, {x})"

    # ---- single-call kernel ------------------------------------------
    # views are sliced straight off the backing byte array: bounds and
    # alignment were validated when the buffers were allocated at
    # capture time, so the generated tier skips Memory.view's re-checks
    nbytes = n * dtype.itemsize
    e.emit(f"def {name}(svm, nodes, buffers):")
    if n:
        e.emit(f"    _p = buffers[nodes[{head_index}].dst].array.ptr")
        e.emit(f"    dv = _p.mem._bytes[_p.addr:_p.addr + {nbytes}]"
               f".view({dt})")
        steps = list(sg.steps)
        if head_is_dst and not alias_dst:
            # in-place: operate directly on the destination view; a
            # compare rebinds acc to a fresh array and forces the
            # final writeback the view path skips
            e.emit("    acc = dv")
            acc_is_view = True
            for si, st in enumerate(steps):
                if st.kind in ("vx", "vv"):
                    e.emit(f"    {step_rhs(si, st, 'acc', n)[:-1]}, out=acc)")
                else:
                    e.emit(f"    acc = {step_rhs(si, st, 'acc', n)}"
                           f".astype({dt})")
                    acc_is_view = False
        elif head_is_dst:
            # an operand re-reads dst: keep the interpreter's
            # copy-then-write-back discipline so it sees pre-group memory
            e.emit("    acc = _np.array(dv, copy=True)")
            acc_is_view = False
            for si, st in enumerate(steps):
                if st.kind in ("vx", "vv"):
                    e.emit(f"    {step_rhs(si, st, 'acc', n)[:-1]}, out=acc)")
                else:
                    e.emit(f"    acc = {step_rhs(si, st, 'acc', n)}"
                           f".astype({dt})")
        else:
            # out-of-place head (compare/get_flags reading src): the
            # first step lands straight into a fresh array, no head copy
            e.emit(f"    _q = buffers[nodes[{head_index}].src].array.ptr")
            e.emit(f"    hv = _q.mem._bytes[_q.addr:_q.addr + {nbytes}]"
                   f".view({dt})")
            acc_is_view = False
            first, rest = steps[0], list(enumerate(steps))[1:]
            if first.kind in ("vx", "vv"):
                e.emit(f"    acc = _np.empty({n}, {dt})")
                e.emit(f"    {step_rhs(0, first, 'hv', n)[:-1]}, out=acc)")
            else:
                e.emit(f"    acc = {step_rhs(0, first, 'hv', n)}"
                       f".astype({dt})")
            for si, st in rest:
                if st.kind in ("vx", "vv"):
                    e.emit(f"    {step_rhs(si, st, 'acc', n)[:-1]}, out=acc)")
                else:
                    e.emit(f"    acc = {step_rhs(si, st, 'acc', n)}"
                           f".astype({dt})")
        if sc is not None:
            e.emit(f"    {sc}.accumulate(acc, out=acc)")
        if not acc_is_view:
            e.emit("    dv[:] = acc")
    # closed-form charge: the whole (category, count) profile is a
    # function of the cache key, so it is prebound as one tuple and
    # applied in a single batched call
    if sg.charge:
        chg = e.bind(f"_chg{g}", tuple((cat, int(k)) for cat, k in sg.charge))
        e.emit(f"    svm.machine.counters.add_many({chg})")
    elif not n:
        e.emit("    pass")
    e.emit()

    # ---- batch (2D) kernel -------------------------------------------
    # mirror of repro.batch.runner._group_2d with the `owned` copy
    # logic resolved statically (it depends only on aliasing structure)
    e.emit(f"def {name}_2d(nodes, buffers, mats, get):")
    e.emit(f"    _h = nodes[{head_index}]")
    if head_is_dst:
        e.emit("    acc = get(_h.dst)")
    else:
        e.emit("    acc = get(_h.src)")
    owned = head_is_dst and not alias_dst
    emitted_any = False
    for si, st in enumerate(sg.steps):
        if st.kind in ("vx", "vv"):
            if not owned:
                e.emit("    acc = acc.copy()")
                owned = True
            if st.kind == "vx":
                x = _scalar_expr(e, g, si, st, dtype, dt)
            else:
                x = f"get(nodes[{st.node_index}].operand)"
            e.emit(f"    {fns[si]}(acc, {x}, out=acc)")
        else:
            if st.kind == "cmp_vx":
                x = _scalar_expr(e, g, si, st, dtype, dt)
            else:
                x = f"get(nodes[{st.node_index}].operand)"
            e.emit(f"    acc = {fns[si]}(acc, {x}).astype({dt})")
            owned = True
        emitted_any = True
    if sc is not None:
        if not owned:
            e.emit("    acc = acc.copy()")
            owned = True
        e.emit(f"    {sc}.accumulate(acc, axis=1, out=acc)")
        emitted_any = True
    if not emitted_any:
        e.emit("    pass")
    e.emit("    mats[_h.dst] = acc")
    e.emit()
    return name


def compile_fused(plan: Plan, fused: FusedPlan) -> CompiledPlan | None:
    """Generate, compile and bind the kernels for every specialized
    group of ``fused``; returns None when there is nothing to compile
    (no fused groups — e.g. fully opaque plans).

    Call once at plan-cache insert, after
    :func:`~repro.engine.specialize.specialize_plan`; attach the result
    as ``fused.compiled``.
    """
    specials = fused.specialized
    if not specials:
        return None
    e = _Emitter()
    group_names: dict[GroupSpec, str] = {}
    order = [u for u in fused.units if isinstance(u, GroupSpec)]
    for gi, spec in enumerate(order):
        sg = specials.get(spec)
        if sg is None:  # pragma: no cover - specialize_plan covers all
            continue
        group_names[spec] = _emit_group(e, plan, spec, sg, gi)

    # whole-plan kernel: eligible when every unit is a compiled group,
    # a FREE, or a structured replay node — only out-of-registry OPAQUE
    # calls force the generic unit loop
    plan_name = None
    flat_ok = all(
        (isinstance(u, GroupSpec) and u in group_names)
        or (not isinstance(u, GroupSpec)
            and plan.nodes[u].kind is not Kind.OPAQUE)
        for u in fused.units
    )
    if flat_ok and group_names:
        plan_name = "_plan_kernel"
        e.emit(f"def {plan_name}(svm, plan):")
        e.emit("    nodes = plan.nodes")
        e.emit("    buffers = plan.buffers")
        for u in fused.units:
            if isinstance(u, GroupSpec):
                e.emit(f"    {group_names[u]}(svm, nodes, buffers)")
            elif plan.nodes[u].kind is Kind.FREE:
                e.emit(f"    svm.free(buffers[nodes[{u}].dst].array)")
            else:
                # structured replay (permute/pack/seg_scan/...) through
                # the SVM surface; _rn is run_node_eager, prebound
                e.bind("_rn", run_node_eager)
                e.emit(f"    _rn(svm, plan, nodes[{u}])")
        e.emit()

    min_n = min(specials[spec].n for spec in group_names)
    return CompiledPlan(e.source(), e.consts, group_names, plan_name, min_n)

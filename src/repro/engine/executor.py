"""Execute a fused plan, strictly or via the fast path.

Non-fused units replay the recorded :class:`~repro.svm.context.SVM`
method call verbatim, so their results *and* counters are exactly what
eager execution would have produced — ``svm.lazy(fuse=False)`` is a
bit- and counter-identical spelling of the eager program.

Fused groups have two interchangeable implementations mirroring the
repo's strict/fast contract:

* :func:`run_group_strict` drives the machine intrinsic-by-intrinsic:
  one strip loop that loads the head value, applies every lane op in
  registers, runs the optional in-register scan tail, and stores once;
* :func:`run_group_fast` computes the same chain with NumPy and calls
  :func:`charge_group`, the closed-form counter mirror of the strict
  loop.

Both paths share the vl sequence (``n``, VLEN, SEW, LMUL determine
it), so results and per-category counts agree exactly — the invariant
``tests/engine`` asserts across modes, sizes, and presets.
"""

from __future__ import annotations

import time
from contextlib import nullcontext

import numpy as np

from ..config import BACKENDS, DEFAULT_BACKEND, env_backend
from ..obs.telemetry import note_plan_cache
from ..rvv.counters import Cat
from ..rvv.intrinsics import arith, compare, loadstore, mask as maskops, move, permutation
from ..rvv.types import LMUL
from ..rvv.value import VReg
from ..svm import elementwise as ew
from ..svm.fastpath import _NP_CMP, _UFUNC_VX, _wrap, strip_shape
from ..svm.operators import get_operator
from ..svm.scan import inner_scan_steps
from .cache import PlanCache, store_from_env
from .codegen import compile_fused
from .fuse import (
    KERNEL_EW,
    KERNEL_SCAN,
    FusedGroup,
    FusedPlan,
    GroupSpec,
    fuse as fuse_plan,
    group_profile,
    materialize,
)
from .ir import EngineError, Plan, resolve_scalar
from .native import NATIVE_BACKENDS, lower_plan, native_state
from .nodes import run_node_eager
from .specialize import (
    group_charge_items,
    run_specialized_fast,
    specialize_plan,
)

__all__ = [
    "Engine",
    "execute",
    "run_group_strict",
    "run_group_fast",
    "charge_group",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "resolve_backend",
]

from ..rvv.allocation import plan_allocation

_CMP_VX_INTRIN = ew._CMP_VX  # no "ge": that relation uses vmsltu + vmnot
_CMP_VV_INTRIN = ew._CMP_VV


def _trim(v: VReg, vl: int) -> VReg:
    return v if v.vl == vl else VReg(v.data[:vl])


# ---------------------------------------------------------------------------
# strict group execution
# ---------------------------------------------------------------------------

def _apply_lane_strict(m, lane, acc, vl, vzero, operand_ptr):
    """One in-register lane op of the fused strip body."""
    if lane.kind == "vx":
        return ew._VX_OPS[lane.op](m, acc, resolve_scalar(lane.scalar), vl)
    if lane.kind == "vv":
        vb = loadstore.vle(m, operand_ptr, vl)
        return ew._VV_OPS[lane.op](m, acc, vb, vl)
    if lane.kind == "cmp_vx":
        x = resolve_scalar(lane.scalar)
        if lane.op == "ge":  # vmsgeu.vx does not exist: vmsltu + vmnot
            msk = compare.vmsltu_vx(m, acc, x, vl)
            msk = maskops.vmnot_m(m, msk, vl)
        else:
            msk = _CMP_VX_INTRIN[lane.op](m, acc, x, vl)
        return arith.vmerge_vxm(m, msk, _trim(vzero, vl), 1, vl)
    if lane.kind == "cmp_vv":
        vb = loadstore.vle(m, operand_ptr, vl)
        msk = _CMP_VV_INTRIN[lane.op](m, acc, vb, vl)
        return arith.vmerge_vxm(m, msk, _trim(vzero, vl), 1, vl)
    raise EngineError(f"unknown lane kind {lane.kind!r}")


def run_group_strict(svm, plan: Plan, group: FusedGroup) -> None:
    """Drive one fused group through the machine intrinsics."""
    m = svm.machine
    sew = group.sew
    lmul = group.lmul
    kernel = KERNEL_SCAN if group.scan_op is not None else KERNEL_EW
    alloc = plan_allocation(group_profile(group), lmul)

    m.prologue(kernel)
    if alloc.has_spills:
        m.count(Cat.SPILL, alloc.frame_setup)

    # one-time constant setup (a single vsetvlmax covers every broadcast)
    vec_identity = vzero = None
    op = identity = None
    if group.scan_op is not None or group.needs_zero:
        vlmax = m.vsetvlmax(sew, lmul)
        if group.scan_op is not None:
            op = get_operator(group.scan_op)
            identity = op.identity(group.dtype)
            vec_identity = move.vmv_v_x(m, identity, vlmax, dtype=group.dtype)
        if group.needs_zero:
            vzero = move.vmv_v_x(m, 0, vlmax, dtype=group.dtype)
    if group.scan_op is not None:
        scan_vv = ew._VV_OPS[_SCAN_EW[op.name]]
        scan_vx = ew._VX_OPS[_SCAN_EW[op.name]]
        carry = identity

    head = plan.buffers[group.head_src].array.ptr
    dst = plan.buffers[group.dst].array.ptr
    ptrs = [
        plan.buffers[l.operand].array.ptr if l.operand is not None else None
        for l in group.lane_ops
    ]

    n = int(group.n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        acc = loadstore.vle(m, head, vl)
        for i, lane in enumerate(group.lane_ops):
            acc = _apply_lane_strict(m, lane, acc, vl, vzero, ptrs[i])
            if ptrs[i] is not None:
                ptrs[i] += vl
        if group.scan_op is not None:
            ident_vl = _trim(vec_identity, vl)
            offset = 1
            while offset < vl:
                y = permutation.vslideup_vx(m, ident_vl, acc, offset, vl)
                acc = scan_vv(m, acc, y, vl)
                m.inner_overhead(kernel)
                offset <<= 1
            acc = scan_vx(m, acc, carry, vl)
        loadstore.vse(m, dst, acc, vl)
        if group.scan_op is not None:
            carry = dst[vl - 1]
            m.scalar(2)  # carry reload: address computation + lw
        head += vl
        dst += vl
        n -= vl
        m.strip_overhead(kernel, group.n_arrays)
        if alloc.has_spills:
            steps = inner_scan_steps(vl) if group.scan_op is not None else 0
            m.count(Cat.SPILL, alloc.strip_cost(steps))


#: Scan operator name -> elementwise kernel with the same vv/vx intrinsics.
_SCAN_EW = {
    "plus": "p_add", "max": "p_max", "min": "p_min",
    "or": "p_or", "and": "p_and", "xor": "p_xor",
}


# ---------------------------------------------------------------------------
# fast group execution (NumPy semantics + closed-form counters)
# ---------------------------------------------------------------------------

def charge_group(m, group: FusedGroup) -> None:
    """Closed-form per-category counts of :func:`run_group_strict` —
    depends only on the vl sequence, never on the data. The arithmetic
    lives in :func:`~repro.engine.specialize.group_charge_items` so
    specialization can cache its result."""
    for cat, k in group_charge_items(m, group):
        m.count(cat, k)


def run_group_fast(svm, plan: Plan, group: FusedGroup) -> None:
    """NumPy execution of one fused group + closed-form counters."""
    n = int(group.n)
    if n:
        dtype = np.dtype(group.dtype)
        acc = np.array(plan.buffers[group.head_src].array.ptr.view(n), copy=True)
        for lane in group.lane_ops:
            if lane.kind == "vx":
                _UFUNC_VX[lane.op](acc, _wrap(resolve_scalar(lane.scalar), dtype), out=acc)
            elif lane.kind == "vv":
                operand = plan.buffers[lane.operand].array.ptr.view(n)
                _UFUNC_VX[lane.op](acc, operand, out=acc)
            elif lane.kind == "cmp_vx":
                acc = _NP_CMP[lane.op](
                    acc, _wrap(resolve_scalar(lane.scalar), dtype)
                ).astype(dtype)
            elif lane.kind == "cmp_vv":
                operand = plan.buffers[lane.operand].array.ptr.view(n)
                acc = _NP_CMP[lane.op](acc, operand).astype(dtype)
            else:
                raise EngineError(f"unknown lane kind {lane.kind!r}")
        if group.scan_op is not None:
            get_operator(group.scan_op).ufunc.accumulate(acc, out=acc)
        plan.buffers[group.dst].array.ptr.view(n)[:] = acc
    charge_group(svm.machine, group)


# ---------------------------------------------------------------------------
# plan execution + the Engine facade
# ---------------------------------------------------------------------------

def execute(svm, plan: Plan, fused: FusedPlan, backend: str = "interp") -> None:
    """Run a fused plan's units in program order against ``svm``.

    ``backend`` selects how specialized fused groups run on the fast
    path: ``"interp"`` replays the :class:`LaneStep` chain through
    :func:`run_specialized_fast`; ``"codegen"`` calls the generated
    kernels of ``fused.compiled`` (bit- and counter-identical — see
    :mod:`repro.engine.codegen`). Everything else is backend-blind:
    strict mode, opaque/eager units, and unspecialized plans always
    take the interpreter paths, so ``backend="codegen"`` degrades
    automatically instead of failing.

    ``"native"`` / ``"native-speed"`` run the whole plan as one
    compiled C call (:mod:`repro.engine.native`) when the plan lowers,
    a toolchain is present, and the execution is all-fast; otherwise
    they degrade to exactly the codegen tier. ``"native"`` keeps the
    counter contract by replaying its *first* execution of each plan
    through codegen while recording the counter delta, then charging
    that delta on every native run; ``"native-speed"`` skips counter
    bookkeeping entirely (results-identical only). Profiled runs
    (``svm.profiler``) always take the codegen tier so spans stay
    per-group.

    With a profiler installed each fused group gets its own span
    (``fused_scan``/``fused_ew`` with {n, nodes, path, backend}
    metadata); non-fused units replay through the instrumented SVM
    methods, so they show up under their primitive names as in eager
    mode.
    """
    col = getattr(svm.machine, "collector", None)
    if backend in NATIVE_BACKENDS:
        native = native_state(svm, plan, fused) if col is None else None
        speed = backend == "native-speed"
        backend = "codegen"  # the fallback (and warm-up) tier
        if native is not None and svm._fast(native.min_n):
            if speed:
                native.run(svm, plan)
                return
            if native.charge_items is None:
                # first counters-mode execution: replay through codegen
                # and record the closed-form per-category delta (sound
                # because the all-fast gate makes charges data-blind)
                before = svm.machine.counters.snapshot()
                _execute_units(svm, plan, fused, backend, col)
                delta = svm.machine.counters.snapshot() - before
                native.charge_items = tuple(
                    (cat, k) for cat, k in delta.by_category.items() if k
                )
                return
            native.run(svm, plan)
            svm.machine.counters.add_many(native.charge_items)
            return
    _execute_units(svm, plan, fused, backend, col)


def _execute_units(svm, plan: Plan, fused: FusedPlan, backend: str,
                   col) -> None:
    """The Python-tier unit loop (interp/codegen paths)."""
    specials = fused.specialized
    compiled = fused.compiled if backend == "codegen" else None
    if (
        compiled is not None
        and col is None
        and compiled.plan_fn is not None
        and svm._fast(compiled.min_n)
    ):
        # whole-plan flat kernel: every unit is a generated group (or a
        # FREE), and the fast path applies to all of them — skip the
        # unit loop entirely (profiled runs keep per-group spans)
        compiled.plan_fn(svm, plan)
        return
    for unit in fused.units:
        if isinstance(unit, GroupSpec):
            sg = specials.get(unit) if specials is not None else None
            if sg is not None and svm._fast(sg.n):
                # pre-compiled fast path: no materialization, no lookups
                cg = compiled.groups.get(unit) if compiled is not None else None
                if col is not None:
                    ctx = col.span(sg.kernel, n=sg.n,
                                   nodes=len(unit.node_indices), path="fast",
                                   backend="codegen" if cg is not None
                                   else "interp")
                else:
                    ctx = nullcontext()
                with ctx:
                    if cg is not None:
                        cg.fn(svm, plan.nodes, plan.buffers)
                    else:
                        run_specialized_fast(svm, plan, sg)
                continue
            group = materialize(plan, unit)
            fast = svm._fast(group.n)
            if col is not None:
                name = "fused_scan" if group.scan_op is not None else "fused_ew"
                ctx = col.span(name, n=group.n, nodes=len(unit.node_indices),
                               path="fast" if fast else "strict")
            else:
                ctx = nullcontext()
            with ctx:
                if fast:
                    run_group_fast(svm, plan, group)
                else:
                    run_group_strict(svm, plan, group)
        else:
            run_node_eager(svm, plan, plan.nodes[unit])


def resolve_backend(backend: str | None) -> str:
    """Validate an explicit backend or derive the default from the
    environment (``REPRO_BACKEND`` via :mod:`repro.config`, read at
    call time) falling back to codegen. ``BACKENDS`` and
    ``DEFAULT_BACKEND`` are canonical in :mod:`repro.config` and
    re-exported here for the execution layer."""
    if backend is None:
        backend = env_backend() or DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise EngineError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    return backend


class Engine:
    """Owns the plan cache and runs captured plans for one SVM context.

    ``backend`` picks the fast-path execution strategy for fused groups
    (see :func:`execute`); ``store`` is the optional persistent
    :class:`~repro.engine.cache.PlanStore` consulted between the
    in-memory cache and a full compile (default: enabled iff
    ``REPRO_CACHE_DIR`` is set).
    """

    def __init__(self, svm, cache: PlanCache | None = None, *,
                 backend: str | None = None, store=None) -> None:
        self.svm = svm
        self.cache = cache if cache is not None else PlanCache()
        self.backend = resolve_backend(backend)
        self.store = store if store is not None else store_from_env()
        #: Most recent (plan, fused plan) pair — used by ``repro fuse``.
        self.last_plan: Plan | None = None
        self.last_fused: FusedPlan | None = None

    def plan_key(self, plan: Plan) -> tuple:
        m = self.svm.machine
        return plan.signature(m.vlen, m.codegen.name)

    def compile_plan(self, plan: Plan) -> FusedPlan:
        """Fuse + specialize + generate code for ``plan`` (a cache
        miss's work), with one ``plan.compile`` span when profiling."""
        col = getattr(self.svm.machine, "collector", None)
        t0 = time.perf_counter()
        ctx = col.span("plan.compile", nodes=len(plan.nodes)) \
            if col is not None else nullcontext()
        with ctx:
            fused = fuse_plan(plan)
            specialize_plan(plan, fused, self.svm.machine)
            fused.compiled = compile_fused(plan, fused)
        if col is not None:
            groups = len(fused.compiled.group_names) if fused.compiled else 0
            col.codegen_event(groups, time.perf_counter() - t0)
        return fused

    def fused_for(self, plan: Plan) -> FusedPlan:
        """The fusion recipe for ``plan``, through the cache hierarchy:
        in-memory LRU, then the persistent store (when enabled), then a
        full compile (whose result feeds both).

        When the context was built with ``tune=``, the tuning policy is
        consulted first — it may retag the plan's LMUL to the learned
        optimum for this (plan fingerprint, n-bucket) *before* the key
        is computed, so the retagged plan shares cache entries with an
        SVM pinned to the chosen config. The lookup is memoized inside
        the policy; on the warm path it is one dict probe.
        """
        tuner = getattr(self.svm, "_tuner", None)
        if tuner is not None:
            policy = tuner()
            if policy is not None:
                policy.apply(plan, self.svm)
        key = self.plan_key(plan)
        fused = self.cache.get(key)
        hit = fused is not None
        source = "memory"
        if not hit and self.store is not None:
            fused = self.store.load(key)
            if fused is not None:
                # warm disk entry: skip capture-side work entirely and
                # promote into the in-memory cache
                hit = True
                source = "disk"
                self.cache.note_disk_hit()
                self.cache.put(key, fused)
        if not hit:
            fused = self.compile_plan(plan)
            self.cache.put(key, fused)
            if self.backend in NATIVE_BACKENDS:
                # lower after the put (so concurrent workers hit the
                # warm entry immediately) but before the save, so the
                # C source persists in the plan store next to the
                # Python kernels; codegen-backend processes never pay
                # for this, and a disk entry written by one of them
                # lowers lazily on first native execution instead
                fused.native = lower_plan(plan, fused) or "unavailable"
            if self.store is not None:
                self.store.save(key, fused)
        note_plan_cache(source if hit else "compile")
        col = getattr(self.svm.machine, "collector", None)
        if col is not None:
            col.plan_cache_event(hit, self.cache,
                                 source=source if hit else "none")
        return fused

    def run(self, plan: Plan, fuse: bool = True) -> FusedPlan:
        """Execute ``plan``; with ``fuse=False`` every node replays
        eagerly (bit- and counter-identical to not using the engine)."""
        if fuse:
            fused = self.fused_for(plan)
        else:
            fused = FusedPlan(units=list(range(len(plan.nodes))))
        execute(self.svm, plan, fused, backend=self.backend)
        self.last_plan = plan
        self.last_fused = fused
        return fused

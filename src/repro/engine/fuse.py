"""Optimization passes over a captured :class:`~repro.engine.ir.Plan`.

Two passes run, in order:

1. **Dead-temp elimination** — a backward liveness walk deletes pure
   nodes whose destination is a recorder-allocated temp buffer that is
   freed inside the plan without any intervening read (the write can
   never be observed).

2. **Strip fusion** — a forward greedy pass merges runs of compatible
   nodes into :class:`GroupSpec` units executed as a *single* strip
   loop: one ``vsetvl``, one load of the accumulator, every lane
   operation applied in registers, one store. The intermediate
   load/store round trip (and its ``vsetvl``) that eager execution
   pays per member node per strip disappears.

Fusion legality
---------------
A node may join the open group (destination buffer ``D``) iff:

* it is a fusable kind (in-place elementwise, flag compare, get_flags,
  or an inclusive scan as the *terminal* member);
* it targets ``D`` with the same element width and the same LMUL —
  one strip loop has one vtype;
* it does not read ``D`` *from memory* after the accumulator has
  diverged from memory (a vector operand equal to ``D`` is legal only
  as the very first lane operation of a plain elementwise group;
  a compare/get_flags head reading a different source closes the
  group first, because the store of the accumulated value must land
  before memory is re-read);
* fusing does not spill where eager execution would not: the fused
  kernel's register profile (accumulator + one operand slot + constant
  vectors, plus the scan kernel's live values when a scan tail is
  attached) must spill exactly the values the eager scan would —
  otherwise the group is not extended (this is what keeps LMUL=8
  vector-operand chains out of scan tails, preserving the
  "fused never increases any counter" invariant).

Groups that end up with a single member and no scan tail are demoted
back to eager nodes — a fused loop of one op has no fewer memory
operations than the eager kernel, and demotion keeps its counters
*exactly* equal to the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rvv.allocation import (
    PLUS_SCAN_PROFILE,
    RegisterProfile,
    ValueUse,
    plan_allocation,
)
from ..rvv.types import LMUL, sew_for_dtype
from ..svm.opspec import LANE_RECIPES
from .ir import Buf, Kind, OpNode, Plan, PURE_KINDS

__all__ = [
    "LaneOp",
    "FusedGroup",
    "GroupSpec",
    "FusedPlan",
    "fuse",
    "dead_temp_elimination",
    "group_profile",
    "scan_fusion_legal",
]

#: Codegen-model kernel names of the fused loops (not in the PAPER
#: calibration tables, so they take the default fitted overheads; the
#: IDEAL preset derives them structurally from the array count).
KERNEL_EW = "fused_ew"
KERNEL_SCAN = "fused_scan"

#: Kinds that may open or extend a fused group — exactly the kinds the
#: :mod:`repro.svm.opspec` registry publishes a lane recipe for.
FUSABLE_KINDS = frozenset(Kind(k) for k in LANE_RECIPES)


@dataclass(frozen=True)
class LaneOp:
    """One in-register operation of a fused strip loop.

    ``kind`` ∈ {"vx", "vv", "cmp_vx", "cmp_vv"}; ``op`` is the
    elementwise kernel name ("p_add", ...) or the compare relation
    ("lt", "ge", ...); ``operand`` is the buffer id loaded for vector
    forms (None for scalar forms and for compares applied directly to
    the accumulator); ``scalar`` is an int or ScalarFuture.
    """

    kind: str
    op: str
    operand: int | None = None
    scalar: object = None

    @property
    def loads(self) -> int:
        return 1 if self.operand is not None else 0

    @property
    def varith(self) -> int:
        # every lane op lands exactly one arithmetic instruction: the
        # elementwise op itself, or the vmerge materializing 0/1 flags
        return 1

    @property
    def vmask(self) -> int:
        if self.kind == "cmp_vx":
            # vmsgeu does not exist: "ge" is vmsltu + vmnot (2 mask ops)
            return 2 if self.op == "ge" else 1
        if self.kind == "cmp_vv":
            return 1
        return 0


def _node_lanes(node: OpNode) -> list[LaneOp]:
    """The lane-op recipe a node contributes to a fused loop, derived
    from the registry's :data:`~repro.svm.opspec.LANE_RECIPES` (e.g.
    get_flags expands to ``(src >> bit) & 1`` — two register ops once
    the value is loaded)."""
    recipe = LANE_RECIPES.get(node.kind.value)
    if recipe is None:
        raise AssertionError(f"no lane recipe for {node.kind}")
    lanes: list[LaneOp] = []
    for lane_kind, op_override, const in recipe:
        op = op_override if op_override is not None else node.op
        if lane_kind in ("vv", "cmp_vv"):
            lanes.append(LaneOp(lane_kind, op, operand=node.operand))
        else:
            scalar = const if const is not None else node.scalar
            lanes.append(LaneOp(lane_kind, op, scalar=scalar))
    return lanes


@dataclass
class FusedGroup:
    """A materialized fused strip loop, bound to one plan's buffers."""

    dst: int
    head_src: int
    lane_ops: list[LaneOp]
    scan_op: str | None
    lmul: LMUL
    node_indices: tuple[int, ...]
    n: int = 0
    dtype: object = None

    # -- structure census (drives both strict loop and closed form) -------
    @property
    def sew(self):
        return sew_for_dtype(self.dtype)

    @property
    def n_operand_loads(self) -> int:
        return sum(l.loads for l in self.lane_ops)

    @property
    def n_loads(self) -> int:
        """Unit-stride loads per strip: the head plus vector operands."""
        return 1 + self.n_operand_loads

    @property
    def n_arrays(self) -> int:
        """Pointers bumped per strip (drives scalar strip overhead)."""
        return 1 + (1 if self.head_src != self.dst else 0) + self.n_operand_loads

    @property
    def n_varith(self) -> int:
        return sum(l.varith for l in self.lane_ops)

    @property
    def n_mask(self) -> int:
        return sum(l.vmask for l in self.lane_ops)

    @property
    def needs_zero(self) -> bool:
        """Compares merge 1 over a broadcast zero vector (one-time)."""
        return any(l.kind.startswith("cmp") for l in self.lane_ops)

    @property
    def eliminated_roundtrips(self) -> int:
        """Per-strip intermediate store+reload pairs fusion removed
        (the dead intermediate stores of the chain)."""
        return len(self.node_indices) - 1


def group_profile(group: FusedGroup) -> RegisterProfile:
    """Simultaneously-live vector values of the fused loop, for the
    register-pressure model. The accumulator plus (at most) one
    transient operand slot and the compare zero vector; a scan tail
    adds the scan kernel's live set."""
    values: list[ValueUse]
    if group.scan_op is None:
        values = [ValueUse("acc", outer_accesses=3)]
        kernel = KERNEL_EW
        mask_values = 1
    else:
        values = list(PLUS_SCAN_PROFILE.values)
        kernel = KERNEL_SCAN
        mask_values = PLUS_SCAN_PROFILE.mask_values
    if group.n_operand_loads:
        values.append(ValueUse("operand", outer_accesses=2))
    if group.needs_zero:
        values.append(ValueUse("vec_zero_cmp", outer_accesses=1))
    return RegisterProfile(kernel, tuple(values), mask_values=mask_values)


def scan_fusion_legal(group: FusedGroup, lmul: LMUL) -> bool:
    """Attach a scan tail only when the enlarged live set spills exactly
    what the eager scan kernel would spill — never more. (The eager
    elementwise passes being replaced never spill, so equality keeps
    every counter category non-increasing.)"""
    probe = FusedGroup(
        dst=group.dst, head_src=group.head_src, lane_ops=group.lane_ops,
        scan_op="plus", lmul=lmul, node_indices=group.node_indices,
        n=group.n, dtype=group.dtype,
    )
    fused = plan_allocation(group_profile(probe), lmul)
    eager = plan_allocation(PLUS_SCAN_PROFILE, lmul)
    return fused.spilled == eager.spilled


@dataclass(frozen=True)
class GroupSpec:
    """Cacheable, plan-shape-only description of one fused group: the
    member node indices (the last one is the scan tail when ``scan``
    is set). Rebinding to an α-equivalent plan re-derives buffers and
    lane ops from the nodes at these indices."""

    node_indices: tuple[int, ...]
    scan: bool = False


@dataclass
class FusedPlan:
    """The fuser's output: execution units in program order (either a
    raw node index, run eagerly, or a :class:`GroupSpec`), plus the
    node indices dead-temp elimination removed. Contains no buffer
    ids, so a cached instance replays against any plan with the same
    signature."""

    units: list[int | GroupSpec] = field(default_factory=list)
    removed: tuple[int, ...] = ()
    #: ``{GroupSpec: SpecializedGroup}`` attached by
    #: :func:`repro.engine.specialize.specialize_plan` at cache-insert
    #: time; ``None`` until specialized (e.g. ``fuse=False`` replays).
    #: Excluded from equality: a specialization is derived state.
    specialized: dict | None = field(default=None, compare=False, repr=False)
    #: :class:`~repro.engine.codegen.CompiledPlan` attached by
    #: :func:`repro.engine.codegen.compile_fused` at cache-insert time;
    #: ``None`` until compiled (or when there is nothing to compile).
    #: Derived state, like ``specialized``.
    compiled: object | None = field(default=None, compare=False, repr=False)
    #: :class:`~repro.engine.native.NativePlan` attached by
    #: :func:`repro.engine.native.lower_plan` on first native-backend
    #: use (``None`` = not yet attempted, ``"unavailable"`` =
    #: structurally ineligible). Derived state, like ``specialized``.
    native: object | None = field(default=None, compare=False, repr=False)

    @property
    def n_groups(self) -> int:
        return sum(1 for u in self.units if isinstance(u, GroupSpec))

    @property
    def n_fused_nodes(self) -> int:
        return sum(len(u.node_indices) for u in self.units if isinstance(u, GroupSpec))

    def describe(self, plan: Plan) -> str:
        """Human-readable unit listing (the ``repro fuse`` after-dump)."""
        lines = [
            f"fused plan: {len(self.units)} units "
            f"({self.n_groups} fused groups covering {self.n_fused_nodes} nodes, "
            f"{len(self.removed)} dead nodes removed)"
        ]
        for rm in self.removed:
            lines.append(f"  dce  [{rm:>2}] removed (dead temp write)")
        for u in self.units:
            if isinstance(u, GroupSpec):
                g = materialize(plan, u)
                tail = f" ⊕ {g.scan_op}-scan tail" if g.scan_op else ""
                ops = " → ".join(
                    f"{l.op}.{l.kind.split('_')[-1] if l.kind.startswith('cmp') else l.kind}"
                    for l in g.lane_ops
                )
                lines.append(
                    f"  fuse {list(u.node_indices)}: load×{g.n_loads} [{ops}]{tail} "
                    f"store×1 per strip — eliminates {g.eliminated_roundtrips} "
                    f"intermediate load/store round trips per strip"
                )
            else:
                lines.append(f"  keep [{u:>2}] eager")
        return "\n".join(lines)


def materialize(plan: Plan, spec: GroupSpec) -> FusedGroup:
    """Bind a :class:`GroupSpec` to a concrete plan's buffers."""
    nodes = [plan.nodes[i] for i in spec.node_indices]
    body = nodes[:-1] if spec.scan else nodes
    scan_node = nodes[-1] if spec.scan else None
    head = body[0] if body else scan_node
    dst = head.dst
    head_src = head.src if head.src is not None else dst
    lanes: list[LaneOp] = []
    for node in body:
        lanes.extend(_node_lanes(node))
    buf = plan.buffers[dst]
    return FusedGroup(
        dst=dst,
        head_src=head_src,
        lane_ops=lanes,
        scan_op=scan_node.op if scan_node is not None else None,
        lmul=head.lmul,
        node_indices=spec.node_indices,
        n=buf.n,
        dtype=buf.dtype,
    )


# ---------------------------------------------------------------------------
# pass 1: dead-temp elimination
# ---------------------------------------------------------------------------

def dead_temp_elimination(plan: Plan) -> tuple[int, ...]:
    """Indices of pure nodes whose destination is a temp buffer freed
    later in the plan with no intervening read — their writes are
    unobservable. A compare/get_flags with a distinct source *kills*
    its destination (fully overwrites it), which lets whole dead
    chains above the kill fall out too."""
    live: set[int] = set(plan.buffers)  # everything not freed is live-out
    removed: list[int] = []
    for i in range(len(plan.nodes) - 1, -1, -1):
        node = plan.nodes[i]
        if node.kind is Kind.FREE:
            live.discard(node.dst)
            continue
        if (
            node.kind in PURE_KINDS
            and node.dst is not None
            and node.dst not in live
            and plan.buffers[node.dst].temp
        ):
            removed.append(i)
            continue
        if (
            node.kind in (Kind.CMP_VX, Kind.CMP_VV, Kind.GET_FLAGS)
            and node.src != node.dst
        ):
            live.discard(node.dst)
        live |= {b for b in node.buffers_read() if b is not None}
    return tuple(sorted(removed))


# ---------------------------------------------------------------------------
# pass 2: strip fusion
# ---------------------------------------------------------------------------

def _compatible(plan: Plan, group: FusedGroup, node: OpNode) -> bool:
    """Shared vtype check: same element width, same LMUL, same length."""
    buf = plan.buffers[node.dst]
    return (
        node.lmul == group.lmul
        and buf.n == group.n
        and buf.dtype == group.dtype
    )


def _try_extend(plan: Plan, group: FusedGroup, node: OpNode) -> bool:
    """Whether ``node`` may legally join ``group`` (see module doc)."""
    if node.kind not in FUSABLE_KINDS:
        return False
    if node.dst != group.dst or not _compatible(plan, group, node):
        return False
    if node.kind in (Kind.CMP_VX, Kind.CMP_VV, Kind.GET_FLAGS):
        # mid-group, the head load already happened: only compares that
        # apply to the accumulator itself (src == dst) can fuse; a
        # different source needs the pending store flushed first
        if node.src != node.dst:
            return False
    if node.operand is not None and node.operand == group.dst:
        # reading dst from memory is stale once the accumulator holds
        # unstored values; only legal as the very first lane op of a
        # plain elementwise group (acc just loaded, still == memory)
        if group.lane_ops or group.head_src != group.dst:
            return False
    return True


def fuse(plan: Plan) -> FusedPlan:
    """Run both passes and return the fused execution recipe."""
    removed = set(dead_temp_elimination(plan))
    units: list[int | GroupSpec] = []
    open_idx: list[int] = []  # node indices of the group being built
    open_group: FusedGroup | None = None

    def close() -> None:
        nonlocal open_group
        if open_group is None:
            return
        if len(open_idx) == 1 and open_group.scan_op is None:
            units.append(open_idx[0])  # demoted: fusion buys nothing
        else:
            units.append(GroupSpec(tuple(open_idx), scan=open_group.scan_op is not None))
        open_idx.clear()
        open_group = None

    def open_new(i: int, node: OpNode) -> None:
        nonlocal open_group
        buf = plan.buffers[node.dst]
        open_group = FusedGroup(
            dst=node.dst,
            head_src=node.src if node.src is not None else node.dst,
            lane_ops=list(_node_lanes(node)),
            scan_op=None,
            lmul=node.lmul,
            node_indices=(),
            n=buf.n,
            dtype=buf.dtype,
        )
        open_idx.append(i)

    for i, node in enumerate(plan.nodes):
        if i in removed:
            continue
        if node.kind in FUSABLE_KINDS:
            if open_group is not None and _try_extend(plan, open_group, node):
                open_group.lane_ops.extend(_node_lanes(node))
                open_idx.append(i)
            else:
                close()
                if (
                    node.src is not None
                    and node.src != node.dst
                    and plan.buffers[node.src].dtype != plan.buffers[node.dst].dtype
                ):
                    # the eager kernel strip-mines at the *source* SEW;
                    # a fused loop would use the destination's — keep
                    # mixed-width heads eager
                    units.append(i)
                else:
                    open_new(i, node)
            continue
        if node.kind is Kind.SCAN and node.inclusive:
            if (
                open_group is not None
                and node.dst == open_group.dst
                and _compatible(plan, open_group, node)
                and scan_fusion_legal(open_group, node.lmul)
            ):
                open_group.scan_op = node.op
                open_idx.append(i)
                close()  # a scan tail is terminal
            else:
                close()
                units.append(i)  # eager scan: counters match baseline
            continue
        # structured replay (permute/pack/seg_scan/select/...), opaque,
        # free, exclusive scan — never merged into a strip loop
        close()
        units.append(i)
    close()
    return FusedPlan(units=units, removed=tuple(sorted(removed)))

"""Operation-graph IR for the lazy execution engine.

A :class:`Plan` is a straight-line list of :class:`OpNode` records over
a table of :class:`Buffer` handles. Buffers wrap live
:class:`~repro.svm.context.SVMArray` objects — the engine defers
*execution*, not allocation, so capture is cheap and plans always bind
to concrete simulated memory.

Node kinds split into three classes:

* **fusable** kinds (:data:`Kind.EW_VX`, :data:`Kind.EW_VV`,
  :data:`Kind.CMP_VX`, :data:`Kind.CMP_VV`, :data:`Kind.GET_FLAGS`,
  :data:`Kind.SCAN`) carry enough structure for
  :mod:`repro.engine.fuse` to merge them into single strip loops;
* **structured replay** kinds (:data:`Kind.SELECT`,
  :data:`Kind.PERMUTE`, :data:`Kind.BACK_PERMUTE`, :data:`Kind.PACK`,
  :data:`Kind.ENUMERATE`, :data:`Kind.SEG_SCAN`, :data:`Kind.REDUCE`,
  :data:`Kind.SHIFT1UP`, :data:`Kind.COPY`, :data:`Kind.INDEX`) are
  never merged into a strip loop, but their operands are typed buffer
  slots, so dataflow analysis, whole-plan codegen and the batch
  runner's 2D path all see through them — every primitive in the
  :mod:`repro.svm.opspec` registry captures as one of these;
* :data:`Kind.OPAQUE` / :data:`Kind.FREE` replay a recorded
  :class:`~repro.svm.context.SVM` method call verbatim — the escape
  hatch for anything outside the registry.

Data-dependent scalar results (the count returned by ``enumerate`` or
``pack``, the value of ``reduce``) become :class:`ScalarFuture`
placeholders at capture time and are resolved during execution.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import ReproError
from ..rvv.types import LMUL, sew_for_dtype

__all__ = ["Kind", "Buffer", "OpNode", "Plan", "ScalarFuture", "EngineError", "Buf"]


class EngineError(ReproError):
    """An invalid engine operation (unresolved future, bad capture)."""


class ScalarFuture:
    """A scalar produced by a deferred operation (e.g. the survivor
    count of ``pack``), resolved when the plan executes."""

    __slots__ = ("_value", "_resolved", "label")

    def __init__(self, label: str = "scalar") -> None:
        self._value: int = 0
        self._resolved = False
        self.label = label

    def resolve(self, value: int) -> None:
        self._value = int(value)
        self._resolved = True

    @property
    def resolved(self) -> bool:
        return self._resolved

    @property
    def value(self) -> int:
        """The resolved value; raises until the plan has executed."""
        if not self._resolved:
            raise EngineError(
                f"ScalarFuture {self.label!r} read before the plan executed; "
                "futures resolve when the lazy block exits"
            )
        return self._value

    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = self._value if self._resolved else "unresolved"
        return f"ScalarFuture({self.label!r}, {state})"


def resolve_scalar(x) -> int:
    """Resolve an int-or-future operand at execution time."""
    if isinstance(x, ScalarFuture):
        return x.value
    return int(x)


class Kind(enum.Enum):
    """Node kinds understood by the fuser and executor."""

    #: In-place vector-scalar elementwise op: ``dst[i] = dst[i] ∘ x``.
    EW_VX = "ew_vx"
    #: In-place vector-vector elementwise op: ``dst[i] = dst[i] ∘ b[i]``.
    EW_VV = "ew_vv"
    #: Flag compare against a scalar: ``dst[i] = (src[i] ⋈ x)``.
    CMP_VX = "cmp_vx"
    #: Flag compare against a vector: ``dst[i] = (src[i] ⋈ b[i])``.
    CMP_VV = "cmp_vv"
    #: Bit extraction: ``dst[i] = (src[i] >> bit) & 1``.
    GET_FLAGS = "get_flags"
    #: In-place inclusive/exclusive ⊕-scan of ``dst``.
    SCAN = "scan"
    #: Flag merge into ``dst``: ``dst[i] = src[i] where operand[i]``.
    SELECT = "select"
    #: Scatter: ``dst[operand[i]] = src[i]``.
    PERMUTE = "permute"
    #: Gather: ``dst[i] = src[operand[i]]``.
    BACK_PERMUTE = "back_permute"
    #: Stream compaction of ``src`` under flags ``operand`` into
    #: ``dst``; resolves ``future`` with the survivor count.
    PACK = "pack"
    #: Rank positions of ``src`` whose flag equals ``scalar``;
    #: resolves ``future`` with the total count.
    ENUMERATE = "enumerate"
    #: In-place segmented ⊕-scan of ``dst`` under head flags
    #: ``operand``.
    SEG_SCAN = "seg_scan"
    #: Full ⊕-reduction of ``src``; resolves ``future``.
    REDUCE = "reduce"
    #: Whole-array shift: ``dst[0] = scalar``, ``dst[i] = src[i-1]``.
    SHIFT1UP = "shift1up"
    #: Vector memcpy ``dst[:] = src``.
    COPY = "copy"
    #: Index vector: ``dst[i] = i``.
    INDEX = "index"
    #: A recorded SVM method call replayed verbatim at execution.
    OPAQUE = "opaque"
    #: Release a buffer's simulated memory.
    FREE = "free"


#: Kinds whose only effect is writing their dst buffer (no futures, no
#: allocation) — safe to delete when the dst value is provably dead.
PURE_KINDS = frozenset(
    {Kind.EW_VX, Kind.EW_VV, Kind.CMP_VX, Kind.CMP_VV, Kind.GET_FLAGS, Kind.SCAN}
)


@dataclass(frozen=True)
class Buf:
    """Marker wrapping a buffer id inside an opaque node's args."""

    bid: int


@dataclass
class Buffer:
    """One SVM array participating in a plan."""

    bid: int
    n: int
    dtype: np.dtype
    array: Any  # SVMArray (untyped to avoid an import cycle)
    #: Allocated by the recorder inside the lazy block (DCE candidate
    #: once it is also freed inside the plan).
    temp: bool = False

    @property
    def sew(self):
        return sew_for_dtype(self.dtype)


@dataclass
class OpNode:
    """One recorded operation.

    Field usage by kind:

    ============ ===== ===== ======= ======= =====================
    kind         dst   src   operand scalar  extras
    ============ ===== ===== ======= ======= =====================
    EW_VX        ✓     —     —       x       op
    EW_VV        ✓     —     ✓       —       op
    CMP_VX       ✓     ✓     —       x       op = which
    CMP_VV       ✓     ✓     ✓       —       op = which
    GET_FLAGS    ✓     ✓     —       bit     —
    SCAN         ✓     —     —       —       op = ⊕ name, inclusive
    SELECT       ✓(rw) ✓     flags   —       —
    PERMUTE      ✓     ✓     index   —       —
    BACK_PERMUTE ✓     ✓     index   —       —
    PACK         ✓     ✓     flags   —       future = kept
    ENUMERATE    ✓     flags —       set_bit future = count
    SEG_SCAN     ✓(rw) —     flags   —       op = ⊕ name, inclusive
    REDUCE       —     ✓     —       —       op, future = value
    SHIFT1UP     ✓     ✓     —       fill    —
    COPY         ✓     ✓     —       —       —
    INDEX        ✓     —     —       —       —
    OPAQUE       —     —     —       —       method/args/kwargs/future
    FREE         ✓     —     —       —       —
    ============ ===== ===== ======= ======= =====================
    """

    kind: Kind
    op: str = ""
    dst: int | None = None
    src: int | None = None
    operand: int | None = None
    scalar: Any = None  # int | ScalarFuture
    lmul: LMUL = LMUL.M1
    inclusive: bool = True
    method: str = ""
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    future: ScalarFuture | None = None
    #: Index into the method's return tuple holding the future's value
    #: (None means the return value itself).
    future_index: int | None = None

    # -- dataflow ----------------------------------------------------------
    def buffers_read(self) -> set[int]:
        """Buffer ids this node reads *from memory*.

        An in-place elementwise node reads its dst, but that read is
        implicit in the accumulator when fused, so dst membership here
        is what the *eager* kernel touches; the fuser applies its own,
        stricter notion (see :mod:`repro.engine.fuse`).
        """
        reads: set[int] = set()
        if self.kind in (Kind.EW_VX, Kind.EW_VV, Kind.SCAN, Kind.SELECT,
                         Kind.SEG_SCAN):
            reads.add(self.dst)
        if self.src is not None:
            reads.add(self.src)
        if self.operand is not None:
            reads.add(self.operand)
        if self.kind is Kind.OPAQUE:
            for a in self.args:
                if isinstance(a, Buf):
                    reads.add(a.bid)
            for a in self.kwargs.values():
                if isinstance(a, Buf):
                    reads.add(a.bid)
        return reads

    def buffers_written(self) -> set[int]:
        """Buffer ids this node may write."""
        if self.kind is Kind.OPAQUE:
            # conservatively: every buffer argument may be written
            return self.buffers_read()
        if self.kind is Kind.FREE:
            return set()
        return {self.dst} if self.dst is not None else set()


class Plan:
    """A captured straight-line operation graph over SVM buffers."""

    def __init__(self, buffers: dict[int, Buffer], nodes: list[OpNode]) -> None:
        self.buffers = buffers
        self.nodes = nodes

    # -- cache key ---------------------------------------------------------
    def signature(self, vlen: int, codegen: str) -> tuple:
        """A hashable structural key: node shapes with buffers α-renamed
        in first-use order, plus everything planning depends on —
        (per-buffer n and SEW, per-node LMUL, VLEN, codegen preset).
        Scalar *values* are excluded: the same pipeline over different
        constants shares one plan.
        """
        slots: dict[int, int] = {}

        def slot(bid: int | None):
            if bid is None:
                return None
            if bid not in slots:
                slots[bid] = len(slots)
            return slots[bid]

        node_sig = []
        for node in self.nodes:
            if node.kind is Kind.OPAQUE:
                arg_sig = tuple(
                    slot(a.bid) if isinstance(a, Buf) else "·" for a in node.args
                )
                kw_sig = tuple(
                    (k, slot(v.bid) if isinstance(v, Buf) else "·")
                    for k, v in sorted(node.kwargs.items())
                )
                node_sig.append(
                    (node.kind.value, node.method, arg_sig, kw_sig, int(node.lmul))
                )
            else:
                node_sig.append(
                    (
                        node.kind.value,
                        node.op,
                        node.inclusive,
                        slot(node.dst),
                        slot(node.src),
                        slot(node.operand),
                        node.scalar is not None,
                        int(node.lmul),
                    )
                )
        buf_sig = tuple(
            (s, self.buffers[bid].n, self.buffers[bid].dtype.str, self.buffers[bid].temp)
            for bid, s in sorted(slots.items(), key=lambda kv: kv[1])
        )
        return (int(vlen), str(codegen), buf_sig, tuple(node_sig))

    def fingerprint(self) -> str:
        """A stable hex digest identifying the *pipeline*, independent
        of the tuning axes: unlike :meth:`signature` it excludes
        per-node LMUL, per-buffer length, VLEN, and the codegen preset
        — exactly the knobs ``repro tune`` sweeps. Two plans share a
        fingerprint iff they are the same α-renamed node structure over
        buffers of the same dtypes, so one TuningDB entry covers every
        problem size of a pipeline (n enters the policy key as a size
        bucket instead).
        """
        slots: dict[int, int] = {}

        def slot(bid: int | None):
            if bid is None:
                return None
            if bid not in slots:
                slots[bid] = len(slots)
            return slots[bid]

        node_sig = []
        for node in self.nodes:
            if node.kind is Kind.OPAQUE:
                arg_sig = tuple(
                    slot(a.bid) if isinstance(a, Buf) else "·" for a in node.args
                )
                kw_sig = tuple(
                    (k, slot(v.bid) if isinstance(v, Buf) else "·")
                    for k, v in sorted(node.kwargs.items())
                )
                node_sig.append((node.kind.value, node.method, arg_sig, kw_sig))
            else:
                node_sig.append(
                    (
                        node.kind.value,
                        node.op,
                        node.inclusive,
                        slot(node.dst),
                        slot(node.src),
                        slot(node.operand),
                        node.scalar is not None,
                    )
                )
        buf_sig = tuple(
            (s, self.buffers[bid].dtype.str, self.buffers[bid].temp)
            for bid, s in sorted(slots.items(), key=lambda kv: kv[1])
        )
        blob = repr((buf_sig, tuple(node_sig))).encode()
        return hashlib.sha256(blob).hexdigest()

    def max_n(self) -> int:
        """The largest buffer length the plan touches — the problem
        size the tuning policy buckets on."""
        return max((b.n for b in self.buffers.values()), default=0)

    # -- inspection --------------------------------------------------------
    def describe(self) -> str:
        """Human-readable node listing (the ``repro fuse`` dump)."""
        lines = [f"plan: {len(self.nodes)} nodes, {len(self.buffers)} buffers"]
        for i, node in enumerate(self.nodes):
            lines.append(f"  [{i:>2}] {_describe_node(self, node)}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.nodes)


def _bname(plan: Plan, bid: int | None) -> str:
    if bid is None:
        return "?"
    b = plan.buffers[bid]
    tag = "t" if b.temp else "b"
    return f"{tag}{bid}[{b.n}]"


def _describe_node(plan: Plan, node: OpNode) -> str:
    lm = f" lmul={int(node.lmul)}"
    if node.kind is Kind.EW_VX:
        return f"{node.op}.vx   {_bname(plan, node.dst)} ∘= {node.scalar!r}{lm}"
    if node.kind is Kind.EW_VV:
        return f"{node.op}.vv   {_bname(plan, node.dst)} ∘= {_bname(plan, node.operand)}{lm}"
    if node.kind is Kind.CMP_VX:
        return (f"p_{node.op}.vx   {_bname(plan, node.dst)} = "
                f"({_bname(plan, node.src)} {node.op} {node.scalar!r}){lm}")
    if node.kind is Kind.CMP_VV:
        return (f"p_{node.op}.vv   {_bname(plan, node.dst)} = "
                f"({_bname(plan, node.src)} {node.op} {_bname(plan, node.operand)}){lm}")
    if node.kind is Kind.GET_FLAGS:
        return (f"get_flags  {_bname(plan, node.dst)} = "
                f"({_bname(plan, node.src)} >> {node.scalar!r}) & 1{lm}")
    if node.kind is Kind.SCAN:
        word = "scan" if node.inclusive else "scan_excl"
        return f"{word}({node.op})  {_bname(plan, node.dst)} in place{lm}"
    if node.kind is Kind.SELECT:
        return (f"p_select   {_bname(plan, node.dst)} = {_bname(plan, node.src)}"
                f" where {_bname(plan, node.operand)}{lm}")
    if node.kind is Kind.PERMUTE:
        return (f"permute    {_bname(plan, node.dst)}[{_bname(plan, node.operand)}]"
                f" = {_bname(plan, node.src)}{lm}")
    if node.kind is Kind.BACK_PERMUTE:
        return (f"back_permute {_bname(plan, node.dst)} = "
                f"{_bname(plan, node.src)}[{_bname(plan, node.operand)}]{lm}")
    if node.kind is Kind.PACK:
        return (f"pack       {_bname(plan, node.dst)}, kept = "
                f"pack({_bname(plan, node.src)}, {_bname(plan, node.operand)}){lm}")
    if node.kind is Kind.ENUMERATE:
        return (f"enumerate  {_bname(plan, node.dst)}, count = "
                f"enumerate({_bname(plan, node.src)}, set={node.scalar!r}){lm}")
    if node.kind is Kind.SEG_SCAN:
        word = "seg_scan" if node.inclusive else "seg_scan_excl"
        return (f"{word}({node.op})  {_bname(plan, node.dst)} by "
                f"{_bname(plan, node.operand)} in place{lm}")
    if node.kind is Kind.REDUCE:
        return f"reduce({node.op})  {_bname(plan, node.src)} → scalar{lm}"
    if node.kind is Kind.SHIFT1UP:
        return (f"shift1up   {_bname(plan, node.dst)} = [{node.scalar!r}] + "
                f"{_bname(plan, node.src)}[:-1]{lm}")
    if node.kind is Kind.COPY:
        return f"copy       {_bname(plan, node.dst)} = {_bname(plan, node.src)}{lm}"
    if node.kind is Kind.INDEX:
        return f"index      {_bname(plan, node.dst)} = [0..n){lm}"
    if node.kind is Kind.FREE:
        return f"free       {_bname(plan, node.dst)}"
    argbits = ", ".join(
        _bname(plan, a.bid) if isinstance(a, Buf) else repr(a) for a in node.args
    )
    return f"{node.method}({argbits})  [opaque]{lm}"

"""Native backend tier: whole fused plans lowered to one compiled C
kernel.

The codegen tier (:mod:`repro.engine.codegen`) already collapses a
fused plan into one generated Python function, but that function still
pays a NumPy ufunc dispatch per lane per unit — at small ``n`` the
dispatch dominates the arithmetic by an order of magnitude. This
module closes the gap the way the RVV hardware papers do: lower the
*entire* plan to one C translation unit built from a small macro
vector library, compile it once with the system toolchain
(``cc -O2 -shared -fPIC``), and replay it as a single ``ctypes`` call
into the simulated machine's flat memory.

Two contracts, selected through the backend seam
(``SVM(backend=...)`` / ``REPRO_BACKEND``):

``"native"`` (counters mode)
    Bit- **and counter-identical** to the interpreter. The first
    execution of a plan replays through the codegen tier while the
    counter delta is recorded; every subsequent execution runs the C
    kernel and charges the recorded delta via
    :meth:`~repro.rvv.counters.Counters.add_many`. This is sound
    because the native tier only engages on all-fast executions
    (``svm._fast``), whose charges are closed-form in the plan shape —
    the same property the 2D batch runner already relies on.

``"native-speed"`` (speed mode)
    Results-identical only; counter bookkeeping is compiled out
    entirely. This is the production-traffic contract.

Lowering is **structural**: :func:`lower_plan` consumes only
signature-stable facts (unit kinds, lane recipes from the OpSpec
registry, buffer lengths/dtypes — all part of ``Plan.signature``), so
a :class:`NativePlan` persisted in the :class:`~repro.engine.cache.
PlanStore` envelope rebinds to any α-equivalent plan. Buffer
addresses and runtime scalars (including :class:`ScalarFuture`
operands) are resolved per call through small argument tables; scalar
futures *produced by the plan itself* (reduce / enumerate) are
threaded through the kernel's ``outs`` table so split pipelines
compile whole.

Toolchain absence is never an error: :meth:`NativePlan.ensure`
memoizes the failure and the executor falls back to the codegen tier
(see ``docs/native.md``). ``REPRO_NATIVE_DISABLE=1`` forces that path;
``REPRO_NATIVE_CC`` overrides compiler discovery.

Structural limits (fall back to codegen, also per plan): ``pack``
(data-dependent output length) and opaque replay nodes are not
lowered, dtypes must be unsigned (the wrap-around arithmetic contract
C shares with the fast path), and scatter/gather must be genuinely
out-of-place. Out-of-range permute indices are *skipped* by the C
kernel (bounds-guarded scatter) where the interpreter would raise —
the guard protects host memory, and plans that would raise are outside
the identity contract anyway.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path

import numpy as np

from ..config import native_toolchain_env
from ..svm.operators import get_operator
from ..svm.opspec import LANE_RECIPES
from .fuse import FusedPlan, GroupSpec
from .ir import Kind, Plan, ScalarFuture, resolve_scalar

__all__ = [
    "NATIVE_VERSION",
    "NATIVE_BACKENDS",
    "NATIVE_KINDS",
    "NativePlan",
    "find_compiler",
    "native_available",
    "lower_plan",
    "native_state",
]

#: Bumped on any change to the generated C or the meta layout; part of
#: the artifact digest, so stale ``.so`` files are never rebound.
NATIVE_VERSION = 1

#: The backend names this module serves (counters mode, speed mode).
NATIVE_BACKENDS = ("native", "native-speed")

#: Node kinds the lowering can emit C for. ``pack`` is excluded (its
#: output length is data-dependent, which breaks the fixed-buffer
#: kernel shape — the op declares ``native=False`` in the registry)
#: and so is opaque replay (arbitrary Python). ``tools/check_opspec``
#: gates that every registered op is either covered here or carries an
#: explicit ``native=False`` escape hatch.
NATIVE_KINDS = frozenset(Kind) - {Kind.PACK, Kind.OPAQUE}

_U64 = (1 << 64) - 1

_CTYPE = {1: "uint8_t", 2: "uint16_t", 4: "uint32_t", 8: "uint64_t"}

#: Elementwise kernel name → macro from the header below. The macros
#: do add/sub/mul through uint64_t so uint16/uint8 operands never hit
#: C's signed-int promotion; shifts mask the amount exactly like
#: :func:`repro.svm.fastpath._srl`.
_EW_MACRO = {
    "p_add": "R_ADD", "p_sub": "R_SUB", "p_mul": "R_MUL",
    "p_and": "R_AND", "p_or": "R_OR", "p_xor": "R_XOR",
    "p_max": "R_MAX", "p_min": "R_MIN",
    "p_srl": "R_SRL", "p_sll": "R_SLL", "p_rsub": "R_RSUB",
}

_CMP_C = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "==", "ne": "!="}

#: Scan operator name → macro (same semantics as the ufunc fold).
_SCANOP_MACRO = {
    "plus": "R_ADD", "max": "R_MAX", "min": "R_MIN",
    "or": "R_OR", "and": "R_AND", "xor": "R_XOR",
}

_HEADER = """\
#include <stdint.h>

/* Wrap-around vector macro library. Arithmetic goes through uint64_t
 * so sub-int unsigned types never touch C's signed promotion; shift
 * amounts are masked by the element width, matching the fast path. */
#define R_ADD(T, a, b)  ((T)((uint64_t)(a) + (uint64_t)(b)))
#define R_SUB(T, a, b)  ((T)((uint64_t)(a) - (uint64_t)(b)))
#define R_MUL(T, a, b)  ((T)((uint64_t)(a) * (uint64_t)(b)))
#define R_AND(T, a, b)  ((T)((a) & (b)))
#define R_OR(T, a, b)   ((T)((a) | (b)))
#define R_XOR(T, a, b)  ((T)((a) ^ (b)))
#define R_MAX(T, a, b)  (((a) > (b)) ? (T)(a) : (T)(b))
#define R_MIN(T, a, b)  (((a) < (b)) ? (T)(a) : (T)(b))
#define R_SRL(T, a, b)  ((T)((a) >> ((unsigned)(b) & (8u * (unsigned)sizeof(T) - 1u))))
#define R_SLL(T, a, b)  ((T)((uint64_t)(a) << ((unsigned)(b) & (8u * (unsigned)sizeof(T) - 1u))))
#define R_RSUB(T, a, b) ((T)((uint64_t)(b) - (uint64_t)(a)))

/* Runtime scalar k: a literal (sel[k] < 0) or a scalar future produced
 * earlier in this very plan, read back from the outs table. */
#define SCALAR(k) ((sel)[(k)] < 0 ? (scalars)[(k)] : (outs)[(sel)[(k)]])
"""


class _Ineligible(Exception):
    """Plan cannot be lowered (structural); caller falls back."""


# ---------------------------------------------------------------------------
# toolchain discovery
# ---------------------------------------------------------------------------

_TOOLCHAIN: list = []  # memoized [path-or-None]


def find_compiler() -> str | None:
    """The C compiler to use, or None (memoized). Honors
    ``REPRO_NATIVE_CC`` (explicit compiler) and
    ``REPRO_NATIVE_DISABLE=1`` (force the no-toolchain fallback), both
    read through :func:`repro.config.native_toolchain_env`."""
    if _TOOLCHAIN:
        return _TOOLCHAIN[0]
    cc = None
    override, disabled = native_toolchain_env()
    if not disabled:
        if override:
            cc = override if os.path.exists(override) else shutil.which(override)
        else:
            for cand in ("cc", "gcc", "clang"):
                cc = shutil.which(cand)
                if cc:
                    break
    _TOOLCHAIN.append(cc)
    return cc


def native_available() -> bool:
    """Whether a toolchain is present (cheap after the first call)."""
    return find_compiler() is not None


def reset_native_caches() -> None:
    """Forget the memoized toolchain and compiled-library cache — for
    tests that flip ``REPRO_NATIVE_DISABLE`` within one process."""
    _TOOLCHAIN.clear()
    _SO_CACHE.clear()


# ---------------------------------------------------------------------------
# build + bind cache
# ---------------------------------------------------------------------------

#: source digest → (plan_run, plan_run2d) ctypes functions, or None
#: when the build failed / no toolchain (memoized per process).
_SO_CACHE: dict[str, tuple | None] = {}

_TMP_DIR: list = []  # fallback artifact dir when the SVM has no store


def _default_artifact_dir() -> Path:
    if not _TMP_DIR:
        _TMP_DIR.append(Path(tempfile.mkdtemp(prefix="repro-native-")))
    return _TMP_DIR[0]


def _build(source: str, digest: str, art_dir) -> tuple | None:
    """Compile ``source`` into ``<art_dir>/<digest>.so`` (reusing an
    existing artifact) and bind the two entry points. Returns None on
    any failure — the caller treats that as "tier unavailable"."""
    cc = find_compiler()
    if cc is None:
        return None
    root = Path(art_dir) if art_dir is not None else _default_artifact_dir()
    so = root / f"{digest}.so"
    try:
        if not so.exists():
            root.mkdir(parents=True, exist_ok=True)
            csrc = root / f"{digest}.c"
            csrc.write_text(source)
            tmp = root / f"{digest}.so.tmp{os.getpid()}"
            subprocess.run(
                [cc, "-O2", "-shared", "-fPIC", "-o", str(tmp), str(csrc)],
                check=True, capture_output=True, timeout=120,
            )
            os.replace(tmp, so)
        lib = ctypes.CDLL(str(so))
        run = lib.plan_run
        run.argtypes = [ctypes.c_void_p] * 4
        run.restype = None
        run2d = lib.plan_run2d
        run2d.argtypes = [ctypes.c_void_p] * 4 + [ctypes.c_longlong]
        run2d.restype = None
    except Exception:
        return None
    return (run, run2d)


# ---------------------------------------------------------------------------
# lowering: FusedPlan -> C source + binding metadata
# ---------------------------------------------------------------------------

class _Gen:
    """Accumulates the C body plus the call-time binding tables.

    Buffer/scalar slots are recorded as ``(node_index, field)`` /
    ``node_index`` references — never buffer ids or scalar values — so
    the result rebinds to any α-equivalent plan (exactly the
    :class:`GroupSpec` convention)."""

    def __init__(self, plan: Plan) -> None:
        self.plan = plan
        self.buf_slots: list[tuple[int, str]] = []
        self._slot_of: dict[int, int] = {}
        self.scalar_slots: list[int] = []
        self.future_nodes: list[int] = []
        self.free_nodes: list[int] = []
        self.blocks: list[list[str]] = []

    def slot(self, ni: int, fld: str, want=None) -> int:
        bid = getattr(self.plan.nodes[ni], fld)
        buf = self.plan.buffers[bid]
        if buf.dtype.kind != "u":
            raise _Ineligible(f"non-unsigned buffer dtype {buf.dtype}")
        if want is not None and buf.dtype != want:
            raise _Ineligible("mixed-dtype vector operand")
        s = self._slot_of.get(bid)
        if s is None:
            s = len(self.buf_slots)
            self._slot_of[bid] = s
            self.buf_slots.append((ni, fld))
        return s

    def buf(self, ni: int, fld: str, want=None) -> tuple[str, str, int]:
        """(C name, C type, length) for a node's buffer reference."""
        s = self.slot(ni, fld, want)
        b = self.plan.buffers[getattr(self.plan.nodes[ni], fld)]
        return f"b{s}", _CTYPE[b.dtype.itemsize], int(b.n)

    def scalar(self, ni: int, pre: list[str]) -> str:
        """Hoist runtime scalar ``node.scalar`` into a uint64 local."""
        k = len(self.scalar_slots)
        self.scalar_slots.append(ni)
        pre.append(f"uint64_t x{k} = SCALAR({k});")
        return f"x{k}"

    def out(self, ni: int) -> int:
        j = len(self.future_nodes)
        self.future_nodes.append(ni)
        return j


def _ident(op, dtype) -> str:
    return f"{get_operator(op).identity(dtype)}ULL"


def _emit_group(g: _Gen, spec: GroupSpec) -> None:
    plan = g.plan
    nodes = plan.nodes
    idxs = spec.node_indices
    body = idxs[:-1] if spec.scan else idxs
    head = nodes[body[0]]
    dname, T, n = g.buf(body[0], "dst")
    dtype = plan.buffers[head.dst].dtype
    if head.src is not None:
        hname, _, _ = g.buf(body[0], "src", want=dtype)
    else:
        hname = dname
    pre: list[str] = []
    ops: list[str] = []
    for ni in body:
        node = nodes[ni]
        for lane_kind, op_override, const in LANE_RECIPES[node.kind.value]:
            op = op_override if op_override is not None else node.op
            if lane_kind == "vx":
                if const is not None:
                    x = f"({T}){int(const)}u"
                else:
                    x = f"({T}){g.scalar(ni, pre)}"
                ops.append(f"acc = {_EW_MACRO[op]}({T}, acc, {x});")
            elif lane_kind == "vv":
                oname, _, _ = g.buf(ni, "operand", want=dtype)
                ops.append(f"acc = {_EW_MACRO[op]}({T}, acc, {oname}[i]);")
            elif lane_kind == "cmp_vx":
                x = f"({T}){g.scalar(ni, pre)}"
                ops.append(f"acc = (acc {_CMP_C[op]} {x}) ? ({T})1 : ({T})0;")
            elif lane_kind == "cmp_vv":
                oname, _, _ = g.buf(ni, "operand", want=dtype)
                ops.append(
                    f"acc = (acc {_CMP_C[op]} {oname}[i]) ? ({T})1 : ({T})0;")
            else:  # pragma: no cover - registry and this table move together
                raise _Ineligible(f"unknown lane kind {lane_kind!r}")
    out = [f"{{ /* fused group: nodes {list(idxs)} */"]
    out += [f"    {l}" for l in pre]
    if spec.scan:
        scan_op = get_operator(nodes[idxs[-1]].op)
        if scan_op.name not in _SCANOP_MACRO:
            raise _Ineligible(f"scan operator {scan_op.name!r}")
        out.append(f"    {T} carry = ({T}){_ident(scan_op.name, dtype)};")
    out.append(f"    for (int64_t i = 0; i < {n}; ++i) {{")
    out.append(f"        {T} acc = {hname}[i];")
    out += [f"        {l}" for l in ops]
    if spec.scan:
        m = _SCANOP_MACRO[scan_op.name]
        out.append(f"        carry = {m}({T}, carry, acc);")
        out.append("        acc = carry;")
    out.append(f"        {dname}[i] = acc;")
    out.append("    }")
    out.append("}")
    g.blocks.append(out)


def _emit_node(g: _Gen, ni: int) -> None:
    plan = g.plan
    node = plan.nodes[ni]
    kind = node.kind
    if kind not in NATIVE_KINDS:
        raise _Ineligible(f"kind {kind.value} has no native emitter")

    if kind is Kind.FREE:
        g.free_nodes.append(ni)
        return

    pre: list[str] = []
    out: list[str] = [f"{{ /* {kind.value}: node {ni} */"]

    def loop(n: int, *lines: str) -> None:
        out.append(f"    for (int64_t i = 0; i < {n}; ++i) {{")
        out.extend(f"        {l}" for l in lines)
        out.append("    }")

    if kind is Kind.EW_VX:
        d, T, n = g.buf(ni, "dst")
        x = g.scalar(ni, pre)
        loop(n, f"{d}[i] = {_EW_MACRO[node.op]}({T}, {d}[i], ({T}){x});")
    elif kind is Kind.EW_VV:
        d, T, n = g.buf(ni, "dst")
        o, _, _ = g.buf(ni, "operand", want=plan.buffers[node.dst].dtype)
        loop(n, f"{d}[i] = {_EW_MACRO[node.op]}({T}, {d}[i], {o}[i]);")
    elif kind is Kind.CMP_VX:
        d, TD, n = g.buf(ni, "dst")
        s, TS, _ = g.buf(ni, "src")
        x = g.scalar(ni, pre)
        loop(n, f"{d}[i] = ({s}[i] {_CMP_C[node.op]} ({TS}){x})"
                f" ? ({TD})1 : ({TD})0;")
    elif kind is Kind.CMP_VV:
        d, TD, n = g.buf(ni, "dst")
        s, TS, _ = g.buf(ni, "src")
        o, _, _ = g.buf(ni, "operand", want=plan.buffers[node.src].dtype)
        loop(n, f"{d}[i] = ({s}[i] {_CMP_C[node.op]} {o}[i])"
                f" ? ({TD})1 : ({TD})0;")
    elif kind is Kind.GET_FLAGS:
        d, TD, n = g.buf(ni, "dst")
        s, TS, _ = g.buf(ni, "src")
        x = g.scalar(ni, pre)
        loop(n, f"{d}[i] = ({TD})(R_SRL({TS}, {s}[i], {x}) & ({TS})1);")
    elif kind is Kind.SCAN:
        d, T, n = g.buf(ni, "dst")
        if node.op not in _SCANOP_MACRO:
            raise _Ineligible(f"scan operator {node.op!r}")
        m = _SCANOP_MACRO[node.op]
        dt = plan.buffers[node.dst].dtype
        pre.append(f"{T} acc = ({T}){_ident(node.op, dt)};")
        if node.inclusive:
            loop(n, f"acc = {m}({T}, acc, {d}[i]);", f"{d}[i] = acc;")
        else:
            loop(n, f"{T} t = {d}[i];", f"{d}[i] = acc;",
                 f"acc = {m}({T}, acc, t);")
    elif kind is Kind.SEG_SCAN:
        d, T, n = g.buf(ni, "dst")
        f, _, _ = g.buf(ni, "operand")
        if node.op not in _SCANOP_MACRO:
            raise _Ineligible(f"scan operator {node.op!r}")
        m = _SCANOP_MACRO[node.op]
        dt = plan.buffers[node.dst].dtype
        if node.inclusive:
            pre.append(f"{T} acc = ({T})0;")
            loop(n, f"{T} v = {d}[i];",
                 f"acc = (i == 0 || {f}[i] != 0) ? v : {m}({T}, acc, v);",
                 f"{d}[i] = acc;")
        else:
            pre.append(f"{T} run = ({T})0;")
            loop(n, f"{T} v = {d}[i];",
                 f"if (i == 0 || {f}[i] != 0) "
                 f"{{ {d}[i] = ({T}){_ident(node.op, dt)}; run = v; }}",
                 f"else {{ {d}[i] = run; run = {m}({T}, run, v); }}")
    elif kind is Kind.SELECT:
        d, TD, n = g.buf(ni, "dst")
        s, _, _ = g.buf(ni, "src")
        f, _, _ = g.buf(ni, "operand")
        loop(n, f"if ({f}[i] != 0) {d}[i] = ({TD}){s}[i];")
    elif kind is Kind.PERMUTE:
        if node.dst in (node.src, node.operand):
            raise _Ineligible("in-place scatter")
        d, TD, nd = g.buf(ni, "dst")
        s, _, ns = g.buf(ni, "src")
        x, _, _ = g.buf(ni, "operand")
        # bounds guard: skip out-of-range indices instead of touching
        # host memory (the interpreter would raise IndexError there)
        loop(ns, f"uint64_t t = (uint64_t){x}[i];",
             f"if (t < (uint64_t){nd}) {d}[t] = ({TD}){s}[i];")
    elif kind is Kind.BACK_PERMUTE:
        if node.dst in (node.src, node.operand):
            raise _Ineligible("in-place gather")
        d, TD, nd = g.buf(ni, "dst")
        s, _, ns = g.buf(ni, "src")
        x, _, _ = g.buf(ni, "operand")
        loop(nd, f"uint64_t t = (uint64_t){x}[i];",
             f"if (t < (uint64_t){ns}) {d}[i] = ({TD}){s}[t];")
    elif kind is Kind.ENUMERATE:
        d, TD, n = g.buf(ni, "dst")
        f, TF, _ = g.buf(ni, "src")
        x = g.scalar(ni, pre)
        j = g.out(ni)
        pre.append(f"{TF} want = ({TF})({x} ? 1u : 0u);")
        pre.append("uint64_t cnt = 0;")
        # read the flag before writing the rank: enumerate may run
        # in place over its own flag vector
        loop(n, f"{TF} fv = {f}[i];", f"{d}[i] = ({TD})cnt;",
             "if (fv == want) cnt++;")
        out.append(f"    outs[{j}] = cnt;")
    elif kind is Kind.REDUCE:
        s, TS, n = g.buf(ni, "src")
        if node.op not in _SCANOP_MACRO:
            raise _Ineligible(f"reduce operator {node.op!r}")
        m = _SCANOP_MACRO[node.op]
        dt = plan.buffers[node.src].dtype
        j = g.out(ni)
        pre.append(f"{TS} acc = ({TS}){_ident(node.op, dt)};")
        loop(n, f"acc = {m}({TS}, acc, {s}[i]);")
        out.append(f"    outs[{j}] = (uint64_t)acc;")
    elif kind is Kind.SHIFT1UP:
        d, TD, n = g.buf(ni, "dst")
        s, _, _ = g.buf(ni, "src")
        x = g.scalar(ni, pre)
        # backward: alias-safe when shifting a buffer onto itself
        out.append(f"    for (int64_t i = {n} - 1; i >= 1; --i) "
                   f"{d}[i] = ({TD}){s}[i - 1];")
        out.append(f"    if ({n} > 0) {d}[0] = ({TD}){x};")
    elif kind is Kind.COPY:
        d, TD, n = g.buf(ni, "dst")
        s, _, _ = g.buf(ni, "src")
        loop(n, f"{d}[i] = ({TD}){s}[i];")
    elif kind is Kind.INDEX:
        d, TD, n = g.buf(ni, "dst")
        loop(n, f"{d}[i] = ({TD})(uint64_t)i;")
    else:  # pragma: no cover - NATIVE_KINDS check above is exhaustive
        raise _Ineligible(f"kind {kind.value}")

    out[1:1] = [f"    {l}" for l in pre]
    out.append("}")
    g.blocks.append(out)


def _unit_n(plan: Plan, unit) -> int | None:
    """The element count a unit iterates over (None for FREE)."""
    if isinstance(unit, GroupSpec):
        return int(plan.buffers[plan.nodes[unit.node_indices[0]].dst].n)
    node = plan.nodes[unit]
    if node.kind is Kind.FREE:
        return None
    bid = node.dst if node.dst is not None else node.src
    return int(plan.buffers[bid].n)


def lower_plan(plan: Plan, fused: FusedPlan) -> "NativePlan | None":
    """Lower a fused plan to C source + binding metadata, or None when
    the plan is structurally ineligible. Pure: consumes only
    signature-stable plan facts, touches no toolchain."""
    if not fused.units:
        return None
    g = _Gen(plan)
    lengths: list[int] = []
    try:
        for unit in fused.units:
            if isinstance(unit, GroupSpec):
                _emit_group(g, unit)
            else:
                _emit_node(g, unit)
            n = _unit_n(plan, unit)
            if n is not None:
                lengths.append(n)
    except _Ineligible:
        return None
    if not lengths or not g.buf_slots:
        return None

    nb = len(g.buf_slots)
    nf = len(g.future_nodes)
    decls = []
    strides = []
    for s, (ni, fld) in enumerate(g.buf_slots):
        buf = plan.buffers[getattr(plan.nodes[ni], fld)]
        decls.append(
            f"    {_CTYPE[buf.dtype.itemsize]} *b{s} = "
            f"({_CTYPE[buf.dtype.itemsize]} *)bufs[{s}];")
        strides.append(int(buf.n) * buf.dtype.itemsize)

    src = [f"/* generated by repro.engine.native v{NATIVE_VERSION}"
           " -- do not edit */", _HEADER]
    src.append("static void plan_body(uint8_t **bufs,"
               " const uint64_t *scalars,")
    src.append("                      const int64_t *sel, uint64_t *outs)")
    src.append("{")
    src += decls
    src.append("    (void)scalars; (void)sel; (void)outs;")
    for block in g.blocks:
        src += [f"    {l}" for l in block]
    src.append("}")
    src.append("")
    src.append("void plan_run(uint8_t **bufs, const uint64_t *scalars,")
    src.append("              const int64_t *sel, uint64_t *outs)")
    src.append("{")
    src.append("    plan_body(bufs, scalars, sel, outs);")
    src.append("}")
    src.append("")
    src.append("void plan_run2d(uint8_t **bufs, const uint64_t *scalars,")
    src.append("                const int64_t *sel, uint64_t *outs,"
               " int64_t b)")
    src.append("{")
    src.append(f"    static const int64_t stride[{nb}] = "
               f"{{{', '.join(str(s) for s in strides)}}};")
    src.append(f"    uint8_t *row[{nb}];")
    src.append("    for (int64_t r = 0; r < b; ++r) {")
    src.append(f"        for (int s = 0; s < {nb}; ++s)"
               " row[s] = bufs[s] + r * stride[s];")
    src.append(f"        plan_body(row, scalars, sel, outs + r * {nf});")
    src.append("    }")
    src.append("}")

    meta = {
        "buf_slots": g.buf_slots,
        "scalar_slots": g.scalar_slots,
        "future_nodes": g.future_nodes,
        "free_nodes": g.free_nodes,
        "min_n": min(lengths),
    }
    return NativePlan("\n".join(src) + "\n", meta)


# ---------------------------------------------------------------------------
# the compiled-plan handle
# ---------------------------------------------------------------------------

class NativePlan:
    """One plan's native artifact: the generated C source plus the
    call-time binding tables. Picklable (source + meta only) so it
    persists inside the PlanStore envelope; the ``.so`` binding and
    the recorded counters-mode charge profile are per-process."""

    def __init__(self, source: str, meta: dict) -> None:
        self.source = source
        self.meta = meta
        self.min_n: int = meta["min_n"]
        #: ``((Cat, count), ...)`` recorded on the first counters-mode
        #: execution (a codegen replay); None until then.
        self.charge_items: tuple | None = None
        self.digest = hashlib.sha256(
            (f"v{NATIVE_VERSION}\n" + source).encode()
        ).hexdigest()[:16]
        self._fns: tuple | None = None
        self._local = threading.local()

    def __reduce__(self):
        return (NativePlan, (self.source, self.meta))

    # -- binding -----------------------------------------------------------

    def ensure(self, art_dir=None) -> bool:
        """Bind the compiled entry points, building the artifact on
        first use. False (never an exception) when no toolchain is
        available or the build fails."""
        if self._fns is not None:
            return True
        if self.digest not in _SO_CACHE:
            _SO_CACHE[self.digest] = _build(self.source, self.digest, art_dir)
        self._fns = _SO_CACHE[self.digest]
        return self._fns is not None

    def _scratch(self):
        loc = self._local
        s = getattr(loc, "s", None)
        if s is None:
            meta = self.meta
            nb = max(len(meta["buf_slots"]), 1)
            ns = max(len(meta["scalar_slots"]), 1)
            nf = max(len(meta["future_nodes"]), 1)
            s = (
                (ctypes.c_uint64 * nb)(),
                (ctypes.c_uint64 * ns)(),
                (ctypes.c_int64 * ns)(),
                (ctypes.c_uint64 * nf)(),
            )
            loc.s = s
        return s

    def _fill_scalars(self, nodes, scalars, sel) -> None:
        """Resolve each runtime scalar: a future produced by this very
        plan routes through the kernel's outs table (``sel``) — checked
        *before* ``resolved``, because a replayed plan's futures still
        hold last run's values; anything else resolves to a literal."""
        future_nodes = self.meta["future_nodes"]
        for k, ni in enumerate(self.meta["scalar_slots"]):
            sc = nodes[ni].scalar
            idx = -1
            if isinstance(sc, ScalarFuture):
                for j, fni in enumerate(future_nodes):
                    if nodes[fni].future is sc:
                        idx = j
                        break
            sel[k] = idx
            scalars[k] = 0 if idx >= 0 else resolve_scalar(sc) & _U64

    # -- execution ---------------------------------------------------------

    def _bind(self, loc, plan: Plan):
        """Precompute everything stable for repeated executions of one
        plan *instance*: simulated buffer pointers, constant scalar
        values, the future routing table, the argument addresses. The
        hot replay path then only refreshes what can actually change —
        memory base addresses (the heap may be reallocated between
        runs) and the values of futures produced by *other* plans."""
        nodes = plan.nodes
        buffers = plan.buffers
        bufs, scalars, sel, outs = self._scratch()
        meta = self.meta
        ptrs = [buffers[getattr(nodes[ni], fld)].array.ptr
                for ni, fld in meta["buf_slots"]]
        mems: list = []
        slot_mem = []
        for p in ptrs:
            for mi, m in enumerate(mems):
                if m is p.mem:
                    break
            else:
                mi = len(mems)
                mems.append(p.mem)
            slot_mem.append(mi)
        futures = [nodes[ni].future for ni in meta["future_nodes"]]
        fut_reads = []
        for k, ni in enumerate(meta["scalar_slots"]):
            sc = nodes[ni].scalar
            idx = -1
            if isinstance(sc, ScalarFuture):
                for j, f in enumerate(futures):
                    if f is sc:
                        idx = j
                        break
            sel[k] = idx
            if idx >= 0:
                scalars[k] = 0
            elif isinstance(sc, ScalarFuture):
                # produced by an earlier plan: re-read per run, its
                # producer may have replayed with new data meanwhile
                fut_reads.append((k, sc))
            else:
                scalars[k] = int(sc) & _U64
        free_arrays = [buffers[nodes[ni].dst].array
                       for ni in meta["free_nodes"]]
        args = (ctypes.addressof(bufs), ctypes.addressof(scalars),
                ctypes.addressof(sel), ctypes.addressof(outs))
        loc.bind = (bufs, scalars, outs, ptrs, slot_mem, mems,
                    [None] * len(mems), fut_reads, futures, free_arrays,
                    args)
        loc.plan = plan
        return loc.bind

    def run(self, svm, plan: Plan) -> None:
        """Execute the whole plan as one compiled call against the
        machine's flat memory (zero-copy: buffer pointers are computed
        from the simulated heap addresses)."""
        loc = self._local
        if getattr(loc, "plan", None) is not plan:
            bind = self._bind(loc, plan)
        else:
            bind = loc.bind
        (bufs, scalars, outs, ptrs, slot_mem, mems, mem_bytes,
         fut_reads, futures, free_arrays, args) = bind
        for i, mem in enumerate(mems):
            mb = mem._bytes
            if mb is not mem_bytes[i]:
                # first run, or the heap grew and was reallocated:
                # recompute the host addresses of this memory's slots
                mem_bytes[i] = mb
                base = mb.ctypes.data
                for j, mi in enumerate(slot_mem):
                    if mi == i:
                        bufs[j] = base + ptrs[j].addr
        for k, sc in fut_reads:
            scalars[k] = sc.value & _U64
        self._fns[0](*args)
        for j, f in enumerate(futures):
            f.resolve(int(outs[j]))
        # frees run after the kernel: plans never allocate mid-flight,
        # so deferring them cannot change any address the kernel used
        for arr in free_arrays:
            svm.free(arr)

    def run2d(self, plan: Plan, mats: dict, get, fvals: dict, b: int) -> None:
        """Batched execution for the 2D bucket runner: every buffer is
        materialized as a C-contiguous ``[b, n]`` matrix and the kernel
        loops rows natively; produced futures land in ``fvals`` as
        per-row int64 columns (the ``_scalar_2d`` convention)."""
        nodes = plan.nodes
        bufs, scalars, sel, _ = self._scratch()
        hold = []
        for j, (ni, fld) in enumerate(self.meta["buf_slots"]):
            bid = getattr(nodes[ni], fld)
            mat = get(bid)
            if not mat.flags["C_CONTIGUOUS"]:
                mat = np.ascontiguousarray(mat)
                mats[bid] = mat
            hold.append(mat)
            bufs[j] = mat.ctypes.data
        nf = len(self.meta["future_nodes"])
        outs_mat = np.zeros((b, max(nf, 1)), dtype=np.uint64)
        self._fill_scalars(nodes, scalars, sel)
        self._fns[1](ctypes.addressof(bufs), ctypes.addressof(scalars),
                     ctypes.addressof(sel), outs_mat.ctypes.data, b)
        for j, ni in enumerate(self.meta["future_nodes"]):
            fvals[nodes[ni].future] = outs_mat[:, j].astype(np.int64)


# ---------------------------------------------------------------------------
# dispatch helper (shared by the executor and the batch runner)
# ---------------------------------------------------------------------------

def native_state(svm, plan: Plan, fused: FusedPlan) -> NativePlan | None:
    """The bound-and-ready NativePlan for this fused plan, or None
    (structurally ineligible, no toolchain, or build failure — the
    caller falls back to the codegen tier). Lowers lazily on first use
    and memoizes the outcome on ``fused.native``."""
    state = fused.native
    if state is None:
        state = lower_plan(plan, fused)
        fused.native = state if state is not None else "unavailable"
        state = fused.native
    if not isinstance(state, NativePlan):
        return None
    if state._fns is not None:  # hot path: already bound
        return state
    store = getattr(svm.engine, "store", None)
    art_dir = (Path(store.root) / "native") if store is not None else None
    if not state.ensure(art_dir):
        return None
    return state

"""Eager replay of a single plan node through the SVM surface.

Non-fused units — structured replay kinds (permute, pack, seg_scan,
select, ...), out-of-registry opaque calls, and frees — execute by
calling the recorded :class:`~repro.svm.context.SVM` method verbatim,
so their results *and* counters are exactly what eager execution would
have produced. Each structured kind maps back to its primitive using
the node-field conventions documented on
:class:`~repro.engine.ir.OpNode`; only :data:`~repro.engine.ir.Kind`
``OPAQUE`` still goes through the recorded ``(method, args, kwargs)``
tuple.

:func:`run_node_eager` is a module-level function (not a closure) so
generated whole-plan kernels can reference it as a pre-bound constant
and remain picklable for the persistent plan store.
"""

from __future__ import annotations

from .ir import Buf, EngineError, Kind, OpNode, Plan, resolve_scalar

__all__ = ["run_node_eager"]


def run_node_eager(svm, plan: Plan, node: OpNode) -> None:
    """Execute one node by replaying the SVM call it recorded."""
    arr = lambda bid: plan.buffers[bid].array

    if node.kind is Kind.EW_VX:
        getattr(svm, node.op)(arr(node.dst), resolve_scalar(node.scalar), lmul=node.lmul)
    elif node.kind is Kind.EW_VV:
        getattr(svm, node.op)(arr(node.dst), arr(node.operand), lmul=node.lmul)
    elif node.kind is Kind.CMP_VX:
        getattr(svm, f"p_{node.op}")(
            arr(node.src), resolve_scalar(node.scalar), out=arr(node.dst), lmul=node.lmul
        )
    elif node.kind is Kind.CMP_VV:
        getattr(svm, f"p_{node.op}")(
            arr(node.src), arr(node.operand), out=arr(node.dst), lmul=node.lmul
        )
    elif node.kind is Kind.GET_FLAGS:
        svm.get_flags(arr(node.src), resolve_scalar(node.scalar),
                      out=arr(node.dst), lmul=node.lmul)
    elif node.kind is Kind.SCAN:
        svm.scan(arr(node.dst), node.op, inclusive=node.inclusive, lmul=node.lmul)
    elif node.kind is Kind.SELECT:
        svm.p_select(arr(node.operand), arr(node.src), arr(node.dst), lmul=node.lmul)
    elif node.kind is Kind.SEG_SCAN:
        svm.seg_scan(arr(node.dst), arr(node.operand), node.op,
                     inclusive=node.inclusive, lmul=node.lmul)
    elif node.kind is Kind.PERMUTE:
        svm.permute(arr(node.src), arr(node.operand), out=arr(node.dst), lmul=node.lmul)
    elif node.kind is Kind.BACK_PERMUTE:
        svm.back_permute(arr(node.src), arr(node.operand),
                         out=arr(node.dst), lmul=node.lmul)
    elif node.kind is Kind.PACK:
        _, kept = svm.pack(arr(node.src), arr(node.operand),
                           out=arr(node.dst), lmul=node.lmul)
        node.future.resolve(kept)
    elif node.kind is Kind.ENUMERATE:
        _, count = svm.enumerate(arr(node.src), set_bit=bool(node.scalar),
                                 out=arr(node.dst), lmul=node.lmul)
        node.future.resolve(count)
    elif node.kind is Kind.REDUCE:
        node.future.resolve(svm.reduce(arr(node.src), node.op, lmul=node.lmul))
    elif node.kind is Kind.SHIFT1UP:
        svm.shift1up(arr(node.src), resolve_scalar(node.scalar),
                     out=arr(node.dst), lmul=node.lmul)
    elif node.kind is Kind.COPY:
        svm.copy(arr(node.src), out=arr(node.dst), lmul=node.lmul)
    elif node.kind is Kind.INDEX:
        svm.index_array(plan.buffers[node.dst].n, out=arr(node.dst), lmul=node.lmul)
    elif node.kind is Kind.FREE:
        svm.free(arr(node.dst))
    elif node.kind is Kind.OPAQUE:
        bind = lambda a: arr(a.bid) if isinstance(a, Buf) else (
            resolve_scalar(a) if hasattr(a, "resolve") else a
        )
        args = tuple(bind(a) for a in node.args)
        kwargs = {k: bind(v) for k, v in node.kwargs.items()}
        ret = getattr(svm, node.method)(*args, **kwargs)
        if node.future is not None:
            value = ret if node.future_index is None else ret[node.future_index]
            node.future.resolve(value)
    else:  # pragma: no cover - exhaustive over Kind
        raise EngineError(f"cannot execute node kind {node.kind}")

"""Plan specialization: compile fused groups once, at cache-insert time.

:func:`run_group_fast` re-derives everything on every execution — ufunc
lookups per lane, the operator for the scan tail, strip shape, register
allocation, and the whole closed-form charge profile. All of that is a
function of the plan *signature* (node structure, n, dtype, LMUL) plus
the machine configuration (VLEN, codegen preset) — exactly the plan
cache key. So it can be resolved once when a :class:`FusedPlan` enters
the cache and replayed from bound state afterwards.

A :class:`SpecializedGroup` holds, per fused group:

* a tuple of :class:`LaneStep` with the NumPy callable pre-bound and
  the *node index* (never a buffer id) of the lane's source node —
  buffer ids and scalar values are excluded from the plan signature,
  so α-equivalent plans replaying the same cache entry resolve both
  from their own nodes at execution time;
* the pre-resolved scan-tail ufunc (or ``None``);
* the complete closed-form charge profile as ``(category, count)``
  pairs, precomputed from the same arithmetic as
  :func:`group_charge_items` — charging becomes a handful of
  ``machine.count`` calls with no per-execution math.

Specialization only accelerates the fast path; the strict path always
re-materializes the group and drives the machine intrinsic-by-
intrinsic, keeping the dual-execution contract auditable.

:mod:`repro.batch` reuses the same :class:`LaneStep` chain to evaluate
a group over a 2D ``[batch, n]`` matrix — see
:func:`repro.batch.runner.run_batch`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..rvv.allocation import plan_allocation
from ..rvv.counters import Cat
from ..svm.fastpath import PACK_VARIABLE, _wrap, strip_shape
from ..svm.opspec import LANE_RECIPES, lane_ufunc
from ..svm.operators import get_operator
from ..svm.scan import inner_scan_steps
from .fuse import (
    KERNEL_EW,
    KERNEL_SCAN,
    FusedGroup,
    FusedPlan,
    GroupSpec,
    group_profile,
    materialize,
)
from .ir import EngineError, Kind, Plan, resolve_scalar

__all__ = [
    "LaneStep",
    "SpecializedGroup",
    "group_charge_items",
    "pack_variable_items",
    "specialize_group",
    "specialize_plan",
    "run_specialized_fast",
]


@dataclass(frozen=True)
class LaneStep:
    """One pre-bound lane op of a specialized group.

    ``fn`` is the NumPy callable (``_UFUNC_VX`` entry for vx/vv lanes,
    ``_NP_CMP`` entry for compares). ``node_index`` locates the node
    that supplies the runtime scalar (vx) or operand buffer (vv) in
    whatever plan is executing. ``const`` overrides the node's scalar
    for structural literals (get_flags' trailing ``& 1``).
    """

    kind: str  # "vx" | "vv" | "cmp_vx" | "cmp_vv"
    fn: object
    node_index: int
    const: int | None = None


@dataclass
class SpecializedGroup:
    """A fused group compiled to bound callables + precharged counts."""

    spec: GroupSpec
    steps: tuple[LaneStep, ...]
    scan_ufunc: np.ufunc | None
    n: int
    dtype: np.dtype
    kernel: str
    charge: tuple[tuple[Cat, int], ...]


def group_charge_items(m, group: FusedGroup) -> tuple[tuple[Cat, int], ...]:
    """The closed-form per-category counts of ``run_group_strict`` as
    ``(category, count)`` pairs — same arithmetic as the historical
    ``charge_group`` body, but collected instead of charged so the
    result can be cached and replayed.

    Depends only on the vl sequence (n, VLEN, SEW, LMUL) and the
    codegen preset, never on the data.
    """
    sew = group.sew
    lmul = group.lmul
    scan = group.scan_op is not None
    kernel = KERNEL_SCAN if scan else KERNEL_EW
    cg = m.codegen
    vlmax = m.vlmax(sew, lmul)
    full, rem = strip_shape(group.n, vlmax)
    n_strips = full + (1 if rem else 0)
    alloc = plan_allocation(group_profile(group), lmul)

    items: dict[Cat, int] = {}

    def add(cat: Cat, k: int) -> None:
        if k:
            items[cat] = items.get(cat, 0) + k

    add(Cat.SCALAR, cg.prologue(kernel))
    if alloc.has_spills:
        spill = alloc.frame_setup
        if scan:
            spill += full * alloc.strip_cost(inner_scan_steps(vlmax))
            if rem:
                spill += alloc.strip_cost(inner_scan_steps(rem))
        else:
            spill += n_strips * alloc.strip_cost(0)
        add(Cat.SPILL, spill)
    # one-time constant setup
    if scan or group.needs_zero:
        add(Cat.VCONFIG, 1)
        add(Cat.VPERM, ((1 if scan else 0) + (1 if group.needs_zero else 0)) * cg.op_cost())
    # per strip
    add(Cat.VCONFIG, n_strips)
    add(Cat.VMEM, n_strips * (group.n_loads + 1))
    if group.n_varith:
        add(Cat.VARITH, n_strips * group.n_varith * cg.op_cost())
    if group.n_mask:
        add(Cat.VMASK, n_strips * group.n_mask * cg.op_cost())
    if scan:
        total_steps = full * inner_scan_steps(vlmax) + inner_scan_steps(rem)
        add(Cat.VPERM, total_steps * cg.op_cost(dest_undisturbed=True))
        add(Cat.VARITH, total_steps * cg.op_cost())
        add(Cat.SCALAR, total_steps * cg.inner_overhead(kernel))
        add(Cat.VARITH, n_strips * cg.op_cost())  # carry apply
        add(Cat.SCALAR, n_strips * 2)  # carry reload
    add(Cat.SCALAR, n_strips * cg.strip_overhead(kernel, group.n_arrays))
    return tuple(items.items())


def pack_variable_items(sws: int) -> tuple[tuple[Cat, int], ...]:
    """Pack's data-dependent charge for one row as ``(category, count)``
    pairs, given that row's strips-with-survivors count.

    The complement of :func:`group_charge_items`: every other term in
    pack's profile is a function of (n, VLEN, SEW, LMUL) alone and is
    already covered by the closed-form delta; only these items vary
    between rows of a batch. The weights come from
    :data:`repro.svm.fastpath.PACK_VARIABLE` — the same constant
    :func:`~repro.svm.fastpath.fast_pack` charges with — so the eager
    and ragged tiers cannot drift."""
    sws = int(sws)
    return tuple((cat, weight * sws) for cat, weight in PACK_VARIABLE)


def _node_steps(node, index: int) -> list[LaneStep]:
    """Mirror of ``fuse._node_lanes`` with callables pre-bound — both
    derive from the registry's lane recipes, so a node's strip lanes
    and their NumPy kernels come from one declaration. A ``const`` in
    the recipe is structural (get_flags' trailing ``& 1``); a ``None``
    const defers to the node's scalar at run time (the shift bit)."""
    recipe = LANE_RECIPES.get(node.kind.value)
    if recipe is None:
        raise EngineError(f"no specialized lane recipe for {node.kind}")
    return [
        LaneStep(lane_kind,
                 lane_ufunc(lane_kind, op if op is not None else node.op),
                 index, const=const)
        for lane_kind, op, const in recipe
    ]


def specialize_group(plan: Plan, spec: GroupSpec, machine) -> SpecializedGroup:
    """Compile one group spec against the machine configuration."""
    group = materialize(plan, spec)
    nodes = [plan.nodes[i] for i in spec.node_indices]
    body = list(zip(nodes[:-1], spec.node_indices[:-1])) if spec.scan \
        else list(zip(nodes, spec.node_indices))
    steps: list[LaneStep] = []
    for node, index in body:
        steps.extend(_node_steps(node, index))
    scan_ufunc = get_operator(group.scan_op).ufunc if group.scan_op is not None else None
    return SpecializedGroup(
        spec=spec,
        steps=tuple(steps),
        scan_ufunc=scan_ufunc,
        n=int(group.n),
        dtype=np.dtype(group.dtype),
        kernel=KERNEL_SCAN if group.scan_op is not None else KERNEL_EW,
        charge=group_charge_items(machine, group),
    )


def specialize_plan(plan: Plan, fused: FusedPlan, machine) -> None:
    """Attach a ``{GroupSpec: SpecializedGroup}`` map to ``fused``.

    Called once per cache insert; cache hits replay the bound state.
    """
    specials = {
        unit: specialize_group(plan, unit, machine)
        for unit in fused.units
        if isinstance(unit, GroupSpec)
    }
    fused.specialized = specials or None


def run_specialized_fast(svm, plan: Plan, sg: SpecializedGroup) -> None:
    """Fast-path execution of one pre-compiled group: bit- and
    counter-identical to ``run_group_fast`` on the materialized group,
    minus every per-execution lookup."""
    n = sg.n
    nodes = plan.nodes
    buffers = plan.buffers
    head_node = nodes[sg.spec.node_indices[0]]
    dst = head_node.dst
    if n:
        head = head_node.src if head_node.src is not None else dst
        dtype = sg.dtype
        acc = np.array(buffers[head].array.ptr.view(n), copy=True)
        for st in sg.steps:
            kind = st.kind
            if kind == "vx":
                x = st.const if st.const is not None \
                    else resolve_scalar(nodes[st.node_index].scalar)
                st.fn(acc, _wrap(x, dtype), out=acc)
            elif kind == "vv":
                operand = buffers[nodes[st.node_index].operand].array.ptr.view(n)
                st.fn(acc, operand, out=acc)
            elif kind == "cmp_vx":
                x = resolve_scalar(nodes[st.node_index].scalar)
                acc = st.fn(acc, _wrap(x, dtype)).astype(dtype)
            else:  # cmp_vv
                operand = buffers[nodes[st.node_index].operand].array.ptr.view(n)
                acc = st.fn(acc, operand).astype(dtype)
        if sg.scan_ufunc is not None:
            sg.scan_ufunc.accumulate(acc, out=acc)
        buffers[dst].array.ptr.view(n)[:] = acc
    m = svm.machine
    for cat, k in sg.charge:
        m.count(cat, k)

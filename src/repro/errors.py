"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid machine or kernel configuration was requested.

    Examples: a VLEN that is not a power of two, an unsupported SEW,
    an LMUL outside {1, 2, 4, 8}, or a SEW/LMUL combination whose
    vlmax would be zero.
    """


class RegisterError(ReproError):
    """An illegal vector-register access.

    Raised for out-of-range register numbers, register numbers that are
    not aligned to the current LMUL group size, or overlap violations
    between a mask register and a destination group.
    """


class MemoryError_(ReproError):
    """An out-of-bounds access to simulated memory.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class VectorLengthError(ReproError):
    """An operation was given a ``vl`` outside ``[0, vlmax]`` or operands
    whose lengths disagree with the active ``vl``."""


class MaskError(ReproError):
    """A mask operand has the wrong length or an illegal layout."""


class SegmentError(ReproError):
    """An invalid segment descriptor.

    Examples: head-flags containing values other than 0/1, segment
    lengths that do not sum to the array length, or unsorted
    head-pointers.
    """


class CalibrationError(ReproError):
    """The codegen calibration tables are inconsistent with a kernel's
    declared structure (e.g. a kernel requests a residual that is not
    defined for the active preset)."""


class AllocationError(ReproError):
    """The register-allocation model was given an impossible profile
    (e.g. more simultaneously-live mask registers than exist)."""


class ServeError(ReproError):
    """Base class for errors raised by the :mod:`repro.serve` daemon."""


class ServeOverloadedError(ServeError):
    """The serving daemon's bounded request queue is full.

    Backpressure signal: the request was rejected *before* any work was
    done; the client should retry later or shed load. Carries the
    configured limit so operators can distinguish "queue too small"
    from "traffic spike"."""

    def __init__(self, limit: int) -> None:
        super().__init__(
            f"serve queue full: {limit} requests already in flight"
        )
        self.limit = limit


class ServeProtocolError(ServeError):
    """A malformed or unsupported request reached the serving daemon
    (bad JSON, unknown op or pipeline, non-1-D data, oversized frame).
    """


class ServeClosedError(ServeError):
    """A request arrived while the daemon is draining for shutdown."""

"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid machine or kernel configuration was requested.

    Examples: a VLEN that is not a power of two, an unsupported SEW,
    an LMUL outside {1, 2, 4, 8}, or a SEW/LMUL combination whose
    vlmax would be zero.
    """


class RegisterError(ReproError):
    """An illegal vector-register access.

    Raised for out-of-range register numbers, register numbers that are
    not aligned to the current LMUL group size, or overlap violations
    between a mask register and a destination group.
    """


class MemoryError_(ReproError):
    """An out-of-bounds access to simulated memory.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class VectorLengthError(ReproError):
    """An operation was given a ``vl`` outside ``[0, vlmax]`` or operands
    whose lengths disagree with the active ``vl``."""


class MaskError(ReproError):
    """A mask operand has the wrong length or an illegal layout."""


class SegmentError(ReproError):
    """An invalid segment descriptor.

    Examples: head-flags containing values other than 0/1, segment
    lengths that do not sum to the array length, or unsorted
    head-pointers.
    """


class CalibrationError(ReproError):
    """The codegen calibration tables are inconsistent with a kernel's
    declared structure (e.g. a kernel requests a residual that is not
    defined for the active preset)."""


class AllocationError(ReproError):
    """The register-allocation model was given an impossible profile
    (e.g. more simultaneously-live mask registers than exist)."""

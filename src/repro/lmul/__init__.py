"""Deprecated alias of :mod:`repro.tune` (the LMUL study grew into the
full shape→config tuning subsystem there).

``repro.lmul.advisor`` is now :mod:`repro.tune.advisor` and
``repro.lmul.sweep`` is :mod:`repro.tune.measure`. These shims
re-export the moved names and warn; they will be deleted next cycle
(the PR 9 shim-removal pattern).
"""

import warnings

from ..tune.advisor import LmulPrediction, choose_lmul, predict_scan_count
from ..tune.measure import SweepPoint, measure_kernel, sweep_lmul, sweep_vlen

__all__ = [
    "LmulPrediction",
    "choose_lmul",
    "predict_scan_count",
    "SweepPoint",
    "measure_kernel",
    "sweep_lmul",
    "sweep_vlen",
]

warnings.warn(
    "repro.lmul is deprecated; import from repro.tune instead "
    "(advisor -> repro.tune.advisor, sweep -> repro.tune.measure)",
    DeprecationWarning,
    stacklevel=2,
)

"""The LMUL register-grouping optimization study (§6.3).

* :mod:`~repro.lmul.advisor` — closed-form cost prediction per LMUL
  and the selection heuristic from the paper's conclusion;
* :mod:`~repro.lmul.sweep` — the measurement grids behind Tables 5-7
  and Figure 5.

The register-pressure/spill model itself lives in
:mod:`repro.rvv.allocation` (it models the compiler's allocator, a
codegen-level concern); this package consumes it.
"""

from .advisor import LmulPrediction, choose_lmul, predict_scan_count
from .sweep import SweepPoint, measure_kernel, sweep_lmul, sweep_vlen

__all__ = [
    "LmulPrediction",
    "choose_lmul",
    "predict_scan_count",
    "SweepPoint",
    "measure_kernel",
    "sweep_lmul",
    "sweep_vlen",
]

"""Deprecated alias of :mod:`repro.tune.advisor`."""

import warnings

from ..tune.advisor import (  # noqa: F401
    LmulPrediction,
    choose_lmul,
    predict_scan_count,
)

__all__ = ["LmulPrediction", "choose_lmul", "predict_scan_count"]

warnings.warn(
    "repro.lmul.advisor is deprecated; use repro.tune.advisor",
    DeprecationWarning,
    stacklevel=2,
)

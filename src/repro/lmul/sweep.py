"""Deprecated alias of :mod:`repro.tune.measure`."""

import warnings

from ..tune.measure import (  # noqa: F401
    DEFAULT_FLAG_DENSITY,
    SweepPoint,
    measure_kernel,
    sweep_lmul,
    sweep_vlen,
)

__all__ = ["SweepPoint", "measure_kernel", "sweep_lmul", "sweep_vlen",
           "DEFAULT_FLAG_DENSITY"]

warnings.warn(
    "repro.lmul.sweep is deprecated; use repro.tune.measure",
    DeprecationWarning,
    stacklevel=2,
)

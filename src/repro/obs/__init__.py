"""repro.obs — observability for the SVM stack.

The paper's whole evaluation is *attribution*: which primitive, which
strip, which category the dynamic instructions went to (§6.1-6.3).
This package turns that from per-bench ad-hoc code into a layer:

* :mod:`repro.obs.spans` — hierarchical profiling spans (algorithm →
  primitive → strip) capturing per-span counter deltas, wall time,
  and metadata, with zero cost when no collector is installed;
* :mod:`repro.obs.metrics` — a registry of named counters, gauges,
  and histograms (per-strip vl, strips per call, plan-cache hit
  rate, spill share);
* :mod:`repro.obs.export` — the tree report, JSON export, and
  Chrome-trace (``chrome://tracing`` / Perfetto) export;
* :mod:`repro.obs.tap` — a counter-event tap that fan-outs every
  ``Counters.add`` to subscribers (the mechanism under
  :class:`~repro.rvv.trace.TraceRecorder`);
* :mod:`repro.obs.telemetry` — always-on *service* telemetry for the
  daemon: request trace IDs and context propagation, plus a bounded
  flight recorder of structured events with slowest-request
  exemplars;
* :mod:`repro.obs.exposition` — Prometheus text exposition of the
  registry, with the strict parser CI validates scrapes against.

Entry points: ``SVM(profile=True)`` + ``svm.profiler``, the
:func:`~repro.obs.spans.profile` context manager for a bare machine,
and the ``repro profile`` CLI subcommand. See ``docs/observability.md``.
"""

from .export import render_tree, to_chrome_trace, to_json
from .exposition import ExpositionError, parse_exposition, render_exposition
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Summary
from .spans import (
    NULL_SPAN,
    ProfileCollector,
    Span,
    SpanEvent,
    instrument_method,
    profile,
    span,
)
from .tap import CounterTap, install_tap, uninstall_tap_if_idle
from .telemetry import (
    FlightRecorder,
    Telemetry,
    TraceContext,
    current_trace,
    note_batch_path,
    note_plan_cache,
    trace_scope,
)

__all__ = [
    "ProfileCollector",
    "Span",
    "SpanEvent",
    "profile",
    "span",
    "instrument_method",
    "NULL_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Summary",
    "render_tree",
    "to_json",
    "to_chrome_trace",
    "CounterTap",
    "install_tap",
    "uninstall_tap_if_idle",
    "Telemetry",
    "FlightRecorder",
    "TraceContext",
    "current_trace",
    "trace_scope",
    "note_plan_cache",
    "note_batch_path",
    "render_exposition",
    "parse_exposition",
    "ExpositionError",
]

"""Profile exporters: tree report, JSON, and Chrome-trace JSON.

Three views of one :class:`~repro.obs.spans.ProfileCollector`:

* :func:`render_tree` — a terminal drill-down: every span with its
  inclusive dynamic-instruction total, share of its parent, and
  per-category breakdown. Spans with children grow a synthetic
  ``(self)`` child holding the remainder, so the displayed children
  always sum *exactly* to the parent's delta (the invariant
  ``tests/obs`` verifies).
* :func:`to_json` — the same tree plus metrics and events as plain
  data, for diffing runs or feeding dashboards.
* :func:`to_chrome_trace` — the `Trace Event Format
  <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
  consumed by ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_:
  one complete ("X") event per span with the counter delta in ``args``,
  instant ("i") events for collector events such as plan-cache
  hits/misses, and a counter ("C") track charting cumulative dynamic
  instructions.

All exporters call :meth:`ProfileCollector.finish` first, so the root
span is always closed and up to date.
"""

from __future__ import annotations

from ..rvv.counters import Cat, CounterSnapshot

__all__ = ["render_tree", "to_json", "to_chrome_trace"]

#: Synthetic process/thread ids of the single simulated machine.
_PID = 1
_TID = 1


def _nonzero(delta: CounterSnapshot) -> dict[str, int]:
    return {cat.value: n for cat, n in delta.by_category.items() if n}


def _cat_summary(delta: CounterSnapshot, top: int = 4) -> str:
    """The span's largest categories, compact: ``vmem 38.2% · ...``."""
    total = delta.total
    if not total:
        return ""
    items = sorted(_nonzero(delta).items(), key=lambda kv: -kv[1])
    parts = [f"{name} {100.0 * n / total:.1f}%" for name, n in items[:top]]
    if len(items) > top:
        parts.append(f"+{len(items) - top}")
    return " · ".join(parts)


# ---------------------------------------------------------------------------
# tree report
# ---------------------------------------------------------------------------

def render_tree(collector, max_depth: int | None = None) -> str:
    """Human-readable span tree with per-category attribution."""
    root = collector.finish()
    m = collector.machine
    lines = [
        f"profile: VLEN={m.vlen} codegen={m.codegen.name} — "
        f"{root.total:,} dynamic instructions, {root.wall * 1e3:.2f} ms wall"
    ]
    _render_span(root, lines, prefix="", is_last=True,
                 parent_total=root.total, max_depth=max_depth, is_root=True)
    return "\n".join(lines)


def _fmt_line(label: str, total: int, pct: float, cats: str,
              error: str | None = None) -> str:
    bits = [f"{label}", f"{total:,} instr", f"{pct:5.1f}%"]
    if cats:
        bits.append(f"[{cats}]")
    if error:
        bits.append(f"!! raised {error}")
    return "  ".join(bits)


def _render_span(span, lines: list[str], prefix: str, is_last: bool,
                 parent_total: int, max_depth: int | None,
                 is_root: bool = False) -> None:
    if span.delta is None:  # still open (should not happen post-finish)
        return
    pct = 100.0 * span.total / parent_total if parent_total else 100.0
    if not is_root:
        connector = "└─ " if is_last else "├─ "
        lines.append(prefix + connector
                     + _fmt_line(span.label(), span.total, pct,
                                 _cat_summary(span.delta), span.error))
        child_prefix = prefix + ("   " if is_last else "│  ")
    else:
        child_prefix = ""
    if max_depth is not None and span.depth >= max_depth:
        if span.children:
            lines.append(child_prefix + f"└─ … {len(span.children)} children"
                         f" (below --max-depth)")
        return
    children = [c for c in span.children if c.delta is not None]
    self_delta = span.self_delta() if children else None
    show_self = self_delta is not None and self_delta.total > 0
    for i, child in enumerate(children):
        last = (i == len(children) - 1) and not show_self
        _render_span(child, lines, child_prefix, last, span.total, max_depth)
    if show_self:
        pct_self = 100.0 * self_delta.total / span.total if span.total else 0.0
        lines.append(child_prefix + "└─ "
                     + _fmt_line("(self)", self_delta.total, pct_self,
                                 _cat_summary(self_delta)))


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------

def _span_dict(span) -> dict:
    children = [c for c in span.children if c.delta is not None]
    out = {
        "name": span.name,
        "meta": dict(span.meta),
        "total": span.total,
        "by_category": _nonzero(span.delta),
        "wall_ms": round(span.wall * 1e3, 6),
        "n_strips": span.n_strips,
    }
    if span.error:
        out["error"] = span.error
    if children:
        kids = [_span_dict(c) for c in children]
        self_delta = span.self_delta()
        kids.append({
            "name": "(self)",
            "meta": {},
            "total": self_delta.total,
            "by_category": _nonzero(self_delta),
            "wall_ms": 0.0,
            "n_strips": 0,
        })
        out["children"] = kids
    return out


def to_json(collector) -> dict:
    """The whole profile as plain data: span tree, metrics, events.

    Every span with children carries a trailing ``(self)`` child, so
    ``sum(child["by_category"]) == parent["by_category"]`` holds
    exactly, category by category.
    """
    root = collector.finish()
    m = collector.machine
    return {
        "machine": {"vlen": m.vlen, "codegen": m.codegen.name},
        "profile": _span_dict(root),
        "metrics": collector.metrics.as_dict(),
        "events": [
            {"name": e.name, "ts_ms": round(e.ts * 1e3, 6), "meta": dict(e.meta)}
            for e in collector.events
        ],
    }


# ---------------------------------------------------------------------------
# Chrome trace (chrome://tracing / Perfetto)
# ---------------------------------------------------------------------------

def to_chrome_trace(collector) -> dict:
    """Chrome Trace Event Format JSON for the span timeline.

    Load the serialized output in ``chrome://tracing`` or
    https://ui.perfetto.dev — spans become nested slices on one
    thread track, with the per-category instruction delta in each
    slice's ``args``; collector events appear as instants and the
    cumulative instruction count as a counter track.
    """
    root = collector.finish()
    m = collector.machine
    events: list[dict] = [
        {"ph": "M", "name": "process_name", "pid": _PID, "tid": _TID,
         "args": {"name": f"repro RVVMachine (VLEN={m.vlen}, {m.codegen.name})"}},
        {"ph": "M", "name": "thread_name", "pid": _PID, "tid": _TID,
         "args": {"name": "svm"}},
    ]
    for span in root.walk():
        if span.delta is None:
            continue
        args = {"instructions": span.total, **_nonzero(span.delta)}
        for key, value in span.meta.items():
            args[f"meta.{key}"] = value
        if span.error:
            args["error"] = span.error
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": "strip" if span.strip else "span",
            "ts": round(span.t0 * 1e6, 3),          # microseconds
            "dur": max(round(span.wall * 1e6, 3), 0.0),
            "pid": _PID,
            "tid": _TID,
            "args": args,
        })
        events.append({
            "ph": "C",
            "name": "dynamic instructions",
            "ts": round((span.t0 + span.wall) * 1e6, 3),
            "pid": _PID,
            "tid": _TID,
            "args": {"total": span.end_total},
        })
    for ev in collector.events:
        events.append({
            "ph": "i",
            "name": ev.name,
            "s": "t",                                # thread-scoped instant
            "ts": round(ev.ts * 1e6, 3),
            "pid": _PID,
            "tid": _TID,
            "args": dict(ev.meta),
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "vlen": m.vlen,
            "codegen": m.codegen.name,
            "total_instructions": root.total,
        },
    }

"""Prometheus text exposition of the metrics registry.

:func:`render_exposition` turns a
:class:`~repro.obs.metrics.MetricsRegistry` into the Prometheus text
format (version 0.0.4) so the daemon's ``metrics`` wire request and
``repro serve --metrics-file`` are scrape-ready: dotted metric names
become ``repro_``-prefixed underscore names, labeled families render
one sample per label set, counters get the ``_total`` suffix,
histograms render cumulative ``_bucket{le=...}`` series (the exact
value map of :class:`~repro.obs.metrics.Histogram` maps directly onto
cumulative buckets), and summaries render ``{quantile=...}`` samples
from their deterministic bounded buffer.

:func:`parse_exposition` is the *strict* inverse used by the CI smoke
(:mod:`tools.ci_serve_smoke`) and the test suite: it rejects — rather
than skips — malformed names, unquoted label values, samples without a
preceding ``# TYPE`` line, duplicate samples, non-monotone histogram
buckets, ``+Inf`` buckets that disagree with ``_count``, and summary
quantiles outside [0, 1]. Rendering is deterministic (families and
label sets in sorted order), so two scrapes of an idle daemon are
byte-identical.
"""

from __future__ import annotations

import math
import re

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Summary

__all__ = ["render_exposition", "parse_exposition", "ExpositionError"]

_QUANTILES = ((0.5, 50), (0.9, 90), (0.99, 99))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


class ExpositionError(ValueError):
    """A violation of the text exposition format (strict parser)."""


def sanitize_name(name: str) -> str:
    """Dotted registry name → exposition metric name."""
    flat = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not flat.startswith("repro_"):
        flat = "repro_" + flat
    return flat


def _escape(value) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt_labels(labels: dict, extra: tuple = ()) -> str:
    pairs = [(k, v) for k, v in sorted(labels.items())] + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _fmt_num(value) -> str:
    if value is None:
        return "NaN"
    f = float(value)
    if math.isinf(f):
        return "+Inf" if f > 0 else "-Inf"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def render_exposition(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    for name, cls, samples in registry.families():
        base = sanitize_name(name)
        if cls is Counter:
            full = base if base.endswith("_total") else base + "_total"
            lines.append(f"# TYPE {full} counter")
            for labels, m in samples:
                lines.append(f"{full}{_fmt_labels(labels)} {_fmt_num(m.value)}")
        elif cls is Gauge:
            lines.append(f"# TYPE {base} gauge")
            for labels, m in samples:
                lines.append(f"{base}{_fmt_labels(labels)} {_fmt_num(m.value)}")
        elif cls is Histogram:
            lines.append(f"# TYPE {base} histogram")
            for labels, m in samples:
                cum = 0
                for edge in sorted(m.by_value):
                    cum += m.by_value[edge]
                    le = _fmt_labels(labels, (("le", _fmt_num(edge)),))
                    lines.append(f"{base}_bucket{le} {cum}")
                inf = _fmt_labels(labels, (("le", "+Inf"),))
                lines.append(f"{base}_bucket{inf} {m.count}")
                lines.append(f"{base}_sum{_fmt_labels(labels)} "
                             f"{_fmt_num(m.total)}")
                lines.append(f"{base}_count{_fmt_labels(labels)} {m.count}")
        elif cls is Summary:
            lines.append(f"# TYPE {base} summary")
            for labels, m in samples:
                if m.count:
                    for q, p in _QUANTILES:
                        ql = _fmt_labels(labels, (("quantile", _fmt_num(q)),))
                        lines.append(
                            f"{base}{ql} {_fmt_num(m.percentile(p))}")
                lines.append(f"{base}_sum{_fmt_labels(labels)} "
                             f"{_fmt_num(m.total)}")
                lines.append(f"{base}_count{_fmt_labels(labels)} {m.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# strict parser
# ----------------------------------------------------------------------

def _parse_value(raw: str, where: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise ExpositionError(f"{where}: bad sample value {raw!r}") from None


def _parse_labels(raw: str, where: str) -> dict:
    labels: dict = {}
    pos = 0
    while pos < len(raw):
        m = _LABEL_RE.match(raw, pos)
        if not m:
            raise ExpositionError(f"{where}: malformed label at {raw[pos:]!r}")
        name = m.group("name")
        if name in labels:
            raise ExpositionError(f"{where}: duplicate label {name!r}")
        labels[name] = re.sub(
            r"\\(.)", lambda e: {"n": "\n"}.get(e.group(1), e.group(1)),
            m.group("value"))
        pos = m.end()
        if pos < len(raw):
            if raw[pos] != ",":
                raise ExpositionError(
                    f"{where}: expected ',' between labels at {raw[pos:]!r}")
            pos += 1
    return labels


def _family_of(sample_name: str, types: dict) -> tuple[str, str]:
    """Resolve a sample name to its declared (family, role)."""
    if sample_name in types:
        return sample_name, "value"
    for suffix, role in (("_bucket", "bucket"), ("_sum", "sum"),
                         ("_count", "count")):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in types:
                return base, role
    raise ExpositionError(
        f"sample {sample_name!r} has no preceding # TYPE declaration")


def parse_exposition(text: str) -> dict:
    """Strictly parse exposition text.

    Returns ``{family: {"type": t, "samples": [(name, labels, value)]}}``
    and raises :class:`ExpositionError` on any format violation.
    """
    types: dict[str, str] = {}
    families: dict[str, dict] = {}
    seen: set = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        where = f"line {lineno}"
        if not line:
            continue
        if line != line.strip():
            raise ExpositionError(f"{where}: stray whitespace {line!r}")
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("TYPE", "HELP"):
                raise ExpositionError(f"{where}: malformed comment {line!r}")
            if parts[1] == "TYPE":
                name, mtype = parts[2], parts[3] if len(parts) > 3 else ""
                if not _NAME_RE.match(name):
                    raise ExpositionError(f"{where}: bad metric name {name!r}")
                if mtype not in ("counter", "gauge", "histogram", "summary",
                                 "untyped"):
                    raise ExpositionError(f"{where}: bad type {mtype!r}")
                if name in types:
                    raise ExpositionError(f"{where}: duplicate TYPE {name!r}")
                types[name] = mtype
                families[name] = {"type": mtype, "samples": []}
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ExpositionError(f"{where}: malformed sample {line!r}")
        name = m.group("name")
        labels = _parse_labels(m.group("labels") or "", where)
        for lname in labels:
            if not _LABEL_NAME_RE.match(lname):
                raise ExpositionError(f"{where}: bad label name {lname!r}")
        value = _parse_value(m.group("value"), where)
        family, role = _family_of(name, types)
        mtype = types[family]
        if role != "value" and mtype not in ("histogram", "summary"):
            raise ExpositionError(
                f"{where}: {name!r} suffix invalid for {mtype} {family!r}")
        if role == "bucket":
            if mtype != "histogram":
                raise ExpositionError(
                    f"{where}: _bucket sample for non-histogram {family!r}")
            if "le" not in labels:
                raise ExpositionError(f"{where}: bucket without le label")
        if mtype == "summary" and role == "value" and "quantile" in labels:
            q = float(labels["quantile"])
            if not (0.0 <= q <= 1.0):
                raise ExpositionError(
                    f"{where}: quantile {q} outside [0, 1]")
        if mtype == "counter" and value < 0:
            raise ExpositionError(f"{where}: negative counter {name!r}")
        ident = (name, tuple(sorted(labels.items())))
        if ident in seen:
            raise ExpositionError(f"{where}: duplicate sample {line!r}")
        seen.add(ident)
        families[family]["samples"].append((name, labels, value))

    for family, doc in families.items():
        if doc["type"] != "histogram":
            continue
        by_series: dict[tuple, list] = {}
        counts: dict[tuple, float] = {}
        for name, labels, value in doc["samples"]:
            ident = tuple(sorted((k, v) for k, v in labels.items()
                                 if k != "le"))
            if name.endswith("_bucket"):
                le = labels["le"]
                edge = math.inf if le == "+Inf" else float(le)
                by_series.setdefault(ident, []).append((edge, value))
            elif name.endswith("_count"):
                counts[ident] = value
        for ident, buckets in by_series.items():
            ordered = sorted(buckets)
            values = [v for _, v in ordered]
            if values != sorted(values):
                raise ExpositionError(
                    f"histogram {family!r}: non-monotone buckets {ordered}")
            if not ordered or not math.isinf(ordered[-1][0]):
                raise ExpositionError(
                    f"histogram {family!r}: missing +Inf bucket")
            if ident in counts and ordered[-1][1] != counts[ident]:
                raise ExpositionError(
                    f"histogram {family!r}: +Inf bucket "
                    f"{ordered[-1][1]} != _count {counts[ident]}")
    return families

"""Metrics registry — named counters, gauges, histograms, summaries.

The span tree (:mod:`repro.obs.spans`) answers "where did the
instructions go"; the registry answers the aggregate questions the
benches keep re-deriving by hand: what vl did the strips actually
receive (tail-strip shortening, §3.1), how many strips per primitive
call, how often the engine's plan cache hit, what share of the run was
spill traffic (§6.3). Instrumentation sites reach the registry through
the installed :class:`~repro.obs.spans.ProfileCollector`; nothing here
touches the machine or its counters.

Three properties the serving daemon leans on:

* **Thread safety.** Every mutation (``inc``/``set``/``observe``) and
  every read that touches compound state takes the metric's own lock.
  The daemon's worker-pool threads update one shared registry
  concurrently with the event loop; a lost ``+=`` would silently
  undercount, so updates are exact under contention
  (``tests/obs/test_metrics.py`` hammers this).
* **Labels.** A metric family may be dimensioned by a frozen label
  tuple — ``counter("serve.requests", pipeline="scan", mode="auto")``
  — so service telemetry can attribute per (pipeline, n, dtype, mode)
  the way the paper attributes per (primitive, category). One family
  name maps to one metric type; asking for the same name with a
  different type is an error.
* **merge().** Cross-worker aggregation: every metric type merges a
  peer of the same type into itself, and
  :meth:`MetricsRegistry.merge` folds a whole registry in. Counter
  and Histogram merges are exact; Summary merge keeps *all* retained
  samples of both sides (bounded by #registries × ``max_samples``),
  so merged percentiles are independent of merge order.

All metrics are plain Python objects updated in place — cheap enough
for per-strip observation, queryable as a dict
(:meth:`MetricsRegistry.as_dict`), renderable as a text report
(:meth:`MetricsRegistry.render`), and exportable in Prometheus text
exposition format (:func:`repro.obs.exposition.render_exposition`).
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Gauge", "Histogram", "Summary", "MetricsRegistry"]

#: The frozen, hashable form of a label set: sorted (key, value) pairs.
LabelItems = tuple


def freeze_labels(labels: dict) -> LabelItems:
    """The canonical hashable identity of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (events, cache hits, ...)."""

    __slots__ = ("name", "value", "labels", "_lock")

    def __init__(self, name: str, labels: dict | None = None) -> None:
        self.name = name
        self.value = 0
        self.labels = dict(labels) if labels else {}
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def merge(self, other: "Counter") -> None:
        """Fold a peer counter in (cross-worker aggregation): exact."""
        with self._lock:
            self.value += other.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (cache size, hit rate, spill share, ...)."""

    __slots__ = ("name", "value", "labels", "_lock")

    def __init__(self, name: str, labels: dict | None = None) -> None:
        self.name = name
        self.value = 0
        self.labels = dict(labels) if labels else {}
        self._lock = threading.Lock()

    def set(self, value) -> None:
        with self._lock:
            self.value = value

    def merge(self, other: "Gauge") -> None:
        """Gauges are point-in-time: the merged value is the incoming
        one (merge a fresher snapshot over an older one)."""
        with self._lock:
            self.value = other.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A distribution of observed values.

    Keeps count/sum/min/max plus an exact value→occurrences map — the
    observed domains here (per-strip vl, strips per call) are small and
    discrete, so exact counts beat bucketing; the map degrades to the
    summary statistics if a workload ever observes many distinct
    values (`by_value` stops growing past ``max_distinct``).
    """

    __slots__ = ("name", "count", "total", "min", "max", "by_value",
                 "max_distinct", "labels", "_lock")

    def __init__(self, name: str, max_distinct: int = 256,
                 labels: dict | None = None) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.by_value: dict = {}
        self.max_distinct = max_distinct
        self.labels = dict(labels) if labels else {}
        self._lock = threading.Lock()

    def observe(self, value) -> None:
        with self._lock:
            self._observe(value, 1)

    def _observe(self, value, occurrences: int) -> None:
        self.count += occurrences
        self.total += value * occurrences
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value in self.by_value:
            self.by_value[value] += occurrences
        elif len(self.by_value) < self.max_distinct:
            self.by_value[value] = occurrences

    def merge(self, other: "Histogram") -> None:
        """Fold a peer histogram in. count/sum/min/max merge exactly;
        the value map merges value by value (in sorted order, so two
        merges of the same peers are identical) and respects this
        histogram's ``max_distinct`` cap."""
        with self._lock:
            for value in sorted(other.by_value):
                self._observe(value, other.by_value[value])
            # observations the peer's capped map dropped still count
            uncapped = other.count - sum(other.by_value.values())
            if uncapped:
                self.count += uncapped
                self.total += other.total - sum(
                    v * c for v, c in other.by_value.items())

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "mean": round(self.mean, 4),
                "by_value": {str(k): v for k, v in sorted(self.by_value.items())},
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Histogram({self.name}: count={self.count}, min={self.min},"
                f" max={self.max}, mean={self.mean:.2f})")


class Summary:
    """A distribution of continuous values with exact percentiles.

    :class:`Histogram` fits the discrete domains (per-strip vl, rows
    per flush); latency-style observations are continuous, so p50/p99
    need ranked samples. The buffer is bounded deterministically: when
    it fills, every other sample is dropped and the sampling stride
    doubles — no randomness, so two identical runs report identical
    percentiles. count/sum/min/max always cover *every* observation.

    :meth:`merge` keeps the union of both sides' retained samples as a
    sorted multiset (no re-decimation), so merging W worker summaries
    holds at most ``W × max_samples`` samples and — because multiset
    union is commutative and associative — the merged percentiles do
    not depend on merge order (``tests/obs`` gates this).
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_samples", "_stride", "max_samples", "labels", "_lock")

    def __init__(self, name: str, max_samples: int = 4096,
                 labels: dict | None = None) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._samples: list = []
        self._stride = 1
        self.max_samples = max_samples
        self.labels = dict(labels) if labels else {}
        self._lock = threading.Lock()

    def observe(self, value) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if (self.count - 1) % self._stride == 0:
                self._samples.append(value)
                if len(self._samples) > self.max_samples:
                    self._samples = self._samples[::2]
                    self._stride *= 2

    def merge(self, other: "Summary") -> None:
        """Fold a peer summary in: counts and extrema merge exactly;
        retained samples become the sorted union of both sides."""
        with self._lock:
            self.count += other.count
            self.total += other.total
            if other.min is not None and (self.min is None
                                          or other.min < self.min):
                self.min = other.min
            if other.max is not None and (self.max is None
                                          or other.max > self.max):
                self.max = other.max
            self._samples = sorted(self._samples + other._samples)
            self._stride = max(self._stride, other._stride)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float | None:
        """The p-th percentile (0 < p <= 100) over the retained
        samples, nearest-rank; None before any observation."""
        with self._lock:
            if not self._samples:
                return None
            ranked = sorted(self._samples)
            k = max(0, min(len(ranked) - 1,
                           -(-int(p * len(ranked)) // 100) - 1))
            return ranked[k]

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 6),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Summary({self.name}: count={self.count}, "
                f"p50={self.percentile(50)}, p99={self.percentile(99)})")


def _label_suffix(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{{{inner}}}"


class MetricsRegistry:
    """Get-or-create registry of named (optionally labeled) metrics.

    Names are dotted paths by convention (``engine.plan_cache.hits``,
    ``serve.latency_ms``); asking for an existing name with a different
    metric type is an error — a name means one thing, across every
    label set of the family. Get-or-create is lock-protected, so two
    threads racing to create the same metric observe one object.
    """

    def __init__(self) -> None:
        #: (name, frozen label items) -> metric
        self._metrics: dict[tuple, object] = {}
        #: family name -> metric class (one type per family)
        self._types: dict[str, type] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, labels: dict):
        key = (name, freeze_labels(labels))
        metric = self._metrics.get(key)
        if metric is not None and type(metric) is cls:
            return metric
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                family = self._types.get(name)
                if family is not None and family is not cls:
                    raise TypeError(
                        f"metric {name!r} is a {family.__name__}, "
                        f"not a {cls.__name__}"
                    )
                self._types[name] = cls
                metric = self._metrics[key] = cls(name, labels=labels)
            elif type(metric) is not cls:
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {cls.__name__}"
                )
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(name, Counter, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(name, Gauge, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(name, Histogram, labels)

    def summary(self, name: str, **labels) -> Summary:
        return self._get(name, Summary, labels)

    # ------------------------------------------------------------------
    # family access and aggregation
    # ------------------------------------------------------------------
    def samples(self, name: str) -> list[tuple[dict, object]]:
        """Every metric of family ``name`` as ``(labels, metric)``
        pairs, sorted by label identity (deterministic exposition
        order)."""
        with self._lock:
            items = [(k[1], m) for k, m in self._metrics.items()
                     if k[0] == name]
        return [(dict(li), m) for li, m in sorted(items, key=lambda x: x[0])]

    def families(self) -> list[tuple[str, type, list[tuple[dict, object]]]]:
        """Every family as ``(name, metric class, [(labels, metric)])``
        sorted by name — the exposition renderer's iteration order."""
        with self._lock:
            names = sorted(self._types)
            types = dict(self._types)
        return [(n, types[n], self.samples(n)) for n in names]

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold every metric of ``other`` into this registry
        (cross-worker aggregation), creating families as needed."""
        with other._lock:
            items = list(other._metrics.items())
        for (name, label_items), metric in sorted(items, key=lambda x: x[0]):
            mine = self._get(name, type(metric), dict(label_items))
            mine.merge(metric)

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __len__(self) -> int:
        return len(self._metrics)

    def as_dict(self) -> dict:
        """Every metric keyed by ``name`` (labeled families as
        ``name{k=v,...}``): counters/gauges as their value,
        histograms/summaries as their summary dict."""
        with self._lock:
            items = sorted(self._metrics.items(), key=lambda x: x[0])
        out: dict = {}
        for (name, label_items), metric in items:
            key = name + _label_suffix(dict(label_items))
            if isinstance(metric, (Histogram, Summary)):
                out[key] = metric.as_dict()
            else:
                out[key] = metric.value
        return out

    def render(self) -> str:
        """Text report, one metric per line."""
        with self._lock:
            items = sorted(self._metrics.items(), key=lambda x: x[0])
        if not items:
            return "metrics: (none recorded)"
        labeled = [(name + _label_suffix(dict(li)), m)
                   for (name, li), m in items]
        lines = ["metrics:"]
        width = max(len(n) for n, _ in labeled)
        for name, metric in labeled:
            if isinstance(metric, Summary):
                value = (f"count={metric.count}  p50={metric.percentile(50)}"
                         f"  p99={metric.percentile(99)}  max={metric.max}")
            elif isinstance(metric, Histogram):
                value = (f"count={metric.count}  min={metric.min}  "
                         f"max={metric.max}  mean={metric.mean:.2f}")
            elif isinstance(metric.value, float):
                value = f"{metric.value:.4f}"
            else:
                value = f"{metric.value:,}"
            lines.append(f"  {name:<{width}}  {value}")
        return "\n".join(lines)

"""Metrics registry — named counters, gauges, and histograms.

The span tree (:mod:`repro.obs.spans`) answers "where did the
instructions go"; the registry answers the aggregate questions the
benches keep re-deriving by hand: what vl did the strips actually
receive (tail-strip shortening, §3.1), how many strips per primitive
call, how often the engine's plan cache hit, what share of the run was
spill traffic (§6.3). Instrumentation sites reach the registry through
the installed :class:`~repro.obs.spans.ProfileCollector`; nothing here
touches the machine or its counters.

All metrics are plain Python objects updated in place — cheap enough
for per-strip observation, queryable as a dict
(:meth:`MetricsRegistry.as_dict`), and renderable as a text report
(:meth:`MetricsRegistry.render`).
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "Summary", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count (events, cache hits, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (cache size, hit rate, spill share, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A distribution of observed values.

    Keeps count/sum/min/max plus an exact value→occurrences map — the
    observed domains here (per-strip vl, strips per call) are small and
    discrete, so exact counts beat bucketing; the map degrades to the
    summary statistics if a workload ever observes many distinct
    values (`by_value` stops growing past ``max_distinct``).
    """

    __slots__ = ("name", "count", "total", "min", "max", "by_value", "max_distinct")

    def __init__(self, name: str, max_distinct: int = 256) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.by_value: dict = {}
        self.max_distinct = max_distinct

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value in self.by_value:
            self.by_value[value] += 1
        elif len(self.by_value) < self.max_distinct:
            self.by_value[value] = 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 4),
            "by_value": {str(k): v for k, v in sorted(self.by_value.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Histogram({self.name}: count={self.count}, min={self.min},"
                f" max={self.max}, mean={self.mean:.2f})")


class Summary:
    """A distribution of continuous values with exact percentiles.

    :class:`Histogram` fits the discrete domains (per-strip vl, rows
    per flush); latency-style observations are continuous, so p50/p99
    need ranked samples. The buffer is bounded deterministically: when
    it fills, every other sample is dropped and the sampling stride
    doubles — no randomness, so two identical runs report identical
    percentiles. count/sum/min/max always cover *every* observation.
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_samples", "_stride", "max_samples")

    def __init__(self, name: str, max_samples: int = 4096) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._samples: list = []
        self._stride = 1
        self.max_samples = max_samples

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if (self.count - 1) % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) > self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float | None:
        """The p-th percentile (0 < p <= 100) over the retained
        samples, nearest-rank; None before any observation."""
        if not self._samples:
            return None
        ranked = sorted(self._samples)
        k = max(0, min(len(ranked) - 1,
                       -(-int(p * len(ranked)) // 100) - 1))
        return ranked[k]

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 6),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Summary({self.name}: count={self.count}, "
                f"p50={self.percentile(50)}, p99={self.percentile(99)})")


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Names are dotted paths by convention (``engine.plan_cache.hits``,
    ``svm.strip_vl``); asking for an existing name with a different
    metric type is an error — a name means one thing.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def summary(self, name: str) -> Summary:
        return self._get(name, Summary)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def as_dict(self) -> dict:
        """Every metric keyed by name: counters/gauges as their value,
        histograms as their summary dict."""
        out: dict = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, (Histogram, Summary)):
                out[name] = metric.as_dict()
            else:
                out[name] = metric.value
        return out

    def render(self) -> str:
        """Text report, one metric per line."""
        if not self._metrics:
            return "metrics: (none recorded)"
        lines = ["metrics:"]
        width = max(len(n) for n in self._metrics)
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Summary):
                value = (f"count={metric.count}  p50={metric.percentile(50)}"
                         f"  p99={metric.percentile(99)}  max={metric.max}")
            elif isinstance(metric, Histogram):
                value = (f"count={metric.count}  min={metric.min}  "
                         f"max={metric.max}  mean={metric.mean:.2f}")
            elif isinstance(metric.value, float):
                value = f"{metric.value:.4f}"
            else:
                value = f"{metric.value:,}"
            lines.append(f"  {name:<{width}}  {value}")
        return "\n".join(lines)

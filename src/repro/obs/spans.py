"""Hierarchical profiling spans over the dynamic-instruction counters.

The paper's evaluation attributes dynamic instruction counts to
primitives and categories (Tables 1-7); this module generalizes that
into a reusable drill-down: a **span** is a named, nested region of
execution (algorithm → primitive → strip) that captures the
per-category :class:`~repro.rvv.counters.CounterSnapshot` delta, wall
time, and free-form metadata of everything that ran inside it.

Design constraints, in priority order:

1. **Zero cost when off.** No collector installed means instrumented
   code paths do a single attribute check and run the original code —
   no span objects, no snapshots, no counter events. The library's
   counters are *never* perturbed by profiling (spans only read them).
2. **Exact attribution.** Spans nest strictly and snapshots are taken
   on the shared counters, so a child's delta is always component-wise
   ≤ its parent's, and the parent's delta minus the sum of child
   deltas is the parent's own ("self") cost — non-negative in every
   category. The exporters surface that remainder as a synthetic
   ``(self)`` child, so rendered children always sum exactly.
3. **Both execution modes.** Instrumentation wraps the
   :class:`~repro.svm.context.SVM` dispatch layer, *above* the
   strict/fast split, so span deltas are identical across modes (the
   repo's strict-vs-fast counter equality, now per span).

Strip-level spans are opt-in (``strips=True``): the collector hooks
``vsetvl`` — the one instruction every strict strip-mined loop issues
per strip — and opens a leaf span per strip. They are exact but
allocate one span per strip; leave them off for large-n profiles.
"""

from __future__ import annotations

import functools
import time

from ..rvv.counters import Cat, CounterSnapshot

__all__ = [
    "Span",
    "SpanEvent",
    "ProfileCollector",
    "profile",
    "span",
    "instrument_method",
]


class Span:
    """One named region: children, counter delta, wall time, metadata.

    ``delta`` is None while the span is open; closed spans hold the
    inclusive per-category delta (children included). ``t0``/``wall``
    are seconds relative to the collector's origin. ``error`` records
    the exception type name if the region raised.
    """

    __slots__ = ("name", "meta", "children", "depth", "index", "strip",
                 "delta", "wall", "t0", "error", "end_total", "n_strips",
                 "_begin", "_strips_at_enter")

    def __init__(self, name: str, meta: dict, depth: int, index: int,
                 strip: bool = False) -> None:
        self.name = name
        self.meta = meta
        self.children: list[Span] = []
        self.depth = depth
        self.index = index
        self.strip = strip
        self.delta: CounterSnapshot | None = None
        self.wall: float = 0.0
        self.t0: float = 0.0
        self.error: str | None = None
        self.end_total: int = 0        # cumulative machine total at close
        self.n_strips: int = 0         # vsetvl strips observed inside
        self._begin: CounterSnapshot | None = None
        self._strips_at_enter: int = 0

    @property
    def total(self) -> int:
        """Inclusive dynamic-instruction total of the span."""
        return self.delta.total if self.delta is not None else 0

    def self_delta(self) -> CounterSnapshot:
        """The span's own cost: its delta minus all child deltas."""
        own = dict(self.delta.by_category)
        for child in self.children:
            if child.delta is None:
                continue
            for cat, n in child.delta.by_category.items():
                own[cat] = own.get(cat, 0) - n
        return CounterSnapshot(own)

    def walk(self):
        """Yield the span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def label(self) -> str:
        """``name(k=v, ...)`` display form."""
        if not self.meta:
            return self.name
        inner = ", ".join(f"{k}={v}" for k, v in self.meta.items())
        return f"{self.name}({inner})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"total={self.total}" if self.delta is not None else "open"
        return f"Span({self.label()}, {state}, {len(self.children)} children)"


class SpanEvent:
    """An instant event (plan-cache hit/miss, ...) on the timeline."""

    __slots__ = ("name", "ts", "meta")

    def __init__(self, name: str, ts: float, meta: dict) -> None:
        self.name = name
        self.ts = ts
        self.meta = meta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpanEvent({self.name} @ {self.ts:.6f}s {self.meta})"


class _SpanContext:
    """Context manager driving one live span on a collector."""

    __slots__ = ("col", "span")

    def __init__(self, col: "ProfileCollector", name: str, meta: dict) -> None:
        self.col = col
        self.span = col._open(name, meta)

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.col._close(self.span, exc_type)
        return False


class _NullSpan:
    """Shared do-nothing context manager for the collector-off path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class ProfileCollector:
    """Builds the span tree and metrics for one machine.

    Install with ``machine.collector = ProfileCollector(machine)`` (or
    ``SVM(profile=True)``, which does exactly that). The collector
    owns an implicit root span covering its whole lifetime; call
    :meth:`finish` (idempotent) to close it before exporting —
    the exporters in :mod:`repro.obs.export` do so automatically.

    Parameters
    ----------
    machine:
        The :class:`~repro.rvv.machine.RVVMachine` whose counters the
        spans snapshot.
    strips:
        Record a leaf span per ``vsetvl`` strip (strict kernels only;
        one span object per strip — expensive for large n).
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(self, machine, *, strips: bool = False,
                 clock=time.perf_counter) -> None:
        self.machine = machine
        self.strips = bool(strips)
        self.clock = clock
        from .metrics import MetricsRegistry  # lightweight, no cycle

        self.metrics = MetricsRegistry()
        self.events: list[SpanEvent] = []
        self._origin = clock()
        self._index = 0
        self._strip_count = 0
        self._open_strip: Span | None = None
        self.root = self._new_span("profile", {}, depth=0)
        self._start(self.root)
        self._stack: list[Span] = [self.root]

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def span(self, name: str, **meta) -> _SpanContext:
        """Open a nested span: ``with col.span("radix_sort", n=n): ...``"""
        return _SpanContext(self, name, meta)

    def _new_span(self, name: str, meta: dict, depth: int,
                  strip: bool = False) -> Span:
        s = Span(name, meta, depth, self._index, strip)
        self._index += 1
        return s

    def _start(self, s: Span) -> None:
        s.t0 = self.clock() - self._origin
        s._strips_at_enter = self._strip_count
        s._begin = self.machine.counters.snapshot()

    def _finish(self, s: Span) -> None:
        snap = self.machine.counters.snapshot()
        s.delta = snap - s._begin
        s.end_total = snap.total
        s.wall = (self.clock() - self._origin) - s.t0
        s.n_strips = self._strip_count - s._strips_at_enter

    def _open(self, name: str, meta: dict) -> Span:
        self._close_strip()
        parent = self._stack[-1]
        s = self._new_span(name, meta, depth=len(self._stack))
        parent.children.append(s)
        self._stack.append(s)
        self._start(s)
        return s

    def _close(self, s: Span, exc_type=None) -> None:
        self._close_strip()
        # unwind to s even if inner spans leaked (exception safety:
        # every ancestor context manager still closes its own span)
        while self._stack and self._stack[-1] is not s:
            leaked = self._stack.pop()
            if leaked.delta is None:
                self._finish(leaked)
        if self._stack and self._stack[-1] is s:
            self._stack.pop()
        self._finish(s)
        if exc_type is not None:
            s.error = exc_type.__name__
        if s.n_strips and not s.children:
            self.metrics.histogram("svm.strips_per_call").observe(s.n_strips)

    # ------------------------------------------------------------------
    # machine hooks
    # ------------------------------------------------------------------
    def on_vsetvl(self, vl: int) -> None:
        """Called by :meth:`RVVMachine.vsetvl` before the vsetvl is
        counted — each call marks a strip boundary."""
        self._strip_count += 1
        self.metrics.histogram("svm.strip_vl").observe(vl)
        if not self.strips:
            return
        self._close_strip()
        parent = self._stack[-1]
        i = sum(1 for c in parent.children if c.strip)
        s = self._new_span("strip", {"i": i, "vl": vl},
                           depth=len(self._stack), strip=True)
        parent.children.append(s)
        self._start(s)
        self._open_strip = s

    def _close_strip(self) -> None:
        s = self._open_strip
        if s is not None:
            self._finish(s)
            self._open_strip = None

    # ------------------------------------------------------------------
    # instant events
    # ------------------------------------------------------------------
    def event(self, name: str, **meta) -> None:
        """Record an instant event at the current timestamp."""
        self.events.append(SpanEvent(name, self.clock() - self._origin, meta))

    def plan_cache_event(self, hit: bool, cache, source: str = "memory") -> None:
        """Engine hook: one plan-cache lookup resolved (hit or miss).
        ``source`` says where a hit came from (``"memory"`` for the
        in-process LRU, ``"disk"`` for the persistent store; misses
        report ``"none"``)."""
        self.event("plan_cache.hit" if hit else "plan_cache.miss",
                   size=len(cache), source=source)
        m = self.metrics
        m.counter("engine.plan_cache.hits" if hit
                  else "engine.plan_cache.misses").inc()
        if hit and source == "disk":
            m.counter("engine.plan_cache.disk_hits").inc()
        m.gauge("engine.plan_cache.size").set(len(cache))
        m.gauge("engine.plan_cache.evictions").set(cache.stats.evictions)
        m.gauge("engine.plan_cache.hit_rate").set(round(cache.stats.hit_rate, 4))

    def codegen_event(self, groups: int, seconds: float) -> None:
        """Engine hook: one plan compiled (fuse + specialize + codegen)
        on a cache miss; ``groups`` is how many fused groups got
        generated kernels."""
        ms = seconds * 1e3
        self.event("codegen.compile", groups=groups, ms=round(ms, 3))
        m = self.metrics
        m.counter("engine.codegen.plans_compiled").inc()
        if groups:
            m.counter("engine.codegen.groups_compiled").inc(groups)
        m.histogram("engine.codegen.compile_ms").observe(ms)

    def batch_event(self, rows: int, n: int, path: str) -> None:
        """Batch-runner hook: one length bucket dispatched (``path`` is
        ``"2d"`` for the matrix fast path, ``"ragged"`` for the masked
        pack variant, ``"loop"`` for the per-row fallback)."""
        self.event("batch.bucket", rows=rows, n=n, path=path)
        m = self.metrics
        m.histogram("batch.size").observe(rows)
        m.counter("batch.rows").inc(rows)
        m.counter(f"batch.buckets.{path}").inc()

    def serve_flush_event(self, rows: int, n: int, path: str,
                          wait_ms: float) -> None:
        """Serving-daemon hook: one coalesced flush executed (``path``
        as in :meth:`batch_event`; ``wait_ms`` is how long the oldest
        request in the flush sat in the coalescing window)."""
        self.event("serve.flush", rows=rows, n=n, path=path,
                   wait_ms=round(wait_ms, 3))
        m = self.metrics
        m.counter("serve.flushes").inc()
        m.counter("serve.rows").inc(rows)
        m.counter(f"serve.flush.{path}").inc()
        m.histogram("serve.rows_per_flush").observe(rows)
        m.summary("serve.flush_wait_ms").observe(round(wait_ms, 3))

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def finish(self) -> Span:
        """Close the root span (and any stragglers). Idempotent: a
        second call re-measures the root against the current counters,
        so a collector can be inspected mid-run and again later."""
        self._close_strip()
        while len(self._stack) > 1:
            leaked = self._stack.pop()
            if leaked.delta is None:
                self._finish(leaked)
        self._finish(self.root)
        total = self.root.delta.total
        spill = self.root.delta.by_category.get(Cat.SPILL, 0)
        self.metrics.gauge("counters.spill_share").set(
            round(spill / total, 4) if total else 0.0
        )
        return self.root

    # ------------------------------------------------------------------
    # report conveniences (delegate to repro.obs.export)
    # ------------------------------------------------------------------
    def report(self, max_depth: int | None = None) -> str:
        """The tree-formatted profile report plus the metrics block."""
        from . import export

        return export.render_tree(self, max_depth=max_depth) + "\n\n" + self.metrics.render()

    def to_json(self) -> dict:
        from . import export

        return export.to_json(self)

    def to_chrome_trace(self) -> dict:
        from . import export

        return export.to_chrome_trace(self)


def profile(machine, *, strips: bool = False):
    """Install a :class:`ProfileCollector` on ``machine`` for the
    duration of a ``with`` block and hand it back::

        with profile(svm.machine) as prof:
            split_radix_sort(svm, data)
        print(prof.report())

    Raises if a collector is already installed (spans would interleave
    between two owners).
    """
    return _ProfileContext(machine, strips)


class _ProfileContext:
    __slots__ = ("machine", "strips", "collector")

    def __init__(self, machine, strips: bool) -> None:
        self.machine = machine
        self.strips = strips
        self.collector = None

    def __enter__(self) -> ProfileCollector:
        if self.machine.collector is not None:
            raise RuntimeError("a profile collector is already installed")
        self.collector = ProfileCollector(self.machine, strips=self.strips)
        self.machine.collector = self.collector
        return self.collector

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.machine.collector = None
        self.collector.finish()
        return False


def span(machine, name: str, **meta):
    """Instrumentation-site helper: a real span when ``machine`` has a
    collector, the shared no-op context manager otherwise. This is the
    only call instrumented library code makes on the hot path."""
    col = machine.collector
    if col is None:
        return NULL_SPAN
    return col.span(name, **meta)


def instrument_method(fn, name: str | None = None):
    """Wrap an :class:`~repro.svm.context.SVM` method in a span named
    after it, recording ``n`` (from the leading array or int argument)
    and the resolved strict/fast path. With no collector installed the
    wrapper is a single attribute check plus the original call."""
    label = name or fn.__name__

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        col = self.machine.collector
        if col is None:
            return fn(self, *args, **kwargs)
        meta = {}
        if args:
            first = args[0]
            n = getattr(first, "n", None)
            if n is None and isinstance(first, int):
                n = first
            if n is not None:
                meta["n"] = n
                meta["path"] = "fast" if self._fast(n) else "strict"
        with col.span(label, **meta):
            return fn(self, *args, **kwargs)

    wrapper.__obs_instrumented__ = True
    return wrapper

"""Counter-event tap: broadcast every ``Counters.add`` to subscribers.

:class:`~repro.rvv.trace.TraceRecorder` used to subclass ``Counters``
and swap a private copy onto the machine, folding totals back on
detach — which double-counted (or lost) events as soon as two
recorders attached to machines sharing one counters object. The tap
fixes the mechanism:

* a :class:`CounterTap` **shares the wrapped object's count storage**
  (no copy, no fold-back), so totals are consistent at every moment
  no matter how many taps or subscribers exist;
* any number of subscribers attach to one tap; the tap uninstalls
  itself (restoring the original counters object) only when the last
  one leaves;
* two machines sharing a ``Counters`` each get their own tap over the
  same storage — each machine's subscribers see that machine's
  events, while the shared totals stay exact.

The hot path gains one loop over the (usually empty or one-element)
subscriber list; with no tap installed there is no overhead at all,
because the machine still holds a plain ``Counters``.
"""

from __future__ import annotations

from ..rvv.counters import Counters

__all__ = ["CounterTap", "install_tap", "uninstall_tap_if_idle"]


class CounterTap(Counters):
    """A ``Counters`` stand-in that notifies subscribers on every add.

    Shares ``_counts`` with the wrapped instance, so reads through
    either object (totals, snapshots, resets) always agree.
    """

    def __init__(self, base: Counters) -> None:
        self._base = base
        self._counts = base._counts          # shared storage, not a copy
        self._subscribers: list = []

    @property
    def base(self) -> Counters:
        """The wrapped, original counters object."""
        return self._base

    @property
    def subscribers(self) -> tuple:
        return tuple(self._subscribers)

    def add(self, category, n: int = 1) -> None:
        self._counts[category] += n
        for callback in self._subscribers:
            callback(category, n)

    def subscribe(self, callback) -> None:
        """Register ``callback(category, n)`` for every future add."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback) -> None:
        self._subscribers.remove(callback)


def install_tap(machine) -> CounterTap:
    """The machine's tap, installing one if its counters are untapped."""
    counters = machine.counters
    if isinstance(counters, CounterTap):
        return counters
    tap = CounterTap(counters)
    machine.counters = tap
    return tap


def uninstall_tap_if_idle(machine) -> bool:
    """Restore the machine's original counters object if its tap has
    no subscribers left. Returns True if the tap was removed."""
    counters = machine.counters
    if isinstance(counters, CounterTap) and not counters._subscribers:
        machine.counters = counters.base
        return True
    return False

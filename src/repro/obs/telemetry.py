"""Always-on service telemetry: request tracing + flight recorder.

The profiler (:mod:`repro.obs.spans`) is *opt-in deep attribution* —
you choose a run, pay for full span trees, and read the report. A
long-lived daemon needs the opposite trade: **always-on** breadcrumbs
cheap enough to leave enabled, with just enough retained context to
explain a slow or failed request after the fact. This module is that
layer; :mod:`repro.serve.server` drives it.

Three pieces:

* **Trace context** — a :class:`contextvars.ContextVar` carrying a
  per-flush :class:`TraceContext`. The serving daemon activates it
  around each flush execution (in the worker thread, so contexts
  never leak across threads), and deep layers that must not import
  ``repro.serve`` — :meth:`repro.engine.executor.Engine.fused_for`,
  :func:`repro.batch.runner.run_bucket`'s dispatcher — annotate it
  through the module-level :func:`note_plan_cache` /
  :func:`note_batch_path` helpers. That is how a response can say
  which plan-cache tier (memory / disk / compile) and dispatch path
  ("2d" / "ragged" / "loop") served it without threading arguments
  through five call layers.

* **Flight recorder** — :class:`FlightRecorder`, a bounded ring
  buffer (``collections.deque(maxlen=...)``: appends are O(1), old
  events fall off the far end, no per-event allocation beyond the
  event dict itself) of structured events: request ``admit`` /
  ``coalesce`` / ``flush`` / ``complete`` / ``error``, ``reject``
  (backpressure), ``cache`` (plan-cache hits by source). It also
  retains full timing span trees for the N *slowest* requests as
  exemplars (a min-heap: a new request only enters once it is slower
  than the fastest retained exemplar). Dumped as NDJSON on a ``dump``
  wire request, on SIGUSR1, or when a request errors.

* **Facade** — :class:`Telemetry` allocates trace/flush IDs and
  funnels events to the recorder; when constructed ``enabled=False``
  every event method is a cheap early return, which is what the
  telemetry-overhead gate in ``benchmarks/bench_serve.py`` measures
  against.

Nothing here touches the simulated machine or its counters: the
bit-and-counter identity invariant is unaffected by telemetry being
on or off (``tests/serve/test_identity.py`` runs with it on).
"""

from __future__ import annotations

import contextvars
import heapq
import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager

__all__ = [
    "TraceContext",
    "FlightRecorder",
    "Telemetry",
    "current_trace",
    "trace_scope",
    "note_plan_cache",
    "note_batch_path",
]

_TRACE: contextvars.ContextVar = contextvars.ContextVar(
    "repro_trace", default=None)


class TraceContext:
    """Mutable per-flush annotation target for the deep layers.

    One flush executes one ``run_bucket`` call on one worker thread;
    the notes below are filled in during that call and read back by
    the server when it fans results out to the flush's requests.
    """

    __slots__ = ("flush_id", "cache", "path")

    def __init__(self, flush_id: str | None = None) -> None:
        self.flush_id = flush_id
        #: plan-cache outcomes seen during the flush: source -> count
        #: (sources: "memory", "disk", "compile")
        self.cache: dict[str, int] = {}
        #: batch dispatch path ("2d", "ragged", or "loop")
        self.path: str | None = None

    def note_cache(self, source: str) -> None:
        self.cache[source] = self.cache.get(source, 0) + 1

    def cache_outcome(self) -> str:
        """The flush's dominant plan-cache outcome, worst tier wins:
        a single compile makes the flush a "compile" even if later
        groups hit memory."""
        for source in ("compile", "disk", "memory"):
            if self.cache.get(source):
                return source
        return "none"


def current_trace() -> TraceContext | None:
    """The active flush's trace context, or None outside a flush."""
    return _TRACE.get()


@contextmanager
def trace_scope(ctx: TraceContext):
    """Activate ``ctx`` for the duration of a flush execution."""
    token = _TRACE.set(ctx)
    try:
        yield ctx
    finally:
        _TRACE.reset(token)


def note_plan_cache(source: str) -> None:
    """Engine hook: a plan resolved from ``source`` ("memory" /
    "disk" / "compile"). No-op outside a trace scope."""
    ctx = _TRACE.get()
    if ctx is not None:
        ctx.note_cache(source)


def note_batch_path(path: str) -> None:
    """Batch-runner hook: the bucket dispatched via ``path`` ("2d" /
    "ragged" / "loop"). No-op outside a trace scope."""
    ctx = _TRACE.get()
    if ctx is not None:
        ctx.path = path


class FlightRecorder:
    """Bounded ring buffer of structured events + slowest exemplars."""

    def __init__(self, capacity: int = 512, slowest: int = 8) -> None:
        self.capacity = int(capacity)
        self.slowest = int(slowest)
        self._events: deque = deque(maxlen=self.capacity)
        self._exemplars: list = []  # min-heap of (total_ms, seq, tree)
        self._seq = itertools.count(1)
        self._xseq = itertools.count(1)
        self.recorded = 0
        self._lock = threading.Lock()

    def record(self, kind: str, **fields) -> None:
        # hot path, per request: one dict literal, one atomic
        # deque.append (bounded, old events fall off), no lock —
        # ``seq`` from the shared counter keeps recorded order total
        seq = next(self._seq)
        self._events.append(
            {"seq": seq, "ts": time.time(), "kind": kind,
             **fields})
        self.recorded = seq

    def note_slow(self, total_ms: float, trace_id: str, flush_id: str,
                  cache: str, path: str, timing: dict) -> None:
        """Offer a completed request as a slow exemplar. The span tree
        is only materialized once the request actually displaces the
        fastest retained exemplar — the common (fast-request) case is
        one lock-free comparison against the heap minimum (re-checked
        under the lock before mutating)."""
        x = self._exemplars
        if len(x) >= self.slowest and total_ms <= x[0][0]:
            return
        with self._lock:
            if (len(self._exemplars) >= self.slowest
                    and total_ms <= self._exemplars[0][0]):
                return
            entry = (total_ms, next(self._xseq), {
                "trace": trace_id,
                "flush": flush_id,
                "cache": cache,
                "path": path,
                "spans": dict(timing),
            })
            if len(self._exemplars) < self.slowest:
                heapq.heappush(self._exemplars, entry)
            else:
                heapq.heapreplace(self._exemplars, entry)

    @property
    def dropped(self) -> int:
        return self.recorded - len(self._events)

    def events(self) -> list[dict]:
        """Snapshot of retained events, oldest first. Timestamps are
        recorded raw (``round`` is measurable on the hot path) and
        tidied to microseconds here, on the cold snapshot path."""
        out = []
        for e in list(self._events):
            e = dict(e)
            e["ts"] = round(e["ts"], 6)
            out.append(e)
        return out

    def exemplars(self) -> list[dict]:
        """Retained slowest-request span trees, slowest first."""
        with self._lock:
            ordered = sorted(self._exemplars, reverse=True)
        return [dict(tree, total_ms=round(ms, 3)) for ms, _, tree in ordered]

    def dump(self) -> dict:
        """The full recorder state as one JSON-serializable document."""
        return {
            "recorded": self.recorded,
            "dropped": self.dropped,
            "events": self.events(),
            "exemplars": self.exemplars(),
        }

    def dump_ndjson(self) -> str:
        """The recorder state as NDJSON: a header line, one line per
        event, one line per exemplar."""
        lines = [json.dumps({"kind": "flight_recorder",
                             "recorded": self.recorded,
                             "dropped": self.dropped},
                            sort_keys=True)]
        lines += [json.dumps(e, sort_keys=True, default=str)
                  for e in self.events()]
        lines += [json.dumps(dict(t, kind="exemplar"), sort_keys=True,
                             default=str)
                  for t in self.exemplars()]
        return "\n".join(lines) + "\n"


class Telemetry:
    """The daemon's always-on telemetry facade.

    Allocates trace and flush IDs, records flight-recorder events, and
    is a no-op shell when ``enabled=False`` (every event method
    returns immediately) — the off-state the overhead gate compares
    against.
    """

    def __init__(self, enabled: bool = True, flight_capacity: int = 512,
                 slowest: int = 8) -> None:
        self.enabled = bool(enabled)
        self.recorder = FlightRecorder(capacity=flight_capacity,
                                       slowest=slowest)
        self._trace_ids = itertools.count(1)
        self._flush_ids = itertools.count(1)

    def new_trace_id(self) -> str:
        return f"t{next(self._trace_ids)}"

    def new_flush_id(self) -> str:
        return f"f{next(self._flush_ids)}"

    # -- event sites (each mirrors one hop of a request's life) -------
    # The three per-request sites (admit / coalesce / complete) build
    # their event dicts inline instead of going through
    # FlightRecorder.record — the extra call + kwargs repack costs
    # more than the event itself on the serving hot path.
    def admitted(self, trace_id: str, *, pipeline: str, n: int,
                 dtype: str, mode: str) -> None:
        if self.enabled:
            r = self.recorder
            seq = next(r._seq)
            r._events.append(
                {"seq": seq, "ts": time.time(), "kind": "admit",
                 "trace": trace_id, "pipeline": pipeline, "n": n,
                 "dtype": dtype, "mode": mode})
            r.recorded = seq

    def rejected(self, *, reason: str, inflight: int) -> None:
        if self.enabled:
            self.recorder.record("reject", reason=reason, inflight=inflight)

    def coalesced(self, trace_id: str, *, key) -> None:
        if self.enabled:
            r = self.recorder
            seq = next(r._seq)
            r._events.append(
                {"seq": seq, "ts": time.time(), "kind": "coalesce",
                 "trace": trace_id, "pipeline": key.pipeline, "n": key.n,
                 "dtype": key.dtype, "mode": key.mode})
            r.recorded = seq

    def flushed(self, flush_id: str, *, traces: list, reason: str,
                rows: int, key) -> None:
        if self.enabled:
            self.recorder.record("flush", flush=flush_id, traces=list(traces),
                                 reason=reason, rows=rows,
                                 pipeline=key.pipeline, n=key.n)

    def cache_outcome(self, flush_id: str, *, sources: dict) -> None:
        if self.enabled and sources:
            self.recorder.record("cache", flush=flush_id,
                                 sources=dict(sources))

    def completed(self, trace_id: str, *, flush_id: str, timing: dict,
                  cache: str, path: str) -> None:
        if self.enabled:
            r = self.recorder
            seq = next(r._seq)
            r._events.append(
                {"seq": seq, "ts": time.time(), "kind": "complete",
                 "trace": trace_id, "flush": flush_id, "timing": timing,
                 "cache": cache, "path": path})
            r.recorded = seq
            r.note_slow(timing.get("total_ms", 0.0), trace_id,
                        flush_id, cache, path, timing)

    def errored(self, trace_id: str | None, *, error: str) -> None:
        if self.enabled:
            self.recorder.record("error", trace=trace_id, error=error)

    def stats_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "flight": {
                "capacity": self.recorder.capacity,
                "recorded": self.recorder.recorded,
                "dropped": self.recorder.dropped,
                "exemplars": len(self.recorder.exemplars()),
            },
        }

"""Multiprocess sweep runner for VLEN×LMUL×n benchmark grids.

Every grid cell is an independent closed-form simulation — no shared
state beyond the parameters — so fanning cells over a
:class:`~concurrent.futures.ProcessPoolExecutor` with a per-worker
machine is embarrassingly parallel. :func:`run_grid` is the tiny
deterministic core: results come back in input order regardless of
completion order, and ``jobs <= 1`` runs inline (no pool, no pickling)
so single-process runs and tests stay byte-identical.

The module-level cell functions (:func:`fusion_cell`,
:func:`batch_cell`, :func:`codegen_cell`) exist because pool workers
must import their task by qualified name: each constructs its own
:class:`~repro.svm.SVM` (hence its own machine and counters) from the
parameter dict and returns a plain dict, which the parent merges. They
are shared by ``benchmarks/bench_fusion.py``,
``benchmarks/bench_batch.py``, ``benchmarks/bench_codegen.py``, and
the ``repro bench --jobs N`` CLI.

Workers started with ``REPRO_CACHE_DIR`` set additionally share the
persistent plan store (:class:`~repro.engine.cache.PlanStore`), so
each worker process skips capture/fuse/specialize/codegen for plans
any earlier process already compiled.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from .config import env_bench_jobs

__all__ = [
    "run_grid", "default_jobs", "fusion_cell", "batch_cell",
    "codegen_cell", "CHAIN",
]


def default_jobs() -> int:
    """Worker count for ``--jobs``-less callers: the REPRO_BENCH_JOBS
    environment variable (via :mod:`repro.config`, malformed values
    fall back), else 1 (inline)."""
    return env_bench_jobs()


def run_grid(fn, params, jobs: int = 1) -> list:
    """Apply ``fn`` to every parameter dict, optionally across
    processes; the result list is in input order either way.

    ``fn`` must be a module-level (picklable) callable taking one
    parameter dict. With ``jobs <= 1`` or a single cell this runs
    inline in the calling process.
    """
    params = list(params)
    if jobs <= 1 or len(params) <= 1:
        return [fn(p) for p in params]
    with ProcessPoolExecutor(max_workers=min(jobs, len(params))) as pool:
        return list(pool.map(fn, params))


# ---------------------------------------------------------------------------
# grid cells (module-level so pool workers can import them)
# ---------------------------------------------------------------------------

#: The benchmark pipeline both suites sweep: an elementwise chain
#: (depth-truncated) feeding a plus-scan.
CHAIN = (("p_add", 10), ("p_mul", 3), ("p_xor", 5), ("p_or", 1), ("p_add", 7))


def _chain_pipeline(api, data, lmul, depth):
    for op, x in CHAIN[:depth]:
        getattr(api, op)(data, x, lmul=lmul)
    api.plus_scan(data, lmul=lmul)
    return data


def fusion_cell(params: dict) -> dict:
    """One fused-vs-eager measurement on a private machine.

    ``params``: n, vlen, lmul, depth, seed (all ints). The returned
    dict carries the deterministic instruction counts plus an
    ``identical`` flag confirming fused output == eager output.
    """
    from repro import SVM
    from repro.rvv.types import LMUL

    n, vlen = params["n"], params["vlen"]
    lmul, depth = LMUL(params["lmul"]), params["depth"]
    values = np.random.default_rng(params.get("seed", 0)).integers(
        0, 2**16, n, dtype=np.uint32
    )

    def one(fused: bool):
        svm = SVM(vlen=vlen, codegen="paper", mode="fast")
        data = svm.array(values)
        svm.reset()
        if fused:
            with svm.lazy() as lz:
                _chain_pipeline(lz, data, lmul, depth)
        else:
            _chain_pipeline(svm, data, lmul, depth)
        return svm.instructions, data.to_numpy()

    eager, ref = one(fused=False)
    fused, got = one(fused=True)
    saving = 100.0 * (eager - fused) / eager if eager else 0.0
    return {
        "vlen": vlen,
        "lmul": int(lmul),
        "eager": eager,
        "fused": fused,
        "saving_pct": round(saving, 2),
        "identical": bool(np.array_equal(ref, got)),
    }


def codegen_cell(params: dict) -> dict:
    """One generated-kernel-vs-interpreted-executor measurement.

    ``params``: n, vlen, lmul, depth, seed. Runs the chain+scan
    pipeline once per backend on a private machine and reports both
    dynamic instruction counts plus result/counter identity — the
    invariants ``BENCH_codegen.json`` locks under the tolerance-0 CI
    gate. Wall-clock speedup is timing-dependent and therefore
    measured out-of-band by ``benchmarks/bench_codegen.py``, exactly
    like the batch suite.
    """
    from repro import SVM
    from repro.rvv.types import LMUL

    n, vlen = params["n"], params["vlen"]
    lmul, depth = LMUL(params["lmul"]), params["depth"]
    values = np.random.default_rng(params.get("seed", 0)).integers(
        0, 2**16, n, dtype=np.uint32
    )

    def one(backend: str):
        svm = SVM(vlen=vlen, codegen="paper", mode="fast", backend=backend)
        data = svm.array(values)
        svm.reset()
        with svm.lazy() as lz:
            _chain_pipeline(lz, data, lmul, depth)
        return svm.counters.snapshot(), data.to_numpy()

    interp, ref = one("interp")
    codegen, got = one("codegen")
    return {
        "vlen": vlen,
        "lmul": int(lmul),
        "n": n,
        "interp_instr": interp.total,
        "codegen_instr": codegen.total,
        "identical_results": bool(np.array_equal(ref, got)),
        "identical_counters": bool(interp.by_category == codegen.by_category),
    }


def batch_cell(params: dict) -> dict:
    """One batch-vs-loop measurement on a private machine.

    ``params``: n, vlen, lmul, rows, depth, seed. Runs the chain+scan
    pipeline ``rows`` times through looped single-plan calls and once
    through ``svm.batch``, and reports both total instruction counts
    plus result/counter identity — the invariants ``BENCH_batch.json``
    locks under the tolerance-0 CI gate.
    """
    from repro import SVM
    from repro.rvv.types import LMUL

    n, vlen = params["n"], params["vlen"]
    lmul, depth = LMUL(params["lmul"]), params["depth"]
    rng = np.random.default_rng(params.get("seed", 0))
    rows = [
        rng.integers(0, 2**16, n, dtype=np.uint32)
        for _ in range(params["rows"])
    ]

    def pipe(lz, data):
        return _chain_pipeline(lz, data, lmul, depth)

    loop_svm = SVM(vlen=vlen, codegen="paper", mode="fast")
    loop_outs = []
    for row in rows:
        data = loop_svm.array(row)
        with loop_svm.lazy() as lz:
            pipe(lz, data)
        loop_outs.append(data.to_numpy())
        loop_svm.free(data)

    batch_svm = SVM(vlen=vlen, codegen="paper", mode="fast")
    result = batch_svm.batch(pipe, rows)

    loop_counts = loop_svm.counters.snapshot().by_category
    batch_counts = batch_svm.counters.snapshot().by_category
    return {
        "vlen": vlen,
        "lmul": int(lmul),
        "n": n,
        "rows": len(rows),
        "path": result.buckets[0].path,
        "loop_instr": loop_svm.instructions,
        "batch_instr": batch_svm.instructions,
        "identical_results": bool(
            all(np.array_equal(a, b) for a, b in zip(loop_outs, result))
        ),
        "identical_counters": bool(loop_counts == batch_counts),
    }

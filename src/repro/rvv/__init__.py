"""The RVV substrate: a functional RISC-V Vector extension simulator.

This subpackage stands in for the hardware/toolchain stack the paper
evaluates on (RVV semantics + LLVM codegen + the Spike simulator's
dynamic instruction counting). See DESIGN.md §2 for the substitution
argument.

Public surface:

* :class:`RVVMachine` — a VLEN-parameterized machine with memory, a
  heap, CSR state, and dynamic-instruction counters.
* :mod:`repro.rvv.intrinsics` — the intrinsic API mirrored from the
  RVV C intrinsics the paper programs against.
* :class:`~repro.rvv.codegen.CodegenModel` — the ``"ideal"`` and
  ``"paper"`` instruction-cost presets.
"""

from .allocation import RegisterProfile, SpillPlan, ValueUse, plan_allocation
from .asm import AsmCPU, AsmProgram, parse as parse_asm
from .codegen import IDEAL, PAPER, CodegenModel, get_preset
from .counters import Cat, Counters, CounterSnapshot
from .machine import RVVMachine, strips
from .memory import Allocator, Memory, Pointer
from .regfile import MASK_REG, NUM_REGS, RegisterFile
from .paper_api import PaperIntrinsics
from .trace import TraceRecorder, trace
from .types import LMUL, SEW, MaskPolicy, TailPolicy, VType, dtype_for_sew, sew_for_dtype, vlmax_for
from .value import VMask, VReg

__all__ = [
    "RVVMachine",
    "AsmCPU",
    "AsmProgram",
    "parse_asm",
    "PaperIntrinsics",
    "TraceRecorder",
    "trace",
    "RegisterProfile",
    "SpillPlan",
    "ValueUse",
    "plan_allocation",
    "strips",
    "Cat",
    "Counters",
    "CounterSnapshot",
    "CodegenModel",
    "IDEAL",
    "PAPER",
    "get_preset",
    "Memory",
    "Pointer",
    "Allocator",
    "RegisterFile",
    "NUM_REGS",
    "MASK_REG",
    "SEW",
    "LMUL",
    "VType",
    "MaskPolicy",
    "TailPolicy",
    "dtype_for_sew",
    "sew_for_dtype",
    "vlmax_for",
    "VReg",
    "VMask",
]

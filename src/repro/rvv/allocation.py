"""Register-pressure and spill model for LMUL register grouping (§6.3).

Grouping registers with LMUL > 1 shrinks the effective register file:
at LMUL=8 only four groups exist, and the group containing ``v0`` is
unavailable to allocatable values because ``v0`` holds masks (§3.2).
When a kernel keeps more simultaneously-live vector values than there
are usable groups, the compiler spills whole register groups to the
stack — the cause of the paper's LMUL=8 anomaly where segmented scan
at N <= 10^3 runs *slower* with the widest grouping (Table 5) and of
the declining (speedup/LMUL) ratio in Table 6.

The model: a kernel declares its live vector values with per-strip and
per-inner-iteration access counts (its *register profile*). The
allocator keeps the hottest values in groups and spills the rest; each
access to a spilled value costs :data:`SPILL_ACCESS_COST` dynamic
instructions (stack-address computation + a whole-register
``vl<k>r``/``vs<k>r`` move), and a kernel containing spills pays a
one-time :data:`SPILL_FRAME_SETUP` (prologue/epilogue spill-slot frame:
``csrr vlenb``-based stack realignment plus saving and zero-filling the
slots).

Fit check against Table 5's LMUL=8 column (segmented scan profile, 4
values spilled -> 68 instructions per strip + 1950 one-time): predicted
counts land within 0.006% (N=10^6), 0.03% (10^5), 0.6% (10^4), 1%
(10^3) and 1.6% (10^2) of the paper's measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..errors import AllocationError
from .regfile import NUM_REGS
from .types import LMUL

__all__ = [
    "ValueUse",
    "RegisterProfile",
    "SpillPlan",
    "plan_allocation",
    "SPILL_ACCESS_COST",
    "SPILL_FRAME_SETUP",
    "ELEMENTWISE_PROFILE",
    "PLUS_SCAN_PROFILE",
    "SEG_SCAN_PROFILE",
    "ENUMERATE_PROFILE",
    "PERMUTE_PROFILE",
    "PROFILES",
]

#: Instructions per access to a spilled value: one stack-address
#: computation plus one whole-register group move (vs<k>r/vl<k>re).
SPILL_ACCESS_COST = 2

#: One-time cost of a vector spill frame (fitted to Table 5; see
#: module docstring and repro.rvv.calibration).
SPILL_FRAME_SETUP = 1950


@dataclass(frozen=True)
class ValueUse:
    """One live vector value and how often the kernel touches it.

    ``inner_accesses`` counts reads+writes per in-register-scan inner
    iteration; ``outer_accesses`` counts the remaining per-strip
    touches.
    """

    name: str
    inner_accesses: int = 0
    outer_accesses: int = 0


@dataclass(frozen=True)
class RegisterProfile:
    """The simultaneously-live vector values of a kernel, hottest-first
    on ties (declaration order breaks ties deterministically)."""

    kernel: str
    values: tuple[ValueUse, ...]
    #: Mask values live at the same time; they reside in the v0 group.
    mask_values: int = 1

    @property
    def n_values(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class SpillPlan:
    """The allocator's verdict for one (profile, LMUL) pair."""

    lmul: LMUL
    usable_groups: int
    spilled: tuple[str, ...]
    per_strip_outer: int
    per_inner_iteration: int
    frame_setup: int

    @property
    def has_spills(self) -> bool:
        return bool(self.spilled)

    def strip_cost(self, inner_iterations: int) -> int:
        """Spill instructions charged for one strip."""
        if not self.spilled:
            return 0
        return self.per_strip_outer + self.per_inner_iteration * inner_iterations


def usable_groups(lmul: LMUL, mask_values: int = 1) -> int:
    """Register groups available to allocatable vector values.

    At LMUL=1 all registers except ``v0`` (mask) and any further mask
    temporaries are usable. At LMUL>1 the group containing ``v0`` is
    lost to mask duty entirely (mask temporaries live inside it).
    """
    k = int(lmul)
    if mask_values < 0:
        raise AllocationError(f"mask_values must be non-negative, got {mask_values}")
    if k == 1:
        avail = NUM_REGS - max(1, mask_values)
    else:
        avail = NUM_REGS // k - 1
    if avail < 1:
        raise AllocationError(
            f"no usable register groups at LMUL={k} with {mask_values} masks"
        )
    return avail


@lru_cache(maxsize=512)
def plan_allocation(profile: RegisterProfile, lmul: LMUL) -> SpillPlan:
    """Allocate a kernel's values to register groups at ``lmul``.

    Keeps the values with the most inner-loop accesses (the compiler's
    own heuristic — spill cost is proportional to use frequency) and
    spills the rest.

    Memoized: profiles are frozen value objects and only a handful of
    (profile, lmul) pairs exist per workload, but the allocation is
    recomputed inside every kernel charge, which made it the single
    hottest call in the fast path.
    """
    lmul = LMUL(lmul)
    avail = usable_groups(lmul, profile.mask_values)
    n_spilled = max(0, profile.n_values - avail)
    if n_spilled == 0:
        return SpillPlan(lmul, avail, (), 0, 0, 0)
    # hottest-first: sort by inner accesses desc, then outer desc, then
    # declaration order (stable sort keeps ties deterministic)
    order = sorted(
        range(profile.n_values),
        key=lambda i: (-profile.values[i].inner_accesses, -profile.values[i].outer_accesses, i),
    )
    spilled_idx = sorted(order[profile.n_values - n_spilled:])
    spilled = tuple(profile.values[i] for i in spilled_idx)
    per_inner = sum(v.inner_accesses for v in spilled) * SPILL_ACCESS_COST
    per_outer = sum(v.outer_accesses for v in spilled) * SPILL_ACCESS_COST
    return SpillPlan(
        lmul=lmul,
        usable_groups=avail,
        spilled=tuple(v.name for v in spilled),
        per_strip_outer=per_outer,
        per_inner_iteration=per_inner,
        frame_setup=SPILL_FRAME_SETUP,
    )


# ---------------------------------------------------------------------------
# Profiles of the paper's kernels (value names follow the listings).
# ---------------------------------------------------------------------------

#: Listing 4: va plus the broadcast constant — never spills at any LMUL.
ELEMENTWISE_PROFILE = RegisterProfile(
    "p_add",
    (
        ValueUse("va", inner_accesses=0, outer_accesses=3),
    ),
)

#: Listing 6: x, y, vec_zero live across the inner loop; one scratch
#: value for the carry broadcast.
PLUS_SCAN_PROFILE = RegisterProfile(
    "plus_scan",
    (
        ValueUse("x", inner_accesses=3, outer_accesses=3),
        ValueUse("y", inner_accesses=2),
        ValueUse("vec_zero", inner_accesses=1, outer_accesses=1),
        ValueUse("carry_bcast", outer_accesses=2),
    ),
)

#: Listing 10: seven live values — the profile behind the paper's
#: LMUL=8 anomaly (7 values fit in 7 groups at LMUL=4; only 3 usable
#: groups remain at LMUL=8, spilling 4 values).
SEG_SCAN_PROFILE = RegisterProfile(
    "seg_plus_scan",
    (
        ValueUse("x", inner_accesses=3, outer_accesses=3),
        ValueUse("flags", inner_accesses=3, outer_accesses=2),
        ValueUse("y", inner_accesses=2),
        ValueUse("flags_slideup", inner_accesses=2),
        ValueUse("vec_zero", inner_accesses=1),
        ValueUse("vec_one", inner_accesses=1),
        ValueUse("carry_bcast", outer_accesses=2),
    ),
    mask_values=2,  # mask and carry_mask (Listing 10 lines 14-15)
)

#: Listing 8: flags value, iota result, count broadcast.
ENUMERATE_PROFILE = RegisterProfile(
    "enumerate",
    (
        ValueUse("v", outer_accesses=4),
        ValueUse("iota", outer_accesses=2),
    ),
)

#: Listing 5: data value and index value.
PERMUTE_PROFILE = RegisterProfile(
    "permute",
    (
        ValueUse("vdata", outer_accesses=2),
        ValueUse("vindex", outer_accesses=3),
    ),
)

#: Name → profile map so tables (the :mod:`repro.svm.opspec` registry)
#: can reference a charge profile by a stable string instead of
#: importing the value objects.
PROFILES = {
    "elementwise": ELEMENTWISE_PROFILE,
    "plus_scan": PLUS_SCAN_PROFILE,
    "seg_scan": SEG_SCAN_PROFILE,
    "enumerate": ENUMERATE_PROFILE,
    "permute": PERMUTE_PROFILE,
}

"""An assembly-level RVV executor — the paper's Listing 2, runnable.

The intrinsic layer models the paper's C listings; this module models
its *assembly* listing: a small RV64+RVV interpreter with named scalar
registers, the architectural vector register file (LMUL grouping and
all), labels and branches. Programs are lists of textual instructions
in standard mnemonic syntax::

    prog = parse('''
    vector_add:
        beqz a0, End
    Loop:
        vsetvli a3, a0, e32, m1, ta, mu
        vle32.v v8, (a1)
        vle32.v v9, (a2)
        vadd.vv v8, v8, v9
        vse32.v v8, (a1)
        slli a4, a3, 2
        add a1, a1, a4
        sub a0, a0, a3
        add a2, a2, a4
        bnez a0, Loop
    End:
        ret
    ''')

Executing a program counts one dynamic instruction per retired
instruction into the machine's counters — the literal definition of
the paper's metric. ``tests/rvv/test_asm.py`` runs Listing 2 verbatim
and checks it against the intrinsic port of Listing 1, instruction
count and all.

The instruction subset covers what the paper's listings and kernels
need (config, unit-stride memory, vv/vx arithmetic, slides, masks,
scalar ALU and branches); unknown mnemonics raise with a clear message.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, ReproError
from .counters import Cat
from .machine import RVVMachine
from .regfile import NUM_REGS
from .types import LMUL, SEW

__all__ = ["AsmProgram", "AsmCPU", "parse", "LISTING2_VECTOR_ADD"]

#: RV64 ABI register names -> x-register numbers.
ABI_NAMES = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
    "a6": 16, "a7": 17,
    **{f"s{i}": 16 + i for i in range(2, 12)},
    **{f"t{i}": 25 + i for i in range(3, 7)},
    **{f"x{i}": i for i in range(32)},
}

_CATEGORY = {
    "vsetvli": Cat.VCONFIG,
    "vle32.v": Cat.VMEM, "vse32.v": Cat.VMEM,
    "vadd.vv": Cat.VARITH, "vadd.vx": Cat.VARITH, "vadd.vi": Cat.VARITH,
    "vsub.vv": Cat.VARITH, "vand.vx": Cat.VARITH, "vor.vv": Cat.VARITH,
    "vsrl.vx": Cat.VARITH, "vsll.vx": Cat.VARITH,
    "vmv.v.x": Cat.VPERM, "vmv.v.i": Cat.VPERM, "vmv.x.s": Cat.VPERM,
    "vslideup.vx": Cat.VPERM, "vslidedown.vx": Cat.VPERM,
    "vredsum.vs": Cat.VREDUCE,
}


@dataclass(frozen=True)
class AsmInstruction:
    """One parsed instruction."""

    mnemonic: str
    operands: tuple[str, ...]
    line: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mnemonic} {', '.join(self.operands)}"


@dataclass
class AsmProgram:
    """A parsed program: instruction list plus label -> index map."""

    instructions: list[AsmInstruction]
    labels: dict[str, int]

    def target(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise ReproError(f"undefined label {label!r}") from None


def parse(source: str) -> AsmProgram:
    """Parse assembly text: one instruction per line, ``label:`` lines,
    ``#`` comments."""
    instructions: list[AsmInstruction] = []
    labels: dict[str, int] = {}
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        while True:
            m = re.match(r"^([A-Za-z_][\w.]*):\s*(.*)$", line)
            if not m:
                break
            labels[m.group(1)] = len(instructions)
            line = m.group(2).strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0]
        operands = tuple(
            op.strip() for op in parts[1].split(",")
        ) if len(parts) > 1 else ()
        instructions.append(AsmInstruction(mnemonic, operands, lineno))
    return AsmProgram(instructions, labels)


class AsmCPU:
    """A scalar+vector hart executing parsed programs on a machine.

    Scalar registers are 64-bit two's-complement; the vector state is
    the machine's :class:`~repro.rvv.regfile.RegisterFile`, addressed
    by real register numbers with LMUL group-alignment enforcement.
    """

    #: Execution fuel: one Table-2-sized kernel needs ~6e6 steps; the
    #: cap catches runaway branches in user programs.
    DEFAULT_MAX_STEPS = 50_000_000

    def __init__(self, machine: RVVMachine) -> None:
        self.machine = machine
        self.x = [0] * NUM_REGS
        self.vl = 0
        self.sew = SEW.E32
        self.lmul = LMUL.M1

    # -- operand helpers -----------------------------------------------------
    @staticmethod
    def _xreg(name: str) -> int:
        try:
            return ABI_NAMES[name]
        except KeyError:
            raise ReproError(f"unknown scalar register {name!r}") from None

    @staticmethod
    def _vreg(name: str) -> int:
        m = re.fullmatch(r"v(\d+)", name)
        if not m or not 0 <= int(m.group(1)) < NUM_REGS:
            raise ReproError(f"unknown vector register {name!r}")
        return int(m.group(1))

    def _read_x(self, name: str) -> int:
        reg = self._xreg(name)
        return 0 if reg == 0 else self.x[reg]

    def _write_x(self, name: str, value: int) -> None:
        reg = self._xreg(name)
        if reg:
            value &= (1 << 64) - 1
            if value >= 1 << 63:
                value -= 1 << 64
            self.x[reg] = value

    @staticmethod
    def _mem_operand(operand: str) -> str:
        m = re.fullmatch(r"\((\w+)\)", operand)
        if not m:
            raise ReproError(f"expected (reg) memory operand, got {operand!r}")
        return m.group(1)

    def _read_v(self, name: str) -> np.ndarray:
        reg = self._vreg(name)
        self.machine.regfile.check_group(reg, self.lmul)
        return self.machine.regfile.read(reg, self.sew, self.lmul, vl=self.vl)

    def _write_v(self, name: str, values: np.ndarray) -> None:
        reg = self._vreg(name)
        self.machine.regfile.check_group(reg, self.lmul)
        self.machine.regfile.write(reg, values, self.sew, self.lmul)

    # -- execution --------------------------------------------------------------
    def run(self, program: AsmProgram, entry: str | int = 0,
            max_steps: int = DEFAULT_MAX_STEPS) -> int:
        """Execute until ``ret`` (or falling off the end); returns the
        number of instructions retired."""
        pc = program.target(entry) if isinstance(entry, str) else int(entry)
        retired = 0
        count = self.machine.counters.add
        while 0 <= pc < len(program.instructions):
            if retired >= max_steps:
                raise ReproError(f"execution exceeded {max_steps} steps")
            ins = program.instructions[pc]
            retired += 1
            pc = self._step(ins, pc, program, count)
            if pc is None:
                break
        return retired

    def _step(self, ins: AsmInstruction, pc: int, program: AsmProgram, count):
        name, ops = ins.mnemonic, ins.operands
        try:
            # --- scalar ALU -------------------------------------------------
            if name == "li":
                self._write_x(ops[0], int(ops[1], 0))
            elif name == "mv":
                self._write_x(ops[0], self._read_x(ops[1]))
            elif name == "add":
                self._write_x(ops[0], self._read_x(ops[1]) + self._read_x(ops[2]))
            elif name == "addi":
                self._write_x(ops[0], self._read_x(ops[1]) + int(ops[2], 0))
            elif name == "sub":
                self._write_x(ops[0], self._read_x(ops[1]) - self._read_x(ops[2]))
            elif name == "slli":
                self._write_x(ops[0], self._read_x(ops[1]) << int(ops[2], 0))
            elif name == "srli":
                self._write_x(ops[0],
                              (self._read_x(ops[1]) & ((1 << 64) - 1)) >> int(ops[2], 0))
            elif name == "lw":
                addr = self._read_x(self._mem_operand(ops[1]))
                self._write_x(ops[0],
                              int(self.machine.memory.view(addr, 1, np.uint32)[0]))
            elif name == "sw":
                addr = self._read_x(self._mem_operand(ops[1]))
                self.machine.memory.view(addr, 1, np.uint32)[0] = \
                    self._read_x(ops[0]) & 0xFFFFFFFF
            # --- branches ----------------------------------------------------
            elif name == "beqz":
                count(Cat.SCALAR)
                return program.target(ops[1]) if self._read_x(ops[0]) == 0 else pc + 1
            elif name == "bnez":
                count(Cat.SCALAR)
                return program.target(ops[1]) if self._read_x(ops[0]) != 0 else pc + 1
            elif name == "j":
                count(Cat.SCALAR)
                return program.target(ops[0])
            elif name == "ret":
                count(Cat.SCALAR)
                return None
            # --- vector configuration -----------------------------------------
            elif name == "vsetvli":
                rd, rs1, sew_s, lmul_s = ops[0], ops[1], ops[2], ops[3]
                self.sew = SEW(int(sew_s.lstrip("e")))
                self.lmul = LMUL(int(lmul_s.lstrip("m")))
                avl = self._read_x(rs1)
                # the machine counts the vsetvli itself
                self.vl = self.machine.vsetvl(avl, self.sew, self.lmul)
                self._write_x(rd, self.vl)
                return pc + 1
            # --- vector memory ---------------------------------------------------
            elif name == "vle32.v":
                addr = self._read_x(self._mem_operand(ops[1]))
                data = self.machine.memory.view(addr, self.vl, np.uint32)
                self._write_v(ops[0], data.copy())
                count(_CATEGORY[name])
                return pc + 1
            elif name == "vse32.v":
                addr = self._read_x(self._mem_operand(ops[1]))
                self.machine.memory.view(addr, self.vl, np.uint32)[:] = \
                    self._read_v(ops[0])
                count(_CATEGORY[name])
                return pc + 1
            # --- vector compute -----------------------------------------------------
            elif name in ("vadd.vv", "vsub.vv", "vor.vv"):
                fn = {"vadd.vv": np.add, "vsub.vv": np.subtract,
                      "vor.vv": np.bitwise_or}[name]
                self._write_v(ops[0], fn(self._read_v(ops[1]), self._read_v(ops[2])))
                count(_CATEGORY[name])
                return pc + 1
            elif name in ("vadd.vx", "vand.vx", "vsrl.vx", "vsll.vx"):
                rhs = self._read_x(ops[2]) & 0xFFFFFFFF
                lhs = self._read_v(ops[1])
                if name == "vadd.vx":
                    out = lhs + np.uint32(rhs)
                elif name == "vand.vx":
                    out = lhs & np.uint32(rhs)
                elif name == "vsrl.vx":
                    out = lhs >> np.uint32(rhs & 31)
                else:
                    out = lhs << np.uint32(rhs & 31)
                self._write_v(ops[0], out)
                count(_CATEGORY[name])
                return pc + 1
            elif name == "vadd.vi":
                self._write_v(ops[0],
                              self._read_v(ops[1]) + np.uint32(int(ops[2], 0) & 0xFFFFFFFF))
                count(_CATEGORY[name])
                return pc + 1
            elif name == "vmv.v.x":
                self._write_v(ops[0],
                              np.full(self.vl, self._read_x(ops[1]) & 0xFFFFFFFF,
                                      dtype=np.uint32))
                count(_CATEGORY[name])
                return pc + 1
            elif name == "vmv.v.i":
                self._write_v(ops[0],
                              np.full(self.vl, int(ops[1], 0) & 0xFFFFFFFF,
                                      dtype=np.uint32))
                count(_CATEGORY[name])
                return pc + 1
            elif name == "vmv.x.s":
                v = self._read_v(ops[1])
                self._write_x(ops[0], int(v[0]) if v.size else 0)
                count(_CATEGORY[name])
                return pc + 1
            elif name in ("vslideup.vx", "vslidedown.vx"):
                src = self._read_v(ops[1])
                offset = self._read_x(ops[2])
                if name == "vslideup.vx":
                    out = self._read_v(ops[0])  # dest lanes below offset kept
                    if offset < self.vl:
                        out[offset:] = src[: self.vl - offset]
                else:
                    out = np.zeros(self.vl, dtype=np.uint32)
                    if offset < self.vl:
                        out[: self.vl - offset] = src[offset:]
                self._write_v(ops[0], out)
                count(_CATEGORY[name])
                return pc + 1
            elif name == "vredsum.vs":
                acc = self._read_v(ops[2])[0] if self.vl else np.uint32(0)
                total = np.uint32(acc) + np.sum(self._read_v(ops[1]), dtype=np.uint32)
                out = self._read_v(ops[0]).copy()
                if out.size:
                    out[0] = total
                self._write_v(ops[0], out)
                count(_CATEGORY[name])
                return pc + 1
            else:
                raise ReproError(
                    f"unsupported mnemonic {name!r} at line {ins.line}"
                )
        except (IndexError, ValueError) as exc:
            raise ReproError(f"bad operands for {ins} (line {ins.line}): {exc}") from exc
        # plain scalar instructions fall through to here
        count(Cat.SCALAR)
        return pc + 1


#: The paper's Listing 2 verbatim (strip-mined vector_add in assembly).
LISTING2_VECTOR_ADD = """
# assume
# a0 stores n
# a1 stores address pointing to a[]
# a2 stores address pointing to b[]
vector_add:
        beqz a0, End
Loop:
        vsetvli a3, a0, e32, m1, ta, mu
        # load vl=a3 elements of data from a[] and b[]
        vle32.v v8, (a1)
        vle32.v v9, (a2)
        # add data from a[] and b[] to v8
        vadd.vv v8, v8, v9
        # store the result to a[]
        vse32.v v8, (a1)
        slli a4, a3, 2
        # a += vl
        add a1, a1, a4
        # n -= vl
        sub a0, a0, a3
        # b += vl
        add a2, a2, a4
        bnez a0, Loop
End:
        ret
"""

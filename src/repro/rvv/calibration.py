"""Calibration of the PAPER codegen preset against the paper's tables.

The paper measures *dynamic instruction counts on Spike* of kernels
compiled by LLVM from RVV intrinsics. Our simulator executes the same
intrinsic streams, but a compiler also emits instructions the intrinsic
stream does not show: register moves for undisturbed destinations,
loop bookkeeping, prologue/epilogue code. The ``PAPER`` preset models
those with constants *derived from the paper's own tables*; the
``IDEAL`` preset charges one instruction per intrinsic plus minimal
bookkeeping. Semantics are identical under both presets — only counts
differ.

Derivation (all references are to the paper's tables)
------------------------------------------------------

**Segmented plus-scan** (Listing 10). Per-strip cost solves to
``22 + 12 * ceil(lg vl)`` and a one-time prologue of 39. This fits
*exactly*:

* Table 4 at every N (vl = 32 -> 82/strip; e.g. 10^6: 31250 strips * 82
  + 39 = 2562539);
* Table 7 at every VLEN (vl = 4/8/16/32 -> 46/58/70/82 per strip,
  e.g. VLEN=128: 2500 * 46 + 39 = 115039);
* Table 5's LMUL=4 column (vl = 128 -> 106/strip) within 0.5%;
* the LMUL=2 counts *implied by Table 6's ratios* (vl = 64 -> 94/strip).
  Table 5's printed LMUL=2 column instead duplicates Table 4's baseline
  column — an apparent copy-paste error; see DESIGN.md.

Decomposition used by the model: the inner loop body (lines 17-30 of
Listing 10) issues 5 intrinsics; with the undisturbed-destination and
masked-operation expansions (+1 register move each) that is 8 vector
instructions, leaving an inner-loop scalar overhead of 4
(offset shift, compare, branch, +1). The outer body issues 8
intrinsics -> 10 vector instructions after expansions, plus 2 scalar
instructions for the carry reload, leaving a strip overhead of 10.

**p_add** (Listing 4). Tables 2 and 7 give 9 instructions/strip at
every VLEN: 4 intrinsics + 5 scalar bookkeeping, prologue 9 (exact for
N >= 10^3; Table 2's N=10^2 row reads 66 where the model gives 45, and
Table 7's column sits a constant +25 above Table 2 — both recorded in
EXPERIMENTS.md as inconsistencies of the source data).

**Unsegmented plus-scan** (Listing 6). Table 3 gives 84.0/strip at
vl=32 (e.g. 10^6: 31250 * 84 + 31 = 2625031, exact; 10^5 exact; N <=
10^4 within 0.2%). The listing's instruction stream implies only
~7 vector instructions per inner iteration; the residual (modeled as
inner overhead 9, strip overhead 18) captures additional register
shuffling in the paper's build — notably the paper's *unsegmented* scan
measures slightly slower per strip than its segmented scan, which no
instruction-stream argument can produce.  We keep the fitted value and
flag it.

**Spill model** (Tables 5-6, LMUL=8): see
:mod:`repro.rvv.allocation`. Fitted constants there: each spilled
value access costs 2 instructions (address + whole-register move), and
a one-time spill frame setup of 1950 instructions; this lands within
0.006%-3% of Table 5's LMUL=8 column across N.

**Scalar baselines** (Tables 2-4): exact linear forms measured from the
paper — ``p_add``: 6N + 1; ``plus_scan``: 6N + 26; segmented scan:
11N + 24. See :mod:`repro.scalar.kernels`.

**qsort** (Table 1): ~26 dynamic instructions per comparator call fits
every row; see :mod:`repro.scalar.qsort`.
"""

from __future__ import annotations

__all__ = [
    "PAPER_STRIP_OVERHEAD",
    "PAPER_INNER_OVERHEAD",
    "PAPER_PROLOGUE",
    "DEFAULT_STRIP_OVERHEAD",
    "DEFAULT_INNER_OVERHEAD",
    "DEFAULT_PROLOGUE",
    "IDEAL_INNER_OVERHEAD",
    "ideal_strip_overhead",
    "IDEAL_PROLOGUE",
]

# --- PAPER preset ---------------------------------------------------------

#: Scalar bookkeeping charged once per strip-mining iteration, by kernel.
#: Values are fitted as described in the module docstring; kernels not
#: listed use DEFAULT_STRIP_OVERHEAD.
PAPER_STRIP_OVERHEAD: dict[str, int] = {
    "p_add": 5,
    "p_sub": 5,
    "p_mul": 5,
    "p_and": 5,
    "p_or": 5,
    "p_xor": 5,
    "p_max": 5,
    "p_min": 5,
    "p_srl": 5,
    "p_sll": 5,
    "p_select": 7,  # three input arrays -> extra pointer bumps (Table 1 fit)
    "get_flags": 6,
    "permute": 7,
    "enumerate": 8,  # get_flags/permute/enumerate fitted to Table 1
    "plus_scan": 18,  # fitted residual, see docstring
    "seg_plus_scan": 10,
}

#: Scalar bookkeeping charged once per in-register-scan inner iteration.
PAPER_INNER_OVERHEAD: dict[str, int] = {
    "plus_scan": 9,  # fitted residual, see docstring
    "seg_plus_scan": 4,
}

#: One-time per-call cost (function prologue/epilogue, setup before the
#: strip loop such as vsetvlmax + broadcast of constants).
PAPER_PROLOGUE: dict[str, int] = {
    "p_add": 9,
    "p_sub": 9,
    "p_mul": 9,
    "p_and": 9,
    "p_or": 9,
    "p_xor": 9,
    "p_max": 9,
    "p_min": 9,
    "p_srl": 9,
    "p_sll": 9,
    "p_select": 20,
    "get_flags": 9,
    "permute": 20,
    "enumerate": 25,  # per-call prologues fitted to Table 1 small-N rows
    "plus_scan": 29,  # +2 counted setup intrinsics (vsetvlmax, broadcast) = 31 one-time
    "seg_plus_scan": 36,  # +3 counted setup intrinsics = 39 one-time
}

#: Fallbacks for kernels without a fitted entry (derived operations such
#: as split): modeled like a two-array elementwise loop.
DEFAULT_STRIP_OVERHEAD = 6
DEFAULT_INNER_OVERHEAD = 4
DEFAULT_PROLOGUE = 10

# --- IDEAL preset ----------------------------------------------------------

#: Inner-loop bookkeeping: offset shift, compare, branch.
IDEAL_INNER_OVERHEAD = 3

#: One-time cost: entry branch + loop pre-check.
IDEAL_PROLOGUE = 2


def ideal_strip_overhead(n_arrays: int) -> int:
    """Minimal per-strip bookkeeping: byte-offset shift, one pointer bump
    per array, AVL decrement, loop branch."""
    return 3 + max(1, n_arrays)

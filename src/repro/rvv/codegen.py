"""Codegen cost models: how many dynamic instructions an intrinsic costs.

The paper's metric (Spike dynamic instruction count) observes *compiled*
code, so the cost of a kernel includes instructions the compiler adds
around the intrinsics. This module defines the two presets used
throughout the library:

* :data:`IDEAL` — one instruction per intrinsic, minimal loop
  bookkeeping. The honest lower bound; the default for library users.
* :data:`PAPER` — per-intrinsic expansions (undisturbed destinations
  and masked operations each cost one extra register move) plus
  per-kernel fitted overheads from :mod:`repro.rvv.calibration`.
  Used by the benchmark harness to regenerate the paper's tables.

Both presets leave *semantics* untouched; they only scale counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import calibration as cal

__all__ = ["CodegenModel", "IDEAL", "PAPER", "get_preset", "PRESETS"]


@dataclass(frozen=True)
class CodegenModel:
    """A named cost model consulted by the machine and the fast path.

    Attributes
    ----------
    name:
        Preset identifier (``"ideal"`` or ``"paper"``).
    expand_dest_undisturbed:
        Extra instructions for an operation whose destination operand
        carries pre-existing values the result must merge over (e.g.
        ``vslideup`` into a non-scratch register, ``vmv.s.x``): the
        compiler materializes a register copy first.
    expand_masked:
        Extra instructions for a masked operation with an explicit
        ``maskedoff`` operand (mask-undisturbed policy, §3.2).
    """

    name: str
    expand_dest_undisturbed: int
    expand_masked: int
    strip_overheads: dict[str, int]
    inner_overheads: dict[str, int]
    prologues: dict[str, int]
    default_strip: int
    default_inner: int
    default_prologue: int
    #: If True, per-strip/inner overheads fall back to structural
    #: formulas (IDEAL) instead of the fitted defaults.
    structural_fallback: bool = False

    # -- per-intrinsic cost -------------------------------------------------
    def op_cost(self, dest_undisturbed: bool = False, masked: bool = False) -> int:
        """Dynamic instruction cost of one intrinsic call."""
        cost = 1
        if dest_undisturbed:
            cost += self.expand_dest_undisturbed
        if masked:
            cost += self.expand_masked
        return cost

    # -- per-kernel loop overheads -------------------------------------------
    def strip_overhead(self, kernel: str, n_arrays: int = 1) -> int:
        """Scalar bookkeeping per strip-mining iteration of ``kernel``."""
        if self.structural_fallback:
            return cal.ideal_strip_overhead(n_arrays)
        return self.strip_overheads.get(kernel, self.default_strip)

    def inner_overhead(self, kernel: str) -> int:
        """Scalar bookkeeping per in-register-scan inner iteration."""
        if self.structural_fallback:
            return self.default_inner
        return self.inner_overheads.get(kernel, self.default_inner)

    def prologue(self, kernel: str) -> int:
        """One-time per-call overhead (function prologue, constant setup)."""
        if self.structural_fallback:
            return self.default_prologue
        return self.prologues.get(kernel, self.default_prologue)


#: Honest lower-bound preset: every intrinsic is one instruction.
IDEAL = CodegenModel(
    name="ideal",
    expand_dest_undisturbed=0,
    expand_masked=0,
    strip_overheads={},
    inner_overheads={},
    prologues={},
    default_strip=0,  # unused: structural_fallback routes to formulas
    default_inner=cal.IDEAL_INNER_OVERHEAD,
    default_prologue=cal.IDEAL_PROLOGUE,
    structural_fallback=True,
)

#: Preset calibrated to the paper's Spike/LLVM measurements.
PAPER = CodegenModel(
    name="paper",
    expand_dest_undisturbed=1,
    expand_masked=1,
    strip_overheads=cal.PAPER_STRIP_OVERHEAD,
    inner_overheads=cal.PAPER_INNER_OVERHEAD,
    prologues=cal.PAPER_PROLOGUE,
    default_strip=cal.DEFAULT_STRIP_OVERHEAD,
    default_inner=cal.DEFAULT_INNER_OVERHEAD,
    default_prologue=cal.DEFAULT_PROLOGUE,
)

PRESETS: dict[str, CodegenModel] = {"ideal": IDEAL, "paper": PAPER}


def get_preset(name: str | CodegenModel) -> CodegenModel:
    """Resolve a preset by name (or pass a model through)."""
    if isinstance(name, CodegenModel):
        return name
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown codegen preset {name!r}; available: {sorted(PRESETS)}"
        ) from None

"""Dynamic instruction counting — the paper's performance metric.

The paper evaluates on Spike, a *functional* (non-cycle-accurate) RISC-V
simulator, and therefore reports **dynamic instruction counts** rather
than cycles (§6.1). This module is the equivalent metric source for our
simulated machine: every intrinsic executed and every modeled scalar
bookkeeping instruction increments a counter here.

Counts are broken down by category so ablation benches can attribute
cost (e.g. how much of an LMUL=8 run is spill traffic, mirroring the
paper's §6.3 discussion of register-spill overhead).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Cat", "Counters", "CounterSnapshot"]


class Cat(enum.Enum):
    """Dynamic-instruction categories."""

    # Enum.__hash__ is a Python-level function (hash of the member
    # name); counters are dicts keyed by Cat and incremented on every
    # modeled instruction group, so use the C-level identity hash.
    # Members are singletons and enum equality is already identity,
    # so dict semantics are unchanged.
    __hash__ = object.__hash__

    #: vsetvl / vsetvli configuration-setting instructions.
    VCONFIG = "vconfig"
    #: Vector unit-stride loads and stores (vle / vse).
    VMEM = "vmem"
    #: Vector indexed loads/stores (vluxei / vsuxei) — the permutation
    #: primitive's workhorse (§4.2).
    VMEM_INDEXED = "vmem_indexed"
    #: Vector integer arithmetic/logical (vadd, vsub, vand, vor, ...).
    VARITH = "varith"
    #: Mask-producing compares (vmseq, vmsne, ...) and mask-register ops
    #: (vmsbf, vmand, viota, vcpop, ...).
    VMASK = "vmask"
    #: Vector permutation instructions (vslideup, vslidedown, vrgather,
    #: vcompress, vmv.s.x / vmv.x.s).
    VPERM = "vperm"
    #: Vector reductions (vredsum etc.).
    VREDUCE = "vreduce"
    #: Scalar instructions modeled around the vector kernel (pointer
    #: bumps, loop branches, carry loads, ...).
    SCALAR = "scalar"
    #: Whole-register spill/reload traffic synthesized by the register
    #: allocation model (§6.3, Tables 5-6).
    SPILL = "spill"
    #: Modeled memory-management cost (malloc/free/mmap page faults);
    #: see repro.scalar.malloc_model and DESIGN.md's Table 1 analysis.
    ALLOC = "alloc"


_VECTOR_CATS = frozenset(
    {
        Cat.VCONFIG,
        Cat.VMEM,
        Cat.VMEM_INDEXED,
        Cat.VARITH,
        Cat.VMASK,
        Cat.VPERM,
        Cat.VREDUCE,
    }
)


@dataclass(frozen=True)
class CounterSnapshot:
    """An immutable copy of counter state, for deltas across regions."""

    by_category: dict[Cat, int]

    @property
    def total(self) -> int:
        return sum(self.by_category.values())

    def __sub__(self, other: "CounterSnapshot") -> "CounterSnapshot":
        return CounterSnapshot(
            {
                cat: self.by_category.get(cat, 0) - other.by_category.get(cat, 0)
                for cat in Cat
            }
        )


@dataclass
class Counters:
    """Mutable dynamic-instruction counters attached to a machine.

    The hot-path API is :meth:`add`; kernels running millions of strips
    call it once per modeled instruction group, so it does the minimum
    work possible (a dict increment).
    """

    _counts: dict[Cat, int] = field(default_factory=lambda: {c: 0 for c in Cat})

    def add(self, category: Cat, n: int = 1) -> None:
        """Record ``n`` dynamic instructions of ``category``."""
        self._counts[category] += n

    def add_many(self, items) -> None:
        """Record a batch of ``(category, n)`` charges in one call.

        Generated kernels (:mod:`repro.engine.codegen`) charge a whole
        fused group's closed-form profile at once; batching keeps the
        per-group call cost constant instead of one :meth:`add` call
        per category.
        """
        counts = self._counts
        for category, n in items:
            counts[category] += n

    def reset(self) -> None:
        """Zero every counter."""
        for cat in self._counts:
            self._counts[cat] = 0

    def snapshot(self) -> CounterSnapshot:
        """An immutable copy of the current counts."""
        return CounterSnapshot(dict(self._counts))

    def __getitem__(self, category: Cat) -> int:
        return self._counts[category]

    @property
    def total(self) -> int:
        """Total dynamic instruction count (the paper's metric)."""
        return sum(self._counts.values())

    @property
    def vector_total(self) -> int:
        """Dynamic count of vector-unit instructions only."""
        return sum(v for c, v in self._counts.items() if c in _VECTOR_CATS)

    @property
    def scalar_total(self) -> int:
        """Dynamic count of modeled scalar instructions."""
        return self._counts[Cat.SCALAR]

    @property
    def spill_total(self) -> int:
        """Dynamic count of modeled spill/reload instructions."""
        return self._counts[Cat.SPILL]

    def as_dict(self) -> dict[str, int]:
        """Counts keyed by category value, plus ``"total"``."""
        out = {cat.value: n for cat, n in self._counts.items()}
        out["total"] = self.total
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nonzero = {c.value: n for c, n in self._counts.items() if n}
        return f"Counters(total={self.total}, {nonzero})"

"""The RVV intrinsic API surface.

Functions here mirror the RISC-V vector intrinsic C API the paper
programs against (§3), taking the target :class:`~repro.rvv.machine.
RVVMachine` as their first argument. For kernels that want the exact
look of the paper's listings, :class:`Intr` binds a machine once so
call sites read ``iv.vadd_vv(x, y, vl)``:

>>> from repro.rvv import RVVMachine
>>> from repro.rvv.intrinsics import Intr
>>> m = RVVMachine(vlen=128)
>>> iv = Intr(m)
>>> vl = iv.vsetvl(3)
>>> v = iv.vmv_v_x(7, vl)
>>> v.tolist()
[7, 7, 7]
"""

from __future__ import annotations

import functools

from ..machine import RVVMachine
from ..value import VMask, VReg
from . import arith, compare, loadstore, mask, move, permutation, reduction
from .arith import *  # noqa: F401,F403
from .compare import *  # noqa: F401,F403
from .loadstore import *  # noqa: F401,F403
from .mask import *  # noqa: F401,F403
from .move import *  # noqa: F401,F403
from .permutation import *  # noqa: F401,F403
from .reduction import *  # noqa: F401,F403

_MODULES = (arith, compare, loadstore, mask, move, permutation, reduction)

__all__ = ["Intr", "VReg", "VMask"]
for _mod in _MODULES:
    __all__.extend(_mod.__all__)


class Intr:
    """All intrinsics bound to one machine, plus the configuration
    instructions (``vsetvl``/``vsetvlmax``) forwarded from the machine.

    Binding happens once at construction (a ``functools.partial`` per
    intrinsic), so per-call overhead in strip-mined hot loops stays at
    one attribute lookup.
    """

    def __init__(self, machine: RVVMachine) -> None:
        self.machine = machine
        for mod in _MODULES:
            for name in mod.__all__:
                fn = getattr(mod, name)
                if callable(fn) and name != "vundefined":
                    setattr(self, name, functools.partial(fn, machine))
        self.vundefined = move.vundefined
        self.vsetvl = machine.vsetvl
        self.vsetvlmax = machine.vsetvlmax
        self.vlmax = machine.vlmax

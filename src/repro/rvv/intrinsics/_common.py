"""Shared helpers for the intrinsic implementations."""

from __future__ import annotations

import numpy as np

from ...errors import MaskError, VectorLengthError
from ..value import VMask, VReg

__all__ = ["to_scalar", "check_same_vl", "apply_mask", "require_vl"]


def to_scalar(x: int, dtype: np.dtype):
    """Convert a Python int to a NumPy scalar of ``dtype`` with the
    modular wrap-around semantics of machine arithmetic.

    NumPy 2 raises :class:`OverflowError` when a Python int is out of
    range for the target dtype; hardware (and the paper's C code)
    wraps, so we wrap explicitly.
    """
    dtype = np.dtype(dtype)
    bits = dtype.itemsize * 8
    x = int(x) & ((1 << bits) - 1)
    if dtype.kind == "i" and x >= (1 << (bits - 1)):
        x -= 1 << bits
    return dtype.type(x)


def require_vl(vl: int) -> int:
    """Validate an explicit vl argument."""
    vl = int(vl)
    if vl < 0:
        raise VectorLengthError(f"vl must be non-negative, got {vl}")
    return vl


def check_same_vl(vl: int, *operands: VReg | VMask) -> None:
    """Every operand must cover exactly ``vl`` active elements."""
    for op in operands:
        op.check_vl(vl)


def apply_mask(
    result: np.ndarray,
    mask: VMask | None,
    maskedoff: VReg | None,
    vl: int,
) -> np.ndarray:
    """Merge ``result`` with ``maskedoff`` under ``mask`` (§3.2).

    * No mask: the result passes through.
    * Mask with ``maskedoff``: mask-undisturbed policy — masked-off
      lanes take their values from ``maskedoff``.
    * Mask without ``maskedoff``: mask-agnostic policy — the spec leaves
      masked-off lanes undefined; we model "undefined" as all-ones so
      that code depending on agnostic lanes fails loudly in tests.
    """
    if mask is None:
        return result
    mask.check_vl(vl)
    if maskedoff is not None:
        maskedoff.check_vl(vl)
        if maskedoff.dtype != result.dtype:
            raise MaskError(
                f"maskedoff dtype {maskedoff.dtype} != result dtype {result.dtype}"
            )
        return np.where(mask.bits, result, maskedoff.data)
    poison = np.full_like(result, np.iinfo(result.dtype).max)
    return np.where(mask.bits, result, poison)

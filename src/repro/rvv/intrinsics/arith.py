"""Vector integer arithmetic and logical intrinsics.

These implement the *elementwise* class of the scan vector model
(§4.1): vector-vector (``.vv``) and vector-scalar (``.vx``) forms, each
with optional masking per §3.2 — a mask plus a ``maskedoff`` operand
selects the mask-undisturbed policy; a mask alone is mask-agnostic.

Arithmetic wraps modularly at the element width, matching hardware and
the paper's ``unsigned int`` kernels.
"""

from __future__ import annotations

import numpy as np

from ...errors import VectorLengthError
from ..counters import Cat
from ..machine import RVVMachine
from ..value import VMask, VReg
from ._common import apply_mask, check_same_vl, require_vl, to_scalar

__all__ = [
    "vadd_vv", "vadd_vx", "vsub_vv", "vsub_vx", "vrsub_vx",
    "vmul_vv", "vmul_vx",
    "vand_vv", "vand_vx", "vor_vv", "vor_vx", "vxor_vv", "vxor_vx",
    "vsll_vx", "vsrl_vx", "vsra_vx",
    "vminu_vv", "vminu_vx", "vmaxu_vv", "vmaxu_vx",
    "vmin_vv", "vmin_vx", "vmax_vv", "vmax_vx",
    "vmulhu_vv", "vmulh_vv",
    "vmacc_vv", "vmacc_vx", "vnmsac_vv", "vmadd_vv",
    "vwaddu_vv", "vwmulu_vv",
    "vzext_vf2", "vsext_vf2",
    "vmerge_vvm", "vmerge_vxm",
]


def _binary_vv(m, op, a: VReg, b: VReg, vl, mask, maskedoff) -> VReg:
    vl = require_vl(vl)
    check_same_vl(vl, a, b)
    m.op(Cat.VARITH, masked=mask is not None and maskedoff is not None)
    result = op(a.data, b.data)
    return VReg(apply_mask(result.astype(a.dtype, copy=False), mask, maskedoff, vl))


def _binary_vx(m, op, a: VReg, x: int, vl, mask, maskedoff) -> VReg:
    vl = require_vl(vl)
    check_same_vl(vl, a)
    m.op(Cat.VARITH, masked=mask is not None and maskedoff is not None)
    result = op(a.data, to_scalar(x, a.dtype))
    return VReg(apply_mask(result.astype(a.dtype, copy=False), mask, maskedoff, vl))


# --- add / sub --------------------------------------------------------------

def vadd_vv(m: RVVMachine, a: VReg, b: VReg, vl: int,
            mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vadd.vv`` — the workhorse of both the elementwise p-add and the
    slideup-and-add in-register scan step (Figure 1)."""
    return _binary_vv(m, np.add, a, b, vl, mask, maskedoff)


def vadd_vx(m: RVVMachine, a: VReg, x: int, vl: int,
            mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vadd.vx`` — vector + broadcast scalar (carry application)."""
    return _binary_vx(m, np.add, a, x, vl, mask, maskedoff)


def vsub_vv(m: RVVMachine, a: VReg, b: VReg, vl: int,
            mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vsub.vv``."""
    return _binary_vv(m, np.subtract, a, b, vl, mask, maskedoff)


def vsub_vx(m: RVVMachine, a: VReg, x: int, vl: int,
            mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vsub.vx``."""
    return _binary_vx(m, np.subtract, a, x, vl, mask, maskedoff)


def vrsub_vx(m: RVVMachine, a: VReg, x: int, vl: int,
             mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vrsub.vx``: ``x - a[i]`` (reverse subtract)."""
    return _binary_vx(m, lambda v, s: s - v, a, x, vl, mask, maskedoff)


# --- multiply ----------------------------------------------------------------

def vmul_vv(m: RVVMachine, a: VReg, b: VReg, vl: int,
            mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vmul.vv`` (low half of the product)."""
    return _binary_vv(m, np.multiply, a, b, vl, mask, maskedoff)


def vmul_vx(m: RVVMachine, a: VReg, x: int, vl: int,
            mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vmul.vx``."""
    return _binary_vx(m, np.multiply, a, x, vl, mask, maskedoff)


# --- bitwise -----------------------------------------------------------------

def vand_vv(m: RVVMachine, a: VReg, b: VReg, vl: int,
            mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vand.vv``."""
    return _binary_vv(m, np.bitwise_and, a, b, vl, mask, maskedoff)


def vand_vx(m: RVVMachine, a: VReg, x: int, vl: int,
            mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vand.vx`` — bit extraction in ``get_flags`` (radix sort)."""
    return _binary_vx(m, np.bitwise_and, a, x, vl, mask, maskedoff)


def vor_vv(m: RVVMachine, a: VReg, b: VReg, vl: int,
           mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vor.vv`` — the flag-propagation step of the in-register
    segmented scan (Listing 10, line 27)."""
    return _binary_vv(m, np.bitwise_or, a, b, vl, mask, maskedoff)


def vor_vx(m: RVVMachine, a: VReg, x: int, vl: int,
           mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vor.vx``."""
    return _binary_vx(m, np.bitwise_or, a, x, vl, mask, maskedoff)


def vxor_vv(m: RVVMachine, a: VReg, b: VReg, vl: int,
            mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vxor.vv``."""
    return _binary_vv(m, np.bitwise_xor, a, b, vl, mask, maskedoff)


def vxor_vx(m: RVVMachine, a: VReg, x: int, vl: int,
            mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vxor.vx``."""
    return _binary_vx(m, np.bitwise_xor, a, x, vl, mask, maskedoff)


# --- shifts --------------------------------------------------------------------

def _shift_amount(x: int, dtype: np.dtype) -> int:
    # RVV uses the low lg2(SEW) bits of the shift operand.
    return int(x) & (dtype.itemsize * 8 - 1)


def vsll_vx(m: RVVMachine, a: VReg, x: int, vl: int,
            mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vsll.vx`` — e.g. scaling element indices to byte offsets for
    ``vsuxei`` in the permute primitive."""
    vl = require_vl(vl)
    check_same_vl(vl, a)
    m.op(Cat.VARITH, masked=mask is not None and maskedoff is not None)
    result = np.left_shift(a.data, _shift_amount(x, a.dtype))
    return VReg(apply_mask(result.astype(a.dtype, copy=False), mask, maskedoff, vl))


def vsrl_vx(m: RVVMachine, a: VReg, x: int, vl: int,
            mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vsrl.vx`` (logical right shift) — bit extraction in radix sort."""
    vl = require_vl(vl)
    check_same_vl(vl, a)
    m.op(Cat.VARITH, masked=mask is not None and maskedoff is not None)
    unsigned = a.data.view(np.dtype(f"u{a.dtype.itemsize}"))
    result = np.right_shift(unsigned, _shift_amount(x, a.dtype)).view(a.dtype)
    return VReg(apply_mask(result, mask, maskedoff, vl))


def vsra_vx(m: RVVMachine, a: VReg, x: int, vl: int,
            mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vsra.vx`` (arithmetic right shift)."""
    vl = require_vl(vl)
    check_same_vl(vl, a)
    m.op(Cat.VARITH, masked=mask is not None and maskedoff is not None)
    signed = a.data.view(np.dtype(f"i{a.dtype.itemsize}"))
    result = np.right_shift(signed, _shift_amount(x, a.dtype)).view(a.dtype)
    return VReg(apply_mask(result, mask, maskedoff, vl))


# --- min / max -------------------------------------------------------------------

def vminu_vv(m: RVVMachine, a: VReg, b: VReg, vl: int,
             mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vminu.vv`` — enables min-scan."""
    return _binary_vv(m, np.minimum, a, b, vl, mask, maskedoff)


def vminu_vx(m: RVVMachine, a: VReg, x: int, vl: int,
             mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vminu.vx``."""
    return _binary_vx(m, np.minimum, a, x, vl, mask, maskedoff)


def vmaxu_vv(m: RVVMachine, a: VReg, b: VReg, vl: int,
             mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vmaxu.vv`` — enables max-scan."""
    return _binary_vv(m, np.maximum, a, b, vl, mask, maskedoff)


def vmaxu_vx(m: RVVMachine, a: VReg, x: int, vl: int,
             mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vmaxu.vx``."""
    return _binary_vx(m, np.maximum, a, x, vl, mask, maskedoff)


# --- merge (select) ----------------------------------------------------------------

def vmerge_vvm(m: RVVMachine, mask: VMask, a: VReg, b: VReg, vl: int) -> VReg:
    """``vmerge.vvm``: lane i takes ``b[i]`` where the mask is set, else
    ``a[i]`` — the p-select elementwise primitive maps here."""
    vl = require_vl(vl)
    check_same_vl(vl, a, b, mask)
    m.op(Cat.VARITH)
    return VReg(np.where(mask.bits, b.data, a.data).astype(a.dtype, copy=False))


def vmerge_vxm(m: RVVMachine, mask: VMask, a: VReg, x: int, vl: int) -> VReg:
    """``vmerge.vxm``: scalar in the set lanes."""
    vl = require_vl(vl)
    check_same_vl(vl, a, mask)
    m.op(Cat.VARITH)
    return VReg(np.where(mask.bits, to_scalar(x, a.dtype), a.data).astype(a.dtype, copy=False))


# --- signed min / max -----------------------------------------------------

def _signed_view(a: VReg) -> np.ndarray:
    return a.data.view(np.dtype(f"i{a.dtype.itemsize}"))


def vmin_vv(m: RVVMachine, a: VReg, b: VReg, vl: int,
            mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vmin.vv`` (signed minimum; operands reinterpreted)."""
    vl = require_vl(vl)
    check_same_vl(vl, a, b)
    m.op(Cat.VARITH, masked=mask is not None and maskedoff is not None)
    result = np.minimum(_signed_view(a), _signed_view(b)).view(a.dtype)
    return VReg(apply_mask(result, mask, maskedoff, vl))


def vmin_vx(m: RVVMachine, a: VReg, x: int, vl: int,
            mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vmin.vx``."""
    vl = require_vl(vl)
    check_same_vl(vl, a)
    m.op(Cat.VARITH, masked=mask is not None and maskedoff is not None)
    sx = to_scalar(x, np.dtype(f"i{a.dtype.itemsize}"))
    result = np.minimum(_signed_view(a), sx).view(a.dtype)
    return VReg(apply_mask(result, mask, maskedoff, vl))


def vmax_vv(m: RVVMachine, a: VReg, b: VReg, vl: int,
            mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vmax.vv`` (signed maximum)."""
    vl = require_vl(vl)
    check_same_vl(vl, a, b)
    m.op(Cat.VARITH, masked=mask is not None and maskedoff is not None)
    result = np.maximum(_signed_view(a), _signed_view(b)).view(a.dtype)
    return VReg(apply_mask(result, mask, maskedoff, vl))


def vmax_vx(m: RVVMachine, a: VReg, x: int, vl: int,
            mask: VMask | None = None, maskedoff: VReg | None = None) -> VReg:
    """``vmax.vx``."""
    vl = require_vl(vl)
    check_same_vl(vl, a)
    m.op(Cat.VARITH, masked=mask is not None and maskedoff is not None)
    sx = to_scalar(x, np.dtype(f"i{a.dtype.itemsize}"))
    result = np.maximum(_signed_view(a), sx).view(a.dtype)
    return VReg(apply_mask(result, mask, maskedoff, vl))


# --- high-half multiply ------------------------------------------------------

def vmulhu_vv(m: RVVMachine, a: VReg, b: VReg, vl: int) -> VReg:
    """``vmulhu.vv``: the high SEW bits of the unsigned product."""
    vl = require_vl(vl)
    check_same_vl(vl, a, b)
    m.op(Cat.VARITH)
    bits = a.dtype.itemsize * 8
    wide = a.data.astype(object) * b.data.astype(object)
    high = np.array([int(w) >> bits for w in wide], dtype=np.uint64)
    return VReg(high.astype(a.dtype))


def vmulh_vv(m: RVVMachine, a: VReg, b: VReg, vl: int) -> VReg:
    """``vmulh.vv``: the high SEW bits of the signed product."""
    vl = require_vl(vl)
    check_same_vl(vl, a, b)
    m.op(Cat.VARITH)
    bits = a.dtype.itemsize * 8
    sa, sb = _signed_view(a), _signed_view(b)
    wide = sa.astype(object) * sb.astype(object)
    high = np.array([(int(w) >> bits) & ((1 << bits) - 1) for w in wide],
                    dtype=np.uint64)
    return VReg(high.astype(a.dtype))


# --- multiply-accumulate family ------------------------------------------------

def vmacc_vv(m: RVVMachine, acc: VReg, a: VReg, b: VReg, vl: int,
             mask: VMask | None = None) -> VReg:
    """``vmacc.vv``: ``acc[i] += a[i] * b[i]`` (destructive on acc —
    an undisturbed destination under the codegen model)."""
    vl = require_vl(vl)
    check_same_vl(vl, acc, a, b)
    m.op(Cat.VARITH, dest_undisturbed=True, masked=mask is not None)
    result = (acc.data + a.data * b.data).astype(acc.dtype, copy=False)
    return VReg(apply_mask(result, mask, acc, vl))


def vmacc_vx(m: RVVMachine, acc: VReg, x: int, b: VReg, vl: int,
             mask: VMask | None = None) -> VReg:
    """``vmacc.vx``: ``acc[i] += x * b[i]``."""
    vl = require_vl(vl)
    check_same_vl(vl, acc, b)
    m.op(Cat.VARITH, dest_undisturbed=True, masked=mask is not None)
    result = (acc.data + to_scalar(x, acc.dtype) * b.data).astype(acc.dtype, copy=False)
    return VReg(apply_mask(result, mask, acc, vl))


def vnmsac_vv(m: RVVMachine, acc: VReg, a: VReg, b: VReg, vl: int) -> VReg:
    """``vnmsac.vv``: ``acc[i] -= a[i] * b[i]``."""
    vl = require_vl(vl)
    check_same_vl(vl, acc, a, b)
    m.op(Cat.VARITH, dest_undisturbed=True)
    return VReg((acc.data - a.data * b.data).astype(acc.dtype, copy=False))


def vmadd_vv(m: RVVMachine, vd: VReg, a: VReg, b: VReg, vl: int) -> VReg:
    """``vmadd.vv``: ``vd[i] = vd[i] * a[i] + b[i]``."""
    vl = require_vl(vl)
    check_same_vl(vl, vd, a, b)
    m.op(Cat.VARITH, dest_undisturbed=True)
    return VReg((vd.data * a.data + b.data).astype(vd.dtype, copy=False))


# --- widening and extension ---------------------------------------------------------

def _widened(dtype: np.dtype) -> np.dtype:
    bits = dtype.itemsize * 8
    if bits >= 64:
        raise VectorLengthError("cannot widen 64-bit elements")
    return np.dtype(f"{dtype.kind}{dtype.itemsize * 2}")


def vwaddu_vv(m: RVVMachine, a: VReg, b: VReg, vl: int) -> VReg:
    """``vwaddu.vv``: 2*SEW-wide unsigned sum (no wrap at SEW)."""
    vl = require_vl(vl)
    check_same_vl(vl, a, b)
    m.op(Cat.VARITH)
    wide = _widened(a.dtype)
    return VReg(a.data.astype(wide) + b.data.astype(wide))


def vwmulu_vv(m: RVVMachine, a: VReg, b: VReg, vl: int) -> VReg:
    """``vwmulu.vv``: 2*SEW-wide unsigned product."""
    vl = require_vl(vl)
    check_same_vl(vl, a, b)
    m.op(Cat.VARITH)
    wide = _widened(a.dtype)
    return VReg(a.data.astype(wide) * b.data.astype(wide))


def vzext_vf2(m: RVVMachine, a: VReg, vl: int) -> VReg:
    """``vzext.vf2``: zero-extend to double width."""
    vl = require_vl(vl)
    check_same_vl(vl, a)
    m.op(Cat.VARITH)
    return VReg(a.data.astype(_widened(a.dtype)))


def vsext_vf2(m: RVVMachine, a: VReg, vl: int) -> VReg:
    """``vsext.vf2``: sign-extend to double width."""
    vl = require_vl(vl)
    check_same_vl(vl, a)
    m.op(Cat.VARITH)
    signed = a.data.view(np.dtype(f"i{a.dtype.itemsize}"))
    wide_signed = signed.astype(np.dtype(f"i{a.dtype.itemsize * 2}"))
    return VReg(wide_signed.view(np.dtype(f"{a.dtype.kind}{a.dtype.itemsize * 2}")) if a.dtype.kind == "u" else wide_signed)

"""Mask-producing vector compare intrinsics (``vms*``).

The paper uses ``vmseq`` to turn flag arrays into hardware masks for
``viota`` (Listing 8) and ``vmsne`` to convert head-flag vectors into
masks for ``vmsbf`` and the in-register segmented scan (Listing 10).
"""

from __future__ import annotations

import numpy as np

from ..counters import Cat
from ..machine import RVVMachine
from ..value import VMask, VReg
from ._common import check_same_vl, require_vl, to_scalar

__all__ = [
    "vmseq_vv", "vmseq_vx", "vmsne_vv", "vmsne_vx",
    "vmsltu_vv", "vmsltu_vx", "vmsleu_vv", "vmsleu_vx",
    "vmsgtu_vv", "vmsgtu_vx", "vmsgeu_vv",
    "vmslt_vv", "vmslt_vx", "vmsle_vv", "vmsle_vx", "vmsgt_vv", "vmsgt_vx",
]


def _cmp_vv(m, op, a: VReg, b: VReg, vl: int) -> VMask:
    vl = require_vl(vl)
    check_same_vl(vl, a, b)
    m.op(Cat.VMASK)
    return VMask(op(a.data, b.data))


def _cmp_vx(m, op, a: VReg, x: int, vl: int) -> VMask:
    vl = require_vl(vl)
    check_same_vl(vl, a)
    m.op(Cat.VMASK)
    return VMask(op(a.data, to_scalar(x, a.dtype)))


def vmseq_vv(m: RVVMachine, a: VReg, b: VReg, vl: int) -> VMask:
    """``vmseq.vv``: mask[i] = (a[i] == b[i])."""
    return _cmp_vv(m, np.equal, a, b, vl)


def vmseq_vx(m: RVVMachine, a: VReg, x: int, vl: int) -> VMask:
    """``vmseq.vx`` — converts a 0/1 flag vector into a mask
    (Listing 8, ``vmseq(v, setBit, vl)``)."""
    return _cmp_vx(m, np.equal, a, x, vl)


def vmsne_vv(m: RVVMachine, a: VReg, b: VReg, vl: int) -> VMask:
    """``vmsne.vv``: mask[i] = (a[i] != b[i])."""
    return _cmp_vv(m, np.not_equal, a, b, vl)


def vmsne_vx(m: RVVMachine, a: VReg, x: int, vl: int) -> VMask:
    """``vmsne.vx`` — head-flag vector to mask (Listing 10, line 14)."""
    return _cmp_vx(m, np.not_equal, a, x, vl)


def vmsltu_vv(m: RVVMachine, a: VReg, b: VReg, vl: int) -> VMask:
    """``vmsltu.vv`` (unsigned less-than)."""
    return _cmp_vv(m, np.less, a, b, vl)


def vmsltu_vx(m: RVVMachine, a: VReg, x: int, vl: int) -> VMask:
    """``vmsltu.vx``."""
    return _cmp_vx(m, np.less, a, x, vl)


def vmsleu_vv(m: RVVMachine, a: VReg, b: VReg, vl: int) -> VMask:
    """``vmsleu.vv``."""
    return _cmp_vv(m, np.less_equal, a, b, vl)


def vmsleu_vx(m: RVVMachine, a: VReg, x: int, vl: int) -> VMask:
    """``vmsleu.vx``."""
    return _cmp_vx(m, np.less_equal, a, x, vl)


def vmsgtu_vv(m: RVVMachine, a: VReg, b: VReg, vl: int) -> VMask:
    """``vmsgtu.vv``."""
    return _cmp_vv(m, np.greater, a, b, vl)


def vmsgtu_vx(m: RVVMachine, a: VReg, x: int, vl: int) -> VMask:
    """``vmsgtu.vx``."""
    return _cmp_vx(m, np.greater, a, x, vl)


def vmsgeu_vv(m: RVVMachine, a: VReg, b: VReg, vl: int) -> VMask:
    """``vmsgeu.vv``."""
    return _cmp_vv(m, np.greater_equal, a, b, vl)


def _signed(a: VReg) -> np.ndarray:
    return a.data.view(np.dtype(f"i{a.dtype.itemsize}"))


def vmslt_vv(m: RVVMachine, a: VReg, b: VReg, vl: int) -> VMask:
    """``vmslt.vv`` (signed less-than)."""
    vl = require_vl(vl)
    check_same_vl(vl, a, b)
    m.op(Cat.VMASK)
    return VMask(_signed(a) < _signed(b))


def vmslt_vx(m: RVVMachine, a: VReg, x: int, vl: int) -> VMask:
    """``vmslt.vx``."""
    vl = require_vl(vl)
    check_same_vl(vl, a)
    m.op(Cat.VMASK)
    return VMask(_signed(a) < to_scalar(x, np.dtype(f"i{a.dtype.itemsize}")))


def vmsle_vv(m: RVVMachine, a: VReg, b: VReg, vl: int) -> VMask:
    """``vmsle.vv``."""
    vl = require_vl(vl)
    check_same_vl(vl, a, b)
    m.op(Cat.VMASK)
    return VMask(_signed(a) <= _signed(b))


def vmsle_vx(m: RVVMachine, a: VReg, x: int, vl: int) -> VMask:
    """``vmsle.vx``."""
    vl = require_vl(vl)
    check_same_vl(vl, a)
    m.op(Cat.VMASK)
    return VMask(_signed(a) <= to_scalar(x, np.dtype(f"i{a.dtype.itemsize}")))


def vmsgt_vv(m: RVVMachine, a: VReg, b: VReg, vl: int) -> VMask:
    """``vmsgt.vv``."""
    vl = require_vl(vl)
    check_same_vl(vl, a, b)
    m.op(Cat.VMASK)
    return VMask(_signed(a) > _signed(b))


def vmsgt_vx(m: RVVMachine, a: VReg, x: int, vl: int) -> VMask:
    """``vmsgt.vx``."""
    vl = require_vl(vl)
    check_same_vl(vl, a)
    m.op(Cat.VMASK)
    return VMask(_signed(a) > to_scalar(x, np.dtype(f"i{a.dtype.itemsize}")))

"""Vector memory intrinsics: unit-stride, strided, and indexed.

The paper's kernels use unit-stride loads/stores (``vle32``/``vse32``)
for strip mining and the *indexed unordered store* ``vsuxei32`` for the
permutation primitive (Listing 5). Strided and indexed loads are
provided for completeness (Blelloch's permutation class includes
gathers).
"""

from __future__ import annotations

import numpy as np

from ...errors import VectorLengthError
from ..counters import Cat
from ..machine import RVVMachine
from ..memory import Pointer
from ..value import VMask, VReg
from ._common import check_same_vl, require_vl

__all__ = [
    "vle",
    "vse",
    "vlse",
    "vsse",
    "vluxei",
    "vsuxei",
]


def vle(m: RVVMachine, ptr: Pointer, vl: int) -> VReg:
    """Unit-stride load of ``vl`` elements (``vle<sew>.v``)."""
    vl = require_vl(vl)
    m.op(Cat.VMEM)
    return VReg(ptr.read(vl))


def vse(m: RVVMachine, ptr: Pointer, value: VReg, vl: int, mask: VMask | None = None) -> None:
    """Unit-stride store of ``vl`` elements (``vse<sew>.v``).

    A masked store leaves masked-off memory locations untouched.
    """
    vl = require_vl(vl)
    check_same_vl(vl, value)
    m.op(Cat.VMEM, masked=mask is not None)
    if mask is None:
        ptr.write(value.data)
        return
    mask.check_vl(vl)
    view = ptr.view(vl)
    view[mask.bits] = value.data[mask.bits].astype(ptr.dtype)


def vlse(m: RVVMachine, ptr: Pointer, byte_stride: int, vl: int) -> VReg:
    """Strided load (``vlse<sew>.v``): element i from
    ``ptr + i * byte_stride`` bytes."""
    vl = require_vl(vl)
    if byte_stride % ptr.dtype.itemsize:
        raise VectorLengthError(
            f"stride {byte_stride} not a multiple of element size {ptr.dtype.itemsize}"
        )
    m.op(Cat.VMEM)
    offsets = np.arange(vl, dtype=np.int64) * byte_stride
    return VReg(ptr.mem.gather(ptr.addr, offsets, ptr.dtype))


def vsse(m: RVVMachine, ptr: Pointer, byte_stride: int, value: VReg, vl: int) -> None:
    """Strided store (``vsse<sew>.v``)."""
    vl = require_vl(vl)
    check_same_vl(vl, value)
    if byte_stride % ptr.dtype.itemsize:
        raise VectorLengthError(
            f"stride {byte_stride} not a multiple of element size {ptr.dtype.itemsize}"
        )
    m.op(Cat.VMEM)
    offsets = np.arange(vl, dtype=np.int64) * byte_stride
    ptr.mem.scatter(ptr.addr, offsets, value.data.astype(ptr.dtype))


def vluxei(m: RVVMachine, ptr: Pointer, byte_offsets: VReg, vl: int) -> VReg:
    """Indexed (gather) load ``vluxei<sew>.v``: element i from
    ``ptr + byte_offsets[i]`` bytes."""
    vl = require_vl(vl)
    check_same_vl(vl, byte_offsets)
    m.op(Cat.VMEM_INDEXED)
    return VReg(ptr.mem.gather(ptr.addr, byte_offsets.data, ptr.dtype))


def vsuxei(
    m: RVVMachine,
    ptr: Pointer,
    byte_offsets: VReg,
    value: VReg,
    vl: int,
    mask: VMask | None = None,
) -> None:
    """Indexed unordered (scatter) store ``vsuxei<sew>.v`` — the
    instruction behind the paper's out-of-place ``permute`` (Listing 5):
    element i goes to ``ptr + byte_offsets[i]`` bytes."""
    vl = require_vl(vl)
    check_same_vl(vl, byte_offsets, value)
    m.op(Cat.VMEM_INDEXED, masked=mask is not None)
    offsets = byte_offsets.data
    data = value.data.astype(ptr.dtype)
    if mask is not None:
        mask.check_vl(vl)
        offsets = offsets[mask.bits]
        data = data[mask.bits]
    ptr.mem.scatter(ptr.addr, offsets, data)

"""Mask-register intrinsics: set-before/if/only-first, logical ops,
population count, iota, element index, find-first.

Two of these carry the paper's key insights:

* ``viota`` is "an in-register enumerate operation" (§4.4) — it turns a
  mask directly into an exclusive prefix count, which is why the
  enumerate primitive built on viota + vcpop beats a generic exclusive
  scan of the flags.
* ``vmsbf`` (set-before-first) yields exactly the carry mask the
  segmented scan needs: all lanes before the first head flag of the
  strip — the lanes still owned by the previous strip's running segment
  (§5.1, Listing 10 line 15).
"""

from __future__ import annotations

import numpy as np

from ..counters import Cat
from ..machine import RVVMachine
from ..value import VMask, VReg
from ._common import require_vl

__all__ = [
    "vmsbf_m", "vmsif_m", "vmsof_m",
    "vmand_mm", "vmor_mm", "vmxor_mm", "vmandn_mm", "vmnand_mm", "vmnot_m",
    "vmset_m", "vmclr_m",
    "vcpop_m", "vfirst_m", "viota_m", "vid_v",
]


def vmsbf_m(m: RVVMachine, mask: VMask, vl: int) -> VMask:
    """``vmsbf.m`` — set-before-first: 1 in every lane strictly before
    the first set lane of ``mask``; all 1s when no lane is set."""
    vl = require_vl(vl)
    mask.check_vl(vl)
    m.op(Cat.VMASK)
    out = np.zeros(vl, dtype=bool)
    set_positions = np.flatnonzero(mask.bits)
    if set_positions.size == 0:
        out[:] = True
    else:
        out[: set_positions[0]] = True
    return VMask(out)


def vmsif_m(m: RVVMachine, mask: VMask, vl: int) -> VMask:
    """``vmsif.m`` — set-including-first."""
    vl = require_vl(vl)
    mask.check_vl(vl)
    m.op(Cat.VMASK)
    out = np.zeros(vl, dtype=bool)
    set_positions = np.flatnonzero(mask.bits)
    if set_positions.size == 0:
        out[:] = True
    else:
        out[: set_positions[0] + 1] = True
    return VMask(out)


def vmsof_m(m: RVVMachine, mask: VMask, vl: int) -> VMask:
    """``vmsof.m`` — set-only-first."""
    vl = require_vl(vl)
    mask.check_vl(vl)
    m.op(Cat.VMASK)
    out = np.zeros(vl, dtype=bool)
    set_positions = np.flatnonzero(mask.bits)
    if set_positions.size:
        out[set_positions[0]] = True
    return VMask(out)


def _mask_logical(m, op, a: VMask, b: VMask, vl: int) -> VMask:
    vl = require_vl(vl)
    a.check_vl(vl)
    b.check_vl(vl)
    m.op(Cat.VMASK)
    return VMask(op(a.bits, b.bits))


def vmand_mm(m: RVVMachine, a: VMask, b: VMask, vl: int) -> VMask:
    """``vmand.mm``."""
    return _mask_logical(m, np.logical_and, a, b, vl)


def vmor_mm(m: RVVMachine, a: VMask, b: VMask, vl: int) -> VMask:
    """``vmor.mm``."""
    return _mask_logical(m, np.logical_or, a, b, vl)


def vmxor_mm(m: RVVMachine, a: VMask, b: VMask, vl: int) -> VMask:
    """``vmxor.mm``."""
    return _mask_logical(m, np.logical_xor, a, b, vl)


def vmandn_mm(m: RVVMachine, a: VMask, b: VMask, vl: int) -> VMask:
    """``vmandn.mm``: a AND NOT b."""
    return _mask_logical(m, lambda x, y: np.logical_and(x, ~y), a, b, vl)


def vmnand_mm(m: RVVMachine, a: VMask, b: VMask, vl: int) -> VMask:
    """``vmnand.mm``."""
    return _mask_logical(m, lambda x, y: ~np.logical_and(x, y), a, b, vl)


def vmnot_m(m: RVVMachine, a: VMask, vl: int) -> VMask:
    """``vmnot.m`` (assembler alias of ``vmnand.mm vd, vs, vs``)."""
    vl = require_vl(vl)
    a.check_vl(vl)
    m.op(Cat.VMASK)
    return VMask(~a.bits)


def vmset_m(m: RVVMachine, vl: int) -> VMask:
    """``vmset.m`` — all-ones mask."""
    vl = require_vl(vl)
    m.op(Cat.VMASK)
    return VMask(np.ones(vl, dtype=bool))


def vmclr_m(m: RVVMachine, vl: int) -> VMask:
    """``vmclr.m`` — all-zeros mask."""
    vl = require_vl(vl)
    m.op(Cat.VMASK)
    return VMask(np.zeros(vl, dtype=bool))


def vcpop_m(m: RVVMachine, mask: VMask, vl: int) -> int:
    """``vcpop.m`` — population count into a scalar register. Used to
    propagate the enumerate count across strips (Listing 8, line 12)."""
    vl = require_vl(vl)
    mask.check_vl(vl)
    m.op(Cat.VMASK)
    return mask.popcount()


def vfirst_m(m: RVVMachine, mask: VMask, vl: int) -> int:
    """``vfirst.m`` — index of the first set lane, or -1 if none."""
    vl = require_vl(vl)
    mask.check_vl(vl)
    m.op(Cat.VMASK)
    set_positions = np.flatnonzero(mask.bits)
    return int(set_positions[0]) if set_positions.size else -1


def viota_m(m: RVVMachine, mask: VMask, vl: int, dtype=np.uint32) -> VReg:
    """``viota.m`` — lane i receives the number of set mask lanes
    strictly before i (an in-register *exclusive scan* of the mask).

    This is the instruction that makes the paper's ``enumerate``
    primitive cheap (§4.4, Listing 8).
    """
    vl = require_vl(vl)
    mask.check_vl(vl)
    m.op(Cat.VMASK)
    out = np.zeros(vl, dtype=np.dtype(dtype))
    if vl > 1:
        out[1:] = np.cumsum(mask.bits[:-1], dtype=np.int64)
    return VReg(out)


def vid_v(m: RVVMachine, vl: int, dtype=np.uint32) -> VReg:
    """``vid.v`` — lane i receives the index i."""
    vl = require_vl(vl)
    m.op(Cat.VMASK)
    return VReg(np.arange(vl, dtype=np.dtype(dtype)))

"""Vector move intrinsics: broadcasts and scalar-lane transfers."""

from __future__ import annotations

import numpy as np

from ..counters import Cat
from ..machine import RVVMachine
from ..value import VReg
from ._common import check_same_vl, require_vl, to_scalar

__all__ = ["vmv_v_x", "vmv_v_v", "vmv_s_x", "vmv_x_s", "vundefined"]


def vmv_v_x(m: RVVMachine, x: int, vl: int, dtype=np.uint32) -> VReg:
    """``vmv.v.x`` — broadcast a scalar to all lanes. The paper's
    kernels materialize their zero/one constant vectors this way
    (Listing 6 line 6, Listing 10 lines 8-9)."""
    vl = require_vl(vl)
    m.op(Cat.VPERM)
    dtype = np.dtype(dtype)
    return VReg(np.full(vl, to_scalar(x, dtype), dtype=dtype))


def vmv_v_v(m: RVVMachine, src: VReg, vl: int) -> VReg:
    """``vmv.v.v`` — whole-value register copy."""
    vl = require_vl(vl)
    check_same_vl(vl, src)
    m.op(Cat.VPERM)
    return VReg(src.data.copy())


def vmv_s_x(m: RVVMachine, dest: VReg, x: int, vl: int) -> VReg:
    """``vmv.s.x`` — write the scalar into lane 0, keeping other lanes
    from ``dest``. Listing 10 line 16 uses this to force a head flag at
    the start of every strip (the strip boundary starts a carry region
    whether or not the data has a flag there)."""
    vl = require_vl(vl)
    check_same_vl(vl, dest)
    m.op(Cat.VPERM, dest_undisturbed=True)
    out = dest.data.copy()
    if vl:
        out[0] = to_scalar(x, dest.dtype)
    return VReg(out)


def vmv_x_s(m: RVVMachine, src: VReg) -> int:
    """``vmv.x.s`` — read lane 0 into a scalar register."""
    m.op(Cat.VPERM)
    if src.vl == 0:
        return 0
    return int(src.data[0])


def vundefined() -> None:
    """The intrinsic API's ``vundefined()``: passing it as ``maskedoff``
    selects the mask-agnostic policy (§3.2). Our intrinsics express that
    by passing ``maskedoff=None``; this helper exists so ported listings
    read like the original C."""
    return None

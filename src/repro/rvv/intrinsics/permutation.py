"""Vector permutation intrinsics: slides, gather, compress.

``vslideup`` is the core of both in-register scans (Figures 1 and 4):
each log-step shifts the partial sums up by ``offset`` lanes and adds.
Because ``vslideup`` must *preserve* destination lanes below the
offset, its destination operand carries live values — exactly the
"undisturbed destination" case the codegen model charges an extra
register move for under the PAPER preset.
"""

from __future__ import annotations

import numpy as np

from ...errors import VectorLengthError
from ..counters import Cat
from ..machine import RVVMachine
from ..value import VMask, VReg
from ._common import check_same_vl, require_vl, to_scalar

__all__ = [
    "vslideup_vx",
    "vslidedown_vx",
    "vslide1up_vx",
    "vslide1down_vx",
    "vrgather_vv",
    "vcompress_vm",
]


def vslideup_vx(m: RVVMachine, dest: VReg, src: VReg, offset: int, vl: int,
                mask: VMask | None = None) -> VReg:
    """``vslideup.vx``: lanes ``[offset, vl)`` receive
    ``src[0, vl-offset)``; lanes below ``offset`` keep ``dest``'s values.

    The paper passes a zero vector as ``dest`` so slid-in lanes read 0 —
    the identity of +, making the slideup-and-add scan step correct at
    the vector head (Listing 6; Listing 10 slides a *ones* vector into
    the flag positions instead, the identity of logical OR).
    """
    vl = require_vl(vl)
    offset = int(offset)
    if offset < 0:
        raise VectorLengthError(f"slide offset must be non-negative, got {offset}")
    check_same_vl(vl, dest, src)
    m.op(Cat.VPERM, dest_undisturbed=True, masked=mask is not None)
    out = dest.data.copy()
    if offset < vl:
        out[offset:] = src.data[: vl - offset]
    if mask is not None:
        mask.check_vl(vl)
        out = np.where(mask.bits, out, dest.data)
    return VReg(out)


def vslidedown_vx(m: RVVMachine, src: VReg, offset: int, vl: int) -> VReg:
    """``vslidedown.vx``: lane i receives ``src[i + offset]``; lanes
    sliding in from beyond vl read 0 in this model (the spec reads
    elements up to VLMAX; our values carry only vl lanes)."""
    vl = require_vl(vl)
    offset = int(offset)
    if offset < 0:
        raise VectorLengthError(f"slide offset must be non-negative, got {offset}")
    check_same_vl(vl, src)
    m.op(Cat.VPERM)
    out = np.zeros(vl, dtype=src.dtype)
    if offset < vl:
        out[: vl - offset] = src.data[offset:]
    return VReg(out)


def vslide1up_vx(m: RVVMachine, src: VReg, x: int, vl: int) -> VReg:
    """``vslide1up.vx``: lane 0 receives the scalar ``x``, lane i
    receives ``src[i-1]`` — a one-lane shift useful for exclusive scans
    and cross-strip carries."""
    vl = require_vl(vl)
    check_same_vl(vl, src)
    m.op(Cat.VPERM)
    out = np.empty(vl, dtype=src.dtype)
    if vl:
        out[0] = to_scalar(x, src.dtype)
        out[1:] = src.data[:-1]
    return VReg(out)


def vslide1down_vx(m: RVVMachine, src: VReg, x: int, vl: int) -> VReg:
    """``vslide1down.vx``: lane vl-1 receives ``x``, lane i receives
    ``src[i+1]``."""
    vl = require_vl(vl)
    check_same_vl(vl, src)
    m.op(Cat.VPERM)
    out = np.empty(vl, dtype=src.dtype)
    if vl:
        out[-1] = to_scalar(x, src.dtype)
        out[:-1] = src.data[1:]
    return VReg(out)


def vrgather_vv(m: RVVMachine, src: VReg, index: VReg, vl: int) -> VReg:
    """``vrgather.vv``: lane i receives ``src[index[i]]``, or 0 when the
    index is out of range (per spec)."""
    vl = require_vl(vl)
    check_same_vl(vl, src, index)
    m.op(Cat.VPERM)
    idx = index.data.astype(np.int64)
    out = np.zeros(vl, dtype=src.dtype)
    in_range = (idx >= 0) & (idx < vl)
    out[in_range] = src.data[idx[in_range]]
    return VReg(out)


def vcompress_vm(m: RVVMachine, mask: VMask, src: VReg, vl: int) -> VReg:
    """``vcompress.vm``: pack the masked lanes of ``src`` to the front.

    Lanes past the packed prefix read 0 in this model (the spec leaves
    them to the destination's prior contents; no kernel here relies on
    them).
    """
    vl = require_vl(vl)
    check_same_vl(vl, src, mask)
    m.op(Cat.VPERM)
    packed = src.data[mask.bits]
    out = np.zeros(vl, dtype=src.dtype)
    out[: packed.size] = packed
    return VReg(out)

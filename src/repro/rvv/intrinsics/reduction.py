"""Vector single-width reduction intrinsics (``vred*``).

Blelloch's model pairs every scan with a reduction; RVV provides them
directly. The scan kernels here do not need reductions (the carry is
read from the stored result instead, following Listing 6 line "carry =
src[vl-1]"), but reductions round out the elementwise/scan primitive
set and are used by the ablation benches to compare carry strategies.
"""

from __future__ import annotations

import numpy as np

from ..counters import Cat
from ..machine import RVVMachine
from ..value import VMask, VReg
from ._common import check_same_vl, require_vl, to_scalar

__all__ = ["vredsum_vs", "vredmaxu_vs", "vredminu_vs", "vredand_vs", "vredor_vs", "vredxor_vs"]


def _reduce(m, op, src: VReg, init: int, vl: int, mask: VMask | None, identity: int) -> int:
    vl = require_vl(vl)
    check_same_vl(vl, src)
    m.op(Cat.VREDUCE)
    data = src.data
    if mask is not None:
        mask.check_vl(vl)
        data = data[mask.bits]
    acc = op.reduce(data, initial=to_scalar(identity, src.dtype)) if data.size else to_scalar(identity, src.dtype)
    combined = op(np.asarray(acc, dtype=src.dtype), to_scalar(init, src.dtype))
    return int(np.asarray(combined, dtype=src.dtype))


def vredsum_vs(m: RVVMachine, src: VReg, init: int, vl: int, mask: VMask | None = None) -> int:
    """``vredsum.vs``: init + sum of active lanes (modular)."""
    return _reduce(m, np.add, src, init, vl, mask, 0)


def vredmaxu_vs(m: RVVMachine, src: VReg, init: int, vl: int, mask: VMask | None = None) -> int:
    """``vredmaxu.vs``."""
    return _reduce(m, np.maximum, src, init, vl, mask, 0)


def vredminu_vs(m: RVVMachine, src: VReg, init: int, vl: int, mask: VMask | None = None) -> int:
    """``vredminu.vs``."""
    all_ones = (1 << (np.dtype(src.dtype).itemsize * 8)) - 1
    return _reduce(m, np.minimum, src, init, vl, mask, all_ones)


def vredand_vs(m: RVVMachine, src: VReg, init: int, vl: int, mask: VMask | None = None) -> int:
    """``vredand.vs``."""
    all_ones = (1 << (np.dtype(src.dtype).itemsize * 8)) - 1
    return _reduce(m, np.bitwise_and, src, init, vl, mask, all_ones)


def vredor_vs(m: RVVMachine, src: VReg, init: int, vl: int, mask: VMask | None = None) -> int:
    """``vredor.vs``."""
    return _reduce(m, np.bitwise_or, src, init, vl, mask, 0)


def vredxor_vs(m: RVVMachine, src: VReg, init: int, vl: int, mask: VMask | None = None) -> int:
    """``vredxor.vs``."""
    return _reduce(m, np.bitwise_xor, src, init, vl, mask, 0)

"""The simulated RVV machine: configuration state, memory, counters.

:class:`RVVMachine` is the substrate every kernel in this library runs
on. It stands in for the paper's evaluation platform — the Spike
functional ISA simulator configured with VLEN in {128, 256, 512, 1024}
(§6.1) — and provides:

* the VLA configuration interface (``vsetvl`` / ``vsetvlmax``), which is
  what makes strip-mined kernels portable across VLEN (§3.1);
* simulated memory with a malloc/free heap (Listings 7/9 allocate
  scratch buffers);
* dynamic-instruction counters (the paper's metric, §6.1);
* a pluggable codegen cost model (:mod:`repro.rvv.codegen`).

The intrinsic layer (:mod:`repro.rvv.intrinsics`) takes the machine as
its first argument, mirroring how the C intrinsics implicitly target
"the" vector unit.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from ..errors import ConfigurationError, VectorLengthError
from .codegen import CodegenModel, get_preset
from .counters import Cat, Counters, CounterSnapshot
from .memory import Allocator, Memory, Pointer, DEFAULT_SIZE
from .regfile import RegisterFile
from .types import LMUL, SEW, VType, vlmax_for

__all__ = ["RVVMachine", "strips"]


class _ZeroMallocModel:
    """Cost model charging nothing for allocation (microbenchmarks)."""

    def malloc_cost(self, nbytes: int) -> int:
        return 0

    def free_cost(self, nbytes: int) -> int:
        return 0


class RVVMachine:
    """A VLEN-parameterized functional model of an RVV implementation.

    Parameters
    ----------
    vlen:
        Vector register width in bits. The paper evaluates 128-1024;
        any power of two >= 64 is accepted.
    codegen:
        Cost preset: ``"ideal"`` (default) or ``"paper"``, or a
        :class:`~repro.rvv.codegen.CodegenModel` instance.
    mem_size:
        Simulated memory size in bytes.
    malloc_model:
        Object with ``malloc_cost(nbytes)`` / ``free_cost(nbytes)``
        charging dynamic instructions for heap traffic (see
        :class:`repro.scalar.malloc_model.GlibcMallocModel`). Defaults
        to a zero-cost model.
    """

    def __init__(
        self,
        vlen: int = 1024,
        codegen: str | CodegenModel = "ideal",
        mem_size: int = DEFAULT_SIZE,
        malloc_model=None,
    ) -> None:
        if vlen < 64 or vlen & (vlen - 1):
            raise ConfigurationError(
                f"VLEN must be a power of two >= 64, got {vlen}"
            )
        self.vlen = vlen
        self.codegen = get_preset(codegen)
        self.counters = Counters()
        self.memory = Memory(mem_size)
        self.heap = Allocator(self.memory)
        self.regfile = RegisterFile(vlen)
        self.malloc_model = malloc_model if malloc_model is not None else _ZeroMallocModel()
        #: Installed :class:`~repro.obs.spans.ProfileCollector` (None =
        #: profiling off; the only cost is this attribute's None check).
        self.collector = None
        #: Current vl CSR (set by vsetvl; None until first configuration).
        self.vl: int | None = None
        #: Current vtype CSR.
        self.vtype: VType | None = None

    # ------------------------------------------------------------------
    # configuration-setting instructions (§3.1)
    # ------------------------------------------------------------------
    def vlmax(self, sew: SEW = SEW.E32, lmul: LMUL = LMUL.M1) -> int:
        """Query vlmax without executing an instruction (compile-time
        constant in VLS code; free here for planning purposes)."""
        return vlmax_for(self.vlen, sew, lmul)

    def vsetvl(self, avl: int, sew: SEW = SEW.E32, lmul: LMUL = LMUL.M1) -> int:
        """Execute ``vsetvli``: request ``avl`` elements, receive
        ``min(avl, vlmax)`` and update the vl/vtype CSRs.

        This is the instruction that makes remainder handling free on
        RVV (§3.1): the final strip simply receives a shorter vl.
        """
        if avl < 0:
            raise VectorLengthError(f"AVL must be non-negative, got {avl}")
        vl = min(int(avl), self.vlmax(sew, lmul))
        if self.collector is not None:
            # strip boundary: notify *before* counting so this vsetvl
            # is attributed to the strip it opens
            self.collector.on_vsetvl(vl)
        self.counters.add(Cat.VCONFIG)
        self.vl = vl
        self.vtype = VType(sew, lmul)
        return vl

    def vsetvlmax(self, sew: SEW = SEW.E32, lmul: LMUL = LMUL.M1) -> int:
        """Execute ``vsetvli rd, x0, ...``: configure for vlmax."""
        self.counters.add(Cat.VCONFIG)
        vl = self.vlmax(sew, lmul)
        self.vl = vl
        self.vtype = VType(sew, lmul)
        return vl

    # ------------------------------------------------------------------
    # counting hooks
    # ------------------------------------------------------------------
    def count(self, category: Cat, n: int = 1) -> None:
        """Record ``n`` dynamic instructions of ``category``."""
        self.counters.add(category, n)

    def op(
        self,
        category: Cat,
        dest_undisturbed: bool = False,
        masked: bool = False,
    ) -> None:
        """Record one intrinsic, expanded per the active codegen model."""
        self.counters.add(
            category, self.codegen.op_cost(dest_undisturbed, masked)
        )

    def scalar(self, n: int = 1) -> None:
        """Record ``n`` modeled scalar instructions."""
        self.counters.add(Cat.SCALAR, n)

    def strip_overhead(self, kernel: str, n_arrays: int = 1) -> None:
        """Charge the per-strip scalar bookkeeping for ``kernel``."""
        self.counters.add(Cat.SCALAR, self.codegen.strip_overhead(kernel, n_arrays))

    def inner_overhead(self, kernel: str) -> None:
        """Charge the per-inner-iteration scalar bookkeeping."""
        self.counters.add(Cat.SCALAR, self.codegen.inner_overhead(kernel))

    def prologue(self, kernel: str) -> None:
        """Charge the one-time per-call overhead for ``kernel``."""
        self.counters.add(Cat.SCALAR, self.codegen.prologue(kernel))

    @contextmanager
    def region(self) -> Iterator[CounterSnapshot]:
        """Measure a code region: yields a snapshot object whose contents
        are *replaced* with the delta when the block exits.

        >>> m = RVVMachine()
        >>> with m.region() as r:
        ...     m.vsetvl(10)
        10
        >>> r.total
        1
        """
        before = self.counters.snapshot()
        holder = CounterSnapshot({})
        yield holder
        delta = self.counters.snapshot() - before
        holder.by_category.update(delta.by_category)

    # ------------------------------------------------------------------
    # heap (Listings 7/9 allocate scratch with malloc)
    # ------------------------------------------------------------------
    def malloc(self, nbytes: int) -> int:
        """Allocate heap memory, charging the malloc cost model."""
        self.counters.add(Cat.ALLOC, self.malloc_model.malloc_cost(nbytes))
        return self.heap.malloc(nbytes)

    def free(self, addr: int) -> None:
        """Release heap memory, charging the free cost model."""
        size = self.heap._live.get(addr, 0)
        self.counters.add(Cat.ALLOC, self.malloc_model.free_cost(size))
        self.heap.free(addr)

    def alloc_array(self, count: int, dtype: np.dtype = np.uint32) -> Pointer:
        """malloc a typed array and return a pointer to it."""
        dtype = np.dtype(dtype)
        addr = self.malloc(count * dtype.itemsize)
        return Pointer(self.memory, addr, dtype)

    def array(self, values, dtype: np.dtype = np.uint32) -> Pointer:
        """Allocate an array and initialize it from ``values``."""
        values = np.asarray(values, dtype=dtype)
        ptr = self.alloc_array(values.size, values.dtype)
        ptr.write(values)
        return ptr

    # ------------------------------------------------------------------
    def reset_counters(self) -> None:
        """Zero the dynamic-instruction counters."""
        self.counters.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RVVMachine(vlen={self.vlen}, codegen={self.codegen.name!r},"
            f" instructions={self.counters.total})"
        )


def strips(n: int, vlmax: int) -> Iterator[int]:
    """The sequence of vl values a strip-mined loop over ``n`` elements
    receives from ``vsetvl`` with the given vlmax.

    Shared by the strict kernels and the closed-form fast-path counters
    so both walk the identical vl sequence.
    """
    if n < 0:
        raise VectorLengthError(f"element count must be non-negative, got {n}")
    if vlmax < 1:
        raise ConfigurationError(f"vlmax must be >= 1, got {vlmax}")
    remaining = int(n)
    while remaining > 0:
        vl = min(remaining, vlmax)
        yield vl
        remaining -= vl

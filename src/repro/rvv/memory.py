"""Simulated flat memory with a bump/free-list allocator.

The paper's kernels operate on C arrays reached through raw pointers
(``unsigned int *src``) and allocate scratch space with ``malloc``
(Listings 7 and 9). This module supplies the equivalent substrate:

* :class:`Memory` — a flat little-endian byte array with typed
  load/store helpers. Vector load/store intrinsics read and write
  typed *views* of this array, so unit-stride accesses stay NumPy-fast
  (no per-element Python work), per the HPC guides.
* :class:`Pointer` — a (memory, byte address, dtype) triple supporting
  C-style pointer arithmetic (``p + k`` advances ``k`` *elements*).
* :class:`Allocator` — ``malloc``/``free`` over a region of the memory,
  with an instruction-cost model attached (see
  :mod:`repro.scalar.malloc_model`): Table 1's per-element cost jump
  between N=10^4 and N=10^5 traces to glibc switching to ``mmap`` for
  large blocks, whose page faults execute counted proxy-kernel code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MemoryError_

__all__ = ["Memory", "Pointer", "Allocator"]

#: Default simulated memory size: 64 MiB, enough for the paper's largest
#: workload (10^6 u32 elements plus radix-sort scratch) with headroom.
DEFAULT_SIZE = 64 * 1024 * 1024


class Memory:
    """Flat byte-addressable memory backed by a NumPy uint8 array."""

    __slots__ = ("size", "_bytes")

    def __init__(self, size: int = DEFAULT_SIZE) -> None:
        if size <= 0:
            raise MemoryError_(f"memory size must be positive, got {size}")
        self.size = int(size)
        self._bytes = np.zeros(self.size, dtype=np.uint8)

    # -- bounds ----------------------------------------------------------
    def check(self, addr: int, nbytes: int) -> None:
        """Raise :class:`MemoryError_` unless [addr, addr+nbytes) is valid."""
        if addr < 0 or nbytes < 0 or addr + nbytes > self.size:
            raise MemoryError_(
                f"access [{addr}, {addr + nbytes}) outside memory of size {self.size}"
            )

    # -- typed views ------------------------------------------------------
    def view(self, addr: int, count: int, dtype: np.dtype) -> np.ndarray:
        """A writable typed view of ``count`` elements at byte ``addr``.

        The address must be aligned to the element size, matching RVV's
        effective-element-size alignment requirement for unit-stride
        accesses.
        """
        dtype = np.dtype(dtype)
        nbytes = count * dtype.itemsize
        self.check(addr, nbytes)
        if addr % dtype.itemsize:
            raise MemoryError_(
                f"misaligned access: address {addr} for element size {dtype.itemsize}"
            )
        return self._bytes[addr : addr + nbytes].view(dtype)

    def load(self, addr: int, count: int, dtype: np.dtype) -> np.ndarray:
        """Copy ``count`` elements out of memory."""
        return self.view(addr, count, dtype).copy()

    def store(self, addr: int, values: np.ndarray) -> None:
        """Write a typed array into memory at byte ``addr``."""
        values = np.asarray(values)
        self.view(addr, values.size, values.dtype)[:] = values

    # -- scattered (indexed) access ---------------------------------------
    def gather(self, base: int, byte_offsets: np.ndarray, dtype: np.dtype) -> np.ndarray:
        """Indexed load: element i comes from ``base + byte_offsets[i]``."""
        dtype = np.dtype(dtype)
        if byte_offsets.size == 0:
            return np.empty(0, dtype=dtype)
        addrs = base + byte_offsets.astype(np.int64)
        lo, hi = int(addrs.min()), int(addrs.max())
        self.check(lo, (hi - lo) + dtype.itemsize)
        if np.any(addrs % dtype.itemsize):
            raise MemoryError_("misaligned indexed load")
        flat = self._bytes.view(dtype)
        return flat[addrs // dtype.itemsize].copy()

    def scatter(self, base: int, byte_offsets: np.ndarray, values: np.ndarray) -> None:
        """Indexed store: element i goes to ``base + byte_offsets[i]``.

        This is the semantics of RVV's ``vsuxei`` used by the paper's
        ``permute`` primitive (Listing 5). Overlapping destinations are
        written in element order (last writer wins), matching the
        unordered-store instruction's permitted behaviour for the
        permutation use case where indices are unique.
        """
        values = np.asarray(values)
        if values.size == 0:
            return
        addrs = base + byte_offsets.astype(np.int64)
        lo, hi = int(addrs.min()), int(addrs.max())
        self.check(lo, (hi - lo) + values.dtype.itemsize)
        if np.any(addrs % values.dtype.itemsize):
            raise MemoryError_("misaligned indexed store")
        flat = self._bytes.view(values.dtype)
        flat[addrs // values.dtype.itemsize] = values


@dataclass(frozen=True)
class Pointer:
    """A typed C-style pointer into simulated :class:`Memory`.

    ``ptr + k`` advances by ``k`` elements (not bytes), so the paper's
    ``src += vl`` strip-mining idiom translates directly.
    """

    mem: Memory
    addr: int
    dtype: np.dtype

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", np.dtype(self.dtype))

    def __add__(self, elements: int) -> "Pointer":
        return Pointer(self.mem, self.addr + int(elements) * self.dtype.itemsize, self.dtype)

    def view(self, count: int) -> np.ndarray:
        """Writable view of ``count`` elements starting here."""
        return self.mem.view(self.addr, count, self.dtype)

    def read(self, count: int) -> np.ndarray:
        """Copy of ``count`` elements starting here."""
        return self.mem.load(self.addr, count, self.dtype)

    def write(self, values: np.ndarray) -> None:
        """Store elements starting here."""
        self.mem.store(self.addr, np.asarray(values, dtype=self.dtype))

    def cast(self, dtype: np.dtype) -> "Pointer":
        """Reinterpret the pointee type (like a C cast)."""
        return Pointer(self.mem, self.addr, np.dtype(dtype))

    def __getitem__(self, i: int) -> int:
        """Scalar element load, ``ptr[i]`` — e.g. the carry read
        ``carry = src[vl - 1]`` in Listing 6."""
        return self.mem.view(self.addr + i * self.dtype.itemsize, 1, self.dtype)[0].item()

    def __setitem__(self, i: int, value: int) -> None:
        self.mem.view(self.addr + i * self.dtype.itemsize, 1, self.dtype)[0] = value


class Allocator:
    """First-fit free-list allocator over a :class:`Memory` region.

    Mirrors the lifetime behaviour of the paper's listings (scratch
    buffers malloc'd and freed per ``split`` call). The *instruction
    cost* of allocation is modeled separately by
    :class:`repro.scalar.malloc_model.MallocModel` so that machines can
    opt in (Table 1 reproduction) or out (primitive microbenchmarks,
    which allocate nothing).
    """

    #: Allocation granularity (glibc-style 16-byte alignment).
    ALIGN = 16

    def __init__(self, mem: Memory, base: int = 0, limit: int | None = None) -> None:
        self.mem = mem
        self.base = base
        self.limit = mem.size if limit is None else limit
        if not (0 <= base < self.limit <= mem.size):
            raise MemoryError_(f"bad allocator region [{base}, {limit})")
        # free list of (addr, size), address-ordered
        self._free: list[tuple[int, int]] = [(base, self.limit - base)]
        self._live: dict[int, int] = {}

    @staticmethod
    def _round(n: int) -> int:
        return (n + Allocator.ALIGN - 1) // Allocator.ALIGN * Allocator.ALIGN

    def malloc(self, nbytes: int) -> int:
        """Allocate ``nbytes`` and return the byte address."""
        if nbytes < 0:
            raise MemoryError_(f"malloc of negative size {nbytes}")
        size = max(self._round(nbytes), self.ALIGN)
        for i, (addr, avail) in enumerate(self._free):
            if avail >= size:
                if avail == size:
                    del self._free[i]
                else:
                    self._free[i] = (addr + size, avail - size)
                self._live[addr] = size
                return addr
        raise MemoryError_(f"out of simulated memory allocating {nbytes} bytes")

    def free(self, addr: int) -> None:
        """Release a block previously returned by :meth:`malloc`."""
        try:
            size = self._live.pop(addr)
        except KeyError:
            raise MemoryError_(f"free of unallocated address {addr}") from None
        self._free.append((addr, size))
        self._free.sort()
        # coalesce neighbours
        merged: list[tuple[int, int]] = []
        for a, s in self._free:
            if merged and merged[-1][0] + merged[-1][1] == a:
                merged[-1] = (merged[-1][0], merged[-1][1] + s)
            else:
                merged.append((a, s))
        self._free = merged

    def alloc_array(self, count: int, dtype: np.dtype) -> Pointer:
        """malloc ``count`` elements and return a typed pointer."""
        dtype = np.dtype(dtype)
        addr = self.malloc(count * dtype.itemsize)
        return Pointer(self.mem, addr, dtype)

    @property
    def live_bytes(self) -> int:
        """Total bytes currently allocated (leak checking in tests)."""
        return sum(self._live.values())

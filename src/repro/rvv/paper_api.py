"""The RVV intrinsic API under the paper's exact names.

The listings in the paper use the RISC-V intrinsic C spellings —
``vsetvl_e32m1``, ``vle32_v_u32m1``, ``viota_m_u32m1``,
``vadd_vv_u32m1_m`` and so on, with SEW/LMUL encoded in the suffix
(§3). This module binds those names so the paper's code ports *line
for line* (see :mod:`repro.svm.listings` for the verbatim ports used
as executable documentation, and the equivalence tests in
``tests/svm/test_listings.py``).

Conventions mirrored from the C API:

* the ``_m`` suffix marks the masked form; its first two arguments are
  ``(mask, maskedoff)`` — passing ``vundefined()`` as ``maskedoff``
  selects the mask-agnostic policy (§3.2, Listing 3);
* ``vl`` is always the trailing argument;
* ``m<k>`` suffixes pick the LMUL the vsetvl configures (the machine's
  type system rejects mismatched vl just as the C type system rejects
  mismatched ``vuint32m<k>_t``).

Only the ``e32``/``u32`` instantiations the paper uses are spelled out
— the generic layer in :mod:`repro.rvv.intrinsics` covers every SEW.
"""

from __future__ import annotations

import numpy as np

from .intrinsics import arith, compare, loadstore, mask as maskops, move, permutation
from .machine import RVVMachine
from .memory import Pointer
from .types import LMUL, SEW
from .value import VMask, VReg

__all__ = ["PaperIntrinsics", "vundefined"]

vundefined = move.vundefined


class PaperIntrinsics:
    """Paper-spelled intrinsic bindings for one machine.

    >>> from repro.rvv import RVVMachine
    >>> iv = PaperIntrinsics(RVVMachine(vlen=128))
    >>> vl = iv.vsetvl_e32m1(3)
    >>> v = iv.vmv_v_x_u32m1(7, vl)
    >>> v.tolist()
    [7, 7, 7]
    """

    def __init__(self, machine: RVVMachine) -> None:
        self.m = machine

    # -- configuration (§3.1) ------------------------------------------------
    def vsetvl_e32m1(self, avl: int) -> int:
        return self.m.vsetvl(avl, SEW.E32, LMUL.M1)

    def vsetvl_e32m2(self, avl: int) -> int:
        return self.m.vsetvl(avl, SEW.E32, LMUL.M2)

    def vsetvl_e32m4(self, avl: int) -> int:
        return self.m.vsetvl(avl, SEW.E32, LMUL.M4)

    def vsetvl_e32m8(self, avl: int) -> int:
        return self.m.vsetvl(avl, SEW.E32, LMUL.M8)

    def vsetvlmax_e32m1(self) -> int:
        return self.m.vsetvlmax(SEW.E32, LMUL.M1)

    # -- loads/stores ----------------------------------------------------------
    def vle32_v_u32m1(self, ptr: Pointer, vl: int) -> VReg:
        return loadstore.vle(self.m, ptr, vl)

    def vle32_v_i32m1(self, ptr: Pointer, vl: int) -> VReg:
        return loadstore.vle(self.m, ptr.cast(np.int32), vl)

    def vse32(self, ptr: Pointer, value: VReg, vl: int) -> None:
        loadstore.vse(self.m, ptr, value, vl)

    def vsuxei32_v_u32m1(self, ptr: Pointer, offsets: VReg, value: VReg,
                         vl: int) -> None:
        loadstore.vsuxei(self.m, ptr, offsets, value, vl)

    # -- arithmetic --------------------------------------------------------------
    def vadd(self, a: VReg, b, vl: int) -> VReg:
        """The overloaded ``vadd`` of the C API: vv or vx by type."""
        if isinstance(b, VReg):
            return arith.vadd_vv(self.m, a, b, vl)
        return arith.vadd_vx(self.m, a, b, vl)

    def vadd_vv_u32m1(self, a: VReg, b: VReg, vl: int) -> VReg:
        return arith.vadd_vv(self.m, a, b, vl)

    def vadd_vx_u32m1(self, a: VReg, x: int, vl: int) -> VReg:
        return arith.vadd_vx(self.m, a, x, vl)

    def vadd_vv_u32m1_m(self, mask: VMask, maskedoff: VReg | None,
                        a: VReg, b: VReg, vl: int) -> VReg:
        """Listing 3's signature: (mask, maskedoff, op1, op2, vl)."""
        return arith.vadd_vv(self.m, a, b, vl, mask=mask, maskedoff=maskedoff)

    def vadd_vx_u32m1_m(self, mask: VMask, maskedoff: VReg | None,
                        a: VReg, x: int, vl: int) -> VReg:
        return arith.vadd_vx(self.m, a, x, vl, mask=mask, maskedoff=maskedoff)

    def vand(self, a: VReg, x: int, vl: int) -> VReg:
        return arith.vand_vx(self.m, a, x, vl)

    def vsrl(self, a: VReg, x: int, vl: int) -> VReg:
        return arith.vsrl_vx(self.m, a, x, vl)

    def vsll(self, a: VReg, x: int, vl: int) -> VReg:
        return arith.vsll_vx(self.m, a, x, vl)

    def vor_vv_u32m1(self, a: VReg, b: VReg, vl: int) -> VReg:
        return arith.vor_vv(self.m, a, b, vl)

    def vmerge_vvm_u32m1(self, mask: VMask, a: VReg, b: VReg, vl: int) -> VReg:
        return arith.vmerge_vvm(self.m, mask, a, b, vl)

    # -- compares / masks ------------------------------------------------------------
    def vmseq(self, a: VReg, x: int, vl: int) -> VMask:
        return compare.vmseq_vx(self.m, a, x, vl)

    def vmsne_vx_u32m1_b32(self, a: VReg, x: int, vl: int) -> VMask:
        return compare.vmsne_vx(self.m, a, x, vl)

    def vmsbf(self, mask: VMask, vl: int) -> VMask:
        return maskops.vmsbf_m(self.m, mask, vl)

    def viota_m_u32m1(self, mask: VMask, vl: int) -> VReg:
        return maskops.viota_m(self.m, mask, vl, dtype=np.uint32)

    def vcpop(self, mask: VMask, vl: int) -> int:
        return maskops.vcpop_m(self.m, mask, vl)

    # -- moves / permutation -------------------------------------------------------------
    def vmv_v_x_u32m1(self, x: int, vl: int) -> VReg:
        return move.vmv_v_x(self.m, x, vl, dtype=np.uint32)

    def vmv_s_x_u32m1(self, dest: VReg, x: int, vl: int) -> VReg:
        return move.vmv_s_x(self.m, dest, x, vl)

    def vslideup_vx_u32m1(self, dest: VReg, src: VReg, offset: int,
                          vl: int) -> VReg:
        return permutation.vslideup_vx(self.m, dest, src, offset, vl)

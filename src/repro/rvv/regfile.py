"""The RVV architectural vector register file with LMUL grouping.

RVV provides 32 vector registers of VLEN bits each (§2.1). With a
length multiplier LMUL = k > 1, registers form groups of k consecutive
registers and instructions must name a group-aligned register number
(§3.3): at LMUL=8 the only groups are v0-7, v8-15, v16-23 and v24-31.

The functional intrinsic layer in :mod:`repro.rvv.intrinsics` passes
vector *values* around (SSA style, like the intrinsic C API), so it does
not route every operand through this file — but the register file is a
real, stateful component used for:

* validating group-alignment and register-number rules (tested
  independently, and relied on by the LMUL register-pressure model);
* the ``v0`` mask-register convention (§3.2): masked operations always
  take their mask from v0;
* whole-register load/store (``vl<k>r``/``vs<k>r``), the instructions
  the allocation model charges for spill traffic (§6.3).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, RegisterError
from .types import LMUL, SEW, dtype_for_sew

__all__ = ["RegisterFile", "NUM_REGS", "MASK_REG"]

#: Number of architectural vector registers.
NUM_REGS = 32
#: The register RVV uses for mask operands (always v0, §3.2).
MASK_REG = 0


class RegisterFile:
    """Byte-granular storage for the 32 architectural vector registers."""

    def __init__(self, vlen: int) -> None:
        if vlen <= 0 or vlen % 8 or vlen & (vlen - 1):
            raise ConfigurationError(
                f"VLEN must be a power-of-two number of bits, got {vlen}"
            )
        self.vlen = vlen
        self.vlenb = vlen // 8  # bytes per register (the vlenb CSR)
        self._bytes = np.zeros(NUM_REGS * self.vlenb, dtype=np.uint8)

    # -- group rules -------------------------------------------------------
    def check_group(self, reg: int, lmul: LMUL) -> None:
        """Validate a register number against the active LMUL.

        Raises :class:`RegisterError` for out-of-range numbers or
        numbers not aligned to the group size, mirroring the ISA's
        illegal-instruction condition.
        """
        k = int(lmul)
        if not 0 <= reg < NUM_REGS:
            raise RegisterError(f"register v{reg} out of range")
        if reg % k:
            raise RegisterError(
                f"v{reg} is not aligned for LMUL={k}; register numbers must be"
                f" multiples of the group size"
            )

    def check_no_mask_overlap(self, reg: int, lmul: LMUL) -> None:
        """A masked operation's destination group may not contain v0."""
        self.check_group(reg, lmul)
        if reg <= MASK_REG < reg + int(lmul):
            raise RegisterError(
                f"destination group v{reg}-v{reg + int(lmul) - 1} overlaps the"
                f" mask register v0"
            )

    @staticmethod
    def groups(lmul: LMUL) -> list[int]:
        """Base register numbers of every group at the given LMUL."""
        k = int(lmul)
        return list(range(0, NUM_REGS, k))

    # -- typed element access -----------------------------------------------
    def _group_bytes(self, reg: int, lmul: LMUL) -> np.ndarray:
        self.check_group(reg, lmul)
        start = reg * self.vlenb
        return self._bytes[start : start + int(lmul) * self.vlenb]

    def read(self, reg: int, sew: SEW, lmul: LMUL, vl: int | None = None) -> np.ndarray:
        """Read ``vl`` elements (default: the full group) from a group."""
        data = self._group_bytes(reg, lmul).view(dtype_for_sew(sew))
        if vl is None:
            return data.copy()
        if not 0 <= vl <= data.size:
            raise RegisterError(f"vl={vl} exceeds group capacity {data.size}")
        return data[:vl].copy()

    def write(
        self,
        reg: int,
        values: np.ndarray,
        sew: SEW,
        lmul: LMUL,
        tail_undisturbed: bool = True,
    ) -> None:
        """Write elements into a group starting at element 0.

        With ``tail_undisturbed=False`` (tail-agnostic), this model
        writes an all-ones pattern into the tail, making accidental
        dependence on tail values visible in tests — RVV allows either
        leaving the tail or filling it with 1s.
        """
        data = self._group_bytes(reg, lmul).view(dtype_for_sew(sew))
        values = np.asarray(values, dtype=data.dtype)
        if values.size > data.size:
            raise RegisterError(
                f"{values.size} elements exceed group capacity {data.size}"
            )
        data[: values.size] = values
        if not tail_undisturbed:
            data[values.size :] = np.iinfo(data.dtype).max

    # -- mask access ----------------------------------------------------------
    def read_mask(self, vl: int) -> np.ndarray:
        """Read the low ``vl`` mask bits from v0 as a boolean array.

        RVV packs masks one bit per element regardless of SEW; we model
        the packed layout by storing one bit per element in v0's bytes.
        """
        if vl > self.vlen:
            raise RegisterError(f"mask vl={vl} exceeds VLEN={self.vlen}")
        bits = np.unpackbits(self._group_bytes(MASK_REG, LMUL.M1), bitorder="little")
        return bits[:vl].astype(bool)

    def write_mask(self, mask: np.ndarray) -> None:
        """Write a boolean array into v0's low mask bits."""
        mask = np.asarray(mask, dtype=bool)
        if mask.size > self.vlen:
            raise RegisterError(f"mask of {mask.size} bits exceeds VLEN={self.vlen}")
        bits = np.zeros(self.vlenb * 8, dtype=np.uint8)
        bits[: mask.size] = mask
        self._group_bytes(MASK_REG, LMUL.M1)[:] = np.packbits(bits, bitorder="little")

    # -- whole-register moves (spill traffic) ----------------------------------
    def whole_store(self, reg: int, lmul: LMUL) -> np.ndarray:
        """``vs<k>r.v``: copy a whole group out (one instruction per group)."""
        return self._group_bytes(reg, lmul).copy()

    def whole_load(self, reg: int, lmul: LMUL, data: np.ndarray) -> None:
        """``vl<k>re8.v``: fill a whole group from bytes."""
        dest = self._group_bytes(reg, lmul)
        data = np.asarray(data, dtype=np.uint8)
        if data.size != dest.size:
            raise RegisterError(
                f"whole-register load size {data.size} != group size {dest.size}"
            )
        dest[:] = data

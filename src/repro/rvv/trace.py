"""Execution tracing — a Spike-style instruction log for debugging.

Spike can emit a per-instruction commit log; the equivalent here is a
:class:`TraceRecorder` attached to a machine's counters: every counted
instruction group is recorded with its category and expansion, and the
recorder can replay the stream, summarize it, or diff two runs — the
tool used while calibrating the codegen model against the paper's
per-strip costs.

.. deprecated::
    ``TraceRecorder`` predates :mod:`repro.obs` and is kept for its
    flat event-stream view (histogram of codegen expansions, run
    diffs). For hierarchical attribution — which primitive or
    algorithm phase produced the counts — use profiling spans
    (``SVM(profile=True)`` / :func:`repro.obs.profile`) instead.

The recorder rides on :class:`repro.obs.tap.CounterTap`: a subscriber
on the machine's counter stream rather than the old subclass-and-swap
of the counters object. Any number of recorders may attach to the
same machine — or to machines *sharing* a counters object — without
perturbing totals, and detaching restores the original counters
object once the last subscriber leaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.tap import CounterTap, install_tap, uninstall_tap_if_idle
from .counters import Cat
from .machine import RVVMachine

__all__ = ["TraceEvent", "TraceRecorder", "trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One counted instruction group."""

    index: int
    category: Cat
    count: int


@dataclass
class TraceRecorder:
    """Records every ``Counters.add`` on a machine while attached."""

    machine: RVVMachine
    events: list[TraceEvent] = field(default_factory=list)
    _tap: CounterTap | None = None

    # -- attach/detach -----------------------------------------------------
    def attach(self) -> "TraceRecorder":
        if self._tap is not None:
            raise RuntimeError("trace recorder already attached")
        self._tap = install_tap(self.machine)
        self._tap.subscribe(self._record)
        return self

    def detach(self) -> None:
        if self._tap is None:
            raise RuntimeError("trace recorder not attached")
        self._tap.unsubscribe(self._record)
        self._tap = None
        uninstall_tap_if_idle(self.machine)

    def _record(self, category: Cat, n: int) -> None:
        self.events.append(TraceEvent(len(self.events), category, n))

    def __enter__(self) -> "TraceRecorder":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- analysis -----------------------------------------------------------
    @property
    def total(self) -> int:
        """Dynamic instructions recorded while attached."""
        return sum(e.count for e in self.events)

    def summary(self) -> dict[str, int]:
        """Recorded instructions by category name."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.category.value] = out.get(e.category.value, 0) + e.count
        return out

    def histogram(self) -> dict[tuple[Cat, int], int]:
        """(category, expansion) -> occurrence count; shows how often
        each codegen expansion fired (calibration's raw material)."""
        out: dict[tuple[Cat, int], int] = {}
        for e in self.events:
            key = (e.category, e.count)
            out[key] = out.get(key, 0) + 1
        return out

    def diff(self, other: "TraceRecorder") -> dict[str, int]:
        """Per-category difference (self - other) — e.g. LMUL=8 vs
        LMUL=1 isolates the spill traffic."""
        mine, theirs = self.summary(), other.summary()
        keys = set(mine) | set(theirs)
        return {k: mine.get(k, 0) - theirs.get(k, 0) for k in sorted(keys)}


def trace(machine: RVVMachine) -> TraceRecorder:
    """Context manager recording a machine's instruction stream.

    >>> from repro.rvv import RVVMachine
    >>> m = RVVMachine(vlen=128)
    >>> with trace(m) as t:
    ...     _ = m.vsetvl(4)
    >>> t.total
    1
    """
    return TraceRecorder(machine)

"""Execution tracing — a Spike-style instruction log for debugging.

Spike can emit a per-instruction commit log; the equivalent here is a
:class:`TraceRecorder` attached to a machine's counters: every counted
instruction group is recorded with its category and expansion, and the
recorder can replay the stream, summarize it, or diff two runs — the
tool used while calibrating the codegen model against the paper's
per-strip costs.

Tracing wraps the counter object (no hot-path cost when disabled) and
nests: detaching restores the previous counter exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .counters import Cat, Counters
from .machine import RVVMachine

__all__ = ["TraceEvent", "TraceRecorder", "trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One counted instruction group."""

    index: int
    category: Cat
    count: int


@dataclass
class TraceRecorder:
    """Records every ``Counters.add`` on a machine while attached."""

    machine: RVVMachine
    events: list[TraceEvent] = field(default_factory=list)
    _original: Counters | None = None

    # -- attach/detach -----------------------------------------------------
    def attach(self) -> "TraceRecorder":
        if self._original is not None:
            raise RuntimeError("trace recorder already attached")
        self._original = self.machine.counters
        recorder = self

        class _TracingCounters(Counters):
            def add(self, category: Cat, n: int = 1) -> None:  # noqa: D102
                recorder.events.append(
                    TraceEvent(len(recorder.events), category, n)
                )
                super().add(category, n)

        tracing = _TracingCounters()
        # carry over the current totals so the trace is a pure overlay
        tracing._counts.update(self._original._counts)
        self.machine.counters = tracing
        return self

    def detach(self) -> None:
        if self._original is None:
            raise RuntimeError("trace recorder not attached")
        # fold the traced totals back into the original counter object
        self._original._counts.update(self.machine.counters._counts)
        self.machine.counters = self._original
        self._original = None

    def __enter__(self) -> "TraceRecorder":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- analysis -----------------------------------------------------------
    @property
    def total(self) -> int:
        """Dynamic instructions recorded while attached."""
        return sum(e.count for e in self.events)

    def summary(self) -> dict[str, int]:
        """Recorded instructions by category name."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.category.value] = out.get(e.category.value, 0) + e.count
        return out

    def histogram(self) -> dict[tuple[Cat, int], int]:
        """(category, expansion) -> occurrence count; shows how often
        each codegen expansion fired (calibration's raw material)."""
        out: dict[tuple[Cat, int], int] = {}
        for e in self.events:
            key = (e.category, e.count)
            out[key] = out.get(key, 0) + 1
        return out

    def diff(self, other: "TraceRecorder") -> dict[str, int]:
        """Per-category difference (self - other) — e.g. LMUL=8 vs
        LMUL=1 isolates the spill traffic."""
        mine, theirs = self.summary(), other.summary()
        keys = set(mine) | set(theirs)
        return {k: mine.get(k, 0) - theirs.get(k, 0) for k in sorted(keys)}


def trace(machine: RVVMachine) -> TraceRecorder:
    """Context manager recording a machine's instruction stream.

    >>> from repro.rvv import RVVMachine
    >>> m = RVVMachine(vlen=128)
    >>> with trace(m) as t:
    ...     _ = m.vsetvl(4)
    >>> t.total
    1
    """
    return TraceRecorder(machine)

"""Core RVV configuration types: SEW, LMUL, and vtype.

The RISC-V Vector extension parameterizes every vector operation by a
*configuration* held in the ``vtype`` CSR:

* **SEW** — selected element width in bits (8, 16, 32, 64);
* **LMUL** — vector register group length multiplier (this model supports
  the integer values 1, 2, 4, 8 that every RVV implementation must
  provide; fractional LMUL is out of scope for the paper);
* tail/mask policies (agnostic vs undisturbed).

The *vector length* ``vl`` is bounded by ``vlmax = VLEN / SEW * LMUL``,
where VLEN (the register width in bits) is an implementation constant of
the micro-architecture — the property that makes RVV *vector length
agnostic* (VLA) and that the paper's strip-mined kernels rely on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "SEW",
    "LMUL",
    "VType",
    "MaskPolicy",
    "TailPolicy",
    "dtype_for_sew",
    "sew_for_dtype",
    "vlmax_for",
    "SUPPORTED_VLENS",
]

#: VLEN values exercised by the paper's scalability study (Table 7).
#: Any power-of-two VLEN >= 64 is accepted by :class:`~repro.rvv.machine.RVVMachine`.
SUPPORTED_VLENS = (128, 256, 512, 1024)


class SEW(enum.IntEnum):
    """Selected element width in bits."""

    E8 = 8
    E16 = 16
    E32 = 32
    E64 = 64


class LMUL(enum.IntEnum):
    """Register group length multiplier.

    ``LMUL = k`` groups ``k`` consecutive architectural registers into one
    operand; instructions must then name a register number that is a
    multiple of ``k`` (§3.3 of the paper).
    """

    M1 = 1
    M2 = 2
    M4 = 4
    M8 = 8


class MaskPolicy(enum.Enum):
    """Behaviour of masked-off destination elements (§3.2)."""

    AGNOSTIC = "ma"
    UNDISTURBED = "mu"


class TailPolicy(enum.Enum):
    """Behaviour of destination elements past ``vl``."""

    AGNOSTIC = "ta"
    UNDISTURBED = "tu"


_SEW_TO_UDTYPE = {
    SEW.E8: np.dtype(np.uint8),
    SEW.E16: np.dtype(np.uint16),
    SEW.E32: np.dtype(np.uint32),
    SEW.E64: np.dtype(np.uint64),
}
_SEW_TO_SDTYPE = {
    SEW.E8: np.dtype(np.int8),
    SEW.E16: np.dtype(np.int16),
    SEW.E32: np.dtype(np.int32),
    SEW.E64: np.dtype(np.int64),
}


def dtype_for_sew(sew: SEW, signed: bool = False) -> np.dtype:
    """Return the NumPy dtype backing elements of width ``sew``."""
    table = _SEW_TO_SDTYPE if signed else _SEW_TO_UDTYPE
    try:
        return table[SEW(sew)]
    except (KeyError, ValueError) as exc:
        raise ConfigurationError(f"unsupported SEW: {sew!r}") from exc


def sew_for_dtype(dtype: np.dtype) -> SEW:
    """Return the SEW corresponding to a NumPy integer dtype."""
    dtype = np.dtype(dtype)
    if dtype.kind not in ("u", "i"):
        raise ConfigurationError(f"non-integer dtype has no SEW: {dtype}")
    bits = dtype.itemsize * 8
    try:
        return SEW(bits)
    except ValueError as exc:
        raise ConfigurationError(f"unsupported element width: {bits}") from exc


def vlmax_for(vlen: int, sew: SEW, lmul: LMUL) -> int:
    """``vlmax = VLEN / SEW * LMUL`` — the most elements one operation
    can process under the given configuration."""
    if vlen <= 0 or vlen & (vlen - 1):
        raise ConfigurationError(f"VLEN must be a positive power of two, got {vlen}")
    vlmax = vlen // int(sew) * int(lmul)
    if vlmax < 1:
        raise ConfigurationError(
            f"vlmax < 1 for VLEN={vlen}, SEW={int(sew)}, LMUL={int(lmul)}"
        )
    return vlmax


@dataclass(frozen=True)
class VType:
    """An immutable snapshot of the vtype CSR contents.

    Instances are produced by the ``vsetvl`` family of intrinsics
    (:mod:`repro.rvv.intrinsics.config`) and threaded through the machine
    state; kernels normally never construct one directly.
    """

    sew: SEW
    lmul: LMUL
    tail: TailPolicy = TailPolicy.AGNOSTIC
    mask: MaskPolicy = MaskPolicy.UNDISTURBED

    def __post_init__(self) -> None:
        # Normalize ints to enums so VType(32, 1) works at call sites.
        object.__setattr__(self, "sew", SEW(self.sew))
        object.__setattr__(self, "lmul", LMUL(self.lmul))

    def vlmax(self, vlen: int) -> int:
        """The vlmax this configuration yields on a VLEN-bit machine."""
        return vlmax_for(vlen, self.sew, self.lmul)

    @property
    def dtype(self) -> np.dtype:
        """Unsigned NumPy dtype for this SEW."""
        return dtype_for_sew(self.sew)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"e{int(self.sew)}m{int(self.lmul)},"
            f"{self.tail.value},{self.mask.value}"
        )

"""Vector value types passed between intrinsics.

The RVV C intrinsic API is value-oriented: ``vint32m1_t va = vle32(...)``
names an SSA value the compiler later assigns to a register group. Our
intrinsic layer mirrors that style: :class:`VReg` wraps the active
``vl`` elements of a register group and :class:`VMask` wraps a mask
value (one bool per element). Register *numbers* only matter for the
allocation model (:mod:`repro.rvv.allocation`), which reasons about
pressure analytically, so values here are anonymous.

Values are treated as immutable by convention: intrinsics return new
instances rather than mutating operands, matching the functional C API.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MaskError, VectorLengthError

__all__ = ["VReg", "VMask"]


@dataclass(frozen=True)
class VReg:
    """The active elements of a vector register group.

    ``data`` holds exactly ``vl`` elements; tail elements are not
    modeled (tail-agnostic policy), which is what every kernel in the
    paper uses.
    """

    data: np.ndarray

    def __post_init__(self) -> None:
        data = np.asarray(self.data)
        if data.ndim != 1:
            raise VectorLengthError(f"vector value must be 1-D, got shape {data.shape}")
        if data.dtype.kind not in ("u", "i"):
            raise VectorLengthError(f"vector value must be integer-typed, got {data.dtype}")
        object.__setattr__(self, "data", data)

    @property
    def vl(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def check_vl(self, vl: int) -> None:
        """Assert this value covers ``vl`` active elements."""
        if self.data.size != vl:
            raise VectorLengthError(
                f"operand has {self.data.size} active elements, expected vl={vl}"
            )

    def tolist(self) -> list[int]:
        return self.data.tolist()


@dataclass(frozen=True)
class VMask:
    """A mask value: one boolean per element position.

    RVV stores masks packed in ``v0`` (§3.2); the packed layout is
    exercised by :class:`repro.rvv.regfile.RegisterFile`, while values
    flowing between intrinsics use the unpacked boolean form.
    """

    bits: np.ndarray

    def __post_init__(self) -> None:
        bits = np.asarray(self.bits)
        if bits.ndim != 1 or bits.dtype != np.bool_:
            raise MaskError(f"mask must be a 1-D bool array, got {bits.dtype}, ndim={bits.ndim}")
        object.__setattr__(self, "bits", bits)

    @property
    def vl(self) -> int:
        return self.bits.size

    def check_vl(self, vl: int) -> None:
        if self.bits.size != vl:
            raise MaskError(f"mask has {self.bits.size} bits, expected vl={vl}")

    def popcount(self) -> int:
        """Number of set bits (the value ``vcpop`` returns)."""
        return int(np.count_nonzero(self.bits))

    def tolist(self) -> list[bool]:
        return self.bits.tolist()

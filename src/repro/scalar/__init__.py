"""Scalar baseline substrate: the sequential comparison targets.

Every speedup the paper reports is a ratio of a vectorized kernel's
dynamic instruction count to a sequential baseline's. This subpackage
provides those baselines: a scalar RV64 loop-cost model
(:mod:`~repro.scalar.machine`), the sequential kernels of Tables 2-4
(:mod:`~repro.scalar.kernels`), the instrumented libc-style ``qsort``
of Table 1 (:mod:`~repro.scalar.qsort`), and the heap-allocation cost
model (:mod:`~repro.scalar.malloc_model`).
"""

from .kernels import (
    enumerate_baseline,
    get_flags_baseline,
    max_scan_baseline,
    min_scan_baseline,
    p_add_baseline,
    p_select_baseline,
    permute_baseline,
    plus_scan_baseline,
    seg_max_scan_baseline,
    seg_plus_scan_baseline,
    segmented_cumsum,
    segmented_reduce_numpy,
)
from .machine import BASELINE_COSTS, LoopCost, ScalarMachine
from .malloc_model import GlibcMallocModel, ZeroMallocModel
from .qsort import QSORT_COSTS, QsortCosts, SortStats, instrumented_qsort, qsort_baseline

__all__ = [
    "ScalarMachine",
    "LoopCost",
    "BASELINE_COSTS",
    "p_add_baseline",
    "p_select_baseline",
    "plus_scan_baseline",
    "max_scan_baseline",
    "min_scan_baseline",
    "seg_plus_scan_baseline",
    "seg_max_scan_baseline",
    "enumerate_baseline",
    "permute_baseline",
    "get_flags_baseline",
    "segmented_cumsum",
    "segmented_reduce_numpy",
    "qsort_baseline",
    "instrumented_qsort",
    "QsortCosts",
    "QSORT_COSTS",
    "SortStats",
    "GlibcMallocModel",
    "ZeroMallocModel",
]

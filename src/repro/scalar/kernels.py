"""Sequential baseline kernels (the paper's comparison targets).

Each function implements the *semantics* of a baseline with NumPy
(vectorized per the HPC guides) and charges the modeled RV64 loop cost
on a :class:`~repro.scalar.machine.ScalarMachine`. Results operate
in-place on NumPy arrays, mirroring the C baselines that write through
their input pointers.

All arithmetic is modular at the element width (C unsigned semantics).
"""

from __future__ import annotations

import numpy as np

from ..errors import SegmentError, VectorLengthError
from .machine import ScalarMachine

__all__ = [
    "p_add_baseline",
    "p_select_baseline",
    "plus_scan_baseline",
    "max_scan_baseline",
    "min_scan_baseline",
    "seg_plus_scan_baseline",
    "seg_max_scan_baseline",
    "enumerate_baseline",
    "permute_baseline",
    "get_flags_baseline",
    "segmented_cumsum",
    "segmented_reduce_numpy",
]


def _check_1d(name: str, a: np.ndarray) -> np.ndarray:
    a = np.asarray(a)
    if a.ndim != 1:
        raise VectorLengthError(f"{name} must be 1-D, got shape {a.shape}")
    return a


def _check_flags(flags: np.ndarray) -> np.ndarray:
    flags = _check_1d("flags", flags)
    if flags.size and int(flags.max(initial=0)) > 1:
        raise SegmentError("flag vectors may contain only 0 and 1")
    return flags


# --- elementwise ------------------------------------------------------------

def p_add_baseline(sm: ScalarMachine, a: np.ndarray, x: int) -> None:
    """Sequential p-add: ``a[i] += x`` (Table 2's baseline)."""
    a = _check_1d("a", a)
    sm.charge_loop("p_add", a.size)
    np.add(a, a.dtype.type(int(x) & (2 ** (a.dtype.itemsize * 8) - 1)), out=a)


def p_select_baseline(
    sm: ScalarMachine, flags: np.ndarray, a: np.ndarray, b: np.ndarray
) -> None:
    """Sequential p-select: ``b[i] = a[i] if flags[i] else b[i]``
    (the form Listing 7 uses: select i_down into i_up where flag set)."""
    flags = _check_flags(flags)
    a = _check_1d("a", a)
    b = _check_1d("b", b)
    if not (flags.size == a.size == b.size):
        raise VectorLengthError("p_select operands must have equal length")
    sm.charge_loop("p_select", a.size)
    np.copyto(b, a, where=flags.astype(bool))


# --- scans ----------------------------------------------------------------

def plus_scan_baseline(sm: ScalarMachine, a: np.ndarray) -> None:
    """Sequential inclusive plus-scan, in place (Table 3's baseline)."""
    a = _check_1d("a", a)
    sm.charge_loop("plus_scan", a.size)
    np.cumsum(a, out=a)


def max_scan_baseline(sm: ScalarMachine, a: np.ndarray) -> None:
    """Sequential inclusive max-scan, in place."""
    a = _check_1d("a", a)
    sm.charge_loop("max_scan", a.size)
    np.maximum.accumulate(a, out=a)


def min_scan_baseline(sm: ScalarMachine, a: np.ndarray) -> None:
    """Sequential inclusive min-scan, in place."""
    a = _check_1d("a", a)
    sm.charge_loop("min_scan", a.size)
    np.minimum.accumulate(a, out=a)


# --- segmented scans ---------------------------------------------------------

def segmented_cumsum(a: np.ndarray, head_flags: np.ndarray) -> np.ndarray:
    """Reference segmented inclusive plus-scan (pure NumPy, no costs).

    Standard trick: take the global cumsum, then subtract, within each
    segment, the global prefix up to the segment's head. Used by both
    the scalar baseline and the vector fast path, and property-tested
    against a per-element oracle.
    """
    a = np.asarray(a)
    flags = np.asarray(head_flags)
    if a.shape != flags.shape:
        raise VectorLengthError("data and head-flags must have equal length")
    if a.size == 0:
        return a.copy()
    total = np.cumsum(a)
    starts = flags.astype(bool).copy()
    starts[0] = True
    # value of the global cumsum just before each segment head,
    # broadcast forward over the segment
    seg_id = np.cumsum(starts) - 1
    head_idx = np.flatnonzero(starts)
    prior = np.where(head_idx > 0, total[head_idx - 1], 0)
    return (total - prior[seg_id]).astype(a.dtype)


def seg_plus_scan_baseline(
    sm: ScalarMachine, a: np.ndarray, head_flags: np.ndarray
) -> None:
    """Sequential segmented inclusive plus-scan, in place (Table 4's
    baseline): the running sum resets at every head flag."""
    a = _check_1d("a", a)
    flags = _check_flags(head_flags)
    if a.size != flags.size:
        raise VectorLengthError("data and head-flags must have equal length")
    sm.charge_loop("seg_plus_scan", a.size)
    a[:] = segmented_cumsum(a, flags)


def seg_max_scan_baseline(
    sm: ScalarMachine, a: np.ndarray, head_flags: np.ndarray
) -> None:
    """Sequential segmented inclusive max-scan, in place."""
    a = _check_1d("a", a)
    flags = _check_flags(head_flags)
    if a.size != flags.size:
        raise VectorLengthError("data and head-flags must have equal length")
    sm.charge_loop("seg_max_scan", a.size)
    a[:] = segmented_reduce_numpy(a, flags, np.maximum)


def segmented_reduce_numpy(a: np.ndarray, head_flags: np.ndarray, ufunc) -> np.ndarray:
    """Segmented inclusive scan of ``a`` under any associative ufunc.

    Splits at segment heads and applies ``ufunc.accumulate`` per
    segment. O(#segments) Python overhead — acceptable because only
    non-plus operators take this path (plus uses the cumsum trick).
    """
    a = np.asarray(a)
    flags = np.asarray(head_flags).astype(bool).copy()
    if a.size == 0:
        return a.copy()
    flags[0] = True
    out = np.empty_like(a)
    bounds = np.flatnonzero(flags).tolist() + [a.size]
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        ufunc.accumulate(a[lo:hi], out=out[lo:hi])
    return out


# --- derived-operation baselines ----------------------------------------------

def enumerate_baseline(
    sm: ScalarMachine, flags: np.ndarray, dst: np.ndarray, set_bit: bool
) -> int:
    """Sequential enumerate: ``dst[i]`` = number of earlier positions
    whose flag equals ``set_bit``; returns the total count."""
    flags = _check_flags(flags)
    dst = _check_1d("dst", dst)
    if flags.size != dst.size:
        raise VectorLengthError("flags and dst must have equal length")
    sm.charge_loop("enumerate", flags.size)
    match = (flags == (1 if set_bit else 0)).astype(np.int64)
    dst[:] = np.cumsum(match) - match  # exclusive count
    return int(match.sum())


def permute_baseline(
    sm: ScalarMachine, src: np.ndarray, dst: np.ndarray, index: np.ndarray
) -> None:
    """Sequential out-of-place permute: ``dst[index[i]] = src[i]``."""
    src = _check_1d("src", src)
    dst = _check_1d("dst", dst)
    index = _check_1d("index", index)
    if not (src.size == dst.size == index.size):
        raise VectorLengthError("permute operands must have equal length")
    sm.charge_loop("permute", src.size)
    dst[index.astype(np.int64)] = src


def get_flags_baseline(
    sm: ScalarMachine, src: np.ndarray, flags: np.ndarray, bit: int
) -> None:
    """Sequential flag extraction: ``flags[i] = (src[i] >> bit) & 1``."""
    src = _check_1d("src", src)
    flags = _check_1d("flags", flags)
    if src.size != flags.size:
        raise VectorLengthError("src and flags must have equal length")
    if not 0 <= bit < src.dtype.itemsize * 8:
        raise VectorLengthError(f"bit {bit} out of range for {src.dtype}")
    sm.charge_loop("get_flags", src.size)
    flags[:] = (src >> src.dtype.type(bit)) & src.dtype.type(1)

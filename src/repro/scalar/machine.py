"""A scalar RISC-V cost model for the paper's sequential baselines.

The baselines in Tables 2-4 are "pure C code without the use of RVV
intrinsics" (§6.2) compiled for RV64. Their dynamic instruction counts
are *exactly linear* in N in the paper's tables:

* ``p_add``        : 6N + 1     (632/6002/60001/600001/6000001 — the
  N=10^2 row reads 632; every other row fits 6N+1, see EXPERIMENTS.md)
* ``plus_scan``    : 6N + 26    (626/6026/60026/600026/6000026, exact)
* ``seg_plus_scan``: 11N + 24   (1124/11024/110024/1100024/11000024, exact)

Those forms follow directly from the RV64 loop bodies a compiler emits:
e.g. the plus-scan body is ``lw; add(carry); sw; addi(ptr);
addi(count); bnez`` — six instructions per element — plus a fixed
prologue. :class:`ScalarMachine` executes the baseline *semantics*
vectorized with NumPy (per the HPC guides: never loop per element in
Python) and charges the per-element instruction budget of the modeled
loop body. Because the modeled loop bodies are branch-balanced (both
sides of any data-dependent branch retire the same instruction count),
the charge is exact, not an estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rvv.counters import Cat, Counters

__all__ = ["ScalarMachine", "LoopCost"]


@dataclass(frozen=True)
class LoopCost:
    """Instruction budget of one scalar loop: ``per_element`` dynamic
    instructions per iteration plus a one-time ``prologue``."""

    per_element: int
    prologue: int

    def total(self, n: int) -> int:
        """Closed-form dynamic count for ``n`` elements."""
        return self.per_element * int(n) + self.prologue


#: Modeled RV64 loop bodies for the paper's baselines (see module
#: docstring for the instruction-level derivations).
BASELINE_COSTS: dict[str, LoopCost] = {
    # lw, addw (broadcast scalar lives in a register), sw, addi ptr,
    # addi count, bnez
    "p_add": LoopCost(per_element=6, prologue=1),
    "p_sub": LoopCost(per_element=6, prologue=1),
    "p_mul": LoopCost(per_element=6, prologue=1),
    "p_and": LoopCost(per_element=6, prologue=1),
    "p_or": LoopCost(per_element=6, prologue=1),
    "p_xor": LoopCost(per_element=6, prologue=1),
    "p_max": LoopCost(per_element=7, prologue=1),   # extra branch/cmov
    "p_min": LoopCost(per_element=7, prologue=1),
    # lw flags, lw a, lw b, branch, sw, addi x3 ptrs, addi count, bnez -> 9
    "p_select": LoopCost(per_element=9, prologue=1),
    # lw, add carry, sw, addi ptr, addi count, bnez
    "plus_scan": LoopCost(per_element=6, prologue=26),
    "max_scan": LoopCost(per_element=7, prologue=26),
    "min_scan": LoopCost(per_element=7, prologue=26),
    "or_scan": LoopCost(per_element=6, prologue=26),
    "and_scan": LoopCost(per_element=6, prologue=26),
    # lw flag, bnez, (mv carry | add) — balanced, lw x, add, sw,
    # mv carry, addi x2 ptrs, addi count, bnez -> 11
    "seg_plus_scan": LoopCost(per_element=11, prologue=24),
    "seg_max_scan": LoopCost(per_element=12, prologue=24),
    "seg_min_scan": LoopCost(per_element=12, prologue=24),
    "seg_or_scan": LoopCost(per_element=11, prologue=24),
    "seg_and_scan": LoopCost(per_element=11, prologue=24),
    # lw flag, cmp/branch, conditional store of index, incr counter,
    # addi ptrs, count, bnez -> 8 (branch-balanced)
    "enumerate": LoopCost(per_element=8, prologue=2),
    # lw src, lw index, shifted address, sw, addi, addi, bnez -> 8
    "permute": LoopCost(per_element=8, prologue=1),
    # lw, srl, and, sw, addi x2, addi count, bnez -> 8
    "get_flags": LoopCost(per_element=8, prologue=1),
}


class ScalarMachine:
    """Counter-carrying execution context for sequential baselines.

    Keeps its own :class:`~repro.rvv.counters.Counters` so a baseline
    and its vector counterpart can be measured independently and
    compared (every speedup in the paper is a ratio of two dynamic
    counts).
    """

    def __init__(self, costs: dict[str, LoopCost] | None = None) -> None:
        self.counters = Counters()
        self.costs = dict(BASELINE_COSTS if costs is None else costs)

    def charge_loop(self, kernel: str, n: int) -> None:
        """Charge the dynamic-instruction budget of ``kernel`` over
        ``n`` elements."""
        try:
            cost = self.costs[kernel]
        except KeyError:
            raise KeyError(
                f"no scalar cost model for kernel {kernel!r}; known: {sorted(self.costs)}"
            ) from None
        self.counters.add(Cat.SCALAR, cost.total(n))

    def charge(self, n: int) -> None:
        """Charge ``n`` raw scalar instructions (for irregular code such
        as the instrumented qsort)."""
        self.counters.add(Cat.SCALAR, n)

    def reset_counters(self) -> None:
        self.counters.reset()

    @property
    def total(self) -> int:
        return self.counters.total

"""Heap-allocation cost model — the hidden variable in Table 1.

The paper's split radix sort allocates two N-element scratch buffers
inside *every* ``split`` call (Listing 7) — 64 allocations of 4N bytes
over a 32-bit sort. Table 1's per-element cost jumps from ~80
instructions at N = 10^4 to ~196 at N = 10^5 and stays there at 10^6.
That is not a property of the sort: it is the libc allocator crossing
its ``MMAP_THRESHOLD`` (128 KiB in glibc). Beyond the threshold every
malloc becomes an ``mmap`` and every free a ``munmap``, and under a
proxy-kernel environment (Spike + pk) the first touch of each fresh
page executes a counted page-fault/zeroing path.

Check against Table 1: the excess over the small-N per-element cost is
(196 - 80) * 10^5 ≈ 11.6M instructions over 32 bit-iterations with 2
large allocations each — ≈ 1800 instructions per 4 KiB page, a
plausible fault-handler plus page-zeroing cost (a 4 KiB clear alone is
512 stores). :class:`GlibcMallocModel`'s constants are fitted to that
excess by ``tools/fit_radix.py``.

Machines default to a zero-cost model; the Table 1 bench opts in.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GlibcMallocModel", "ZeroMallocModel", "PAGE_SIZE", "MMAP_THRESHOLD"]

#: RISC-V Sv39 base page size.
PAGE_SIZE = 4096
#: glibc's default M_MMAP_THRESHOLD.
MMAP_THRESHOLD = 128 * 1024


@dataclass(frozen=True)
class GlibcMallocModel:
    """Dynamic-instruction cost of glibc-style malloc/free under a
    proxy kernel.

    Small allocations hit the bin fast path; large ones pay a syscall
    plus a per-page first-touch cost on use.
    """

    small_malloc: int = 90
    small_free: int = 60
    mmap_base: int = 450
    munmap_base: int = 350
    per_page: int = 1800
    threshold: int = MMAP_THRESHOLD
    page_size: int = PAGE_SIZE

    def malloc_cost(self, nbytes: int) -> int:
        """Instructions retired by ``malloc(nbytes)`` plus first-touch
        page faults on the returned block."""
        if nbytes <= 0:
            return self.small_malloc
        if nbytes < self.threshold:
            return self.small_malloc
        pages = -(-nbytes // self.page_size)
        return self.mmap_base + pages * self.per_page

    def free_cost(self, nbytes: int) -> int:
        """Instructions retired by ``free`` of a block of ``nbytes``."""
        if nbytes < self.threshold:
            return self.small_free
        return self.munmap_base


@dataclass(frozen=True)
class ZeroMallocModel:
    """No allocation cost — for primitive microbenchmarks (Tables 2-7),
    which allocate nothing inside the timed region."""

    def malloc_cost(self, nbytes: int) -> int:
        return 0

    def free_cost(self, nbytes: int) -> int:
        return 0

"""Instrumented `qsort()` cost model — Table 1's baseline.

The paper compares split radix sort against "a baseline qsort from
stdlib" running under Spike (so a libc quicksort compiled for RV64,
called through a comparator function pointer). Table 1's baseline
column is ≈26 dynamic instructions per comparison across four decades
of N — the signature of a comparator-callback sort (indirect call,
argument marshalling, compare, return, plus partition bookkeeping per
element).

This module implements the classic libc structure — median-of-three
quicksort with an insertion-sort cutoff for small partitions — fully
instrumented: it *executes the sort* and counts comparator invocations,
swaps, partition calls and insertion-sort moves. Partition work is
vectorized with NumPy (the HPC guides' rule: no per-element Python
loops), which leaves the counts exact for comparisons/partitions and a
faithful Hoare-style model for swaps.

The per-operation dynamic-instruction costs are fitted to Table 1 by
``tools/fit_qsort.py`` (least squares over the five paper rows); the
fitted constants live in :data:`QSORT_COSTS` with the fit residuals
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import VectorLengthError
from .machine import ScalarMachine

__all__ = ["SortStats", "QsortCosts", "QSORT_COSTS", "qsort_baseline", "instrumented_qsort"]

#: Partitions at or below this size finish with insertion sort
#: (glibc uses 4, newlib 7; the fit is insensitive to the exact cutoff
#: because the per-op costs absorb it).
INSERTION_THRESHOLD = 8


@dataclass
class SortStats:
    """Operation counts observed during one instrumented sort."""

    comparisons: int = 0
    swaps: int = 0
    partitions: int = 0
    insertion_moves: int = 0
    n: int = 0

    def __iadd__(self, other: "SortStats") -> "SortStats":
        self.comparisons += other.comparisons
        self.swaps += other.swaps
        self.partitions += other.partitions
        self.insertion_moves += other.insertion_moves
        return self


@dataclass(frozen=True)
class QsortCosts:
    """Dynamic-instruction cost of each observed operation.

    ``per_comparison`` dominates (indirect comparator call: ~10
    instructions of call/return/marshalling + the compare itself +
    the inner-loop step around it).
    """

    per_comparison: float
    per_swap: float
    per_partition: float
    per_insertion_move: float
    per_element: float
    base: float

    def dynamic_count(self, stats: SortStats) -> int:
        """Model the Spike dynamic instruction count of this sort."""
        return round(
            self.per_comparison * stats.comparisons
            + self.per_swap * stats.swaps
            + self.per_partition * stats.partitions
            + self.per_insertion_move * stats.insertion_moves
            + self.per_element * stats.n
            + self.base
        )


#: Fitted to Table 1 (see tools/fit_qsort.py); regenerate with
#: ``python tools/fit_qsort.py`` after changing the sort structure.
QSORT_COSTS = QsortCosts(
    per_comparison=18.5019,
    per_swap=15.0,
    per_partition=120.0,
    per_insertion_move=10.0,
    per_element=3.4019,
    base=50.0,
)


def _median_of_three(a: np.ndarray, stats: SortStats) -> int:
    """Pick the median of first/middle/last (3 comparator calls)."""
    stats.comparisons += 3
    lo, mid, hi = int(a[0]), int(a[a.size // 2]), int(a[-1])
    return sorted((lo, mid, hi))[1]


def _insertion(a: np.ndarray, stats: SortStats) -> None:
    """Insertion-sort a small block, counting comparisons and moves.

    Insertion sort performs (#inversions + n - 1) comparisons and
    #inversions element moves on average-case input; the inversion
    count of a tiny block is computed with one vectorized pairwise
    compare.
    """
    n = a.size
    if n > 1:
        inversions = int(np.sum(np.triu(a[:, None] > a[None, :], k=1)))
        stats.comparisons += inversions + (n - 1)
        stats.insertion_moves += inversions
        a.sort()


def _quicksort(a: np.ndarray, stats: SortStats) -> None:
    """Median-of-three quicksort with three-way partitioning, in place.

    Tail recursion on the larger side is converted to iteration so the
    Python stack stays O(lg n).
    """
    while a.size > INSERTION_THRESHOLD:
        stats.partitions += 1
        pivot = _median_of_three(a, stats)
        # one comparator call per element against the pivot
        stats.comparisons += a.size
        less = a < pivot
        greater = a > pivot
        n_less = int(np.count_nonzero(less))
        n_greater = int(np.count_nonzero(greater))
        # Hoare-style swap count: elements that end up left of the
        # boundary but started right of it (== elements > pivot found
        # in the final low region before partitioning).
        stats.swaps += int(np.count_nonzero(greater[:n_less]))
        # three-way partition (semantics)
        mid_fill = a.size - n_less - n_greater
        merged = np.concatenate((a[less], np.full(mid_fill, pivot, dtype=a.dtype), a[greater]))
        a[:] = merged
        left = a[:n_less]
        right = a[a.size - n_greater:]
        # recurse on the smaller side, loop on the larger
        if left.size < right.size:
            _quicksort(left, stats)
            a = right
        else:
            _quicksort(right, stats)
            a = left
    _insertion(a, stats)


def instrumented_qsort(values: np.ndarray) -> tuple[np.ndarray, SortStats]:
    """Sort a copy of ``values``, returning the result and the
    operation counts."""
    values = np.asarray(values)
    if values.ndim != 1:
        raise VectorLengthError(f"qsort input must be 1-D, got shape {values.shape}")
    out = values.copy()
    stats = SortStats(n=out.size)
    if out.size:
        _quicksort(out, stats)
    return out, stats


def qsort_baseline(
    sm: ScalarMachine, values: np.ndarray, costs: QsortCosts = QSORT_COSTS
) -> np.ndarray:
    """The Table 1 baseline: sort ``values`` and charge the modeled
    dynamic instruction count on ``sm``."""
    out, stats = instrumented_qsort(values)
    sm.charge(costs.dynamic_count(stats))
    return out

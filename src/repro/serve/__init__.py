"""repro.serve — the async plan-serving daemon.

The fifth execution tier: where :mod:`repro.batch` turns *one caller's*
many inputs into length-bucketed 2D evaluations, this package turns
*many concurrent callers* into the same shape. A long-running asyncio
service (``repro serve``) accepts plan-execution requests — NDJSON
over TCP / unix socket, or the in-process async API — and coalesces
same-``(pipeline, n, dtype, mode)`` requests on a deadline window
(flush every ``flush_ms`` or ``max_rows``, whichever first) into
single :func:`repro.batch.run_bucket` evaluations. A worker pool
shares one warm :class:`~repro.engine.cache.PlanCache` and persistent
plan store, so a plan compiles once per shape for the whole service.

Guarantees:

* **identity** — coalesced results and per-category counters are
  bit-identical to executing the same requests sequentially through
  direct SVM calls (pack/strict requests take the loop fallback, same
  as the batch runner);
* **backpressure** — past ``queue_limit`` in-flight requests, new ones
  are rejected with :class:`~repro.errors.ServeOverloadedError` before
  any work happens;
* **graceful shutdown** — draining completes every accepted request;
* **observability** — per-request latency (p50/p99), coalescing ratio,
  rows-per-flush, and loop-fallback counts through
  :mod:`repro.obs` metrics, a ``stats`` request, and
  ``repro serve --stats-json``.

See ``docs/serving.md`` for the protocol and window semantics.
"""

from .client import ServeClient
from .coalesce import BucketKey, Coalescer, Flush, PendingRequest
from .protocol import DTYPES, MODES, PIPELINES, register_pipeline
from .server import ExecuteResult, ServeConfig, Server, ServerThread

__all__ = [
    "Server",
    "ServerThread",
    "ServeConfig",
    "ExecuteResult",
    "ServeClient",
    "Coalescer",
    "BucketKey",
    "PendingRequest",
    "Flush",
    "PIPELINES",
    "DTYPES",
    "MODES",
    "register_pipeline",
]

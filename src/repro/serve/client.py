"""Clients for the serving daemon.

:class:`ServeClient` is the blocking socket client (TCP or unix) used
by tools, the CI smoke test, and external callers. It speaks the
NDJSON protocol and supports **pipelining**: :meth:`execute_many`
writes every request before reading any response, so a single
connection can offer real concurrency to the coalescer. Responses are
correlated by ``id`` (they complete per-flush, not per-send).

In-process async callers use :meth:`repro.serve.server.Server.submit`
directly; sync tests use :class:`repro.serve.server.ServerThread`.
"""

from __future__ import annotations

import itertools
import socket

import numpy as np

from ..errors import (
    ServeClosedError,
    ServeError,
    ServeOverloadedError,
    ServeProtocolError,
)
from . import protocol

__all__ = ["ServeClient"]

_CODE_ERRORS = {
    "overloaded": ServeOverloadedError,
    "protocol": ServeProtocolError,
    "closed": ServeClosedError,
}


def _raise_for(resp: dict) -> None:
    code = resp.get("code", "internal")
    msg = resp.get("error", "unknown server error")
    if code == "overloaded":
        # reconstructs with the server's limit text intact
        err = ServeOverloadedError(0)
        err.args = (msg,)
        raise err
    raise _CODE_ERRORS.get(code, ServeError)(msg)


class ServeClient:
    """Blocking NDJSON client for one daemon connection.

    >>> with ServeClient(port=8377) as c:          # doctest: +SKIP
    ...     out = c.execute("chain_scan", [1, 2, 3, 4])
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int | None = None,
                 unix_path: str | None = None, timeout: float = 120.0) -> None:
        if (port is None) == (unix_path is None):
            raise ValueError("pass exactly one of port= or unix_path=")
        if unix_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(unix_path)
        else:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)
        self._responses: dict = {}  # id -> response received early

    # -- plumbing -------------------------------------------------------
    def _send(self, obj: dict) -> None:
        self._file.write(protocol.encode(obj))
        self._file.flush()

    def _read(self) -> dict:
        line = self._file.readline(protocol.MAX_FRAME + 2)
        if not line:
            raise ServeError("connection closed by server")
        return protocol.decode(line)

    def _recv(self, req_id) -> dict:
        """The response for ``req_id``, buffering any that arrive for
        other in-flight ids (flush completion order ≠ send order)."""
        if req_id in self._responses:
            return self._responses.pop(req_id)
        while True:
            resp = self._read()
            if resp.get("id") == req_id:
                return resp
            self._responses[resp.get("id")] = resp

    def request(self, obj: dict) -> dict:
        """One round trip; raises the typed ServeError for failures."""
        req_id = next(self._ids)
        self._send({"id": req_id, **obj})
        resp = self._recv(req_id)
        if not resp.get("ok"):
            _raise_for(resp)
        return resp

    # -- the protocol surface ------------------------------------------
    def execute(self, pipeline: str, data, *, dtype: str = "uint32",
                mode: str | None = None) -> np.ndarray:
        resp = self.request({"op": "execute", "pipeline": pipeline,
                             "data": np.asarray(data).tolist(),
                             "dtype": dtype, "mode": mode})
        return np.asarray(resp["result"], dtype=protocol.DTYPES[dtype])

    def execute_traced(self, pipeline: str, data, *, dtype: str = "uint32",
                       mode: str | None = None) -> dict:
        """Like :meth:`execute` but returns the full response document
        — including the telemetry fields ``trace`` (the request's
        trace ID), ``timing`` (queue/coalesce/execute breakdown), and
        ``cache`` (the flush's plan-cache outcome) when the daemon has
        telemetry enabled."""
        return self.request({"op": "execute", "pipeline": pipeline,
                             "data": np.asarray(data).tolist(),
                             "dtype": dtype, "mode": mode})

    def execute_many(self, requests: list[dict]) -> list:
        """Pipelined batch: write every execute request, then collect
        responses by id. Returns, in request order, either the result
        ndarray or the typed exception — callers inspect rejects
        without losing the successes. Each entry: ``{"pipeline", "data"
        [, "dtype", "mode"]}``."""
        ids = []
        for r in requests:
            req_id = next(self._ids)
            ids.append((req_id, r.get("dtype", "uint32")))
            self._send({"id": req_id, "op": "execute",
                        "pipeline": r["pipeline"],
                        "data": np.asarray(r["data"]).tolist(),
                        "dtype": r.get("dtype", "uint32"),
                        "mode": r.get("mode")})
        out = []
        for req_id, dtype in ids:
            resp = self._recv(req_id)
            if resp.get("ok"):
                out.append(np.asarray(resp["result"],
                                      dtype=protocol.DTYPES[dtype]))
            else:
                try:
                    _raise_for(resp)
                except ServeError as exc:
                    out.append(exc)
        return out

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def metrics(self) -> str:
        """The daemon's metrics in Prometheus text exposition format
        (validate with :func:`repro.obs.exposition.parse_exposition`)."""
        return self.request({"op": "metrics"})["metrics"]

    def dump(self) -> dict:
        """The daemon's flight-recorder contents: retained events,
        slowest-request exemplars, recorded/dropped totals."""
        return self.request({"op": "dump"})["dump"]

    def ops(self) -> list[dict]:
        """The OpSpec tier-support matrix (``repro ops --json``
        served over the wire)."""
        return self.request({"op": "ops"})["ops"]

    def shutdown(self) -> bool:
        """Ask the daemon to drain and exit."""
        return bool(self.request({"op": "shutdown"}).get("draining"))

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

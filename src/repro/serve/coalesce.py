"""Request coalescing: group concurrent same-plan requests per bucket.

The serving daemon's core move is the one the batch runner already
made sound (``docs/batching.md``): requests that share a
``(pipeline, length, dtype, mode)`` key would capture α-equivalent
plans, so they may execute as **one** length-bucketed 2D evaluation
with bit- and counter-identical results. The coalescer implements the
grouping side of that bargain on a deadline window:

* a bucket *fills* — when it reaches ``max_rows`` pending requests it
  flushes immediately (the caller executes it), or
* a bucket *expires* — ``flush_ms`` after its **first** request
  arrived it flushes with whatever it holds (bounded latency for the
  oldest waiter; later arrivals never extend the deadline).

This module is deliberately event-loop-free: it manages pure state
(buckets, deadlines, pending counts) against an injected clock, so the
window semantics are unit-testable without timers. The asyncio server
drives it: :meth:`Coalescer.add` may hand back a full flush,
:meth:`Coalescer.deadline` tells the server when to wake, and
:meth:`Coalescer.expired` / :meth:`Coalescer.drain` pop expired /
remaining buckets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import NamedTuple

__all__ = ["BucketKey", "PendingRequest", "Flush", "Coalescer"]


class BucketKey(NamedTuple):
    """The coalescing identity: requests sharing all four fields may
    execute as one bucket (the vl strip sequence — and with it the
    whole per-row instruction profile — depends only on these)."""

    pipeline: str
    n: int
    dtype: str
    mode: str


@dataclass
class PendingRequest:
    """One queued request: its input row, arrival time, and the
    completion handle the server resolves after the flush executes
    (an ``asyncio.Future`` in the daemon; anything with
    ``set_result``/``set_exception`` in tests)."""

    data: object
    enqueued_at: float
    future: object
    #: Telemetry trace ID (``"t<seq>"``); empty when telemetry is off.
    trace_id: str = ""


class Flush(NamedTuple):
    """One executable unit: a bucket's worth of same-key requests plus
    why it left the window (``"rows"``, ``"deadline"``, ``"drain"``)."""

    key: BucketKey
    requests: list
    reason: str
    #: Clock time the bucket left the window (stamped by the
    #: coalescer) — the boundary between a request's *coalesce* wait
    #: and its *queue* wait in the per-request timing breakdown.
    at: float = 0.0

    @property
    def rows(self) -> int:
        return len(self.requests)


@dataclass
class _Bucket:
    requests: list = field(default_factory=list)
    deadline: float = 0.0


class Coalescer:
    """Pure coalescing state: per-key buckets with deadlines.

    ``flush_ms`` is the deadline window; ``max_rows`` the fill
    trigger. The injected ``clock`` (seconds, monotonic) makes window
    semantics deterministic under test.
    """

    def __init__(self, *, flush_ms: float = 2.0, max_rows: int = 64,
                 clock=time.monotonic) -> None:
        if flush_ms <= 0:
            raise ValueError(f"flush_ms must be > 0, got {flush_ms}")
        if max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {max_rows}")
        self.flush_ms = float(flush_ms)
        self.max_rows = int(max_rows)
        self.clock = clock
        self._buckets: dict[BucketKey, _Bucket] = {}

    # ------------------------------------------------------------------
    # state queries
    # ------------------------------------------------------------------
    @property
    def pending_rows(self) -> int:
        """Requests sitting in the window (not yet flushed)."""
        return sum(len(b.requests) for b in self._buckets.values())

    def deadline(self) -> float | None:
        """The earliest bucket deadline (absolute clock time), or None
        when the window is empty — the server's next wake-up."""
        if not self._buckets:
            return None
        return min(b.deadline for b in self._buckets.values())

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------
    def add(self, key: BucketKey, req: PendingRequest) -> Flush | None:
        """Queue one request; returns the bucket as a :class:`Flush`
        the moment it fills to ``max_rows`` (the caller must execute
        it), else None (it waits for the deadline)."""
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket(
                deadline=self.clock() + self.flush_ms / 1e3
            )
        bucket.requests.append(req)
        if len(bucket.requests) >= self.max_rows:
            del self._buckets[key]
            return Flush(key, bucket.requests, "rows", self.clock())
        return None

    def expired(self, now: float | None = None) -> list[Flush]:
        """Pop every bucket whose deadline has passed."""
        now = self.clock() if now is None else now
        due = [k for k, b in self._buckets.items() if b.deadline <= now]
        return [Flush(k, self._buckets.pop(k).requests, "deadline", now)
                for k in due]

    def drain(self) -> list[Flush]:
        """Pop everything (graceful shutdown: residual buckets still
        execute, they just stop waiting for the window)."""
        now = self.clock()
        flushes = [Flush(k, b.requests, "drain", now)
                   for k, b in self._buckets.items()]
        self._buckets.clear()
        return flushes

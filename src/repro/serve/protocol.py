"""Wire protocol and pipeline registry for the serving daemon.

Framing is newline-delimited JSON (NDJSON): one request object per
line, one response object per line, matched by a client-chosen ``id``.
Responses may arrive out of send order — coalescing completes whole
flushes at once — so pipelining clients must correlate by ``id``.

Requests
--------
``{"id": I, "op": "execute", "pipeline": P, "data": [...],
"dtype": "uint32", "mode": null}``
    Run registered pipeline ``P`` over a 1-D integer array. ``mode``
    overrides the server's execution mode for this request
    (``"strict"`` forces the per-row loop fallback; identity holds
    either way).
``{"op": "stats"}`` / ``{"op": "ops"}`` / ``{"op": "ping"}``
    Introspection: serving metrics, the OpSpec tier-support matrix
    (:func:`repro.svm.opspec.support_matrix`), liveness.
``{"op": "metrics"}``
    Every metric family in Prometheus text exposition format (see
    :mod:`repro.obs.exposition`) — the scrape endpoint and what
    ``repro top`` polls.
``{"op": "dump"}``
    The telemetry flight recorder: retained structured events plus
    the slowest-request exemplars (see :mod:`repro.obs.telemetry`).
``{"op": "shutdown"}``
    Graceful drain: in-flight and already-queued requests complete,
    new ones are rejected with code ``"closed"``.

Responses
---------
``{"id": I, "ok": true, "result": [...], "n": N,
"path": "2d"|"ragged"|"loop", "flush_rows": R, "trace": T,
"timing": {...}, "cache": S}`` for execute (``flush_rows`` is how many
coalesced requests shared the flush — the client-visible coalescing
evidence; ``trace`` is the request's telemetry trace ID, ``timing``
its coalesce/queue/execute breakdown in ms, and ``cache`` the flush's
plan-cache outcome in ``{"memory", "disk", "compile", "none"}`` — the
telemetry trio is present whenever the daemon runs with telemetry
enabled, the default). Pack pipelines additionally carry
``"valid": K`` — the row's survivor count — and ``result`` holds only
those ``K`` defined lanes (lanes past the kept count are undefined
under the single-row semantics, so they never cross the wire, on any
path). ``{"id": I, "ok": false, "error": MSG, "code": C}`` on failure
with ``code`` in
``{"overloaded", "protocol", "closed", "internal"}``.

Pipelines are *named server-side*, never shipped as code: the registry
below maps names to ``pipe(lz, data)`` capture functions (the exact
shape :func:`repro.batch.run_bucket` executes). The defaults cover
every dispatch regime — fused 2D chains, structured permutation
plans, and ``pack``-terminated pipelines on the masked ragged path.
"""

from __future__ import annotations

import json

import numpy as np

from ..errors import ServeProtocolError

__all__ = [
    "MAX_FRAME",
    "DTYPES",
    "MODES",
    "PIPELINES",
    "register_pipeline",
    "encode",
    "decode",
    "validate_execute",
    "error_response",
]

#: Upper bound on one NDJSON frame (request or response line).
MAX_FRAME = 32 * 1024 * 1024

#: Wire-accepted element dtypes.
DTYPES = {"uint32": np.uint32, "uint64": np.uint64}

#: Wire-accepted execution modes (per-request override).
MODES = ("auto", "strict", "fast")


# ---------------------------------------------------------------------------
# pipeline registry
# ---------------------------------------------------------------------------

def _pipe_chain_scan(lz, data):
    """Fused elementwise chain + plus-scan: the 2D fast-path showcase."""
    lz.p_add(data, 10)
    lz.p_mul(data, 3)
    lz.p_xor(data, 5)
    lz.plus_scan(data)
    return data


def _pipe_elementwise(lz, data):
    """Pure fused elementwise chain (no scan tail)."""
    lz.p_add(data, 1)
    lz.p_sll(data, 1)
    lz.p_or(data, 1)
    return data


def _pipe_scan(lz, data):
    """Bare inclusive plus-scan."""
    lz.plus_scan(data)
    return data


def _pipe_reverse(lz, data):
    """Derived permutation (index + rsub + back_permute): structured
    non-fused nodes on the 2D path."""
    return lz.reverse(data)


def _pipe_filter(lz, data):
    """Range filter via pack — flushes execute as one masked 2D
    evaluation on the ``"ragged"`` path, with pack's data-dependent
    charge corrected per row (counters stay loop-identical)."""
    lt_hi = lz.p_lt(data, 3 * 2**14)
    ge_lo = lz.p_ge(data, 2**14)
    lz.p_mul(ge_lo, lt_hi)
    out, _kept = lz.pack(data, ge_lo)
    lz.free(ge_lo)
    lz.free(lt_hi)
    return out


def _pipe_radix_pack(lz, data):
    """One radix pass (split by bit 0) feeding a range filter: the
    split's enumerate-count future and pack's kept future both thread
    through the ragged batch path."""
    flags = lz.get_flags(data, 0)
    part, _zeros = lz.split(data, flags)
    keep = lz.p_lt(part, 2**15)
    out, _kept = lz.pack(part, keep)
    lz.free(keep)
    lz.free(part)
    lz.free(flags)
    return out


PIPELINES: dict = {
    "chain_scan": _pipe_chain_scan,
    "elementwise": _pipe_elementwise,
    "scan": _pipe_scan,
    "reverse": _pipe_reverse,
    "filter": _pipe_filter,
    "radix_pack": _pipe_radix_pack,
}


def register_pipeline(name: str, pipe) -> None:
    """Register a served pipeline: ``pipe(lz, data)`` must return its
    output array (the :func:`repro.batch.run_batch` shape). Re-using a
    name is an error — a name means one plan family."""
    if name in PIPELINES:
        raise ValueError(f"pipeline {name!r} is already registered")
    PIPELINES[name] = pipe


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def encode(obj: dict) -> bytes:
    """One NDJSON frame (compact separators, trailing newline)."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes) -> dict:
    """Parse one request frame; every malformation is a
    :class:`~repro.errors.ServeProtocolError` (never a raw JSON or
    type error leaking into the server loop)."""
    if len(line) > MAX_FRAME:
        raise ServeProtocolError(
            f"frame of {len(line)} bytes exceeds limit {MAX_FRAME}"
        )
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServeProtocolError(f"bad JSON frame: {exc}") from None
    if not isinstance(obj, dict):
        raise ServeProtocolError(
            f"request must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def validate_execute(obj: dict) -> tuple[str, np.ndarray, str, str | None]:
    """Check an execute request's fields; returns
    ``(pipeline, data array, dtype name, mode or None)``."""
    pipeline = obj.get("pipeline")
    if pipeline not in PIPELINES:
        raise ServeProtocolError(
            f"unknown pipeline {pipeline!r}; registered: {sorted(PIPELINES)}"
        )
    dtype = obj.get("dtype", "uint32")
    if dtype not in DTYPES:
        raise ServeProtocolError(
            f"unsupported dtype {dtype!r}; supported: {sorted(DTYPES)}"
        )
    mode = obj.get("mode")
    if mode is not None and mode not in MODES:
        raise ServeProtocolError(
            f"unsupported mode {mode!r}; supported: {MODES}"
        )
    data = obj.get("data")
    if not isinstance(data, list) or not data:
        raise ServeProtocolError("'data' must be a non-empty JSON array")
    try:
        arr = np.asarray(data, dtype=DTYPES[dtype])
    except (ValueError, TypeError, OverflowError) as exc:
        raise ServeProtocolError(f"bad 'data' payload: {exc}") from None
    if arr.ndim != 1:
        raise ServeProtocolError(f"'data' must be 1-D, got shape {arr.shape}")
    return pipeline, arr, dtype, mode


_ERROR_CODES = {
    "ServeOverloadedError": "overloaded",
    "ServeProtocolError": "protocol",
    "ServeClosedError": "closed",
}


def error_response(req_id, exc: BaseException) -> dict:
    """The wire form of a failed request."""
    code = _ERROR_CODES.get(type(exc).__name__, "internal")
    return {"id": req_id, "ok": False, "error": str(exc), "code": code}

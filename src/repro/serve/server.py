"""The asyncio plan-serving daemon.

One :class:`Server` owns:

* a :class:`~repro.serve.coalesce.Coalescer` grouping concurrent
  requests by ``(pipeline, n, dtype, mode)`` on a deadline window;
* a worker pool — each worker is an :class:`~repro.svm.context.SVM`
  context with its own simulated machine (counters stay additive), all
  sharing **one** warm :class:`~repro.engine.cache.PlanCache` and, when
  configured, one persistent plan-store directory, so a plan compiled
  for any request serves every later request of the same shape;
* optional TCP / unix-socket listeners speaking the NDJSON protocol
  (:mod:`repro.serve.protocol`), plus the in-process async
  :meth:`Server.submit` API used by tests and benchmarks.

Each flush executes through :func:`repro.batch.run_bucket` — the
pre-grouped 2D batch entry point — in a thread-pool executor so the
event loop keeps accepting while NumPy crunches. Backpressure is a
bounded in-flight count: past ``queue_limit`` requests are rejected
with :class:`~repro.errors.ServeOverloadedError` before any work
happens. Graceful shutdown drains the window and every queued flush
before the workers stop, so no accepted request is ever dropped.

The repro invariant holds end-to-end: a coalesced flush's results and
per-category counters are bit-identical to executing its requests
sequentially through direct SVM calls (``tests/serve/`` gates this).
Pack pipelines flush as one masked 2D evaluation on the batch runner's
``"ragged"`` path; their responses carry only the defined survivor
prefix (the ``valid`` field), on every path, since lanes past a row's
kept count are undefined under the single-row semantics too.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import monotonic

import numpy as np

from ..engine.cache import PlanCache
from ..errors import (
    ServeClosedError,
    ServeError,
    ServeOverloadedError,
    ServeProtocolError,
)
from ..obs.exposition import render_exposition
from ..obs.metrics import MetricsRegistry
from ..obs.telemetry import Telemetry, TraceContext, trace_scope
from ..svm.context import SVM
from ..svm.opspec import support_matrix
from . import protocol
from .coalesce import BucketKey, Coalescer, Flush, PendingRequest

__all__ = ["ServeConfig", "ExecuteResult", "Server", "ServerThread"]

_STOP = object()  # worker-queue sentinel


@dataclass
class ServeConfig:
    """Everything ``repro serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int | None = None          #: TCP port (0 = ephemeral); None = no TCP
    unix_path: str | None = None     #: unix-socket path; None = no unix socket
    flush_ms: float = 2.0            #: coalescing window deadline
    max_rows: int = 64               #: coalescing window fill trigger
    queue_limit: int = 1024          #: max in-flight requests (backpressure)
    workers: int = 1                 #: executor pool size (SVM contexts)
    vlen: int = 1024
    codegen: str = "paper"
    mode: str = "auto"               #: default per-request execution mode
    backend: str | None = None
    cache_dir: str | None = None     #: shared persistent plan store
    #: None (off), "auto", or a TunePolicy — workers consult the
    #: shape→config tuning DB per request shape at dispatch time
    tune: object | None = None
    profile: bool = False            #: per-worker obs collectors + flush spans
    max_requests: int | None = None  #: graceful exit after N execute requests
    telemetry: bool = True           #: always-on tracing + flight recorder
    flight_capacity: int = 512       #: flight-recorder ring size (events)
    flight_exemplars: int = 8        #: slowest-request span trees retained
    flight_dump: str | None = None   #: NDJSON dump path written on error


@dataclass
class ExecuteResult:
    """One served request's output plus its dispatch evidence."""

    output: np.ndarray
    n: int
    path: str          #: "2d", "ragged", or "loop" — how the flush executed
    flush_rows: int    #: coalesced requests sharing the flush
    latency_ms: float
    #: defined-prefix length for pack pipelines (``output`` is already
    #: sliced to it); None when every lane of the result is defined
    valid: int | None = None
    trace_id: str = ""                       #: telemetry trace ID
    #: queue/coalesce/execute breakdown of ``latency_ms`` (all in ms)
    timing: dict = field(default_factory=dict)
    cache: str = "none"                      #: plan-cache outcome of the flush


class Server:
    """The serving daemon (see module docstring). Lifecycle::

        server = Server(ServeConfig(port=0))
        await server.start()
        res = await server.submit("chain_scan", rows)
        await server.shutdown()     # drains, then stops

    All public methods must run on the server's event loop; sync
    callers use :class:`ServerThread`.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        if self.config.mode not in protocol.MODES:
            raise ServeProtocolError(
                f"unsupported mode {self.config.mode!r}")
        if self.config.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.config.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        #: The warm cache every worker shares.
        self.plan_cache = PlanCache()
        self.metrics = MetricsRegistry()
        #: Always-on service telemetry: trace IDs + flight recorder.
        self.telemetry = Telemetry(
            enabled=self.config.telemetry,
            flight_capacity=self.config.flight_capacity,
            slowest=self.config.flight_exemplars)
        self._clock = monotonic
        self._started_at = monotonic()
        # hot-path metric objects resolved once — the per-request path
        # must not pay a registry lookup (name + label freezing) per
        # event, or always-on telemetry stops being free
        m = self.metrics
        self._m_requests = m.counter("serve.requests")
        self._m_ok = m.counter("serve.ok")
        self._m_rejected = m.counter("serve.rejected")
        self._m_errors = m.counter("serve.errors")
        self._m_latency = m.summary("serve.latency_ms")
        self._pipe_metrics: dict[tuple[str, str], tuple] = {}
        self._coalescer = Coalescer(flush_ms=self.config.flush_ms,
                                    max_rows=self.config.max_rows,
                                    clock=self._clock)
        self._worker_svms: list[SVM] = []
        self._worker_tasks: list[asyncio.Task] = []
        self._flush_q: asyncio.Queue = asyncio.Queue()
        self._pool: ThreadPoolExecutor | None = None
        self._wakeup = asyncio.Event()
        self._window_task: asyncio.Task | None = None
        self._servers: list[asyncio.AbstractServer] = []
        self._accepting = False
        self._inflight = 0
        self._served = 0
        self._shutdown_started = False
        self._closed = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        cfg = self.config
        for _ in range(cfg.workers):
            svm = SVM(vlen=cfg.vlen, codegen=cfg.codegen, mode=cfg.mode,
                      backend=cfg.backend, cache_dir=cfg.cache_dir,
                      plan_cache=self.plan_cache, profile=cfg.profile,
                      tune=cfg.tune)
            self._worker_svms.append(svm)
        self._pool = ThreadPoolExecutor(
            max_workers=cfg.workers, thread_name_prefix="repro-serve")
        self._worker_tasks = [
            asyncio.create_task(self._worker(svm, i),
                                name=f"serve-worker-{i}")
            for i, svm in enumerate(self._worker_svms)
        ]
        self._window_task = asyncio.create_task(
            self._window_loop(), name="serve-window")
        if cfg.unix_path is not None:
            self._servers.append(await asyncio.start_unix_server(
                self._handle_conn, path=cfg.unix_path,
                limit=protocol.MAX_FRAME))
        if cfg.port is not None:
            self._servers.append(await asyncio.start_server(
                self._handle_conn, cfg.host, cfg.port,
                limit=protocol.MAX_FRAME))
        self._accepting = True

    @property
    def address(self) -> tuple[str, int] | None:
        """The bound TCP ``(host, port)`` (after :meth:`start` with a
        ``port`` configured), else None."""
        for srv in self._servers:
            for sock in srv.sockets or ():
                name = sock.getsockname()
                if isinstance(name, tuple):
                    return (name[0], name[1])
        return None

    async def shutdown(self) -> None:
        """Graceful drain: reject new requests, flush the residual
        window, execute every queued flush, then stop the workers and
        close the listeners. Idempotent; concurrent callers wait."""
        if self._shutdown_started:
            await self._closed.wait()
            return
        self._shutdown_started = True
        self._accepting = False
        for srv in self._servers:
            srv.close()
        for flush in self._coalescer.drain():
            self._flush_q.put_nowait(flush)
        if self._window_task is not None:
            self._window_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._window_task
        for _ in self._worker_tasks:
            self._flush_q.put_nowait(_STOP)
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        for srv in self._servers:
            with contextlib.suppress(Exception):
                await srv.wait_closed()
        self._closed.set()

    async def wait_closed(self) -> None:
        """Block until a shutdown (request, signal, or
        ``max_requests``) completes."""
        await self._closed.wait()

    # ------------------------------------------------------------------
    # the in-process request API
    # ------------------------------------------------------------------
    async def submit(self, pipeline: str, data, *, dtype: str = "uint32",
                     mode: str | None = None) -> ExecuteResult:
        """Queue one request into the coalescing window and await its
        result. Raises :class:`~repro.errors.ServeOverloadedError` when
        the bounded queue is full, :class:`~repro.errors.ServeClosedError`
        while draining, :class:`~repro.errors.ServeProtocolError` on a
        bad pipeline/dtype/mode/shape."""
        if not self._accepting:
            raise ServeClosedError("server is draining; request rejected")
        if pipeline not in protocol.PIPELINES:
            raise ServeProtocolError(
                f"unknown pipeline {pipeline!r}; "
                f"registered: {sorted(protocol.PIPELINES)}")
        if dtype not in protocol.DTYPES:
            raise ServeProtocolError(f"unsupported dtype {dtype!r}")
        mode = mode or self.config.mode
        if mode not in protocol.MODES:
            raise ServeProtocolError(f"unsupported mode {mode!r}")
        arr = np.asarray(data, dtype=protocol.DTYPES[dtype])
        if arr.ndim != 1 or arr.size == 0:
            raise ServeProtocolError(
                f"data must be non-empty and 1-D, got shape {arr.shape}")
        tel = self.telemetry
        self._m_requests.inc()
        if self._inflight >= self.config.queue_limit:
            self._m_rejected.inc()
            tel.rejected(reason="overloaded", inflight=self._inflight)
            raise ServeOverloadedError(self.config.queue_limit)
        self._inflight += 1
        t0 = self._clock()
        trace_id = tel.new_trace_id() if tel.enabled else ""
        fut = asyncio.get_running_loop().create_future()
        key = BucketKey(pipeline, int(arr.size), dtype, mode)
        pm = None
        if tel.enabled:
            tel.admitted(trace_id, pipeline=pipeline, n=int(arr.size),
                         dtype=dtype, mode=mode)
            pm = self._pipe_metrics.get((pipeline, mode))
            if pm is None:
                pm = (self.metrics.counter("serve.pipeline.requests",
                                           pipeline=pipeline, mode=mode),
                      self.metrics.summary("serve.pipeline.latency_ms",
                                           pipeline=pipeline))
                self._pipe_metrics[(pipeline, mode)] = pm
            pm[0].inc()
        full = self._coalescer.add(key,
                                   PendingRequest(arr, t0, fut, trace_id))
        if tel.enabled:
            tel.coalesced(trace_id, key=key)
        if full is not None:
            self._flush_q.put_nowait(full)
        else:
            self._wakeup.set()
        try:
            output, meta, valid = await fut
        except BaseException as exc:
            self._m_errors.inc()
            tel.errored(trace_id or None, error=repr(exc))
            self._dump_on_error()
            raise
        finally:
            self._inflight -= 1
            self._served += 1
            if (self.config.max_requests is not None
                    and self._served >= self.config.max_requests
                    and not self._shutdown_started):
                asyncio.get_running_loop().create_task(self.shutdown())
        latency_ms = (self._clock() - t0) * 1e3
        self._m_ok.inc()
        self._m_latency.observe(round(latency_ms, 3))
        timing: dict = {}
        if tel.enabled:
            # the request's life split at the flush boundaries:
            # window wait (admit -> flush pop), queue wait (pop ->
            # worker starts), execute (run_bucket), total (admit ->
            # result)
            timing = {
                "coalesce_ms": round(
                    max(0.0, (meta["flush_at"] - t0) * 1e3), 3),
                "queue_ms": round(
                    max(0.0, (meta["exec_start"] - meta["flush_at"]) * 1e3),
                    3),
                "execute_ms": round(meta["execute_ms"], 3),
                "total_ms": round(latency_ms, 3),
            }
            tel.completed(trace_id, flush_id=meta["flush_id"],
                          timing=timing, cache=meta["cache"],
                          path=meta["path"])
            pm[1].observe(round(latency_ms, 3))
        return ExecuteResult(output=output, n=int(arr.size),
                             path=meta["path"], flush_rows=meta["rows"],
                             latency_ms=latency_ms, trace_id=trace_id,
                             timing=timing, cache=meta["cache"],
                             valid=valid)

    # ------------------------------------------------------------------
    # window + workers
    # ------------------------------------------------------------------
    async def _window_loop(self) -> None:
        """Flush buckets whose deadline passed. Deadlines are monotone
        (a newer bucket can never be due before an older one), so the
        loop sleeps until the earliest deadline and only needs a
        wake-up when the window goes from empty to non-empty."""
        while True:
            self._wakeup.clear()
            deadline = self._coalescer.deadline()
            if deadline is None:
                await self._wakeup.wait()
                continue
            delay = deadline - self._clock()
            if delay > 0:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(self._wakeup.wait(), timeout=delay)
                continue
            for flush in self._coalescer.expired():
                self._flush_q.put_nowait(flush)

    def _execute_flush(self, svm: SVM, flush: Flush, flush_id: str):
        """Thread-pool body: one coalesced bucket through the batch
        runner's pre-grouped entry point on this worker's machine,
        inside a flush-scoped trace context (set in *this* thread, so
        contexts never leak between concurrent flushes)."""
        from ..batch import run_bucket  # local: batch depends on svm

        key = flush.key
        svm.mode = key.mode
        exec_start = self._clock()
        wait_ms = (exec_start
                   - min(r.enqueued_at for r in flush.requests)) * 1e3
        with trace_scope(TraceContext(flush_id)) as ctx:
            res = run_bucket(svm, protocol.PIPELINES[key.pipeline],
                             [r.data for r in flush.requests],
                             dtype=protocol.DTYPES[key.dtype])
        execute_ms = (self._clock() - exec_start) * 1e3
        path = res.buckets[0].path
        # pack pipelines: only the first ``lengths[i]`` lanes of a row
        # are defined, so the wire result is the valid prefix on every
        # path (ragged and loop alike — uniform response semantics)
        outputs = [out if k is None else out[:k]
                   for out, k in zip(res.outputs, res.lengths)]
        col = svm.machine.collector
        if col is not None:
            col.serve_flush_event(len(res.outputs), key.n, path, wait_ms)
        return (outputs, list(res.lengths), path, wait_ms, ctx, exec_start,
                execute_ms)

    async def _worker(self, svm: SVM, idx: int = 0) -> None:
        loop = asyncio.get_running_loop()
        tel = self.telemetry
        while True:
            flush = await self._flush_q.get()
            if flush is _STOP:
                self._flush_q.task_done()
                return
            flush_id = tel.new_flush_id() if tel.enabled else ""
            if tel.enabled:
                tel.flushed(flush_id,
                            traces=[r.trace_id for r in flush.requests],
                            reason=flush.reason, rows=flush.rows,
                            key=flush.key)
            try:
                (outputs, lengths, path, wait_ms, ctx, exec_start,
                 execute_ms) = await loop.run_in_executor(
                    self._pool, self._execute_flush, svm, flush, flush_id)
            except BaseException as exc:  # noqa: BLE001 - fan failure out
                err = exc if isinstance(exc, ServeError) else ServeError(
                    f"flush execution failed: {exc!r}")
                tel.errored(None, error=f"flush {flush_id}: {exc!r}")
                self._dump_on_error()
                for req in flush.requests:
                    if not req.future.done():
                        req.future.set_exception(err)
            else:
                m = self.metrics
                m.counter("serve.flushes").inc()
                m.counter("serve.rows").inc(flush.rows)
                m.counter(f"serve.flush.{path}").inc()
                m.histogram("serve.rows_per_flush").observe(flush.rows)
                m.summary("serve.flush_wait_ms").observe(round(wait_ms, 3))
                cache = ctx.cache_outcome()
                if tel.enabled:
                    tel.cache_outcome(flush_id, sources=ctx.cache)
                    m.counter("serve.flush.path", path=path,
                              pipeline=flush.key.pipeline).inc()
                    m.counter("serve.worker.flushes", worker=str(idx)).inc()
                    for source, count in sorted(ctx.cache.items()):
                        m.counter("serve.plan_cache.resolutions",
                                  source=source).inc(count)
                meta = {"path": path, "rows": flush.rows,
                        "flush_id": flush_id, "cache": cache,
                        "flush_at": flush.at, "exec_start": exec_start,
                        "execute_ms": execute_ms}
                for req, out, k in zip(flush.requests, outputs, lengths):
                    if not req.future.done():
                        req.future.set_result((out, meta, k))
            finally:
                self._flush_q.task_done()

    # ------------------------------------------------------------------
    # stats + telemetry documents
    # ------------------------------------------------------------------
    def _dump_on_error(self) -> None:
        """Write the flight recorder as NDJSON to the configured
        ``flight_dump`` path (best-effort; each error overwrites, so
        the file always holds the window around the *latest* one)."""
        path = self.config.flight_dump
        if not path or not self.telemetry.enabled:
            return
        with contextlib.suppress(OSError):
            with open(path, "w") as f:
                f.write(self.telemetry.recorder.dump_ndjson())

    def metrics_exposition(self) -> str:
        """Every metric the daemon holds, in Prometheus text format:
        the server registry, the per-worker collector registries
        (folded in via :meth:`MetricsRegistry.merge` — counters sum,
        summaries pool samples), plus point-in-time gauges (inflight,
        plan-cache tiers, per-category instruction counters)."""
        merged = MetricsRegistry()
        merged.merge(self.metrics)
        for i, svm in enumerate(self._worker_svms):
            col = getattr(svm.machine, "collector", None)
            if col is not None and len(col.metrics):
                merged.merge(col.metrics)
        merged.gauge("serve.inflight").set(self._inflight)
        merged.gauge("serve.uptime_seconds").set(
            round(self._clock() - self._started_at, 3))
        pc = self.plan_cache.stats_dict()
        for source, value in (("memory", pc["hits"]),
                              ("disk", pc["disk_hits"]),
                              ("compile", pc["compiles"])):
            merged.gauge("serve.plan_cache.lookups", source=source).set(value)
        for cat, count in self.counters_snapshot().items():
            merged.gauge("serve.instructions", category=cat).set(count)
        flight = self.telemetry.recorder
        merged.gauge("serve.flight.recorded").set(flight.recorded)
        merged.gauge("serve.flight.dropped").set(flight.dropped)
        return render_exposition(merged)

    def counters_snapshot(self) -> dict:
        """Per-category dynamic-instruction counters summed across the
        worker pool (counters are additive per request, so this equals
        the sequential-execution total — the identity gate checks it)."""
        total: dict[str, int] = {}
        for svm in self._worker_svms:
            for cat, n in svm.machine.counters.snapshot().by_category.items():
                total[cat.value] = total.get(cat.value, 0) + int(n)
        return dict(sorted(total.items()))

    def stats(self) -> dict:
        """The ``stats`` request / ``--stats-json`` document."""
        cfg = self.config
        m = self.metrics
        flushes = m.counter("serve.flushes").value
        rows = m.counter("serve.rows").value
        latency = m.summary("serve.latency_ms")
        counters = self.counters_snapshot()
        store = None
        if self._worker_svms:
            engine_store = self._worker_svms[0].engine.store
            if engine_store is not None:
                store = engine_store.stats_dict()
        plan_cache = self.plan_cache.stats_dict()
        # hit *source* tiers, not just aggregate hits: memory (LRU),
        # disk (persistent store satisfied the miss), compile
        plan_cache["sources"] = {
            "memory": plan_cache["hits"],
            "disk": plan_cache["disk_hits"],
            "compile": plan_cache["compiles"],
        }
        pipelines: dict = {}
        for labels, counter in m.samples("serve.pipeline.requests"):
            if not labels:
                continue
            doc = pipelines.setdefault(
                labels["pipeline"], {"requests": 0, "by_mode": {}})
            doc["requests"] += counter.value
            doc["by_mode"][labels["mode"]] = counter.value
        for labels, summ in m.samples("serve.pipeline.latency_ms"):
            if labels and labels["pipeline"] in pipelines:
                pipelines[labels["pipeline"]]["latency_ms"] = summ.as_dict()
        return {
            "config": {
                "flush_ms": cfg.flush_ms, "max_rows": cfg.max_rows,
                "queue_limit": cfg.queue_limit, "workers": cfg.workers,
                "vlen": cfg.vlen, "codegen": cfg.codegen, "mode": cfg.mode,
                "backend": cfg.backend,
            },
            "requests": {
                "total": m.counter("serve.requests").value,
                "ok": m.counter("serve.ok").value,
                "rejected": m.counter("serve.rejected").value,
                "errors": m.counter("serve.errors").value,
                "inflight": self._inflight,
            },
            "latency_ms": latency.as_dict() if latency.count else None,
            "coalescing": {
                "flushes": flushes,
                "rows": rows,
                "ratio": round(rows / flushes, 4) if flushes else 0.0,
                "paths": {
                    "2d": m.counter("serve.flush.2d").value,
                    "ragged": m.counter("serve.flush.ragged").value,
                    "loop": m.counter("serve.flush.loop").value,
                },
                "rows_per_flush":
                    m.histogram("serve.rows_per_flush").as_dict(),
                "flush_wait_ms": m.summary("serve.flush_wait_ms").as_dict()
                    if m.summary("serve.flush_wait_ms").count else None,
            },
            "counters": counters,
            "instructions": sum(counters.values()),
            "plan_cache": plan_cache,
            "plan_store": store,
            "pipelines": pipelines,
            "telemetry": self.telemetry.stats_dict(),
            "uptime_s": round(self._clock() - self._started_at, 3),
        }

    # ------------------------------------------------------------------
    # the socket protocol
    # ------------------------------------------------------------------
    async def _respond(self, writer: asyncio.StreamWriter,
                       wlock: asyncio.Lock, obj: dict) -> None:
        async with wlock:
            writer.write(protocol.encode(obj))
            with contextlib.suppress(ConnectionError):
                await writer.drain()

    async def _handle_frame(self, line: bytes, writer, wlock) -> None:
        req_id = None
        shutdown_after = False
        try:
            obj = protocol.decode(line)
            req_id = obj.get("id")
            op = obj.get("op")
            if op == "execute":
                pipeline, arr, dtype, mode = protocol.validate_execute(obj)
                res = await self.submit(pipeline, arr, dtype=dtype, mode=mode)
                resp = {"id": req_id, "ok": True,
                        "result": res.output.tolist(), "n": res.n,
                        "path": res.path, "flush_rows": res.flush_rows}
                if res.valid is not None:
                    resp["valid"] = res.valid
                if res.trace_id:
                    resp["trace"] = res.trace_id
                    resp["timing"] = res.timing
                    resp["cache"] = res.cache
            elif op == "ping":
                resp = {"id": req_id, "ok": True, "pong": True}
            elif op == "stats":
                resp = {"id": req_id, "ok": True, "stats": self.stats()}
            elif op == "metrics":
                resp = {"id": req_id, "ok": True,
                        "metrics": self.metrics_exposition()}
            elif op == "dump":
                resp = {"id": req_id, "ok": True,
                        "dump": self.telemetry.recorder.dump()}
            elif op == "ops":
                resp = {"id": req_id, "ok": True, "ops": support_matrix()}
            elif op == "shutdown":
                resp = {"id": req_id, "ok": True, "draining": True}
                shutdown_after = True
            else:
                raise ServeProtocolError(f"unknown op {op!r}")
        except Exception as exc:  # noqa: BLE001 - all failures go on the wire
            resp = protocol.error_response(req_id, exc)
        await self._respond(writer, wlock, resp)
        if shutdown_after:
            asyncio.get_running_loop().create_task(self.shutdown())

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        wlock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    await self._respond(writer, wlock, protocol.error_response(
                        None, ServeProtocolError("frame exceeds size limit")))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                t = asyncio.create_task(
                    self._handle_frame(line, writer, wlock))
                tasks.add(t)
                t.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()


# ---------------------------------------------------------------------------
# sync harness: a server on a background event loop
# ---------------------------------------------------------------------------

class ServerThread:
    """Run a :class:`Server` on a private event loop in a background
    thread — the harness for tests, benchmarks, and sync callers::

        with ServerThread(ServeConfig(max_rows=8)) as st:
            out = st.submit("chain_scan", [1, 2, 3, 4]).output

    ``submit_many`` launches a whole request list concurrently on the
    loop (this is what drives coalescing from sync code). Exceptions
    propagate to the caller; ``submit_many`` returns them in-place so
    a mixed workload can assert on rejects without losing the rest.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.server: Server | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._amain()),
            name="repro-serve-loop", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._error is not None:
            raise self._error
        return self

    async def _amain(self) -> None:
        self.loop = asyncio.get_running_loop()
        self.server = Server(self.config)
        try:
            await self.server.start()
        except BaseException as exc:  # startup failure -> caller
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        await self.server.wait_closed()

    def stop(self) -> None:
        if self.loop is None or self.server is None:
            return
        if self._thread is not None and self._thread.is_alive():
            # the loop may already be winding down (shutdown request,
            # max_requests) — joining the thread is then all that's left
            with contextlib.suppress(RuntimeError, asyncio.CancelledError):
                asyncio.run_coroutine_threadsafe(
                    self.server.shutdown(), self.loop).result(timeout=60)
            self._thread.join(timeout=60)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- sync request API ----------------------------------------------
    @property
    def address(self) -> tuple[str, int] | None:
        return self.server.address if self.server else None

    def submit(self, pipeline: str, data, *, dtype: str = "uint32",
               mode: str | None = None) -> ExecuteResult:
        fut = asyncio.run_coroutine_threadsafe(
            self.server.submit(pipeline, data, dtype=dtype, mode=mode),
            self.loop)
        return fut.result(timeout=300)

    def submit_many(self, requests: list[dict]) -> list:
        """Submit every request concurrently (one coroutine each, all
        scheduled before any completes — the coalescing driver).
        Returns results in request order; failed entries hold the
        exception instead of an :class:`ExecuteResult`."""
        async def _gather():
            return await asyncio.gather(
                *(self.server.submit(
                    r["pipeline"], r["data"],
                    dtype=r.get("dtype", "uint32"), mode=r.get("mode"))
                  for r in requests),
                return_exceptions=True)

        fut = asyncio.run_coroutine_threadsafe(_gather(), self.loop)
        return fut.result(timeout=600)

    def stats(self) -> dict:
        async def _stats():
            return self.server.stats()

        return asyncio.run_coroutine_threadsafe(
            _stats(), self.loop).result(timeout=60)

    def metrics_exposition(self) -> str:
        async def _metrics():
            return self.server.metrics_exposition()

        return asyncio.run_coroutine_threadsafe(
            _metrics(), self.loop).result(timeout=60)

    def flight_dump(self) -> dict:
        async def _dump():
            return self.server.telemetry.recorder.dump()

        return asyncio.run_coroutine_threadsafe(
            _dump(), self.loop).result(timeout=60)

"""The scan vector model for RVV — the paper's core contribution.

Public surface: the :class:`~repro.svm.context.SVM` context (primitive
dispatch with strict/fast execution), the operator set, and segment
descriptor utilities. The strict strip-mined kernels
(:mod:`elementwise`, :mod:`scan`, :mod:`segmented`, :mod:`enumerate_op`,
:mod:`permute_ops`, :mod:`split_op`) are importable directly for
instruction-level work; most callers should go through :class:`SVM`.
"""

from .context import SVM, SVMArray
from .derived import scan_backward, seg_copy, seg_scan_backward, seg_total
from .gather_scatter import gather_any, scatter_any
from .operators import AND, MAX, MIN, OPERATORS, OR, PLUS, XOR, BinaryOp, get_operator
from .segment_descriptor import (
    head_flags_to_head_pointers,
    head_flags_to_lengths,
    head_pointers_to_head_flags,
    lengths_to_head_flags,
    segment_count,
    segment_ids,
    validate_head_flags,
)

__all__ = [
    "SVM",
    "SVMArray",
    "seg_copy",
    "seg_total",
    "scan_backward",
    "seg_scan_backward",
    "gather_any",
    "scatter_any",
    "BinaryOp",
    "get_operator",
    "OPERATORS",
    "PLUS",
    "MAX",
    "MIN",
    "OR",
    "AND",
    "XOR",
    "lengths_to_head_flags",
    "head_flags_to_lengths",
    "head_pointers_to_head_flags",
    "head_flags_to_head_pointers",
    "segment_count",
    "segment_ids",
    "validate_head_flags",
]

"""The scan vector model context — the library's main public API.

:class:`SVM` binds a machine to the primitive set of Blelloch's scan
vector model as supported by the paper: elementwise instructions,
permutation instructions, scan instructions (unsegmented and
segmented), and the derived operations ``enumerate`` and ``split``.
Algorithms written against this interface never touch RVV details —
the paper's stated goal ("parallel algorithms can be developed upon
those primitives without knowing the details of RVV").

Example
-------
>>> import numpy as np
>>> from repro import SVM
>>> svm = SVM(vlen=256)
>>> a = svm.array([3, 1, 7, 0, 4, 1, 6, 3])
>>> svm.plus_scan(a)
>>> a.to_numpy().tolist()
[3, 4, 11, 11, 15, 16, 22, 25]
>>> svm.instructions > 0
True

Execution modes
---------------
``mode="strict"`` drives the simulated machine intrinsic-by-intrinsic;
``mode="fast"`` uses the NumPy fast path with identical closed-form
counts; ``mode="auto"`` (default) picks per call by array size. The two
modes are bit-identical in results *and* counters (cross-validated in
the integration tests), so the choice only affects host-Python speed.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, VectorLengthError
from ..rvv.codegen import CodegenModel
from ..rvv.machine import RVVMachine
from ..rvv.memory import Pointer
from ..rvv.types import LMUL
from . import elementwise as ew
from . import elementwise_ext as ewx
from . import enumerate_op as en
from . import fastpath as fp
from . import fastpath_ext as fpx
from . import permute_ops as pm
from . import scan as sc
from . import segmented as sg
from .operators import PLUS, BinaryOp

__all__ = ["SVM", "SVMArray"]

#: Below this element count the strict path is cheap enough that auto
#: mode prefers it (keeps tiny calls on the fully-simulated path).
AUTO_FAST_THRESHOLD = 2048


@dataclass
class SVMArray:
    """A typed array living in simulated machine memory.

    Produced by :meth:`SVM.array` / :meth:`SVM.zeros`; primitives
    accept and return these. ``view()`` exposes the live memory as a
    writable NumPy view; ``to_numpy()`` copies.
    """

    ptr: Pointer
    n: int

    @property
    def dtype(self) -> np.dtype:
        return self.ptr.dtype

    def view(self) -> np.ndarray:
        """Writable NumPy view of the underlying simulated memory."""
        return self.ptr.view(self.n)

    def to_numpy(self) -> np.ndarray:
        """A copy of the array contents."""
        return self.ptr.read(self.n)

    def __len__(self) -> int:
        return self.n


class SVM:
    """Scan-vector-model primitives over one RVV machine."""

    def __init__(
        self,
        machine: RVVMachine | None = None,
        *,
        vlen: int = 1024,
        codegen: str | CodegenModel = "ideal",
        mode: str = "auto",
        fast_threshold: int = AUTO_FAST_THRESHOLD,
        lmul: LMUL = LMUL.M1,
        malloc_model=None,
        profile: bool | str = False,
        backend: str | None = None,
        cache_dir: str | None = None,
    ) -> None:
        if machine is None:
            machine = RVVMachine(vlen=vlen, codegen=codegen, malloc_model=malloc_model)
        self.machine = machine
        if mode not in ("strict", "fast", "auto"):
            raise ConfigurationError(
                f"mode must be 'strict', 'fast' or 'auto', got {mode!r}"
            )
        self.mode = mode
        self.fast_threshold = int(fast_threshold)
        self.lmul = LMUL(lmul)
        #: Fast-path backend for the lazy engine: "codegen" (default)
        #: runs generated kernels, "interp" the LaneStep interpreter;
        #: None defers to REPRO_BACKEND / the engine default.
        self.backend = backend
        #: Persistent plan-store directory; None means the store is
        #: enabled only when REPRO_CACHE_DIR is set (see engine.cache).
        self.cache_dir = cache_dir
        self._engine = None  # lazily-created repro.engine.Engine
        if profile not in (False, True, "strips"):
            raise ConfigurationError(
                f"profile must be False, True or 'strips', got {profile!r}"
            )
        if profile:
            from ..obs import ProfileCollector  # local: obs is optional here

            machine.collector = ProfileCollector(
                machine, strips=(profile == "strips")
            )

    # ------------------------------------------------------------------
    # array management
    # ------------------------------------------------------------------
    def array(self, values, dtype=np.uint32) -> SVMArray:
        """Allocate an array in machine memory initialized from
        ``values`` (no instructions charged — test fixtures and
        workload setup are outside the measured kernels)."""
        values = np.asarray(values, dtype=dtype)
        if values.ndim != 1:
            raise VectorLengthError(f"SVM arrays are 1-D, got shape {values.shape}")
        ptr = self.machine.heap.alloc_array(max(values.size, 1), values.dtype)
        if values.size:
            ptr.write(values)
        return SVMArray(ptr, values.size)

    def zeros(self, n: int, dtype=np.uint32) -> SVMArray:
        """Allocate a zero-filled array (uncharged, like :meth:`array`)."""
        return self.array(np.zeros(int(n), dtype=dtype))

    def empty(self, n: int, dtype=np.uint32) -> SVMArray:
        """Allocate an uninitialized array (uncharged)."""
        n = int(n)
        ptr = self.machine.heap.alloc_array(max(n, 1), np.dtype(dtype))
        return SVMArray(ptr, n)

    def free(self, arr: SVMArray) -> None:
        """Release an array's memory (uncharged; the charged path is
        the machine's ``malloc``/``free`` used inside kernels)."""
        self.machine.heap.free(arr.ptr.addr)

    # ------------------------------------------------------------------
    # lazy execution engine (plan capture + strip fusion)
    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The lazy execution engine bound to this context (created on
        first use; owns the plan cache)."""
        if self._engine is None:
            from ..engine import Engine  # local import: engine depends on svm
            from ..engine.cache import PlanStore

            store = PlanStore(self.cache_dir) if self.cache_dir else None
            self._engine = Engine(self, backend=self.backend, store=store)
        return self._engine

    @contextmanager
    def lazy(self, *, fuse: bool = True):
        """Record SVM calls instead of executing them; run the captured
        plan — fused by default — when the block exits.

        >>> svm = SVM(vlen=256)
        >>> a = svm.array([1, 2, 3, 4])
        >>> with svm.lazy() as lz:
        ...     lz.p_add(a, 10)
        ...     lz.p_mul(a, 2)
        ...     lz.plus_scan(a)
        >>> a.to_numpy().tolist()
        [22, 46, 72, 100]

        The recorder (a :class:`~repro.engine.capture.PlanBuilder`)
        mirrors the SVM method surface; ops the fuser cannot merge
        replay verbatim. Results and counters never degrade versus
        eager execution: with ``fuse=False`` they are *identical*, with
        fusion the results are bit-identical and no per-category count
        increases. Data-dependent scalars (``pack``/``enumerate``
        counts, ``reduce``) come back as futures; read ``.value`` after
        the block. After exit ``lz.plan`` and ``lz.fused`` hold the
        captured and fused plans for inspection.
        """
        from ..engine.capture import PlanBuilder  # local import as above

        lz = PlanBuilder(self)
        yield lz
        plan = lz.build()
        lz.fused = self.engine.run(plan, fuse=fuse)

    def batch(self, pipe, inputs, *, dtype=np.uint32):
        """Run one pipeline over many inputs through a single cached
        plan per length bucket.

        >>> svm = SVM(vlen=256)
        >>> def pipe(lz, data):
        ...     lz.p_add(data, 10)
        ...     lz.plus_scan(data)
        ...     return data
        >>> res = svm.batch(pipe, [[1, 2], [3, 4, 5]])
        >>> [o.tolist() for o in res]
        [[11, 23], [13, 27, 42]]

        ``pipe(lz, data)`` must return its output array. Results and
        per-category counters are identical to looping single calls;
        see :func:`repro.batch.run_batch` and ``docs/batching.md``.
        """
        from ..batch import run_batch  # local import: batch depends on svm

        return run_batch(self, pipe, inputs, dtype=dtype)

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    @property
    def instructions(self) -> int:
        """Total dynamic instruction count so far (the paper's metric)."""
        return self.machine.counters.total

    @property
    def counters(self):
        return self.machine.counters

    @property
    def profiler(self):
        """The installed :class:`~repro.obs.spans.ProfileCollector`
        (None unless constructed with ``profile=...`` or one was
        installed via :func:`repro.obs.profile`)."""
        return self.machine.collector

    def reset(self) -> None:
        """Zero the instruction counters."""
        self.machine.reset_counters()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _fast(self, n: int) -> bool:
        if self.mode == "strict":
            return False
        if self.mode == "fast":
            return True
        return n >= self.fast_threshold

    def _lmul(self, lmul: LMUL | None) -> LMUL:
        return self.lmul if lmul is None else LMUL(lmul)

    @staticmethod
    def _check_equal_len(*arrays: SVMArray) -> int:
        n = arrays[0].n
        for a in arrays[1:]:
            if a.n != n:
                raise VectorLengthError(
                    f"operand lengths differ: {[a.n for a in arrays]}"
                )
        return n

    # ------------------------------------------------------------------
    # elementwise primitives (§4.1)
    # ------------------------------------------------------------------
    def _elementwise_vx(self, kernel: str, a: SVMArray, x: int, lmul) -> None:
        lmul = self._lmul(lmul)
        if self._fast(a.n):
            fp.fast_elementwise_vx(self.machine, kernel, a.n, a.ptr, x, lmul)
        else:
            getattr(ew, kernel)(self.machine, a.n, a.ptr, x, lmul)

    def _elementwise_vv(self, kernel: str, a: SVMArray, b: SVMArray, lmul) -> None:
        self._check_equal_len(a, b)
        lmul = self._lmul(lmul)
        if self._fast(a.n):
            fp.fast_elementwise_vv(self.machine, kernel, a.n, a.ptr, b.ptr, lmul)
        else:
            getattr(ew, f"{kernel}_vv")(self.machine, a.n, a.ptr, b.ptr, lmul)

    def p_add(self, a: SVMArray, x: int | SVMArray, lmul: LMUL | None = None) -> None:
        """p-add: ``a += x`` (scalar broadcast or elementwise vector)."""
        if isinstance(x, SVMArray):
            self._elementwise_vv("p_add", a, x, lmul)
        else:
            self._elementwise_vx("p_add", a, x, lmul)

    def p_sub(self, a: SVMArray, x: int | SVMArray, lmul: LMUL | None = None) -> None:
        """p-sub: ``a -= x``."""
        if isinstance(x, SVMArray):
            self._elementwise_vv("p_sub", a, x, lmul)
        else:
            self._elementwise_vx("p_sub", a, x, lmul)

    def p_mul(self, a: SVMArray, x: int | SVMArray, lmul: LMUL | None = None) -> None:
        """p-mul: ``a *= x`` (low product)."""
        if isinstance(x, SVMArray):
            self._elementwise_vv("p_mul", a, x, lmul)
        else:
            self._elementwise_vx("p_mul", a, x, lmul)

    def p_and(self, a: SVMArray, x: int | SVMArray, lmul: LMUL | None = None) -> None:
        """p-and: ``a &= x``."""
        if isinstance(x, SVMArray):
            self._elementwise_vv("p_and", a, x, lmul)
        else:
            self._elementwise_vx("p_and", a, x, lmul)

    def p_or(self, a: SVMArray, x: int | SVMArray, lmul: LMUL | None = None) -> None:
        """p-or: ``a |= x``."""
        if isinstance(x, SVMArray):
            self._elementwise_vv("p_or", a, x, lmul)
        else:
            self._elementwise_vx("p_or", a, x, lmul)

    def p_xor(self, a: SVMArray, x: int | SVMArray, lmul: LMUL | None = None) -> None:
        """p-xor: ``a ^= x``."""
        if isinstance(x, SVMArray):
            self._elementwise_vv("p_xor", a, x, lmul)
        else:
            self._elementwise_vx("p_xor", a, x, lmul)

    def p_max(self, a: SVMArray, x: int | SVMArray, lmul: LMUL | None = None) -> None:
        """p-max: ``a = max(a, x)`` (unsigned)."""
        if isinstance(x, SVMArray):
            self._elementwise_vv("p_max", a, x, lmul)
        else:
            self._elementwise_vx("p_max", a, x, lmul)

    def p_min(self, a: SVMArray, x: int | SVMArray, lmul: LMUL | None = None) -> None:
        """p-min: ``a = min(a, x)`` (unsigned)."""
        if isinstance(x, SVMArray):
            self._elementwise_vv("p_min", a, x, lmul)
        else:
            self._elementwise_vx("p_min", a, x, lmul)

    def p_srl(self, a: SVMArray, x: int, lmul: LMUL | None = None) -> None:
        """p-srl: ``a >>= x`` (logical; scalar shift only)."""
        self._elementwise_vx("p_srl", a, x, lmul)

    def p_sll(self, a: SVMArray, x: int, lmul: LMUL | None = None) -> None:
        """p-sll: ``a <<= x`` (scalar shift only)."""
        self._elementwise_vx("p_sll", a, x, lmul)

    def p_select(self, flags: SVMArray, a: SVMArray, b: SVMArray,
                 lmul: LMUL | None = None) -> None:
        """p-select: ``b[i] = a[i] where flags[i] else b[i]``."""
        n = self._check_equal_len(flags, a, b)
        lmul = self._lmul(lmul)
        if self._fast(n):
            fp.fast_p_select(self.machine, n, flags.ptr, a.ptr, b.ptr, lmul)
        else:
            ew.p_select(self.machine, n, flags.ptr, a.ptr, b.ptr, lmul)

    def get_flags(self, src: SVMArray, bit: int, out: SVMArray | None = None,
                  lmul: LMUL | None = None) -> SVMArray:
        """Extract bit ``bit`` of each element into a 0/1 flag vector."""
        flags = self.empty(src.n, src.dtype) if out is None else out
        self._check_equal_len(src, flags)
        lmul = self._lmul(lmul)
        if self._fast(src.n):
            fp.fast_get_flags(self.machine, src.n, src.ptr, flags.ptr, bit, lmul)
        else:
            ew.get_flags(self.machine, src.n, src.ptr, flags.ptr, bit, lmul)
        return flags

    # ------------------------------------------------------------------
    # scan primitives (§4.3, §5)
    # ------------------------------------------------------------------
    def scan(self, a: SVMArray, op: str | BinaryOp = PLUS, *,
             inclusive: bool = True, lmul: LMUL | None = None) -> None:
        """⊕-scan of ``a`` in place (inclusive by default)."""
        lmul = self._lmul(lmul)
        if self._fast(a.n):
            fn = fp.fast_scan if inclusive else fp.fast_scan_exclusive
        else:
            fn = sc.scan if inclusive else sc.scan_exclusive
        fn(self.machine, a.n, a.ptr, op, lmul)

    def plus_scan(self, a: SVMArray, lmul: LMUL | None = None) -> None:
        """The paper's plus-scan (Listing 6): inclusive prefix sums."""
        self.scan(a, PLUS, inclusive=True, lmul=lmul)

    def scan_exclusive(self, a: SVMArray, op: str | BinaryOp = PLUS,
                       lmul: LMUL | None = None) -> None:
        """Exclusive ⊕-scan (Blelloch's original definition)."""
        self.scan(a, op, inclusive=False, lmul=lmul)

    def seg_scan(self, a: SVMArray, head_flags: SVMArray,
                 op: str | BinaryOp = PLUS, *, inclusive: bool = True,
                 lmul: LMUL | None = None) -> None:
        """Segmented ⊕-scan of ``a`` under ``head_flags``, in place."""
        n = self._check_equal_len(a, head_flags)
        lmul = self._lmul(lmul)
        if self._fast(n):
            fn = fp.fast_seg_scan if inclusive else fp.fast_seg_scan_exclusive
        else:
            fn = sg.seg_scan if inclusive else sg.seg_scan_exclusive
        fn(self.machine, n, a.ptr, head_flags.ptr, op, lmul)

    def seg_plus_scan(self, a: SVMArray, head_flags: SVMArray,
                      lmul: LMUL | None = None) -> None:
        """The paper's segmented plus-scan (Listing 10)."""
        self.seg_scan(a, head_flags, PLUS, inclusive=True, lmul=lmul)

    # ------------------------------------------------------------------
    # permutation primitives (§4.2) and derived ops (§4.4)
    # ------------------------------------------------------------------
    def permute(self, src: SVMArray, index: SVMArray, out: SVMArray | None = None,
                lmul: LMUL | None = None) -> SVMArray:
        """Out-of-place permute: ``out[index[i]] = src[i]`` (Listing 5)."""
        dst = self.empty(src.n, src.dtype) if out is None else out
        n = self._check_equal_len(src, index, dst)
        lmul = self._lmul(lmul)
        if self._fast(n):
            fp.fast_permute(self.machine, n, src.ptr, dst.ptr, index.ptr, lmul)
        else:
            pm.permute(self.machine, n, src.ptr, dst.ptr, index.ptr, lmul)
        return dst

    def back_permute(self, src: SVMArray, index: SVMArray,
                     out: SVMArray | None = None, lmul: LMUL | None = None) -> SVMArray:
        """Gather: ``out[i] = src[index[i]]``."""
        dst = self.empty(src.n, src.dtype) if out is None else out
        n = self._check_equal_len(src, index, dst)
        lmul = self._lmul(lmul)
        if self._fast(n):
            fp.fast_back_permute(self.machine, n, src.ptr, dst.ptr, index.ptr, lmul)
        else:
            pm.back_permute(self.machine, n, src.ptr, dst.ptr, index.ptr, lmul)
        return dst

    def pack(self, src: SVMArray, flags: SVMArray, out: SVMArray | None = None,
             lmul: LMUL | None = None) -> tuple[SVMArray, int]:
        """Stream compaction: keep flagged elements, preserving order.
        Returns (destination array, number kept)."""
        dst = self.empty(src.n, src.dtype) if out is None else out
        n = self._check_equal_len(src, flags, dst)
        lmul = self._lmul(lmul)
        if self._fast(n):
            kept = fp.fast_pack(self.machine, n, src.ptr, dst.ptr, flags.ptr, lmul)
        else:
            kept = pm.pack(self.machine, n, src.ptr, dst.ptr, flags.ptr, lmul)
        return dst, kept

    def enumerate(self, flags: SVMArray, set_bit: bool = True,
                  out: SVMArray | None = None, lmul: LMUL | None = None
                  ) -> tuple[SVMArray, int]:
        """Enumerate (Listing 8): rank each position among those whose
        flag equals ``set_bit``. Returns (ranks array, total count)."""
        dst = self.empty(flags.n, np.uint32) if out is None else out
        n = self._check_equal_len(flags, dst)
        lmul = self._lmul(lmul)
        if self._fast(n):
            count = fp.fast_enumerate(self.machine, n, flags.ptr, dst.ptr, set_bit, lmul)
        else:
            count = en.enumerate_op(self.machine, n, flags.ptr, dst.ptr, set_bit, lmul)
        return dst, count

    # ------------------------------------------------------------------
    # extended primitives (Blelloch's full elementwise class)
    # ------------------------------------------------------------------
    def _cmp(self, which: str, a: SVMArray, b, out: SVMArray | None, lmul) -> SVMArray:
        dst = self.empty(a.n, np.uint32) if out is None else out
        lmul = self._lmul(lmul)
        if isinstance(b, SVMArray):
            self._check_equal_len(a, b, dst)
            if self._fast(a.n):
                fpx.fast_cmp_vv(self.machine, which, a.n, a.ptr, b.ptr, dst.ptr, lmul)
            else:
                getattr(ewx, f"p_{which}")(self.machine, a.n, a.ptr, b.ptr, dst.ptr, lmul)
        else:
            self._check_equal_len(a, dst)
            if self._fast(a.n):
                fpx.fast_cmp_vx(self.machine, which, a.n, a.ptr, b, dst.ptr, lmul)
            else:
                getattr(ewx, f"p_{which}_vx")(self.machine, a.n, a.ptr, b, dst.ptr, lmul)
        return dst

    def p_lt(self, a: SVMArray, b, out: SVMArray | None = None,
             lmul: LMUL | None = None) -> SVMArray:
        """Flag compare: ``out[i] = (a[i] < b[i or scalar])`` (unsigned)."""
        return self._cmp("lt", a, b, out, lmul)

    def p_le(self, a: SVMArray, b, out: SVMArray | None = None,
             lmul: LMUL | None = None) -> SVMArray:
        """Flag compare: ``a <= b``."""
        return self._cmp("le", a, b, out, lmul)

    def p_gt(self, a: SVMArray, b, out: SVMArray | None = None,
             lmul: LMUL | None = None) -> SVMArray:
        """Flag compare: ``a > b``."""
        return self._cmp("gt", a, b, out, lmul)

    def p_ge(self, a: SVMArray, b, out: SVMArray | None = None,
             lmul: LMUL | None = None) -> SVMArray:
        """Flag compare: ``a >= b``."""
        return self._cmp("ge", a, b, out, lmul)

    def p_eq(self, a: SVMArray, b, out: SVMArray | None = None,
             lmul: LMUL | None = None) -> SVMArray:
        """Flag compare: ``a == b``."""
        return self._cmp("eq", a, b, out, lmul)

    def p_ne(self, a: SVMArray, b, out: SVMArray | None = None,
             lmul: LMUL | None = None) -> SVMArray:
        """Flag compare: ``a != b``."""
        return self._cmp("ne", a, b, out, lmul)

    def index_array(self, n: int, out: SVMArray | None = None,
                    lmul: LMUL | None = None) -> SVMArray:
        """Blelloch's index primitive: the vector ``[0, 1, ..., n-1]``."""
        dst = self.empty(int(n), np.uint32) if out is None else out
        lmul = self._lmul(lmul)
        if self._fast(dst.n):
            fpx.fast_index(self.machine, dst.n, dst.ptr, lmul)
        else:
            ewx.p_index(self.machine, dst.n, dst.ptr, lmul)
        return dst

    def p_rsub(self, a: SVMArray, x: int, lmul: LMUL | None = None) -> None:
        """Reverse subtract in place: ``a[i] = x - a[i]``."""
        lmul = self._lmul(lmul)
        if self._fast(a.n):
            fpx.fast_rsub(self.machine, a.n, a.ptr, x, lmul)
        else:
            ewx.p_rsub(self.machine, a.n, a.ptr, x, lmul)

    def reduce(self, a: SVMArray, op: str | BinaryOp = PLUS,
               lmul: LMUL | None = None) -> int:
        """Full ⊕-reduction of ``a`` to a scalar."""
        lmul = self._lmul(lmul)
        if self._fast(a.n):
            return fpx.fast_reduce(self.machine, a.n, a.ptr, op, lmul)
        return ewx.reduce(self.machine, a.n, a.ptr, op, lmul)

    def shift1up(self, src: SVMArray, fill: int, out: SVMArray | None = None,
                 lmul: LMUL | None = None) -> SVMArray:
        """Whole-array shift by one lane: ``out[0] = fill``,
        ``out[i] = src[i-1]`` (in place when ``out is src``)."""
        dst = self.empty(src.n, src.dtype) if out is None else out
        n = self._check_equal_len(src, dst)
        lmul = self._lmul(lmul)
        if self._fast(n):
            fpx.fast_shift1up(self.machine, n, src.ptr, dst.ptr, fill, lmul)
        else:
            ewx.shift1up(self.machine, n, src.ptr, dst.ptr, fill, lmul)
        return dst

    def copy(self, src: SVMArray, out: SVMArray | None = None,
             lmul: LMUL | None = None) -> SVMArray:
        """Vector memcpy: a strip-mined vle/vse loop (charged like a
        two-array elementwise pass without the compute op)."""
        from ..rvv.counters import Cat
        from ..rvv.intrinsics import loadstore
        from ..rvv.types import sew_for_dtype
        from .fastpath import strip_shape

        dst = self.empty(src.n, src.dtype) if out is None else out
        n = self._check_equal_len(src, dst)
        lmul = self._lmul(lmul)
        m = self.machine
        sew = sew_for_dtype(src.dtype)
        m.prologue("p_add")
        if self._fast(n):
            if n:
                dst.view()[:] = src.view()
            vlmax = m.vlmax(sew, lmul)
            full, rem = strip_shape(n, vlmax)
            n_strips = full + (1 if rem else 0)
            m.count(Cat.VCONFIG, n_strips)
            m.count(Cat.VMEM, n_strips * 2)
            m.count(Cat.SCALAR, n_strips * m.codegen.strip_overhead("p_add", 2))
        else:
            remaining, s, d = n, src.ptr, dst.ptr
            while remaining > 0:
                vl = m.vsetvl(remaining, sew, lmul)
                v = loadstore.vle(m, s, vl)
                loadstore.vse(m, d, v, vl)
                s += vl
                d += vl
                remaining -= vl
                m.strip_overhead("p_add", n_arrays=2)
        return dst

    def reverse(self, src: SVMArray, out: SVMArray | None = None,
                lmul: LMUL | None = None) -> SVMArray:
        """Reverse ``src`` — a derived permutation: build the reversal
        index vector with ``p_index`` + ``p_rsub`` and gather through
        ``back_permute`` (no dedicated hardware reverse exists in RVV)."""
        idx = self.index_array(src.n, lmul=lmul)
        self.p_rsub(idx, src.n - 1, lmul=lmul)
        result = self.back_permute(src, idx, out=out, lmul=lmul)
        self.free(idx)
        return result

    def split(self, src: SVMArray, flags: SVMArray, out: SVMArray | None = None,
              lmul: LMUL | None = None) -> tuple[SVMArray, int]:
        """Split (Listing 7): stable partition of ``src`` by ``flags``
        (0-flag elements first). Returns (destination, #zeros)."""
        from .split_op import split as _split  # local import: split composes SVM methods

        dst = self.empty(src.n, src.dtype) if out is None else out
        self._check_equal_len(src, flags, dst)
        count = _split(self, src, dst, flags, lmul=self._lmul(lmul))
        return dst, count


# ----------------------------------------------------------------------
# profiling instrumentation
# ----------------------------------------------------------------------
# Each primitive is wrapped so that, when a collector is installed on
# the machine, the call opens a span named after the primitive with
# {n, path} metadata. With no collector the wrapper is a single
# attribute check on top of the original method. Convenience aliases
# that delegate to an instrumented method (plus_scan/scan_exclusive →
# scan, seg_plus_scan → seg_scan, split → split_op.split, reverse →
# index/rsub/back_permute) are left unwrapped so each call produces
# exactly one primitive span.
from ..obs.spans import instrument_method as _instrument  # noqa: E402

_PROFILED = (
    "p_add", "p_sub", "p_mul", "p_and", "p_or", "p_xor", "p_max",
    "p_min", "p_srl", "p_sll", "p_select", "get_flags",
    "p_lt", "p_le", "p_gt", "p_ge", "p_eq", "p_ne",
    "scan", "seg_scan",
    "permute", "back_permute", "pack", "enumerate",
    "index_array", "p_rsub", "reduce", "shift1up", "copy",
)
for _name in _PROFILED:
    setattr(SVM, _name, _instrument(getattr(SVM, _name)))
del _name

"""The scan vector model context — the library's main public API.

:class:`SVM` binds a machine to the primitive set of Blelloch's scan
vector model as supported by the paper: elementwise instructions,
permutation instructions, scan instructions (unsegmented and
segmented), and the derived operations ``enumerate`` and ``split``.
Algorithms written against this interface never touch RVV details —
the paper's stated goal ("parallel algorithms can be developed upon
those primitives without knowing the details of RVV").

Every primitive method is a thin dispatch through the unified
:mod:`repro.svm.opspec` registry: the :class:`~repro.svm.opspec.OpSpec`
declared once per primitive names both the strict per-strip kernel and
the closed-form NumPy fast path, and :meth:`SVM._fast` picks between
them per call. This module therefore imports **no kernel modules** —
``tools/check_opspec.py`` enforces that in CI.

Example
-------
>>> import numpy as np
>>> from repro import SVM
>>> svm = SVM(vlen=256)
>>> a = svm.array([3, 1, 7, 0, 4, 1, 6, 3])
>>> svm.plus_scan(a)
>>> a.to_numpy().tolist()
[3, 4, 11, 11, 15, 16, 22, 25]
>>> svm.instructions > 0
True

Execution modes
---------------
``mode="strict"`` drives the simulated machine intrinsic-by-intrinsic;
``mode="fast"`` uses the NumPy fast path with identical closed-form
counts; ``mode="auto"`` (default) picks per call by array size. The two
modes are bit-identical in results *and* counters (cross-validated in
the integration tests), so the choice only affects host-Python speed.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..config import ExecConfig
from ..errors import ConfigurationError, VectorLengthError
from ..rvv.codegen import CodegenModel
from ..rvv.machine import RVVMachine
from ..rvv.memory import Pointer
from ..rvv.types import LMUL
from . import opspec
from .operators import PLUS, BinaryOp

__all__ = ["SVM", "SVMArray"]

#: Below this element count the strict path is cheap enough that auto
#: mode prefers it (keeps tiny calls on the fully-simulated path).
AUTO_FAST_THRESHOLD = 2048


@dataclass
class SVMArray:
    """A typed array living in simulated machine memory.

    Produced by :meth:`SVM.array` / :meth:`SVM.zeros`; primitives
    accept and return these. ``view()`` exposes the live memory as a
    writable NumPy view; ``to_numpy()`` copies.
    """

    ptr: Pointer
    n: int

    @property
    def dtype(self) -> np.dtype:
        return self.ptr.dtype

    def view(self) -> np.ndarray:
        """Writable NumPy view of the underlying simulated memory."""
        return self.ptr.view(self.n)

    def to_numpy(self) -> np.ndarray:
        """A copy of the array contents."""
        return self.ptr.read(self.n)

    def __len__(self) -> int:
        return self.n


class SVM:
    """Scan-vector-model primitives over one RVV machine."""

    def __init__(
        self,
        machine: RVVMachine | None = None,
        *,
        vlen: int | None = None,
        codegen: str | CodegenModel = "ideal",
        mode: str = "auto",
        fast_threshold: int = AUTO_FAST_THRESHOLD,
        lmul: LMUL | None = None,
        malloc_model=None,
        profile: bool | str = False,
        backend: str | None = None,
        cache_dir: str | None = None,
        plan_cache=None,
        config: ExecConfig | None = None,
        digit_bits: int | None = None,
        tune=None,
    ) -> None:
        # One layered resolution for every execution axis: built-in
        # defaults <- REPRO_* environment <- an explicit base `config`
        # <- the individual keyword arguments (None means "not given").
        base = config if config is not None else ExecConfig.from_env()
        cfg = base.override(vlen=vlen, lmul=lmul, backend=backend,
                            cache_dir=cache_dir, digit_bits=digit_bits)
        if machine is None:
            machine = RVVMachine(vlen=cfg.vlen, codegen=codegen,
                                 malloc_model=malloc_model)
        elif machine.vlen != cfg.vlen:
            # an explicit machine is authoritative for VLEN
            cfg = cfg.override(vlen=machine.vlen)
        self.machine = machine
        if mode not in ("strict", "fast", "auto"):
            raise ConfigurationError(
                f"mode must be 'strict', 'fast' or 'auto', got {mode!r}"
            )
        self.mode = mode
        self.fast_threshold = int(fast_threshold)
        #: The resolved :class:`~repro.config.ExecConfig` of this
        #: context. ``lmul``/``backend``/``cache_dir`` below are plain
        #: attribute views of it, kept for the established surface.
        self.config = cfg
        self.lmul = cfg.lmul
        #: Fast-path backend for the lazy engine: "codegen" (default)
        #: runs generated kernels, "interp" the LaneStep interpreter,
        #: "native" compiled whole-plan C kernels with counters kept
        #: identical, "native-speed" the same kernels with counters
        #: compiled out; None defers to REPRO_BACKEND / the engine
        #: default. Native tiers fall back to codegen when the plan is
        #: ineligible or no C toolchain is present.
        self.backend = cfg.backend
        #: Persistent plan-store directory; None means the store is
        #: enabled only when REPRO_CACHE_DIR is set (see engine.cache).
        self.cache_dir = cfg.cache_dir
        #: Optional externally-owned :class:`~repro.engine.cache.PlanCache`
        #: shared with other contexts (the serving daemon's worker pool
        #: hands every worker the same warm cache); None gives the
        #: engine a private cache.
        self.plan_cache = plan_cache
        #: Shape-aware dispatch tuning: None (off), "auto" (consult the
        #: persistent TuningDB under ``cache_dir`` /
        #: ``default_cache_dir()``), or an explicit
        #: :class:`~repro.tune.TunePolicy`. The policy is consulted
        #: once per (plan fingerprint, n-bucket) at plan-dispatch time
        #: (see :meth:`repro.engine.Engine.fused_for`) and only ever
        #: *selects* a config — execution stays bit- and
        #: counter-identical to an SVM pinned to that config.
        self.tune = tune
        if tune is not None and not (tune == "auto" or hasattr(tune, "apply")):
            raise ConfigurationError(
                f"tune must be None, 'auto' or a TunePolicy, got {tune!r}"
            )
        self._tune_policy = None  # lazily-resolved TunePolicy
        self._engine = None  # lazily-created repro.engine.Engine
        if profile not in (False, True, "strips"):
            raise ConfigurationError(
                f"profile must be False, True or 'strips', got {profile!r}"
            )
        if profile:
            from ..obs import ProfileCollector  # local: obs is optional here

            machine.collector = ProfileCollector(
                machine, strips=(profile == "strips")
            )

    # ------------------------------------------------------------------
    # array management
    # ------------------------------------------------------------------
    def array(self, values, dtype=np.uint32) -> SVMArray:
        """Allocate an array in machine memory initialized from
        ``values`` (no instructions charged — test fixtures and
        workload setup are outside the measured kernels)."""
        values = np.asarray(values, dtype=dtype)
        if values.ndim != 1:
            raise VectorLengthError(f"SVM arrays are 1-D, got shape {values.shape}")
        ptr = self.machine.heap.alloc_array(max(values.size, 1), values.dtype)
        if values.size:
            ptr.write(values)
        return SVMArray(ptr, values.size)

    def zeros(self, n: int, dtype=np.uint32) -> SVMArray:
        """Allocate a zero-filled array (uncharged, like :meth:`array`)."""
        return self.array(np.zeros(int(n), dtype=dtype))

    def empty(self, n: int, dtype=np.uint32) -> SVMArray:
        """Allocate an uninitialized array (uncharged)."""
        n = int(n)
        ptr = self.machine.heap.alloc_array(max(n, 1), np.dtype(dtype))
        return SVMArray(ptr, n)

    def free(self, arr: SVMArray) -> None:
        """Release an array's memory (uncharged; the charged path is
        the machine's ``malloc``/``free`` used inside kernels)."""
        self.machine.heap.free(arr.ptr.addr)

    # ------------------------------------------------------------------
    # lazy execution engine (plan capture + strip fusion)
    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The lazy execution engine bound to this context (created on
        first use; owns the plan cache)."""
        if self._engine is None:
            from ..engine import Engine  # local import: engine depends on svm
            from ..engine.cache import PlanStore

            store = PlanStore(self.cache_dir) if self.cache_dir else None
            self._engine = Engine(self, self.plan_cache,
                                  backend=self.backend, store=store)
        return self._engine

    def _tuner(self):
        """The resolved :class:`~repro.tune.TunePolicy` of this context,
        or None when tuning is off (resolved lazily on first dispatch;
        ``tune="auto"`` loads the TuningDB under ``cache_dir`` falling
        back to :func:`repro.config.default_cache_dir`)."""
        if self.tune is None:
            return None
        if self._tune_policy is None:
            from ..config import default_cache_dir  # local: avoid eager dep
            from ..tune.policy import TunePolicy  # local: tune depends on engine

            if self.tune == "auto":
                root = self.cache_dir or default_cache_dir()
                self._tune_policy = TunePolicy.load(root)
            else:
                self._tune_policy = self.tune
        return self._tune_policy

    @contextmanager
    def lazy(self, *, fuse: bool = True):
        """Record SVM calls instead of executing them; run the captured
        plan — fused by default — when the block exits.

        >>> svm = SVM(vlen=256)
        >>> a = svm.array([1, 2, 3, 4])
        >>> with svm.lazy() as lz:
        ...     lz.p_add(a, 10)
        ...     lz.p_mul(a, 2)
        ...     lz.plus_scan(a)
        >>> a.to_numpy().tolist()
        [22, 46, 72, 100]

        The recorder (a :class:`~repro.engine.capture.PlanBuilder`)
        mirrors the SVM method surface; ops the fuser cannot merge
        replay verbatim. Results and counters never degrade versus
        eager execution: with ``fuse=False`` they are *identical*, with
        fusion the results are bit-identical and no per-category count
        increases. Data-dependent scalars (``pack``/``enumerate``
        counts, ``reduce``) come back as futures; read ``.value`` after
        the block. After exit ``lz.plan`` and ``lz.fused`` hold the
        captured and fused plans for inspection.
        """
        from ..engine.capture import PlanBuilder  # local import as above

        lz = PlanBuilder(self)
        yield lz
        plan = lz.build()
        lz.fused = self.engine.run(plan, fuse=fuse)

    def batch(self, pipe, inputs, *, dtype=np.uint32):
        """Run one pipeline over many inputs through a single cached
        plan per length bucket.

        >>> svm = SVM(vlen=256)
        >>> def pipe(lz, data):
        ...     lz.p_add(data, 10)
        ...     lz.plus_scan(data)
        ...     return data
        >>> res = svm.batch(pipe, [[1, 2], [3, 4, 5]])
        >>> [o.tolist() for o in res]
        [[11, 23], [13, 27, 42]]

        ``pipe(lz, data)`` must return its output array. Results and
        per-category counters are identical to looping single calls;
        see :func:`repro.batch.run_batch` and ``docs/batching.md``.
        """
        from ..batch import run_batch  # local import: batch depends on svm

        return run_batch(self, pipe, inputs, dtype=dtype)

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    @property
    def instructions(self) -> int:
        """Total dynamic instruction count so far (the paper's metric)."""
        return self.machine.counters.total

    @property
    def counters(self):
        return self.machine.counters

    @property
    def profiler(self):
        """The installed :class:`~repro.obs.spans.ProfileCollector`
        (None unless constructed with ``profile=...`` or one was
        installed via :func:`repro.obs.profile`)."""
        return self.machine.collector

    def reset(self) -> None:
        """Zero the instruction counters."""
        self.machine.reset_counters()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _fast(self, n: int) -> bool:
        if self.mode == "strict":
            return False
        if self.mode == "fast":
            return True
        return n >= self.fast_threshold

    def _lmul(self, lmul: LMUL | None) -> LMUL:
        return self.lmul if lmul is None else LMUL(lmul)

    def _impl(self, name: str, variant: str, n: int):
        """The registry kernel for ``name``'s ``variant`` on the tier
        :meth:`_fast` selects for a length-``n`` call."""
        spec = opspec.OPSPECS[name]
        return (spec.fast if self._fast(n) else spec.strict)[variant]

    @staticmethod
    def _check_equal_len(*arrays: SVMArray) -> int:
        n = arrays[0].n
        for a in arrays[1:]:
            if a.n != n:
                raise VectorLengthError(
                    f"operand lengths differ: {[a.n for a in arrays]}"
                )
        return n

    # ------------------------------------------------------------------
    # elementwise primitives (§4.1) — p_add ... p_sll, p_rsub and the
    # flag compares are generated from the registry below the class
    # body: one OpSpec drives both the method and its capture node.
    # ------------------------------------------------------------------
    def p_select(self, flags: SVMArray, a: SVMArray, b: SVMArray,
                 lmul: LMUL | None = None) -> None:
        """p-select: ``b[i] = a[i] where flags[i] else b[i]``."""
        n = self._check_equal_len(flags, a, b)
        self._impl("p_select", "", n)(
            self.machine, n, flags.ptr, a.ptr, b.ptr, self._lmul(lmul))

    def get_flags(self, src: SVMArray, bit: int, out: SVMArray | None = None,
                  lmul: LMUL | None = None) -> SVMArray:
        """Extract bit ``bit`` of each element into a 0/1 flag vector."""
        flags = self.empty(src.n, src.dtype) if out is None else out
        self._check_equal_len(src, flags)
        self._impl("get_flags", "", src.n)(
            self.machine, src.n, src.ptr, flags.ptr, bit, self._lmul(lmul))
        return flags

    # ------------------------------------------------------------------
    # scan primitives (§4.3, §5)
    # ------------------------------------------------------------------
    def scan(self, a: SVMArray, op: str | BinaryOp = PLUS, *,
             inclusive: bool = True, lmul: LMUL | None = None) -> None:
        """⊕-scan of ``a`` in place (inclusive by default)."""
        fn = self._impl("scan", "incl" if inclusive else "excl", a.n)
        fn(self.machine, a.n, a.ptr, op, self._lmul(lmul))

    def plus_scan(self, a: SVMArray, lmul: LMUL | None = None) -> None:
        """The paper's plus-scan (Listing 6): inclusive prefix sums."""
        self.scan(a, PLUS, inclusive=True, lmul=lmul)

    def scan_exclusive(self, a: SVMArray, op: str | BinaryOp = PLUS,
                       lmul: LMUL | None = None) -> None:
        """Exclusive ⊕-scan (Blelloch's original definition)."""
        self.scan(a, op, inclusive=False, lmul=lmul)

    def seg_scan(self, a: SVMArray, head_flags: SVMArray,
                 op: str | BinaryOp = PLUS, *, inclusive: bool = True,
                 lmul: LMUL | None = None) -> None:
        """Segmented ⊕-scan of ``a`` under ``head_flags``, in place."""
        n = self._check_equal_len(a, head_flags)
        fn = self._impl("seg_scan", "incl" if inclusive else "excl", n)
        fn(self.machine, n, a.ptr, head_flags.ptr, op, self._lmul(lmul))

    def seg_plus_scan(self, a: SVMArray, head_flags: SVMArray,
                      lmul: LMUL | None = None) -> None:
        """The paper's segmented plus-scan (Listing 10)."""
        self.seg_scan(a, head_flags, PLUS, inclusive=True, lmul=lmul)

    # ------------------------------------------------------------------
    # permutation primitives (§4.2) and derived ops (§4.4)
    # ------------------------------------------------------------------
    def permute(self, src: SVMArray, index: SVMArray, out: SVMArray | None = None,
                lmul: LMUL | None = None) -> SVMArray:
        """Out-of-place permute: ``out[index[i]] = src[i]`` (Listing 5)."""
        dst = self.empty(src.n, src.dtype) if out is None else out
        n = self._check_equal_len(src, index, dst)
        self._impl("permute", "", n)(
            self.machine, n, src.ptr, dst.ptr, index.ptr, self._lmul(lmul))
        return dst

    def back_permute(self, src: SVMArray, index: SVMArray,
                     out: SVMArray | None = None, lmul: LMUL | None = None) -> SVMArray:
        """Gather: ``out[i] = src[index[i]]``."""
        dst = self.empty(src.n, src.dtype) if out is None else out
        n = self._check_equal_len(src, index, dst)
        self._impl("back_permute", "", n)(
            self.machine, n, src.ptr, dst.ptr, index.ptr, self._lmul(lmul))
        return dst

    def pack(self, src: SVMArray, flags: SVMArray, out: SVMArray | None = None,
             lmul: LMUL | None = None) -> tuple[SVMArray, int]:
        """Stream compaction: keep flagged elements, preserving order.
        Returns (destination array, number kept)."""
        dst = self.empty(src.n, src.dtype) if out is None else out
        n = self._check_equal_len(src, flags, dst)
        kept = self._impl("pack", "", n)(
            self.machine, n, src.ptr, dst.ptr, flags.ptr, self._lmul(lmul))
        return dst, kept

    def enumerate(self, flags: SVMArray, set_bit: bool = True,
                  out: SVMArray | None = None, lmul: LMUL | None = None
                  ) -> tuple[SVMArray, int]:
        """Enumerate (Listing 8): rank each position among those whose
        flag equals ``set_bit``. Returns (ranks array, total count)."""
        dst = self.empty(flags.n, np.uint32) if out is None else out
        n = self._check_equal_len(flags, dst)
        count = self._impl("enumerate", "", n)(
            self.machine, n, flags.ptr, dst.ptr, set_bit, self._lmul(lmul))
        return dst, count

    # ------------------------------------------------------------------
    # extended primitives (Blelloch's full elementwise class)
    # ------------------------------------------------------------------
    def index_array(self, n: int, out: SVMArray | None = None,
                    lmul: LMUL | None = None) -> SVMArray:
        """Blelloch's index primitive: the vector ``[0, 1, ..., n-1]``."""
        dst = self.empty(int(n), np.uint32) if out is None else out
        self._impl("index_array", "", dst.n)(
            self.machine, dst.n, dst.ptr, self._lmul(lmul))
        return dst

    def reduce(self, a: SVMArray, op: str | BinaryOp = PLUS,
               lmul: LMUL | None = None) -> int:
        """Full ⊕-reduction of ``a`` to a scalar."""
        return self._impl("reduce", "", a.n)(
            self.machine, a.n, a.ptr, op, self._lmul(lmul))

    def shift1up(self, src: SVMArray, fill: int, out: SVMArray | None = None,
                 lmul: LMUL | None = None) -> SVMArray:
        """Whole-array shift by one lane: ``out[0] = fill``,
        ``out[i] = src[i-1]`` (in place when ``out is src``)."""
        dst = self.empty(src.n, src.dtype) if out is None else out
        n = self._check_equal_len(src, dst)
        self._impl("shift1up", "", n)(
            self.machine, n, src.ptr, dst.ptr, fill, self._lmul(lmul))
        return dst

    def copy(self, src: SVMArray, out: SVMArray | None = None,
             lmul: LMUL | None = None) -> SVMArray:
        """Vector memcpy: a strip-mined vle/vse loop (charged like a
        two-array elementwise pass without the compute op)."""
        dst = self.empty(src.n, src.dtype) if out is None else out
        n = self._check_equal_len(src, dst)
        self._impl("copy", "", n)(
            self.machine, n, src.ptr, dst.ptr, self._lmul(lmul))
        return dst

    def reverse(self, src: SVMArray, out: SVMArray | None = None,
                lmul: LMUL | None = None) -> SVMArray:
        """Reverse ``src`` — a derived permutation: build the reversal
        index vector with ``p_index`` + ``p_rsub`` and gather through
        ``back_permute`` (no dedicated hardware reverse exists in RVV)."""
        idx = self.index_array(src.n, lmul=lmul)
        self.p_rsub(idx, src.n - 1, lmul=lmul)
        result = self.back_permute(src, idx, out=out, lmul=lmul)
        self.free(idx)
        return result

    def split(self, src: SVMArray, flags: SVMArray, out: SVMArray | None = None,
              lmul: LMUL | None = None) -> tuple[SVMArray, int]:
        """Split (Listing 7): stable partition of ``src`` by ``flags``
        (0-flag elements first). Returns (destination, #zeros)."""
        from .split_op import split as _split  # local import: split composes SVM methods

        dst = self.empty(src.n, src.dtype) if out is None else out
        self._check_equal_len(src, flags, dst)
        count = _split(self, src, dst, flags, lmul=self._lmul(lmul))
        return dst, count


# ----------------------------------------------------------------------
# registry-generated primitive methods
# ----------------------------------------------------------------------
# The in-place elementwise family and the flag compares share two
# method shapes; the registry fills them in. Each generated method is
# indistinguishable from a hand-written one (name, docstring, spans).

def _make_elementwise(spec: opspec.OpSpec):
    name = spec.name
    if "vv" in spec.node_kinds:
        def method(self, a: SVMArray, x, lmul: LMUL | None = None) -> None:
            if isinstance(x, SVMArray):
                self._check_equal_len(a, x)
                self._impl(name, "vv", a.n)(
                    self.machine, a.n, a.ptr, x.ptr, self._lmul(lmul))
            else:
                self._impl(name, "vx", a.n)(
                    self.machine, a.n, a.ptr, x, self._lmul(lmul))
    else:  # scalar-operand only (shifts, reverse subtract)
        def method(self, a: SVMArray, x: int, lmul: LMUL | None = None) -> None:
            self._impl(name, "vx", a.n)(
                self.machine, a.n, a.ptr, x, self._lmul(lmul))
    method.__name__ = name
    method.__qualname__ = f"SVM.{name}"
    method.__doc__ = spec.doc
    return method


def _make_compare(spec: opspec.OpSpec):
    name = spec.name

    def method(self, a: SVMArray, b, out: SVMArray | None = None,
               lmul: LMUL | None = None) -> SVMArray:
        dst = self.empty(a.n, np.uint32) if out is None else out
        if isinstance(b, SVMArray):
            self._check_equal_len(a, b, dst)
            self._impl(name, "vv", a.n)(
                self.machine, a.n, a.ptr, b.ptr, dst.ptr, self._lmul(lmul))
        else:
            self._check_equal_len(a, dst)
            self._impl(name, "vx", a.n)(
                self.machine, a.n, a.ptr, b, dst.ptr, self._lmul(lmul))
        return dst

    method.__name__ = name
    method.__qualname__ = f"SVM.{name}"
    method.__doc__ = spec.doc
    return method


for _spec in opspec.iter_specs():
    if "cmp_vx" in _spec.node_kinds.values():
        setattr(SVM, _spec.name, _make_compare(_spec))
    elif "ew_vx" in _spec.node_kinds.values():
        setattr(SVM, _spec.name, _make_elementwise(_spec))
del _spec


# ----------------------------------------------------------------------
# profiling instrumentation
# ----------------------------------------------------------------------
# Each primitive is wrapped so that, when a collector is installed on
# the machine, the call opens a span named after the primitive with
# {n, path} metadata. With no collector the wrapper is a single
# attribute check on top of the original method. Convenience aliases
# that delegate to an instrumented method (plus_scan/scan_exclusive →
# scan, seg_plus_scan → seg_scan, split → split_op.split, reverse →
# index/rsub/back_permute) are left unwrapped so each call produces
# exactly one primitive span. The profiled set is the registry's: every
# non-composite spec gets exactly one span name.
from ..obs.spans import instrument_method as _instrument  # noqa: E402

_PROFILED = tuple(s.name for s in opspec.iter_specs() if s.profiled)
for _name in _PROFILED:
    setattr(SVM, _name, _instrument(getattr(SVM, _name)))
del _name

"""Derived scan operations composed purely from primitives.

Blelloch's model includes a richer scan family than the hardware-backed
kernels expose directly; these build the rest from what exists:

* :func:`seg_copy` — *copy-scan*: distribute each segment's head value
  to every lane (the pivot-broadcast idiom of flat quicksort and the
  value-distribute of RLE decode);
* :func:`seg_total` — *reduce-and-distribute*: every lane receives its
  segment's ⊕-total, via a forward scan plus a backward scan realized
  on the reversed array (RVV has no backward scan instruction);
* :func:`scan_backward` / :func:`seg_scan_backward` — suffix scans by
  reversal, with the segmented form re-deriving head flags for the
  reversed segmentation (a segment's *tail* becomes its head).

Everything here charges real primitive costs — these are library
compositions, not new hardware.
"""

from __future__ import annotations

from ..obs.spans import span as _span
from ..rvv.types import LMUL
from .context import SVM, SVMArray
from .operators import PLUS, BinaryOp

__all__ = ["seg_copy", "seg_total", "scan_backward", "seg_scan_backward", "tail_to_head_flags"]


def seg_copy(svm: SVM, values: SVMArray, heads: SVMArray,
             lmul: LMUL | None = None) -> SVMArray:
    """Distribute each segment's first value to all of its lanes.

    Implementation: zero every non-head lane (multiply by the 0/1 head
    flags), then a segmented inclusive plus-scan — each lane's in-
    segment prefix sum contains exactly the head value.
    """
    with _span(svm.machine, "seg_copy", n=values.n):
        out = svm.copy(values, lmul=lmul)
        svm.p_mul(out, heads, lmul=lmul)
        if out.n:
            # lane 0 implicitly heads a segment whether or not flagged —
            # restore its value after the multiply (scalar store, 2 instr)
            out.ptr[0] = int(values.ptr[0])
            svm.machine.scalar(2)
        svm.seg_plus_scan(out, heads, lmul=lmul)
    return out


def tail_to_head_flags(svm: SVM, heads: SVMArray,
                       lmul: LMUL | None = None) -> SVMArray:
    """Head flags of the *reversed* segmentation.

    A segment's last lane is the lane before the next head (or the
    array end); reversed, those lanes head the reversed segments. The
    composition: reverse the heads, then shift down one lane sliding a
    1 in at the boundary (the array end is always a segment tail).
    """
    rev = svm.reverse(heads, lmul=lmul)
    out = svm.shift1up(rev, 1, lmul=lmul)
    svm.free(rev)
    return out


def seg_total(svm: SVM, values: SVMArray, heads: SVMArray,
              op: str | BinaryOp = PLUS, lmul: LMUL | None = None) -> SVMArray:
    """Distribute each segment's ⊕-total to every lane of the segment.

    ``total[i] = incl[i] ⊕ after[i]`` where ``incl`` is the forward
    inclusive segmented scan and ``after`` — the ⊕ of the lanes behind
    i in its segment — is an exclusive segmented scan of the reversed
    array under the reversed segmentation.
    """
    with _span(svm.machine, "seg_total", n=values.n):
        incl = svm.copy(values, lmul=lmul)
        svm.seg_scan(incl, heads, op, inclusive=True, lmul=lmul)

        rev = svm.reverse(values, lmul=lmul)
        heads_r = tail_to_head_flags(svm, heads, lmul=lmul)
        svm.seg_scan(rev, heads_r, op, inclusive=False, lmul=lmul)
        after = svm.reverse(rev, lmul=lmul)

        _APPLY_VV[_op_name(op)](svm, incl, after, lmul)
        for tmp in (rev, heads_r, after):
            svm.free(tmp)
    return incl


def scan_backward(svm: SVM, values: SVMArray, op: str | BinaryOp = PLUS,
                  *, inclusive: bool = True, lmul: LMUL | None = None) -> None:
    """Suffix ⊕-scan in place: lane i receives the ⊕ of lanes i..n-1
    (inclusive) or i+1..n-1 (exclusive)."""
    rev = svm.reverse(values, lmul=lmul)
    svm.scan(rev, op, inclusive=inclusive, lmul=lmul)
    back = svm.reverse(rev, lmul=lmul)
    svm.copy(back, out=values, lmul=lmul)
    svm.free(rev)
    svm.free(back)


def seg_scan_backward(svm: SVM, values: SVMArray, heads: SVMArray,
                      op: str | BinaryOp = PLUS, *, inclusive: bool = True,
                      lmul: LMUL | None = None) -> None:
    """Segmented suffix ⊕-scan in place (per-segment, from the right)."""
    rev = svm.reverse(values, lmul=lmul)
    heads_r = tail_to_head_flags(svm, heads, lmul=lmul)
    svm.seg_scan(rev, heads_r, op, inclusive=inclusive, lmul=lmul)
    back = svm.reverse(rev, lmul=lmul)
    svm.copy(back, out=values, lmul=lmul)
    for tmp in (rev, heads_r, back):
        svm.free(tmp)


def _op_name(op: str | BinaryOp) -> str:
    return op if isinstance(op, str) else op.name


_APPLY_VV = {
    "plus": lambda svm, a, b, lmul: svm.p_add(a, b, lmul=lmul),
    "max": lambda svm, a, b, lmul: svm.p_max(a, b, lmul=lmul),
    "min": lambda svm, a, b, lmul: svm.p_min(a, b, lmul=lmul),
    "or": lambda svm, a, b, lmul: svm.p_or(a, b, lmul=lmul),
    "and": lambda svm, a, b, lmul: svm.p_and(a, b, lmul=lmul),
    "xor": lambda svm, a, b, lmul: svm.p_xor(a, b, lmul=lmul),
}

"""Elementwise primitive instructions (§4.1) — strict strip-mined kernels.

Each function is a direct port of the paper's strip-mining pattern
(Listing 4) onto the intrinsic layer: configure vl, load, operate,
store, advance — the remainder strip needs no special case because
``vsetvl`` simply returns a shorter vl (§3.1).

These are the *strict* implementations: they drive the machine
intrinsic-by-intrinsic and get their dynamic counts from execution.
The numerically-identical fast paths with closed-form counts live in
:mod:`repro.svm.fastpath`; tests assert both agree exactly.

Beyond the paper's listings, this module also carries Blelloch's full
elementwise class (formerly ``elementwise_ext``): flag-producing
compares, ``p_index``, ``p_rsub``, ``reduce``, ``shift1up`` and the
vector ``copy``. The operation table that binds each kernel to its
fast path, capture node kind, and fusion role is
:mod:`repro.svm.opspec`.
"""

from __future__ import annotations

from ..rvv.allocation import ELEMENTWISE_PROFILE, plan_allocation
from ..rvv.counters import Cat
from ..rvv.intrinsics import (
    arith,
    compare,
    loadstore,
    mask as maskops,
    move,
    permutation,
    reduction,
)
from ..rvv.machine import RVVMachine
from ..rvv.memory import Pointer
from ..rvv.types import LMUL, sew_for_dtype
from ..rvv.value import VReg
from .operators import PLUS, BinaryOp, get_operator

__all__ = [
    "p_add", "p_sub", "p_mul", "p_and", "p_or", "p_xor", "p_max", "p_min",
    "p_srl", "p_sll",
    "p_add_vv", "p_sub_vv", "p_mul_vv", "p_and_vv", "p_or_vv", "p_xor_vv",
    "p_max_vv", "p_min_vv",
    "p_select", "get_flags",
    "p_lt", "p_le", "p_gt", "p_ge", "p_eq", "p_ne",
    "p_lt_vx", "p_le_vx", "p_gt_vx", "p_ge_vx", "p_eq_vx", "p_ne_vx",
    "p_index", "p_rsub", "reduce", "shift1up", "copy",
]

_VX_OPS = {
    "p_add": arith.vadd_vx,
    "p_rsub": arith.vrsub_vx,
    "p_srl": arith.vsrl_vx,
    "p_sll": arith.vsll_vx,
    "p_sub": arith.vsub_vx,
    "p_mul": arith.vmul_vx,
    "p_and": arith.vand_vx,
    "p_or": arith.vor_vx,
    "p_xor": arith.vxor_vx,
    "p_max": arith.vmaxu_vx,
    "p_min": arith.vminu_vx,
}

_VV_OPS = {
    "p_add": arith.vadd_vv,
    "p_sub": arith.vsub_vv,
    "p_mul": arith.vmul_vv,
    "p_and": arith.vand_vv,
    "p_or": arith.vor_vv,
    "p_xor": arith.vxor_vv,
    "p_max": arith.vmaxu_vv,
    "p_min": arith.vminu_vv,
}


def _elementwise_vx(kernel: str, m: RVVMachine, n: int, a: Pointer, x: int,
                    lmul: LMUL = LMUL.M1) -> None:
    """Shared body of the vector-scalar elementwise kernels (Listing 4)."""
    op = _VX_OPS[kernel]
    sew = sew_for_dtype(a.dtype)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.prologue(kernel)
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        va = loadstore.vle(m, a, vl)
        va = op(m, va, x, vl)
        loadstore.vse(m, a, va, vl)
        a += vl
        n -= vl
        m.strip_overhead(kernel, n_arrays=1)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))


def _elementwise_vv(kernel: str, m: RVVMachine, n: int, a: Pointer, b: Pointer,
                    lmul: LMUL = LMUL.M1) -> None:
    """Shared body of the vector-vector elementwise kernels: the result
    is stored through ``a`` (the paper's ``vector_add``, Listing 1)."""
    op = _VV_OPS[kernel]
    sew = sew_for_dtype(a.dtype)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.prologue(kernel)
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        va = loadstore.vle(m, a, vl)
        vb = loadstore.vle(m, b, vl)
        va = op(m, va, vb, vl)
        loadstore.vse(m, a, va, vl)
        a += vl
        b += vl
        n -= vl
        m.strip_overhead(kernel, n_arrays=2)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))


# --- public vector-scalar forms (the paper's p-add variant, Listing 4) ------

def p_add(m: RVVMachine, n: int, a: Pointer, x: int, lmul: LMUL = LMUL.M1) -> None:
    """p-add: ``a[i] += x`` — the paper's Listing 4, measured in Table 2."""
    _elementwise_vx("p_add", m, n, a, x, lmul)


def p_sub(m: RVVMachine, n: int, a: Pointer, x: int, lmul: LMUL = LMUL.M1) -> None:
    """p-sub: ``a[i] -= x``."""
    _elementwise_vx("p_sub", m, n, a, x, lmul)


def p_mul(m: RVVMachine, n: int, a: Pointer, x: int, lmul: LMUL = LMUL.M1) -> None:
    """p-mul: ``a[i] *= x`` (low product)."""
    _elementwise_vx("p_mul", m, n, a, x, lmul)


def p_and(m: RVVMachine, n: int, a: Pointer, x: int, lmul: LMUL = LMUL.M1) -> None:
    """p-and: ``a[i] &= x``."""
    _elementwise_vx("p_and", m, n, a, x, lmul)


def p_or(m: RVVMachine, n: int, a: Pointer, x: int, lmul: LMUL = LMUL.M1) -> None:
    """p-or: ``a[i] |= x``."""
    _elementwise_vx("p_or", m, n, a, x, lmul)


def p_xor(m: RVVMachine, n: int, a: Pointer, x: int, lmul: LMUL = LMUL.M1) -> None:
    """p-xor: ``a[i] ^= x``."""
    _elementwise_vx("p_xor", m, n, a, x, lmul)


def p_max(m: RVVMachine, n: int, a: Pointer, x: int, lmul: LMUL = LMUL.M1) -> None:
    """p-max: ``a[i] = max(a[i], x)`` (unsigned)."""
    _elementwise_vx("p_max", m, n, a, x, lmul)


def p_min(m: RVVMachine, n: int, a: Pointer, x: int, lmul: LMUL = LMUL.M1) -> None:
    """p-min: ``a[i] = min(a[i], x)`` (unsigned)."""
    _elementwise_vx("p_min", m, n, a, x, lmul)


def p_srl(m: RVVMachine, n: int, a: Pointer, x: int, lmul: LMUL = LMUL.M1) -> None:
    """p-srl: ``a[i] >>= x`` (logical) — digit extraction in wide-radix
    sorts."""
    _elementwise_vx("p_srl", m, n, a, x, lmul)


def p_sll(m: RVVMachine, n: int, a: Pointer, x: int, lmul: LMUL = LMUL.M1) -> None:
    """p-sll: ``a[i] <<= x``."""
    _elementwise_vx("p_sll", m, n, a, x, lmul)


# --- public vector-vector forms -----------------------------------------------

def p_add_vv(m: RVVMachine, n: int, a: Pointer, b: Pointer, lmul: LMUL = LMUL.M1) -> None:
    """p-add (vector form): ``a[i] += b[i]`` — Listing 1."""
    _elementwise_vv("p_add", m, n, a, b, lmul)


def p_sub_vv(m: RVVMachine, n: int, a: Pointer, b: Pointer, lmul: LMUL = LMUL.M1) -> None:
    """``a[i] -= b[i]``."""
    _elementwise_vv("p_sub", m, n, a, b, lmul)


def p_mul_vv(m: RVVMachine, n: int, a: Pointer, b: Pointer, lmul: LMUL = LMUL.M1) -> None:
    """``a[i] *= b[i]``."""
    _elementwise_vv("p_mul", m, n, a, b, lmul)


def p_and_vv(m: RVVMachine, n: int, a: Pointer, b: Pointer, lmul: LMUL = LMUL.M1) -> None:
    """``a[i] &= b[i]``."""
    _elementwise_vv("p_and", m, n, a, b, lmul)


def p_or_vv(m: RVVMachine, n: int, a: Pointer, b: Pointer, lmul: LMUL = LMUL.M1) -> None:
    """``a[i] |= b[i]``."""
    _elementwise_vv("p_or", m, n, a, b, lmul)


def p_xor_vv(m: RVVMachine, n: int, a: Pointer, b: Pointer, lmul: LMUL = LMUL.M1) -> None:
    """``a[i] ^= b[i]``."""
    _elementwise_vv("p_xor", m, n, a, b, lmul)


def p_max_vv(m: RVVMachine, n: int, a: Pointer, b: Pointer, lmul: LMUL = LMUL.M1) -> None:
    """``a[i] = max(a[i], b[i])``."""
    _elementwise_vv("p_max", m, n, a, b, lmul)


def p_min_vv(m: RVVMachine, n: int, a: Pointer, b: Pointer, lmul: LMUL = LMUL.M1) -> None:
    """``a[i] = min(a[i], b[i])``."""
    _elementwise_vv("p_min", m, n, a, b, lmul)


# --- p-select and get_flags (used by split radix sort, §4.4) --------------------

def p_select(m: RVVMachine, n: int, flags: Pointer, a: Pointer, b: Pointer,
             lmul: LMUL = LMUL.M1) -> None:
    """p-select: ``b[i] = a[i] where flags[i] else b[i]`` — the form
    Listing 7 uses to choose between the up/down index vectors."""
    sew = sew_for_dtype(a.dtype)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.prologue("p_select")
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        vflags = loadstore.vle(m, flags, vl)
        va = loadstore.vle(m, a, vl)
        vb = loadstore.vle(m, b, vl)
        mask = compare.vmsne_vx(m, vflags, 0, vl)
        vb = arith.vmerge_vvm(m, mask, vb, va, vl)
        loadstore.vse(m, b, vb, vl)
        flags += vl
        a += vl
        b += vl
        n -= vl
        m.strip_overhead("p_select", n_arrays=3)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))


def get_flags(m: RVVMachine, n: int, src: Pointer, flags: Pointer, bit: int,
              lmul: LMUL = LMUL.M1) -> None:
    """Extract bit ``bit`` of every element into a 0/1 flag vector —
    the per-pass first step of split radix sort (Listing 9, line 7)."""
    sew = sew_for_dtype(src.dtype)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.prologue("get_flags")
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        v = loadstore.vle(m, src, vl)
        v = arith.vsrl_vx(m, v, bit, vl)
        v = arith.vand_vx(m, v, 1, vl)
        loadstore.vse(m, flags, v, vl)
        src += vl
        flags += vl
        n -= vl
        m.strip_overhead("get_flags", n_arrays=2)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))


# --- flag-producing compares (Blelloch's full elementwise class) -------------

_CMP_VV = {
    "lt": compare.vmsltu_vv,
    "le": compare.vmsleu_vv,
    "gt": compare.vmsgtu_vv,
    "ge": compare.vmsgeu_vv,
    "eq": compare.vmseq_vv,
    "ne": compare.vmsne_vv,
}
_CMP_VX = {
    "lt": compare.vmsltu_vx,
    "le": compare.vmsleu_vx,
    "gt": compare.vmsgtu_vx,
    "eq": compare.vmseq_vx,
    "ne": compare.vmsne_vx,
}

_RED = {
    "plus": reduction.vredsum_vs,
    "max": reduction.vredmaxu_vs,
    "min": reduction.vredminu_vs,
    "or": reduction.vredor_vs,
    "and": reduction.vredand_vs,
    "xor": reduction.vredxor_vs,
}


def _trim(v: VReg, vl: int) -> VReg:
    return v if v.vl == vl else VReg(v.data[:vl])


def _cmp_vv(which: str, m: RVVMachine, n: int, a: Pointer, b: Pointer,
            out: Pointer, lmul: LMUL) -> None:
    """Shared body of the flag-producing vector compares: a mask
    compare plus a merge of 1 over a zero vector."""
    fn = _CMP_VV[which]
    sew = sew_for_dtype(a.dtype)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.prologue("p_cmp")
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    vlmax = m.vsetvlmax(sew, lmul)
    vec_zero = move.vmv_v_x(m, 0, vlmax, dtype=out.dtype)
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        va = loadstore.vle(m, a, vl)
        vb = loadstore.vle(m, b, vl)
        mask = fn(m, va, vb, vl)
        flags = arith.vmerge_vxm(m, mask, _trim(vec_zero, vl), 1, vl)
        loadstore.vse(m, out, flags, vl)
        a += vl
        b += vl
        out += vl
        n -= vl
        m.strip_overhead("p_cmp", n_arrays=3)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))


def _cmp_vx(which: str, m: RVVMachine, n: int, a: Pointer, x: int,
            out: Pointer, lmul: LMUL) -> None:
    fn = _CMP_VX[which]
    sew = sew_for_dtype(a.dtype)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.prologue("p_cmp")
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    vlmax = m.vsetvlmax(sew, lmul)
    vec_zero = move.vmv_v_x(m, 0, vlmax, dtype=out.dtype)
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        va = loadstore.vle(m, a, vl)
        mask = fn(m, va, x, vl)
        flags = arith.vmerge_vxm(m, mask, _trim(vec_zero, vl), 1, vl)
        loadstore.vse(m, out, flags, vl)
        a += vl
        out += vl
        n -= vl
        m.strip_overhead("p_cmp", n_arrays=2)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))


def p_lt(m, n, a, b, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] < b[i] else 0`` (unsigned)."""
    _cmp_vv("lt", m, n, a, b, out, lmul)


def p_le(m, n, a, b, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] <= b[i] else 0``."""
    _cmp_vv("le", m, n, a, b, out, lmul)


def p_gt(m, n, a, b, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] > b[i] else 0``."""
    _cmp_vv("gt", m, n, a, b, out, lmul)


def p_ge(m, n, a, b, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] >= b[i] else 0``."""
    _cmp_vv("ge", m, n, a, b, out, lmul)


def p_eq(m, n, a, b, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] == b[i] else 0``."""
    _cmp_vv("eq", m, n, a, b, out, lmul)


def p_ne(m, n, a, b, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] != b[i] else 0``."""
    _cmp_vv("ne", m, n, a, b, out, lmul)


def p_lt_vx(m, n, a, x, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] < x else 0``."""
    _cmp_vx("lt", m, n, a, x, out, lmul)


def p_le_vx(m, n, a, x, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] <= x else 0``."""
    _cmp_vx("le", m, n, a, x, out, lmul)


def p_gt_vx(m, n, a, x, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] > x else 0``."""
    _cmp_vx("gt", m, n, a, x, out, lmul)


def p_eq_vx(m, n, a, x, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] == x else 0``."""
    _cmp_vx("eq", m, n, a, x, out, lmul)


def p_ne_vx(m, n, a, x, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] != x else 0``."""
    _cmp_vx("ne", m, n, a, x, out, lmul)


def p_ge_vx(m, n, a, x, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] >= x else 0`` (via NOT(a < x))."""
    # vmsgeu.vx does not exist in RVV; the idiom is vmsltu + mask-not.
    sew = sew_for_dtype(a.dtype)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.prologue("p_cmp")
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    vlmax = m.vsetvlmax(sew, lmul)
    vec_zero = move.vmv_v_x(m, 0, vlmax, dtype=out.dtype)
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        va = loadstore.vle(m, a, vl)
        mask = compare.vmsltu_vx(m, va, x, vl)
        mask = maskops.vmnot_m(m, mask, vl)
        flags = arith.vmerge_vxm(m, mask, _trim(vec_zero, vl), 1, vl)
        loadstore.vse(m, out, flags, vl)
        a += vl
        out += vl
        n -= vl
        m.strip_overhead("p_cmp", n_arrays=2)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))


def p_index(m: RVVMachine, n: int, out: Pointer, lmul: LMUL = LMUL.M1) -> None:
    """Blelloch's *index* primitive: ``out[i] = i`` (``vid.v`` plus the
    running strip offset)."""
    sew = sew_for_dtype(out.dtype)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.prologue("p_index")
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    offset = 0
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        v = maskops.vid_v(m, vl, dtype=out.dtype)
        v = arith.vadd_vx(m, v, offset, vl)
        loadstore.vse(m, out, v, vl)
        offset += vl
        out += vl
        n -= vl
        m.scalar(1)  # offset accumulate
        m.strip_overhead("p_index", n_arrays=1)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))


def p_rsub(m: RVVMachine, n: int, a: Pointer, x: int, lmul: LMUL = LMUL.M1) -> None:
    """Reverse subtract: ``a[i] = x - a[i]`` (``vrsub.vx``). With
    ``x = n - 1`` over an index vector this builds the reversal
    permutation."""
    sew = sew_for_dtype(a.dtype)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.prologue("p_add")  # same loop shape/cost as p_add
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        va = loadstore.vle(m, a, vl)
        va = arith.vrsub_vx(m, va, x, vl)
        loadstore.vse(m, a, va, vl)
        a += vl
        n -= vl
        m.strip_overhead("p_add", n_arrays=1)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))


def reduce(m: RVVMachine, n: int, a: Pointer, op: str | BinaryOp = PLUS,
           lmul: LMUL = LMUL.M1) -> int:
    """Full ⊕-reduction of ``a`` to a scalar via ``vred*`` per strip,
    threading the accumulator through the reduction's scalar operand."""
    op = get_operator(op)
    red = _RED[op.name]
    sew = sew_for_dtype(a.dtype)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.prologue("p_reduce")
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    acc = op.identity(a.dtype)
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        v = loadstore.vle(m, a, vl)
        acc = red(m, v, acc, vl)
        a += vl
        n -= vl
        m.strip_overhead("p_reduce", n_arrays=1)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))
    return acc


def shift1up(m: RVVMachine, n: int, src: Pointer, dst: Pointer, fill: int,
             lmul: LMUL = LMUL.M1) -> None:
    """Whole-array shift by one: ``dst[0] = fill``, ``dst[i] =
    src[i-1]`` — the building block for run-boundary detection (RLE)
    and exclusive-style post-processing. The element crossing each
    strip boundary rides in a scalar, exactly like the scan carry."""
    sew = sew_for_dtype(src.dtype)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.prologue("p_add")
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    carry = int(fill)
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        v = loadstore.vle(m, src, vl)
        out = permutation.vslide1up_vx(m, v, carry, vl)
        # read the boundary element *before* the store: src and dst may
        # alias (in-place shift), and the store would clobber it
        carry = src[vl - 1]
        loadstore.vse(m, dst, out, vl)
        m.scalar(2)  # boundary element reload
        src += vl
        dst += vl
        n -= vl
        m.strip_overhead("p_add", n_arrays=2)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))


def copy(m: RVVMachine, n: int, src: Pointer, dst: Pointer,
         lmul: LMUL = LMUL.M1) -> None:
    """Vector memcpy: a strip-mined vle/vse loop (charged like a
    two-array elementwise pass without the compute op)."""
    sew = sew_for_dtype(src.dtype)
    m.prologue("p_add")
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        v = loadstore.vle(m, src, vl)
        loadstore.vse(m, dst, v, vl)
        src += vl
        dst += vl
        n -= vl
        m.strip_overhead("p_add", n_arrays=2)

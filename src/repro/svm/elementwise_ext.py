"""DEPRECATED import shim — kernels folded into :mod:`repro.svm.elementwise`.

The strict/extended split (``elementwise`` vs ``elementwise_ext``)
disappeared when the unified :mod:`repro.svm.opspec` registry became
the single source of truth per primitive: every strict kernel now
lives in :mod:`repro.svm.elementwise`, next to its registry entry.

This module re-exports the old names so external callers keep
working; new code should import from ``repro.svm.elementwise`` (or go
through :class:`repro.svm.context.SVM`, which dispatches via the
registry). It will be removed in a future release.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.svm.elementwise_ext is deprecated and will be removed in a "
    "future release; import from repro.svm.elementwise (or dispatch "
    "through repro.svm.context.SVM) instead",
    DeprecationWarning,
    stacklevel=2,
)

from .elementwise import (  # noqa: F401,E402
    _CMP_VV,
    _CMP_VX,
    _RED,
    _cmp_vv,
    _cmp_vx,
    _trim,
    p_eq,
    p_eq_vx,
    p_ge,
    p_ge_vx,
    p_gt,
    p_gt_vx,
    p_index,
    p_le,
    p_le_vx,
    p_lt,
    p_lt_vx,
    p_ne,
    p_ne_vx,
    p_rsub,
    reduce,
    shift1up,
)

__all__ = [
    "p_lt", "p_le", "p_gt", "p_ge", "p_eq", "p_ne",
    "p_lt_vx", "p_le_vx", "p_gt_vx", "p_ge_vx", "p_eq_vx", "p_ne_vx",
    "p_index", "p_rsub", "reduce", "shift1up",
]

"""Extended elementwise/utility primitives beyond the paper's listings.

Blelloch's elementwise class includes comparisons (producing flag
vectors), the index vector, and reductions; the paper implements only
the subset its radix-sort example needs. These round out the model so
the larger applications (flat quicksort, RLE, SpMV, line-of-sight) can
be written *purely* against primitives:

* flag-producing compares ``p_lt``/``p_le``/``p_gt``/``p_ge``/``p_eq``/
  ``p_ne`` (vector-vector and vector-scalar),
* ``p_index`` — the index vector 0..n-1 (Blelloch's *index*),
* ``p_rsub`` — reverse subtract, ``a[i] = x - a[i]`` (for building
  reversal index vectors),
* ``reduce`` — a full ⊕-reduction to a scalar,
* ``shift1up`` — whole-array shift by one with a fill-in scalar
  (the array-level analogue of ``vslide1up``, carrying the boundary
  element across strips).

Each has a strict strip-mined kernel here and a closed-form fast path
in :mod:`repro.svm.fastpath_ext`.
"""

from __future__ import annotations

import numpy as np

from ..rvv.allocation import ELEMENTWISE_PROFILE, plan_allocation
from ..rvv.counters import Cat
from ..rvv.intrinsics import arith, compare, loadstore, mask as maskops, move, permutation, reduction
from ..rvv.machine import RVVMachine
from ..rvv.memory import Pointer
from ..rvv.types import LMUL, sew_for_dtype
from ..rvv.value import VReg
from .operators import PLUS, BinaryOp, get_operator

__all__ = [
    "p_lt", "p_le", "p_gt", "p_ge", "p_eq", "p_ne",
    "p_lt_vx", "p_le_vx", "p_gt_vx", "p_ge_vx", "p_eq_vx", "p_ne_vx",
    "p_index", "p_rsub", "reduce", "shift1up",
]

_CMP_VV = {
    "lt": compare.vmsltu_vv,
    "le": compare.vmsleu_vv,
    "gt": compare.vmsgtu_vv,
    "ge": compare.vmsgeu_vv,
    "eq": compare.vmseq_vv,
    "ne": compare.vmsne_vv,
}
_CMP_VX = {
    "lt": compare.vmsltu_vx,
    "le": compare.vmsleu_vx,
    "gt": compare.vmsgtu_vx,
    "eq": compare.vmseq_vx,
    "ne": compare.vmsne_vx,
}

_RED = {
    "plus": reduction.vredsum_vs,
    "max": reduction.vredmaxu_vs,
    "min": reduction.vredminu_vs,
    "or": reduction.vredor_vs,
    "and": reduction.vredand_vs,
    "xor": reduction.vredxor_vs,
}


def _trim(v: VReg, vl: int) -> VReg:
    return v if v.vl == vl else VReg(v.data[:vl])


def _cmp_vv(which: str, m: RVVMachine, n: int, a: Pointer, b: Pointer,
            out: Pointer, lmul: LMUL) -> None:
    """Shared body of the flag-producing vector compares: a mask
    compare plus a merge of 1 over a zero vector."""
    fn = _CMP_VV[which]
    sew = sew_for_dtype(a.dtype)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.prologue("p_cmp")
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    vlmax = m.vsetvlmax(sew, lmul)
    vec_zero = move.vmv_v_x(m, 0, vlmax, dtype=out.dtype)
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        va = loadstore.vle(m, a, vl)
        vb = loadstore.vle(m, b, vl)
        mask = fn(m, va, vb, vl)
        flags = arith.vmerge_vxm(m, mask, _trim(vec_zero, vl), 1, vl)
        loadstore.vse(m, out, flags, vl)
        a += vl
        b += vl
        out += vl
        n -= vl
        m.strip_overhead("p_cmp", n_arrays=3)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))


def _cmp_vx(which: str, m: RVVMachine, n: int, a: Pointer, x: int,
            out: Pointer, lmul: LMUL) -> None:
    fn = _CMP_VX[which]
    sew = sew_for_dtype(a.dtype)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.prologue("p_cmp")
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    vlmax = m.vsetvlmax(sew, lmul)
    vec_zero = move.vmv_v_x(m, 0, vlmax, dtype=out.dtype)
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        va = loadstore.vle(m, a, vl)
        mask = fn(m, va, x, vl)
        flags = arith.vmerge_vxm(m, mask, _trim(vec_zero, vl), 1, vl)
        loadstore.vse(m, out, flags, vl)
        a += vl
        out += vl
        n -= vl
        m.strip_overhead("p_cmp", n_arrays=2)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))


def p_lt(m, n, a, b, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] < b[i] else 0`` (unsigned)."""
    _cmp_vv("lt", m, n, a, b, out, lmul)


def p_le(m, n, a, b, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] <= b[i] else 0``."""
    _cmp_vv("le", m, n, a, b, out, lmul)


def p_gt(m, n, a, b, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] > b[i] else 0``."""
    _cmp_vv("gt", m, n, a, b, out, lmul)


def p_ge(m, n, a, b, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] >= b[i] else 0``."""
    _cmp_vv("ge", m, n, a, b, out, lmul)


def p_eq(m, n, a, b, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] == b[i] else 0``."""
    _cmp_vv("eq", m, n, a, b, out, lmul)


def p_ne(m, n, a, b, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] != b[i] else 0``."""
    _cmp_vv("ne", m, n, a, b, out, lmul)


def p_lt_vx(m, n, a, x, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] < x else 0``."""
    _cmp_vx("lt", m, n, a, x, out, lmul)


def p_le_vx(m, n, a, x, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] <= x else 0``."""
    _cmp_vx("le", m, n, a, x, out, lmul)


def p_gt_vx(m, n, a, x, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] > x else 0``."""
    _cmp_vx("gt", m, n, a, x, out, lmul)


def p_eq_vx(m, n, a, x, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] == x else 0``."""
    _cmp_vx("eq", m, n, a, x, out, lmul)


def p_ne_vx(m, n, a, x, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] != x else 0``."""
    _cmp_vx("ne", m, n, a, x, out, lmul)


def p_ge_vx(m, n, a, x, out, lmul=LMUL.M1):
    """``out[i] = 1 if a[i] >= x else 0`` (via NOT(a < x))."""
    # vmsgeu.vx does not exist in RVV; the idiom is vmsltu + mask-not.
    sew = sew_for_dtype(a.dtype)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.prologue("p_cmp")
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    vlmax = m.vsetvlmax(sew, lmul)
    vec_zero = move.vmv_v_x(m, 0, vlmax, dtype=out.dtype)
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        va = loadstore.vle(m, a, vl)
        mask = compare.vmsltu_vx(m, va, x, vl)
        mask = maskops.vmnot_m(m, mask, vl)
        flags = arith.vmerge_vxm(m, mask, _trim(vec_zero, vl), 1, vl)
        loadstore.vse(m, out, flags, vl)
        a += vl
        out += vl
        n -= vl
        m.strip_overhead("p_cmp", n_arrays=2)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))


def p_index(m: RVVMachine, n: int, out: Pointer, lmul: LMUL = LMUL.M1) -> None:
    """Blelloch's *index* primitive: ``out[i] = i`` (``vid.v`` plus the
    running strip offset)."""
    sew = sew_for_dtype(out.dtype)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.prologue("p_index")
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    offset = 0
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        v = maskops.vid_v(m, vl, dtype=out.dtype)
        v = arith.vadd_vx(m, v, offset, vl)
        loadstore.vse(m, out, v, vl)
        offset += vl
        out += vl
        n -= vl
        m.scalar(1)  # offset accumulate
        m.strip_overhead("p_index", n_arrays=1)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))


def p_rsub(m: RVVMachine, n: int, a: Pointer, x: int, lmul: LMUL = LMUL.M1) -> None:
    """Reverse subtract: ``a[i] = x - a[i]`` (``vrsub.vx``). With
    ``x = n - 1`` over an index vector this builds the reversal
    permutation."""
    sew = sew_for_dtype(a.dtype)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.prologue("p_add")  # same loop shape/cost as p_add
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        va = loadstore.vle(m, a, vl)
        va = arith.vrsub_vx(m, va, x, vl)
        loadstore.vse(m, a, va, vl)
        a += vl
        n -= vl
        m.strip_overhead("p_add", n_arrays=1)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))


def reduce(m: RVVMachine, n: int, a: Pointer, op: str | BinaryOp = PLUS,
           lmul: LMUL = LMUL.M1) -> int:
    """Full ⊕-reduction of ``a`` to a scalar via ``vred*`` per strip,
    threading the accumulator through the reduction's scalar operand."""
    op = get_operator(op)
    red = _RED[op.name]
    sew = sew_for_dtype(a.dtype)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.prologue("p_reduce")
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    acc = op.identity(a.dtype)
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        v = loadstore.vle(m, a, vl)
        acc = red(m, v, acc, vl)
        a += vl
        n -= vl
        m.strip_overhead("p_reduce", n_arrays=1)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))
    return acc


def shift1up(m: RVVMachine, n: int, src: Pointer, dst: Pointer, fill: int,
             lmul: LMUL = LMUL.M1) -> None:
    """Whole-array shift by one: ``dst[0] = fill``, ``dst[i] =
    src[i-1]`` — the building block for run-boundary detection (RLE)
    and exclusive-style post-processing. The element crossing each
    strip boundary rides in a scalar, exactly like the scan carry."""
    sew = sew_for_dtype(src.dtype)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.prologue("p_add")
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    carry = int(fill)
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        v = loadstore.vle(m, src, vl)
        out = permutation.vslide1up_vx(m, v, carry, vl)
        # read the boundary element *before* the store: src and dst may
        # alias (in-place shift), and the store would clobber it
        carry = src[vl - 1]
        loadstore.vse(m, dst, out, vl)
        m.scalar(2)  # boundary element reload
        src += vl
        dst += vl
        n -= vl
        m.strip_overhead("p_add", n_arrays=2)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))

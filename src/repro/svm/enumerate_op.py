"""The enumerate operation (§4.4, Listing 8) — strict kernel.

Enumerate assigns each true flag its rank among the true flags — an
*exclusive plus-scan of a 0/1 vector*. The restriction to 0/1 inputs is
what the paper exploits: instead of the general scan kernel's
``lg vl`` slideup-and-add steps, a single ``viota`` performs the whole
in-register exclusive count, and ``vcpop`` propagates the running
count across strips through a scalar register. The enumerate-vs-scan
ablation bench quantifies exactly this saving.
"""

from __future__ import annotations

from ..rvv.allocation import ENUMERATE_PROFILE, plan_allocation
from ..rvv.counters import Cat
from ..rvv.intrinsics import arith, compare, loadstore, mask as maskops
from ..rvv.machine import RVVMachine
from ..rvv.memory import Pointer
from ..rvv.types import LMUL, sew_for_dtype

__all__ = ["enumerate_op"]


def enumerate_op(m: RVVMachine, n: int, flags: Pointer, dst: Pointer,
                 set_bit: bool, lmul: LMUL = LMUL.M1) -> int:
    """Port of Listing 8: ``dst[i]`` receives the number of positions
    ``j < i`` with ``flags[j] == set_bit``; returns the total count.

    ``set_bit`` selects which flag value is being enumerated — the
    split operation (Listing 7) runs it once per polarity.
    """
    sew = sew_for_dtype(flags.dtype)
    plan = plan_allocation(ENUMERATE_PROFILE, lmul)
    m.prologue("enumerate")
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    count = 0
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        v = loadstore.vle(m, flags, vl)
        mask = compare.vmseq_vx(m, v, 1 if set_bit else 0, vl)
        v = maskops.viota_m(m, mask, vl, dtype=dst.dtype)
        v = arith.vadd_vx(m, v, count, vl)
        loadstore.vse(m, dst, v, vl)
        count += maskops.vcpop_m(m, mask, vl)
        m.scalar(1)  # scalar accumulate of the popcount
        flags += vl
        dst += vl
        n -= vl
        m.strip_overhead("enumerate", n_arrays=2)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))
    return count

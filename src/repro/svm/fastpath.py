"""Fast-path kernels: whole-array NumPy semantics + closed-form counts.

The strict kernels walk the machine strip by strip — exact but O(n/vl)
Python-level work, which the HPC guides rightly forbid in hot paths.
Every kernel's dynamic instruction count, however, depends only on the
*vl sequence* (a function of n, VLEN, SEW, LMUL), never on the data
(the kernels are branch-free at the lane level; the one data-dependent
kernel, ``pack``, is handled explicitly). So each primitive here:

1. computes its result with one vectorized NumPy expression over the
   memory view, and
2. charges the machine counters with the *identical per-category
   counts* the strict kernel would produce.

``tests/integration/test_strict_vs_fast.py`` asserts exact equality of
both results and per-category counts across n, VLEN, LMUL, operators
and codegen presets — the fast path is not an approximation.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..rvv.allocation import (
    ELEMENTWISE_PROFILE,
    ENUMERATE_PROFILE,
    PERMUTE_PROFILE,
    PLUS_SCAN_PROFILE,
    SEG_SCAN_PROFILE,
    plan_allocation,
)
from ..rvv.counters import Cat
from ..rvv.machine import RVVMachine
from ..rvv.memory import Pointer
from ..rvv.types import LMUL, sew_for_dtype
from ..scalar.kernels import segmented_cumsum, segmented_reduce_numpy
from .operators import PLUS, BinaryOp, get_operator
from .scan import inner_scan_steps

__all__ = [
    "strip_shape",
    "fast_elementwise_vx",
    "fast_elementwise_vv",
    "fast_p_select",
    "fast_get_flags",
    "fast_scan",
    "fast_scan_exclusive",
    "fast_seg_scan",
    "fast_seg_scan_exclusive",
    "fast_enumerate",
    "fast_permute",
    "fast_back_permute",
    "fast_pack",
    "fast_cmp_vv", "fast_cmp_vx", "fast_index", "fast_rsub",
    "fast_reduce", "fast_shift1up", "fast_copy",
]

def _srl(view, x, out):
    np.right_shift(view, view.dtype.type(int(x) & (view.dtype.itemsize * 8 - 1)),
                   out=out)


def _sll(view, x, out):
    np.left_shift(view, view.dtype.type(int(x) & (view.dtype.itemsize * 8 - 1)),
                  out=out)


def _rsub(view, x, out):
    np.subtract(x, view, out=out)


_UFUNC_VX = {
    "p_add": np.add, "p_sub": np.subtract, "p_mul": np.multiply,
    "p_and": np.bitwise_and, "p_or": np.bitwise_or, "p_xor": np.bitwise_xor,
    "p_max": np.maximum, "p_min": np.minimum,
    "p_srl": _srl, "p_sll": _sll, "p_rsub": _rsub,
}


@lru_cache(maxsize=4096)
def strip_shape(n: int, vlmax: int) -> tuple[int, int]:
    """(number of full strips, remainder strip length) for ``n``
    elements at ``vlmax`` — the vl sequence is ``vlmax`` repeated
    ``full`` times followed by ``rem`` if nonzero.

    Cached: benchmark grids and batch runs recompute the same few
    (n, vlmax) points thousands of times, and both arguments are plain
    ints (machine objects never enter the key)."""
    n = int(n)
    return n // vlmax, n % vlmax


def _wrap(x: int, dtype: np.dtype):
    dtype = np.dtype(dtype)
    bits = dtype.itemsize * 8
    x = int(x) & ((1 << bits) - 1)
    if dtype.kind == "i" and x >= 1 << (bits - 1):
        x -= 1 << bits
    return dtype.type(x)


# ---------------------------------------------------------------------------
# elementwise
# ---------------------------------------------------------------------------

def _charge_elementwise(m: RVVMachine, kernel: str, n: int, lmul: LMUL,
                        n_arrays: int, n_loads: int, sew, extra_cats=()) -> None:
    """Counts of a one-op-per-strip elementwise kernel: vsetvl, loads,
    one compute op, a store, bookkeeping — times the strip count."""
    vlmax = m.vlmax(sew=sew, lmul=lmul)
    full, rem = strip_shape(n, vlmax)
    n_strips = full + (1 if rem else 0)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.count(Cat.SCALAR, m.codegen.prologue(kernel))
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup + n_strips * plan.strip_cost(0))
    m.count(Cat.VCONFIG, n_strips)
    m.count(Cat.VMEM, n_strips * (n_loads + 1))  # loads + one store
    m.count(Cat.VARITH, n_strips * m.codegen.op_cost())
    for cat, per_strip in extra_cats:
        m.count(cat, n_strips * per_strip)
    m.count(Cat.SCALAR, n_strips * m.codegen.strip_overhead(kernel, n_arrays))


def fast_elementwise_vx(m: RVVMachine, kernel: str, n: int, a: Pointer, x: int,
                        lmul: LMUL = LMUL.M1) -> None:
    """Fast path of the vector-scalar elementwise kernels (p_add etc.)."""
    n = int(n)
    if n:
        view = a.view(n)
        ufunc = _UFUNC_VX[kernel]
        ufunc(view, _wrap(x, a.dtype), out=view)
    _charge_elementwise(m, kernel, n, lmul, n_arrays=1, n_loads=1,
                        sew=sew_for_dtype(a.dtype))


def fast_elementwise_vv(m: RVVMachine, kernel: str, n: int, a: Pointer, b: Pointer,
                        lmul: LMUL = LMUL.M1) -> None:
    """Fast path of the vector-vector elementwise kernels."""
    n = int(n)
    if n:
        va = a.view(n)
        ufunc = _UFUNC_VX[kernel]
        ufunc(va, b.view(n), out=va)
    _charge_elementwise(m, kernel, n, lmul, n_arrays=2, n_loads=2,
                        sew=sew_for_dtype(a.dtype))


def fast_p_select(m: RVVMachine, n: int, flags: Pointer, a: Pointer, b: Pointer,
                  lmul: LMUL = LMUL.M1) -> None:
    """Fast path of p_select: ``b[i] = a[i] where flags[i]``.

    Strict counts per strip: vsetvl + 3 loads + vmsne + vmerge + store.
    """
    n = int(n)
    if n:
        vb = b.view(n)
        np.copyto(vb, a.view(n), where=flags.view(n).astype(bool))
    vlmax = m.vlmax(sew=sew_for_dtype(a.dtype), lmul=lmul)
    full, rem = strip_shape(n, vlmax)
    n_strips = full + (1 if rem else 0)
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    m.count(Cat.SCALAR, m.codegen.prologue("p_select"))
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup + n_strips * plan.strip_cost(0))
    m.count(Cat.VCONFIG, n_strips)
    m.count(Cat.VMEM, n_strips * 4)
    m.count(Cat.VMASK, n_strips * m.codegen.op_cost())
    m.count(Cat.VARITH, n_strips * m.codegen.op_cost())
    m.count(Cat.SCALAR, n_strips * m.codegen.strip_overhead("p_select", 3))


def fast_get_flags(m: RVVMachine, n: int, src: Pointer, flags: Pointer, bit: int,
                   lmul: LMUL = LMUL.M1) -> None:
    """Fast path of get_flags: strict is vsetvl + load + vsrl + vand +
    store per strip."""
    n = int(n)
    if n:
        s = src.view(n)
        flags.view(n)[:] = (s >> s.dtype.type(bit)) & s.dtype.type(1)
    _charge_elementwise(
        m, "get_flags", n, lmul, n_arrays=2, n_loads=1,
        sew=sew_for_dtype(src.dtype),
        extra_cats=((Cat.VARITH, m.codegen.op_cost()),),  # the second shift/and op
    )


# ---------------------------------------------------------------------------
# scans
# ---------------------------------------------------------------------------

def _charge_scan(m: RVVMachine, n: int, lmul: LMUL, exclusive: bool, sew) -> None:
    """Counts of the unsegmented scan kernel (Listing 6 structure)."""
    kernel = "plus_scan"
    vlmax = m.vlmax(sew=sew, lmul=lmul)
    full, rem = strip_shape(n, vlmax)
    n_strips = full + (1 if rem else 0)
    steps_full = inner_scan_steps(vlmax)
    steps_rem = inner_scan_steps(rem)
    total_steps = full * steps_full + steps_rem
    cg = m.codegen
    plan = plan_allocation(PLUS_SCAN_PROFILE, lmul)

    m.count(Cat.SCALAR, cg.prologue(kernel))
    if plan.has_spills:
        spill = plan.frame_setup
        spill += full * plan.strip_cost(steps_full)
        if rem:
            spill += plan.strip_cost(steps_rem)
        m.count(Cat.SPILL, spill)
    # one-time: vsetvlmax + identity broadcast
    m.count(Cat.VCONFIG, 1)
    m.count(Cat.VPERM, cg.op_cost())
    # per strip
    m.count(Cat.VCONFIG, n_strips)
    m.count(Cat.VMEM, n_strips * 2)  # vle + vse
    # inner: slideup (undisturbed dest) + combine
    m.count(Cat.VPERM, total_steps * cg.op_cost(dest_undisturbed=True))
    m.count(Cat.VARITH, total_steps * cg.op_cost())
    m.count(Cat.SCALAR, total_steps * cg.inner_overhead(kernel))
    if exclusive:
        # vslidedown + vmv.x.s + vslide1up, carry combine applied to all
        m.count(Cat.VPERM, n_strips * 3)
        m.count(Cat.VARITH, n_strips * cg.op_cost())
        m.count(Cat.SCALAR, n_strips * 1)
    else:
        m.count(Cat.VARITH, n_strips * cg.op_cost())  # carry apply
        m.count(Cat.SCALAR, n_strips * 2)  # carry reload
    m.count(Cat.SCALAR, n_strips * cg.strip_overhead(kernel, 1))


def fast_scan(m: RVVMachine, n: int, src: Pointer, op: str | BinaryOp = PLUS,
              lmul: LMUL = LMUL.M1) -> None:
    """Fast path of the inclusive ⊕-scan."""
    op = get_operator(op)
    n = int(n)
    if n:
        view = src.view(n)
        op.ufunc.accumulate(view, out=view)
    _charge_scan(m, n, lmul, exclusive=False, sew=sew_for_dtype(src.dtype))


def fast_scan_exclusive(m: RVVMachine, n: int, src: Pointer,
                        op: str | BinaryOp = PLUS, lmul: LMUL = LMUL.M1) -> None:
    """Fast path of the exclusive ⊕-scan."""
    op = get_operator(op)
    n = int(n)
    if n:
        view = src.view(n)
        incl = op.ufunc.accumulate(view)
        view[1:] = incl[:-1]
        view[0] = _wrap(op.identity(src.dtype), src.dtype)
    _charge_scan(m, n, lmul, exclusive=True, sew=sew_for_dtype(src.dtype))


def _charge_seg_scan(m: RVVMachine, n: int, lmul: LMUL, exclusive: bool, sew) -> None:
    """Counts of the segmented scan kernel (Listing 10 structure)."""
    kernel = "seg_plus_scan"
    vlmax = m.vlmax(sew=sew, lmul=lmul)
    full, rem = strip_shape(n, vlmax)
    n_strips = full + (1 if rem else 0)
    steps_full = inner_scan_steps(vlmax)
    steps_rem = inner_scan_steps(rem)
    total_steps = full * steps_full + steps_rem
    cg = m.codegen
    plan = plan_allocation(SEG_SCAN_PROFILE, lmul)

    m.count(Cat.SCALAR, cg.prologue(kernel))
    if plan.has_spills:
        spill = plan.frame_setup
        spill += full * plan.strip_cost(steps_full)
        if rem:
            spill += plan.strip_cost(steps_rem)
        m.count(Cat.SPILL, spill)
    # one-time: vsetvlmax + two broadcasts (identity, ones)
    m.count(Cat.VCONFIG, 1)
    m.count(Cat.VPERM, 2 * cg.op_cost())
    # per strip outer
    m.count(Cat.VCONFIG, n_strips)
    m.count(Cat.VMEM, n_strips * 3)  # two loads + store
    m.count(Cat.VMASK, n_strips * 2)  # vmsne + vmsbf
    m.count(Cat.VPERM, n_strips * cg.op_cost(dest_undisturbed=True))  # vmv.s.x
    # inner: vmsne + slideup(x) + masked combine + slideup(flags) + vor
    m.count(Cat.VMASK, total_steps * cg.op_cost())
    m.count(Cat.VPERM, total_steps * 2 * cg.op_cost(dest_undisturbed=True))
    m.count(Cat.VARITH, total_steps * (cg.op_cost(masked=True) + cg.op_cost()))
    m.count(Cat.SCALAR, total_steps * cg.inner_overhead(kernel))
    # carry apply (masked) + carry reload / exclusive post-pass
    m.count(Cat.VARITH, n_strips * cg.op_cost(masked=True))
    if exclusive:
        m.count(Cat.VPERM, n_strips * 3)  # vslidedown + vmv.x.s + vslide1up
        m.count(Cat.VARITH, n_strips * 1)  # vmerge with identity
        m.count(Cat.SCALAR, n_strips * 1)
    else:
        m.count(Cat.SCALAR, n_strips * 2)
    m.count(Cat.SCALAR, n_strips * cg.strip_overhead(kernel, 2))


def fast_seg_scan(m: RVVMachine, n: int, src: Pointer, head_flags: Pointer,
                  op: str | BinaryOp = PLUS, lmul: LMUL = LMUL.M1) -> None:
    """Fast path of the inclusive segmented ⊕-scan."""
    op = get_operator(op)
    n = int(n)
    if n:
        view = src.view(n)
        flags = head_flags.view(n)
        if op.name == "plus":
            view[:] = segmented_cumsum(view, flags)
        else:
            view[:] = segmented_reduce_numpy(view, flags, op.ufunc)
    _charge_seg_scan(m, n, lmul, exclusive=False, sew=sew_for_dtype(src.dtype))


def fast_seg_scan_exclusive(m: RVVMachine, n: int, src: Pointer, head_flags: Pointer,
                            op: str | BinaryOp = PLUS, lmul: LMUL = LMUL.M1) -> None:
    """Fast path of the exclusive segmented ⊕-scan."""
    op = get_operator(op)
    n = int(n)
    if n:
        view = src.view(n)
        flags = head_flags.view(n)
        if op.name == "plus":
            incl = segmented_cumsum(view, flags)
        else:
            incl = segmented_reduce_numpy(view, flags, op.ufunc)
        heads = flags.astype(bool).copy()
        heads[0] = True
        view[1:] = incl[:-1]
        view[heads] = _wrap(op.identity(src.dtype), src.dtype)
    _charge_seg_scan(m, n, lmul, exclusive=True, sew=sew_for_dtype(src.dtype))


# ---------------------------------------------------------------------------
# enumerate / permute / pack
# ---------------------------------------------------------------------------

def fast_enumerate(m: RVVMachine, n: int, flags: Pointer, dst: Pointer,
                   set_bit: bool, lmul: LMUL = LMUL.M1) -> int:
    """Fast path of enumerate (Listing 8 structure: vsetvl, vle, vmseq,
    viota, vadd, vse, vcpop per strip)."""
    n = int(n)
    count = 0
    if n:
        match = (flags.view(n) == flags.dtype.type(1 if set_bit else 0))
        excl = np.zeros(n, dtype=np.int64)
        if n > 1:
            np.cumsum(match[:-1], out=excl[1:])
        dst.view(n)[:] = excl.astype(dst.dtype)
        count = int(np.count_nonzero(match))
    vlmax = m.vlmax(sew=sew_for_dtype(flags.dtype), lmul=lmul)
    full, rem = strip_shape(n, vlmax)
    n_strips = full + (1 if rem else 0)
    plan = plan_allocation(ENUMERATE_PROFILE, lmul)
    cg = m.codegen
    m.count(Cat.SCALAR, cg.prologue("enumerate"))
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup + n_strips * plan.strip_cost(0))
    m.count(Cat.VCONFIG, n_strips)
    m.count(Cat.VMEM, n_strips * 2)
    m.count(Cat.VMASK, n_strips * 3)  # vmseq + viota + vcpop
    m.count(Cat.VARITH, n_strips * cg.op_cost())
    m.count(Cat.SCALAR, n_strips * (1 + cg.strip_overhead("enumerate", 2)))
    return count


def _charge_permute(m: RVVMachine, n: int, lmul: LMUL, gather: bool,
                    sew=None) -> None:
    if sew is None:
        sew = sew_for_dtype(np.uint32)
    vlmax = m.vlmax(sew=sew, lmul=lmul)
    full, rem = strip_shape(n, vlmax)
    n_strips = full + (1 if rem else 0)
    plan = plan_allocation(PERMUTE_PROFILE, lmul)
    cg = m.codegen
    m.count(Cat.SCALAR, cg.prologue("permute"))
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup + n_strips * plan.strip_cost(0))
    m.count(Cat.VCONFIG, n_strips)
    m.count(Cat.VMEM, n_strips * 2)  # index load + (data load | data store)
    m.count(Cat.VMEM_INDEXED, n_strips)
    m.count(Cat.VARITH, n_strips * cg.op_cost())  # index shift
    m.count(Cat.SCALAR, n_strips * cg.strip_overhead("permute", 2))


def fast_permute(m: RVVMachine, n: int, src: Pointer, dst: Pointer, index: Pointer,
                 lmul: LMUL = LMUL.M1) -> None:
    """Fast path of permute: ``dst[index[i]] = src[i]``."""
    n = int(n)
    if n:
        dst.view(n)[index.view(n).astype(np.int64)] = src.view(n)
    _charge_permute(m, n, lmul, gather=False, sew=sew_for_dtype(src.dtype))


def fast_back_permute(m: RVVMachine, n: int, src: Pointer, dst: Pointer,
                      index: Pointer, lmul: LMUL = LMUL.M1) -> None:
    """Fast path of back-permute: ``dst[i] = src[index[i]]``."""
    n = int(n)
    if n:
        dst.view(n)[:] = src.view(n)[index.view(n).astype(np.int64)]
    _charge_permute(m, n, lmul, gather=True, sew=sew_for_dtype(src.dtype))


#: Pack's data-dependent charge, per strip that holds at least one
#: survivor: the strict kernel re-narrows vl to the survivor count and
#: back (2 extra vsetvls) and issues the compacted store (1 extra
#: vse). Everything else in pack's profile is closed-form. This is the
#: single source for the variable term — shared by :func:`fast_pack`
#: and the ragged 2D batch path (via
#: :func:`repro.engine.specialize.pack_variable_items`).
PACK_VARIABLE = ((Cat.VCONFIG, 2), (Cat.VMEM, 1))


def pack_strip_survivors(keep: np.ndarray, vlmax: int) -> np.ndarray:
    """Strips holding at least one survivor, per row.

    ``keep`` is a boolean keep-mask over the trailing axis (1-D for a
    single call, ``[B, n]`` for a ragged batch); the return has the
    leading shape (a 0-d array for 1-D input). One ``reduceat`` per
    call — the same arithmetic for the eager fast path and the batch
    runner, so the data-dependent charge can never drift between
    tiers."""
    n = keep.shape[-1]
    if n == 0:
        return np.zeros(keep.shape[:-1], dtype=np.int64)
    starts = np.arange(0, n, vlmax)
    per_strip = np.add.reduceat(keep.astype(np.int64), starts, axis=-1)
    return np.count_nonzero(per_strip, axis=-1)


def fast_pack(m: RVVMachine, n: int, src: Pointer, dst: Pointer, flags: Pointer,
              lmul: LMUL = LMUL.M1) -> int:
    """Fast path of pack. The strict kernel's count is data-dependent
    (strips with zero survivors skip their store and two vsetvls), so
    the per-strip survivor counts are computed here with one
    ``reduceat``."""
    n = int(n)
    kept = 0
    vlmax = m.vlmax(sew=sew_for_dtype(src.dtype), lmul=lmul)
    full, rem = strip_shape(n, vlmax)
    n_strips = full + (1 if rem else 0)
    strips_with_survivors = 0
    if n:
        keep = flags.view(n).astype(bool)
        packed = src.view(n)[keep]
        kept = packed.size
        if kept:
            dst.view(kept)[:] = packed
        strips_with_survivors = int(pack_strip_survivors(keep, vlmax))
    plan = plan_allocation(PERMUTE_PROFILE, lmul)
    cg = m.codegen
    m.count(Cat.SCALAR, cg.prologue("permute"))
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup + n_strips * plan.strip_cost(0))
    m.count(Cat.VCONFIG, n_strips)
    m.count(Cat.VMEM, n_strips * 2)
    m.count(Cat.VMASK, n_strips * 2)  # vmsne + vcpop
    m.count(Cat.VPERM, n_strips)  # vcompress
    m.count(Cat.SCALAR, n_strips * (1 + cg.strip_overhead("permute", 3)))
    for cat, weight in PACK_VARIABLE:
        m.count(cat, weight * strips_with_survivors)
    return kept


# ---------------------------------------------------------------------------
# extended primitives (Blelloch's full elementwise class)
# ---------------------------------------------------------------------------

_NP_CMP = {
    "lt": np.less, "le": np.less_equal, "gt": np.greater,
    "ge": np.greater_equal, "eq": np.equal, "ne": np.not_equal,
}


@lru_cache(maxsize=4096)
def _strip_count(n: int, vlmax: int) -> int:
    full, rem = strip_shape(n, vlmax)
    return full + (1 if rem else 0)


def _strips(m: RVVMachine, n: int, lmul: LMUL, dtype=np.uint32) -> int:
    # cache on the (n, vlmax) ints only — machine objects never enter
    # the key
    return _strip_count(int(n), m.vlmax(sew=sew_for_dtype(dtype), lmul=lmul))


def _spill(m: RVVMachine, n_strips: int, lmul: LMUL) -> None:
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup + n_strips * plan.strip_cost(0))


def fast_cmp_vv(m: RVVMachine, which: str, n: int, a: Pointer, b: Pointer,
                out: Pointer, lmul: LMUL = LMUL.M1) -> None:
    """Fast path of the vector-vector flag compares."""
    n = int(n)
    if n:
        out.view(n)[:] = _NP_CMP[which](a.view(n), b.view(n)).astype(out.dtype)
    s = _strips(m, n, lmul, a.dtype)
    _spill(m, s, lmul)
    m.count(Cat.SCALAR, m.codegen.prologue("p_cmp"))
    m.count(Cat.VCONFIG, 1 + s)  # vsetvlmax + per strip
    m.count(Cat.VPERM, m.codegen.op_cost())  # zero broadcast
    m.count(Cat.VMEM, s * 3)
    m.count(Cat.VMASK, s)
    m.count(Cat.VARITH, s)  # vmerge
    m.count(Cat.SCALAR, s * m.codegen.strip_overhead("p_cmp", 3))


def fast_cmp_vx(m: RVVMachine, which: str, n: int, a: Pointer, x: int,
                out: Pointer, lmul: LMUL = LMUL.M1) -> None:
    """Fast path of the vector-scalar flag compares (``ge`` uses the
    vmsltu+vmnot idiom and costs one extra mask op per strip)."""
    n = int(n)
    if n:
        out.view(n)[:] = _NP_CMP[which](a.view(n), _wrap(x, a.dtype)).astype(out.dtype)
    s = _strips(m, n, lmul, a.dtype)
    _spill(m, s, lmul)
    m.count(Cat.SCALAR, m.codegen.prologue("p_cmp"))
    m.count(Cat.VCONFIG, 1 + s)
    m.count(Cat.VPERM, m.codegen.op_cost())
    m.count(Cat.VMEM, s * 2)
    m.count(Cat.VMASK, s * (2 if which == "ge" else 1))
    m.count(Cat.VARITH, s)
    m.count(Cat.SCALAR, s * m.codegen.strip_overhead("p_cmp", 2))


def fast_index(m: RVVMachine, n: int, out: Pointer, lmul: LMUL = LMUL.M1) -> None:
    """Fast path of p_index."""
    n = int(n)
    if n:
        out.view(n)[:] = np.arange(n, dtype=np.uint64).astype(out.dtype)
    s = _strips(m, n, lmul, out.dtype)
    _spill(m, s, lmul)
    m.count(Cat.SCALAR, m.codegen.prologue("p_index"))
    m.count(Cat.VCONFIG, s)
    m.count(Cat.VMASK, s)  # vid
    m.count(Cat.VARITH, s)
    m.count(Cat.VMEM, s)
    m.count(Cat.SCALAR, s * (1 + m.codegen.strip_overhead("p_index", 1)))


def fast_rsub(m: RVVMachine, n: int, a: Pointer, x: int, lmul: LMUL = LMUL.M1) -> None:
    """Fast path of p_rsub."""
    n = int(n)
    if n:
        view = a.view(n)
        np.subtract(_wrap(x, a.dtype), view, out=view)
    s = _strips(m, n, lmul, a.dtype)
    _spill(m, s, lmul)
    m.count(Cat.SCALAR, m.codegen.prologue("p_add"))
    m.count(Cat.VCONFIG, s)
    m.count(Cat.VMEM, s * 2)
    m.count(Cat.VARITH, s)
    m.count(Cat.SCALAR, s * m.codegen.strip_overhead("p_add", 1))


def fast_reduce(m: RVVMachine, n: int, a: Pointer, op: str | BinaryOp = PLUS,
                lmul: LMUL = LMUL.M1) -> int:
    """Fast path of reduce."""
    op = get_operator(op)
    n = int(n)
    acc = op.identity(a.dtype)
    if n:
        acc = int(op.ufunc.reduce(a.view(n), initial=_wrap(acc, a.dtype), dtype=a.dtype))
    s = _strips(m, n, lmul, a.dtype)
    _spill(m, s, lmul)
    m.count(Cat.SCALAR, m.codegen.prologue("p_reduce"))
    m.count(Cat.VCONFIG, s)
    m.count(Cat.VMEM, s)
    m.count(Cat.VREDUCE, s)
    m.count(Cat.SCALAR, s * m.codegen.strip_overhead("p_reduce", 1))
    return acc


def fast_shift1up(m: RVVMachine, n: int, src: Pointer, dst: Pointer, fill: int,
                  lmul: LMUL = LMUL.M1) -> None:
    """Fast path of shift1up."""
    n = int(n)
    if n:
        s_view = src.view(n)
        d_view = dst.view(n)
        # src and dst may alias; copy the source tail first
        tail = s_view[:-1].copy()
        d_view[1:] = tail
        d_view[0] = _wrap(fill, dst.dtype)
    s = _strips(m, n, lmul, src.dtype)
    _spill(m, s, lmul)
    m.count(Cat.SCALAR, m.codegen.prologue("p_add"))
    m.count(Cat.VCONFIG, s)
    m.count(Cat.VMEM, s * 2)
    m.count(Cat.VPERM, s)
    m.count(Cat.SCALAR, s * (2 + m.codegen.strip_overhead("p_add", 2)))


def fast_copy(m: RVVMachine, n: int, src: Pointer, dst: Pointer,
              lmul: LMUL = LMUL.M1) -> None:
    """Fast path of copy (a two-array elementwise pass without the
    compute op; no spill accounting, like the strict loop)."""
    n = int(n)
    m.count(Cat.SCALAR, m.codegen.prologue("p_add"))
    if n:
        dst.view(n)[:] = src.view(n)
    s = _strips(m, n, lmul, src.dtype)
    m.count(Cat.VCONFIG, s)
    m.count(Cat.VMEM, s * 2)
    m.count(Cat.SCALAR, s * m.codegen.strip_overhead("p_add", 2))

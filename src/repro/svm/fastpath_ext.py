"""Fast paths for the extended primitives (see fastpath.py for the
contract: identical results and per-category counts to the strict
kernels in :mod:`repro.svm.elementwise_ext`)."""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..rvv.allocation import ELEMENTWISE_PROFILE, plan_allocation
from ..rvv.counters import Cat
from ..rvv.machine import RVVMachine
from ..rvv.memory import Pointer
from ..rvv.types import LMUL, sew_for_dtype
from .fastpath import strip_shape, _wrap
from .operators import PLUS, BinaryOp, get_operator

__all__ = [
    "fast_cmp_vv", "fast_cmp_vx", "fast_index", "fast_rsub",
    "fast_reduce", "fast_shift1up",
]

_NP_CMP = {
    "lt": np.less, "le": np.less_equal, "gt": np.greater,
    "ge": np.greater_equal, "eq": np.equal, "ne": np.not_equal,
}


@lru_cache(maxsize=4096)
def _strip_count(n: int, vlmax: int) -> int:
    full, rem = strip_shape(n, vlmax)
    return full + (1 if rem else 0)


def _strips(m: RVVMachine, n: int, lmul: LMUL, dtype=np.uint32) -> int:
    # cache on the (n, vlmax) ints only — machine objects never enter
    # the key
    return _strip_count(int(n), m.vlmax(sew=sew_for_dtype(dtype), lmul=lmul))


def _spill(m: RVVMachine, n_strips: int, lmul: LMUL) -> None:
    plan = plan_allocation(ELEMENTWISE_PROFILE, lmul)
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup + n_strips * plan.strip_cost(0))


def fast_cmp_vv(m: RVVMachine, which: str, n: int, a: Pointer, b: Pointer,
                out: Pointer, lmul: LMUL = LMUL.M1) -> None:
    """Fast path of the vector-vector flag compares."""
    n = int(n)
    if n:
        out.view(n)[:] = _NP_CMP[which](a.view(n), b.view(n)).astype(out.dtype)
    s = _strips(m, n, lmul, a.dtype)
    _spill(m, s, lmul)
    m.count(Cat.SCALAR, m.codegen.prologue("p_cmp"))
    m.count(Cat.VCONFIG, 1 + s)  # vsetvlmax + per strip
    m.count(Cat.VPERM, m.codegen.op_cost())  # zero broadcast
    m.count(Cat.VMEM, s * 3)
    m.count(Cat.VMASK, s)
    m.count(Cat.VARITH, s)  # vmerge
    m.count(Cat.SCALAR, s * m.codegen.strip_overhead("p_cmp", 3))


def fast_cmp_vx(m: RVVMachine, which: str, n: int, a: Pointer, x: int,
                out: Pointer, lmul: LMUL = LMUL.M1) -> None:
    """Fast path of the vector-scalar flag compares (``ge`` uses the
    vmsltu+vmnot idiom and costs one extra mask op per strip)."""
    n = int(n)
    if n:
        out.view(n)[:] = _NP_CMP[which](a.view(n), _wrap(x, a.dtype)).astype(out.dtype)
    s = _strips(m, n, lmul, a.dtype)
    _spill(m, s, lmul)
    m.count(Cat.SCALAR, m.codegen.prologue("p_cmp"))
    m.count(Cat.VCONFIG, 1 + s)
    m.count(Cat.VPERM, m.codegen.op_cost())
    m.count(Cat.VMEM, s * 2)
    m.count(Cat.VMASK, s * (2 if which == "ge" else 1))
    m.count(Cat.VARITH, s)
    m.count(Cat.SCALAR, s * m.codegen.strip_overhead("p_cmp", 2))


def fast_index(m: RVVMachine, n: int, out: Pointer, lmul: LMUL = LMUL.M1) -> None:
    """Fast path of p_index."""
    n = int(n)
    if n:
        out.view(n)[:] = np.arange(n, dtype=np.uint64).astype(out.dtype)
    s = _strips(m, n, lmul, out.dtype)
    _spill(m, s, lmul)
    m.count(Cat.SCALAR, m.codegen.prologue("p_index"))
    m.count(Cat.VCONFIG, s)
    m.count(Cat.VMASK, s)  # vid
    m.count(Cat.VARITH, s)
    m.count(Cat.VMEM, s)
    m.count(Cat.SCALAR, s * (1 + m.codegen.strip_overhead("p_index", 1)))


def fast_rsub(m: RVVMachine, n: int, a: Pointer, x: int, lmul: LMUL = LMUL.M1) -> None:
    """Fast path of p_rsub."""
    n = int(n)
    if n:
        view = a.view(n)
        np.subtract(_wrap(x, a.dtype), view, out=view)
    s = _strips(m, n, lmul, a.dtype)
    _spill(m, s, lmul)
    m.count(Cat.SCALAR, m.codegen.prologue("p_add"))
    m.count(Cat.VCONFIG, s)
    m.count(Cat.VMEM, s * 2)
    m.count(Cat.VARITH, s)
    m.count(Cat.SCALAR, s * m.codegen.strip_overhead("p_add", 1))


def fast_reduce(m: RVVMachine, n: int, a: Pointer, op: str | BinaryOp = PLUS,
                lmul: LMUL = LMUL.M1) -> int:
    """Fast path of reduce."""
    op = get_operator(op)
    n = int(n)
    acc = op.identity(a.dtype)
    if n:
        acc = int(op.ufunc.reduce(a.view(n), initial=_wrap(acc, a.dtype), dtype=a.dtype))
    s = _strips(m, n, lmul, a.dtype)
    _spill(m, s, lmul)
    m.count(Cat.SCALAR, m.codegen.prologue("p_reduce"))
    m.count(Cat.VCONFIG, s)
    m.count(Cat.VMEM, s)
    m.count(Cat.VREDUCE, s)
    m.count(Cat.SCALAR, s * m.codegen.strip_overhead("p_reduce", 1))
    return acc


def fast_shift1up(m: RVVMachine, n: int, src: Pointer, dst: Pointer, fill: int,
                  lmul: LMUL = LMUL.M1) -> None:
    """Fast path of shift1up."""
    n = int(n)
    if n:
        s_view = src.view(n)
        d_view = dst.view(n)
        # src and dst may alias; copy the source tail first
        tail = s_view[:-1].copy()
        d_view[1:] = tail
        d_view[0] = _wrap(fill, dst.dtype)
    s = _strips(m, n, lmul, src.dtype)
    _spill(m, s, lmul)
    m.count(Cat.SCALAR, m.codegen.prologue("p_add"))
    m.count(Cat.VCONFIG, s)
    m.count(Cat.VMEM, s * 2)
    m.count(Cat.VPERM, s)
    m.count(Cat.SCALAR, s * (2 + m.codegen.strip_overhead("p_add", 2)))

"""DEPRECATED import shim — kernels folded into :mod:`repro.svm.fastpath`.

The fast-path split (``fastpath`` vs ``fastpath_ext``) disappeared
when the unified :mod:`repro.svm.opspec` registry became the single
source of truth per primitive: every closed-form fast kernel now
lives in :mod:`repro.svm.fastpath`, next to its registry entry.

This module re-exports the old names so external callers keep
working; new code should import from ``repro.svm.fastpath``. It will
be removed in a future release.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.svm.fastpath_ext is deprecated and will be removed in a "
    "future release; import from repro.svm.fastpath instead",
    DeprecationWarning,
    stacklevel=2,
)

from .fastpath import (  # noqa: F401,E402
    _NP_CMP,
    _spill,
    _strip_count,
    _strips,
    fast_cmp_vv,
    fast_cmp_vx,
    fast_index,
    fast_reduce,
    fast_rsub,
    fast_shift1up,
)

__all__ = [
    "fast_cmp_vv", "fast_cmp_vx", "fast_index", "fast_rsub",
    "fast_reduce", "fast_shift1up",
]

"""Raw gather/scatter helpers for mixed-length operands.

The permute primitives in :class:`~repro.svm.context.SVM` enforce
equal src/dst lengths (the paper's out-of-place permutation). The
underlying ``vluxei``/``vsuxei`` instructions are more general — they
address arbitrary offsets — and several applications (RLE decode, CSR
SpMV row-total extraction) need exactly that: scatter k values into an
n-element array, or gather k elements out of one. These helpers expose
that form with the same strict/fast duality and identical counts as
permute/back_permute.
"""

from __future__ import annotations

import numpy as np

from ..rvv.types import LMUL
from . import fastpath as fp
from . import permute_ops as pm
from .context import SVM, SVMArray

__all__ = ["gather_any", "scatter_any"]


def gather_any(svm: SVM, src: SVMArray, index: SVMArray,
               lmul: LMUL | None = None) -> SVMArray:
    """``out[i] = src[index[i]]`` for ``i < len(index)`` — src and
    index may have different lengths. Indices must lie in
    ``[0, len(src))``."""
    lmul = svm._lmul(lmul)
    dst = svm.empty(index.n, src.dtype)
    if svm._fast(index.n):
        if index.n:
            dst.view()[:] = src.view()[index.view().astype(np.int64)]
        fp._charge_permute(svm.machine, index.n, lmul, gather=True)
    else:
        pm.back_permute(svm.machine, index.n, src.ptr, dst.ptr, index.ptr, lmul)
    return dst


def scatter_any(svm: SVM, src: SVMArray, index: SVMArray, dst: SVMArray,
                lmul: LMUL | None = None) -> None:
    """``dst[index[i]] = src[i]`` for ``i < len(src)`` — dst may be
    longer than src. Indices must be unique and lie in
    ``[0, len(dst))``."""
    lmul = svm._lmul(lmul)
    if svm._fast(src.n):
        if src.n:
            dst.view()[index.view().astype(np.int64)[: src.n]] = src.view()[: src.n]
        fp._charge_permute(svm.machine, src.n, lmul, gather=False)
    else:
        pm.permute(svm.machine, src.n, src.ptr, dst.ptr, index.ptr, lmul)

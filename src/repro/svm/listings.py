"""Verbatim ports of the paper's listings, as executable documentation.

Each function here transcribes one listing line for line onto the
:class:`~repro.rvv.paper_api.PaperIntrinsics` bindings, keeping the
paper's variable names, control flow, and even its comments. They are
*reference* implementations: the production kernels in
:mod:`repro.svm` share their structure but add operator genericity,
LMUL parameterization, spill accounting, and codegen-model hooks.
``tests/svm/test_listings.py`` asserts every port computes exactly
what the production kernel computes.

Counting note: the ports charge only the intrinsics they execute (no
strip/prologue overhead models), so their counts equal the production
kernels' *vector* instruction streams under the ``ideal`` preset.
"""

from __future__ import annotations

import numpy as np

from ..rvv.machine import RVVMachine
from ..rvv.memory import Pointer
from ..rvv.paper_api import PaperIntrinsics

__all__ = [
    "listing1_vector_add",
    "listing4_p_add",
    "listing5_permute",
    "listing6_plus_scan",
    "listing8_enumerate",
    "listing10_seg_plus_scan",
]


def listing1_vector_add(m: RVVMachine, n: int, a: Pointer, b: Pointer) -> None:
    """Listing 1: strip-mined pairwise addition, result stored to a."""
    iv = PaperIntrinsics(m)
    while n > 0:
        vl = iv.vsetvl_e32m1(n)
        va = iv.vle32_v_u32m1(a, vl)
        vb = iv.vle32_v_u32m1(b, vl)
        va = iv.vadd(va, vb, vl)
        iv.vse32(a, va, vl)
        a += vl
        b += vl
        n -= vl


def listing4_p_add(m: RVVMachine, n: int, a: Pointer, x: int) -> None:
    """Listing 4: the p-add elementwise instruction (array += scalar)."""
    iv = PaperIntrinsics(m)
    while n > 0:
        vl = iv.vsetvl_e32m1(n)
        va = iv.vle32_v_u32m1(a, vl)
        va = iv.vadd(va, x, vl)
        iv.vse32(a, va, vl)
        a += vl
        n -= vl


def listing5_permute(m: RVVMachine, n: int, src: Pointer, dst: Pointer,
                     index: Pointer) -> None:
    """Listing 5: out-of-place permute through the indexed store."""
    iv = PaperIntrinsics(m)
    while n > 0:
        vl = iv.vsetvl_e32m1(n)
        vdata = iv.vle32_v_u32m1(src, vl)
        vindex = iv.vle32_v_u32m1(index, vl)
        # scale element indices to byte offsets for vsuxei
        voffset = iv.vsll(vindex, 2, vl)
        iv.vsuxei32_v_u32m1(dst, voffset, vdata, vl)
        src += vl
        index += vl
        n -= vl


def listing6_plus_scan(m: RVVMachine, n: int, src: Pointer) -> None:
    """Listing 6: the unsegmented plus-scan.

    Outer loop strip-mines; the inner loop is the in-register scan of
    Figure 1 (lg vl slideup-and-add steps); the carry rides in a
    scalar, refreshed from the last stored element.
    """
    iv = PaperIntrinsics(m)
    vlmax = iv.vsetvlmax_e32m1()
    carry = 0
    vec_zero = iv.vmv_v_x_u32m1(0, vlmax)
    while n > 0:
        vl = iv.vsetvl_e32m1(n)
        x = iv.vle32_v_u32m1(src, vl)
        offset = 1
        while offset < vl:
            y = iv.vslideup_vx_u32m1(_trim(vec_zero, vl), x, offset, vl)
            x = iv.vadd(x, y, vl)
            offset = offset << 1
        x = iv.vadd(x, carry, vl)
        iv.vse32(src, x, vl)
        carry = src[vl - 1]
        src += vl
        n -= vl


def listing8_enumerate(m: RVVMachine, n: int, flags: Pointer, dst: Pointer,
                       setBit: bool) -> int:
    """Listing 8: enumerate via viota + vcpop."""
    iv = PaperIntrinsics(m)
    count = 0  # count number of bits set
    while n > 0:
        vl = iv.vsetvl_e32m1(n)
        v = iv.vle32_v_u32m1(flags, vl)
        mask = iv.vmseq(v, 1 if setBit else 0, vl)
        v = iv.viota_m_u32m1(mask, vl)
        v = iv.vadd(v, count, vl)
        iv.vse32(dst, v, vl)
        count += iv.vcpop(mask, vl)
        flags += vl
        dst += vl
        n -= vl
    return count


def listing10_seg_plus_scan(m: RVVMachine, n: int, src: Pointer,
                            head_flags: Pointer) -> None:
    """Listing 10: the segmented plus-scan.

    The flags ride in a whole vector register because mask registers
    have no slideup (§5.2); ``vmsbf`` derives the carry mask; the
    forced head at lane 0 (``vmv.s.x``) makes every strip boundary a
    segment start for the in-register phase.
    """
    iv = PaperIntrinsics(m)
    vlmax = iv.vsetvlmax_e32m1()
    carry = 0
    vec_zero = iv.vmv_v_x_u32m1(0, vlmax)
    vec_one = iv.vmv_v_x_u32m1(1, vlmax)
    while n > 0:
        vl = iv.vsetvl_e32m1(n)
        x = iv.vle32_v_u32m1(src, vl)
        flags = iv.vle32_v_u32m1(head_flags, vl)
        mask = iv.vmsne_vx_u32m1_b32(flags, 0, vl)
        carry_mask = iv.vmsbf(mask, vl)
        flags = iv.vmv_s_x_u32m1(flags, 1, vl)
        offset = 1
        while offset < vl:
            mask = iv.vmsne_vx_u32m1_b32(flags, 1, vl)
            y = iv.vslideup_vx_u32m1(_trim(vec_zero, vl), x, offset, vl)
            x = iv.vadd_vv_u32m1_m(mask, x, x, y, vl)
            flags_slideup = iv.vslideup_vx_u32m1(_trim(vec_one, vl), flags,
                                                 offset, vl)
            flags = iv.vor_vv_u32m1(flags, flags_slideup, vl)
            offset = offset << 1
        x = iv.vadd_vx_u32m1_m(carry_mask, x, x, carry, vl)
        iv.vse32(src, x, vl)
        carry = src[vl - 1]
        src += vl
        head_flags += vl
        n -= vl


def _trim(v, vl):
    """Prefix view of a vlmax-wide register value (hardware reuses the
    same register at any active vl; no instruction)."""
    from ..rvv.value import VReg

    return v if v.vl == vl else VReg(v.data[:vl])

"""Binary operators for scans: ⊕, its identity, and its RVV mapping.

Blelloch defines scan over any associative binary operator with a left
identity. The paper implements ``+`` (plus-scan); this module
generalizes the same kernels over the full operator set of the scan
vector model (+, max, min, or, and, xor) by packaging, per operator:

* the NumPy ufunc (for semantics, fast path, and baselines),
* the identity element (what ``vslideup`` must slide in, and what an
  exclusive scan's first lane holds),
* the names of the vector-vector and vector-scalar intrinsics the
  strict kernels dispatch to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ConfigurationError

__all__ = ["BinaryOp", "PLUS", "MAX", "MIN", "OR", "AND", "XOR", "OPERATORS", "get_operator"]


@dataclass(frozen=True)
class BinaryOp:
    """An associative operator usable in scan/segmented-scan kernels.

    ``identity`` may depend on the element width (e.g. min's identity
    is the all-ones value of the dtype), so it is a callable of dtype.
    """

    name: str
    ufunc: np.ufunc
    identity_fn: Callable[[np.dtype], int]
    vv_intrinsic: str
    vx_intrinsic: str

    def identity(self, dtype: np.dtype) -> int:
        """The left identity I⊕ for elements of ``dtype``."""
        return self.identity_fn(np.dtype(dtype))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _zero(dtype: np.dtype) -> int:
    return 0


def _all_ones(dtype: np.dtype) -> int:
    return (1 << (dtype.itemsize * 8)) - 1


PLUS = BinaryOp("plus", np.add, _zero, "vadd_vv", "vadd_vx")
MAX = BinaryOp("max", np.maximum, _zero, "vmaxu_vv", "vmaxu_vx")
MIN = BinaryOp("min", np.minimum, _all_ones, "vminu_vv", "vminu_vx")
OR = BinaryOp("or", np.bitwise_or, _zero, "vor_vv", "vor_vx")
AND = BinaryOp("and", np.bitwise_and, _all_ones, "vand_vv", "vand_vx")
XOR = BinaryOp("xor", np.bitwise_xor, _zero, "vxor_vv", "vxor_vx")

OPERATORS: dict[str, BinaryOp] = {
    op.name: op for op in (PLUS, MAX, MIN, OR, AND, XOR)
}


def get_operator(op: str | BinaryOp) -> BinaryOp:
    """Resolve an operator by name (or pass a BinaryOp through).

    This sits on the hot path of every scan dispatch (strict strips,
    fast path, and charge profiles), so the common case — a name that
    is already registered — is a single dict probe with no exception
    machinery.
    """
    resolved = OPERATORS.get(op) if op.__class__ is str else None
    if resolved is not None:
        return resolved
    if isinstance(op, BinaryOp):
        return op
    raise ConfigurationError(
        f"unknown scan operator {op!r}; available: {sorted(OPERATORS)}"
    )

"""Unified primitive registry: one :class:`OpSpec` per SVM primitive.

Before this registry existed every primitive was declared five times —
a strict per-strip kernel (:mod:`repro.svm.elementwise` and friends), a
closed-form NumPy fast path (:mod:`repro.svm.fastpath`), a capture node
kind (:mod:`repro.engine.capture`), a fusion lane recipe
(:mod:`repro.engine.fuse` / :mod:`repro.engine.specialize`) and a
codegen emitter (:mod:`repro.engine.codegen`) — and keeping the five in
agreement was manual. Now each primitive is declared exactly once here;
every layer consumes the spec:

* :class:`repro.svm.context.SVM` primitive methods are thin registry
  dispatches (``spec.strict``/``spec.fast`` keyed by variant);
* :class:`repro.engine.capture.PlanBuilder` records the structured node
  kind named by ``spec.node_kinds`` — no primitive is opaque anymore;
* the fuser and specializer derive lane recipes from
  :data:`LANE_RECIPES` instead of per-kind if-ladders;
* the batch runner consults ``spec.batch2d`` / ``spec.data_dependent``
  / ``spec.ragged2d`` to pick the ``2d`` / ``ragged`` / ``loop`` path;
* ``repro ops`` prints the registry as a tier-support matrix and
  ``tools/check_opspec.py`` fails CI when a public primitive bypasses
  the registry or a spec is missing a kernel or charge profile.

Adding a primitive is now a one-file change: write the strict and fast
kernels, register an :class:`OpSpec`, and every tier — eager, capture,
fusion, specialization, codegen, batch — picks it up (see
``docs/opspec.md`` for the recipe).

This module must stay **engine-free**: the engine imports the registry
(for :data:`LANE_RECIPES` and batch metadata), so node kinds are plain
strings here and :mod:`repro.engine.ir` maps them to its ``Kind`` enum.

Calling conventions (normalized so the context can dispatch uniformly;
``m`` is the machine, pointers not SVMArrays):

===========  ==========================================================
variant      kernel signature
===========  ==========================================================
``vx``       ``fn(m, n, a, x, lmul)`` — in-place, scalar operand
``vv``       ``fn(m, n, a, b, lmul)`` — in-place, vector operand
``cmp``      ``fn(m, n, a, b_or_x, out, lmul)`` — flag vector out
``incl``     ``fn(m, n, src[, head_flags], op, lmul)`` — in-place scan
``excl``     same, exclusive
``""``       the op's own shape (see the kernel's docstring)
===========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..rvv.types import LMUL
from . import elementwise as ew
from . import enumerate_op as en
from . import fastpath as fp
from . import permute_ops as pm
from . import scan as sc
from . import segmented as sg
from .fastpath import _NP_CMP, _UFUNC_VX

__all__ = [
    "OpSpec",
    "OPSPECS",
    "ALIASES",
    "LANE_RECIPES",
    "get_spec",
    "iter_specs",
    "lane_ufunc",
    "support_matrix",
]


@dataclass(frozen=True)
class OpSpec:
    """Everything the five execution tiers need to know about one
    primitive.

    ``node_kinds`` maps a dispatch variant (``"vx"``, ``"vv"``,
    ``"incl"``, ``"excl"`` or ``""`` for single-variant ops) to the
    capture node kind's string value; ``strict``/``fast`` map the same
    variants to kernels. ``profile`` names the register-pressure charge
    profile in :data:`repro.rvv.allocation.PROFILES`. ``fuse_role`` is
    ``"lane"`` (strip-fusable elementwise work), ``"tail"`` (an
    inclusive scan that may close a fused group) or ``""`` (replayed
    eagerly between groups). ``batch2d`` marks ops the batch runner can
    vectorize across rows with one closed-form charge; ``data_dependent``
    marks charges that depend on values (pack's survivor count), which
    excludes the op from the plain 2D path. A data-dependent op must
    then declare one of two escape hatches: ``ragged2d=True`` (the
    batch runner has a masked ``axis=1`` kernel plus a per-row charge
    correction, so batches still execute as one 2D evaluation on the
    ``"ragged"`` path) or a non-empty ``loop_only`` sentence justifying
    why the per-row loop is the only sound execution
    (``tools/check_opspec.py`` gates this).
    ``future`` is the label of the :class:`ScalarFuture` the op returns
    under capture, ``composite`` marks derived ops that lower to other
    registered primitives (no kernels of their own), and ``profiled``
    selects the ops wrapped with an observability span.

    ``native`` declares that the op's node kinds lower to C in the
    compiled whole-plan tier (:mod:`repro.engine.native`); an op that
    cannot (pack: data-dependent output length) must set
    ``native=False`` explicitly — ``tools/check_opspec.py`` gates that
    the flag and the native emitter table agree in both directions.
    """

    name: str
    category: str
    node_kinds: Mapping[str, str] = field(default_factory=dict)
    strict: Mapping[str, Callable] = field(default_factory=dict)
    fast: Mapping[str, Callable] = field(default_factory=dict)
    profile: str = ""
    fuse_role: str = ""
    codegen: bool = True
    batch2d: bool = True
    data_dependent: bool = False
    ragged2d: bool = False
    loop_only: str = ""
    future: str | None = None
    native: bool = True
    composite: bool = False
    aliases: tuple[str, ...] = ()
    profiled: bool = True
    doc: str = ""

    @property
    def fusable(self) -> bool:
        return self.fuse_role in ("lane", "tail")


#: name → spec, in declaration order (the order drives ``repro ops``
#: and the instrumentation list in :mod:`repro.svm.context`).
OPSPECS: dict[str, OpSpec] = {}

#: alias → canonical name (``plus_scan`` → ``scan``, ...).
ALIASES: dict[str, str] = {}


def _register(spec: OpSpec) -> None:
    OPSPECS[spec.name] = spec
    for alias in spec.aliases:
        ALIASES[alias] = spec.name


def get_spec(name: str) -> OpSpec:
    """Look up a spec by canonical name or alias."""
    return OPSPECS[ALIASES.get(name, name)]


def iter_specs():
    """All specs in declaration order."""
    return iter(OPSPECS.values())


def support_matrix() -> list[dict]:
    """The tier-support matrix as JSON-ready dicts, one per primitive
    in declaration order — the machine-readable form of ``repro ops``
    (``repro ops --json``) and the serving daemon's ``ops`` request.

    ``fuse`` is the spec's role (``"lane"``/``"tail"``), ``"lowered"``
    for composites (they expand into other primitives at capture), or
    None for ops replayed eagerly between fused groups.
    """
    rows = []
    for spec in iter_specs():
        rows.append({
            "op": spec.name,
            "category": spec.category,
            "composite": spec.composite,
            "strict": bool(spec.strict),
            "fast": bool(spec.fast),
            "fuse": "lowered" if spec.composite else (spec.fuse_role or None),
            "codegen": bool(spec.codegen) and not spec.composite,
            "native": bool(spec.native) and not spec.composite,
            "batch2d": bool(spec.batch2d) and not spec.composite,
            "ragged2d": bool(spec.ragged2d) and not spec.composite,
            "data_dependent": spec.data_dependent,
            "aliases": list(spec.aliases),
        })
    return rows


# ---------------------------------------------------------------------------
# signature-normalizing fast-path closures
# ---------------------------------------------------------------------------

def _fast_vx(kernel: str):
    def fast(m, n, a, x, lmul=LMUL.M1):
        fp.fast_elementwise_vx(m, kernel, n, a, x, lmul)
    fast.__name__ = f"fast_{kernel}"
    return fast


def _fast_vv(kernel: str):
    def fast(m, n, a, b, lmul=LMUL.M1):
        fp.fast_elementwise_vv(m, kernel, n, a, b, lmul)
    fast.__name__ = f"fast_{kernel}_vv"
    return fast


def _fast_cmp_vv(which: str):
    def fast(m, n, a, b, out, lmul=LMUL.M1):
        fp.fast_cmp_vv(m, which, n, a, b, out, lmul)
    fast.__name__ = f"fast_p_{which}"
    return fast


def _fast_cmp_vx(which: str):
    def fast(m, n, a, x, out, lmul=LMUL.M1):
        fp.fast_cmp_vx(m, which, n, a, x, out, lmul)
    fast.__name__ = f"fast_p_{which}_vx"
    return fast


# ---------------------------------------------------------------------------
# the registry (declaration order == the profiled-method order)
# ---------------------------------------------------------------------------

_EW_DOCS = {
    "p_add": "p-add: ``a += x`` (scalar broadcast or elementwise vector).",
    "p_sub": "p-sub: ``a -= x``.",
    "p_mul": "p-mul: ``a *= x`` (low product).",
    "p_and": "p-and: ``a &= x``.",
    "p_or": "p-or: ``a |= x``.",
    "p_xor": "p-xor: ``a ^= x``.",
    "p_max": "p-max: ``a = max(a, x)`` (unsigned).",
    "p_min": "p-min: ``a = min(a, x)`` (unsigned).",
}

for _name, _doc in _EW_DOCS.items():
    _register(OpSpec(
        name=_name,
        category="elementwise",
        node_kinds={"vx": "ew_vx", "vv": "ew_vv"},
        strict={"vx": getattr(ew, _name), "vv": getattr(ew, f"{_name}_vv")},
        fast={"vx": _fast_vx(_name), "vv": _fast_vv(_name)},
        profile="elementwise",
        fuse_role="lane",
        doc=_doc,
    ))
del _name, _doc

for _name, _doc in (
    ("p_srl", "p-srl: ``a >>= x`` (logical; scalar shift only)."),
    ("p_sll", "p-sll: ``a <<= x`` (scalar shift only)."),
):
    _register(OpSpec(
        name=_name,
        category="elementwise",
        node_kinds={"vx": "ew_vx"},
        strict={"vx": getattr(ew, _name)},
        fast={"vx": _fast_vx(_name)},
        profile="elementwise",
        fuse_role="lane",
        doc=_doc,
    ))
del _name, _doc

_register(OpSpec(
    name="p_select",
    category="elementwise",
    node_kinds={"": "select"},
    strict={"": ew.p_select},
    fast={"": fp.fast_p_select},
    profile="elementwise",
    doc="p-select: ``b[i] = a[i] where flags[i] else b[i]``.",
))

_register(OpSpec(
    name="get_flags",
    category="elementwise",
    node_kinds={"": "get_flags"},
    strict={"": ew.get_flags},
    fast={"": fp.fast_get_flags},
    profile="elementwise",
    fuse_role="lane",
    doc="Extract bit ``bit`` of each element into a 0/1 flag vector.",
))

_CMP_DOCS = {
    "lt": "Flag compare: ``out[i] = (a[i] < b[i or scalar])`` (unsigned).",
    "le": "Flag compare: ``a <= b``.",
    "gt": "Flag compare: ``a > b``.",
    "ge": "Flag compare: ``a >= b``.",
    "eq": "Flag compare: ``a == b``.",
    "ne": "Flag compare: ``a != b``.",
}

for _which, _doc in _CMP_DOCS.items():
    _register(OpSpec(
        name=f"p_{_which}",
        category="elementwise",
        node_kinds={"vx": "cmp_vx", "vv": "cmp_vv"},
        strict={"vv": getattr(ew, f"p_{_which}"),
                "vx": getattr(ew, f"p_{_which}_vx")},
        fast={"vv": _fast_cmp_vv(_which), "vx": _fast_cmp_vx(_which)},
        profile="elementwise",
        fuse_role="lane",
        doc=_doc,
    ))
del _which, _doc

_register(OpSpec(
    name="scan",
    category="scan",
    node_kinds={"incl": "scan", "excl": "scan"},
    strict={"incl": sc.scan, "excl": sc.scan_exclusive},
    fast={"incl": fp.fast_scan, "excl": fp.fast_scan_exclusive},
    profile="plus_scan",
    fuse_role="tail",  # inclusive scans close a fused group; exclusive replays
    aliases=("plus_scan", "scan_exclusive"),
    doc="⊕-scan of ``a`` in place (inclusive by default).",
))

_register(OpSpec(
    name="seg_scan",
    category="scan",
    node_kinds={"incl": "seg_scan", "excl": "seg_scan"},
    strict={"incl": sg.seg_scan, "excl": sg.seg_scan_exclusive},
    fast={"incl": fp.fast_seg_scan, "excl": fp.fast_seg_scan_exclusive},
    profile="seg_scan",
    aliases=("seg_plus_scan",),
    doc="Segmented ⊕-scan of ``a`` under ``head_flags``, in place.",
))

_register(OpSpec(
    name="permute",
    category="permutation",
    node_kinds={"": "permute"},
    strict={"": pm.permute},
    fast={"": fp.fast_permute},
    profile="permute",
    doc="Out-of-place permute: ``out[index[i]] = src[i]`` (Listing 5).",
))

_register(OpSpec(
    name="back_permute",
    category="permutation",
    node_kinds={"": "back_permute"},
    strict={"": pm.back_permute},
    fast={"": fp.fast_back_permute},
    profile="permute",
    doc="Gather: ``out[i] = src[index[i]]``.",
))

_register(OpSpec(
    name="pack",
    category="permutation",
    node_kinds={"": "pack"},
    strict={"": pm.pack},
    fast={"": fp.fast_pack},
    profile="permute",
    batch2d=False,        # charge depends on the survivor distribution
    data_dependent=True,
    ragged2d=True,        # masked axis=1 kernel + per-row charge items
    native=False,         # data-dependent output length: no C lowering
    future="pack.kept",
    doc="Stream compaction: keep flagged elements, preserving order.",
))

_register(OpSpec(
    name="enumerate",
    category="derived",
    node_kinds={"": "enumerate"},
    strict={"": en.enumerate_op},
    fast={"": fp.fast_enumerate},
    profile="enumerate",
    future="enumerate.count",
    doc="Enumerate (Listing 8): rank positions whose flag equals "
        "``set_bit``.",
))

_register(OpSpec(
    name="index_array",
    category="elementwise",
    node_kinds={"": "index"},
    strict={"": ew.p_index},
    fast={"": fp.fast_index},
    profile="elementwise",
    doc="Blelloch's index primitive: the vector ``[0, 1, ..., n-1]``.",
))

_register(OpSpec(
    name="p_rsub",
    category="elementwise",
    node_kinds={"vx": "ew_vx"},
    strict={"vx": ew.p_rsub},
    fast={"vx": fp.fast_rsub},
    profile="elementwise",
    fuse_role="lane",
    doc="Reverse subtract in place: ``a[i] = x - a[i]``.",
))

_register(OpSpec(
    name="reduce",
    category="scan",
    node_kinds={"": "reduce"},
    strict={"": ew.reduce},
    fast={"": fp.fast_reduce},
    profile="elementwise",
    future="reduce",
    doc="Full ⊕-reduction of ``a`` to a scalar.",
))

_register(OpSpec(
    name="shift1up",
    category="permutation",
    node_kinds={"": "shift1up"},
    strict={"": ew.shift1up},
    fast={"": fp.fast_shift1up},
    profile="elementwise",
    doc="Whole-array shift by one lane: ``out[0] = fill``, "
        "``out[i] = src[i-1]``.",
))

_register(OpSpec(
    name="copy",
    category="permutation",
    node_kinds={"": "copy"},
    strict={"": ew.copy},
    fast={"": fp.fast_copy},
    profile="elementwise",
    doc="Vector memcpy: a strip-mined vle/vse loop.",
))

# ---- composites: lower to other registered primitives --------------------

_register(OpSpec(
    name="reverse",
    category="derived",
    composite=True,
    codegen=False,
    profiled=False,
    doc="Reverse via index_array + p_rsub + back_permute.",
))

_register(OpSpec(
    name="split",
    category="derived",
    composite=True,
    codegen=False,
    profiled=False,
    doc="Split (Listing 7): stable partition by flags via enumerate ×2 "
        "+ p_add + p_select + permute.",
))


# ---------------------------------------------------------------------------
# fusion lane recipes (consumed by repro.engine.fuse / .specialize)
# ---------------------------------------------------------------------------

#: node-kind value → tuple of ``(lane_kind, op_override, const)``: the
#: strip lanes one captured node contributes to a fused group. ``op``
#: defaults to the node's own op; ``const`` is a structural scalar
#: baked at specialization time (get_flags' ``& 1``).
LANE_RECIPES: dict[str, tuple[tuple[str, str | None, int | None], ...]] = {
    "ew_vx": (("vx", None, None),),
    "ew_vv": (("vv", None, None),),
    "cmp_vx": (("cmp_vx", None, None),),
    "cmp_vv": (("cmp_vv", None, None),),
    "get_flags": (("vx", "p_srl", None), ("vx", "p_and", 1)),
}


def lane_ufunc(lane_kind: str, op: str):
    """The NumPy kernel applied per strip for one lane of a fused
    group — compare lanes resolve through :data:`_NP_CMP`, arithmetic
    lanes through :data:`_UFUNC_VX`."""
    if lane_kind.startswith("cmp"):
        return _NP_CMP[op]
    return _UFUNC_VX[op]

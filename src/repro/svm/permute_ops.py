"""Permutation primitive instructions (§4.2) — strict kernels.

The paper supports *out-of-place* permutation (in-place would create
data dependencies between lanes) via RVV's indexed unordered store
``vsuxei`` (Listing 5): each loaded element is scattered to
``dst + index[i]``. Element indices scale to byte offsets with one
``vsll`` per strip.

``back_permute`` (Blelloch's inverse form, a gather) and ``pack`` (a
masked compress to the front) complete the permutation class.
"""

from __future__ import annotations

from ..rvv.allocation import PERMUTE_PROFILE, plan_allocation
from ..rvv.counters import Cat
from ..rvv.intrinsics import arith, compare, loadstore, mask as maskops
from ..rvv.intrinsics.permutation import vcompress_vm
from ..rvv.machine import RVVMachine
from ..rvv.memory import Pointer
from ..rvv.types import LMUL, sew_for_dtype

__all__ = ["permute", "back_permute", "pack"]


def _index_shift(dtype) -> int:
    """lg2 of the element size: index -> byte offset shift amount."""
    return {1: 0, 2: 1, 4: 2, 8: 3}[dtype.itemsize]


def permute(m: RVVMachine, n: int, src: Pointer, dst: Pointer, index: Pointer,
            lmul: LMUL = LMUL.M1) -> None:
    """Out-of-place permute (Listing 5): ``dst[index[i]] = src[i]``.

    ``index`` must be a permutation of ``[0, n)`` for a meaningful
    result; duplicate destinations follow ``vsuxei``'s unordered-store
    semantics (one of the writers wins).
    """
    sew = sew_for_dtype(src.dtype)
    plan = plan_allocation(PERMUTE_PROFILE, lmul)
    m.prologue("permute")
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        vdata = loadstore.vle(m, src, vl)
        vindex = loadstore.vle(m, index, vl)
        voffset = arith.vsll_vx(m, vindex, _index_shift(dst.dtype), vl)
        loadstore.vsuxei(m, dst, voffset, vdata, vl)
        src += vl
        index += vl
        n -= vl
        m.strip_overhead("permute", n_arrays=2)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))


def back_permute(m: RVVMachine, n: int, src: Pointer, dst: Pointer, index: Pointer,
                 lmul: LMUL = LMUL.M1) -> None:
    """Inverse permute (gather): ``dst[i] = src[index[i]]`` via the
    indexed load ``vluxei``."""
    sew = sew_for_dtype(src.dtype)
    plan = plan_allocation(PERMUTE_PROFILE, lmul)
    m.prologue("permute")
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        vindex = loadstore.vle(m, index, vl)
        voffset = arith.vsll_vx(m, vindex, _index_shift(src.dtype), vl)
        vdata = loadstore.vluxei(m, src, voffset, vl)
        loadstore.vse(m, dst, vdata, vl)
        dst += vl
        index += vl
        n -= vl
        m.strip_overhead("permute", n_arrays=2)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))


def pack(m: RVVMachine, n: int, src: Pointer, dst: Pointer, flags: Pointer,
         lmul: LMUL = LMUL.M1) -> int:
    """Pack (stream compaction): copy elements whose flag is set to the
    front of ``dst``, preserving order; returns how many were kept.

    Implemented with ``vcompress`` per strip plus a moving destination
    pointer — the masked lanes of each strip land contiguously after
    the previous strip's survivors.
    """
    sew = sew_for_dtype(src.dtype)
    plan = plan_allocation(PERMUTE_PROFILE, lmul)
    m.prologue("permute")
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    kept = 0
    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        vdata = loadstore.vle(m, src, vl)
        vflags = loadstore.vle(m, flags, vl)
        mask = compare.vmsne_vx(m, vflags, 0, vl)
        packed = vcompress_vm(m, mask, vdata, vl)
        strip_kept = maskops.vcpop_m(m, mask, vl)
        if strip_kept:
            # store only the packed survivors (vse with vl=strip_kept
            # after a vsetvl; we charge the extra vsetvl)
            m.vsetvl(strip_kept, sew, lmul)
            loadstore.vse(m, dst, type(packed)(packed.data[:strip_kept]), strip_kept)
            m.vsetvl(min(n, m.vlmax(sew, lmul)), sew, lmul)
        dst += strip_kept
        kept += strip_kept
        m.scalar(1)
        src += vl
        flags += vl
        n -= vl
        m.strip_overhead("permute", n_arrays=3)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(0))
    return kept

"""Unsegmented scan primitives (§4.3) — strict strip-mined kernels.

The scan kernel (a port of Listing 6) has two nested loops:

* the outer strip-mining loop walks the array vlmax elements at a time;
* the inner loop performs the *in-register scan* of Figure 1 —
  ``ceil(lg vl)`` slideup-and-combine steps, doubling the offset each
  time. ``vslideup`` slides the operator's identity into the vacated
  low lanes, so lanes below the offset combine with a no-op.

Cross-strip state is a scalar ``carry``: the running ⊕-total of all
elements processed so far, applied to every lane of the next strip and
refreshed by reading the last stored element (Listing 6's
``carry = src[vl - 1]``).
"""

from __future__ import annotations

from functools import lru_cache

from ..rvv.allocation import PLUS_SCAN_PROFILE, plan_allocation
from ..rvv.counters import Cat
from ..rvv.intrinsics import arith, loadstore, move, permutation
from ..rvv.machine import RVVMachine
from ..rvv.memory import Pointer
from ..rvv.types import LMUL, sew_for_dtype
from ..rvv.value import VReg
from .operators import PLUS, BinaryOp, get_operator

__all__ = ["plus_scan", "scan", "scan_exclusive", "inner_scan_steps"]

_VV = {
    "plus": arith.vadd_vv,
    "max": arith.vmaxu_vv,
    "min": arith.vminu_vv,
    "or": arith.vor_vv,
    "and": arith.vand_vv,
    "xor": arith.vxor_vv,
}
_VX = {
    "plus": arith.vadd_vx,
    "max": arith.vmaxu_vx,
    "min": arith.vminu_vx,
    "or": arith.vor_vx,
    "and": arith.vand_vx,
    "xor": arith.vxor_vx,
}


@lru_cache(maxsize=None)
def inner_scan_steps(vl: int) -> int:
    """Number of slideup-and-combine iterations the in-register scan
    needs for ``vl`` elements: offsets 1, 2, 4, ... < vl, i.e.
    ``ceil(lg vl)`` (Figure 1 shows 3 steps for 8 elements).

    Memoized: the closed-form charge profiles call this for the same
    handful of vl values on every plan execution.
    """
    steps = 0
    offset = 1
    while offset < vl:
        steps += 1
        offset <<= 1
    return steps


def _trim(v: VReg, vl: int) -> VReg:
    """View the first ``vl`` lanes of a vlmax-wide constant value.

    Hardware reuses the same register across strips of different vl;
    taking the prefix view costs no instruction.
    """
    return v if v.vl == vl else VReg(v.data[:vl])


def scan(m: RVVMachine, n: int, src: Pointer, op: str | BinaryOp = PLUS,
         lmul: LMUL = LMUL.M1) -> None:
    """Inclusive ⊕-scan of ``n`` elements in place (Listing 6
    generalized over the operator)."""
    op = get_operator(op)
    vv = _VV[op.name]
    vx = _VX[op.name]
    sew = sew_for_dtype(src.dtype)
    kernel = "plus_scan"  # calibration applies to the common structure
    plan = plan_allocation(PLUS_SCAN_PROFILE, lmul)

    m.prologue(kernel)
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    vlmax = m.vsetvlmax(sew, lmul)
    identity = op.identity(src.dtype)
    vec_identity = move.vmv_v_x(m, identity, vlmax, dtype=src.dtype)
    carry = identity

    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        x = loadstore.vle(m, src, vl)
        ident_vl = _trim(vec_identity, vl)
        offset = 1
        while offset < vl:
            y = permutation.vslideup_vx(m, ident_vl, x, offset, vl)
            x = vv(m, x, y, vl)
            m.inner_overhead(kernel)
            offset <<= 1
        x = vx(m, x, carry, vl)
        loadstore.vse(m, src, x, vl)
        carry = src[vl - 1]
        m.scalar(2)  # carry reload: address computation + lw
        src += vl
        n -= vl
        m.strip_overhead(kernel, n_arrays=1)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(inner_scan_steps(vl)))


def plus_scan(m: RVVMachine, n: int, src: Pointer, lmul: LMUL = LMUL.M1) -> None:
    """The paper's plus-scan (Listing 6, measured in Table 3):
    inclusive all-prefix-sums in place."""
    scan(m, n, src, PLUS, lmul)


def scan_exclusive(m: RVVMachine, n: int, src: Pointer, op: str | BinaryOp = PLUS,
                   lmul: LMUL = LMUL.M1) -> None:
    """Exclusive ⊕-scan in place: lane i receives the ⊕ of all
    *preceding* elements, lane 0 the identity I⊕ (Blelloch's original
    scan definition).

    Implementation: run the in-register inclusive scan, then
    ``vslide1up`` the carry into lane 0 — the carry entering a strip
    *is* the exclusive prefix of its first element. The next carry is
    the inclusive total of the strip, read from the pre-slide value's
    last lane (one ``vslidedown`` + ``vmv.x.s``, since the stored
    memory now holds exclusive values).
    """
    op = get_operator(op)
    vv = _VV[op.name]
    vx = _VX[op.name]
    sew = sew_for_dtype(src.dtype)
    kernel = "plus_scan"
    plan = plan_allocation(PLUS_SCAN_PROFILE, lmul)

    m.prologue(kernel)
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    vlmax = m.vsetvlmax(sew, lmul)
    identity = op.identity(src.dtype)
    vec_identity = move.vmv_v_x(m, identity, vlmax, dtype=src.dtype)
    carry = identity

    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        x = loadstore.vle(m, src, vl)
        ident_vl = _trim(vec_identity, vl)
        offset = 1
        while offset < vl:
            y = permutation.vslideup_vx(m, ident_vl, x, offset, vl)
            x = vv(m, x, y, vl)
            m.inner_overhead(kernel)
            offset <<= 1
        # inclusive-with-carry total of this strip, before shifting
        last = permutation.vslidedown_vx(m, x, vl - 1, vl)
        strip_total = move.vmv_x_s(m, last)
        excl = permutation.vslide1up_vx(m, x, identity, vl)
        excl = vx(m, excl, carry, vl)
        loadstore.vse(m, src, excl, vl)
        new_carry = op.ufunc(
            src.dtype.type(carry), src.dtype.type(strip_total)
        )
        carry = int(new_carry)
        m.scalar(1)  # scalar combine of carry with the strip total
        src += vl
        n -= vl
        m.strip_overhead(kernel, n_arrays=1)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(inner_scan_steps(vl)))

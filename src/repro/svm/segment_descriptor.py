"""Segment descriptors: head-flags, lengths, and head-pointers (§5).

Blelloch suggests three equivalent representations of a segmentation;
the paper picks *head-flags* "since it can be mapped to RVV
instructions more directly without additional interpretation". This
module provides all three with validated conversions, so applications
can use whichever is natural (e.g. the flat quicksort maintains
lengths, CSR SpMV starts from row pointers) and lower to head-flags at
the kernel boundary.

Conventions (matching the paper and Blelloch):

* head-flags: ``flags[i] == 1`` iff element i starts a segment.
  Element 0 starting a segment is implicit — kernels treat the array
  start as a segment head whether or not ``flags[0]`` is set, exactly
  as Listing 10 forces a head at every strip start with ``vmv.s.x``.
* lengths: positive segment lengths summing to n. Zero-length segments
  cannot be expressed in head-flags (two heads cannot share an index),
  so conversion rejects them — a documented representational limit.
* head-pointers: strictly increasing start indices, beginning with 0.
"""

from __future__ import annotations

import numpy as np

from ..errors import SegmentError

__all__ = [
    "validate_head_flags",
    "lengths_to_head_flags",
    "head_flags_to_lengths",
    "head_pointers_to_head_flags",
    "head_flags_to_head_pointers",
    "segment_count",
    "segment_ids",
]


def validate_head_flags(flags: np.ndarray) -> np.ndarray:
    """Check a head-flag vector (only 0/1 values) and return it as an
    integer array."""
    flags = np.asarray(flags)
    if flags.ndim != 1:
        raise SegmentError(f"head-flags must be 1-D, got shape {flags.shape}")
    if flags.size and not np.isin(flags, (0, 1)).all():
        raise SegmentError("head-flags may contain only 0 and 1")
    return flags


def lengths_to_head_flags(lengths: np.ndarray, n: int | None = None) -> np.ndarray:
    """Convert a lengths descriptor to head-flags.

    >>> lengths_to_head_flags([2, 3]).tolist()
    [1, 0, 1, 0, 0]
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.ndim != 1:
        raise SegmentError(f"lengths must be 1-D, got shape {lengths.shape}")
    if lengths.size and (lengths <= 0).any():
        raise SegmentError(
            "segment lengths must be positive (zero-length segments are not"
            " representable as head-flags)"
        )
    total = int(lengths.sum())
    if n is not None and total != n:
        raise SegmentError(f"segment lengths sum to {total}, expected {n}")
    flags = np.zeros(total, dtype=np.uint32)
    if lengths.size:
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        flags[starts] = 1
    return flags


def head_flags_to_lengths(flags: np.ndarray) -> np.ndarray:
    """Convert head-flags to a lengths descriptor (element 0 implicitly
    heads a segment).

    >>> head_flags_to_lengths([0, 0, 1, 0, 1]).tolist()
    [2, 2, 1]
    """
    flags = validate_head_flags(flags)
    if flags.size == 0:
        return np.empty(0, dtype=np.int64)
    heads = np.flatnonzero(flags.astype(bool))
    if heads.size == 0 or heads[0] != 0:
        heads = np.concatenate(([0], heads))
    return np.diff(np.concatenate((heads, [flags.size])))


def head_pointers_to_head_flags(pointers: np.ndarray, n: int) -> np.ndarray:
    """Convert strictly-increasing start indices to head-flags over
    ``n`` elements."""
    pointers = np.asarray(pointers, dtype=np.int64)
    if pointers.ndim != 1:
        raise SegmentError(f"head-pointers must be 1-D, got shape {pointers.shape}")
    if pointers.size:
        if pointers[0] != 0:
            raise SegmentError("the first head-pointer must be 0")
        if (np.diff(pointers) <= 0).any():
            raise SegmentError("head-pointers must be strictly increasing")
        if pointers[-1] >= n > 0:
            pass  # last segment may start at any valid index
        if (pointers >= n).any() or (pointers < 0).any():
            raise SegmentError(f"head-pointers must lie in [0, {n})")
    flags = np.zeros(n, dtype=np.uint32)
    flags[pointers] = 1
    return flags


def head_flags_to_head_pointers(flags: np.ndarray) -> np.ndarray:
    """Convert head-flags to start indices (element 0 implicit)."""
    flags = validate_head_flags(flags)
    if flags.size == 0:
        return np.empty(0, dtype=np.int64)
    heads = np.flatnonzero(flags.astype(bool))
    if heads.size == 0 or heads[0] != 0:
        heads = np.concatenate(([0], heads))
    return heads


def segment_count(flags: np.ndarray) -> int:
    """Number of segments a head-flag vector describes."""
    return head_flags_to_head_pointers(flags).size


def segment_ids(flags: np.ndarray) -> np.ndarray:
    """Segment index of every element (0-based), useful for oracles.

    >>> segment_ids([1, 0, 1, 0, 0]).tolist()
    [0, 0, 1, 1, 1]
    """
    flags = validate_head_flags(flags)
    if flags.size == 0:
        return np.empty(0, dtype=np.int64)
    starts = flags.astype(bool).copy()
    starts[0] = True
    return np.cumsum(starts) - 1

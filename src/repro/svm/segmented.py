"""Segmented scan primitives (§5) — strict strip-mined kernels.

This is the paper's centerpiece: segmented scan on RVV with head-flags
as the segment descriptor (Listing 10). Two ideas make it work:

1. **In-register segmented scan** (Figure 4): the unsegmented
   slideup-and-combine sequence runs unchanged, but each combine is
   *masked* so lanes whose window crosses a segment head do not absorb.
   The mask is derived by scanning the flags alongside the data:
   ``flags |= slideup(flags)`` accumulates "is there a head in my
   window", and lanes with an accumulated flag are blocked. RVV mask
   registers have no slideup, so the flags ride in a full vector
   register (§5.2) — that extra live value is exactly what pushes the
   kernel's register profile to 7 values and triggers spilling at
   LMUL=8 (Table 5).

2. **Carry masking**: the running carry from the previous strip may
   only flow into lanes before the strip's first head flag. ``vmsbf``
   (set-before-first) produces that lane set in one instruction from
   the head-flag mask (Listing 10, line 15).
"""

from __future__ import annotations

from ..rvv.allocation import SEG_SCAN_PROFILE, plan_allocation
from ..rvv.counters import Cat
from ..rvv.intrinsics import arith, compare, loadstore, mask as maskops, move, permutation
from ..rvv.machine import RVVMachine
from ..rvv.memory import Pointer
from ..rvv.types import LMUL, sew_for_dtype
from ..rvv.value import VReg
from .operators import PLUS, BinaryOp, get_operator
from .scan import inner_scan_steps

__all__ = ["seg_plus_scan", "seg_scan", "seg_scan_exclusive"]

_VV = {
    "plus": arith.vadd_vv,
    "max": arith.vmaxu_vv,
    "min": arith.vminu_vv,
    "or": arith.vor_vv,
    "and": arith.vand_vv,
    "xor": arith.vxor_vv,
}
_VX = {
    "plus": arith.vadd_vx,
    "max": arith.vmaxu_vx,
    "min": arith.vminu_vx,
    "or": arith.vor_vx,
    "and": arith.vand_vx,
    "xor": arith.vxor_vx,
}


def _trim(v: VReg, vl: int) -> VReg:
    """Prefix view of a vlmax-wide constant (no instruction; see
    :func:`repro.svm.scan._trim`)."""
    return v if v.vl == vl else VReg(v.data[:vl])


def seg_scan(m: RVVMachine, n: int, src: Pointer, head_flags: Pointer,
             op: str | BinaryOp = PLUS, lmul: LMUL = LMUL.M1) -> None:
    """Inclusive segmented ⊕-scan of ``n`` elements in place
    (Listing 10 generalized over the operator).

    ``head_flags`` is a 0/1 vector; flag 1 marks the first element of a
    segment (element 0 implicitly starts one).
    """
    op = get_operator(op)
    vv = _VV[op.name]
    vx = _VX[op.name]
    sew = sew_for_dtype(src.dtype)
    kernel = "seg_plus_scan"
    plan = plan_allocation(SEG_SCAN_PROFILE, lmul)

    m.prologue(kernel)
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    vlmax = m.vsetvlmax(sew, lmul)
    identity = op.identity(src.dtype)
    vec_identity = move.vmv_v_x(m, identity, vlmax, dtype=src.dtype)
    vec_one = move.vmv_v_x(m, 1, vlmax, dtype=head_flags.dtype)
    carry = identity

    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        x = loadstore.vle(m, src, vl)
        flags = loadstore.vle(m, head_flags, vl)
        # lanes before the first head still belong to the previous
        # strip's running segment: they take the carry
        head_mask = compare.vmsne_vx(m, flags, 0, vl)
        carry_mask = maskops.vmsbf_m(m, head_mask, vl)
        # the strip boundary itself acts as a head for the in-register
        # scan (cross-strip combining is the carry's job)
        flags = move.vmv_s_x(m, flags, 1, vl)
        ident_vl = _trim(vec_identity, vl)
        one_vl = _trim(vec_one, vl)
        offset = 1
        while offset < vl:
            # lanes whose accumulated flag is still 0 may absorb
            add_mask = compare.vmsne_vx(m, flags, 1, vl)
            y = permutation.vslideup_vx(m, ident_vl, x, offset, vl)
            x = vv(m, x, y, vl, mask=add_mask, maskedoff=x)
            flags_up = permutation.vslideup_vx(m, one_vl, flags, offset, vl)
            flags = arith.vor_vv(m, flags, flags_up, vl)
            m.inner_overhead(kernel)
            offset <<= 1
        x = vx(m, x, carry, vl, mask=carry_mask, maskedoff=x)
        loadstore.vse(m, src, x, vl)
        carry = src[vl - 1]
        m.scalar(2)  # carry reload: address computation + lw
        src += vl
        head_flags += vl
        n -= vl
        m.strip_overhead(kernel, n_arrays=2)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(inner_scan_steps(vl)))


def seg_plus_scan(m: RVVMachine, n: int, src: Pointer, head_flags: Pointer,
                  lmul: LMUL = LMUL.M1) -> None:
    """The paper's segmented plus-scan (Listing 10, measured in Tables
    4-7): inclusive per-segment prefix sums in place."""
    seg_scan(m, n, src, head_flags, PLUS, lmul)


def seg_scan_exclusive(m: RVVMachine, n: int, src: Pointer, head_flags: Pointer,
                       op: str | BinaryOp = PLUS, lmul: LMUL = LMUL.M1) -> None:
    """Exclusive segmented ⊕-scan in place: every segment head receives
    the identity; other lanes the ⊕ of their segment's preceding
    elements.

    Built on the inclusive kernel's structure plus a post-pass per
    strip: shift lanes up by one (``vslide1up`` with the incoming
    carry) and force the identity at heads (``vmerge`` under the head
    mask). The carry crossing the strip boundary is the *inclusive*
    running value, read before the shift.
    """
    op = get_operator(op)
    vv = _VV[op.name]
    vx = _VX[op.name]
    sew = sew_for_dtype(src.dtype)
    kernel = "seg_plus_scan"
    plan = plan_allocation(SEG_SCAN_PROFILE, lmul)

    m.prologue(kernel)
    if plan.has_spills:
        m.count(Cat.SPILL, plan.frame_setup)
    vlmax = m.vsetvlmax(sew, lmul)
    identity = op.identity(src.dtype)
    vec_identity = move.vmv_v_x(m, identity, vlmax, dtype=src.dtype)
    vec_one = move.vmv_v_x(m, 1, vlmax, dtype=head_flags.dtype)
    carry = identity

    n = int(n)
    while n > 0:
        vl = m.vsetvl(n, sew, lmul)
        x = loadstore.vle(m, src, vl)
        flags = loadstore.vle(m, head_flags, vl)
        head_mask = compare.vmsne_vx(m, flags, 0, vl)
        carry_mask = maskops.vmsbf_m(m, head_mask, vl)
        flags = move.vmv_s_x(m, flags, 1, vl)
        ident_vl = _trim(vec_identity, vl)
        one_vl = _trim(vec_one, vl)
        offset = 1
        while offset < vl:
            add_mask = compare.vmsne_vx(m, flags, 1, vl)
            y = permutation.vslideup_vx(m, ident_vl, x, offset, vl)
            x = vv(m, x, y, vl, mask=add_mask, maskedoff=x)
            flags_up = permutation.vslideup_vx(m, one_vl, flags, offset, vl)
            flags = arith.vor_vv(m, flags, flags_up, vl)
            m.inner_overhead(kernel)
            offset <<= 1
        # inclusive values with carry applied — needed both for the
        # outgoing carry and as the source of the exclusive shift
        incl = vx(m, x, carry, vl, mask=carry_mask, maskedoff=x)
        last = permutation.vslidedown_vx(m, incl, vl - 1, vl)
        new_carry = move.vmv_x_s(m, last)
        excl = permutation.vslide1up_vx(m, incl, carry, vl)
        excl = arith.vmerge_vxm(m, head_mask, excl, identity, vl)
        loadstore.vse(m, src, excl, vl)
        carry = new_carry
        m.scalar(1)
        src += vl
        head_flags += vl
        n -= vl
        m.strip_overhead(kernel, n_arrays=2)
        if plan.has_spills:
            m.count(Cat.SPILL, plan.strip_cost(inner_scan_steps(vl)))

"""The split operation (§4.4, Listing 7) — stable partition by flag.

Split permutes ``src`` into ``dst`` so that all elements whose flag is
0 come first (starting at index 0) and all elements whose flag is 1
follow, each group keeping its original order (Figure 3). It is the
per-bit pass of split radix sort.

The paper composes it from primitives only — two enumerates, a p-add,
a p-select and a permute — allocating two scratch index vectors with
``malloc`` per call. We port that structure exactly; the per-call
scratch allocations are what make Table 1's large-N costs jump once
the allocator switches to mmap (see repro.scalar.malloc_model).

Note Figure 2's caption ("elements with bit value 1 move left") is
contradicted by Listing 7 and Figure 3; as the listings (and a correct
ascending radix sort) require, the 0-flag group goes first.
"""

from __future__ import annotations

import numpy as np

from ..obs.spans import span as _span
from ..rvv.types import LMUL

__all__ = ["split", "split_pairs"]


def split(svm, src, dst, flags, lmul: LMUL = LMUL.M1) -> int:
    """Port of Listing 7 against the :class:`~repro.svm.context.SVM`
    primitive interface (so it inherits the context's strict/fast
    dispatch). Returns the number of 0-flag elements — the boundary
    index between the two groups.

    Steps (names follow the listing):

    1. ``i_up``   = enumerate of the 0-flags: destination indices of
       the 0-group, counting from 0; ``count`` = #zeros.
    2. ``i_down`` = enumerate of the 1-flags, shifted by ``count`` with
       ``p_add`` so the 1-group lands after the 0-group.
    3. ``p_select`` merges ``i_down`` into ``i_up`` where the flag is
       set, leaving every element's destination index in ``i_up``.
    4. ``permute`` scatters ``src`` into ``dst`` by those indices.
    """
    from .context import SVMArray  # deferred: split is imported by context

    n = src.n
    m = svm.machine
    idx_dtype = np.dtype(np.uint32)
    # malloc'd through the machine so the allocation cost model applies
    # (Listing 7 lines 2-5)
    with _span(m, "split", n=n):
        i_up = SVMArray(m.alloc_array(max(n, 1), idx_dtype), n)
        i_down = SVMArray(m.alloc_array(max(n, 1), idx_dtype), n)
        try:
            _, count = svm.enumerate(flags, set_bit=False, out=i_up, lmul=lmul)
            svm.enumerate(flags, set_bit=True, out=i_down, lmul=lmul)
            svm.p_add(i_down, count, lmul=lmul)
            svm.p_select(flags, i_down, i_up, lmul=lmul)
            svm.permute(src, i_up, out=dst, lmul=lmul)
        finally:
            m.free(i_up.ptr.addr)
            m.free(i_down.ptr.addr)
    return count


def split_pairs(svm, src, dst, payload_src, payload_dst, flags,
                lmul: LMUL = LMUL.M1) -> int:
    """Split a (key, payload) pair stream: both arrays move through the
    *same* stable permutation, computed once and applied with two
    permutes — the key-value form radix sort needs to carry record
    payloads alongside keys.

    Returns the number of 0-flag elements, like :func:`split`.
    """
    from .context import SVMArray  # deferred: split is imported by context

    n = src.n
    m = svm.machine
    idx_dtype = np.dtype(np.uint32)
    with _span(m, "split_pairs", n=n):
        i_up = SVMArray(m.alloc_array(max(n, 1), idx_dtype), n)
        i_down = SVMArray(m.alloc_array(max(n, 1), idx_dtype), n)
        try:
            _, count = svm.enumerate(flags, set_bit=False, out=i_up, lmul=lmul)
            svm.enumerate(flags, set_bit=True, out=i_down, lmul=lmul)
            svm.p_add(i_down, count, lmul=lmul)
            svm.p_select(flags, i_down, i_up, lmul=lmul)
            svm.permute(src, i_up, out=dst, lmul=lmul)
            svm.permute(payload_src, i_up, out=payload_dst, lmul=lmul)
        finally:
            m.free(i_up.ptr.addr)
            m.free(i_down.ptr.addr)
    return count

"""Shape-aware execution tuning — ``repro tune``.

The paper's LMUL study (§6.3, Tables 5-6) shows the best execution
configuration depends on workload *shape*: high LMUL wins at large n
(fewer strips), but its register spills dominate at small n. This
package operationalizes that observation end to end:

* :mod:`~repro.tune.advisor` — closed-form cost prediction per LMUL
  and the paper-conclusion selection heuristic (moved here from the
  deprecated ``repro.lmul.advisor``);
* :mod:`~repro.tune.measure` — the single-kernel measurement grids
  behind Tables 5-7 and Figure 5 (moved from ``repro.lmul.sweep``);
* :mod:`~repro.tune.sweep` — the pipeline-level sweep driver: fans a
  plan-fingerprint × size-grid × config grid over
  :mod:`repro.parallel` and fits the measurements into a policy;
* :mod:`~repro.tune.db` — :class:`TuningDB`, the versioned persistent
  store of fitted policies (JSON, next to the PlanStore, guarded by
  the engine code fingerprint);
* :mod:`~repro.tune.policy` — :class:`TunePolicy`, the dispatch-time
  consumer: ``SVM(tune="auto")`` consults it at plan-dispatch time,
  memoized per (plan fingerprint, n-bucket), and retags the plan to
  the learned config before the plan-cache key is computed.

The tuner only ever *selects* a configuration — execution under a
chosen config is bit- and counter-identical to an SVM pinned to that
config (the identity gate in ``tests/tune/`` asserts it).

Lifecycle: ``repro tune sweep`` (measure + fit + persist) →
``SVM(tune="auto")`` / ``repro serve --tune auto`` (consult) →
``repro tune show`` / ``repro cache stats`` (inspect) — see
``docs/tuning.md``.
"""

from .advisor import LmulPrediction, choose_lmul, predict_scan_count
from .db import TUNE_SCHEMA_VERSION, TuningDB
from .measure import SweepPoint, measure_kernel, sweep_lmul, sweep_vlen
from .policy import TunePolicy, fit_policy, n_bucket
from .sweep import PIPELINES, TunePoint, run_tune_sweep, tune_cell

__all__ = [
    "LmulPrediction",
    "choose_lmul",
    "predict_scan_count",
    "SweepPoint",
    "measure_kernel",
    "sweep_lmul",
    "sweep_vlen",
    "TuningDB",
    "TUNE_SCHEMA_VERSION",
    "TunePolicy",
    "fit_policy",
    "n_bucket",
    "PIPELINES",
    "TunePoint",
    "run_tune_sweep",
    "tune_cell",
]

"""LMUL selection advisor — operationalizing §6.3's conclusion
(formerly ``repro.lmul.advisor``).

The paper closes its LMUL study with guidance: *"for workloads with
small vector size, the overhead of register spilling can be
significant. For workloads with very large vector size, the dynamic
instruction count can be covered"* — i.e. pick the largest LMUL whose
spill overhead is amortized by the strip-count reduction at your N.

:func:`choose_lmul` makes that quantitative: using the same cost
models the kernels charge (strip structure + the register-pressure
spill plan), it predicts the dynamic instruction count of a kernel at
every legal LMUL and returns the argmin. Because the predictions are
the *exact* closed forms the machine itself uses, the advisor is
provably consistent with measurement — tested by sweeping and
comparing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rvv.allocation import RegisterProfile, SEG_SCAN_PROFILE, PLUS_SCAN_PROFILE, plan_allocation
from ..rvv.codegen import CodegenModel, get_preset
from ..rvv.machine import RVVMachine
from ..rvv.types import LMUL, SEW, vlmax_for
from ..svm.scan import inner_scan_steps

__all__ = ["LmulPrediction", "predict_scan_count", "choose_lmul"]

_PROFILES = {
    "plus_scan": PLUS_SCAN_PROFILE,
    "seg_plus_scan": SEG_SCAN_PROFILE,
}

# vector-instruction cost structure of the two scan kernels, in terms
# of the codegen model's expansions (mirrors fastpath's charge helpers)
_KERNEL_SHAPE = {
    # (one_time_ops, outer_plain, outer_dest, outer_masked, inner_plain,
    #  inner_dest, inner_masked, outer_scalar_fixed)
    "plus_scan": dict(one_plain=1, one_dest=0, outer_plain=3, outer_dest=0,
                      outer_masked=0, inner_plain=1, inner_dest=1,
                      inner_masked=0, outer_scalar=2),
    "seg_plus_scan": dict(one_plain=2, one_dest=0, outer_plain=5, outer_dest=1,
                          outer_masked=1, inner_plain=2, inner_dest=2,
                          inner_masked=1, outer_scalar=2),
}


@dataclass(frozen=True)
class LmulPrediction:
    """Predicted dynamic instruction count of one kernel at one LMUL."""

    lmul: LMUL
    count: int
    spilled_values: tuple[str, ...]

    @property
    def has_spills(self) -> bool:
        return bool(self.spilled_values)


def predict_scan_count(kernel: str, n: int, vlen: int, lmul: LMUL,
                       codegen: str | CodegenModel = "paper",
                       sew: SEW = SEW.E32) -> LmulPrediction:
    """Closed-form dynamic count of ``kernel`` ('plus_scan' or
    'seg_plus_scan') for ``n`` elements at the given configuration —
    the same arithmetic the fast path charges, packaged for planning."""
    cg = get_preset(codegen)
    shape = _KERNEL_SHAPE[kernel]
    profile = _PROFILES[kernel]
    plan = plan_allocation(profile, lmul)

    vlmax = vlmax_for(vlen, sew, lmul)
    full, rem = divmod(int(n), vlmax)
    n_strips = full + (1 if rem else 0)
    steps_full = inner_scan_steps(vlmax)
    steps_rem = inner_scan_steps(rem)
    total_steps = full * steps_full + steps_rem

    plain = cg.op_cost()
    dest = cg.op_cost(dest_undisturbed=True)
    masked = cg.op_cost(masked=True)

    count = cg.prologue(kernel)
    count += 1 + shape["one_plain"] * plain + shape["one_dest"] * dest  # vsetvlmax + setup
    per_strip_vec = (
        1  # vsetvl
        + shape["outer_plain"] * plain
        + shape["outer_dest"] * dest
        + shape["outer_masked"] * masked
    )
    per_inner_vec = (
        shape["inner_plain"] * plain
        + shape["inner_dest"] * dest
        + shape["inner_masked"] * masked
    )
    count += n_strips * (per_strip_vec + shape["outer_scalar"]
                         + cg.strip_overhead(kernel, 2 if kernel == "seg_plus_scan" else 1))
    count += total_steps * (per_inner_vec + cg.inner_overhead(kernel))
    if plan.has_spills:
        count += plan.frame_setup
        count += full * plan.strip_cost(steps_full)
        if rem:
            count += plan.strip_cost(steps_rem)
    return LmulPrediction(LMUL(lmul), count, plan.spilled)


def choose_lmul(kernel: str, n: int, vlen: int,
                codegen: str | CodegenModel = "paper",
                candidates: tuple[LMUL, ...] = (LMUL.M1, LMUL.M2, LMUL.M4, LMUL.M8),
                ) -> LmulPrediction:
    """Pick the LMUL minimizing the predicted dynamic count (§6.3's
    guidance made quantitative). Ties go to the smaller LMUL — less
    register pressure for the surrounding code at equal cost."""
    best: LmulPrediction | None = None
    for lm in candidates:
        pred = predict_scan_count(kernel, n, vlen, lm, codegen)
        if best is None or pred.count < best.count:
            best = pred
    assert best is not None
    return best

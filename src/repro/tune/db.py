"""TuningDB — the versioned persistent store of fitted tuning policies.

Lives next to the :class:`~repro.engine.cache.PlanStore` under the
same cache directory (``<root>/tune/``), one JSON file per plan
fingerprint (:meth:`repro.engine.ir.Plan.fingerprint` — the pipeline's
structure with the tuning axes stripped). JSON rather than pickle: the
payload is pure data (chosen configs + the measurements behind them),
and ``repro tune show`` should be able to print what any other process
wrote without trusting executable bytes.

Envelope per file::

    {"schema": 1, "code": "<engine code fingerprint>",
     "fingerprint": "<plan fingerprint>",
     "entries": {"<vlen>:<codegen>:<bucket>": {
         "lmul": 4, "instructions": 112608, "n": 3000,
         "config": {... ExecConfig.as_dict() ...}}},
     "meta": {...}}

Safety mirrors the PlanStore exactly: every load re-verifies the
schema version, the engine code fingerprint, and the file's own plan
fingerprint; *any* mismatch, truncation, or parse failure is a silent
miss (the policy simply has no opinion), writes are atomic (temp file
+ rename) and best-effort, and :meth:`prune` evicts entries a load
would reject. A stale or corrupted DB can therefore never change
results — at worst a plan runs at the untuned default config.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from ..engine.cache import code_fingerprint

__all__ = ["TuningDB", "TUNE_SCHEMA_VERSION", "entry_key"]

#: Bumped whenever the JSON envelope layout changes.
TUNE_SCHEMA_VERSION = 1

_FINGERPRINT_RE_HEX = frozenset("0123456789abcdef")


def entry_key(vlen: int, codegen: str, bucket: int) -> str:
    """The per-measurement key inside one fingerprint's entry table:
    the non-swept context (``vlen``, codegen preset) plus the size
    bucket (:func:`repro.tune.policy.n_bucket`)."""
    return f"{int(vlen)}:{codegen}:{int(bucket)}"


def _safe_name(fingerprint: str) -> str:
    """A filesystem-safe file stem for ``fingerprint`` (already a hex
    digest in practice; hashed defensively otherwise)."""
    if fingerprint and set(fingerprint) <= _FINGERPRINT_RE_HEX:
        return fingerprint
    return hashlib.sha256(fingerprint.encode()).hexdigest()


class TuningDB:
    """One-file-per-fingerprint JSON store of fitted tuning entries.

    ``root`` is the *cache* directory (the PlanStore's root); tuning
    files live in the ``tune/`` subdirectory so ``repro cache`` can
    report and manage both stores side by side.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.write_errors = 0

    @property
    def tune_dir(self) -> Path:
        return self.root / "tune"

    def _path(self, fingerprint: str) -> Path:
        return self.tune_dir / f"{_safe_name(fingerprint)}.tune"

    # ------------------------------------------------------------------
    # load / save
    # ------------------------------------------------------------------
    def load(self, fingerprint: str) -> dict:
        """The entry table for ``fingerprint`` (``entry_key`` →
        record), or ``{}``. Corrupted, truncated, version-mismatched or
        fingerprint-mismatched files are silent misses."""
        try:
            envelope = json.loads(self._path(fingerprint).read_text())
            if (
                envelope["schema"] != TUNE_SCHEMA_VERSION
                or envelope["code"] != code_fingerprint()
                or envelope["fingerprint"] != fingerprint
            ):
                raise ValueError("stale or mismatched tuning entry")
            entries = envelope["entries"]
            if not isinstance(entries, dict):
                raise ValueError("malformed entry table")
        except Exception:
            self.misses += 1
            return {}
        self.hits += 1
        return entries

    def save(self, fingerprint: str, entries: dict, meta: dict | None = None,
             *, merge: bool = True) -> None:
        """Persist the entry table for one fingerprint (atomic,
        best-effort). With ``merge=True`` (default) existing entries
        for other keys are kept — concurrent sweeps over different
        grids accumulate rather than clobber."""
        try:
            if merge:
                merged = self.load(fingerprint)
                merged.update(entries)
                entries = merged
            self.tune_dir.mkdir(parents=True, exist_ok=True)
            path = self._path(fingerprint)
            blob = json.dumps({
                "schema": TUNE_SCHEMA_VERSION,
                "code": code_fingerprint(),
                "fingerprint": fingerprint,
                "entries": entries,
                "meta": meta or {},
            }, indent=1, sort_keys=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(blob)
            os.replace(tmp, path)
        except Exception:
            self.write_errors += 1

    # ------------------------------------------------------------------
    # maintenance (the `repro cache` / `repro tune` surface)
    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        """The resident tuning files (empty for a missing directory)."""
        if not self.tune_dir.is_dir():
            return []
        return sorted(self.tune_dir.glob("*.tune"))

    def fingerprints(self) -> list[str]:
        """The fingerprints with a resident (not necessarily fresh)
        tuning file."""
        return [p.stem for p in self.entries()]

    def _is_stale(self, path: Path) -> bool:
        """True when a load would reject this file: unreadable,
        truncated, schema-mismatched, or written by a different engine
        code fingerprint."""
        try:
            envelope = json.loads(path.read_text())
            return (
                envelope["schema"] != TUNE_SCHEMA_VERSION
                or envelope["code"] != code_fingerprint()
            )
        except Exception:
            return True

    def prune(self) -> dict:
        """Evict every stale tuning file plus abandoned temp files;
        returns counts (mirrors ``PlanStore.prune``)."""
        removed = kept = 0
        for path in self.entries():
            if self._is_stale(path):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            else:
                kept += 1
        temps = 0
        if self.tune_dir.is_dir():
            for tmp in self.tune_dir.glob("*.tmp.*"):
                try:
                    tmp.unlink()
                    temps += 1
                except OSError:
                    pass
        return {"removed": removed, "kept": kept, "temps": temps}

    def clear(self) -> int:
        """Delete every tuning file; returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats_dict(self, *, scan: bool = False) -> dict:
        """Store statistics in the ``repro cache stats`` shape;
        ``scan=True`` additionally parses every file to count stale
        ones."""
        entries = self.entries()
        stale = (sum(1 for p in entries if self._is_stale(p))
                 if scan else None)
        return {
            "dir": str(self.tune_dir),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "stale": stale,
            "hits": self.hits,
            "misses": self.misses,
            "write_errors": self.write_errors,
            "schema": TUNE_SCHEMA_VERSION,
            "code": code_fingerprint()[:12],
        }

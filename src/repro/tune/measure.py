"""Single-kernel LMUL/VLEN measurement grids — the loops behind
Tables 5-7 and Figure 5 (formerly ``repro.lmul.sweep``).

Each sweep runs a kernel on a fresh machine per configuration and
collects the measured dynamic instruction counts; the bench harness
formats them against the paper's reference rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..rvv.codegen import CodegenModel
from ..rvv.types import LMUL
from ..svm.context import SVM

__all__ = ["SweepPoint", "sweep_lmul", "sweep_vlen", "measure_kernel"]

#: Fraction of lanes carrying a segment head flag in generated
#: workloads (counts are data-independent; this only shapes semantics).
DEFAULT_FLAG_DENSITY = 0.1


@dataclass(frozen=True)
class SweepPoint:
    """One measured configuration."""

    kernel: str
    n: int
    vlen: int
    lmul: LMUL
    instructions: int


def _run(svm: SVM, kernel: str, n: int, lmul: LMUL, seed: int) -> None:
    rng = np.random.default_rng(seed)
    a = svm.array(rng.integers(0, 1 << 16, n, dtype=np.uint32))
    if kernel == "p_add":
        svm.reset()
        svm.p_add(a, 12345, lmul=lmul)
    elif kernel == "plus_scan":
        svm.reset()
        svm.plus_scan(a, lmul=lmul)
    elif kernel == "seg_plus_scan":
        flags = svm.array((rng.random(n) < DEFAULT_FLAG_DENSITY).astype(np.uint32))
        svm.reset()
        svm.seg_plus_scan(a, flags, lmul=lmul)
    else:
        raise KeyError(f"unknown sweep kernel {kernel!r}")


def measure_kernel(kernel: str, n: int, vlen: int, lmul: LMUL = LMUL.M1,
                   codegen: str | CodegenModel = "paper", seed: int = 0) -> SweepPoint:
    """Measure one (kernel, n, vlen, lmul) point on a fresh machine."""
    svm = SVM(vlen=vlen, codegen=codegen, mode="fast")
    _run(svm, kernel, n, LMUL(lmul), seed)
    return SweepPoint(kernel, int(n), vlen, LMUL(lmul), svm.instructions)


def sweep_lmul(kernel: str, sizes, vlen: int = 1024,
               lmuls=(LMUL.M1, LMUL.M2, LMUL.M4, LMUL.M8),
               codegen: str | CodegenModel = "paper") -> list[SweepPoint]:
    """The Table 5 measurement grid: every (n, LMUL) pair."""
    return [
        measure_kernel(kernel, n, vlen, lm, codegen)
        for n in sizes
        for lm in lmuls
    ]


def sweep_vlen(kernel: str, n: int, vlens=(128, 256, 512, 1024),
               lmul: LMUL = LMUL.M1,
               codegen: str | CodegenModel = "paper") -> list[SweepPoint]:
    """The Table 7 / Figure 5 measurement line: one n across VLENs."""
    return [measure_kernel(kernel, n, v, lmul, codegen) for v in vlens]

"""TunePolicy — the dispatch-time consumer of the TuningDB.

The policy answers one question: *for this pipeline at this size,
which LMUL should the plan run at?* — keyed by
(:meth:`~repro.engine.ir.Plan.fingerprint`, size bucket) with the
non-swept context (VLEN, codegen preset) matched exactly. LMUL is the
one tuning axis appliable at dispatch time: it is a per-node tag the
engine specializes on, whereas vlen/backend are fixed per context
(they select a machine / an execution tier at construction).

Cost model: :meth:`TunePolicy.apply` is memoized per (fingerprint,
bucket, vlen, codegen) — the warm path is one fingerprint hash plus
one dict probe, and an *empty* policy (no tuning files on disk)
short-circuits before even that. ``repro serve`` therefore enables
tuning unconditionally-safely: a request whose shape was never swept
runs exactly as without tuning.

Safety: the policy only retags a plan whose nodes all carry the
context's *default* LMUL — a pipeline that set any explicit per-call
``lmul=`` is treated as hand-tuned and left alone. Retagging happens
before the plan-cache key is computed, so a tuned plan shares cache
entries (and is bit- and counter-identical) with an SVM pinned to the
chosen config.
"""

from __future__ import annotations

from ..engine.ir import Kind, Plan
from ..rvv.types import LMUL
from .db import TuningDB, entry_key

__all__ = ["TunePolicy", "fit_policy", "n_bucket"]

#: Node kinds the policy never retags: FREE carries no execution and
#: OPAQUE replays a recorded call verbatim (its lmul is part of the
#: recorded arguments, not a plan-level tag).
_SKIP_KINDS = (Kind.FREE, Kind.OPAQUE)


def n_bucket(n: int) -> int:
    """The power-of-two size bucket of a problem size: ``n.bit_length()``
    (0, 1, 2 → buckets 0, 1, 2; 1000 → 10; 3000 → 12). Counts are
    piecewise-linear in the strip count, so the per-octave resolution
    is enough to separate the spill/strip crossover the paper's Tables
    5-6 document."""
    return max(0, int(n)).bit_length()


def fit_policy(points) -> dict[str, dict[str, dict]]:
    """Fit measurements into TuningDB entry tables.

    ``points`` is an iterable of dicts (the :func:`repro.tune.sweep.
    tune_cell` result shape: fingerprint, n, vlen, codegen, lmul,
    instructions, config). Returns ``{fingerprint: {entry_key:
    record}}`` keeping, per (fingerprint, vlen, codegen, bucket), the
    measurement with the fewest instructions — ties to the smaller
    LMUL, matching :func:`repro.tune.advisor.choose_lmul`.
    """
    fitted: dict[str, dict[str, dict]] = {}
    for pt in points:
        fp = pt["fingerprint"]
        key = entry_key(pt["vlen"], pt["codegen"], n_bucket(pt["n"]))
        record = {
            "lmul": int(pt["lmul"]),
            "instructions": int(pt["instructions"]),
            "n": int(pt["n"]),
            "config": pt.get("config", {}),
        }
        table = fitted.setdefault(fp, {})
        best = table.get(key)
        if (
            best is None
            or record["instructions"] < best["instructions"]
            or (record["instructions"] == best["instructions"]
                and record["lmul"] < best["lmul"])
        ):
            table[key] = record
    return fitted


class TunePolicy:
    """Bucketed-n nearest-shape lookup over a :class:`TuningDB`.

    Construct directly from a DB (tests hand in a prepared one) or via
    :meth:`load` from a cache directory — the ``SVM(tune="auto")``
    path. All reads are lazy and memoized; the policy never writes.
    """

    def __init__(self, db: TuningDB | None) -> None:
        self.db = db
        #: (fingerprint, vlen, codegen, bucket) -> LMUL | None
        self._memo: dict[tuple, LMUL | None] = {}
        #: fingerprint -> raw entry table (lazy per-fingerprint load)
        self._tables: dict[str, dict] = {}
        # no DB or no resident files: permanently empty, zero-cost
        self._empty = db is None or not db.entries()

    @classmethod
    def load(cls, root) -> "TunePolicy":
        """The policy stored under cache directory ``root`` (empty —
        a no-op at dispatch — when nothing was ever swept there)."""
        return cls(TuningDB(root))

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _table(self, fingerprint: str) -> dict:
        table = self._tables.get(fingerprint)
        if table is None:
            table = self.db.load(fingerprint) if self.db is not None else {}
            self._tables[fingerprint] = table
        return table

    def choose(self, fingerprint: str, n: int, vlen: int,
               codegen: str) -> LMUL | None:
        """The learned LMUL for this shape, or None (no opinion).
        Exact-bucket match first, then the nearest swept bucket of the
        same (vlen, codegen) — nearest in octaves, ties downward (the
        smaller-n entry is the spill-safe side of the crossover)."""
        bucket = n_bucket(n)
        memo_key = (fingerprint, int(vlen), codegen, bucket)
        if memo_key in self._memo:
            return self._memo[memo_key]
        choice = self._choose_uncached(fingerprint, bucket, vlen, codegen)
        self._memo[memo_key] = choice
        return choice

    def _choose_uncached(self, fingerprint: str, bucket: int, vlen: int,
                         codegen: str) -> LMUL | None:
        table = self._table(fingerprint)
        if not table:
            return None
        record = table.get(entry_key(vlen, codegen, bucket))
        if record is None:
            prefix = f"{int(vlen)}:{codegen}:"
            candidates = []
            for key, rec in table.items():
                if key.startswith(prefix):
                    try:
                        candidates.append((int(key[len(prefix):]), rec))
                    except ValueError:
                        continue
            if not candidates:
                return None
            _, record = min(
                candidates, key=lambda kv: (abs(kv[0] - bucket), kv[0])
            )
        try:
            return LMUL(int(record["lmul"]))
        except Exception:
            return None

    # ------------------------------------------------------------------
    # dispatch hook
    # ------------------------------------------------------------------
    def apply(self, plan: Plan, svm) -> LMUL | None:
        """Consult the policy for ``plan`` and retag its LMUL in place;
        returns the applied LMUL or None when the policy stood down.

        Called by :meth:`repro.engine.Engine.fused_for` before the
        plan-cache key is computed. Stands down when the policy is
        empty, the plan carries any explicit per-call LMUL, or the
        learned choice equals the context default.
        """
        if self._empty:
            return None
        base = svm.lmul
        nodes = [nd for nd in plan.nodes if nd.kind not in _SKIP_KINDS]
        if not nodes or any(nd.lmul != base for nd in nodes):
            return None
        choice = self.choose(
            plan.fingerprint(), plan.max_n(),
            svm.machine.vlen, svm.machine.codegen.name,
        )
        if choice is None or choice == base:
            return None
        for nd in nodes:
            nd.lmul = choice
        return choice

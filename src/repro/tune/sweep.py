"""Pipeline-level tuning sweep — the producer side of the TuningDB.

Fans a (pipeline × size × config) grid over :func:`repro.parallel.
run_grid` — each cell runs one lazily-captured pipeline on a private
:class:`~repro.svm.SVM` pinned to one config and reports the dynamic
instruction count plus the plan's tuning fingerprint. The counts are
data-oblivious for every swept pipeline, so the grid is fully
deterministic and the fitted policy is reproducible bit for bit.

:func:`run_tune_sweep` is the ``repro tune sweep`` engine: measure,
fit (:func:`repro.tune.policy.fit_policy`), persist
(:class:`repro.tune.db.TuningDB`). The swept grids intentionally match
the serving/batch pipelines (the elementwise-chain + scan shape of
:data:`repro.parallel.CHAIN`), so a default sweep immediately covers
the workloads ``repro serve`` sees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ExecConfig
from ..parallel import CHAIN, default_jobs, run_grid
from ..rvv.types import LMUL
from .db import TuningDB
from .policy import fit_policy

__all__ = [
    "PIPELINES", "TunePoint", "tune_cell", "run_tune_sweep",
    "DEFAULT_SIZES", "DEFAULT_LMULS", "DEFAULT_CODEGENS",
]

#: Default size grid: spans the spill/strip crossover at every VLEN
#: the paper studies (small n where spills dominate through large n
#: where strip-count reduction wins).
DEFAULT_SIZES = (64, 256, 1000, 3000, 10000, 100000)

#: Default LMUL grid — the paper's Table 5/6 axis.
DEFAULT_LMULS = (LMUL.M1, LMUL.M2, LMUL.M4, LMUL.M8)

#: Default codegen-preset grid. The policy lookup is preset-exact
#: (counts genuinely differ between presets), so the default sweep
#: covers both: a plain ``SVM()`` dispatches under ``"ideal"`` while
#: the CLI/serve surfaces default to ``"paper"`` — either way the
#: out-of-the-box ``repro tune sweep`` → ``SVM(tune="auto")``
#: lifecycle hits.
DEFAULT_CODEGENS = ("ideal", "paper")

#: Fraction of lanes carrying a segment head flag in the seg_scan
#: workload (counts are data-independent; this only shapes semantics).
FLAG_DENSITY = 0.1


def _pipe_chain_scan(lz, data):
    for op, x in CHAIN[:3]:
        getattr(lz, op)(data, x)
    lz.plus_scan(data)


def _pipe_scan(lz, data):
    lz.plus_scan(data)


def _pipe_seg_scan(lz, data, flags):
    lz.seg_plus_scan(data, flags)


#: Swept pipelines by name. Each takes ``(lz, *arrays)`` and issues
#: calls *without* explicit ``lmul=`` — the context default is the
#: tuned axis, exactly how the dispatch hook applies the policy.
PIPELINES = {
    "chain_scan": _pipe_chain_scan,
    "scan": _pipe_scan,
    "seg_scan": _pipe_seg_scan,
}


@dataclass(frozen=True)
class TunePoint:
    """One measured (pipeline, shape, config) cell."""

    pipeline: str
    n: int
    vlen: int
    codegen: str
    lmul: LMUL
    instructions: int
    fingerprint: str


def _materialize(svm, pipeline: str, n: int, seed: int) -> tuple:
    rng = np.random.default_rng(seed)
    data = svm.array(rng.integers(0, 1 << 16, n, dtype=np.uint32))
    if pipeline == "seg_scan":
        flags = svm.array((rng.random(n) < FLAG_DENSITY).astype(np.uint32))
        return (data, flags)
    return (data,)


def tune_cell(params: dict) -> dict:
    """One sweep cell on a private machine (module-level so
    :mod:`repro.parallel` pool workers can import it by name).

    ``params``: pipeline (name in :data:`PIPELINES`), n, vlen, lmul
    (int), codegen (default "paper"), seed. Returns the measurement in
    the shape :func:`repro.tune.policy.fit_policy` consumes.
    """
    from repro.svm.context import SVM

    name = params["pipeline"]
    n, vlen = int(params["n"]), int(params["vlen"])
    lmul = LMUL(params["lmul"])
    codegen = params.get("codegen", "paper")
    svm = SVM(vlen=vlen, codegen=codegen, mode="fast", lmul=lmul)
    arrays = _materialize(svm, name, n, params.get("seed", 0))
    svm.reset()
    with svm.lazy() as lz:
        PIPELINES[name](lz, *arrays)
    plan = svm.engine.last_plan
    return {
        "pipeline": name,
        "n": n,
        "vlen": vlen,
        "codegen": svm.machine.codegen.name,
        "lmul": int(lmul),
        "instructions": svm.instructions,
        "fingerprint": plan.fingerprint(),
        "config": ExecConfig(vlen=vlen, lmul=lmul).as_dict(),
    }


def run_tune_sweep(
    pipelines=None,
    sizes=DEFAULT_SIZES,
    vlens=(1024,),
    lmuls=DEFAULT_LMULS,
    codegen=DEFAULT_CODEGENS,
    jobs: int | None = None,
    db: TuningDB | None = None,
    seed: int = 0,
) -> tuple[list[TunePoint], dict]:
    """Measure the grid, fit the policy, optionally persist it.

    ``codegen`` is one preset name or a sequence of them; the default
    sweeps both presets (:data:`DEFAULT_CODEGENS`) because the policy
    lookup is preset-exact. Returns ``(points, fitted)`` where
    ``fitted`` is the ``{fingerprint: entry_table}`` mapping written
    to ``db`` (merged into any existing tables). ``jobs=None`` uses
    :func:`repro.parallel.default_jobs`.
    """
    if pipelines is None:
        pipelines = tuple(PIPELINES)
    unknown = [p for p in pipelines if p not in PIPELINES]
    if unknown:
        raise KeyError(f"unknown tune pipeline(s) {unknown!r}; "
                       f"available: {sorted(PIPELINES)}")
    codegens = (codegen,) if isinstance(codegen, str) else tuple(codegen)
    params = [
        {"pipeline": p, "n": n, "vlen": v, "lmul": int(lm),
         "codegen": cg, "seed": seed}
        for p in pipelines for n in sizes for v in vlens
        for lm in lmuls for cg in codegens
    ]
    raw = run_grid(tune_cell, params,
                   jobs=default_jobs() if jobs is None else jobs)
    points = [
        TunePoint(r["pipeline"], r["n"], r["vlen"], r["codegen"],
                  LMUL(r["lmul"]), r["instructions"], r["fingerprint"])
        for r in raw
    ]
    fitted = fit_policy(raw)
    if db is not None:
        meta = {"pipelines": {r["fingerprint"]: r["pipeline"] for r in raw},
                "codegen": list(codegens)}
        for fingerprint, table in fitted.items():
            db.save(fingerprint, table, meta=meta)
    return points, fitted

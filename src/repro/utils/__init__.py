"""Shared utilities: table/chart rendering and validation helpers."""

from .formatting import fmt_count, fmt_ratio, render_ascii_chart, render_table

__all__ = ["render_table", "render_ascii_chart", "fmt_count", "fmt_ratio"]

"""Plain-text table and chart rendering for the bench harness.

The harness prints every regenerated table side by side with the
paper's reference values, and renders Figure 5 as an ASCII line chart
(no plotting dependencies are available offline).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "render_ascii_chart", "fmt_count", "fmt_ratio"]


def fmt_count(x) -> str:
    """Integer with thousands separators (or '-' for missing)."""
    return "-" if x is None else f"{int(x):,}"


def fmt_ratio(x, digits: int = 2) -> str:
    """Fixed-point ratio (or '-' for missing)."""
    return "-" if x is None else f"{x:.{digits}f}"


def render_table(headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None) -> str:
    """Render rows as a monospace table with right-aligned numeric
    columns (everything is stringified first)."""
    srows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in srows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """A minimal ASCII line chart: each named series is a list of
    (x, y) points; points are plotted with the series' marker and a
    legend is appended. Linear axes."""
    pts = [(x, y) for s in series.values() for x, y in s]
    if not pts:
        return "(empty chart)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@"
    legend = []
    for (name, points), marker in zip(series.items(), markers):
        legend.append(f"{marker} = {name}")
        for x, y in points:
            col = round((x - x0) / xspan * (width - 1))
            row = height - 1 - round((y - y0) / yspan * (height - 1))
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        label = f"{y1 - i * yspan / (height - 1):8.2f} |" if height > 1 else f"{y1:8.2f} |"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 9 + f"{x0:<12g}{x_label:^{max(width - 24, 0)}}{x1:>12g}")
    lines.append("   " + "   ".join(legend) + ("   y: " + y_label if y_label else ""))
    return "\n".join(lines)

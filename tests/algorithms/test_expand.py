"""Tests for expand / processor allocation."""

import numpy as np
import pytest

from repro.algorithms import expand, expand_indices
from repro.errors import VectorLengthError


class TestExpand:
    def test_basic(self, svm):
        out, n = expand(svm, svm.array([7, 9, 4]), svm.array([2, 0, 3]))
        assert n == 5
        assert out.to_numpy()[:n].tolist() == [7, 7, 4, 4, 4]

    def test_matches_np_repeat(self, svm, rng):
        values = rng.integers(0, 100, 25, dtype=np.uint32)
        counts = rng.integers(0, 5, 25, dtype=np.uint32)
        out, n = expand(svm, svm.array(values), svm.array(counts))
        expect = np.repeat(values, counts)
        assert n == expect.size
        assert np.array_equal(out.to_numpy()[:n], expect)

    def test_all_zero_counts(self, svm):
        out, n = expand(svm, svm.array([1, 2]), svm.array([0, 0]))
        assert n == 0

    def test_all_ones_is_identity(self, svm, rng):
        values = rng.integers(0, 100, 17, dtype=np.uint32)
        out, n = expand(svm, svm.array(values), svm.array(np.ones(17, np.uint32)))
        assert n == 17
        assert np.array_equal(out.to_numpy(), values)

    def test_zero_values_expand_fine(self, svm):
        out, n = expand(svm, svm.array([0, 5]), svm.array([3, 2]))
        assert out.to_numpy()[:n].tolist() == [0, 0, 0, 5, 5]

    def test_length_mismatch(self, svm):
        with pytest.raises(VectorLengthError):
            expand(svm, svm.array([1]), svm.array([1, 2]))

    def test_spans_strips(self, svm):
        """One element expanding past vl exercises the segmented
        distribute's carry (vl=4 at VLEN=128)."""
        out, n = expand(svm, svm.array([6]), svm.array([11]))
        assert out.to_numpy()[:n].tolist() == [6] * 11


class TestExpandIndices:
    def test_basic(self, svm):
        out, n = expand_indices(svm, svm.array([2, 0, 3]))
        assert out.to_numpy()[:n].tolist() == [0, 0, 2, 2, 2]

    def test_matches_np_repeat(self, svm, rng):
        counts = rng.integers(0, 4, 20, dtype=np.uint32)
        out, n = expand_indices(svm, svm.array(counts))
        expect = np.repeat(np.arange(20), counts)
        assert np.array_equal(out.to_numpy()[:n], expect.astype(np.uint32))

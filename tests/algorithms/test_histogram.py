"""Tests for the sort+RLE histogram."""

import numpy as np
import pytest

from repro.algorithms import histogram
from repro.errors import ConfigurationError


class TestHistogram:
    @pytest.mark.parametrize("n_buckets", [1, 2, 8, 16])
    def test_matches_bincount(self, svm, rng, n_buckets):
        data = rng.integers(0, n_buckets, 120, dtype=np.uint32)
        got = histogram(svm, svm.array(data), n_buckets)
        expect = np.bincount(data, minlength=n_buckets)
        assert np.array_equal(got.to_numpy(), expect.astype(np.uint32))

    def test_empty_data(self, svm):
        got = histogram(svm, svm.array([]), 8)
        assert got.to_numpy().tolist() == [0] * 8

    def test_empty_buckets_stay_zero(self, svm):
        got = histogram(svm, svm.array([3, 3, 3]), 8)
        assert got.to_numpy().tolist() == [0, 0, 0, 3, 0, 0, 0, 0]

    def test_single_bucket(self, svm):
        got = histogram(svm, svm.array([0, 0, 0, 0]), 1)
        assert got.to_numpy().tolist() == [4]

    def test_rejects_non_power_of_two(self, svm):
        with pytest.raises(ConfigurationError):
            histogram(svm, svm.array([1]), 6)

    def test_rejects_out_of_range(self, svm):
        with pytest.raises(ConfigurationError):
            histogram(svm, svm.array([9]), 8)

    def test_input_untouched(self, svm):
        data = np.array([3, 1, 2, 1], dtype=np.uint32)
        arr = svm.array(data)
        histogram(svm, arr, 4)
        assert np.array_equal(arr.to_numpy(), data)

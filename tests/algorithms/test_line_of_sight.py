"""Tests for the line-of-sight application."""

import numpy as np
import pytest

from repro.algorithms import angle_measures, line_of_sight
from repro.errors import VectorLengthError


def _visible_oracle(altitudes):
    """Naive O(n^2) visibility from point 0 using exact rational
    comparisons (no fixed-point)."""
    alt = np.asarray(altitudes, dtype=np.int64)
    n = alt.size
    vis = [True]
    for i in range(1, n):
        # visible iff angle strictly exceeds every earlier point's
        mine = (alt[i] - alt[0], i)
        blocked = False
        for j in range(1, i):
            theirs = (alt[j] - alt[0], j)
            # compare (a/b) <= (c/d) with positive denominators
            if mine[0] * theirs[1] <= theirs[0] * mine[1]:
                blocked = True
                break
        vis.append(not blocked)
    return np.array(vis, dtype=np.uint32)


class TestAngleMeasures:
    def test_monotone_in_altitude(self):
        m = angle_measures([0, 10, 30])
        assert m[2] > m[1] > 0

    def test_equal_slope_equal_angle(self):
        """20 high at distance 2 subtends the same angle as 10 at 1."""
        m = angle_measures([0, 10, 20])
        assert m[1] == m[2]

    def test_downhill_stays_unsigned(self):
        m = angle_measures([100, 0, 0])
        assert (m >= 0).all()  # bias keeps negatives representable

    def test_distance_discounts(self):
        m = angle_measures([0, 10, 10])  # same rise, farther away
        assert m[1] > m[2]

    def test_rejects_empty(self):
        with pytest.raises(VectorLengthError):
            angle_measures([])


class TestLineOfSight:
    def test_observer_always_visible(self, svm):
        assert line_of_sight(svm, [5]).to_numpy().tolist() == [1]

    def test_monotone_ridge(self, svm):
        """Strictly rising terrain is fully visible."""
        vis = line_of_sight(svm, [0, 10, 25, 45, 70])
        assert vis.to_numpy().tolist() == [1, 1, 1, 1, 1]

    def test_valley_hidden(self, svm):
        vis = line_of_sight(svm, [10, 20, 5, 6, 60])
        assert vis.to_numpy().tolist() == [1, 1, 0, 0, 1]

    def test_peak_occludes_lower_rise(self, svm):
        # 40 at distance 4 (slope 7.5) hides behind 20 at distance 1
        vis = line_of_sight(svm, [10, 20, 5, 6, 40])
        assert vis.to_numpy().tolist() == [1, 1, 0, 0, 0]

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_oracle(self, svm, seed):
        rng = np.random.default_rng(seed)
        alt = rng.integers(0, 1000, 30)
        got = line_of_sight(svm, alt).to_numpy()
        assert np.array_equal(got, _visible_oracle(alt)), alt

    def test_plateau_hides_equal_angles(self, svm):
        """A point exactly grazing the horizon is occluded."""
        vis = line_of_sight(svm, [0, 10, 20])  # same 10/1 slope at i=2
        assert vis.to_numpy().tolist() == [1, 1, 0]

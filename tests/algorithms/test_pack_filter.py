"""Tests for the filter/partition utilities."""

import numpy as np
import pytest

from repro.algorithms import (
    filter_equal,
    filter_in_range,
    filter_less_than,
    partition_by_flag,
)


class TestFilters:
    def test_less_than(self, svm, rng):
        data = rng.integers(0, 100, 50, dtype=np.uint32)
        out, kept = filter_less_than(svm, svm.array(data), 30)
        expect = data[data < 30]
        assert kept == expect.size
        assert np.array_equal(out.to_numpy()[:kept], expect)

    def test_equal(self, svm, rng):
        data = rng.integers(0, 5, 60, dtype=np.uint32)
        out, kept = filter_equal(svm, svm.array(data), 3)
        assert kept == int((data == 3).sum())
        assert (out.to_numpy()[:kept] == 3).all()

    def test_in_range(self, svm, rng):
        data = rng.integers(0, 100, 70, dtype=np.uint32)
        out, kept = filter_in_range(svm, svm.array(data), 20, 40)
        expect = data[(data >= 20) & (data < 40)]
        assert kept == expect.size
        assert np.array_equal(out.to_numpy()[:kept], expect)

    def test_empty_result(self, svm):
        out, kept = filter_less_than(svm, svm.array([10, 20]), 5)
        assert kept == 0

    def test_stability(self, svm):
        data = np.array([9, 1, 8, 2, 7, 3], dtype=np.uint32)
        out, kept = filter_less_than(svm, svm.array(data), 5)
        assert out.to_numpy()[:kept].tolist() == [1, 2, 3]


class TestPartition:
    def test_split_semantics(self, svm):
        data = svm.array([1, 2, 3, 4])
        flags = svm.array([1, 0, 1, 0])
        out, zeros, ones = partition_by_flag(svm, data, flags)
        assert out.to_numpy().tolist() == [2, 4, 1, 3]
        assert (zeros, ones) == (2, 2)

    def test_counts_sum(self, svm, rng):
        data = rng.integers(0, 100, 44, dtype=np.uint32)
        flags_np = (rng.random(44) < 0.3).astype(np.uint32)
        _, zeros, ones = partition_by_flag(svm, svm.array(data), svm.array(flags_np))
        assert zeros + ones == 44
        assert ones == int(flags_np.sum())

"""Tests for the flat (segmented-scan) quicksort."""

import numpy as np
import pytest

from repro import SVM
from repro.algorithms import flat_quicksort, seg_total
from repro.errors import ReproError


class TestCorrectness:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 17, 100])
    def test_random(self, svm, rng, n):
        data = rng.integers(0, 1000, n, dtype=np.uint32)
        a = svm.array(data)
        flat_quicksort(svm, a)
        assert np.array_equal(a.to_numpy(), np.sort(data))

    def test_duplicates(self, svm, rng):
        data = rng.integers(0, 3, 60, dtype=np.uint32)
        a = svm.array(data)
        flat_quicksort(svm, a)
        assert np.array_equal(a.to_numpy(), np.sort(data))

    def test_all_equal_one_round(self, svm):
        a = svm.array(np.full(40, 9, dtype=np.uint32))
        rounds = flat_quicksort(svm, a)
        assert rounds == 1  # everything is 'done' after one classify

    def test_already_sorted_needs_shuffle(self, svm, rng):
        """First-element pivots peel one element per round on sorted
        input (the classic quicksort degenerate case); shuffle=True is
        the documented remedy."""
        data = np.arange(64, dtype=np.uint32)
        a = svm.array(data)
        with pytest.raises(ReproError):
            flat_quicksort(svm, a, max_rounds=20)
        b = svm.array(data)
        flat_quicksort(svm, b, shuffle=True, rng=rng)
        assert np.array_equal(b.to_numpy(), data)

    def test_shuffle_option(self, svm, rng):
        data = np.arange(128, dtype=np.uint32)
        a = svm.array(data)
        flat_quicksort(svm, a, shuffle=True, rng=rng)
        assert np.array_equal(a.to_numpy(), data)

    def test_extreme_values(self, svm):
        data = np.array([2**32 - 1, 0, 2**31, 5], dtype=np.uint32)
        a = svm.array(data)
        flat_quicksort(svm, a)
        assert a.to_numpy().tolist() == [0, 5, 2**31, 2**32 - 1]


class TestRounds:
    def test_expected_log_rounds(self, rng):
        svm = SVM(vlen=1024, mode="fast")
        data = rng.integers(0, 2**31, 2000, dtype=np.uint32)
        a = svm.array(data)
        rounds = flat_quicksort(svm, a)
        assert rounds <= 3 * int(np.ceil(np.log2(2000)))

    def test_max_rounds_raises(self, svm):
        data = np.arange(32, dtype=np.uint32)[::-1].copy()
        a = svm.array(data)
        with pytest.raises(ReproError):
            flat_quicksort(svm, a, max_rounds=1)


class TestSegTotal:
    def test_distributes_totals(self, svm):
        x = svm.array([1, 2, 3, 4, 5])
        heads = svm.array([1, 0, 1, 0, 0])
        tot = seg_total(svm, x, heads)
        assert tot.to_numpy().tolist() == [3, 3, 12, 12, 12]

    def test_single_segment(self, svm, rng):
        data = rng.integers(0, 100, 17, dtype=np.uint32)
        tot = seg_total(svm, svm.array(data), svm.zeros(17))
        assert (tot.to_numpy() == data.sum()).all()

    def test_each_own_segment(self, svm):
        data = np.array([4, 7, 1], dtype=np.uint32)
        tot = seg_total(svm, svm.array(data), svm.array([1, 1, 1]))
        assert np.array_equal(tot.to_numpy(), data)

    def test_segments_across_strips(self, svm):
        """vl=4 at VLEN=128: a 10-lane segment spans strips; the
        reversed backward scan must still see the right segmentation."""
        x = svm.array([1] * 10)
        heads = svm.zeros(10)
        tot = seg_total(svm, x, heads)
        assert (tot.to_numpy() == 10).all()

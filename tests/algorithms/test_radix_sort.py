"""Tests for split radix sort (Listing 9)."""

import numpy as np
import pytest

from repro import SVM
from repro.algorithms import split_radix_sort
from repro.errors import ConfigurationError


class TestCorrectness:
    @pytest.mark.parametrize("n", [0, 1, 2, 7, 64, 257])
    def test_random(self, svm, rng, n):
        data = rng.integers(0, 2**32, n, dtype=np.uint32)
        a = svm.array(data)
        split_radix_sort(svm, a)
        assert np.array_equal(a.to_numpy(), np.sort(data))

    def test_duplicates_stable_result(self, svm, rng):
        data = rng.integers(0, 4, 100, dtype=np.uint32)
        a = svm.array(data)
        split_radix_sort(svm, a)
        assert np.array_equal(a.to_numpy(), np.sort(data))

    def test_already_sorted(self, svm):
        data = np.arange(50, dtype=np.uint32)
        a = svm.array(data)
        split_radix_sort(svm, a)
        assert np.array_equal(a.to_numpy(), data)

    def test_reverse(self, svm):
        data = np.arange(50, dtype=np.uint32)[::-1].copy()
        a = svm.array(data)
        split_radix_sort(svm, a)
        assert np.array_equal(a.to_numpy(), np.sort(data))

    def test_extreme_values(self, svm):
        data = np.array([2**32 - 1, 0, 2**31, 1], dtype=np.uint32)
        a = svm.array(data)
        split_radix_sort(svm, a)
        assert a.to_numpy().tolist() == [0, 1, 2**31, 2**32 - 1]


class TestPartialBits:
    def test_low_bit_keys(self, svm, rng):
        """Keys < 2^8 need only 8 passes."""
        data = rng.integers(0, 256, 80, dtype=np.uint32)
        a = svm.array(data)
        split_radix_sort(svm, a, bits=8)
        assert np.array_equal(a.to_numpy(), np.sort(data))

    def test_odd_bits_copy_back(self, svm, rng):
        """Odd pass counts end in the scratch buffer; the result must
        still land in the caller's array (the Listing 9 invariant)."""
        data = rng.integers(0, 32, 40, dtype=np.uint32)
        a = svm.array(data)
        split_radix_sort(svm, a, bits=5)
        assert np.array_equal(a.to_numpy(), np.sort(data))

    def test_fewer_bits_fewer_instructions(self, svm, rng):
        data = rng.integers(0, 256, 64, dtype=np.uint32)
        a = svm.array(data)
        svm.reset()
        split_radix_sort(svm, a, bits=8)
        eight = svm.instructions
        b = svm.array(data)
        svm.reset()
        split_radix_sort(svm, b, bits=32)
        assert eight < svm.instructions

    def test_bits_zero_noop(self, svm):
        data = np.array([3, 1, 2], dtype=np.uint32)
        a = svm.array(data)
        split_radix_sort(svm, a, bits=0)
        assert np.array_equal(a.to_numpy(), data)

    def test_bits_range_checked(self, svm):
        a = svm.array([1])
        with pytest.raises(ConfigurationError):
            split_radix_sort(svm, a, bits=33)


class TestAccounting:
    def test_scratch_freed(self, svm, rng):
        data = rng.integers(0, 2**32, 30, dtype=np.uint32)
        a = svm.array(data)
        before = svm.machine.heap.live_bytes
        split_radix_sort(svm, a)
        assert svm.machine.heap.live_bytes == before

    def test_count_scales_linearly(self):
        svm = SVM(vlen=1024, codegen="paper", mode="fast")
        counts = {}
        for n in (10**3, 10**4):
            a = svm.array(np.random.default_rng(0).integers(0, 2**32, n, dtype=np.uint32))
            svm.reset()
            split_radix_sort(svm, a)
            counts[n] = svm.instructions
        assert 6 < counts[10**4] / counts[10**3] < 10  # ~linear in N


class TestSignedSort:
    def test_signed_order(self, svm):
        """Two's-complement keys sort in signed order via the sign-bit
        bias trick."""
        raw = np.array([5, 2**32 - 3, 0, 2**31, 7], dtype=np.uint32)  # 5,-3,0,INT_MIN,7
        a = svm.array(raw)
        from repro.algorithms import split_radix_sort
        split_radix_sort(svm, a, signed=True)
        expect = np.sort(raw.view(np.int32)).view(np.uint32)
        assert np.array_equal(a.to_numpy(), expect)

    def test_random_signed(self, svm, rng):
        raw = rng.integers(0, 2**32, 60, dtype=np.uint32)
        a = svm.array(raw)
        from repro.algorithms import split_radix_sort
        split_radix_sort(svm, a, signed=True)
        expect = np.sort(raw.view(np.int32)).view(np.uint32)
        assert np.array_equal(a.to_numpy(), expect)

    def test_signed_with_partial_bits_rejected(self, svm):
        from repro.algorithms import split_radix_sort
        a = svm.array([1, 2])
        with pytest.raises(ConfigurationError):
            split_radix_sort(svm, a, bits=8, signed=True)


class TestKeyValueSort:
    def test_payload_follows_keys(self, svm, rng):
        from repro.algorithms import split_radix_sort_pairs
        keys = rng.integers(0, 100, 50, dtype=np.uint32)
        payload = np.arange(50, dtype=np.uint32)
        k, p = svm.array(keys), svm.array(payload)
        split_radix_sort_pairs(svm, k, p, bits=7)
        order = np.argsort(keys, kind="stable")
        assert np.array_equal(k.to_numpy(), keys[order])
        assert np.array_equal(p.to_numpy(), payload[order])

    def test_stability_of_payload(self, svm):
        """Equal keys keep payload order — the stable-sort contract."""
        from repro.algorithms import split_radix_sort_pairs
        keys = np.array([2, 1, 2, 1, 2], dtype=np.uint32)
        payload = np.array([10, 11, 12, 13, 14], dtype=np.uint32)
        k, p = svm.array(keys), svm.array(payload)
        split_radix_sort_pairs(svm, k, p, bits=2)
        assert p.to_numpy().tolist() == [11, 13, 10, 12, 14]

    def test_length_mismatch(self, svm):
        from repro.algorithms import split_radix_sort_pairs
        with pytest.raises(ConfigurationError):
            split_radix_sort_pairs(svm, svm.array([1]), svm.array([1, 2]))

    def test_odd_bits_copy_back(self, svm, rng):
        from repro.algorithms import split_radix_sort_pairs
        keys = rng.integers(0, 8, 20, dtype=np.uint32)
        payload = np.arange(20, dtype=np.uint32)
        k, p = svm.array(keys), svm.array(payload)
        split_radix_sort_pairs(svm, k, p, bits=3)
        order = np.argsort(keys, kind="stable")
        assert np.array_equal(p.to_numpy(), payload[order])

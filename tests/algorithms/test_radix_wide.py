"""Tests for the wide-digit radix sort variant."""

import numpy as np
import pytest

from repro import SVM
from repro.algorithms import split_radix_sort, split_radix_sort_wide
from repro.errors import ConfigurationError


class TestCorrectness:
    @pytest.mark.parametrize("w", [1, 2, 3, 4])
    @pytest.mark.parametrize("n", [0, 1, 17, 100])
    def test_sorts(self, svm, rng, w, n):
        data = rng.integers(0, 2**16, n, dtype=np.uint32)
        a = svm.array(data)
        split_radix_sort_wide(svm, a, digit_bits=w, bits=16)
        assert np.array_equal(a.to_numpy(), np.sort(data))

    def test_full_width(self, svm, rng):
        data = rng.integers(0, 2**32, 40, dtype=np.uint32)
        a = svm.array(data)
        split_radix_sort_wide(svm, a, digit_bits=4)
        assert np.array_equal(a.to_numpy(), np.sort(data))

    def test_ragged_last_digit(self, svm, rng):
        """bits not divisible by digit_bits: the last pass narrows."""
        data = rng.integers(0, 2**7, 30, dtype=np.uint32)
        a = svm.array(data)
        split_radix_sort_wide(svm, a, digit_bits=3, bits=7)
        assert np.array_equal(a.to_numpy(), np.sort(data))

    def test_stability(self, svm):
        """Each pass is a stable counting pass."""
        data = np.array([0b10, 0b00, 0b10, 0b00], dtype=np.uint32)
        a = svm.array(data)
        split_radix_sort_wide(svm, a, digit_bits=2, bits=2)
        assert a.to_numpy().tolist() == [0, 0, 2, 2]


class TestValidation:
    def test_digit_bits_range(self, svm):
        with pytest.raises(ConfigurationError):
            split_radix_sort_wide(svm, svm.array([1]), digit_bits=0)
        with pytest.raises(ConfigurationError):
            split_radix_sort_wide(svm, svm.array([1]), digit_bits=9)

    def test_bits_range(self, svm):
        with pytest.raises(ConfigurationError):
            split_radix_sort_wide(svm, svm.array([1]), bits=40)


class TestDesignClaim:
    def test_binary_split_wins(self):
        """The module's thesis: the shared-enumerate binary split beats
        every wider digit at equal correctness."""
        data = np.random.default_rng(1).integers(0, 2**32, 2000, dtype=np.uint32)

        def cost(fn):
            svm = SVM(vlen=1024, codegen="paper", mode="fast")
            a = svm.array(data)
            svm.reset()
            fn(svm, a)
            return svm.instructions

        base = cost(lambda s, a: split_radix_sort(s, a))
        for w in (2, 4):
            assert cost(lambda s, a, w=w: split_radix_sort_wide(s, a, digit_bits=w)) > base

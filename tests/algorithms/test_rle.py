"""Tests for run-length encode/decode."""

import numpy as np
import pytest

from repro.algorithms import rle_decode, rle_encode


def _runs_oracle(data):
    """Naive (value, length) runs."""
    runs = []
    for v in data:
        if runs and runs[-1][0] == v:
            runs[-1][1] += 1
        else:
            runs.append([int(v), 1])
    return runs


class TestEncode:
    def test_simple(self, svm):
        data = np.array([7, 7, 7, 2, 9, 9], dtype=np.uint32)
        values, lengths, k = rle_encode(svm, svm.array(data))
        assert k == 3
        assert values.to_numpy()[:3].tolist() == [7, 2, 9]
        assert lengths.to_numpy()[:3].tolist() == [3, 1, 2]

    def test_single_run(self, svm):
        values, lengths, k = rle_encode(svm, svm.array([5, 5, 5, 5]))
        assert k == 1
        assert values.to_numpy()[0] == 5 and lengths.to_numpy()[0] == 4

    def test_no_adjacent_equal(self, svm):
        data = np.array([1, 2, 3, 4], dtype=np.uint32)
        values, lengths, k = rle_encode(svm, svm.array(data))
        assert k == 4
        assert (lengths.to_numpy()[:4] == 1).all()

    def test_single_element(self, svm):
        values, lengths, k = rle_encode(svm, svm.array([42]))
        assert k == 1 and values.to_numpy()[0] == 42 and lengths.to_numpy()[0] == 1

    def test_empty(self, svm):
        _, _, k = rle_encode(svm, svm.array([]))
        assert k == 0

    def test_matches_oracle(self, svm, rng):
        data = np.repeat(rng.integers(0, 5, 20, dtype=np.uint32),
                         rng.integers(1, 6, 20))
        values, lengths, k = rle_encode(svm, svm.array(data))
        expect = _runs_oracle(data)
        got = list(zip(values.to_numpy()[:k].tolist(), lengths.to_numpy()[:k].tolist()))
        assert got == [(v, l) for v, l in expect]


class TestDecode:
    def test_simple(self, svm):
        values = svm.array([7, 2, 9])
        lengths = svm.array([3, 1, 2])
        out = rle_decode(svm, values, lengths, 3)
        assert out.to_numpy().tolist() == [7, 7, 7, 2, 9, 9]

    def test_empty(self, svm):
        out = rle_decode(svm, svm.array([]), svm.array([]), 0)
        assert out.to_numpy().size == 0


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(4))
    def test_random(self, svm, seed):
        rng = np.random.default_rng(seed)
        data = np.repeat(rng.integers(0, 6, 30, dtype=np.uint32),
                         rng.integers(1, 7, 30))
        values, lengths, k = rle_encode(svm, svm.array(data))
        out = rle_decode(svm, values, lengths, k)
        assert np.array_equal(out.to_numpy(), data)

    def test_compresses(self, svm):
        """RLE's point: k runs for k*(len) elements."""
        data = np.repeat(np.arange(5, dtype=np.uint32), 10)
        _, _, k = rle_encode(svm, svm.array(data))
        assert k == 5

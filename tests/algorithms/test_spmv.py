"""Tests for CSR SpMV via segmented sums."""

import numpy as np
import pytest

from repro.algorithms import CSRMatrix, spmv
from repro.errors import SegmentError


def _oracle(mat: CSRMatrix, x: np.ndarray) -> np.ndarray:
    return (mat.to_dense().astype(np.uint64) @ x.astype(np.uint64)).astype(np.uint32)


class TestCSRMatrix:
    def test_validation_row_ptr_shape(self):
        with pytest.raises(SegmentError):
            CSRMatrix(2, 2, [0, 1], [0], [1])

    def test_validation_monotone(self):
        with pytest.raises(SegmentError):
            CSRMatrix(2, 2, [0, 2, 1], [0, 1], [1, 1])

    def test_validation_col_range(self):
        with pytest.raises(SegmentError):
            CSRMatrix(1, 2, [0, 1], [5], [1])

    def test_nnz(self):
        m = CSRMatrix(2, 3, [0, 2, 3], [0, 2, 1], [1, 2, 3])
        assert m.nnz == 3

    def test_random_dense_roundtrip(self):
        rng = np.random.default_rng(0)
        m = CSRMatrix.random(8, 6, 0.3, rng)
        dense = m.to_dense()
        assert dense.shape == (8, 6)
        assert (dense != 0).sum() == m.nnz


class TestSpmv:
    def test_small_known(self, svm):
        # [[1 0 2], [0 0 0], [0 3 0]] @ [1, 2, 3] = [7, 0, 6]
        m = CSRMatrix(3, 3, [0, 2, 2, 3], [0, 2, 1], [1, 2, 3])
        y = spmv(svm, m, svm.array([1, 2, 3]))
        assert y.to_numpy().tolist() == [7, 0, 6]

    @pytest.mark.parametrize("seed", range(3))
    def test_random(self, svm, seed):
        rng = np.random.default_rng(seed)
        m = CSRMatrix.random(11, 13, 0.25, rng)
        xv = rng.integers(0, 10, 13, dtype=np.uint32)
        y = spmv(svm, m, svm.array(xv))
        assert np.array_equal(y.to_numpy(), _oracle(m, xv))

    def test_empty_rows_stay_zero(self, svm):
        m = CSRMatrix(4, 2, [0, 0, 1, 1, 2], [0, 1], [5, 7])
        y = spmv(svm, m, svm.array([1, 1]))
        assert y.to_numpy().tolist() == [0, 5, 0, 7]

    def test_all_empty_matrix(self, svm):
        m = CSRMatrix(3, 3, [0, 0, 0, 0], [], [])
        y = spmv(svm, m, svm.array([1, 2, 3]))
        assert y.to_numpy().tolist() == [0, 0, 0]

    def test_dimension_check(self, svm):
        m = CSRMatrix(2, 3, [0, 1, 1], [0], [1])
        with pytest.raises(SegmentError):
            spmv(svm, m, svm.array([1, 2]))

    def test_wide_rows_across_strips(self, svm, rng):
        """A row with > vl nonzeros exercises the segmented carry."""
        n = 20
        m = CSRMatrix(1, n, [0, n], np.arange(n), np.ones(n))
        xv = rng.integers(0, 10, n, dtype=np.uint32)
        y = spmv(svm, m, svm.array(xv))
        assert y.to_numpy()[0] == xv.sum()

"""Shared helpers for the batch suite: the reference semantics of
``svm.batch`` is *literally* the loop of single-input calls, so every
equivalence test runs both spellings on twin contexts and compares
outputs and per-category counters exactly."""

from __future__ import annotations

import numpy as np

from repro import SVM


def make_rows(lengths, seed=0, dtype=np.uint32):
    rng = np.random.default_rng(seed)
    high = min(2**16, np.iinfo(dtype).max + 1)
    return [rng.integers(0, high, n, dtype=dtype) for n in lengths]


def as_batch_pipe(pipe, lmul):
    """Adapt an engine-suite pipeline (api, data, lmul) to the batch
    convention (lz, data) -> out."""
    return lambda lz, data: pipe(lz, data, lmul)


def loop_reference(svm: SVM, pipe, rows):
    """The definitional spelling: one capture + engine run per row."""
    outs = []
    for row in rows:
        data = svm.array(row, dtype=row.dtype)
        with svm.lazy() as lz:
            out = pipe(lz, data)
        outs.append(out.to_numpy())
        svm.free(data)
        if out.ptr.addr != data.ptr.addr:
            svm.free(out)
    return outs


def run_both(pipe, rows, **svm_kwargs):
    """(loop outputs, loop counters, batch result, batch counters) on
    identically configured twin contexts."""
    loop_svm = SVM(**svm_kwargs)
    loop_outs = loop_reference(loop_svm, pipe, rows)
    batch_svm = SVM(**svm_kwargs)
    result = batch_svm.batch(pipe, rows)
    return (loop_outs, loop_svm.counters.snapshot(),
            result, batch_svm.counters.snapshot())


def assert_equivalent(pipe, rows, **svm_kwargs):
    loop_outs, loop_counts, result, batch_counts = run_both(
        pipe, rows, **svm_kwargs
    )
    assert len(result) == len(rows)
    for i, (want, got) in enumerate(zip(loop_outs, result)):
        assert np.array_equal(want, got), f"row {i} diverged"
    assert loop_counts.by_category == batch_counts.by_category
    return result

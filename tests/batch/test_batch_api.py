"""API-surface behavior of ``svm.batch``/``run_batch``: ordering,
bucketing reports, cache sharing, observability, and edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SVM
from repro.batch import run_batch
from repro.engine.ir import EngineError

from .conftest import make_rows


def _pipe(lz, data):
    lz.p_add(data, 1)
    lz.plus_scan(data)
    return data


def test_empty_batch():
    svm = SVM(vlen=128)
    result = svm.batch(_pipe, [])
    assert len(result) == 0 and result.buckets == []


def test_single_row_matches_single_call():
    row = make_rows((4096,), seed=1)[0]
    single = SVM(vlen=128, mode="fast")
    data = single.array(row)
    with single.lazy() as lz:
        _pipe(lz, data)
    batched = SVM(vlen=128, mode="fast")
    result = batched.batch(_pipe, [row])
    assert np.array_equal(result[0], data.to_numpy())
    assert single.counters.snapshot().by_category \
        == batched.counters.snapshot().by_category


def test_outputs_keep_input_order():
    lengths = (64, 4096, 64, 300, 4096, 64)
    rows = make_rows(lengths, seed=2)
    svm = SVM(vlen=128, mode="fast")
    result = svm.batch(_pipe, rows)
    for row, out in zip(rows, result):
        assert out.size == row.size
        assert out[0] == row[0] + 1  # plus_scan keeps lane 0
    covered = sorted(i for b in result.buckets for i in b.indices)
    assert covered == list(range(len(rows)))


def test_list_inputs_use_default_dtype():
    svm = SVM(vlen=128)
    result = svm.batch(_pipe, [[1, 2, 3], [4, 5, 6]])
    assert result[0].dtype == np.uint32
    assert result[1].tolist() == [5, 11, 18]


def test_pipe_must_return_output():
    svm = SVM(vlen=128)
    with pytest.raises(EngineError, match="must return"):
        run_batch(svm, lambda lz, data: None, [[1, 2, 3]])


def test_non_1d_input_rejected():
    svm = SVM(vlen=128)
    with pytest.raises(EngineError, match="1-D"):
        svm.batch(_pipe, [np.zeros((2, 2), dtype=np.uint32)])


def test_batch_shares_plan_cache_with_single_calls():
    svm = SVM(vlen=128, mode="fast")
    rows = make_rows((4096,) * 3, seed=4)
    data = svm.array(rows[0])
    with svm.lazy() as lz:
        _pipe(lz, data)
    svm.free(data)
    stats = svm.engine.cache.stats
    misses_before = stats.misses
    svm.batch(_pipe, rows)
    assert stats.misses == misses_before  # same signature, pure hits
    assert svm.engine.cache.size == 1


def test_batch_observability():
    svm = SVM(vlen=128, mode="fast", profile=True)
    svm.batch(_pipe, make_rows((4096, 4096, 64), seed=6))
    col = svm.profiler
    col.finish()
    spans = [s.name for s in col.root.walk()]
    assert spans.count("batch_bucket") == 2
    hist = col.metrics.histogram("batch.size")
    assert hist.count == 2 and hist.total == 3
    assert col.metrics.counter("batch.rows").value == 3
    events = [e.name for e in col.events]
    assert "batch.bucket" in events


def test_sim_memory_is_reclaimed():
    """A batch must not leak plan buffers into the simulated heap:
    back-to-back batches at the same lengths reuse the same arena."""
    svm = SVM(vlen=128, mode="fast")
    rows = make_rows((4096, 300, 4096), seed=8)
    svm.batch(_pipe, rows)
    used_after_first = svm.machine.heap.live_bytes
    for _ in range(3):
        svm.batch(_pipe, rows)
    assert svm.machine.heap.live_bytes == used_after_first

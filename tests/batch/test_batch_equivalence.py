"""Batch-vs-loop equivalence: results and per-category counters.

``svm.batch`` promises to be bit- and counter-identical to looping the
single-input path. These tests sweep that promise across VLEN, LMUL,
codegen presets, dtypes, ragged lengths (mixing strict and fast
buckets under auto mode), scan variants, and pack's ragged promotion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.rvv.types import LMUL
from repro.svm.context import AUTO_FAST_THRESHOLD

from ..engine.conftest import PIPELINES
from .conftest import as_batch_pipe, assert_equivalent, make_rows, run_both

#: Mixes duplicate lengths (shared buckets), sub- and super-threshold
#: lengths (strict and fast rows under auto mode), and a length-1 row.
RAGGED = (300, 64, 300, AUTO_FAST_THRESHOLD, 64, 1)

#: pack's destination lanes beyond the kept count are uninitialized
#: memory (malloc semantics), so whole-array bit-comparison is only
#: meaningful when both spellings allocate in the same order — the
#: pack pipeline gets defined-lane ragged coverage below instead.
GRID_PIPELINES = sorted(set(PIPELINES) - {"pack_future"})


@pytest.mark.parametrize("codegen", ["ideal", "paper"])
@pytest.mark.parametrize("vlen", [128, 512])
@pytest.mark.parametrize("lmul", [LMUL.M1, LMUL.M4, LMUL.M8])
@pytest.mark.parametrize("name", GRID_PIPELINES)
def test_grid(name, vlen, lmul, codegen):
    rows = make_rows(RAGGED, seed=3)
    assert_equivalent(as_batch_pipe(PIPELINES[name], lmul), rows,
                      vlen=vlen, codegen=codegen)


@pytest.mark.parametrize("dtype", [np.uint8, np.uint16, np.uint32, np.uint64])
def test_dtypes(dtype):
    rows = make_rows((257, 64, 257), seed=5, dtype=dtype)
    assert_equivalent(as_batch_pipe(PIPELINES["chain_scan"], LMUL.M1), rows,
                      vlen=128, mode="fast")


@pytest.mark.parametrize("mode", ["strict", "fast", "auto"])
def test_modes(mode):
    # every length appears twice: single-row buckets always report the
    # "loop" path, which would muddy the per-mode expectation below
    rows = make_rows((129, 300, 129, 300), seed=7)
    result = assert_equivalent(
        as_batch_pipe(PIPELINES["chain_scan"], LMUL.M1), rows,
        vlen=128, mode=mode,
    )
    # the 2D path only applies where the fast path applies
    want = "2d" if mode == "fast" else "loop"
    assert {b.path for b in result.buckets} == {want}


def test_scan_variants():
    def pipe(lz, data):
        lz.p_add(data, 3)
        lz.scan_exclusive(data)       # eager exclusive scan, 2D axis=1
        lz.scan(data, "max")          # fused max-scan tail
        lz.p_xor(data, 9)
        lz.scan(data, "xor", inclusive=False)
        return data

    rows = make_rows((4096, 300, 4096), seed=11)
    assert_equivalent(pipe, rows, vlen=512, mode="fast")


def test_pack_ragged_interleaved_buckets():
    """Mixed-length batches reorder rows by bucket, so pack's
    undefined tail lanes see different heap garbage than the
    input-order loop — the defined lanes and the counters must still
    match exactly. Under auto mode every bucket here is sub-threshold
    or single-row, so all stay on the per-row loop (which must still
    report per-row lengths)."""
    rows = make_rows(RAGGED, seed=3)
    pipe = as_batch_pipe(PIPELINES["pack_future"], LMUL.M1)
    loop_outs, loop_counts, result, batch_counts = run_both(
        pipe, rows, vlen=128, mode="auto"
    )
    for row, want, got, length in zip(rows, loop_outs, result,
                                      result.lengths):
        kept = int((row < 2**15).sum())  # pipe packs on p_lt(data, 2**15)
        assert length == kept
        assert np.array_equal(want[:kept], got[:kept])
    assert loop_counts.by_category == batch_counts.by_category
    assert {b.path for b in result.buckets} == {"loop"}


def test_pack_promotes_to_ragged_path():
    """Pack pipelines no longer fall back to the per-row loop: the
    bucket executes as one masked 2D evaluation on the "ragged" path,
    with per-row kept counts threading through the p_add(out, kept)
    future consumer and counters exactly matching the loop."""
    rows = make_rows((300, 300, 64), seed=13)
    pipe = as_batch_pipe(PIPELINES["pack_future"], LMUL.M1)
    loop_outs, loop_counts, result, batch_counts = run_both(
        pipe, rows, vlen=128, mode="fast"
    )
    assert {b.path for b in result.buckets} == {"ragged", "loop"}
    by_n = {b.n: b for b in result.buckets}
    assert by_n[300].path == "ragged"   # 2 rows share the matrix
    assert by_n[64].path == "loop"      # single-row bucket
    for row, want, got, length in zip(rows, loop_outs, result,
                                      result.lengths):
        kept = int((row < 2**15).sum())
        assert length == kept
        assert np.array_equal(want[:kept], got[:kept])
    assert loop_counts.by_category == batch_counts.by_category


def test_mixed_dtype_rows_bucket_separately():
    a = make_rows((300, 300), seed=17, dtype=np.uint32)
    b = make_rows((300,), seed=19, dtype=np.uint16)
    rows = [a[0], b[0], a[1]]

    def pipe(lz, data):
        lz.p_add(data, 2)
        lz.plus_scan(data)
        return data

    result = assert_equivalent(pipe, rows, vlen=128, mode="fast")
    assert len(result.buckets) == 2
    by_dtype = {bkt.dtype: bkt for bkt in result.buckets}
    assert by_dtype["uint32"].indices == (0, 2)
    assert by_dtype["uint16"].indices == (1,)


def test_large_fast_bucket_matches_scaled_single_run():
    """B identical-length rows must charge exactly B x one row's
    closed-form profile (data-obliviousness made scaling exact)."""
    from repro import SVM

    rows = make_rows((5000,) * 7, seed=23)
    single = SVM(vlen=512, mode="fast")
    pipe = as_batch_pipe(PIPELINES["chain_scan"], LMUL.M1)
    data = single.array(rows[0])
    with single.lazy() as lz:
        pipe(lz, data)
    one = single.counters.snapshot()

    batched = SVM(vlen=512, mode="fast")
    batched.batch(pipe, rows)
    total = batched.counters.snapshot()
    assert total.by_category == {
        cat: count * len(rows) for cat, count in one.by_category.items()
    }

"""repro.parallel: deterministic merge order, inline/pool parity, and
the grid-cell functions the benches and the CLI share."""

from __future__ import annotations

from repro.parallel import batch_cell, default_jobs, fusion_cell, run_grid

FUSION_PARAMS = [
    {"n": 600, "vlen": 128, "lmul": 1, "depth": 3, "seed": 0},
    {"n": 600, "vlen": 512, "lmul": 8, "depth": 2, "seed": 0},
    {"n": 300, "vlen": 128, "lmul": 4, "depth": 1, "seed": 1},
]


def test_inline_results_in_input_order():
    results = run_grid(fusion_cell, FUSION_PARAMS, jobs=1)
    assert [(r["vlen"], r["lmul"]) for r in results] \
        == [(p["vlen"], p["lmul"]) for p in FUSION_PARAMS]
    assert all(r["identical"] for r in results)
    assert all(r["fused"] <= r["eager"] for r in results)


def test_pool_matches_inline():
    inline = run_grid(fusion_cell, FUSION_PARAMS, jobs=1)
    pooled = run_grid(fusion_cell, FUSION_PARAMS, jobs=2)
    assert pooled == inline


def test_batch_cell_identity():
    cell = batch_cell({"n": 3000, "vlen": 512, "lmul": 1, "rows": 4,
                       "depth": 3, "seed": 0})
    assert cell["identical_results"] and cell["identical_counters"]
    assert cell["batch_instr"] == cell["loop_instr"]
    assert cell["path"] == "2d"


def test_default_jobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_BENCH_JOBS", "4")
    assert default_jobs() == 4
    monkeypatch.setenv("REPRO_BENCH_JOBS", "bogus")
    assert default_jobs() == 1
